// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Deterministic link-fault injection (DESIGN.md §10).
//
// A FaultPlan is a pure description of what goes wrong on the migration link:
// bandwidth-degradation windows, one-way latency spikes, full outages, and a
// per-control-message Bernoulli loss probability. It is data, parsed from a
// compact scenario spec string and carried by value inside MigrationConfig,
// so a (seed, configuration) pair still fully determines a run -- the only
// randomness the plan introduces is drawn from the run's own Rng stream.
//
// A FaultSchedule anchors a plan's relative windows at the migration start
// instant and answers the point queries the NetworkLink and MigrationEngine
// need while converting bytes to durations: the bandwidth multiplier at a
// time, the extra one-way latency at a time, whether the link is down, and
// where the next rate-changing boundary lies.

#ifndef JAVMM_SRC_FAULTS_FAULTS_H_
#define JAVMM_SRC_FAULTS_FAULTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/time.h"

namespace javmm {

// Goodput multiplier over [start, end) relative to migration start.
struct BandwidthWindow {
  Duration start = Duration::Zero();
  Duration end = Duration::Zero();
  double multiplier = 1.0;  // In (0, 1]; 1.0 = nominal line rate.
};

// Extra one-way latency over [start, end) relative to migration start.
struct LatencySpike {
  Duration start = Duration::Zero();
  Duration end = Duration::Zero();
  Duration extra = Duration::Zero();
};

// Full link outage over [start, end) relative to migration start: nothing
// gets through; transfers in flight at `start` are lost.
struct OutageWindow {
  Duration start = Duration::Zero();
  Duration end = Duration::Zero();
};

// Complete fault description for one migration. Windows within each category
// must be sorted by start and non-overlapping (adjacency is allowed);
// Validate() enforces this.
struct FaultPlan {
  std::vector<BandwidthWindow> bandwidth;
  std::vector<LatencySpike> latency;
  std::vector<OutageWindow> outages;
  // Probability that one control round trip is lost (request or reply never
  // arrives). Each loss is an independent Bernoulli draw from the run's Rng.
  double control_loss_p = 0.0;

  bool enabled() const {
    return !bandwidth.empty() || !latency.empty() || !outages.empty() || control_loss_p > 0.0;
  }
  // Bandwidth windows and outages change transfer durations; latency spikes
  // and control loss only affect the control path.
  bool affects_transfers() const { return !bandwidth.empty() || !outages.empty(); }

  // Empty string when the plan is well-formed, else a description of the
  // first problem found.
  std::string Validate() const;

  // Parses the compact scenario spec, e.g.
  //   "bw:2s-30s@0.1;lat:1s-2s+30ms;out:7s-8s;loss:0.05"
  // Clauses are ';'-separated, times are relative to migration start and
  // accept ns/us/ms/s suffixes. Returns false (and sets *error) on a
  // malformed spec or a plan that fails Validate(); `plan` is untouched then.
  // Per-channel "chK:" clauses are rejected here -- they only make sense
  // against a channel count, which ParseMulti takes.
  static bool Parse(const std::string& spec, FaultPlan* plan, std::string* error);

  // Multi-channel variant: a clause may carry a "chK:" prefix (0-indexed),
  // e.g. "bw:0s-9s@0.5;ch1:out:7s-8s", scoping it to sub-link K of a
  // `channels`-wide data plane. Unprefixed clauses land in *shared (the plan
  // every channel inherits). When at least one chK: clause appears,
  // *per_channel gets `channels` entries, each the merged effective plan
  // (shared windows plus that channel's overlays, re-sorted; an overlay
  // loss clause overrides the shared loss); otherwise *per_channel is left
  // empty, meaning "all channels follow *shared". K >= channels, malformed
  // clauses, and merged plans whose windows overlap all fail with *error.
  static bool ParseMulti(const std::string& spec, int channels, FaultPlan* shared,
                         std::vector<FaultPlan>* per_channel, std::string* error);

  // CHECK-failing convenience for literals in tests and benches.
  static FaultPlan MustParse(const std::string& spec);
};

// A FaultPlan anchored at an absolute instant (the migration start). Pure
// point queries; all methods are O(#windows) linear scans, which is fine for
// the handful of windows a scenario declares.
class FaultSchedule {
 public:
  FaultSchedule(const FaultPlan& plan, TimePoint origin);

  const FaultPlan& plan() const { return plan_; }
  TimePoint origin() const { return origin_; }
  double control_loss_p() const { return plan_.control_loss_p; }
  bool affects_transfers() const { return plan_.affects_transfers(); }

  // Goodput multiplier in effect at `t` (1.0 outside every window).
  double BandwidthMultiplierAt(TimePoint t) const;

  // Extra one-way latency in effect at `t` (zero outside every spike).
  Duration ExtraLatencyAt(TimePoint t) const;

  // True when `t` falls inside an outage window [start, end).
  bool InOutage(TimePoint t) const;

  // End of the outage window covering `t`; CHECK-fails when InOutage(t) is
  // false.
  TimePoint OutageEndAt(TimePoint t) const;

  // Earliest instant strictly after `t` where the transfer rate may change
  // (a bandwidth-window edge or an outage start); TimePoint::Max() when the
  // rate is constant from `t` on.
  TimePoint NextTransferBoundaryAfter(TimePoint t) const;

 private:
  FaultPlan plan_;
  TimePoint origin_;
};

// Nominal bounded exponential backoff before retry `attempt` (1-based):
// min(base * 2^(attempt-1), cap). Shared by the MigrationEngine (which waits
// it out) and the TraceAuditor (which re-derives it from the trace), so the
// two cannot drift apart.
inline Duration NominalBackoff(Duration base, Duration cap, int attempt) {
  Duration nominal = base;
  for (int i = 1; i < attempt && nominal < cap; ++i) {
    // Saturate at cap instead of doubling past it: `nominal * 2` is signed
    // overflow (UB) once nanos pass 2^62, reachable with a large base and a
    // deep retry budget. cap/2 rounds down, so equality still doubles.
    nominal = nominal > cap / int64_t{2} ? cap : nominal * int64_t{2};
  }
  return nominal < cap ? nominal : cap;
}

}  // namespace javmm

#endif  // JAVMM_SRC_FAULTS_FAULTS_H_
