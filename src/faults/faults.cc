// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/faults/faults.h"

#include <algorithm>
#include <cstdlib>

#include "src/base/macros.h"

namespace javmm {

namespace {

// Parses "<number><unit>" with unit in {ns, us, ms, s}; returns false on
// anything else (including trailing garbage).
bool ParseDurationToken(const std::string& text, Duration* out) {
  if (text.empty()) {
    return false;
  }
  char* rest = nullptr;
  const double value = std::strtod(text.c_str(), &rest);
  if (rest == text.c_str() || value < 0) {
    return false;
  }
  const std::string unit(rest);
  double nanos_per_unit = 0;
  if (unit == "ns") {
    nanos_per_unit = 1.0;
  } else if (unit == "us") {
    nanos_per_unit = 1e3;
  } else if (unit == "ms") {
    nanos_per_unit = 1e6;
  } else if (unit == "s") {
    nanos_per_unit = 1e9;
  } else {
    return false;
  }
  *out = Duration::SecondsF(value * nanos_per_unit / 1e9);
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) {
    return false;
  }
  char* rest = nullptr;
  *out = std::strtod(text.c_str(), &rest);
  return rest == text.c_str() + text.size();
}

// Splits "START-END" (both duration tokens) out of `text`.
bool ParseWindowSpan(const std::string& text, Duration* start, Duration* end) {
  const size_t dash = text.find('-');
  if (dash == std::string::npos) {
    return false;
  }
  return ParseDurationToken(text.substr(0, dash), start) &&
         ParseDurationToken(text.substr(dash + 1), end);
}

template <typename Window>
std::string ValidateWindows(const std::vector<Window>& windows, const char* what) {
  for (size_t i = 0; i < windows.size(); ++i) {
    if (windows[i].end <= windows[i].start) {
      return std::string(what) + " window " + std::to_string(i) + " is empty or inverted";
    }
    if (i > 0 && windows[i].start < windows[i - 1].end) {
      return std::string(what) + " windows " + std::to_string(i - 1) + " and " +
             std::to_string(i) + " overlap or are out of order";
    }
  }
  return "";
}

}  // namespace

std::string FaultPlan::Validate() const {
  std::string err = ValidateWindows(bandwidth, "bandwidth");
  if (!err.empty()) {
    return err;
  }
  for (size_t i = 0; i < bandwidth.size(); ++i) {
    if (bandwidth[i].multiplier <= 0.0 || bandwidth[i].multiplier > 1.0) {
      return "bandwidth window " + std::to_string(i) +
             " multiplier must be in (0, 1] (use an outage for a dead link)";
    }
  }
  err = ValidateWindows(latency, "latency");
  if (!err.empty()) {
    return err;
  }
  for (size_t i = 0; i < latency.size(); ++i) {
    if (latency[i].extra < Duration::Zero()) {
      return "latency spike " + std::to_string(i) + " has negative extra latency";
    }
  }
  err = ValidateWindows(outages, "outage");
  if (!err.empty()) {
    return err;
  }
  if (control_loss_p < 0.0 || control_loss_p > 1.0) {
    return "control_loss_p must be in [0, 1]";
  }
  return "";
}

namespace {

// Parses one "kind:body" clause into *plan; `clause` is the full original
// text for error messages. Sets *saw_loss when the clause set control_loss_p,
// so ParseMulti can tell a per-channel loss override from "inherit shared".
bool ParseClause(const std::string& kind, const std::string& body,
                 const std::string& clause, FaultPlan* plan, bool* saw_loss,
                 std::string* error) {
  if (kind == "bw") {
    const size_t at = body.find('@');
    BandwidthWindow window;
    if (at == std::string::npos ||
        !ParseWindowSpan(body.substr(0, at), &window.start, &window.end) ||
        !ParseDouble(body.substr(at + 1), &window.multiplier)) {
      *error = "bad bandwidth clause '" + clause + "' (want bw:START-END@MULT)";
      return false;
    }
    plan->bandwidth.push_back(window);
  } else if (kind == "lat") {
    const size_t plus = body.find('+');
    LatencySpike spike;
    if (plus == std::string::npos ||
        !ParseWindowSpan(body.substr(0, plus), &spike.start, &spike.end) ||
        !ParseDurationToken(body.substr(plus + 1), &spike.extra)) {
      *error = "bad latency clause '" + clause + "' (want lat:START-END+EXTRA)";
      return false;
    }
    plan->latency.push_back(spike);
  } else if (kind == "out") {
    OutageWindow window;
    if (!ParseWindowSpan(body, &window.start, &window.end)) {
      *error = "bad outage clause '" + clause + "' (want out:START-END)";
      return false;
    }
    plan->outages.push_back(window);
  } else if (kind == "loss") {
    if (!ParseDouble(body, &plan->control_loss_p)) {
      *error = "bad loss clause '" + clause + "' (want loss:P)";
      return false;
    }
    *saw_loss = true;
  } else {
    *error = "unknown clause kind '" + kind + "' (want bw|lat|out|loss)";
    return false;
  }
  return true;
}

// Recognizes a "chK" channel-scope token; K must be all digits.
bool ParseChannelToken(const std::string& kind, int* channel) {
  if (kind.size() < 3 || kind.compare(0, 2, "ch") != 0) {
    return false;
  }
  int value = 0;
  for (size_t i = 2; i < kind.size(); ++i) {
    if (kind[i] < '0' || kind[i] > '9') {
      return false;
    }
    value = value * 10 + (kind[i] - '0');
  }
  *channel = value;
  return true;
}

template <typename Window>
void SortWindows(std::vector<Window>* windows) {
  std::sort(windows->begin(), windows->end(),
            [](const Window& a, const Window& b) { return a.start < b.start; });
}

// Effective plan for one channel: the shared windows plus the channel's
// overlays, re-sorted. Overlaps surface in the caller's Validate() pass.
FaultPlan MergePlans(const FaultPlan& shared, const FaultPlan& overlay, bool overlay_has_loss) {
  FaultPlan merged = shared;
  merged.bandwidth.insert(merged.bandwidth.end(), overlay.bandwidth.begin(),
                          overlay.bandwidth.end());
  merged.latency.insert(merged.latency.end(), overlay.latency.begin(), overlay.latency.end());
  merged.outages.insert(merged.outages.end(), overlay.outages.begin(), overlay.outages.end());
  SortWindows(&merged.bandwidth);
  SortWindows(&merged.latency);
  SortWindows(&merged.outages);
  if (overlay_has_loss) {
    merged.control_loss_p = overlay.control_loss_p;
  }
  return merged;
}

}  // namespace

bool FaultPlan::Parse(const std::string& spec, FaultPlan* plan, std::string* error) {
  CHECK(plan != nullptr);
  CHECK(error != nullptr);
  FaultPlan parsed;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t sep = spec.find(';', pos);
    if (sep == std::string::npos) {
      sep = spec.size();
    }
    const std::string clause = spec.substr(pos, sep - pos);
    pos = sep + 1;
    if (clause.empty()) {
      continue;
    }
    const size_t colon = clause.find(':');
    if (colon == std::string::npos) {
      *error = "clause '" + clause + "' has no ':'";
      return false;
    }
    const std::string kind = clause.substr(0, colon);
    const std::string body = clause.substr(colon + 1);
    int channel = 0;
    if (ParseChannelToken(kind, &channel)) {
      *error = "per-channel clause '" + clause +
               "' needs a multi-channel plan (parse with ParseMulti / --channels)";
      return false;
    }
    bool saw_loss = false;
    if (!ParseClause(kind, body, clause, &parsed, &saw_loss, error)) {
      return false;
    }
  }
  const std::string validation = parsed.Validate();
  if (!validation.empty()) {
    *error = validation;
    return false;
  }
  *plan = parsed;
  error->clear();
  return true;
}

bool FaultPlan::ParseMulti(const std::string& spec, int channels, FaultPlan* shared,
                           std::vector<FaultPlan>* per_channel, std::string* error) {
  CHECK(shared != nullptr);
  CHECK(per_channel != nullptr);
  CHECK(error != nullptr);
  CHECK_GT(channels, 0);
  FaultPlan shared_parsed;
  std::vector<FaultPlan> overlays(static_cast<size_t>(channels));
  std::vector<bool> overlay_has_loss(static_cast<size_t>(channels), false);
  bool any_overlay = false;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t sep = spec.find(';', pos);
    if (sep == std::string::npos) {
      sep = spec.size();
    }
    const std::string clause = spec.substr(pos, sep - pos);
    pos = sep + 1;
    if (clause.empty()) {
      continue;
    }
    size_t colon = clause.find(':');
    if (colon == std::string::npos) {
      *error = "clause '" + clause + "' has no ':'";
      return false;
    }
    std::string kind = clause.substr(0, colon);
    std::string rest = clause.substr(colon + 1);
    FaultPlan* target = &shared_parsed;
    bool saw_loss = false;
    int channel = 0;
    if (ParseChannelToken(kind, &channel)) {
      if (channel >= channels) {
        *error = "clause '" + clause + "' names channel " + std::to_string(channel) +
                 " but only " + std::to_string(channels) + " channels exist (0-indexed)";
        return false;
      }
      colon = rest.find(':');
      if (colon == std::string::npos) {
        *error = "per-channel clause '" + clause + "' has no fault kind after the channel";
        return false;
      }
      kind = rest.substr(0, colon);
      rest = rest.substr(colon + 1);
      target = &overlays[static_cast<size_t>(channel)];
      any_overlay = true;
    }
    if (!ParseClause(kind, rest, clause, target, &saw_loss, error)) {
      return false;
    }
    if (saw_loss && target != &shared_parsed) {
      overlay_has_loss[static_cast<size_t>(channel)] = true;
    }
  }
  std::string validation = shared_parsed.Validate();
  if (!validation.empty()) {
    *error = validation;
    return false;
  }
  std::vector<FaultPlan> merged;
  if (any_overlay) {
    merged.reserve(static_cast<size_t>(channels));
    for (int c = 0; c < channels; ++c) {
      merged.push_back(MergePlans(shared_parsed, overlays[static_cast<size_t>(c)],
                                  overlay_has_loss[static_cast<size_t>(c)]));
      validation = merged.back().Validate();
      if (!validation.empty()) {
        *error = "channel " + std::to_string(c) + ": " + validation;
        return false;
      }
    }
  }
  *shared = shared_parsed;
  *per_channel = std::move(merged);
  error->clear();
  return true;
}

FaultPlan FaultPlan::MustParse(const std::string& spec) {
  FaultPlan plan;
  std::string error;
  if (!Parse(spec, &plan, &error)) {
    CheckFailure("FaultPlan::MustParse", 0, spec.c_str(), error);
  }
  return plan;
}

FaultSchedule::FaultSchedule(const FaultPlan& plan, TimePoint origin)
    : plan_(plan), origin_(origin) {
  const std::string error = plan.Validate();
  if (!error.empty()) {
    CheckFailure("FaultSchedule", 0, "plan.Validate().empty()", error);
  }
}

double FaultSchedule::BandwidthMultiplierAt(TimePoint t) const {
  for (const BandwidthWindow& window : plan_.bandwidth) {
    if (origin_ + window.start <= t && t < origin_ + window.end) {
      return window.multiplier;
    }
  }
  return 1.0;
}

Duration FaultSchedule::ExtraLatencyAt(TimePoint t) const {
  for (const LatencySpike& spike : plan_.latency) {
    if (origin_ + spike.start <= t && t < origin_ + spike.end) {
      return spike.extra;
    }
  }
  return Duration::Zero();
}

bool FaultSchedule::InOutage(TimePoint t) const {
  for (const OutageWindow& window : plan_.outages) {
    if (origin_ + window.start <= t && t < origin_ + window.end) {
      return true;
    }
  }
  return false;
}

TimePoint FaultSchedule::OutageEndAt(TimePoint t) const {
  for (const OutageWindow& window : plan_.outages) {
    if (origin_ + window.start <= t && t < origin_ + window.end) {
      return origin_ + window.end;
    }
  }
  CheckFailure("FaultSchedule::OutageEndAt", 0, "InOutage(t)", "no outage covers t");
}

TimePoint FaultSchedule::NextTransferBoundaryAfter(TimePoint t) const {
  TimePoint next = TimePoint::Max();
  const auto consider = [&next, t](TimePoint candidate) {
    if (candidate > t && candidate < next) {
      next = candidate;
    }
  };
  for (const BandwidthWindow& window : plan_.bandwidth) {
    consider(origin_ + window.start);
    consider(origin_ + window.end);
  }
  for (const OutageWindow& window : plan_.outages) {
    consider(origin_ + window.start);
  }
  return next;
}

}  // namespace javmm
