// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/faults/faults.h"

#include <cstdlib>

#include "src/base/macros.h"

namespace javmm {

namespace {

// Parses "<number><unit>" with unit in {ns, us, ms, s}; returns false on
// anything else (including trailing garbage).
bool ParseDurationToken(const std::string& text, Duration* out) {
  if (text.empty()) {
    return false;
  }
  char* rest = nullptr;
  const double value = std::strtod(text.c_str(), &rest);
  if (rest == text.c_str() || value < 0) {
    return false;
  }
  const std::string unit(rest);
  double nanos_per_unit = 0;
  if (unit == "ns") {
    nanos_per_unit = 1.0;
  } else if (unit == "us") {
    nanos_per_unit = 1e3;
  } else if (unit == "ms") {
    nanos_per_unit = 1e6;
  } else if (unit == "s") {
    nanos_per_unit = 1e9;
  } else {
    return false;
  }
  *out = Duration::SecondsF(value * nanos_per_unit / 1e9);
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) {
    return false;
  }
  char* rest = nullptr;
  *out = std::strtod(text.c_str(), &rest);
  return rest == text.c_str() + text.size();
}

// Splits "START-END" (both duration tokens) out of `text`.
bool ParseWindowSpan(const std::string& text, Duration* start, Duration* end) {
  const size_t dash = text.find('-');
  if (dash == std::string::npos) {
    return false;
  }
  return ParseDurationToken(text.substr(0, dash), start) &&
         ParseDurationToken(text.substr(dash + 1), end);
}

template <typename Window>
std::string ValidateWindows(const std::vector<Window>& windows, const char* what) {
  for (size_t i = 0; i < windows.size(); ++i) {
    if (windows[i].end <= windows[i].start) {
      return std::string(what) + " window " + std::to_string(i) + " is empty or inverted";
    }
    if (i > 0 && windows[i].start < windows[i - 1].end) {
      return std::string(what) + " windows " + std::to_string(i - 1) + " and " +
             std::to_string(i) + " overlap or are out of order";
    }
  }
  return "";
}

}  // namespace

std::string FaultPlan::Validate() const {
  std::string err = ValidateWindows(bandwidth, "bandwidth");
  if (!err.empty()) {
    return err;
  }
  for (size_t i = 0; i < bandwidth.size(); ++i) {
    if (bandwidth[i].multiplier <= 0.0 || bandwidth[i].multiplier > 1.0) {
      return "bandwidth window " + std::to_string(i) +
             " multiplier must be in (0, 1] (use an outage for a dead link)";
    }
  }
  err = ValidateWindows(latency, "latency");
  if (!err.empty()) {
    return err;
  }
  for (size_t i = 0; i < latency.size(); ++i) {
    if (latency[i].extra < Duration::Zero()) {
      return "latency spike " + std::to_string(i) + " has negative extra latency";
    }
  }
  err = ValidateWindows(outages, "outage");
  if (!err.empty()) {
    return err;
  }
  if (control_loss_p < 0.0 || control_loss_p > 1.0) {
    return "control_loss_p must be in [0, 1]";
  }
  return "";
}

bool FaultPlan::Parse(const std::string& spec, FaultPlan* plan, std::string* error) {
  CHECK(plan != nullptr);
  CHECK(error != nullptr);
  FaultPlan parsed;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t sep = spec.find(';', pos);
    if (sep == std::string::npos) {
      sep = spec.size();
    }
    const std::string clause = spec.substr(pos, sep - pos);
    pos = sep + 1;
    if (clause.empty()) {
      continue;
    }
    const size_t colon = clause.find(':');
    if (colon == std::string::npos) {
      *error = "clause '" + clause + "' has no ':'";
      return false;
    }
    const std::string kind = clause.substr(0, colon);
    const std::string body = clause.substr(colon + 1);
    if (kind == "bw") {
      const size_t at = body.find('@');
      BandwidthWindow window;
      if (at == std::string::npos || !ParseWindowSpan(body.substr(0, at), &window.start, &window.end) ||
          !ParseDouble(body.substr(at + 1), &window.multiplier)) {
        *error = "bad bandwidth clause '" + clause + "' (want bw:START-END@MULT)";
        return false;
      }
      parsed.bandwidth.push_back(window);
    } else if (kind == "lat") {
      const size_t plus = body.find('+');
      LatencySpike spike;
      if (plus == std::string::npos ||
          !ParseWindowSpan(body.substr(0, plus), &spike.start, &spike.end) ||
          !ParseDurationToken(body.substr(plus + 1), &spike.extra)) {
        *error = "bad latency clause '" + clause + "' (want lat:START-END+EXTRA)";
        return false;
      }
      parsed.latency.push_back(spike);
    } else if (kind == "out") {
      OutageWindow window;
      if (!ParseWindowSpan(body, &window.start, &window.end)) {
        *error = "bad outage clause '" + clause + "' (want out:START-END)";
        return false;
      }
      parsed.outages.push_back(window);
    } else if (kind == "loss") {
      if (!ParseDouble(body, &parsed.control_loss_p)) {
        *error = "bad loss clause '" + clause + "' (want loss:P)";
        return false;
      }
    } else {
      *error = "unknown clause kind '" + kind + "' (want bw|lat|out|loss)";
      return false;
    }
  }
  const std::string validation = parsed.Validate();
  if (!validation.empty()) {
    *error = validation;
    return false;
  }
  *plan = parsed;
  error->clear();
  return true;
}

FaultPlan FaultPlan::MustParse(const std::string& spec) {
  FaultPlan plan;
  std::string error;
  if (!Parse(spec, &plan, &error)) {
    CheckFailure("FaultPlan::MustParse", 0, spec.c_str(), error);
  }
  return plan;
}

FaultSchedule::FaultSchedule(const FaultPlan& plan, TimePoint origin)
    : plan_(plan), origin_(origin) {
  const std::string error = plan.Validate();
  if (!error.empty()) {
    CheckFailure("FaultSchedule", 0, "plan.Validate().empty()", error);
  }
}

double FaultSchedule::BandwidthMultiplierAt(TimePoint t) const {
  for (const BandwidthWindow& window : plan_.bandwidth) {
    if (origin_ + window.start <= t && t < origin_ + window.end) {
      return window.multiplier;
    }
  }
  return 1.0;
}

Duration FaultSchedule::ExtraLatencyAt(TimePoint t) const {
  for (const LatencySpike& spike : plan_.latency) {
    if (origin_ + spike.start <= t && t < origin_ + spike.end) {
      return spike.extra;
    }
  }
  return Duration::Zero();
}

bool FaultSchedule::InOutage(TimePoint t) const {
  for (const OutageWindow& window : plan_.outages) {
    if (origin_ + window.start <= t && t < origin_ + window.end) {
      return true;
    }
  }
  return false;
}

TimePoint FaultSchedule::OutageEndAt(TimePoint t) const {
  for (const OutageWindow& window : plan_.outages) {
    if (origin_ + window.start <= t && t < origin_ + window.end) {
      return origin_ + window.end;
    }
  }
  CheckFailure("FaultSchedule::OutageEndAt", 0, "InOutage(t)", "no outage covers t");
}

TimePoint FaultSchedule::NextTransferBoundaryAfter(TimePoint t) const {
  TimePoint next = TimePoint::Max();
  const auto consider = [&next, t](TimePoint candidate) {
    if (candidate > t && candidate < next) {
      next = candidate;
    }
  };
  for (const BandwidthWindow& window : plan_.bandwidth) {
    consider(origin_ + window.start);
    consider(origin_ + window.end);
  }
  for (const OutageWindow& window : plan_.outages) {
    consider(origin_ + window.start);
  }
  return next;
}

}  // namespace javmm
