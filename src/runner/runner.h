// Copyright (c) 2026 The JAVMM Reproduction Authors.
// ScenarioRunner: execute many independent migration experiments, optionally
// in parallel, with results bit-identical to serial execution.
//
// Migration studies are embarrassingly parallel across runs: each experiment
// owns its whole world (SimClock, Rng, guest, heap -- see RunScenario's
// determinism contract in scenario.h), so a bounded worker pool can execute
// any number of scenarios concurrently and the per-scenario results depend
// only on the Scenario, never on scheduling. RunAll() preserves submission
// order in the report regardless of completion order, which keeps tables and
// the JSON-lines export stable under any --jobs value.

#ifndef JAVMM_SRC_RUNNER_RUNNER_H_
#define JAVMM_SRC_RUNNER_RUNNER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/runner/scenario.h"

namespace javmm {

// One executed scenario plus its integrity status. `ran` is false only when
// the run threw (configuration error, resource exhaustion); such records
// carry `error` and count as failures.
struct RunRecord {
  Scenario scenario;
  RunOutput output;
  bool ran = false;
  std::string error;

  // Fault injection cancelled the migration; the guest kept running at the
  // source. Not a result-integrity failure: abort scenarios are intentional.
  bool aborted() const { return ran && !output.result.completed; }
  // Completed, but via the unassisted safety fallback (LKM timeout).
  bool fell_back() const { return ran && output.result.fell_back_unassisted; }
  // Completed but the destination state did not verify: the run's numbers
  // describe a broken migration and must not enter any summary.
  bool verification_failed() const {
    return ran && output.result.completed && !output.result.verification.ok;
  }
  // The trace audit found an accounting/protocol violation: the metering
  // behind the numbers is suspect.
  bool audit_failed() const {
    return ran && output.result.trace_audit.ran && !output.result.trace_audit.ok;
  }
  // A fault-retry budget ran out and the engine degraded (stop-and-copy
  // early, or a clean abort). Intentional under fault injection.
  bool degraded() const { return ran && output.result.degraded; }
  bool failed() const { return !ran || verification_failed() || audit_failed(); }
};

// Aggregate of one RunAll(): per-run records in submission order plus the
// failure tally a bench binary needs for its exit code.
struct RunReport {
  std::vector<RunRecord> runs;

  int64_t verification_failures = 0;
  int64_t audit_failures = 0;
  int64_t errors = 0;     // Runs that threw before producing a result.
  int64_t aborted = 0;    // Intentional fault-injection outcomes.
  int64_t fallbacks = 0;  // Completed via the unassisted safety path.
  int64_t degraded = 0;   // Fault-retry budget exhausted (see RunRecord).

  int64_t failure_count() const { return verification_failures + audit_failures + errors; }
  bool all_ok() const { return failure_count() == 0; }

  // One JSON object per run, in submission order. All quantities are exact
  // integers (nanoseconds, bytes, pages), so the export is byte-identical
  // across serial and parallel execution of the same scenario list.
  // Deliberately excludes PerfCounters: the export format is pinned by
  // golden tests and must not shift when instrumentation changes.
  void ExportJsonLines(std::ostream& os) const;

  // Sum of every run's deterministic PerfCounters, in submission order.
  // Field-wise addition commutes, but summing in submission order keeps even
  // the overflow CHECK behaviour identical across --jobs values. Runs that
  // threw contribute zeroes (their default-constructed result).
  PerfCounters TotalPerf() const;
};

class ScenarioRunner {
 public:
  // `jobs` <= 0 means one worker per hardware thread.
  explicit ScenarioRunner(int jobs = 1);

  int jobs() const { return jobs_; }

  // Executes every scenario and returns the records in submission order.
  // With jobs > 1, scenarios run on a bounded pool of worker threads; each
  // worker claims the next unstarted index, so submission order also bounds
  // start order (no reordering beyond pool concurrency).
  RunReport RunAll(const std::vector<Scenario>& scenarios) const;

  // Executes a single scenario on the calling thread, capturing run errors
  // into the record instead of propagating.
  static RunRecord RunOne(const Scenario& scenario);

 private:
  int jobs_;
};

}  // namespace javmm

#endif  // JAVMM_SRC_RUNNER_RUNNER_H_
