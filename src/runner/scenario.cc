// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/runner/scenario.h"

#include <stdexcept>

#include "src/migration/baselines.h"

namespace javmm {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kXenPrecopy:
      return "Xen";
    case EngineKind::kJavmm:
      return "JAVMM";
    case EngineKind::kStopAndCopy:
      return "stop-and-copy";
    case EngineKind::kPostcopy:
      return "post-copy";
  }
  return "?";
}

RunOutput RunScenario(const Scenario& scenario) {
  LabConfig config = scenario.options.lab;
  config.seed = scenario.options.seed;
  config.migration.application_assisted = scenario.engine == EngineKind::kJavmm;
  if (scenario.options.channels <= 0) {
    throw std::runtime_error("channels must be >= 1, got " +
                             std::to_string(scenario.options.channels));
  }
  config.migration.channels = scenario.options.channels;
  if (!scenario.options.fault_spec.empty()) {
    std::string error;
    FaultPlan shared;
    std::vector<FaultPlan> per_channel;
    if (!FaultPlan::ParseMulti(scenario.options.fault_spec, scenario.options.channels, &shared,
                               &per_channel, &error)) {
      throw std::runtime_error("bad fault spec '" + scenario.options.fault_spec +
                               "': " + error);
    }
    config.migration.faults = shared;
    config.migration.channel_faults = per_channel;
  }
  {
    std::string error;
    HotnessConfig hotness;
    if (!HotnessConfig::Parse(scenario.options.hotness_spec, &hotness, &error)) {
      throw std::runtime_error("bad hotness spec '" + scenario.options.hotness_spec +
                               "': " + error);
    }
    if (hotness.enabled && scenario.engine != EngineKind::kXenPrecopy &&
        scenario.engine != EngineKind::kJavmm) {
      throw std::runtime_error("hotness ordering is pre-copy only; engine " +
                               std::string(EngineKindName(scenario.engine)) +
                               " does not iterate");
    }
    config.migration.hotness = hotness;
  }

  MigrationLab lab(scenario.spec, config);
  lab.Run(scenario.options.warmup);

  RunOutput out;
  out.young_at_migration = lab.app().heap().young_committed_bytes();
  out.old_at_migration = lab.app().heap().old_used_bytes();
  const TimePoint migration_start = lab.clock().now();

  if (config.analyzer_probe_faults) {
    // The analyser's probes ride channel 0 of the migration network; under a
    // per-channel spec that channel's merged plan is the one they see.
    const FaultPlan& probe_plan = config.migration.channel_faults.empty()
                                      ? config.migration.faults
                                      : config.migration.channel_faults.front();
    if (probe_plan.enabled()) {
      lab.mutable_analyzer().AttachProbeFaults(probe_plan, migration_start);
    }
  }

  switch (scenario.engine) {
    case EngineKind::kXenPrecopy:
    case EngineKind::kJavmm:
      out.result = lab.Migrate();
      break;
    // The baselines take the lab's copy of the migration config: the lab
    // forks a dedicated fault_seed off the run seed, so the Bernoulli
    // control-loss draws are reproducible per seed without perturbing the
    // OS/app streams (healthy runs are unaffected -- the seed is only read
    // when a fault plan is enabled).
    case EngineKind::kStopAndCopy: {
      StopAndCopyEngine engine(&lab.guest(), lab.config().migration);
      out.result = engine.Migrate();
      break;
    }
    case EngineKind::kPostcopy: {
      PostcopyEngine::Config pc;
      pc.base = lab.config().migration;
      PostcopyEngine engine(&lab.guest(), pc);
      const PostcopyResult r = engine.Migrate();
      out.result = r.common;
      out.demand_faults = r.demand_faults;
      out.fault_stall = r.fault_stall;
      out.degradation_window = r.degradation_window;
      break;
    }
  }

  lab.Run(scenario.options.cooldown);
  out.throughput = lab.analyzer().series();
  out.observed_downtime = lab.analyzer().ObservedDowntime(migration_start, lab.clock().now());
  // Fold the guest store-path counters (metered on the lab's memory from boot
  // through cooldown) into the engine's counters: one PerfCounters per run.
  // Deterministic because the guest's write sequence is seed-driven.
  out.result.perf.Add(lab.guest_perf());
  return out;
}

}  // namespace javmm
