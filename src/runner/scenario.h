// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Scenario: a self-contained experiment descriptor.
//
// A Scenario names everything one migration experiment needs -- the workload,
// the engine, the seed and the lab configuration -- so it can be executed
// anywhere (this thread, a worker-pool thread) and always produce the same
// RunOutput. RunScenario() is the single entry point the bench binaries and
// the ScenarioRunner (runner.h) share; it owns every piece of mutable state
// for the run (SimClock, Rng, guest, heap), which is what makes concurrent
// execution of independent scenarios bit-identical to serial execution.

#ifndef JAVMM_SRC_RUNNER_SCENARIO_H_
#define JAVMM_SRC_RUNNER_SCENARIO_H_

#include <cstdint>
#include <string>

#include "src/core/migration_lab.h"
#include "src/stats/time_series.h"
#include "src/workload/spec.h"

namespace javmm {

// Which migration strategy the scenario exercises. The pre-copy kinds run
// through MigrationLab::Migrate() (downtime breakdown enriched with the
// JVM-side components); the baselines construct their engine directly.
enum class EngineKind {
  kXenPrecopy,   // Vanilla pre-copy (ignores the transfer bitmap).
  kJavmm,        // Application-assisted pre-copy (the paper's system).
  kStopAndCopy,  // Non-live baseline: pause, copy everything, resume.
  kPostcopy,     // Demand-paging baseline with background pre-paging.
};

const char* EngineKindName(EngineKind kind);

// Experiment phasing around the migration itself: warm the workload up,
// migrate, keep running at the destination.
struct RunOptions {
  Duration warmup = Duration::Seconds(120);
  Duration cooldown = Duration::Seconds(40);
  uint64_t seed = 1;
  LabConfig lab;
  // Link-fault plan in FaultPlan::ParseMulti syntax, e.g.
  // "bw:2s-30s@0.1;loss:0.05" or "ch1:out:7s-8s;loss:0.05" (times relative
  // to migration start; chK: clauses pin a fault to one sub-link). Parsed by
  // RunScenario into lab.migration.{faults, channel_faults}; a malformed
  // spec throws, which the ScenarioRunner captures as a run error. Empty =
  // the lab config's plan.
  std::string fault_spec;
  // Migration data-plane sub-links (DESIGN.md §11). 1 = the classic single
  // link, bit-identical to the pre-channel code. <= 0 throws.
  int channels = 1;
  // Hotness-scored transfer ordering (src/mem/hotness.h, DESIGN.md §12), in
  // HotnessConfig::Parse syntax: "" / "off" = disabled (byte-identical to
  // the pre-hotness engine), "on" = defaults, "rate:2,score:8,decay:1,
  // budget:500ms" = explicit knobs. A malformed spec throws, as does
  // enabling hotness for a baseline engine (pre-copy only).
  std::string hotness_spec;
};

struct Scenario {
  std::string label;  // Row/series label; also keys the JSON-lines export.
  WorkloadSpec spec;
  EngineKind engine = EngineKind::kXenPrecopy;
  RunOptions options;
};

// One full experiment run at paper scale.
struct RunOutput {
  MigrationResult result;
  TimeSeries throughput;
  Duration observed_downtime = Duration::Zero();
  int64_t young_at_migration = 0;
  int64_t old_at_migration = 0;

  // Post-copy extras (EngineKind::kPostcopy only; zero otherwise).
  int64_t demand_faults = 0;
  Duration fault_stall = Duration::Zero();
  Duration degradation_window = Duration::Zero();
};

// Executes one scenario start to finish on the calling thread. Determinism
// contract: the run reads only the Scenario (by value semantics) and shared
// *immutable* process state; every mutable object -- clock, RNG, guest,
// heap, engine, analyzer -- is constructed here and dies here.
RunOutput RunScenario(const Scenario& scenario);

}  // namespace javmm

#endif  // JAVMM_SRC_RUNNER_SCENARIO_H_
