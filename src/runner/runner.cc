// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/runner/runner.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <thread>

namespace javmm {

namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendRecordJson(const RunRecord& rec, std::ostream& os) {
  const MigrationResult& r = rec.output.result;
  os << "{\"label\":\"" << EscapeJson(rec.scenario.label) << "\""
     << ",\"workload\":\"" << EscapeJson(rec.scenario.spec.name) << "\""
     << ",\"engine\":\"" << EngineKindName(rec.scenario.engine) << "\""
     << ",\"seed\":" << rec.scenario.options.seed << ",\"ran\":" << (rec.ran ? "true" : "false");
  if (!rec.ran) {
    os << ",\"error\":\"" << EscapeJson(rec.error) << "\"}\n";
    return;
  }
  os << ",\"completed\":" << (r.completed ? "true" : "false")
     << ",\"fell_back\":" << (r.fell_back_unassisted ? "true" : "false")
     << ",\"verified\":" << (r.verification.ok ? "true" : "false")
     << ",\"audit_ran\":" << (r.trace_audit.ran ? "true" : "false")
     << ",\"audit_ok\":" << (r.trace_audit.ok ? "true" : "false")
     << ",\"iterations\":" << r.iteration_count() << ",\"total_time_ns\":" << r.total_time.nanos()
     << ",\"downtime_ns\":" << r.downtime.Total().nanos()
     << ",\"wire_bytes\":" << r.total_wire_bytes << ",\"pages_sent\":" << r.pages_sent
     << ",\"pages_skipped_dirty\":" << r.pages_skipped_dirty
     << ",\"pages_skipped_bitmap\":" << r.pages_skipped_bitmap
     << ",\"cpu_ns\":" << r.cpu_time.nanos()
     << ",\"control_losses\":" << r.control_losses << ",\"burst_faults\":" << r.burst_faults
     << ",\"round_timeouts\":" << r.round_timeouts
     << ",\"retry_wire_bytes\":" << r.retry_wire_bytes
     << ",\"backoff_ns\":" << r.backoff_time.nanos()
     << ",\"degraded\":" << (r.degraded ? "true" : "false")
     << ",\"young_at_migration_bytes\":" << rec.output.young_at_migration
     << ",\"old_at_migration_bytes\":" << rec.output.old_at_migration
     << ",\"observed_downtime_ns\":" << rec.output.observed_downtime.nanos()
     << ",\"demand_faults\":" << rec.output.demand_faults
     << ",\"fault_stall_ns\":" << rec.output.fault_stall.nanos()
     << ",\"degradation_window_ns\":" << rec.output.degradation_window.nanos();
  // Multi-channel columns only when the data plane was actually striped, so
  // a channels=1 export stays byte-identical to the single-link format.
  if (r.channels > 1) {
    os << ",\"channels\":" << r.channels;
    const auto append_vector = [&os](const char* key, const std::vector<int64_t>& v) {
      os << ",\"" << key << "\":[";
      for (size_t i = 0; i < v.size(); ++i) {
        if (i > 0) {
          os << ',';
        }
        os << v[i];
      }
      os << ']';
    };
    append_vector("channel_wire_bytes", r.channel_wire_bytes);
    append_vector("channel_pages_sent", r.channel_pages_sent);
    append_vector("channel_retry_bytes", r.channel_retry_bytes);
    os << ",\"pipeline_compress_busy_ns\":" << r.pipeline_compress_busy.nanos()
       << ",\"pipeline_wire_busy_ns\":" << r.pipeline_wire_busy.nanos()
       << ",\"pipeline_stall_ns\":" << r.pipeline_stall.nanos();
  }
  // Hotness columns only when the ordering was enabled, so a hotness-off
  // export stays byte-identical to the pre-hotness format.
  if (r.hotness) {
    os << ",\"pages_deferred_hot\":" << r.pages_deferred_hot
       << ",\"resend_pages_avoided\":" << r.resend_pages_avoided;
  }
  os << "}\n";
}

}  // namespace

void RunReport::ExportJsonLines(std::ostream& os) const {
  for (const RunRecord& rec : runs) {
    AppendRecordJson(rec, os);
  }
}

PerfCounters RunReport::TotalPerf() const {
  PerfCounters total;
  for (const RunRecord& rec : runs) {
    total.Add(rec.output.result.perf);
  }
  return total;
}

ScenarioRunner::ScenarioRunner(int jobs) : jobs_(jobs) {
  if (jobs_ <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs_ = hw > 0 ? static_cast<int>(hw) : 1;
  }
}

RunRecord ScenarioRunner::RunOne(const Scenario& scenario) {
  RunRecord rec;
  rec.scenario = scenario;
  try {
    rec.output = RunScenario(scenario);
    rec.ran = true;
  } catch (const std::exception& e) {
    rec.error = e.what();
  } catch (...) {
    rec.error = "unknown exception";
  }
  return rec;
}

RunReport ScenarioRunner::RunAll(const std::vector<Scenario>& scenarios) const {
  RunReport report;
  report.runs.resize(scenarios.size());

  const size_t n = scenarios.size();
  const int workers =
      static_cast<int>(std::min<size_t>(static_cast<size_t>(jobs_), n > 0 ? n : 1));
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) {
      report.runs[i] = RunOne(scenarios[i]);
    }
  } else {
    // Each worker claims the next unstarted scenario; records land in their
    // submission slot, so the report order never depends on scheduling.
    std::atomic<size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&scenarios, &report, &next, n]() {
        for (;;) {
          const size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) {
            return;
          }
          report.runs[i] = RunOne(scenarios[i]);
        }
      });
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }

  for (const RunRecord& rec : report.runs) {
    if (!rec.ran) {
      ++report.errors;
      continue;
    }
    if (rec.verification_failed()) {
      ++report.verification_failures;
    }
    if (rec.audit_failed()) {
      ++report.audit_failures;
    }
    if (rec.aborted()) {
      ++report.aborted;
    }
    if (rec.fell_back()) {
      ++report.fallbacks;
    }
    if (rec.degraded()) {
      ++report.degraded;
    }
  }
  return report;
}

}  // namespace javmm
