// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/workload/cache_application.h"

#include "src/base/macros.h"

namespace javmm {

CacheApplication::CacheApplication(GuestKernel* kernel, const CacheAppConfig& config, Rng rng)
    : kernel_(kernel), config_(config), rng_(rng), pid_(kernel->CreateProcess("cache")) {
  CHECK_GT(config.cache_bytes, 0);
  CHECK_GT(config.purge_fraction, 0.0);
  CHECK_LT(config.purge_fraction, 1.0);
  AddressSpace& space = kernel_->address_space(pid_);
  cache_ = space.ReserveVa(config_.cache_bytes);
  CHECK(space.CommitRange(cache_.begin, cache_.bytes()));
  space.Write(cache_.begin, cache_.bytes());  // Warm fill.
  const int64_t retained_bytes =
      PagesForBytes(static_cast<int64_t>(static_cast<double>(cache_.bytes()) *
                                         (1.0 - config_.purge_fraction))) *
      kPageSize;
  split_ = cache_.begin + static_cast<uint64_t>(retained_bytes);
  kernel_->netlink().Subscribe(pid_, this);
  kernel_->clock().AddProcess(this);
}

CacheApplication::~CacheApplication() {
  kernel_->clock().RemoveProcess(this);
  kernel_->netlink().Unsubscribe(pid_);
}

VaRange CacheApplication::retained_range() const { return VaRange{cache_.begin, split_}; }

VaRange CacheApplication::skip_range() const { return VaRange{split_, cache_.end}; }

void CacheApplication::RunFor(TimePoint start, Duration dt) {
  (void)start;
  if (kernel_->vm_paused()) {
    return;
  }
  AddressSpace& space = kernel_->address_space(pid_);
  write_carry_ += static_cast<double>(config_.write_rate_bytes_per_sec) * dt.ToSecondsF();
  // While prepared for suspension, the purged suffix must stay unneeded:
  // writes land only in the retained prefix (§3.3.5's requirement that the
  // skip-over contents remain recoverable/unneeded until suspension).
  const VaRange target = prepared_ ? retained_range() : cache_;
  const PageCount target_pages = PagesForBytes(target.bytes());
  while (write_carry_ >= static_cast<double>(kPageSize)) {
    const PageCount page =
        static_cast<PageCount>(rng_.NextBounded(static_cast<uint64_t>(target_pages)));
    space.Touch(target.begin + static_cast<uint64_t>(CheckedMul(page, kPageSize)));
    write_carry_ -= static_cast<double>(kPageSize);
  }
  ops_completed_ += config_.ops_per_sec * dt.ToSecondsF();
}

void CacheApplication::OnNetlinkMessage(const NetlinkMessage& msg) {
  Lkm* lkm = kernel_->lkm();
  CHECK(lkm != nullptr);
  switch (msg.type) {
    case NetlinkMessageType::kQuerySkipOverAreas:
      lkm->ReportSkipOverAreas(pid_, {skip_range()});
      // Cached values are already compressed blobs: tell the daemon not to
      // waste CPU trying (§6 multi-bit transfer map).
      lkm->AnnotateCompression(pid_, retained_range(), CompressionClass::kIncompressible);
      return;
    case NetlinkMessageType::kPrepareForSuspension:
      if (!config_.cooperative) {
        return;
      }
      // Purge the cold suffix: its contents become unneeded at the
      // destination. The retained entries are already compact in the prefix.
      ++purge_count_;
      prepared_ = true;
      lkm->NotifySuspensionReady(pid_, SuspensionReadyInfo{{skip_range()}, {}});
      return;
    case NetlinkMessageType::kVmResumed:
      // Continue with a shrunken cache; refill over time.
      prepared_ = false;
      return;
  }
  JAVMM_UNREACHABLE("unknown netlink message");
}

}  // namespace javmm
