// Copyright (c) 2026 The JAVMM Reproduction Authors.
// A Java workload running on the G1-style regionized collector -- the §6
// future-work port ("collectors that use non-contiguous VA ranges for the
// Young generation").
//
// Unlike the classic generational JVM, the young generation here is a
// mutating *set* of regions: at every evacuation the old young regions leave
// (shrink notices through the framework's PFN-cache path) and freshly
// claimed ones join. Our port adds one optimisation on top of the paper's
// protocol: after each evacuation the agent re-reports the current young
// ranges (legal in the MIGRATION STARTED state), so newly claimed eden
// regions regain cleared transfer bits instead of waiting for the final
// update -- without it, a region-cycling collector would lose most of
// JAVMM's benefit within one GC period.

#ifndef JAVMM_SRC_WORKLOAD_G1_APPLICATION_H_
#define JAVMM_SRC_WORKLOAD_G1_APPLICATION_H_

#include <memory>

#include "src/base/rng.h"
#include "src/guest/guest_kernel.h"
#include "src/guest/lkm.h"
#include "src/guest/netlink_bus.h"
#include "src/jvm/region_heap.h"
#include "src/sim/process.h"
#include "src/workload/spec.h"

namespace javmm {

class G1JavaApplication : public Process, public NetlinkSubscriber {
 public:
  // The workload's rates/lifetimes come from `spec`; its (contiguous-heap)
  // HeapConfig is ignored in favour of `heap_config`.
  G1JavaApplication(GuestKernel* kernel, const WorkloadSpec& spec,
                    const RegionHeapConfig& heap_config, Rng rng);
  ~G1JavaApplication() override;

  G1JavaApplication(const G1JavaApplication&) = delete;
  G1JavaApplication& operator=(const G1JavaApplication&) = delete;

  void RunFor(TimePoint start, Duration dt) override;
  void OnNetlinkMessage(const NetlinkMessage& msg) override;

  RegionizedHeap& heap() { return *heap_; }
  const RegionizedHeap& heap() const { return *heap_; }
  AppId pid() const { return pid_; }
  double ops_completed() const { return ops_completed_; }
  bool held_at_safepoint() const { return state_ == ExecState::kHeldAtSafepoint; }
  Duration last_safepoint_wait() const { return safepoint_wait_observed_; }

 private:
  enum class ExecState { kRunning, kInGc, kHeldAtSafepoint };

  void AdvanceRunning(TimePoint now, Duration dt);
  void BeginGc(TimePoint now, bool enforced);
  void OnEnforcedGcComplete();
  void OnYoungReleased(const std::vector<VaRange>& released);
  Lkm& lkm();

  GuestKernel* kernel_;
  WorkloadSpec spec_;
  Rng rng_;
  AppId pid_;
  std::unique_ptr<RegionizedHeap> heap_;

  ExecState state_ = ExecState::kRunning;
  Duration gc_left_ = Duration::Zero();
  bool gc_was_enforced_ = false;
  bool enforced_gc_pending_ = false;
  bool migration_active_ = false;
  Duration time_to_safepoint_ = Duration::Zero();
  Duration safepoint_wait_observed_ = Duration::Zero();

  double alloc_carry_bytes_ = 0;
  double ops_completed_ = 0;
};

}  // namespace javmm

#endif  // JAVMM_SRC_WORKLOAD_G1_APPLICATION_H_
