// Copyright (c) 2026 The JAVMM Reproduction Authors.

#ifndef JAVMM_SRC_WORKLOAD_THROUGHPUT_ANALYZER_H_
#define JAVMM_SRC_WORKLOAD_THROUGHPUT_ANALYZER_H_

#include "src/sim/clock.h"
#include "src/stats/time_series.h"
#include "src/workload/java_application.h"

namespace javmm {

// The paper's external throughput analyser (§5.1): alongside each workload it
// records the number of operations completed per second, observed "from
// outside of the VM using a time source that is not affected by temporary
// suspension of the VM". Our simulation clock is exactly such a source; a
// repeating timer samples the application's cumulative op counter.
class ThroughputAnalyzer {
 public:
  ThroughputAnalyzer(SimClock* clock, const JavaApplication* app,
                     Duration interval = Duration::Seconds(1));
  ~ThroughputAnalyzer();

  ThroughputAnalyzer(const ThroughputAnalyzer&) = delete;
  ThroughputAnalyzer& operator=(const ThroughputAnalyzer&) = delete;

  const TimeSeries& series() const { return series_; }
  Duration interval() const { return interval_; }

  // Longest observed stretch of near-zero throughput within [from, to);
  // the paper's externally-visible workload downtime (Fig 10(c)).
  Duration ObservedDowntime(TimePoint from, TimePoint to) const;

 private:
  void Sample();

  SimClock* clock_;
  const JavaApplication* app_;
  Duration interval_;
  TimeSeries series_;
  double last_ops_ = 0;
  EventQueue::EventId timer_ = 0;
  bool stopped_ = false;
};

}  // namespace javmm

#endif  // JAVMM_SRC_WORKLOAD_THROUGHPUT_ANALYZER_H_
