// Copyright (c) 2026 The JAVMM Reproduction Authors.

#ifndef JAVMM_SRC_WORKLOAD_THROUGHPUT_ANALYZER_H_
#define JAVMM_SRC_WORKLOAD_THROUGHPUT_ANALYZER_H_

#include <optional>

#include "src/faults/faults.h"
#include "src/sim/clock.h"
#include "src/stats/time_series.h"
#include "src/workload/java_application.h"

namespace javmm {

// The paper's external throughput analyser (§5.1): alongside each workload it
// records the number of operations completed per second, observed "from
// outside of the VM using a time source that is not affected by temporary
// suspension of the VM". Our simulation clock is exactly such a source; a
// repeating timer samples the application's cumulative op counter.
class ThroughputAnalyzer {
 public:
  ThroughputAnalyzer(SimClock* clock, const JavaApplication* app,
                     Duration interval = Duration::Seconds(1));
  ~ThroughputAnalyzer();

  ThroughputAnalyzer(const ThroughputAnalyzer&) = delete;
  ThroughputAnalyzer& operator=(const ThroughputAnalyzer&) = delete;

  const TimeSeries& series() const { return series_; }
  Duration interval() const { return interval_; }

  // Longest observed stretch of near-zero throughput within [from, to);
  // the paper's externally-visible workload downtime (Fig 10(c)).
  Duration ObservedDowntime(TimePoint from, TimePoint to) const;

  // Routes the analyser's probe traffic through a faulted network path: a
  // probe landing inside one of `plan`'s outage windows (anchored at
  // `origin`) observes zero throughput, and the ops it missed show up as a
  // catch-up spike in the first healthy sample after the outage. The real
  // analyser's probes share the migration network, so an outage blinds it
  // even though the VM keeps executing. Detach to restore lossless probes.
  void AttachProbeFaults(const FaultPlan& plan, TimePoint origin);
  void DetachProbeFaults();

 private:
  void Sample();

  SimClock* clock_;
  const JavaApplication* app_;
  Duration interval_;
  TimeSeries series_;
  double last_ops_ = 0;
  EventQueue::EventId timer_ = 0;
  bool stopped_ = false;
  std::optional<FaultSchedule> probe_faults_;
};

}  // namespace javmm

#endif  // JAVMM_SRC_WORKLOAD_THROUGHPUT_ANALYZER_H_
