// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Synthetic stand-ins for the SPECjvm2008 workloads of Table 1.
//
// The paper characterises each workload through a handful of parameters --
// object allocation rate, object-lifetime mix (the §5.3 categories), old-gen
// size and mutation behaviour, GC durations -- and every result follows from
// those. Each spec below is calibrated against the paper's measurements:
// Fig 5(a) heap consumption, Fig 5(b) garbage fractions, Fig 5(c) GC
// durations, and the Young/Old sizes of Tables 2-3.

#ifndef JAVMM_SRC_WORKLOAD_SPEC_H_
#define JAVMM_SRC_WORKLOAD_SPEC_H_

#include <string>
#include <vector>

#include "src/base/time.h"
#include "src/base/units.h"
#include "src/jvm/heap_config.h"

namespace javmm {

// How the workload dirties its long-lived (old-generation) data.
enum class OldMutationMode {
  kUniformRandom,  // Scattered field updates (databases, business logic).
  kSweep,          // Sequential passes over large arrays (scimark's matrices).
};

struct WorkloadSpec {
  std::string name;
  std::string description;  // Table 1.
  int category = 0;         // §5.3: 1 = high alloc/short-lived, 2 = medium,
                            // 3 = low alloc/long-lived.

  // ---- Allocation behaviour. ----
  int64_t alloc_rate_bytes_per_sec = 0;
  int64_t chunk_bytes = 64 * kKiB;   // Cohort granularity (DESIGN.md §4).
  double long_lived_fraction = 0.0;  // Fraction of allocations that tenure.
  Duration short_lifetime_mean = Duration::Millis(30);
  Duration long_lifetime_mean = Duration::Seconds(60);

  // ---- Old-generation behaviour. ----
  int64_t old_baseline_bytes = 0;  // Startup-resident long-lived data.
  int64_t old_mutation_bytes_per_sec = 0;
  OldMutationMode old_mutation_mode = OldMutationMode::kUniformRandom;

  // ---- Operation/throughput model (the paper's external analyser). ----
  double ops_per_sec = 1.0;  // Completed per second of actual execution.

  // Maximum time for Java threads to reach a safepoint; the observed
  // time-to-safepoint is ~U(0, interval) (Fig 8 waits 0.7 s for compiler).
  Duration safepoint_interval = Duration::Millis(1400);

  // ---- Heap tuning (young cap is the -Xmn knob Tables 2-3 vary). ----
  HeapConfig heap;
};

// Registry of the nine calibrated workloads.
class Workloads {
 public:
  // Returns the spec by SPECjvm2008 name (derby, compiler, xml, sunflow,
  // serial, crypto, scimark, mpeg, compress). Aborts on unknown names.
  static WorkloadSpec Get(const std::string& name);

  // All nine, in the paper's presentation order.
  static std::vector<WorkloadSpec> All();

  // The three §5.3 representatives: derby (cat 1), crypto (cat 2),
  // scimark (cat 3).
  static std::vector<WorkloadSpec> CategoryRepresentatives();

  // Returns `spec` with a different young-generation cap (Table 3's -Xmn).
  static WorkloadSpec WithYoungCap(WorkloadSpec spec, int64_t young_max_bytes);
};

}  // namespace javmm

#endif  // JAVMM_SRC_WORKLOAD_SPEC_H_
