// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/workload/java_application.h"

#include <algorithm>

#include "src/base/macros.h"

namespace javmm {

JavaApplication::JavaApplication(GuestKernel* kernel, const WorkloadSpec& spec, Rng rng,
                                 const TiAgentConfig& agent_config)
    : kernel_(kernel), spec_(spec), rng_(rng), pid_(kernel->CreateProcess(spec.name)) {
  heap_ = std::make_unique<GenerationalHeap>(&kernel_->address_space(pid_), spec_.heap);
  if (spec_.old_baseline_bytes > 0) {
    // Startup-resident long-lived data (database tables, scene geometry,
    // matrices); effectively immortal for the run.
    CHECK(heap_->AllocateOld(spec_.old_baseline_bytes, TimePoint::Max()));
  }
  agent_ = std::make_unique<TiAgent>(kernel_, pid_, this, agent_config);
  heap_->set_resize_listener(agent_.get());
  kernel_->clock().AddProcess(this);
}

JavaApplication::~JavaApplication() { kernel_->clock().RemoveProcess(this); }

VaRange JavaApplication::YoungGenRange() const { return heap_->young_committed(); }

VaRange JavaApplication::OccupiedFromRange() const { return heap_->occupied_from_range(); }

VaRange JavaApplication::OldGenRange() const { return heap_->occupied_old_range(); }

void JavaApplication::RequestEnforcedGc() {
  CHECK(state_ != ExecState::kHeldAtSafepoint);
  enforced_gc_pending_ = true;
  // Java threads run until they reach a safepoint poll; the wait is uniform
  // over the workload's safepoint interval (Fig 8: 0.7 s for compiler).
  time_to_safepoint_ =
      Duration::SecondsF(rng_.UniformReal(0.0, spec_.safepoint_interval.ToSecondsF()));
  if (state_ == ExecState::kInGc) {
    // A collection is already in progress (its pause is a safepoint); the
    // enforced GC follows immediately after it finishes.
    time_to_safepoint_ = Duration::Zero();
  }
  safepoint_wait_observed_ = time_to_safepoint_;
}

void JavaApplication::ReleaseFromSafepoint() {
  CHECK(state_ == ExecState::kHeldAtSafepoint);
  state_ = ExecState::kRunning;
}

void JavaApplication::RunFor(TimePoint start, Duration dt) {
  if (kernel_->vm_paused()) {
    return;  // vCPUs suspended for stop-and-copy: no execution, no dirtying.
  }
  TimePoint now = start;
  Duration remaining = dt;
  while (remaining > Duration::Zero()) {
    switch (state_) {
      case ExecState::kHeldAtSafepoint:
        // Threads held by the TI agent until the VM resumes remotely.
        return;
      case ExecState::kInGc: {
        const Duration step = std::min(remaining, gc_left_);
        gc_left_ -= step;
        total_gc_pause_ += step;
        now += step;
        remaining -= step;
        if (gc_left_.IsZero()) {
          if (gc_was_enforced_ && agent_->OnEnforcedGcComplete()) {
            state_ = ExecState::kHeldAtSafepoint;
            return;
          }
          state_ = ExecState::kRunning;
        }
        break;
      }
      case ExecState::kRunning: {
        if (enforced_gc_pending_ && time_to_safepoint_.IsZero()) {
          BeginGc(now, /*enforced=*/true);
          break;
        }
        // Run until eden fills, the safepoint is reached, or the slice ends.
        const double rate = static_cast<double>(spec_.alloc_rate_bytes_per_sec);
        Duration until_full = Duration::Max();
        if (rate > 0) {
          const double free_bytes =
              static_cast<double>(heap_->eden_free_bytes()) - alloc_carry_bytes_;
          until_full = Duration::SecondsF(std::max(free_bytes, 0.0) / rate);
        }
        Duration step = std::min(remaining, until_full);
        if (enforced_gc_pending_) {
          step = std::min(step, time_to_safepoint_);
        }
        if (step > Duration::Zero()) {
          AdvanceRunning(now, step);
          now += step;
          remaining -= step;
          if (enforced_gc_pending_) {
            time_to_safepoint_ =
                std::max(Duration::Zero(), time_to_safepoint_ - step);
          }
          break;
        }
        // No time could pass: eden is full (allocation failure is itself a
        // safepoint, satisfying any pending enforced request -- HotSpot
        // coalesces simultaneous GC requests, §4.3.2 footnote).
        BeginGc(now, /*enforced=*/enforced_gc_pending_);
        break;
      }
    }
  }
}

void JavaApplication::BeginGc(TimePoint now, bool enforced) {
  const MinorGcResult result = heap_->MinorGc(now, enforced);
  state_ = ExecState::kInGc;
  gc_left_ = result.duration + result.full_gc_penalty;
  gc_was_enforced_ = enforced;
  if (enforced) {
    enforced_gc_pending_ = false;
  }
}

void JavaApplication::AdvanceRunning(TimePoint now, Duration dt) {
  const double secs = dt.ToSecondsF();
  const double rate = static_cast<double>(spec_.alloc_rate_bytes_per_sec);
  alloc_carry_bytes_ += rate * secs;
  double consumed_bytes = 0;
  while (alloc_carry_bytes_ >= static_cast<double>(spec_.chunk_bytes)) {
    // Approximate each chunk's allocation instant within the slice so
    // lifetime sampling stays accurate even for coarse slices.
    const TimePoint at =
        rate > 0 ? now + Duration::SecondsF(consumed_bytes / rate) : now;
    const bool long_lived = rng_.Chance(spec_.long_lived_fraction);
    const double mean = long_lived ? spec_.long_lifetime_mean.ToSecondsF()
                                   : spec_.short_lifetime_mean.ToSecondsF();
    const TimePoint death = at + Duration::SecondsF(rng_.Exponential(mean));
    if (!heap_->TryAllocate(spec_.chunk_bytes, death)) {
      break;  // Eden full; the caller's next loop iteration triggers a GC.
    }
    alloc_carry_bytes_ -= static_cast<double>(spec_.chunk_bytes);
    consumed_bytes += static_cast<double>(spec_.chunk_bytes);
  }
  old_mut_carry_bytes_ += static_cast<double>(spec_.old_mutation_bytes_per_sec) * secs;
  if (old_mut_carry_bytes_ >= static_cast<double>(kPageSize)) {
    const int64_t bytes = static_cast<int64_t>(old_mut_carry_bytes_);
    MutateOld(bytes);
    old_mut_carry_bytes_ -= static_cast<double>(bytes);
  }
  ops_completed_ += spec_.ops_per_sec * secs;
}

void JavaApplication::MutateOld(int64_t bytes) {
  const VaRange old = heap_->occupied_old_range();
  if (old.empty()) {
    return;
  }
  if (spec_.old_mutation_mode == OldMutationMode::kSweep) {
    // Sequential cyclic passes over the occupied old generation (scimark's
    // in-place matrix updates). Issued as contiguous spans -- one WriteRange
    // per wrap of the cursor instead of one Touch per page -- touching
    // exactly the pages the per-page loop would, in the same order.
    AddressSpace& space = kernel_->address_space(pid_);
    const PageCount occupied_pages = PagesForBytes(old.bytes());
    PageCount pages_left = PagesForBytes(bytes);
    while (pages_left > 0) {
      const PageCount start = old_sweep_cursor_page_ % occupied_pages;
      const PageCount span = std::min(pages_left, occupied_pages - start);
      space.WriteRange(old.begin + static_cast<uint64_t>(CheckedMul(start, kPageSize)),
                       CheckedMul(span, kPageSize));
      old_sweep_cursor_page_ += span;
      pages_left -= span;
    }
  } else {
    heap_->MutateOld(bytes, [this] { return rng_.NextDouble(); });
  }
}

}  // namespace javmm
