// Copyright (c) 2026 The JAVMM Reproduction Authors.
// A memcached-like caching application using the framework directly -- the
// §6 "applications with caching functionality" extension.
//
// The cache keeps its entries in one VA region. The least-valuable suffix
// (`purge_fraction` of the region) is reported as the skip-over area; on
// prepare-for-suspension the application purges that suffix (its contents
// become unneeded) and reports ready. After migration it continues with a
// shrunken cache, refilling over time -- no Java, no JVM, demonstrating that
// the framework is application-independent.

#ifndef JAVMM_SRC_WORKLOAD_CACHE_APPLICATION_H_
#define JAVMM_SRC_WORKLOAD_CACHE_APPLICATION_H_

#include "src/base/rng.h"
#include "src/guest/guest_kernel.h"
#include "src/guest/lkm.h"
#include "src/guest/netlink_bus.h"
#include "src/sim/process.h"

namespace javmm {

struct CacheAppConfig {
  int64_t cache_bytes = 256 * kMiB;
  // Fraction of the cache (the cold suffix) offered as skip-over area.
  double purge_fraction = 0.5;
  // Write traffic into the cache (insertions + LRU bookkeeping).
  int64_t write_rate_bytes_per_sec = 8 * kMiB;
  double ops_per_sec = 1000;  // Lookups served.
  bool cooperative = true;    // false => never answers prepare (straggler).
};

class CacheApplication : public Process, public NetlinkSubscriber {
 public:
  CacheApplication(GuestKernel* kernel, const CacheAppConfig& config, Rng rng);
  ~CacheApplication() override;

  CacheApplication(const CacheApplication&) = delete;
  CacheApplication& operator=(const CacheApplication&) = delete;

  void RunFor(TimePoint start, Duration dt) override;
  void OnNetlinkMessage(const NetlinkMessage& msg) override;

  AppId pid() const { return pid_; }
  // Hot prefix that must survive migration.
  VaRange retained_range() const;
  // Cold suffix offered for skipping.
  VaRange skip_range() const;

  int64_t purge_count() const { return purge_count_; }
  double ops_completed() const { return ops_completed_; }
  bool prepared() const { return prepared_; }

 private:
  GuestKernel* kernel_;
  CacheAppConfig config_;
  Rng rng_;
  AppId pid_;
  VaRange cache_;
  VirtAddr split_;  // retained = [cache_.begin, split_), skip = [split_, end).
  bool prepared_ = false;  // After prepare: write only into the retained part.
  int64_t purge_count_ = 0;
  double write_carry_ = 0;
  double ops_completed_ = 0;
};

}  // namespace javmm

#endif  // JAVMM_SRC_WORKLOAD_CACHE_APPLICATION_H_
