// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/workload/throughput_analyzer.h"

namespace javmm {

ThroughputAnalyzer::ThroughputAnalyzer(SimClock* clock, const JavaApplication* app,
                                       Duration interval)
    : clock_(clock), app_(app), interval_(interval) {
  timer_ = clock_->events().Schedule(clock_->now() + interval_, [this] { Sample(); });
}

ThroughputAnalyzer::~ThroughputAnalyzer() {
  if (!stopped_) {
    clock_->events().Cancel(timer_);
  }
}

void ThroughputAnalyzer::Sample() {
  if (probe_faults_.has_value() && probe_faults_->InOutage(clock_->now())) {
    // The probe never reaches the analyser: it reads zero ops this interval.
    // last_ops_ is left untouched, so the ops completed during the outage
    // surface as a catch-up spike in the first post-outage sample.
    series_.Add(clock_->now(), 0.0);
    timer_ = clock_->events().Schedule(clock_->now() + interval_, [this] { Sample(); });
    return;
  }
  const double ops = app_->ops_completed();
  const double per_sec = (ops - last_ops_) / interval_.ToSecondsF();
  last_ops_ = ops;
  series_.Add(clock_->now(), per_sec);
  timer_ = clock_->events().Schedule(clock_->now() + interval_, [this] { Sample(); });
}

void ThroughputAnalyzer::AttachProbeFaults(const FaultPlan& plan, TimePoint origin) {
  probe_faults_.emplace(plan, origin);
}

void ThroughputAnalyzer::DetachProbeFaults() { probe_faults_.reset(); }

Duration ThroughputAnalyzer::ObservedDowntime(TimePoint from, TimePoint to) const {
  // "Near zero": below 5% of the mean rate before `from`.
  const double baseline = series_.MeanInWindow(TimePoint::Epoch(), from);
  const double threshold = baseline > 0 ? baseline * 0.05 : 1e-9;
  return series_.LongestBelow(threshold, from, to);
}

}  // namespace javmm
