// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/workload/throughput_analyzer.h"

namespace javmm {

ThroughputAnalyzer::ThroughputAnalyzer(SimClock* clock, const JavaApplication* app,
                                       Duration interval)
    : clock_(clock), app_(app), interval_(interval) {
  timer_ = clock_->events().Schedule(clock_->now() + interval_, [this] { Sample(); });
}

ThroughputAnalyzer::~ThroughputAnalyzer() {
  if (!stopped_) {
    clock_->events().Cancel(timer_);
  }
}

void ThroughputAnalyzer::Sample() {
  const double ops = app_->ops_completed();
  const double per_sec = (ops - last_ops_) / interval_.ToSecondsF();
  last_ops_ = ops;
  series_.Add(clock_->now(), per_sec);
  timer_ = clock_->events().Schedule(clock_->now() + interval_, [this] { Sample(); });
}

Duration ThroughputAnalyzer::ObservedDowntime(TimePoint from, TimePoint to) const {
  // "Near zero": below 5% of the mean rate before `from`.
  const double baseline = series_.MeanInWindow(TimePoint::Epoch(), from);
  const double threshold = baseline > 0 ? baseline * 0.05 : 1e-9;
  return series_.LongestBelow(threshold, from, to);
}

}  // namespace javmm
