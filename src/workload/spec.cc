// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/workload/spec.h"

#include "src/base/macros.h"

namespace javmm {
namespace {

WorkloadSpec Base() {
  WorkloadSpec spec;
  spec.heap = HeapConfig{};
  return spec;
}

// Category 1: high object allocation rate, mostly short-lived objects; the
// young generation races to its cap (§5.3). Calibration anchors: Table 2/3
// young+old sizes, Fig 5(b) >97% garbage, Fig 5(c) durations.

WorkloadSpec Derby() {
  WorkloadSpec spec = Base();
  spec.name = "derby";
  spec.description = "Apache Derby database with business logic";
  spec.category = 1;
  spec.alloc_rate_bytes_per_sec = 340 * kMiB;
  spec.long_lived_fraction = 0.005;
  spec.short_lifetime_mean = Duration::Millis(20);
  spec.long_lifetime_mean = Duration::Seconds(60);
  spec.old_baseline_bytes = 150 * kMiB;  // Database tables + business state.
  spec.old_mutation_bytes_per_sec = 2 * kMiB;
  spec.ops_per_sec = 0.80;
  return spec;
}

WorkloadSpec Compiler() {
  WorkloadSpec spec = Base();
  spec.name = "compiler";
  spec.description = "OpenJDK 7 front-end compiler";
  spec.category = 1;
  spec.alloc_rate_bytes_per_sec = 340 * kMiB;
  spec.long_lived_fraction = 0.004;
  spec.short_lifetime_mean = Duration::Millis(60);  // ASTs live across passes.
  spec.long_lifetime_mean = Duration::Seconds(30);
  spec.old_baseline_bytes = 45 * kMiB;
  spec.old_mutation_bytes_per_sec = 1 * kMiB;
  spec.ops_per_sec = 0.45;
  return spec;
}

WorkloadSpec Xml() {
  WorkloadSpec spec = Base();
  spec.name = "xml";
  spec.description = "Apply style sheets to XML documents";
  spec.category = 1;
  spec.alloc_rate_bytes_per_sec = 520 * kMiB;
  spec.long_lived_fraction = 0.001;
  spec.short_lifetime_mean = Duration::Millis(15);
  spec.long_lifetime_mean = Duration::Seconds(60);
  spec.old_baseline_bytes = 0;
  spec.old_mutation_bytes_per_sec = kMiB / 2;
  spec.ops_per_sec = 4.0;
  return spec;
}

WorkloadSpec Sunflow() {
  WorkloadSpec spec = Base();
  spec.name = "sunflow";
  spec.description = "Open-source image rendering system";
  spec.category = 1;
  spec.alloc_rate_bytes_per_sec = 400 * kMiB;
  spec.long_lived_fraction = 0.002;
  spec.short_lifetime_mean = Duration::Millis(25);
  spec.long_lifetime_mean = Duration::Seconds(40);
  spec.old_baseline_bytes = 20 * kMiB;  // Scene geometry.
  spec.old_mutation_bytes_per_sec = kMiB / 2;
  spec.ops_per_sec = 1.2;
  return spec;
}

// Category 2: medium allocation rate; young grows but stays below its cap.

WorkloadSpec Serial() {
  WorkloadSpec spec = Base();
  spec.name = "serial";
  spec.description = "Serialize and deserialize primitives and objects";
  spec.category = 2;
  spec.alloc_rate_bytes_per_sec = 160 * kMiB;
  spec.long_lived_fraction = 0.004;
  spec.short_lifetime_mean = Duration::Millis(50);
  spec.long_lifetime_mean = Duration::Seconds(40);
  spec.old_baseline_bytes = 30 * kMiB;
  spec.old_mutation_bytes_per_sec = 1 * kMiB;
  spec.ops_per_sec = 2.2;
  return spec;
}

WorkloadSpec Crypto() {
  WorkloadSpec spec = Base();
  spec.name = "crypto";
  spec.description = "Sign and verify with cryptographic hashes";
  spec.category = 2;
  spec.alloc_rate_bytes_per_sec = 125 * kMiB;  // Young ~460 MiB (Table 2);
  // dirties marginally faster than gigabit goodput, so plain pre-copy never
  // converges -- the regime behind crypto's multi-second Xen downtime.
  spec.long_lived_fraction = 0.001;
  spec.short_lifetime_mean = Duration::Millis(30);
  spec.long_lifetime_mean = Duration::Seconds(30);
  spec.old_baseline_bytes = 12 * kMiB;
  spec.old_mutation_bytes_per_sec = kMiB / 4;
  spec.ops_per_sec = 2.8;
  return spec;
}

WorkloadSpec Mpeg() {
  WorkloadSpec spec = Base();
  spec.name = "mpeg";
  spec.description = "MP3 decoding";
  spec.category = 2;
  spec.alloc_rate_bytes_per_sec = 70 * kMiB;
  spec.long_lived_fraction = 0.002;
  spec.short_lifetime_mean = Duration::Millis(40);
  spec.long_lifetime_mean = Duration::Seconds(60);
  spec.old_baseline_bytes = 25 * kMiB;
  spec.old_mutation_bytes_per_sec = kMiB / 4;
  spec.ops_per_sec = 1.8;
  return spec;
}

WorkloadSpec Compress() {
  WorkloadSpec spec = Base();
  spec.name = "compress";
  spec.description = "Compression by a modified Lempel-Ziv method";
  spec.category = 2;
  spec.alloc_rate_bytes_per_sec = 90 * kMiB;
  spec.long_lived_fraction = 0.003;
  spec.short_lifetime_mean = Duration::Millis(40);
  spec.long_lifetime_mean = Duration::Seconds(50);
  spec.old_baseline_bytes = 30 * kMiB;
  spec.old_mutation_bytes_per_sec = kMiB / 2;
  spec.ops_per_sec = 1.5;
  return spec;
}

// Category 3: low allocation rate, mostly long-lived objects; small young
// generation, large old generation (Table 2: 128 MiB young, 486 MiB old).

WorkloadSpec Scimark() {
  WorkloadSpec spec = Base();
  spec.name = "scimark";
  spec.description = "Compute the LU factorization of matrices";
  spec.category = 3;
  spec.alloc_rate_bytes_per_sec = 20 * kMiB;
  spec.long_lived_fraction = 0.15;  // Per-op matrices survive the whole op.
  spec.short_lifetime_mean = Duration::SecondsF(1.2);
  spec.long_lifetime_mean = Duration::Seconds(20);
  spec.old_baseline_bytes = 400 * kMiB;  // Resident matrix working set.
  spec.old_mutation_bytes_per_sec = 25 * kMiB;  // LU sweeps the matrices.
  spec.old_mutation_mode = OldMutationMode::kSweep;
  spec.ops_per_sec = 0.35;
  // Long-lived survivors need roomy survivor spaces (SurvivorRatio=2) and
  // fast tenuring, or every minor GC overflows into the old generation and
  // full GCs thrash.
  spec.heap.survivor_fraction = 0.25;
  spec.heap.tenure_threshold = 1;
  return spec;
}

}  // namespace

WorkloadSpec Workloads::Get(const std::string& name) {
  for (const WorkloadSpec& spec : All()) {
    if (spec.name == name) {
      return spec;
    }
  }
  JAVMM_UNREACHABLE(("unknown workload: " + name).c_str());
}

std::vector<WorkloadSpec> Workloads::All() {
  return {Derby(), Compiler(), Xml(),     Sunflow(), Serial(),
          Crypto(), Scimark(),  Mpeg(),    Compress()};
}

std::vector<WorkloadSpec> Workloads::CategoryRepresentatives() {
  return {Get("derby"), Get("crypto"), Get("scimark")};
}

WorkloadSpec Workloads::WithYoungCap(WorkloadSpec spec, int64_t young_max_bytes) {
  spec.heap.young_max_bytes = young_max_bytes;
  spec.heap.young_initial_bytes = std::min(spec.heap.young_initial_bytes, young_max_bytes);
  spec.heap.young_min_bytes = std::min(spec.heap.young_min_bytes, spec.heap.young_initial_bytes);
  return spec;
}

}  // namespace javmm
