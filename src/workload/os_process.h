// Copyright (c) 2026 The JAVMM Reproduction Authors.

#ifndef JAVMM_SRC_WORKLOAD_OS_PROCESS_H_
#define JAVMM_SRC_WORKLOAD_OS_PROCESS_H_

#include "src/base/rng.h"
#include "src/guest/guest_kernel.h"
#include "src/sim/process.h"

namespace javmm {

struct OsProcessConfig {
  // Memory resident outside the Java heap: guest kernel, page cache, JVM
  // code cache & metaspace, daemons. Part of the 2 GiB the first migration
  // iteration must stream.
  int64_t resident_bytes = 320 * kMiB;
  // Hot subset receiving ongoing writes (kernel structures, JIT activity).
  int64_t hot_bytes = 48 * kMiB;
  int64_t dirty_rate_bytes_per_sec = static_cast<int64_t>(1.5 * static_cast<double>(kMiB));
};

// Background guest activity outside the JVM heap. Dirties a small hot subset
// of its resident memory at a steady rate; this is the floor of per-iteration
// dirty pages that keeps even an idle migration's later iterations non-empty.
class OsBackgroundProcess : public Process {
 public:
  OsBackgroundProcess(GuestKernel* kernel, const OsProcessConfig& config, Rng rng);
  ~OsBackgroundProcess() override;

  OsBackgroundProcess(const OsBackgroundProcess&) = delete;
  OsBackgroundProcess& operator=(const OsBackgroundProcess&) = delete;

  void RunFor(TimePoint start, Duration dt) override;

  AppId pid() const { return pid_; }
  VaRange resident_range() const { return resident_; }

 private:
  GuestKernel* kernel_;
  OsProcessConfig config_;
  Rng rng_;
  AppId pid_;
  VaRange resident_;
  // Hot-set size in pages, fixed at construction. hot_pages_ == 0 is a
  // valid "no background dirtying" configuration: RunFor becomes a no-op
  // instead of feeding Rng::NextBounded a zero bound (which CHECK-fails).
  PageCount hot_pages_ = 0;
  double carry_bytes_ = 0;
};

}  // namespace javmm

#endif  // JAVMM_SRC_WORKLOAD_OS_PROCESS_H_
