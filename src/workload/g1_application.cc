// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/workload/g1_application.h"

#include <algorithm>

#include "src/base/macros.h"

namespace javmm {

G1JavaApplication::G1JavaApplication(GuestKernel* kernel, const WorkloadSpec& spec,
                                     const RegionHeapConfig& heap_config, Rng rng)
    : kernel_(kernel), spec_(spec), rng_(rng), pid_(kernel->CreateProcess(spec.name + "-g1")) {
  heap_ = std::make_unique<RegionizedHeap>(&kernel_->address_space(pid_), heap_config);
  if (spec_.old_baseline_bytes > 0) {
    int64_t remaining = spec_.old_baseline_bytes;
    const int64_t slice = heap_config.region_bytes / 2;
    while (remaining > 0) {
      const int64_t bytes = std::min(remaining, slice);
      CHECK(heap_->AllocateOld(bytes, TimePoint::Max()));
      remaining -= bytes;
    }
  }
  heap_->set_young_released_callback(
      [this](const std::vector<VaRange>& released) { OnYoungReleased(released); });
  heap_->set_young_claimed_callback([this](const VaRange& claimed) {
    // Incremental skip-over report for a region joining the young set: a
    // repeated ReportSkipOverAreas is legal in MIGRATION STARTED and clears
    // the new region's transfer bits right away -- without this, a
    // region-cycling collector forfeits most of JAVMM's benefit (claimed
    // regions would stay unprotected until the final update).
    if (migration_active_ && kernel_->lkm() != nullptr &&
        kernel_->lkm()->state() == Lkm::State::kMigrationStarted) {
      kernel_->lkm()->ReportSkipOverAreas(pid_, {claimed});
    }
  });
  kernel_->netlink().Subscribe(pid_, this);
  kernel_->clock().AddProcess(this);
}

G1JavaApplication::~G1JavaApplication() {
  kernel_->clock().RemoveProcess(this);
  kernel_->netlink().Unsubscribe(pid_);
}

Lkm& G1JavaApplication::lkm() {
  Lkm* lkm = kernel_->lkm();
  CHECK(lkm != nullptr);
  return *lkm;
}

void G1JavaApplication::OnNetlinkMessage(const NetlinkMessage& msg) {
  switch (msg.type) {
    case NetlinkMessageType::kQuerySkipOverAreas: {
      migration_active_ = true;
      lkm().ReportSkipOverAreas(pid_, heap_->YoungRanges());
      for (const VaRange& range : heap_->OccupiedOldRanges()) {
        lkm().AnnotateCompression(pid_, range, CompressionClass::kHighlyCompressible);
      }
      return;
    }
    case NetlinkMessageType::kPrepareForSuspension:
      enforced_gc_pending_ = true;
      time_to_safepoint_ = (state_ == ExecState::kInGc)
                               ? Duration::Zero()
                               : Duration::SecondsF(rng_.UniformReal(
                                     0.0, spec_.safepoint_interval.ToSecondsF()));
      safepoint_wait_observed_ = time_to_safepoint_;
      return;
    case NetlinkMessageType::kVmResumed:
      migration_active_ = false;
      if (state_ == ExecState::kHeldAtSafepoint) {
        state_ = ExecState::kRunning;
      }
      return;
  }
  JAVMM_UNREACHABLE("unknown netlink message");
}

void G1JavaApplication::OnYoungReleased(const std::vector<VaRange>& released) {
  if (!migration_active_ || state_ == ExecState::kHeldAtSafepoint) {
    return;
  }
  if (lkm().state() != Lkm::State::kMigrationStarted) {
    // Entering-last-iteration window: the enforced evacuation's region
    // changes are reconciled by the final bitmap update (fresh ranges +
    // must-transfer survivors in the suspension-ready notice) -- sending
    // shrink notices here would violate the §3.3.4 no-shrink rule.
    return;
  }
  // Regions left the young generation: immediate shrink notices (§3.3.4).
  for (const VaRange& range : released) {
    lkm().NotifyAreaShrunk(pid_, range);
  }
  // Our G1-port optimisation: re-report the current young set so freshly
  // claimed regions are skip-listed without waiting for the final update.
  lkm().ReportSkipOverAreas(pid_, heap_->YoungRanges());
}

void G1JavaApplication::OnEnforcedGcComplete() {
  if (!migration_active_) {
    state_ = ExecState::kRunning;
    return;
  }
  state_ = ExecState::kHeldAtSafepoint;
  SuspensionReadyInfo info;
  info.skip_over_areas = heap_->YoungRanges();
  info.must_transfer = heap_->OccupiedSurvivorRanges();
  lkm().NotifySuspensionReady(pid_, info);
}

void G1JavaApplication::RunFor(TimePoint start, Duration dt) {
  if (kernel_->vm_paused()) {
    return;
  }
  TimePoint now = start;
  Duration remaining = dt;
  while (remaining > Duration::Zero()) {
    switch (state_) {
      case ExecState::kHeldAtSafepoint:
        return;
      case ExecState::kInGc: {
        const Duration step = std::min(remaining, gc_left_);
        gc_left_ -= step;
        now += step;
        remaining -= step;
        if (gc_left_.IsZero()) {
          if (gc_was_enforced_) {
            OnEnforcedGcComplete();
            if (state_ == ExecState::kHeldAtSafepoint) {
              return;
            }
          } else {
            state_ = ExecState::kRunning;
          }
        }
        break;
      }
      case ExecState::kRunning: {
        if (enforced_gc_pending_ && time_to_safepoint_.IsZero()) {
          BeginGc(now, /*enforced=*/true);
          break;
        }
        Duration step = remaining;
        if (enforced_gc_pending_) {
          step = std::min(step, time_to_safepoint_);
        }
        // Fine-grained slices keep the GC trigger near the true fill point.
        step = std::min(step, Duration::Millis(20));
        AdvanceRunning(now, step);
        now += step;
        remaining -= step;
        if (enforced_gc_pending_) {
          time_to_safepoint_ = std::max(Duration::Zero(), time_to_safepoint_ - step);
        }
        break;
      }
    }
  }
}

void G1JavaApplication::BeginGc(TimePoint now, bool enforced) {
  const MinorGcResult result = heap_->EvacuateYoung(now, enforced);
  state_ = ExecState::kInGc;
  gc_left_ = result.duration;
  gc_was_enforced_ = enforced;
  if (enforced) {
    enforced_gc_pending_ = false;
  }
}

void G1JavaApplication::AdvanceRunning(TimePoint now, Duration dt) {
  const double secs = dt.ToSecondsF();
  alloc_carry_bytes_ += static_cast<double>(spec_.alloc_rate_bytes_per_sec) * secs;
  while (alloc_carry_bytes_ >= static_cast<double>(spec_.chunk_bytes)) {
    const bool long_lived = rng_.Chance(spec_.long_lived_fraction);
    const double mean = long_lived ? spec_.long_lifetime_mean.ToSecondsF()
                                   : spec_.short_lifetime_mean.ToSecondsF();
    const TimePoint death = now + Duration::SecondsF(rng_.Exponential(mean));
    if (!heap_->TryAllocate(spec_.chunk_bytes, death)) {
      BeginGc(now, /*enforced=*/enforced_gc_pending_);
      return;  // Remaining slice time is consumed by the GC state.
    }
    alloc_carry_bytes_ -= static_cast<double>(spec_.chunk_bytes);
  }
  ops_completed_ += spec_.ops_per_sec * secs;
}

}  // namespace javmm
