// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/workload/os_process.h"

#include "src/base/macros.h"

namespace javmm {

OsBackgroundProcess::OsBackgroundProcess(GuestKernel* kernel, const OsProcessConfig& config,
                                         Rng rng)
    : kernel_(kernel), config_(config), rng_(rng), pid_(kernel->CreateProcess("guest-os")) {
  CHECK_GE(config.resident_bytes, config.hot_bytes);
  CHECK_GE(config.hot_bytes, 0);
  hot_pages_ = PagesForBytes(config_.hot_bytes);
  AddressSpace& space = kernel_->address_space(pid_);
  resident_ = space.ReserveVa(config_.resident_bytes);
  CHECK(space.CommitRange(resident_.begin, resident_.bytes()));
  // Populate: boot-time writes so the pages carry non-zero versions.
  space.Write(resident_.begin, resident_.bytes());
  kernel_->clock().AddProcess(this);
}

OsBackgroundProcess::~OsBackgroundProcess() { kernel_->clock().RemoveProcess(this); }

void OsBackgroundProcess::RunFor(TimePoint start, Duration dt) {
  (void)start;
  if (kernel_->vm_paused()) {
    return;
  }
  if (hot_pages_ == 0) {
    return;  // No hot set configured: nothing to dirty, and NextBounded(0) dies.
  }
  carry_bytes_ += static_cast<double>(config_.dirty_rate_bytes_per_sec) * dt.ToSecondsF();
  AddressSpace& space = kernel_->address_space(pid_);
  while (carry_bytes_ >= static_cast<double>(kPageSize)) {
    const PageCount page = static_cast<PageCount>(rng_.NextBounded(static_cast<uint64_t>(hot_pages_)));
    space.Touch(resident_.begin + static_cast<uint64_t>(CheckedMul(page, kPageSize)));
    carry_bytes_ -= static_cast<double>(kPageSize);
  }
}

}  // namespace javmm
