// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/workload/os_process.h"

#include "src/base/macros.h"

namespace javmm {

OsBackgroundProcess::OsBackgroundProcess(GuestKernel* kernel, const OsProcessConfig& config,
                                         Rng rng)
    : kernel_(kernel), config_(config), rng_(rng), pid_(kernel->CreateProcess("guest-os")) {
  CHECK_GE(config.resident_bytes, config.hot_bytes);
  AddressSpace& space = kernel_->address_space(pid_);
  resident_ = space.ReserveVa(config_.resident_bytes);
  CHECK(space.CommitRange(resident_.begin, resident_.bytes()));
  // Populate: boot-time writes so the pages carry non-zero versions.
  space.Write(resident_.begin, resident_.bytes());
  kernel_->clock().AddProcess(this);
}

OsBackgroundProcess::~OsBackgroundProcess() { kernel_->clock().RemoveProcess(this); }

void OsBackgroundProcess::RunFor(TimePoint start, Duration dt) {
  (void)start;
  if (kernel_->vm_paused()) {
    return;
  }
  carry_bytes_ += static_cast<double>(config_.dirty_rate_bytes_per_sec) * dt.ToSecondsF();
  AddressSpace& space = kernel_->address_space(pid_);
  const int64_t hot_pages = PagesForBytes(config_.hot_bytes);
  while (carry_bytes_ >= static_cast<double>(kPageSize)) {
    const int64_t page = static_cast<int64_t>(rng_.NextBounded(static_cast<uint64_t>(hot_pages)));
    space.Touch(resident_.begin + static_cast<uint64_t>(page * kPageSize));
    carry_bytes_ -= static_cast<double>(kPageSize);
  }
}

}  // namespace javmm
