// Copyright (c) 2026 The JAVMM Reproduction Authors.

#ifndef JAVMM_SRC_WORKLOAD_JAVA_APPLICATION_H_
#define JAVMM_SRC_WORKLOAD_JAVA_APPLICATION_H_

#include <memory>

#include "src/base/rng.h"
#include "src/guest/guest_kernel.h"
#include "src/jvm/generational_heap.h"
#include "src/jvm/ti_agent.h"
#include "src/sim/process.h"
#include "src/workload/spec.h"

namespace javmm {

// A Java workload running inside the guest: one JVM process executing one
// SPECjvm2008-like workload.
//
// As a simulation `Process` it turns elapsed simulated time into allocation
// (dirtying eden), old-generation mutation, completed operations, and GC
// pauses -- including the migration-time choreography: on a prepare-for-
// suspension request it runs to a safepoint, performs the enforced minor GC,
// and then holds the Java threads until the VM resumes at the destination
// (§4.3.2). While the guest VM is paused by the hypervisor, no progress is
// made at all.
class JavaApplication : public Process, public JvmMigrationHooks {
 public:
  JavaApplication(GuestKernel* kernel, const WorkloadSpec& spec, Rng rng,
                  const TiAgentConfig& agent_config = {});
  ~JavaApplication() override;

  JavaApplication(const JavaApplication&) = delete;
  JavaApplication& operator=(const JavaApplication&) = delete;

  // Process: consume `dt` of simulated time.
  void RunFor(TimePoint start, Duration dt) override;

  // JvmMigrationHooks (called by the TI agent).
  VaRange YoungGenRange() const override;
  VaRange OccupiedFromRange() const override;
  VaRange OldGenRange() const override;
  void RequestEnforcedGc() override;
  void ReleaseFromSafepoint() override;

  GenerationalHeap& heap() { return *heap_; }
  const GenerationalHeap& heap() const { return *heap_; }
  TiAgent& agent() { return *agent_; }
  AppId pid() const { return pid_; }
  const WorkloadSpec& spec() const { return spec_; }

  // Cumulative operations completed (fractional; the analyser differences it).
  double ops_completed() const { return ops_completed_; }

  // Total simulated time spent paused in GCs.
  Duration total_gc_pause() const { return total_gc_pause_; }

  // Observed time-to-safepoint of the most recent enforced-GC request
  // (downtime reporting; the workload keeps executing during this wait).
  Duration last_safepoint_wait() const { return safepoint_wait_observed_; }

  bool held_at_safepoint() const { return state_ == ExecState::kHeldAtSafepoint; }

 private:
  enum class ExecState {
    kRunning,           // Executing Java code (allocating, mutating, working).
    kInGc,              // Paused for a collection (natural or enforced).
    kHeldAtSafepoint,   // Enforced GC done; threads held until VM resume.
  };

  // Executes `dt` of normal Java-thread time: allocation, old mutation, ops.
  void AdvanceRunning(TimePoint now, Duration dt);

  // Starts a minor GC at `now`; enters kInGc for the GC's duration.
  void BeginGc(TimePoint now, bool enforced);

  void MutateOld(int64_t bytes);

  GuestKernel* kernel_;
  WorkloadSpec spec_;
  Rng rng_;
  AppId pid_;
  std::unique_ptr<GenerationalHeap> heap_;
  std::unique_ptr<TiAgent> agent_;

  ExecState state_ = ExecState::kRunning;
  Duration gc_left_ = Duration::Zero();
  bool gc_was_enforced_ = false;

  // Pending enforced-GC request: time left until the threads reach the
  // safepoint (sampled from U(0, safepoint_interval)).
  bool enforced_gc_pending_ = false;
  Duration time_to_safepoint_ = Duration::Zero();
  Duration safepoint_wait_observed_ = Duration::Zero();  // For downtime stats.

  // Fractional carries between RunFor slices.
  double alloc_carry_bytes_ = 0;
  double old_mut_carry_bytes_ = 0;
  int64_t old_sweep_cursor_page_ = 0;

  double ops_completed_ = 0;
  Duration total_gc_pause_ = Duration::Zero();
};

}  // namespace javmm

#endif  // JAVMM_SRC_WORKLOAD_JAVA_APPLICATION_H_
