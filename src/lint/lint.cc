// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <map>
#include <sstream>

#include "src/lint/rules.h"

namespace javmm {
namespace lint {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// One parsed `lint: <rule>-ok (reason)` annotation.
struct Suppression {
  int line = 0;
  std::string rule;
  bool valid = false;     // Known rule and non-empty reason.
  std::string complaint;  // Why the annotation is malformed, when it is.
};

// Parses every suppression annotation out of the file's comments. The
// annotation applies to findings on its own line or the line directly below
// (so it can sit on its own line above the code it excuses). Only comments
// that START with `lint:` are annotations; prose that merely mentions the
// syntax (docs, rule messages) is ignored.
std::vector<Suppression> ParseSuppressions(const TokenizedSource& src) {
  std::vector<Suppression> out;
  for (const Comment& comment : src.comments) {
    size_t start = 0;
    while (start < comment.text.size() &&
           std::isspace(static_cast<unsigned char>(comment.text[start]))) {
      ++start;
    }
    if (comment.text.compare(start, 5, "lint:") != 0) {
      continue;
    }
    size_t pos = start;
    while ((pos = comment.text.find("lint:", pos)) != std::string::npos) {
      pos += 5;
      while (pos < comment.text.size() &&
             std::isspace(static_cast<unsigned char>(comment.text[pos]))) {
        ++pos;
      }
      size_t word_end = pos;
      while (word_end < comment.text.size() &&
             (std::isalnum(static_cast<unsigned char>(comment.text[word_end])) ||
              comment.text[word_end] == '-' || comment.text[word_end] == '_')) {
        ++word_end;
      }
      Suppression sup;
      sup.line = comment.line;
      std::string word = comment.text.substr(pos, word_end - pos);
      pos = word_end;
      const std::string kOk = "-ok";
      if (word.size() <= kOk.size() ||
          word.compare(word.size() - kOk.size(), kOk.size(), kOk) != 0) {
        sup.complaint = "suppression '" + word + "' must be of the form '<rule>-ok (reason)'";
        out.push_back(std::move(sup));
        continue;
      }
      sup.rule = word.substr(0, word.size() - kOk.size());
      if (!IsKnownRule(sup.rule)) {
        sup.complaint = "suppression names unknown rule '" + sup.rule + "'";
        out.push_back(std::move(sup));
        continue;
      }
      // Mandatory parenthesized, non-empty reason.
      while (pos < comment.text.size() &&
             std::isspace(static_cast<unsigned char>(comment.text[pos]))) {
        ++pos;
      }
      if (pos >= comment.text.size() || comment.text[pos] != '(') {
        sup.complaint = "suppression of '" + sup.rule + "' is missing its (reason)";
        out.push_back(std::move(sup));
        continue;
      }
      const size_t close = comment.text.find(')', pos);
      std::string reason = close == std::string::npos
                               ? ""
                               : comment.text.substr(pos + 1, close - pos - 1);
      reason.erase(std::remove_if(reason.begin(), reason.end(),
                                  [](char c) {
                                    return std::isspace(static_cast<unsigned char>(c));
                                  }),
                   reason.end());
      if (reason.empty()) {
        sup.complaint = "suppression of '" + sup.rule + "' has an empty (reason)";
        out.push_back(std::move(sup));
        continue;
      }
      sup.valid = true;
      out.push_back(std::move(sup));
      pos = close == std::string::npos ? comment.text.size() : close + 1;
    }
  }
  return out;
}

}  // namespace

std::string Diagnostic::ToString() const {
  std::ostringstream os;
  os << file << ":" << line << ": " << rule << ": " << message;
  return os.str();
}

std::string Diagnostic::ToJson() const {
  std::ostringstream os;
  os << "{\"file\":\"" << JsonEscape(file) << "\",\"line\":" << line << ",\"rule\":\""
     << JsonEscape(rule) << "\",\"message\":\"" << JsonEscape(message) << "\"}";
  return os.str();
}

const char* UnitName(Unit unit) {
  switch (unit) {
    case Unit::kNone:
      return "untagged";
    case Unit::kNs:
      return "ns";
    case Unit::kBytes:
      return "bytes";
    case Unit::kPages:
      return "pages";
    case Unit::kPfn:
      return "pfn";
  }
  return "untagged";
}

const std::vector<std::string>& AllRules() {
  static const std::vector<std::string> kRules = {
      "banned-call",   "unordered-iter", "uninit-member",  "dcheck-side-effect",
      "include-guard", "float-export",   "unit-mix",       "unit-assign",
      "overflow-mul",  "narrowing-cast", "div-before-mul", "suppression"};
  return kRules;
}

bool IsKnownRule(const std::string& rule) {
  const std::vector<std::string>& rules = AllRules();
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

namespace {

// The tagged aliases from src/base/units.h (plus Pfn from src/mem/types.h):
// declaring a name with one of these carries its unit across files.
Unit UnitOfTaggedAlias(const std::string& type_name) {
  if (type_name == "Nanos") {
    return Unit::kNs;
  }
  if (type_name == "ByteCount") {
    return Unit::kBytes;
  }
  if (type_name == "PageCount") {
    return Unit::kPages;
  }
  if (type_name == "Pfn") {
    return Unit::kPfn;
  }
  return Unit::kNone;
}

}  // namespace

void CollectRegistry(const TokenizedSource& src, LintRegistry* registry) {
  const std::vector<Token>& toks = src.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    // `Nanos name;` / `ByteCount name = ...` member/global declarations
    // record name -> unit; conflicting declarations untrust the name.
    // Parameter positions (`, name` / `name)`) are deliberately excluded,
    // as are names shorter than 3 characters: a lambda parameter or test
    // local like `Pfn b` must not tag every `b` in the tree -- the per-file
    // dataflow pass handles those locally.
    if (t.kind == TokenKind::kIdentifier && UnitOfTaggedAlias(t.text) != Unit::kNone &&
        i + 2 < toks.size() && toks[i + 1].kind == TokenKind::kIdentifier &&
        toks[i + 1].text.size() >= 3 &&
        (toks[i + 2].IsPunct(";") || toks[i + 2].IsPunct("=") || toks[i + 2].IsPunct("{"))) {
      const bool alias_is_member_access =
          i > 0 && (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->") ||
                    toks[i - 1].IsPunct("::"));
      if (!alias_is_member_access) {
        const Unit unit = UnitOfTaggedAlias(t.text);
        auto [it, inserted] = registry->unit_names.emplace(toks[i + 1].text, unit);
        if (!inserted && it->second != unit) {
          it->second = Unit::kNone;
        }
      }
    }
    // `enum [class|struct] Name` -> Name is scalar for the member-init rule.
    if (t.IsIdent("enum") && i + 1 < toks.size()) {
      size_t j = i + 1;
      if (toks[j].IsIdent("class") || toks[j].IsIdent("struct")) {
        ++j;
      }
      if (j < toks.size() && toks[j].kind == TokenKind::kIdentifier) {
        registry->enum_types.insert(toks[j].text);
      }
      continue;
    }
    // `unordered_map<...> name` / `unordered_set<...>& name` -> remember the
    // declared name so iteration over it is recognized in any file.
    if (t.kind == TokenKind::kIdentifier &&
        (t.text == "unordered_map" || t.text == "unordered_set" ||
         t.text == "unordered_multimap" || t.text == "unordered_multiset") &&
        i + 1 < toks.size() && toks[i + 1].IsPunct("<")) {
      size_t j = i + 2;
      int depth = 1;
      while (j < toks.size() && depth > 0) {
        if (toks[j].IsPunct("<")) {
          ++depth;
        } else if (toks[j].IsPunct(">")) {
          --depth;
        } else if (toks[j].IsPunct(">>")) {
          depth -= 2;
        } else if (toks[j].IsPunct(";")) {
          break;
        }
        ++j;
      }
      while (j < toks.size() &&
             (toks[j].IsPunct("&") || toks[j].IsPunct("*") || toks[j].IsIdent("const"))) {
        ++j;
      }
      if (j < toks.size() && toks[j].kind == TokenKind::kIdentifier &&
          (j + 1 >= toks.size() || !toks[j + 1].IsPunct("("))) {
        registry->unordered_names.insert(toks[j].text);
      }
    }
  }
}

std::vector<Diagnostic> LintSource(const std::string& path, const TokenizedSource& src,
                                   const LintRegistry& registry, const LintOptions& options) {
  std::vector<Diagnostic> raw;
  const RuleContext ctx{path, src, registry, &raw};
  const auto enabled = [&options](const char* rule) {
    if (!options.only_rules.empty() && options.only_rules.count(rule) == 0) {
      return false;
    }
    return options.disabled_rules.count(rule) == 0;
  };
  if (enabled("banned-call")) {
    CheckBannedCalls(ctx);
  }
  if (enabled("unordered-iter")) {
    CheckUnorderedIteration(ctx);
  }
  if (enabled("uninit-member")) {
    CheckUninitializedMembers(ctx);
  }
  if (enabled("dcheck-side-effect")) {
    CheckDcheckSideEffects(ctx);
  }
  if (enabled("include-guard")) {
    CheckIncludeGuard(ctx);
  }
  if (enabled("float-export")) {
    CheckFloatExport(ctx);
  }
  if (enabled("unit-mix") || enabled("unit-assign") || enabled("overflow-mul") ||
      enabled("narrowing-cast") || enabled("div-before-mul")) {
    // One shared dataflow pass emits all five unit rules; disabled ones are
    // filtered below.
    CheckUnitDataflow(ctx);
  }
  raw.erase(std::remove_if(raw.begin(), raw.end(),
                           [&enabled](const Diagnostic& d) { return !enabled(d.rule.c_str()); }),
            raw.end());

  const std::vector<Suppression> suppressions = ParseSuppressions(src);
  std::map<int, std::set<std::string>> suppressed_rules_by_line;
  for (const Suppression& sup : suppressions) {
    if (sup.valid) {
      suppressed_rules_by_line[sup.line].insert(sup.rule);
    } else if (enabled("suppression")) {
      raw.push_back(Diagnostic{path, sup.line, "suppression", sup.complaint});
    }
  }

  std::vector<Diagnostic> out;
  for (Diagnostic& diag : raw) {
    bool suppressed = false;
    for (const int line : {diag.line, diag.line - 1}) {
      auto it = suppressed_rules_by_line.find(line);
      if (it != suppressed_rules_by_line.end() && it->second.count(diag.rule) != 0) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) {
      out.push_back(std::move(diag));
    }
  }
  std::sort(out.begin(), out.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.line != b.line) {
      return a.line < b.line;
    }
    if (a.rule != b.rule) {
      return a.rule < b.rule;
    }
    return a.message < b.message;
  });
  return out;
}

Baseline Baseline::Parse(const std::string& content) {
  Baseline baseline;
  std::istringstream is(content);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') {
      continue;
    }
    baseline.keys_.insert(line);
  }
  return baseline;
}

std::string Baseline::Serialize(const std::vector<Diagnostic>& diags) {
  std::set<std::string> keys;
  for (const Diagnostic& diag : diags) {
    keys.insert(diag.file + "\t" + diag.rule + "\t" + diag.message);
  }
  std::string out =
      "# javmm-lint baseline: grandfathered findings, one per line as\n"
      "# file<TAB>rule<TAB>message (line numbers excluded so edits elsewhere\n"
      "# in the file do not churn this list). Regenerate with\n"
      "#   tools/javmm_lint --write-baseline=tools/lint_baseline.txt src bench tests\n"
      "# The goal is an EMPTY baseline: fix or annotate findings instead of\n"
      "# grandfathering new ones.\n";
  for (const std::string& key : keys) {
    out += key + "\n";
  }
  return out;
}

bool Baseline::Covers(const Diagnostic& diag) const {
  return keys_.count(diag.file + "\t" + diag.rule + "\t" + diag.message) != 0;
}

std::vector<std::string> CollectSourceFiles(const std::vector<std::string>& paths,
                                            std::string* error) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  const auto is_source = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".cc" || ext == ".cpp";
  };
  for (const std::string& arg : paths) {
    std::error_code ec;
    const fs::path path(arg);
    if (fs::is_directory(path, ec)) {
      fs::recursive_directory_iterator it(path, fs::directory_options::skip_permission_denied,
                                          ec);
      if (ec) {
        if (error != nullptr) {
          *error = "cannot walk directory '" + arg + "': " + ec.message();
        }
        return {};
      }
      for (auto end = fs::recursive_directory_iterator(); it != end; it.increment(ec)) {
        if (ec) {
          break;
        }
        const std::string name = it->path().filename().string();
        if (it->is_directory() && (name == "lint_fixtures" || name.rfind("build", 0) == 0 ||
                                   name == ".git")) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && is_source(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(path.generic_string());
    } else {
      if (error != nullptr) {
        *error = "no such file or directory: '" + arg + "'";
      }
      return {};
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

}  // namespace lint
}  // namespace javmm
