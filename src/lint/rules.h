// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Internal rule implementations for javmm-lint. Each rule is one free
// function over a RuleContext; LintSource (lint.cc) decides which rules run
// for a given path and applies suppressions afterwards.

#ifndef JAVMM_SRC_LINT_RULES_H_
#define JAVMM_SRC_LINT_RULES_H_

#include <string>
#include <vector>

#include "src/lint/lint.h"
#include "src/lint/source.h"

namespace javmm {
namespace lint {

struct RuleContext {
  const std::string& path;
  const TokenizedSource& src;
  const LintRegistry& registry;
  std::vector<Diagnostic>* out;

  void Report(int line, const char* rule, std::string message) const {
    out->push_back(Diagnostic{path, line, rule, std::move(message)});
  }
};

// True when `path` lies under directory `dir` ("src/base/" style, trailing
// slash required). Matches anywhere in the path so absolute and
// repo-relative spellings classify identically.
bool PathInDir(const std::string& path, const char* dir);

void CheckBannedCalls(const RuleContext& ctx);       // banned-call
void CheckUnorderedIteration(const RuleContext& ctx);  // unordered-iter
void CheckUninitializedMembers(const RuleContext& ctx);  // uninit-member
void CheckDcheckSideEffects(const RuleContext& ctx);  // dcheck-side-effect
void CheckIncludeGuard(const RuleContext& ctx);       // include-guard
void CheckFloatExport(const RuleContext& ctx);        // float-export

// The flow-aware unit dataflow pass (src/lint/unit_rules.cc): one walk over
// the token stream maintaining a per-function symbol table of unit-tagged
// names, emitting unit-mix, unit-assign, overflow-mul, narrowing-cast, and
// div-before-mul. LintSource filters out whichever of the five are disabled.
void CheckUnitDataflow(const RuleContext& ctx);

// Unit inferred from an identifier's spelling alone: `*_ns`/`*_nanos` -> ns,
// `*_bytes`/`*_byte` -> bytes, `*_pages` -> pages, `pfn*`/`*_pfn` -> pfn.
// Trailing member underscores (`wire_bytes_`) are stripped first. Exposed
// for the self-tests.
Unit UnitFromName(const std::string& ident);

}  // namespace lint
}  // namespace javmm

#endif  // JAVMM_SRC_LINT_RULES_H_
