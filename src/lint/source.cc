// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/lint/source.h"

#include <cctype>
#include <cstddef>

namespace javmm {
namespace lint {

namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Multi-character punctuators, longest first so greedy matching is correct.
const char* const kPuncts[] = {
    "<<=", ">>=", "<=>", "...", "->*", "::", "->", "++", "--", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", ".*",
};

class Tokenizer {
 public:
  explicit Tokenizer(const std::string& content) : src_(content) {}

  TokenizedSource Run() {
    SplitLines();
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        at_line_start_ = true;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '#' && at_line_start_) {
        SkipPreprocessorLine();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
      } else if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
      } else if (c == 'R' && Peek(1) == '"') {
        LexRawString();
      } else if (c == '"') {
        LexString();
      } else if (c == '\'' && !PrecededByDigit()) {
        LexCharLiteral();
      } else if (IsIdentStart(c)) {
        LexIdentifier();
      } else if (IsDigit(c) || (c == '.' && IsDigit(Peek(1)))) {
        LexNumber();
      } else {
        LexPunct();
      }
    }
    return std::move(out_);
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  bool PrecededByDigit() const {
    // A ' between digits is a C++14 digit separator, not a char literal. The
    // number lexer consumes those itself; this guard only matters if a
    // separator somehow starts a token (e.g. after a macro was skipped).
    return !out_.tokens.empty() && out_.tokens.back().kind == TokenKind::kNumber;
  }

  void SplitLines() {
    std::string current;
    for (const char c : src_) {
      if (c == '\n') {
        out_.lines.push_back(current);
        current.clear();
      } else {
        current += c;
      }
    }
    if (!current.empty()) {
      out_.lines.push_back(current);
    }
  }

  void Emit(TokenKind kind, std::string text, int line) {
    out_.tokens.push_back(Token{kind, std::move(text), line});
  }

  void SkipPreprocessorLine() {
    // Consume the directive including backslash-continuations; comments on
    // the directive line are still collected so suppressions work there.
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (c == '\n') {
        if (pos_ > 0 && src_[pos_ - 1] == '\\') {
          ++line_;
          ++pos_;
          continue;
        }
        break;  // Newline itself handled by the main loop.
      }
      ++pos_;
    }
    at_line_start_ = false;
  }

  void LexLineComment() {
    const int start_line = line_;
    pos_ += 2;
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != '\n') {
      text += src_[pos_++];
    }
    out_.comments.push_back(Comment{start_line, std::move(text)});
  }

  void LexBlockComment() {
    const int start_line = line_;
    pos_ += 2;
    std::string text;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '*' && Peek(1) == '/') {
        pos_ += 2;
        break;
      }
      if (src_[pos_] == '\n') {
        ++line_;
      }
      text += src_[pos_++];
    }
    out_.comments.push_back(Comment{start_line, std::move(text)});
  }

  void LexString() {
    const int start_line = line_;
    ++pos_;  // Opening quote.
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != '"') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        text += src_[pos_];
        text += src_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') {
        ++line_;
      }
      text += src_[pos_++];
    }
    if (pos_ < src_.size()) {
      ++pos_;  // Closing quote.
    }
    Emit(TokenKind::kString, std::move(text), start_line);
  }

  void LexRawString() {
    const int start_line = line_;
    pos_ += 2;  // R"
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') {
      delim += src_[pos_++];
    }
    if (pos_ < src_.size()) {
      ++pos_;  // (
    }
    const std::string closer = ")" + delim + "\"";
    std::string text;
    while (pos_ < src_.size() && src_.compare(pos_, closer.size(), closer) != 0) {
      if (src_[pos_] == '\n') {
        ++line_;
      }
      text += src_[pos_++];
    }
    pos_ += closer.size();
    if (pos_ > src_.size()) {
      pos_ = src_.size();
    }
    Emit(TokenKind::kString, std::move(text), start_line);
  }

  void LexCharLiteral() {
    const int start_line = line_;
    ++pos_;  // Opening '.
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        text += src_[pos_];
        text += src_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      text += src_[pos_++];
    }
    if (pos_ < src_.size()) {
      ++pos_;  // Closing '.
    }
    Emit(TokenKind::kCharLiteral, std::move(text), start_line);
  }

  void LexIdentifier() {
    const int start_line = line_;
    std::string text;
    while (pos_ < src_.size() && IsIdentChar(src_[pos_])) {
      text += src_[pos_++];
    }
    Emit(TokenKind::kIdentifier, std::move(text), start_line);
  }

  void LexNumber() {
    const int start_line = line_;
    std::string text;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (IsIdentChar(c) || c == '.' || c == '\'') {
        text += c;
        ++pos_;
        // Exponent sign: 1e+9 / 1E-9 (hex literals never get here with +/-).
        if ((c == 'e' || c == 'E') && text.find('x') == std::string::npos &&
            (Peek(0) == '+' || Peek(0) == '-')) {
          text += src_[pos_++];
        }
        continue;
      }
      break;
    }
    Emit(TokenKind::kNumber, std::move(text), start_line);
  }

  void LexPunct() {
    for (const char* p : kPuncts) {
      const size_t len = std::char_traits<char>::length(p);
      if (src_.compare(pos_, len, p) == 0) {
        Emit(TokenKind::kPunct, p, line_);
        pos_ += len;
        return;
      }
    }
    Emit(TokenKind::kPunct, std::string(1, src_[pos_]), line_);
    ++pos_;
  }

  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  TokenizedSource out_;
};

}  // namespace

TokenizedSource Tokenize(const std::string& content) { return Tokenizer(content).Run(); }

bool IsFloatLiteral(const std::string& number_text) {
  if (number_text.size() > 1 && number_text[0] == '0' &&
      (number_text[1] == 'x' || number_text[1] == 'X')) {
    // Hex: floating only with a 'p' exponent (0x1p-3), which nobody writes
    // here; treat all hex as integral.
    return number_text.find('p') != std::string::npos ||
           number_text.find('P') != std::string::npos;
  }
  for (const char c : number_text) {
    if (c == '.' || c == 'e' || c == 'E') {
      return true;
    }
  }
  return false;
}

}  // namespace lint
}  // namespace javmm
