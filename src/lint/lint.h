// Copyright (c) 2026 The JAVMM Reproduction Authors.
// javmm-lint: static enforcement of the project's determinism & correctness
// contract (DESIGN.md §9). Library behind the tools/javmm_lint CLI and the
// lint_self_test / lint_tree ctest targets.
//
// Rules shipped in v1 (rule ids as reported in diagnostics):
//
//   banned-call         rand/srand/random_device/system_clock/steady_clock/
//                       time()/getenv (and the <random>/<chrono>/<ctime>
//                       includes) outside src/base/ and src/runner/ -- all
//                       nondeterminism must flow through Rng and SimClock.
//   unordered-iter      range-for / .begin() iteration over unordered_map /
//                       unordered_set in result-affecting directories
//                       (src/migration, src/core, src/jvm, src/mem,
//                       src/guest, src/stats): hash order can leak into
//                       results and traces. Suppress a deliberate use with
//                       `// lint: unordered-iter-ok (reason)`.
//   uninit-member       scalar (builtin or enum) struct members without a
//                       default initializer under src/migration, src/stats,
//                       src/trace -- the bug class behind PR 1's
//                       uninitialized pause fields.
//   dcheck-side-effect  ++/--/assignment inside DCHECK* arguments: the whole
//                       expression is compiled out in NDEBUG builds.
//   include-guard       headers must carry the project-style
//                       #ifndef/#define guard whose name matches the path.
//   float-export        floating-point values flowing into the integer-only
//                       JSON-lines export paths (src/runner/, bench/common.h).
//   suppression         malformed suppression comments (unknown rule or
//                       missing reason); keeps the annotation channel honest.
//
// Any rule can be suppressed on a specific line (or the line directly above
// it) with `// lint: <rule>-ok (reason)`; the reason is mandatory.

#ifndef JAVMM_SRC_LINT_LINT_H_
#define JAVMM_SRC_LINT_LINT_H_

#include <set>
#include <string>
#include <vector>

#include "src/lint/source.h"

namespace javmm {
namespace lint {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  // "file:line: rule-id: message" -- the compiler-style single-line form.
  std::string ToString() const;
  // {"file":...,"line":N,"rule":...,"message":...} for --json mode.
  std::string ToJson() const;
};

// Every shipped rule id, in catalogue order.
const std::vector<std::string>& AllRules();
bool IsKnownRule(const std::string& rule);

// Cross-file state gathered in a first pass over every scanned file, so e.g.
// a container declared in lkm.h is recognized when lkm.cc iterates it, and
// enum types declared anywhere count as scalars for the member-init rule.
struct LintRegistry {
  std::set<std::string> enum_types;       // `enum [class] Name` declarations.
  std::set<std::string> unordered_names;  // Variables/members of unordered type.
};

void CollectRegistry(const TokenizedSource& src, LintRegistry* registry);

struct LintOptions {
  std::set<std::string> disabled_rules;
};

// Runs every enabled rule over one tokenized file. `path` decides which rules
// apply (repo-relative with forward slashes, e.g. "src/mem/page_table.h");
// suppression comments have already been honoured in the result.
std::vector<Diagnostic> LintSource(const std::string& path, const TokenizedSource& src,
                                   const LintRegistry& registry, const LintOptions& options);

// Grandfathered-findings file: one finding per line as `file<TAB>rule<TAB>
// message` (line numbers intentionally excluded so unrelated edits do not
// churn the baseline). `#` comments and blank lines are ignored.
class Baseline {
 public:
  static Baseline Parse(const std::string& content);
  static std::string Serialize(const std::vector<Diagnostic>& diags);

  bool Covers(const Diagnostic& diag) const;
  size_t size() const { return keys_.size(); }

 private:
  std::set<std::string> keys_;
};

// Expands files/directories into the sorted list of *.h/*.cc/*.cpp files to
// lint. Directory walks skip `lint_fixtures` (the linter's own known-bad
// corpus) and any directory starting with "build"; passing a fixture file
// directly still works.
std::vector<std::string> CollectSourceFiles(const std::vector<std::string>& paths,
                                            std::string* error);

}  // namespace lint
}  // namespace javmm

#endif  // JAVMM_SRC_LINT_LINT_H_
