// Copyright (c) 2026 The JAVMM Reproduction Authors.
// javmm-lint: static enforcement of the project's determinism & correctness
// contract (DESIGN.md §9). Library behind the tools/javmm_lint CLI and the
// lint_self_test / lint_tree ctest targets.
//
// Rules shipped in v1 (rule ids as reported in diagnostics):
//
//   banned-call         rand/srand/random_device/system_clock/steady_clock/
//                       time()/getenv (and the <random>/<chrono>/<ctime>
//                       includes) outside src/base/ and src/runner/ -- all
//                       nondeterminism must flow through Rng and SimClock.
//   unordered-iter      range-for / .begin() iteration over unordered_map /
//                       unordered_set in result-affecting directories
//                       (src/migration, src/core, src/jvm, src/mem,
//                       src/guest, src/stats): hash order can leak into
//                       results and traces. Suppress a deliberate use with
//                       `// lint: unordered-iter-ok (reason)`.
//   uninit-member       scalar (builtin or enum) struct members without a
//                       default initializer under src/migration, src/stats,
//                       src/trace -- the bug class behind PR 1's
//                       uninitialized pause fields.
//   dcheck-side-effect  ++/--/assignment inside DCHECK* arguments: the whole
//                       expression is compiled out in NDEBUG builds.
//   include-guard       headers must carry the project-style
//                       #ifndef/#define guard whose name matches the path.
//   float-export        floating-point values flowing into the integer-only
//                       JSON-lines export paths (src/runner/, bench/common.h).
//   suppression         malformed suppression comments (unknown rule or
//                       missing reason); keeps the annotation channel honest.
//
// v2 adds a per-function, flow-aware unit dataflow layer (DESIGN.md §13)
// over the simulation core (src/base, src/net, src/faults, src/migration,
// src/mem, src/core, src/trace). A lightweight symbol table infers unit tags
// (ns / bytes / pages / pfn) from name suffixes (`*_ns`, `*_bytes`,
// `*_pages`, `pfn*`), the tagged aliases in src/base/units.h (Nanos,
// ByteCount, PageCount, Pfn) wherever they are declared with, and
// initializer dataflow (`int64_t hi = pages * (c + 1) / n` tags `hi` as
// pages). On top of it:
//
//   unit-mix        +/-/comparison between ns and bytes/pages, or bytes and
//                   pages -- the classic "added a duration to a byte count".
//   unit-assign     a bytes/pages-valued expression stored into an *_ns
//                   lvalue (or any other cross-unit store) with no
//                   converting arithmetic in between.
//   overflow-mul    raw `*` between two unit-tagged wide operands outside
//                   the checked helpers (CheckedMul / MulDiv): the PR 6
//                   TryTransfer bug shape, products past int64.
//   narrowing-cast  a unit-tagged int64 value cast into a type narrower
//                   than 64 bits: silently truncates at scale.
//   div-before-mul  `a / b * c` rate math: the integer division truncates
//                   before the multiply; MulDiv(a, c, b) keeps the
//                   precision.
//
// Any rule can be suppressed on a specific line (or the line directly above
// it) with `// lint: <rule>-ok (reason)`; the reason is mandatory.

#ifndef JAVMM_SRC_LINT_LINT_H_
#define JAVMM_SRC_LINT_LINT_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/lint/source.h"

namespace javmm {
namespace lint {

// Unit tag carried by an integer expression in the simulation core. kPfn is
// deliberately compatible with kPages in comparisons/additions (a frame
// number indexes page space; `pfn < frames` is idiomatic) but still counts
// as wide for overflow-mul and narrowing-cast.
enum class Unit {
  kNone = 0,
  kNs,
  kBytes,
  kPages,
  kPfn,
};

const char* UnitName(Unit unit);

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  // "file:line: rule-id: message" -- the compiler-style single-line form.
  std::string ToString() const;
  // {"file":...,"line":N,"rule":...,"message":...} for --json mode.
  std::string ToJson() const;
};

// Every shipped rule id, in catalogue order.
const std::vector<std::string>& AllRules();
bool IsKnownRule(const std::string& rule);

// Cross-file state gathered in a first pass over every scanned file, so e.g.
// a container declared in lkm.h is recognized when lkm.cc iterates it, and
// enum types declared anywhere count as scalars for the member-init rule.
struct LintRegistry {
  std::set<std::string> enum_types;       // `enum [class] Name` declarations.
  std::set<std::string> unordered_names;  // Variables/members of unordered type.
  // Names declared with a unit-tagged alias (Nanos / ByteCount / PageCount /
  // Pfn) anywhere in the scanned tree, so a member declared `ByteCount
  // total;` in a header carries its unit into every .cc that touches it.
  // Names seen with conflicting units collapse to kNone (untrusted).
  std::map<std::string, Unit> unit_names;
};

void CollectRegistry(const TokenizedSource& src, LintRegistry* registry);

struct LintOptions {
  std::set<std::string> disabled_rules;
  // When non-empty, ONLY these rules run (--only=RULE); disabled_rules still
  // subtracts from the set.
  std::set<std::string> only_rules;
};

// Runs every enabled rule over one tokenized file. `path` decides which rules
// apply (repo-relative with forward slashes, e.g. "src/mem/page_table.h");
// suppression comments have already been honoured in the result.
std::vector<Diagnostic> LintSource(const std::string& path, const TokenizedSource& src,
                                   const LintRegistry& registry, const LintOptions& options);

// Grandfathered-findings file: one finding per line as `file<TAB>rule<TAB>
// message` (line numbers intentionally excluded so unrelated edits do not
// churn the baseline). `#` comments and blank lines are ignored.
class Baseline {
 public:
  static Baseline Parse(const std::string& content);
  static std::string Serialize(const std::vector<Diagnostic>& diags);

  bool Covers(const Diagnostic& diag) const;
  size_t size() const { return keys_.size(); }

 private:
  std::set<std::string> keys_;
};

// Expands files/directories into the sorted list of *.h/*.cc/*.cpp files to
// lint. Directory walks skip `lint_fixtures` (the linter's own known-bad
// corpus) and any directory starting with "build"; passing a fixture file
// directly still works.
std::vector<std::string> CollectSourceFiles(const std::vector<std::string>& paths,
                                            std::string* error);

}  // namespace lint
}  // namespace javmm

#endif  // JAVMM_SRC_LINT_LINT_H_
