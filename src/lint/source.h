// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Lightweight C++ tokenizer for javmm-lint (src/lint/).
//
// The linter deliberately avoids libclang: the project contract it enforces
// (DESIGN.md §9) is lexical -- banned identifiers, iteration syntax over
// known container names, member declarations inside `struct { ... }` -- so a
// comment/string-aware token stream plus the raw source lines is enough, and
// the tool stays a sub-second dependency-free build step.
//
// The tokenizer understands line/block comments, string/char literals
// (including raw strings and digit separators), and multi-character
// punctuators. Preprocessor directives are *not* tokenized -- their raw lines
// are kept in TokenizedSource::lines for the rules that need them
// (include-guard, banned includes) -- so macro bodies never confuse the
// statement-level rules.

#ifndef JAVMM_SRC_LINT_SOURCE_H_
#define JAVMM_SRC_LINT_SOURCE_H_

#include <string>
#include <vector>

namespace javmm {
namespace lint {

enum class TokenKind {
  kIdentifier,  // Identifiers and keywords (the rules tell them apart).
  kNumber,      // Integer and floating literals, including 0x / 1'000 / 1e9.
  kString,      // String literal, text WITHOUT the surrounding quotes.
  kCharLiteral,
  kPunct,  // Operators and punctuation, longest-match ("<<=", "::", ...).
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 0;  // 1-based source line the token starts on.

  bool Is(TokenKind k, const char* t) const { return kind == k && text == t; }
  bool IsIdent(const char* t) const { return Is(TokenKind::kIdentifier, t); }
  bool IsPunct(const char* t) const { return Is(TokenKind::kPunct, t); }
};

struct Comment {
  int line = 0;      // 1-based line the comment starts on.
  std::string text;  // Body without the // or /* */ markers.
};

struct TokenizedSource {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  // Raw source lines (index 0 = line 1), preprocessor lines included.
  std::vector<std::string> lines;
};

// Tokenizes `content`. Never fails: unrecognized bytes become single-char
// punct tokens, and an unterminated literal swallows the rest of the file.
TokenizedSource Tokenize(const std::string& content);

// True when the number literal is floating point (has '.', or a decimal
// exponent such as 1e9, but not hex like 0xE9).
bool IsFloatLiteral(const std::string& number_text);

}  // namespace lint
}  // namespace javmm

#endif  // JAVMM_SRC_LINT_SOURCE_H_
