// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/lint/rules.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <set>

namespace javmm {
namespace lint {

namespace {

// Directories whose numbers/traces define experiment results: hash-order
// leaks here become nondeterministic exhibits.
const char* const kResultDirs[] = {"src/migration/", "src/core/", "src/jvm/",
                                   "src/mem/",       "src/guest/", "src/stats/"};

// The only directories allowed to touch host entropy/clocks: src/base wraps
// them (Rng, units), src/runner owns the worker pool and CLI plumbing.
const char* const kNondeterminismAllowed[] = {"src/base/", "src/runner/"};

// Directories swept by the struct-member initialization rule -- the result
// and trace carriers, where an indeterminate field silently corrupts tables.
const char* const kMemberInitDirs[] = {"src/migration/", "src/stats/", "src/trace/"};

bool InAnyDir(const std::string& path, const char* const (&dirs)[6]) {
  for (const char* dir : dirs) {
    if (PathInDir(path, dir)) {
      return true;
    }
  }
  return false;
}

bool InAnyDir(const std::string& path, const char* const (&dirs)[2]) {
  return PathInDir(path, dirs[0]) || PathInDir(path, dirs[1]);
}

bool InAnyDir(const std::string& path, const char* const (&dirs)[3]) {
  return PathInDir(path, dirs[0]) || PathInDir(path, dirs[1]) || PathInDir(path, dirs[2]);
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string Trimmed(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
    --e;
  }
  return s.substr(b, e - b);
}

size_t SkipBalanced(const std::vector<Token>& toks, size_t i, const char* open,
                    const char* close) {
  // `i` indexes the token AFTER the opener. Returns index just past the
  // matching closer.
  int depth = 1;
  while (i < toks.size() && depth > 0) {
    if (toks[i].IsPunct(open)) {
      ++depth;
    } else if (toks[i].IsPunct(close)) {
      --depth;
    }
    ++i;
  }
  return i;
}

bool IsUnorderedContainerName(const std::string& text) {
  return text == "unordered_map" || text == "unordered_set" || text == "unordered_multimap" ||
         text == "unordered_multiset";
}

const std::set<std::string>& BuiltinScalarTypes() {
  static const std::set<std::string> kTypes = {
      "bool",     "char",    "wchar_t",  "char8_t",  "char16_t", "char32_t", "short",
      "int",      "long",    "float",    "double",   "unsigned", "signed",   "size_t",
      "ptrdiff_t", "ssize_t", "int8_t",  "int16_t",  "int32_t",  "int64_t",  "uint8_t",
      "uint16_t", "uint32_t", "uint64_t", "intptr_t", "uintptr_t"};
  return kTypes;
}

}  // namespace

bool PathInDir(const std::string& path, const char* dir) {
  const size_t pos = path.find(dir);
  return pos == 0 || (pos != std::string::npos && path[pos - 1] == '/');
}

// ---------------------------------------------------------------------------
// banned-call
// ---------------------------------------------------------------------------

void CheckBannedCalls(const RuleContext& ctx) {
  if (InAnyDir(ctx.path, kNondeterminismAllowed)) {
    return;
  }
  static const std::set<std::string> kBannedAlways = {"srand", "random_device", "system_clock",
                                                      "steady_clock", "high_resolution_clock",
                                                      "getenv", "rand"};
  const std::vector<Token>& toks = ctx.src.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) {
      continue;
    }
    const bool member_access =
        i > 0 && (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->"));
    if (kBannedAlways.count(t.text) != 0 && !member_access) {
      ctx.Report(t.line, "banned-call",
                 "'" + t.text +
                     "' is a nondeterminism source; only src/base/ and src/runner/ may touch "
                     "host entropy/clocks (route through Rng / SimClock)");
    } else if (t.text == "time" && !member_access && i + 1 < toks.size() &&
               toks[i + 1].IsPunct("(")) {
      ctx.Report(t.line, "banned-call",
                 "'time()' reads the wall clock; simulated time must come from SimClock "
                 "(src/base/, src/runner/ excepted)");
    }
  }
  // Includes of entropy/clock headers outside the allowed dirs are flagged at
  // the include line, so the dependency is caught even before any call.
  for (size_t ln = 0; ln < ctx.src.lines.size(); ++ln) {
    const std::string line = Trimmed(ctx.src.lines[ln]);
    if (line.empty() || line[0] != '#' || line.find("include") == std::string::npos) {
      continue;
    }
    for (const char* header : {"<random>", "<chrono>", "<ctime>"}) {
      if (line.find(header) != std::string::npos) {
        ctx.Report(static_cast<int>(ln + 1), "banned-call",
                   std::string("#include ") + header +
                       " outside src/base/ and src/runner/: wrap the dependency behind the "
                       "deterministic facades instead");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// unordered-iter
// ---------------------------------------------------------------------------

void CheckUnorderedIteration(const RuleContext& ctx) {
  if (!InAnyDir(ctx.path, kResultDirs)) {
    return;
  }
  const std::vector<Token>& toks = ctx.src.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    // Range-for whose range expression names an unordered container (declared
    // anywhere in the scanned tree) or constructs one inline.
    if (t.IsIdent("for") && i + 1 < toks.size() && toks[i + 1].IsPunct("(")) {
      size_t j = i + 2;
      int depth = 1;
      size_t colon = 0;
      while (j < toks.size() && depth > 0) {
        if (toks[j].IsPunct("(")) {
          ++depth;
        } else if (toks[j].IsPunct(")")) {
          --depth;
        } else if (depth == 1 && toks[j].IsPunct(":") && colon == 0) {
          colon = j;
        } else if (depth == 1 && toks[j].IsPunct(";")) {
          colon = 0;  // Classic three-clause for: the colon was a ternary's.
          break;
        }
        ++j;
      }
      if (colon != 0) {
        for (size_t k = colon + 1; k < j - 1; ++k) {
          const Token& r = toks[k];
          if (r.kind != TokenKind::kIdentifier) {
            continue;
          }
          if (ctx.registry.unordered_names.count(r.text) != 0 ||
              IsUnorderedContainerName(r.text)) {
            ctx.Report(t.line, "unordered-iter",
                       "range-for over unordered container '" + r.text +
                           "' in a result-affecting directory: hash order can reach results "
                           "or traces; use std::map / a sorted vector, or annotate the loop "
                           "with `// lint: unordered-iter-ok (reason)`");
            break;
          }
        }
      }
      continue;
    }
    // Iterator-style loops: <unordered name>.begin() / ->cbegin() etc.
    if (t.kind == TokenKind::kIdentifier && ctx.registry.unordered_names.count(t.text) != 0 &&
        i + 2 < toks.size() && (toks[i + 1].IsPunct(".") || toks[i + 1].IsPunct("->"))) {
      const std::string& m = toks[i + 2].text;
      if (m == "begin" || m == "cbegin" || m == "rbegin") {
        ctx.Report(t.line, "unordered-iter",
                   "iterator walk over unordered container '" + t.text +
                       "' in a result-affecting directory: hash order can reach results or "
                       "traces; use std::map / a sorted vector, or annotate with `// lint: "
                       "unordered-iter-ok (reason)`");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// uninit-member
// ---------------------------------------------------------------------------

namespace {

// Analyzes one member-declaration statement (tokens between ';'s at struct
// depth 1) and reports scalars without initializers.
void AnalyzeMemberStatement(const RuleContext& ctx, const std::string& struct_name,
                            const std::vector<Token>& stmt) {
  if (stmt.size() < 2) {
    return;
  }
  static const std::set<std::string> kSkipLead = {
      "using",  "typedef",  "friend",   "static", "template", "operator",
      "virtual", "explicit", "constexpr", "inline", "struct",  "class",
      "enum",   "union",    "public",   "private", "protected"};
  if (kSkipLead.count(stmt.front().text) != 0) {
    return;
  }
  for (const Token& t : stmt) {
    if (t.IsPunct("=") || t.IsPunct("(") || t.IsPunct("[") || t.IsPunct(":")) {
      return;  // Initialized, a function, an array, or a bitfield.
    }
  }
  const Token& name = stmt.back();
  if (name.kind != TokenKind::kIdentifier) {
    return;
  }
  bool scalar = false;
  for (size_t i = 0; i + 1 < stmt.size(); ++i) {
    const Token& t = stmt[i];
    if (t.IsPunct("*") || t.IsPunct("&") || t.IsPunct("<")) {
      return;  // Pointer / reference / template type: out of scope.
    }
    if (t.kind == TokenKind::kIdentifier && (BuiltinScalarTypes().count(t.text) != 0 ||
                                             ctx.registry.enum_types.count(t.text) != 0)) {
      scalar = true;
    }
  }
  if (scalar) {
    ctx.Report(name.line, "uninit-member",
               "scalar member '" + name.text + "' of struct '" + struct_name +
                   "' has no default initializer: its value is indeterminate unless every "
                   "construction site remembers to set it (the PR 1 pause-field bug class)");
  }
}

}  // namespace

void CheckUninitializedMembers(const RuleContext& ctx) {
  if (!InAnyDir(ctx.path, kMemberInitDirs)) {
    return;
  }
  const std::vector<Token>& toks = ctx.src.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!toks[i].IsIdent("struct") || toks[i + 1].kind != TokenKind::kIdentifier) {
      continue;
    }
    // `struct Name ... {` -- skip forward declarations and elaborated uses.
    const std::string struct_name = toks[i + 1].text;
    size_t j = i + 2;
    while (j < toks.size() && !toks[j].IsPunct("{") && !toks[j].IsPunct(";")) {
      ++j;
    }
    if (j >= toks.size() || toks[j].IsPunct(";")) {
      continue;
    }
    // Walk the body at depth 1, collecting member statements. Function bodies
    // and nested types are skipped wholesale (nested structs are found by the
    // outer scan on its own pass over their `struct` token).
    ++j;
    std::vector<Token> stmt;
    while (j < toks.size()) {
      const Token& t = toks[j];
      if (t.IsPunct("}")) {
        break;
      }
      if (t.IsPunct("{")) {
        bool is_function = false;
        bool is_nested_type = false;
        for (const Token& s : stmt) {
          if (s.IsPunct("(")) {
            is_function = true;
          }
          if (s.IsIdent("struct") || s.IsIdent("class") || s.IsIdent("enum") ||
              s.IsIdent("union")) {
            is_nested_type = true;
          }
        }
        j = SkipBalanced(toks, j + 1, "{", "}");
        if (is_function || is_nested_type) {
          // Swallow any trailing `;` (nested type) -- harmless for functions.
          if (j < toks.size() && toks[j].IsPunct(";")) {
            ++j;
          }
          stmt.clear();
        } else {
          // Brace initializer `int x{0};`: counts as initialized.
          while (j < toks.size() && !toks[j].IsPunct(";")) {
            ++j;
          }
          ++j;
          stmt.clear();
        }
        continue;
      }
      if (t.IsPunct(";")) {
        AnalyzeMemberStatement(ctx, struct_name, stmt);
        stmt.clear();
        ++j;
        continue;
      }
      // Access specifiers terminate with ':'; drop them from the statement.
      if (t.IsPunct(":") && stmt.size() == 1 &&
          (stmt[0].IsIdent("public") || stmt[0].IsIdent("private") ||
           stmt[0].IsIdent("protected"))) {
        stmt.clear();
        ++j;
        continue;
      }
      stmt.push_back(t);
      ++j;
    }
  }
}

// ---------------------------------------------------------------------------
// dcheck-side-effect
// ---------------------------------------------------------------------------

void CheckDcheckSideEffects(const RuleContext& ctx) {
  static const std::set<std::string> kMutatingOps = {"++", "--", "=",  "+=", "-=", "*=",
                                                     "/=", "%=", "&=", "|=", "^=", "<<=",
                                                     ">>="};
  const std::vector<Token>& toks = ctx.src.tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier || t.text.rfind("DCHECK", 0) != 0 ||
        !toks[i + 1].IsPunct("(")) {
      continue;
    }
    const size_t end = SkipBalanced(toks, i + 2, "(", ")");
    // Argument tokens span [i + 2, end - 1); end - 1 is the closing ')'.
    for (size_t j = i + 2; j + 1 < end && j < toks.size(); ++j) {
      if (toks[j].kind == TokenKind::kPunct && kMutatingOps.count(toks[j].text) != 0) {
        ctx.Report(t.line, "dcheck-side-effect",
                   "'" + toks[j].text + "' inside " + t.text +
                       "(...) is compiled out in NDEBUG builds, silently dropping the side "
                       "effect; hoist the mutation out of the check");
        break;
      }
    }
    i = end > i ? end - 1 : i;
  }
}

// ---------------------------------------------------------------------------
// include-guard
// ---------------------------------------------------------------------------

namespace {

// Strips any absolute prefix down to the repo-relative path ("/root/repo/
// src/mem/x.h" -> "src/mem/x.h") so guard names derive identically however
// the linter was pointed at the tree.
std::string RepoRelativePath(const std::string& path) {
  static const char* const kRoots[] = {"src/", "bench/", "tests/", "tools/", "examples/"};
  size_t best = std::string::npos;
  for (const char* root : kRoots) {
    if (path.rfind(root, 0) == 0) {
      return path;
    }
    const std::string needle = std::string("/") + root;
    const size_t pos = path.find(needle);
    if (pos != std::string::npos && pos + 1 < best) {
      best = pos + 1;
    }
  }
  return best == std::string::npos ? path : path.substr(best);
}

// Project guard name: JAVMM_SRC_MEM_PAGE_TABLE_H_ for src/mem/page_table.h.
std::string ExpectedGuard(const std::string& raw_path) {
  const std::string path = RepoRelativePath(raw_path);
  std::string guard = "JAVMM_";
  for (const char c : path) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';
  return guard;
}

}  // namespace

void CheckIncludeGuard(const RuleContext& ctx) {
  if (!EndsWith(ctx.path, ".h")) {
    return;
  }
  bool in_block_comment = false;
  int ifndef_line = 0;
  std::string guard_name;
  for (size_t ln = 0; ln < ctx.src.lines.size(); ++ln) {
    std::string line = Trimmed(ctx.src.lines[ln]);
    if (in_block_comment) {
      const size_t close = line.find("*/");
      if (close == std::string::npos) {
        continue;
      }
      line = Trimmed(line.substr(close + 2));
    }
    in_block_comment = false;
    if (line.empty() || line.rfind("//", 0) == 0) {
      continue;
    }
    if (line.rfind("/*", 0) == 0) {
      if (line.find("*/", 2) == std::string::npos) {
        in_block_comment = true;
      }
      continue;
    }
    if (ifndef_line == 0) {
      if (line.rfind("#ifndef", 0) == 0) {
        ifndef_line = static_cast<int>(ln + 1);
        guard_name = Trimmed(line.substr(7));
        continue;
      }
      ctx.Report(static_cast<int>(ln + 1), "include-guard",
                 "header does not open with an include guard (#ifndef " + ExpectedGuard(ctx.path) +
                     " / #define ...); every header must be safely re-includable");
      return;
    }
    // First line after #ifndef must be the matching #define.
    if (line.rfind("#define", 0) == 0 && Trimmed(line.substr(7)) == guard_name) {
      if (guard_name != ExpectedGuard(ctx.path)) {
        ctx.Report(ifndef_line, "include-guard",
                   "include guard '" + guard_name + "' does not match the project convention '" +
                       ExpectedGuard(ctx.path) + "' derived from the file path");
      }
      return;
    }
    ctx.Report(ifndef_line, "include-guard",
               "#ifndef " + guard_name + " is not followed by '#define " + guard_name +
                   "': the guard never latches");
    return;
  }
  if (ifndef_line == 0 && !ctx.src.lines.empty()) {
    ctx.Report(1, "include-guard", "header has no include guard (#ifndef/#define)");
  }
}

// ---------------------------------------------------------------------------
// float-export
// ---------------------------------------------------------------------------

namespace {

std::string UnescapeStringToken(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] == '\\' && i + 1 < raw.size()) {
      out += raw[i + 1];
      ++i;
    } else {
      out += raw[i];
    }
  }
  return out;
}

bool LooksLikeJsonEmit(const std::vector<Token>& stmt) {
  bool has_stream = false;
  bool has_json_key = false;
  for (const Token& t : stmt) {
    if (t.IsPunct("<<")) {
      has_stream = true;
    } else if (t.kind == TokenKind::kString) {
      const std::string text = UnescapeStringToken(t.text);
      if (text.find("\":") != std::string::npos) {
        has_json_key = true;
        if (text.find("%f") != std::string::npos || text.find("%g") != std::string::npos ||
            text.find("%e") != std::string::npos) {
          has_stream = true;  // printf-style float into a JSON template.
        }
      }
    }
  }
  return has_stream && has_json_key;
}

}  // namespace

void CheckFloatExport(const RuleContext& ctx) {
  // The hotness score path (src/mem/hotness.*) is integer-only end to end:
  // its scores order pages and flow into trace counters, so any float
  // arithmetic (e.g. rewriting the >> decay as a multiply by 0.5) would make
  // ordering depend on rounding mode and break serial-vs-parallel identity.
  // Unlike the JSON-emit scope below, the whole file is in scope: every float
  // token fires, not just ones inside an export statement.
  if (ctx.path.find("src/mem/hotness") != std::string::npos) {
    for (const Token& s : ctx.src.tokens) {
      const bool float_call = s.IsIdent("ToSecondsF") || s.IsIdent("ToMillisF");
      const bool float_type = s.IsIdent("double") || s.IsIdent("float");
      const bool float_lit = s.kind == TokenKind::kNumber && IsFloatLiteral(s.text);
      const bool float_fmt = s.kind == TokenKind::kString &&
                             (UnescapeStringToken(s.text).find("%f") != std::string::npos ||
                              UnescapeStringToken(s.text).find("%g") != std::string::npos ||
                              UnescapeStringToken(s.text).find("%e") != std::string::npos);
      if (float_call || float_type || float_lit || float_fmt) {
        ctx.Report(s.line, "float-export",
                   "floating-point token ('" + s.text +
                       "') in the hotness score path: scores must use integer "
                       "arithmetic only (exponential decay is a right shift), or "
                       "page ordering stops being deterministic");
      }
    }
    return;
  }
  if (!PathInDir(ctx.path, "src/runner/") && !EndsWith(ctx.path, "bench/common.h")) {
    return;
  }
  const std::vector<Token>& toks = ctx.src.tokens;
  std::vector<Token> stmt;
  for (const Token& t : toks) {
    if (!t.IsPunct(";")) {
      stmt.push_back(t);
      continue;
    }
    if (LooksLikeJsonEmit(stmt)) {
      for (const Token& s : stmt) {
        const bool float_call = s.IsIdent("ToSecondsF") || s.IsIdent("ToMillisF");
        const bool float_type = s.IsIdent("double") || s.IsIdent("float");
        const bool float_lit = s.kind == TokenKind::kNumber && IsFloatLiteral(s.text);
        const bool float_fmt =
            s.kind == TokenKind::kString &&
            (UnescapeStringToken(s.text).find("%f") != std::string::npos ||
             UnescapeStringToken(s.text).find("%g") != std::string::npos ||
             UnescapeStringToken(s.text).find("%e") != std::string::npos);
        if (float_call || float_type || float_lit || float_fmt) {
          ctx.Report(s.line, "float-export",
                     "floating-point value ('" + s.text +
                         "') flows into the integer-only JSON-lines export: emit exact "
                         "integer units (nanoseconds / bytes / pages) so serial and "
                         "parallel runs stay byte-identical");
        }
      }
    }
    stmt.clear();
  }
}

}  // namespace lint
}  // namespace javmm
