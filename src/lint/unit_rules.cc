// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Flow-aware unit dataflow pass for javmm-lint (DESIGN.md §13).
//
// One linear walk over the token stream maintains a flow-ordered symbol
// table of unit-tagged integer names. A name acquires a unit from (in
// precedence order):
//
//   1. its spelling        -- `*_ns`, `*_bytes`, `*_pages`, `pfn*` suffixes
//                             (trailing member underscores stripped);
//   2. its declared type   -- the tagged aliases Nanos / ByteCount /
//                             PageCount (src/base/units.h) and Pfn
//                             (src/mem/types.h), locally or via the
//                             cross-file registry;
//   3. its initializer     -- `const int64_t hi = pages * (c + 1) / n;`
//                             tags `hi` as pages: multiplying or dividing by
//                             untagged scalars preserves the unit, while a
//                             tagged divisor (bytes / bytes, bytes / rate)
//                             destroys it and blocks the inference.
//
// The table is file-scoped but flow-ordered (a use before any declaration
// sees only spelling + registry), and a name re-declared with a different
// unit collapses to untagged, so a stale tag can never cross functions into
// a false positive. On top of the table, five rules fire (see lint.h):
// unit-mix, unit-assign, overflow-mul, narrowing-cast, div-before-mul.
//
// Like the rest of javmm-lint this is lexical, not semantic: it trades
// soundness for a sub-second, dependency-free build step, and its contract
// is "the bug class the tree actually hits is unwritable", not "all unit
// errors are found".

#include <cstddef>
#include <map>
#include <set>
#include <string>

#include "src/lint/rules.h"

namespace javmm {
namespace lint {

namespace {

// The simulation core: every path whose integer arithmetic reaches wire /
// downtime accounting or the trace. bench/ and tests/ stay out of scope --
// exhibits do ad-hoc presentation math -- but the values they print are all
// produced inside these directories. src/workload/ is in scope because its
// page-cursor VA math (`cursor * kPageSize`) feeds the same store path.
const char* const kUnitDirs[] = {"src/base/",      "src/net/",  "src/faults/",
                                 "src/migration/", "src/mem/",  "src/core/",
                                 "src/trace/",     "src/workload/"};

bool InUnitScope(const std::string& path) {
  for (const char* dir : kUnitDirs) {
    if (PathInDir(path, dir)) {
      return true;
    }
  }
  return false;
}

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

// Integer type spellings that can open a declaration the pass records.
const std::set<std::string>& DeclTypeNames() {
  static const std::set<std::string> kTypes = {
      "int64_t", "uint64_t", "int32_t", "uint32_t", "int16_t",  "uint16_t", "int8_t",
      "uint8_t", "int",      "long",    "short",    "unsigned", "size_t",   "auto",
      "Nanos",   "ByteCount", "PageCount", "Pfn"};
  return kTypes;
}

Unit UnitOfAlias(const std::string& type_name) {
  if (type_name == "Nanos") {
    return Unit::kNs;
  }
  if (type_name == "ByteCount") {
    return Unit::kBytes;
  }
  if (type_name == "PageCount") {
    return Unit::kPages;
  }
  if (type_name == "Pfn") {
    return Unit::kPfn;
  }
  return Unit::kNone;
}

// Types a unit-tagged int64 must not be narrowed into. `long` is 64-bit on
// every platform this project targets, so it does not appear.
const std::set<std::string>& NarrowTypeNames() {
  static const std::set<std::string> kTypes = {"int",     "int32_t",  "uint32_t", "int16_t",
                                               "uint16_t", "int8_t",  "uint8_t",  "short",
                                               "char",    "unsigned"};
  return kTypes;
}

const std::set<std::string>& WideTypeNames() {
  static const std::set<std::string> kTypes = {"int64_t", "uint64_t", "size_t", "long",
                                               "intptr_t", "uintptr_t", "Nanos", "ByteCount",
                                               "PageCount", "Pfn"};
  return kTypes;
}

// Unit-converting helpers (src/base/units.h): the call's result has a fixed
// unit, and its arguments are deliberately a *different* currency, so the
// argument list must not leak into the surrounding expression's inference --
// `PageCount n = PagesForBytes(x_bytes)` is the conversion idiom, not a mix.
Unit ConverterResultUnit(const std::string& name) {
  if (name == "PagesForBytes") {
    return Unit::kPages;
  }
  return Unit::kNone;
}

// ns vs bytes/pages/pfn and bytes vs pages/pfn are mix errors; pages vs pfn
// is idiomatic (a frame number indexes page space: `pfn < frames`).
bool UnitsCompatible(Unit a, Unit b) {
  if (a == b) {
    return true;
  }
  return (a == Unit::kPages && b == Unit::kPfn) || (a == Unit::kPfn && b == Unit::kPages);
}

struct Pass {
  const RuleContext& ctx;
  const std::vector<Token>& toks;
  // Flow-ordered symbol table; kNone marks a name seen with conflicting
  // units (untrusted from then on).
  std::map<std::string, Unit> symtab;

  explicit Pass(const RuleContext& c) : ctx(c), toks(c.src.tokens) {}

  // Unit of the identifier token at `i` when used as a value. Calls resolve
  // to untagged (their name tags the result, not the callee).
  Unit UnitAt(size_t i) const {
    if (i >= toks.size() || toks[i].kind != TokenKind::kIdentifier) {
      return Unit::kNone;
    }
    if (i + 1 < toks.size() && toks[i + 1].IsPunct("(")) {
      return Unit::kNone;
    }
    const Unit by_name = UnitFromName(toks[i].text);
    if (by_name != Unit::kNone) {
      return by_name;
    }
    const auto local = symtab.find(toks[i].text);
    if (local != symtab.end()) {
      return local->second;
    }
    const auto global = ctx.registry.unit_names.find(toks[i].text);
    if (global != ctx.registry.unit_names.end()) {
      return global->second;
    }
    return Unit::kNone;
  }

  void Record(const std::string& name, Unit unit) {
    if (unit == Unit::kNone) {
      return;
    }
    auto [it, inserted] = symtab.emplace(name, unit);
    if (!inserted && it->second != unit) {
      it->second = Unit::kNone;
    }
  }

  // Scans the expression starting at `i` until `;`, or `,` / `)` at the
  // entry nesting level, and infers its unit: the single unit shared by
  // every tagged identifier in it, or kNone when units differ or a tagged
  // identifier sits in a divisor position (the division destroyed the
  // unit: bytes / bytes is a ratio, bytes / rate is time). When `strict`
  // is set, ANY multiplicative operator blocks the inference -- the caller
  // is about to compare the unit against an lvalue's and `pages *
  // ns_per_page` legitimately converts. Returns the index just past the
  // expression's last token.
  size_t InferExpr(size_t i, bool strict, Unit* out) const {
    int depth = 0;
    bool saw_div = false;
    bool poisoned = false;
    Unit unit = Unit::kNone;
    for (; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind == TokenKind::kPunct) {
        const std::string& p = t.text;
        if (p == "(" || p == "[" || p == "{") {
          ++depth;
          continue;
        }
        if (p == ")" || p == "]" || p == "}") {
          if (depth == 0) {
            break;
          }
          --depth;
          continue;
        }
        if (p == ";" || (depth == 0 && p == ",")) {
          break;
        }
        if (p == "/" || p == "%") {
          saw_div = true;
          if (strict) {
            poisoned = true;
          }
          continue;
        }
        if (strict && p == "*") {
          poisoned = true;
        }
        continue;
      }
      if (t.kind != TokenKind::kIdentifier) {
        continue;
      }
      Unit u = UnitAt(i);
      if (u == Unit::kNone && i + 1 < toks.size() && toks[i + 1].IsPunct("(")) {
        const Unit converted = ConverterResultUnit(t.text);
        if (converted != Unit::kNone) {
          // Known converter: contribute its result unit and skip the
          // argument list so the argument's currency stays out of scope.
          size_t j = i + 1;
          int call_depth = 0;
          do {
            if (toks[j].IsPunct("(")) {
              ++call_depth;
            } else if (toks[j].IsPunct(")")) {
              --call_depth;
            }
            ++j;
          } while (j < toks.size() && call_depth > 0);
          i = j - 1;
          u = converted;
        }
      }
      if (u == Unit::kNone) {
        continue;
      }
      if (saw_div) {
        poisoned = true;  // Tagged divisor: the quotient's unit is not u.
      }
      if (unit == Unit::kNone) {
        unit = u;
      } else if (!UnitsCompatible(unit, u)) {
        poisoned = true;
      }
    }
    *out = poisoned ? Unit::kNone : unit;
    return i;
  }

  void Run() {
    for (size_t i = 0; i < toks.size(); ++i) {
      HandleDeclaration(i);
      HandleAssignment(i);
      HandleBinaryMix(i);
      HandleOverflowMul(i);
      HandleNarrowingCast(i);
      HandleDivBeforeMul(i);
    }
  }

  // `TYPE name ;|=|,|)|{` -- records the name's unit and, for `=`, checks
  // the initializer against a spelling-derived unit (declaration form of
  // unit-assign).
  void HandleDeclaration(size_t i) {
    if (toks[i].kind != TokenKind::kIdentifier || DeclTypeNames().count(toks[i].text) == 0) {
      return;
    }
    if (i > 0 && (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->") ||
                  toks[i - 1].IsPunct("::") || toks[i - 1].IsPunct("<"))) {
      return;  // Member access or template argument, not a declaration.
    }
    if (i + 2 >= toks.size() || toks[i + 1].kind != TokenKind::kIdentifier) {
      return;
    }
    const Token& name = toks[i + 1];
    const Token& after = toks[i + 2];
    if (!after.IsPunct(";") && !after.IsPunct("=") && !after.IsPunct(",") &&
        !after.IsPunct(")") && !after.IsPunct("{")) {
      return;
    }
    const Unit by_alias = UnitOfAlias(toks[i].text);
    const Unit by_name = UnitFromName(name.text);
    Unit unit = by_name != Unit::kNone ? by_name : by_alias;
    if (after.IsPunct("=")) {
      Unit rhs_strict = Unit::kNone;
      InferExpr(i + 3, /*strict=*/true, &rhs_strict);
      if (unit != Unit::kNone && rhs_strict != Unit::kNone &&
          !UnitsCompatible(unit, rhs_strict)) {
        ctx.Report(name.line, "unit-assign",
                   std::string("initializing ") + UnitName(unit) + "-tagged '" + name.text +
                       "' from a " + UnitName(rhs_strict) +
                       "-valued expression with no converting arithmetic: one of the two "
                       "units is wrong");
      }
      if (unit == Unit::kNone) {
        // Dataflow: the initializer's (permissive) unit flows into the name.
        InferExpr(i + 3, /*strict=*/false, &unit);
      }
    }
    Record(name.text, unit);
  }

  // `name = expr ;` (plain assignment, not a declaration) -- the stored
  // expression's strict unit must match the lvalue's.
  void HandleAssignment(size_t i) {
    if (!toks[i].IsPunct("=") || i == 0 || i + 1 >= toks.size()) {
      return;
    }
    const Token& lhs = toks[i - 1];
    if (lhs.kind != TokenKind::kIdentifier) {
      return;
    }
    // Declarations are handled above; `==` and friends are distinct tokens.
    if (i >= 2 && toks[i - 2].kind == TokenKind::kIdentifier &&
        DeclTypeNames().count(toks[i - 2].text) != 0) {
      return;
    }
    const Unit lhs_unit = UnitAt(i - 1);
    if (lhs_unit == Unit::kNone) {
      return;
    }
    Unit rhs_unit = Unit::kNone;
    InferExpr(i + 1, /*strict=*/true, &rhs_unit);
    if (rhs_unit != Unit::kNone && !UnitsCompatible(lhs_unit, rhs_unit)) {
      ctx.Report(lhs.line, "unit-assign",
                 std::string("assigning a ") + UnitName(rhs_unit) + "-valued expression to " +
                     UnitName(lhs_unit) + "-tagged '" + lhs.text +
                     "' with no converting arithmetic: one of the two units is wrong");
    }
  }

  // `a OP b` for OP in + - < <= > >= == != with incompatible units on the
  // two sides. Operands adjacent to * or / are skipped: the multiplicative
  // factor may legitimately convert the unit.
  void HandleBinaryMix(size_t i) {
    static const std::set<std::string> kMixOps = {"+",  "-",  "<",  "<=",
                                                  ">",  ">=", "==", "!="};
    if (toks[i].kind != TokenKind::kPunct || kMixOps.count(toks[i].text) == 0) {
      return;
    }
    if (i == 0 || i + 1 >= toks.size()) {
      return;
    }
    const Unit left = UnitAt(i - 1);
    const Unit right = UnitAt(i + 1);
    if (left == Unit::kNone || right == Unit::kNone || UnitsCompatible(left, right)) {
      return;
    }
    const auto multiplicative = [this](size_t k) {
      return k < toks.size() && (toks[k].IsPunct("*") || toks[k].IsPunct("/"));
    };
    if ((i >= 2 && multiplicative(i - 2)) || multiplicative(i + 2)) {
      return;
    }
    ctx.Report(toks[i].line, "unit-mix",
               std::string("'") + toks[i - 1].text + "' (" + UnitName(left) + ") " +
                   toks[i].text + " '" + toks[i + 1].text + "' (" + UnitName(right) +
                   ") mixes units: nanoseconds, bytes, and pages are distinct currencies "
                   "(convert explicitly, or fix the operand)");
  }

  // Raw `*` between two unit-tagged operands: the product is a wide unit
  // cross (bytes * ns, bytes * pages, ...) that overflows int64 at scale.
  void HandleOverflowMul(size_t i) {
    if (!toks[i].IsPunct("*") || i == 0 || i + 1 >= toks.size()) {
      return;
    }
    const Unit left = UnitAt(i - 1);
    const Unit right = UnitAt(i + 1);
    if (left == Unit::kNone || right == Unit::kNone) {
      return;
    }
    ctx.Report(toks[i].line, "overflow-mul",
               std::string("raw '*' between unit-tagged operands '") + toks[i - 1].text +
                   "' (" + UnitName(left) + ") and '" + toks[i + 1].text + "' (" +
                   UnitName(right) +
                   "): the product overflows int64 at scale (the PR 6 TryTransfer bug "
                   "shape); use CheckedMul or MulDiv from src/base/units.h");
  }

  // `static_cast<NARROW>( ... tagged ... )`.
  void HandleNarrowingCast(size_t i) {
    if (!toks[i].IsIdent("static_cast") || i + 1 >= toks.size() || !toks[i + 1].IsPunct("<")) {
      return;
    }
    size_t j = i + 2;
    bool narrow = false;
    bool wide = false;
    while (j < toks.size() && !toks[j].IsPunct(">")) {
      if (toks[j].kind == TokenKind::kIdentifier) {
        narrow = narrow || NarrowTypeNames().count(toks[j].text) != 0;
        wide = wide || WideTypeNames().count(toks[j].text) != 0;
      }
      ++j;
    }
    if (j + 1 >= toks.size() || !toks[j + 1].IsPunct("(") || !narrow || wide) {
      return;
    }
    int depth = 1;
    for (size_t k = j + 2; k < toks.size() && depth > 0; ++k) {
      if (toks[k].IsPunct("(")) {
        ++depth;
      } else if (toks[k].IsPunct(")")) {
        --depth;
      } else if (toks[k].kind == TokenKind::kIdentifier) {
        const Unit unit = UnitAt(k);
        if (unit != Unit::kNone) {
          ctx.Report(toks[i].line, "narrowing-cast",
                     std::string("static_cast of ") + UnitName(unit) + "-tagged '" +
                         toks[k].text +
                         "' into a type narrower than 64 bits: silently truncates at "
                         "scale; keep unit-tagged values in int64");
          return;
        }
      }
    }
  }

  // `a / b * c` with a unit-tagged dividend: the integer division truncates
  // before the multiply. MulDiv(a, c, b) keeps the precision (and the
  // 128-bit intermediate).
  void HandleDivBeforeMul(size_t i) {
    if (!toks[i].IsPunct("/") || i == 0 || i + 3 >= toks.size()) {
      return;
    }
    const Unit dividend = UnitAt(i - 1);
    if (dividend == Unit::kNone) {
      return;
    }
    const Token& divisor = toks[i + 1];
    if (divisor.kind != TokenKind::kIdentifier && divisor.kind != TokenKind::kNumber) {
      return;
    }
    if (divisor.kind == TokenKind::kIdentifier && i + 2 < toks.size() &&
        toks[i + 2].IsPunct("(")) {
      return;  // Divisor is a call; its closing paren ends elsewhere.
    }
    if (!toks[i + 2].IsPunct("*")) {
      return;
    }
    ctx.Report(toks[i].line, "div-before-mul",
               std::string("'") + toks[i - 1].text + " / " + divisor.text +
                   " * ...' divides before multiplying: the integer division truncates "
                   "first and the precision is gone; use MulDiv(" + toks[i - 1].text +
                   ", <factor>, " + divisor.text + ") from src/base/units.h");
  }
};

}  // namespace

Unit UnitFromName(const std::string& ident) {
  std::string name = ident;
  while (!name.empty() && name.back() == '_') {
    name.pop_back();
  }
  if (EndsWith(name, "_ns") || EndsWith(name, "_nanos") || name == "ns" || name == "nanos") {
    return Unit::kNs;
  }
  if (EndsWith(name, "_bytes") || EndsWith(name, "_byte") || name == "bytes") {
    return Unit::kBytes;
  }
  if (EndsWith(name, "_pages") || name == "pages") {
    return Unit::kPages;
  }
  if (EndsWith(name, "_pfn") || name.rfind("pfn", 0) == 0) {
    return Unit::kPfn;
  }
  return Unit::kNone;
}

void CheckUnitDataflow(const RuleContext& ctx) {
  if (!InUnitScope(ctx.path)) {
    return;
  }
  Pass pass(ctx);
  pass.Run();
}

}  // namespace lint
}  // namespace javmm
