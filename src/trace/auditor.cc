// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/trace/auditor.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/faults/faults.h"

namespace javmm {

namespace {

// Numeric values of the protocol enums, mirrored here so the trace layer
// does not depend on src/guest/ headers. Kept in sync with
// src/guest/messages.h (DaemonToLkm, LkmToDaemon) and src/guest/lkm.h
// (Lkm::State).
constexpr int32_t kMsgMigrationStarted = 0;
constexpr int32_t kMsgEnteringLastIter = 1;
constexpr int32_t kMsgVmResumed = 2;
constexpr int32_t kMsgMigrationAborted = 3;
constexpr int32_t kMsgSuspensionReady = 0;  // LkmToDaemon.

constexpr int32_t kStateInitialized = 0;
constexpr int32_t kStateMigrationStarted = 1;
constexpr int32_t kStateEnteringLastIter = 2;
constexpr int32_t kStateSuspensionReady = 3;

struct Span {
  int32_t index = 0;
  TimePoint begin;
  TimePoint end;
  bool closed = false;
  int64_t pages = 0;
  int64_t wire_bytes = 0;
  int64_t scanned = 0;
};

struct BurstSums {
  int64_t pages = 0;
  int64_t wire_bytes = 0;
  int64_t scanned = 0;
};

// Per-channel sums over kChannelTransfer events, keyed by channel id.
struct ChannelSums {
  int64_t pages = 0;
  int64_t wire_bytes = 0;
};

struct Message {
  bool to_lkm = false;  // true: daemon -> LKM; false: LKM -> daemon.
  int32_t detail = 0;
};

std::string N(int64_t v) { return std::to_string(v); }

}  // namespace

TraceAuditReport TraceAuditor::Audit(AuditMode mode, const TraceRecorder& trace,
                                     const MigrationResult& result, const AuditInputs& inputs) {
  const int64_t link_wire_bytes = inputs.link_wire_bytes;
  const int64_t link_pages_sent = inputs.link_pages_sent;
  const int64_t control_bytes_per_iteration = inputs.control_bytes_per_iteration;
  TraceAuditReport report;
  report.ran = true;
  auto fail = [&report](std::string msg) {
    report.ok = false;
    report.violations.push_back(std::move(msg));
  };

  // ---- Pass 1: fold the event stream. ----
  std::vector<Span> spans;
  std::map<int32_t, BurstSums> bursts_by_iter;
  BurstSums burst_total;
  int64_t control_wire = 0;
  std::vector<int64_t> control_events;
  std::vector<Message> messages;
  std::vector<int32_t> lkm_states;
  std::optional<TimePoint> pause_at;
  std::optional<TimePoint> resume_at;
  std::optional<size_t> fallback_pos;  // Index into `messages` at fallback time.
  int64_t pauses = 0;
  int64_t resumes = 0;
  int64_t aborts = 0;
  int64_t completes = 0;
  // Fault-recovery events (src/faults/, DESIGN.md §10).
  int64_t control_losses = 0;
  int64_t control_lost_bytes = 0;
  int64_t transfer_faults = 0;
  int64_t transfer_fault_bytes = 0;
  int64_t round_timeouts = 0;
  std::vector<TraceEvent> backoffs;
  std::vector<int32_t> degrades;  // detail (= DegradeReason) per kDegrade.
  // Post-copy demand-fault bursts (kBurst with detail == 1).
  int64_t demand_bursts = 0;
  Duration demand_stall = Duration::Zero();
  // Multi-channel decomposition events (kChannelTransfer); traffic already
  // counted by kBurst/kControlBytes, so these stay out of burst_total and
  // control_wire and are checked against the per-channel meters instead.
  std::map<int32_t, ChannelSums> channel_sums;
  int64_t channel_event_count = 0;
  // Hotness-deferral events (kHotnessDefer); recorded in round order.
  std::vector<TraceEvent> hotness_events;

  for (const TraceEvent& event : trace.events()) {
    switch (event.kind) {
      case TraceEventKind::kMigrationStart:
        break;
      case TraceEventKind::kIterationBegin:
        if (!spans.empty() && !spans.back().closed) {
          fail("iteration " + N(event.iteration) + " began before iteration " +
               N(spans.back().index) + " ended");
        }
        spans.push_back(Span{event.iteration, event.at, event.at, false, 0, 0, 0});
        break;
      case TraceEventKind::kIterationEnd:
        if (spans.empty() || spans.back().closed || spans.back().index != event.iteration) {
          fail("iteration_end " + N(event.iteration) + " without a matching begin");
          break;
        }
        spans.back().closed = true;
        spans.back().end = event.at;
        spans.back().pages = event.pages;
        spans.back().wire_bytes = event.wire_bytes;
        spans.back().scanned = event.scanned;
        break;
      case TraceEventKind::kBurst: {
        BurstSums& sums = bursts_by_iter[event.iteration];
        sums.pages += event.pages;
        sums.wire_bytes += event.wire_bytes;
        sums.scanned += event.scanned;
        burst_total.pages += event.pages;
        burst_total.wire_bytes += event.wire_bytes;
        burst_total.scanned += event.scanned;
        if (mode == AuditMode::kPostcopy && event.detail == 1) {
          // Demand-fault burst: one page, cpu = the fetch's total vCPU stall.
          ++demand_bursts;
          demand_stall += event.cpu;
          if (event.pages != 1) {
            fail("demand-fault burst carries " + N(event.pages) + " pages != 1");
          }
        }
        break;
      }
      case TraceEventKind::kControlBytes:
        control_wire += event.wire_bytes;
        control_events.push_back(event.wire_bytes);
        break;
      case TraceEventKind::kDaemonToLkm:
        messages.push_back(Message{true, event.detail});
        break;
      case TraceEventKind::kLkmToDaemon:
        messages.push_back(Message{false, event.detail});
        break;
      case TraceEventKind::kLkmState:
        lkm_states.push_back(event.detail);
        break;
      case TraceEventKind::kProtocolViolation:
        break;  // Informational; the LKM tolerates and counts these.
      case TraceEventKind::kPause:
        ++pauses;
        pause_at = event.at;
        break;
      case TraceEventKind::kResume:
        ++resumes;
        resume_at = event.at;
        break;
      case TraceEventKind::kFallback:
        fallback_pos = messages.size();
        break;
      case TraceEventKind::kAbort:
        ++aborts;
        break;
      case TraceEventKind::kComplete:
        ++completes;
        break;
      case TraceEventKind::kControlLost:
        ++control_losses;
        control_lost_bytes += event.wire_bytes;
        if (event.detail < 1) {
          fail("control_lost event with attempt " + N(event.detail) + " < 1");
        }
        break;
      case TraceEventKind::kTransferFault:
        ++transfer_faults;
        transfer_fault_bytes += event.wire_bytes;
        if (event.detail < 1) {
          fail("transfer_fault event with attempt " + N(event.detail) + " < 1");
        }
        if (event.wire_bytes < 0) {
          fail("transfer_fault event with negative wasted bytes");
        }
        break;
      case TraceEventKind::kRetryBackoff:
        backoffs.push_back(event);
        break;
      case TraceEventKind::kRoundTimeout:
        ++round_timeouts;
        break;
      case TraceEventKind::kDegrade:
        degrades.push_back(event.detail);
        break;
      case TraceEventKind::kChannelTransfer: {
        ++channel_event_count;
        ChannelSums& sums = channel_sums[event.detail];
        sums.pages += event.pages;
        sums.wire_bytes += event.wire_bytes;
        break;
      }
      case TraceEventKind::kHotnessDefer:
        hotness_events.push_back(event);
        break;
    }
  }
  const int64_t channel_count = static_cast<int64_t>(inputs.channel_wire_bytes.size());

  // ---- Accounting identities (all modes). ----
  if (burst_total.pages != link_pages_sent) {
    fail("sum of burst pages (" + N(burst_total.pages) + ") != link page meter (" +
         N(link_pages_sent) + ")");
  }
  if (burst_total.pages != result.pages_sent) {
    fail("sum of burst pages (" + N(burst_total.pages) + ") != result.pages_sent (" +
         N(result.pages_sent) + ")");
  }
  if (burst_total.wire_bytes + control_wire != link_wire_bytes) {
    fail("burst wire (" + N(burst_total.wire_bytes) + ") + control wire (" + N(control_wire) +
         ") != link wire meter (" + N(link_wire_bytes) + ")");
  }
  if (link_wire_bytes != result.total_wire_bytes) {
    fail("link wire meter (" + N(link_wire_bytes) + ") != result.total_wire_bytes (" +
         N(result.total_wire_bytes) + ")");
  }
  // Post-copy pages all ship raw over the demand/pre-paging streams and are
  // not classified; the other modes must account every page to a class.
  if (mode != AuditMode::kPostcopy &&
      result.pages_sent !=
          result.pages_sent_raw + result.pages_compressed + result.pages_sent_delta) {
    fail("pages_sent (" + N(result.pages_sent) + ") != raw (" + N(result.pages_sent_raw) +
         ") + compressed (" + N(result.pages_compressed) + ") + delta (" +
         N(result.pages_sent_delta) + ")");
  }
  // Control traffic: one successful round trip of the configured size per
  // live iteration (a completed run's final IterationRecord is the
  // stop-and-copy transfer, which performs no bitmap-request round trip, and
  // an iteration whose control round terminally failed never completed one).
  if (mode == AuditMode::kPrecopy && control_bytes_per_iteration > 0) {
    for (const int64_t bytes : control_events) {
      if (bytes != control_bytes_per_iteration) {
        fail("control round trip of " + N(bytes) + " bytes != configured " +
             N(control_bytes_per_iteration));
      }
    }
    const int64_t live_iterations =
        static_cast<int64_t>(result.iterations.size()) - (result.completed ? 1 : 0);
    const int64_t expected_rounds =
        live_iterations -
        (result.degrade_reason == DegradeReason::kControlRetries ? 1 : 0);
    if (static_cast<int64_t>(control_events.size()) != expected_rounds) {
      fail("control round trips (" + N(static_cast<int64_t>(control_events.size())) +
           ") != live iterations minus terminally-failed rounds (" + N(expected_rounds) + ")");
    }
    if (static_cast<int64_t>(control_events.size()) != result.control_rounds_ok) {
      fail("control round trips (" + N(static_cast<int64_t>(control_events.size())) +
           ") != result.control_rounds_ok (" + N(result.control_rounds_ok) + ")");
    }
  }

  // ---- Fault-recovery accounting (all modes; trivially zero when the link
  // was healthy). ----
  if (control_losses != result.control_losses) {
    fail("control_lost events (" + N(control_losses) + ") != result.control_losses (" +
         N(result.control_losses) + ")");
  }
  if (transfer_faults != result.burst_faults) {
    fail("transfer_fault events (" + N(transfer_faults) + ") != result.burst_faults (" +
         N(result.burst_faults) + ")");
  }
  if (round_timeouts != result.round_timeouts) {
    fail("round_timeout events (" + N(round_timeouts) + ") != result.round_timeouts (" +
         N(result.round_timeouts) + ")");
  }
  if (control_lost_bytes + transfer_fault_bytes != result.retry_wire_bytes) {
    fail("wasted wire in fault events (" + N(control_lost_bytes) + " control + " +
         N(transfer_fault_bytes) + " transfer) != result.retry_wire_bytes (" +
         N(result.retry_wire_bytes) + ")");
  }
  if (result.retry_wire_bytes != inputs.link_retry_bytes) {
    fail("result.retry_wire_bytes (" + N(result.retry_wire_bytes) + ") != link retry meter (" +
         N(inputs.link_retry_bytes) + ")");
  }
  {
    // Every non-terminal loss/fault backs off exactly once; the loss that
    // exhausts a retry budget is never retried, so it has no backoff event.
    const int64_t unretried = (result.degrade_reason == DegradeReason::kControlRetries ||
                               result.degrade_reason == DegradeReason::kBurstRetries)
                                  ? 1
                                  : 0;
    if (static_cast<int64_t>(backoffs.size()) != control_losses + transfer_faults - unretried) {
      fail("retry_backoff events (" + N(static_cast<int64_t>(backoffs.size())) +
           ") != retried losses (" + N(control_losses + transfer_faults - unretried) + ")");
    }
    Duration backoff_sum = Duration::Zero();
    for (const TraceEvent& event : backoffs) {
      backoff_sum += event.cpu;
      if (event.detail < 1) {
        fail("retry_backoff event with attempt " + N(event.detail) + " < 1");
      }
      if (event.cpu.nanos() < event.pages) {
        fail("retry_backoff waited " + N(event.cpu.nanos()) + "ns < its nominal " +
             N(event.pages) + "ns");
      }
      if (inputs.retry_backoff_base > Duration::Zero()) {
        const Duration nominal =
            NominalBackoff(inputs.retry_backoff_base, inputs.retry_backoff_cap, event.detail);
        if (nominal.nanos() != event.pages) {
          fail("retry_backoff attempt " + N(event.detail) + " nominal " + N(event.pages) +
               "ns != derived min(base*2^(attempt-1), cap) = " + N(nominal.nanos()) + "ns");
        }
      }
    }
    if (backoff_sum.nanos() != result.backoff_time.nanos()) {
      fail("sum of retry_backoff waits (" + N(backoff_sum.nanos()) +
           "ns) != result.backoff_time (" + N(result.backoff_time.nanos()) + "ns)");
    }
  }
  if (result.degraded) {
    if (result.degrade_reason == DegradeReason::kNone) {
      fail("degraded run reports reason none");
    }
    if (degrades.size() != 1) {
      fail("degraded run must trace exactly one degrade event, has " +
           N(static_cast<int64_t>(degrades.size())));
    } else if (degrades[0] != static_cast<int32_t>(result.degrade_reason)) {
      fail("degrade event reason " + N(degrades[0]) + " != result.degrade_reason (" +
           N(static_cast<int32_t>(result.degrade_reason)) + ")");
    }
  } else {
    if (!degrades.empty()) {
      fail("degrade event traced in a non-degraded run");
    }
    if (result.degrade_reason != DegradeReason::kNone) {
      fail("non-degraded run reports a degrade reason");
    }
  }

  // ---- Multi-channel decomposition (DESIGN.md §11). ----
  if (channel_count == 0) {
    if (channel_event_count > 0) {
      fail("trace has " + N(channel_event_count) +
           " channel_transfer events but the run used a single channel");
    }
  } else {
    if (static_cast<int64_t>(inputs.channel_pages_sent.size()) != channel_count ||
        static_cast<int64_t>(inputs.channel_retry_bytes.size()) != channel_count) {
      fail("per-channel meter vectors disagree on the channel count");
    }
    for (const auto& [channel, sums] : channel_sums) {
      if (channel < 0 || channel >= channel_count) {
        fail("channel_transfer event names channel " + N(channel) + " but only " +
             N(channel_count) + " channels exist");
      }
    }
    int64_t wire_sum = 0;
    int64_t pages_sum = 0;
    int64_t retry_sum = 0;
    for (int64_t c = 0; c < channel_count; ++c) {
      const size_t i = static_cast<size_t>(c);
      wire_sum += inputs.channel_wire_bytes[i];
      pages_sum += c < static_cast<int64_t>(inputs.channel_pages_sent.size())
                       ? inputs.channel_pages_sent[i]
                       : 0;
      retry_sum += c < static_cast<int64_t>(inputs.channel_retry_bytes.size())
                       ? inputs.channel_retry_bytes[i]
                       : 0;
      const auto it = channel_sums.find(static_cast<int32_t>(c));
      const ChannelSums sums = it != channel_sums.end() ? it->second : ChannelSums{};
      if (sums.wire_bytes != inputs.channel_wire_bytes[i]) {
        fail("channel " + N(c) + ": event wire sum (" + N(sums.wire_bytes) +
             ") != channel wire meter (" + N(inputs.channel_wire_bytes[i]) + ")");
      }
      if (i < inputs.channel_pages_sent.size() &&
          sums.pages != inputs.channel_pages_sent[i]) {
        fail("channel " + N(c) + ": event page sum (" + N(sums.pages) +
             ") != channel page meter (" + N(inputs.channel_pages_sent[i]) + ")");
      }
    }
    if (wire_sum != link_wire_bytes) {
      fail("per-channel wire meters sum to " + N(wire_sum) + " != aggregate link wire meter (" +
           N(link_wire_bytes) + ")");
    }
    if (pages_sum != link_pages_sent) {
      fail("per-channel page meters sum to " + N(pages_sum) + " != aggregate link page meter (" +
           N(link_pages_sent) + ")");
    }
    if (retry_sum != inputs.link_retry_bytes) {
      fail("per-channel retry meters sum to " + N(retry_sum) +
           " != aggregate link retry meter (" + N(inputs.link_retry_bytes) + ")");
    }
    if (result.channels != channel_count) {
      fail("result.channels (" + N(result.channels) + ") != audited channel count (" +
           N(channel_count) + ")");
    }
    if (result.channel_wire_bytes != inputs.channel_wire_bytes ||
        result.channel_pages_sent != inputs.channel_pages_sent ||
        result.channel_retry_bytes != inputs.channel_retry_bytes) {
      fail("result per-channel meters do not match the link per-channel meters");
    }
  }

  // ---- Hotness-scored deferral (src/mem/hotness.h, DESIGN.md §12). ----
  if (!inputs.hotness_enabled) {
    // Deferral off: the engine must behave identically to the pre-hotness
    // one -- no hotness trace events, no hotness accounting.
    if (!hotness_events.empty()) {
      fail("trace has " + N(static_cast<int64_t>(hotness_events.size())) +
           " hotness_defer events but hotness was disabled");
    }
    if (result.hotness) {
      fail("result reports hotness enabled but the audit expected it off");
    }
    if (result.pages_deferred_hot != 0 || result.resend_pages_avoided != 0) {
      fail("hotness-off run reports " + N(result.pages_deferred_hot) + " deferred / " +
           N(result.resend_pages_avoided) + " avoided pages");
    }
  } else {
    if (!result.hotness) {
      fail("result reports hotness disabled but the audit expected it on");
    }
    if (mode != AuditMode::kPrecopy) {
      // Only the pre-copy engine defers; scenario validation rejects the
      // combination upstream, so reaching here is itself a violation.
      fail("hotness audit requested for a non-pre-copy engine");
    }
    int64_t deferred_sum = 0;
    int64_t avoided_sum = 0;
    for (const TraceEvent& event : hotness_events) {
      if (event.iteration < 1) {
        fail("hotness_defer event in iteration " + N(event.iteration) + " < 1");
      }
      if (event.pages < 0 || event.wire_bytes < 0) {
        fail("hotness_defer event with negative counts");
      }
      if (event.pages == 0 && event.wire_bytes == 0) {
        fail("hotness_defer event that neither parked nor avoided a page");
      }
      deferred_sum += event.pages;
      avoided_sum += event.wire_bytes;
      // Each event's cumulative-parked field must equal the running sum: a
      // page parks at most once (the deferred set is a bitmap), so the
      // per-round increments partition the total.
      if (event.scanned != deferred_sum) {
        fail("hotness_defer cumulative parked (" + N(event.scanned) +
             ") != running sum of parked pages (" + N(deferred_sum) + ")");
      }
    }
    if (deferred_sum != result.pages_deferred_hot) {
      fail("sum of hotness_defer parked pages (" + N(deferred_sum) +
           ") != result.pages_deferred_hot (" + N(result.pages_deferred_hot) + ")");
    }
    if (avoided_sum != result.resend_pages_avoided) {
      fail("sum of hotness_defer avoided re-sends (" + N(avoided_sum) +
           ") != result.resend_pages_avoided (" + N(result.resend_pages_avoided) + ")");
    }
    // Every parked page reaches the stop-and-copy final set exactly once:
    // the final iteration must have scanned at least the parked total (it
    // scans each final-set member once; parked pages are members by
    // construction and the deferred bitmap already guarantees uniqueness).
    if (result.completed && !spans.empty() && spans.back().closed &&
        spans.back().scanned < result.pages_deferred_hot) {
      fail("final iteration scanned " + N(spans.back().scanned) + " pages < " +
           N(result.pages_deferred_hot) + " deferred-hot pages owed to the final set");
    }
  }

  // ---- Baseline-specific fault identities. ----
  if (mode == AuditMode::kStopAndCopy) {
    // The whole copy happens inside the pause: there is no control channel
    // to lose, no live rounds to time out, and no cheaper mode to degrade to
    // (outages are waited out with unbounded burst retries).
    if (control_losses != 0) {
      fail("stop-and-copy traced " + N(control_losses) +
           " control_lost events but has no control channel");
    }
    if (round_timeouts != 0) {
      fail("stop-and-copy traced " + N(round_timeouts) +
           " round_timeout events but has no live rounds");
    }
    if (result.degraded) {
      fail("stop-and-copy cannot degrade: burst retries are unbounded");
    }
  }
  if (mode == AuditMode::kPostcopy) {
    if (round_timeouts != 0) {
      fail("post-copy traced " + N(round_timeouts) +
           " round_timeout events but has no live rounds");
    }
    // Stall-debt accounting: every demand fetch emits exactly one demand
    // burst whose cpu is the fetch's total vCPU stall, so the trace-side
    // sums must equal PostcopyResult::{demand_faults, fault_stall}.
    if (inputs.expected_demand_faults >= 0 && demand_bursts != inputs.expected_demand_faults) {
      fail("demand-fault bursts (" + N(demand_bursts) + ") != result.demand_faults (" +
           N(inputs.expected_demand_faults) + ")");
    }
    if (inputs.expected_fault_stall_ns >= 0) {
      // Single channel: the applied stall is exactly the sum of per-fetch
      // stalls. Multi-channel: fetches on different channels overlap and
      // only the slowest channel's debt becomes wall time, so the per-fetch
      // sum bounds the applied stall from above.
      if (channel_count == 0 ? demand_stall.nanos() != inputs.expected_fault_stall_ns
                             : demand_stall.nanos() < inputs.expected_fault_stall_ns) {
        fail("sum of demand-burst stall (" + N(demand_stall.nanos()) +
             "ns) vs result.fault_stall (" + N(inputs.expected_fault_stall_ns) +
             "ns): must be equal (1 channel) or an upper bound (striped)");
      }
    }
  }

  // ---- Iteration spans vs. IterationRecords (modes with iterations). ----
  if (mode != AuditMode::kPostcopy) {
    if (spans.size() != result.iterations.size()) {
      fail("trace has " + N(static_cast<int64_t>(spans.size())) + " iteration spans, result has " +
           N(static_cast<int64_t>(result.iterations.size())) + " records");
    } else {
      int64_t sum_pages = 0;
      for (size_t i = 0; i < spans.size(); ++i) {
        const Span& span = spans[i];
        const IterationRecord& rec = result.iterations[i];
        const std::string tag = "iteration " + N(rec.index) + ": ";
        if (!span.closed) {
          fail(tag + "span never ended");
          continue;
        }
        if (span.index != rec.index) {
          fail(tag + "span index " + N(span.index) + " out of order");
        }
        if ((span.end - span.begin).nanos() != rec.duration.nanos()) {
          fail(tag + "span duration " + N((span.end - span.begin).nanos()) +
               "ns != record duration " + N(rec.duration.nanos()) + "ns");
        }
        if (span.pages != rec.pages_sent || span.wire_bytes != rec.wire_bytes ||
            span.scanned != rec.pages_scanned) {
          fail(tag + "span totals do not match the iteration record");
        }
        const BurstSums sums = bursts_by_iter.count(span.index) ? bursts_by_iter[span.index]
                                                                : BurstSums{};
        if (sums.pages != rec.pages_sent) {
          fail(tag + "burst pages (" + N(sums.pages) + ") != record pages_sent (" +
               N(rec.pages_sent) + ")");
        }
        if (sums.wire_bytes != rec.wire_bytes) {
          fail(tag + "burst wire (" + N(sums.wire_bytes) + ") != record wire_bytes (" +
               N(rec.wire_bytes) + ")");
        }
        if (sums.scanned != rec.pages_scanned) {
          fail(tag + "burst scanned (" + N(sums.scanned) + ") != record pages_scanned (" +
               N(rec.pages_scanned) + ")");
        }
        if (i > 0 && spans[i - 1].closed && span.begin < spans[i - 1].end) {
          fail(tag + "span overlaps the previous iteration");
        }
        sum_pages += rec.pages_sent;
      }
      if (sum_pages != result.pages_sent) {
        fail("sum of iteration pages_sent (" + N(sum_pages) + ") != result.pages_sent (" +
             N(result.pages_sent) + ")");
      }
      if (!spans.empty() && spans.front().begin != result.started_at) {
        fail("first iteration does not start at started_at");
      }
    }
  }

  // ---- Phase timing. ----
  if (result.completed) {
    if (pauses != 1 || resumes != 1 || completes != 1 || aborts != 0) {
      fail("completed run must trace exactly one pause/resume/complete and no abort");
    }
    if (pause_at && pause_at->nanos() != result.paused_at.nanos()) {
      fail("pause event at " + N(pause_at->nanos()) + "ns != result.paused_at (" +
           N(result.paused_at.nanos()) + "ns)");
    }
    if (resume_at && resume_at->nanos() != result.resumed_at.nanos()) {
      fail("resume event at " + N(resume_at->nanos()) + "ns != result.resumed_at (" +
           N(result.resumed_at.nanos()) + "ns)");
    }
    // Downtime components must exactly cover the pause window. (The enforced
    // GC and final bitmap update happen while the VM still runs; the lab
    // layer adds them to the breakdown after the fact.)
    const Duration window = result.resumed_at - result.paused_at;
    const Duration parts = result.downtime.last_iter_transfer + result.downtime.resumption;
    if (window.nanos() != parts.nanos()) {
      fail("downtime window " + N(window.nanos()) + "ns != last_iter_transfer + resumption (" +
           N(parts.nanos()) + "ns)");
    }
    if (mode != AuditMode::kPostcopy) {
      if ((result.resumed_at - result.started_at).nanos() != result.total_time.nanos()) {
        fail("total_time != resumed_at - started_at");
      }
      // The last iteration is the stop-and-copy transfer: it starts at the
      // pause and its duration is the last_iter_transfer downtime component.
      if (!spans.empty() && spans.back().closed) {
        if (spans.back().begin != result.paused_at) {
          fail("final iteration does not start at paused_at");
        }
        if ((spans.back().end - spans.back().begin).nanos() !=
            result.downtime.last_iter_transfer.nanos()) {
          fail("final iteration span != downtime.last_iter_transfer");
        }
      }
      // Iteration spans partition started_at -> resumed_at: span durations,
      // inter-span gaps (zero except the pre-pause assist window) and the
      // resumption must add up exactly.
      if (spans.size() == result.iterations.size() && !spans.empty()) {
        int64_t covered = 0;
        for (size_t i = 0; i < spans.size(); ++i) {
          covered += (spans[i].end - spans[i].begin).nanos();
          if (i > 0) {
            const int64_t gap = (spans[i].begin - spans[i - 1].end).nanos();
            covered += gap;
            // Live iterations are back to back; only the transition into the
            // final iteration may wait (suspension poll + final update).
            if (gap != 0 && (i + 1 != spans.size() || !result.assisted)) {
              fail("unexpected " + N(gap) + "ns gap before iteration " + N(spans[i].index));
            }
          }
        }
        covered += result.downtime.resumption.nanos();
        if (covered != result.total_time.nanos()) {
          fail("iteration spans + gaps + resumption (" + N(covered) +
               "ns) do not partition total_time (" + N(result.total_time.nanos()) + "ns)");
        }
      }
    }
  } else {
    if (aborts != 1 || pauses != 0 || resumes != 0 || completes != 0) {
      fail("aborted run must trace exactly one abort and no pause/resume/complete");
    }
    if (!result.downtime.Total().IsZero()) {
      fail("aborted run reports non-zero downtime");
    }
    if (result.paused_at != result.resumed_at) {
      fail("aborted run must report an empty pause window");
    }
    if (mode == AuditMode::kPrecopy && spans.size() == result.iterations.size()) {
      int64_t covered = 0;
      for (const Span& span : spans) {
        covered += (span.end - span.begin).nanos();
      }
      if (covered != result.total_time.nanos()) {
        fail("aborted run: iteration spans (" + N(covered) + "ns) != total_time (" +
             N(result.total_time.nanos()) + "ns)");
      }
    }
  }
  if (result.fell_back_unassisted != fallback_pos.has_value()) {
    fail(result.fell_back_unassisted ? "fallback result without a fallback trace event"
                                     : "fallback trace event without a fallback result");
  }

  // ---- Protocol state machine (Figures 4 and 7). ----
  if (mode == AuditMode::kPrecopy) {
    if (!result.assisted) {
      if (!messages.empty() || !lkm_states.empty()) {
        fail("unassisted run traced daemon<->LKM protocol traffic");
      }
    } else {
      // Expected daemon<->LKM message sequence.
      std::vector<Message> expected;
      expected.push_back(Message{true, kMsgMigrationStarted});
      if (!result.completed) {
        expected.push_back(Message{true, kMsgMigrationAborted});
      } else {
        expected.push_back(Message{true, kMsgEnteringLastIter});
        if (!result.fell_back_unassisted) {
          expected.push_back(Message{false, kMsgSuspensionReady});
        } else if (messages.size() == 4) {
          // Fallback tolerates one late suspension-ready: a straggler timer
          // that fires after the daemon already gave up on the guest.
          expected.push_back(Message{false, kMsgSuspensionReady});
        }
        expected.push_back(Message{true, kMsgVmResumed});
      }
      bool match = messages.size() == expected.size();
      for (size_t i = 0; match && i < messages.size(); ++i) {
        match = messages[i].to_lkm == expected[i].to_lkm &&
                messages[i].detail == expected[i].detail;
      }
      if (!match) {
        fail("daemon<->LKM message sequence does not follow the Figure-4/7 workflow (" +
             N(static_cast<int64_t>(messages.size())) + " messages)");
      }
      if (result.fell_back_unassisted && fallback_pos.has_value() && *fallback_pos < 2) {
        fail("fallback before the entering-last-iter notification");
      }
      // LKM state transitions (present when the trace is attached to an LKM)
      // must follow the Figure-4 edges, starting from INITIALIZED.
      int32_t prev = kStateInitialized;
      for (int32_t state : lkm_states) {
        const bool allowed =
            (prev == kStateInitialized && state == kStateMigrationStarted) ||
            (prev == kStateMigrationStarted && state == kStateEnteringLastIter) ||
            (prev == kStateEnteringLastIter && state == kStateSuspensionReady) ||
            (prev == kStateSuspensionReady && state == kStateInitialized) ||
            (prev == kStateEnteringLastIter && state == kStateInitialized) ||
            (prev == kStateMigrationStarted && state == kStateInitialized);
        if (!allowed) {
          fail("illegal LKM state transition " + N(prev) + " -> " + N(state));
        }
        prev = state;
      }
      if (!lkm_states.empty() && prev != kStateInitialized) {
        fail("LKM did not return to INITIALIZED by the end of the migration");
      }
    }
  } else if (!messages.empty() || !lkm_states.empty()) {
    fail("baseline engine traced daemon<->LKM protocol traffic");
  }

  return report;
}

}  // namespace javmm
