// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Structured migration trace: a low-overhead event recorder the engines and
// the LKM append to while a migration runs.
//
// The trace is the ground truth the TraceAuditor (auditor.h) checks the
// aggregate accounting in MigrationResult against: every burst that touches
// the wire, every control round trip, every daemon<->LKM protocol message and
// every phase transition (pause/resume/fallback/abort) is one event. Events
// carry simulated timestamps, so per-iteration spans and the downtime window
// can be re-derived from the trace alone. The JSON-lines exporter makes runs
// inspectable offline (`migrate_cli --trace-out=FILE`).

#ifndef JAVMM_SRC_TRACE_TRACE_H_
#define JAVMM_SRC_TRACE_TRACE_H_

#include <cstdint>
#include <ostream>
#include <vector>

#include "src/base/perf.h"
#include "src/base/time.h"

namespace javmm {

enum class TraceEventKind : uint8_t {
  kMigrationStart,  // pages = VM frame count.
  kIterationBegin,  // iteration = index.
  kIterationEnd,    // iteration, pages (sent), wire_bytes, scanned.
  kBurst,           // iteration, pages, wire_bytes, scanned, cpu.
  kControlBytes,    // wire_bytes of non-page control traffic.
  kDaemonToLkm,     // detail = DaemonToLkm enum value.
  kLkmToDaemon,     // detail = LkmToDaemon enum value.
  kLkmState,        // detail = Lkm::State enum value after a transition.
  kProtocolViolation,  // detail = the offending message/state, best effort.
  kPause,           // Stop-and-copy begins: vCPUs suspended.
  kResume,          // VM active at the destination.
  kFallback,        // LKM timeout: reverting to unassisted behaviour.
  kAbort,           // Migration cancelled; guest keeps running at the source.
  kComplete,        // Migration finished (verification may still fail).
  // ---- Fault-injection & recovery (src/faults/, DESIGN.md §10). ----
  kControlLost,     // iteration, detail = attempt, wire_bytes wasted.
  kTransferFault,   // iteration, detail = attempt, pages in the lost burst,
                    // wire_bytes that reached the wire before the drop.
  kRetryBackoff,    // iteration, detail = attempt, pages = nominal backoff in
                    // ns, cpu = time actually waited (>= nominal when an
                    // outage pinned the retry later).
  kRoundTimeout,    // iteration, pages = pending pages carried to next round.
  kDegrade,         // detail = DegradeReason; retry budget exhausted.
  // ---- Multi-channel data plane (src/net/channel_set.h, DESIGN.md §11). ----
  kChannelTransfer,  // detail = channel, pages, wire_bytes: one channel's
                     // slice of a striped transfer. A decomposition of
                     // traffic already counted by kBurst/kControlBytes, so
                     // the auditor keeps it out of the aggregate sums and
                     // instead checks per-channel sums against the
                     // per-channel meters. Only recorded when channels > 1.
  // ---- Hotness-scored transfer ordering (src/mem/hotness.h, §12). ----
  kHotnessDefer,  // iteration, pages = hot pages newly parked this round,
                  // wire_bytes = harvested re-dirty entries dropped because
                  // the page was already parked (re-sends avoided, a page
                  // count despite the field name), scanned = cumulative
                  // unique parked pages after this round. Only recorded when
                  // hotness is enabled and the round parked or avoided > 0.
};

// One trace event. Sparse: each kind populates the fields listed above and
// leaves the rest zero. Kept flat (no variants) so recording is a single
// vector push_back on the hot path.
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kMigrationStart;
  TimePoint at;
  int32_t iteration = 0;
  int32_t detail = 0;
  int64_t pages = 0;
  int64_t wire_bytes = 0;
  int64_t scanned = 0;
  Duration cpu = Duration::Zero();
};

class TraceRecorder {
 public:
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Optional sink for recording-effort counters; may be null.
  void set_perf(PerfCounters* perf) { perf_ = perf; }

  // Drops the events but keeps the backing storage: a recorder reused across
  // migrations behaves as an event pool, reaching a high-water capacity once
  // and appending allocation-free thereafter.
  void Clear() { events_.clear(); }

  void Record(const TraceEvent& event) {
    if (enabled_) {
      if (perf_ != nullptr) {
        perf_->trace_events += 1;
        NotePush(events_, perf_);
      }
      events_.push_back(event);
    }
  }

  const std::vector<TraceEvent>& events() const { return events_; }

  // Number of events of `kind` currently recorded.
  int64_t CountOf(TraceEventKind kind) const;

  // Writes the trace as JSON lines, one event per line:
  //   {"event":"burst","t_ns":1234,"iter":2,"pages":256,"wire_bytes":...}
  void ExportJsonLines(std::ostream& os) const;

  static const char* KindName(TraceEventKind kind);

 private:
  bool enabled_ = true;
  PerfCounters* perf_ = nullptr;
  std::vector<TraceEvent> events_;
};

}  // namespace javmm

#endif  // JAVMM_SRC_TRACE_TRACE_H_
