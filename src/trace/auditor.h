// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Post-run invariant audit over a migration trace.
//
// The paper's headline results (Figures 8-11) are pure accounting over the
// pre-copy race, so a metering bug silently corrupts every reproduced figure.
// The auditor re-derives the aggregates from the event-level trace and checks
// them against MigrationResult and the NetworkLink meters:
//
//   * accounting identities -- sum of burst wire bytes (+ control traffic)
//     == link wire meter == result.total_wire_bytes; sum of burst pages ==
//     link page meter == result.pages_sent; per-iteration burst sums match
//     each IterationRecord; pages_sent == raw + compressed + delta.
//   * timing partition -- iteration spans are ordered and contiguous where
//     the engine performs no out-of-iteration clock advance, the last
//     iteration starts at paused_at, and last_iter_transfer + resumption
//     exactly cover the paused_at -> resumed_at downtime window.
//   * protocol state machine -- daemon<->LKM messages and LKM state
//     transitions follow the Figure-4/7 workflow (including the fallback and
//     abort variants).
//
// Engines run the audit automatically at the end of Migrate() when
// MigrationConfig::audit_trace is set (the default) and store the report in
// MigrationResult::trace_audit.

#ifndef JAVMM_SRC_TRACE_AUDITOR_H_
#define JAVMM_SRC_TRACE_AUDITOR_H_

#include <cstdint>

#include "src/migration/stats.h"
#include "src/trace/trace.h"

namespace javmm {

// Which engine produced the trace; selects the applicable invariants.
enum class AuditMode {
  kPrecopy,      // MigrationEngine (vanilla Xen or JAVMM).
  kStopAndCopy,  // StopAndCopyEngine: one pause-time iteration.
  kPostcopy,     // PostcopyEngine: no iterations; bursts are faults/prepaging.
};

class TraceAuditor {
 public:
  // Checks every applicable invariant; each failure appends one violation.
  // `link_wire_bytes` / `link_pages_sent` are the NetworkLink meters after
  // the run (the engines reset them at migration start).
  // `control_bytes_per_iteration` (> 0, pre-copy mode only) is the engine's
  // configured per-iteration control round trip: the auditor then requires
  // exactly one control-bytes event of exactly that size per live iteration,
  // so the engine's metering and the audit share one constant by
  // construction. 0 disables the check (baseline engines meter control
  // traffic differently).
  static TraceAuditReport Audit(AuditMode mode, const TraceRecorder& trace,
                                const MigrationResult& result, int64_t link_wire_bytes,
                                int64_t link_pages_sent,
                                int64_t control_bytes_per_iteration = 0);
};

}  // namespace javmm

#endif  // JAVMM_SRC_TRACE_AUDITOR_H_
