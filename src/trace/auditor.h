// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Post-run invariant audit over a migration trace.
//
// The paper's headline results (Figures 8-11) are pure accounting over the
// pre-copy race, so a metering bug silently corrupts every reproduced figure.
// The auditor re-derives the aggregates from the event-level trace and checks
// them against MigrationResult and the NetworkLink meters:
//
//   * accounting identities -- sum of burst wire bytes (+ control traffic)
//     == link wire meter == result.total_wire_bytes; sum of burst pages ==
//     link page meter == result.pages_sent; per-iteration burst sums match
//     each IterationRecord; pages_sent == raw + compressed + delta.
//   * timing partition -- iteration spans are ordered and contiguous where
//     the engine performs no out-of-iteration clock advance, the last
//     iteration starts at paused_at, and last_iter_transfer + resumption
//     exactly cover the paused_at -> resumed_at downtime window.
//   * protocol state machine -- daemon<->LKM messages and LKM state
//     transitions follow the Figure-4/7 workflow (including the fallback and
//     abort variants).
//
// Engines run the audit automatically at the end of Migrate() when
// MigrationConfig::audit_trace is set (the default) and store the report in
// MigrationResult::trace_audit.

#ifndef JAVMM_SRC_TRACE_AUDITOR_H_
#define JAVMM_SRC_TRACE_AUDITOR_H_

#include <cstdint>
#include <vector>

#include "src/base/time.h"
#include "src/migration/stats.h"
#include "src/trace/trace.h"

namespace javmm {

// Which engine produced the trace; selects the applicable invariants.
enum class AuditMode {
  kPrecopy,      // MigrationEngine (vanilla Xen or JAVMM).
  kStopAndCopy,  // StopAndCopyEngine: one pause-time iteration.
  kPostcopy,     // PostcopyEngine: no iterations; bursts are faults/prepaging.
};

// Everything the auditor needs from outside the trace/result pair.
// `link_*` are the NetworkLink meters after the run (the engines reset them
// at migration start). `control_bytes_per_iteration` (> 0, pre-copy mode
// only) is the engine's configured per-iteration control round trip: the
// auditor then requires exactly one control-bytes event of exactly that size
// per successful live-iteration round, so the engine's metering and the
// audit share one constant by construction; 0 disables the check (baseline
// engines meter control traffic differently). `retry_backoff_base` /
// `retry_backoff_cap` (base > 0) let the auditor re-derive every backoff
// event's nominal wait via NominalBackoff; base 0 disables that check.
// `expected_demand_faults` / `expected_fault_stall_ns` (post-copy mode only)
// carry the PostcopyResult-side demand-fault counters, which the common
// MigrationResult does not: the auditor then checks the count of demand
// bursts (kBurst with detail == 1) and the sum of their stall time against
// them; negative disables the corresponding identity.
struct AuditInputs {
  int64_t link_wire_bytes = 0;
  int64_t link_pages_sent = 0;
  int64_t link_retry_bytes = 0;
  int64_t control_bytes_per_iteration = 0;
  Duration retry_backoff_base = Duration::Zero();
  Duration retry_backoff_cap = Duration::Zero();
  int64_t expected_demand_faults = -1;
  int64_t expected_fault_stall_ns = -1;
  // Hotness-scored deferral (src/mem/hotness.h, DESIGN.md §12): when false,
  // any hotness_defer event (or nonzero hotness counters in the result) is a
  // violation; when true, the event stream must reproduce the result's
  // deferred/avoided counters exactly and every parked page must be owed to
  // (and scanned by) the stop-and-copy final set.
  bool hotness_enabled = false;
  // Per-channel link meters (src/net/channel_set.h); non-empty only for a
  // multi-channel run, where all three have one entry per channel. The
  // auditor then requires every channel_transfer event to name a live
  // channel, the per-channel event sums to reproduce these meters, the
  // meters to sum to the aggregate `link_*` fields above, and the
  // MigrationResult per-channel mirrors to match. Empty = single channel:
  // any channel_transfer event is itself a violation. In multi-channel
  // post-copy mode the demand-stall identity relaxes from == to >= (the
  // applied stall is the max over per-channel debts, while the events carry
  // each fetch's own stall).
  std::vector<int64_t> channel_wire_bytes;
  std::vector<int64_t> channel_pages_sent;
  std::vector<int64_t> channel_retry_bytes;
};

class TraceAuditor {
 public:
  // Checks every applicable invariant; each failure appends one violation.
  static TraceAuditReport Audit(AuditMode mode, const TraceRecorder& trace,
                                const MigrationResult& result, const AuditInputs& inputs);

  // Legacy convenience for fault-free engines (the baselines and older
  // tests): zero retry meter, no backoff re-derivation.
  static TraceAuditReport Audit(AuditMode mode, const TraceRecorder& trace,
                                const MigrationResult& result, int64_t link_wire_bytes,
                                int64_t link_pages_sent,
                                int64_t control_bytes_per_iteration = 0) {
    AuditInputs inputs;
    inputs.link_wire_bytes = link_wire_bytes;
    inputs.link_pages_sent = link_pages_sent;
    inputs.control_bytes_per_iteration = control_bytes_per_iteration;
    return Audit(mode, trace, result, inputs);
  }
};

}  // namespace javmm

#endif  // JAVMM_SRC_TRACE_AUDITOR_H_
