// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/trace/trace.h"

#include <cinttypes>
#include <cstdio>

namespace javmm {

namespace {

// Names for the `detail` field of message/state events. Indexed by the
// numeric enum value; kept in sync with DaemonToLkm / LkmToDaemon
// (src/guest/messages.h) and Lkm::State (src/guest/lkm.h).
const char* const kDaemonToLkmNames[] = {"migration_started", "entering_last_iter",
                                         "vm_resumed", "migration_aborted"};
const char* const kLkmToDaemonNames[] = {"suspension_ready"};
const char* const kLkmStateNames[] = {"initialized", "migration_started",
                                      "entering_last_iter", "suspension_ready"};

const char* NameOrUnknown(const char* const* table, size_t size, int32_t value) {
  if (value >= 0 && static_cast<size_t>(value) < size) {
    return table[static_cast<size_t>(value)];
  }
  return "unknown";
}

}  // namespace

const char* TraceRecorder::KindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kMigrationStart:
      return "migration_start";
    case TraceEventKind::kIterationBegin:
      return "iteration_begin";
    case TraceEventKind::kIterationEnd:
      return "iteration_end";
    case TraceEventKind::kBurst:
      return "burst";
    case TraceEventKind::kControlBytes:
      return "control_bytes";
    case TraceEventKind::kDaemonToLkm:
      return "daemon_to_lkm";
    case TraceEventKind::kLkmToDaemon:
      return "lkm_to_daemon";
    case TraceEventKind::kLkmState:
      return "lkm_state";
    case TraceEventKind::kProtocolViolation:
      return "protocol_violation";
    case TraceEventKind::kPause:
      return "pause";
    case TraceEventKind::kResume:
      return "resume";
    case TraceEventKind::kFallback:
      return "fallback";
    case TraceEventKind::kAbort:
      return "abort";
    case TraceEventKind::kComplete:
      return "complete";
    case TraceEventKind::kControlLost:
      return "control_lost";
    case TraceEventKind::kTransferFault:
      return "transfer_fault";
    case TraceEventKind::kRetryBackoff:
      return "retry_backoff";
    case TraceEventKind::kRoundTimeout:
      return "round_timeout";
    case TraceEventKind::kDegrade:
      return "degrade";
    case TraceEventKind::kChannelTransfer:
      return "channel_transfer";
    case TraceEventKind::kHotnessDefer:
      return "hotness_defer";
  }
  return "unknown";
}

int64_t TraceRecorder::CountOf(TraceEventKind kind) const {
  int64_t n = 0;
  for (const TraceEvent& event : events_) {
    if (event.kind == kind) {
      ++n;
    }
  }
  return n;
}

void TraceRecorder::ExportJsonLines(std::ostream& os) const {
  char buffer[256];
  for (const TraceEvent& event : events_) {
    std::snprintf(buffer, sizeof(buffer), "{\"event\":\"%s\",\"t_ns\":%" PRId64,
                  KindName(event.kind), event.at.nanos());
    os << buffer;
    switch (event.kind) {
      case TraceEventKind::kMigrationStart:
        std::snprintf(buffer, sizeof(buffer), ",\"frames\":%" PRId64, event.pages);
        os << buffer;
        break;
      case TraceEventKind::kIterationBegin:
        std::snprintf(buffer, sizeof(buffer), ",\"iter\":%d", event.iteration);
        os << buffer;
        break;
      case TraceEventKind::kIterationEnd:
      case TraceEventKind::kBurst:
        std::snprintf(buffer, sizeof(buffer),
                      ",\"iter\":%d,\"pages\":%" PRId64 ",\"wire_bytes\":%" PRId64
                      ",\"scanned\":%" PRId64 ",\"cpu_ns\":%" PRId64,
                      event.iteration, event.pages, event.wire_bytes, event.scanned,
                      event.cpu.nanos());
        os << buffer;
        break;
      case TraceEventKind::kControlBytes:
        std::snprintf(buffer, sizeof(buffer), ",\"wire_bytes\":%" PRId64, event.wire_bytes);
        os << buffer;
        break;
      case TraceEventKind::kDaemonToLkm:
        os << ",\"message\":\""
           << NameOrUnknown(kDaemonToLkmNames, std::size(kDaemonToLkmNames), event.detail)
           << '"';
        break;
      case TraceEventKind::kLkmToDaemon:
        os << ",\"message\":\""
           << NameOrUnknown(kLkmToDaemonNames, std::size(kLkmToDaemonNames), event.detail)
           << '"';
        break;
      case TraceEventKind::kLkmState:
        os << ",\"state\":\""
           << NameOrUnknown(kLkmStateNames, std::size(kLkmStateNames), event.detail) << '"';
        break;
      case TraceEventKind::kProtocolViolation:
        std::snprintf(buffer, sizeof(buffer), ",\"detail\":%d", event.detail);
        os << buffer;
        break;
      case TraceEventKind::kControlLost:
        std::snprintf(buffer, sizeof(buffer),
                      ",\"iter\":%d,\"attempt\":%d,\"wasted_bytes\":%" PRId64, event.iteration,
                      event.detail, event.wire_bytes);
        os << buffer;
        break;
      case TraceEventKind::kTransferFault:
        std::snprintf(buffer, sizeof(buffer),
                      ",\"iter\":%d,\"attempt\":%d,\"pages\":%" PRId64
                      ",\"wasted_bytes\":%" PRId64,
                      event.iteration, event.detail, event.pages, event.wire_bytes);
        os << buffer;
        break;
      case TraceEventKind::kRetryBackoff:
        std::snprintf(buffer, sizeof(buffer),
                      ",\"iter\":%d,\"attempt\":%d,\"nominal_ns\":%" PRId64
                      ",\"waited_ns\":%" PRId64,
                      event.iteration, event.detail, event.pages, event.cpu.nanos());
        os << buffer;
        break;
      case TraceEventKind::kRoundTimeout:
        std::snprintf(buffer, sizeof(buffer), ",\"iter\":%d,\"carried_pages\":%" PRId64,
                      event.iteration, event.pages);
        os << buffer;
        break;
      case TraceEventKind::kDegrade:
        std::snprintf(buffer, sizeof(buffer), ",\"reason\":%d", event.detail);
        os << buffer;
        break;
      case TraceEventKind::kChannelTransfer:
        std::snprintf(buffer, sizeof(buffer),
                      ",\"iter\":%d,\"channel\":%d,\"pages\":%" PRId64
                      ",\"wire_bytes\":%" PRId64,
                      event.iteration, event.detail, event.pages, event.wire_bytes);
        os << buffer;
        break;
      case TraceEventKind::kHotnessDefer:
        std::snprintf(buffer, sizeof(buffer),
                      ",\"iter\":%d,\"deferred\":%" PRId64 ",\"resends_avoided\":%" PRId64
                      ",\"total_deferred\":%" PRId64,
                      event.iteration, event.pages, event.wire_bytes, event.scanned);
        os << buffer;
        break;
      case TraceEventKind::kPause:
      case TraceEventKind::kResume:
      case TraceEventKind::kFallback:
      case TraceEventKind::kAbort:
      case TraceEventKind::kComplete:
        break;
    }
    os << "}\n";
  }
}

}  // namespace javmm
