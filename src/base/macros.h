// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Lightweight runtime-check macros in the spirit of glog/absl CHECK.
//
// CHECK(cond)        -- aborts with a diagnostic when `cond` is false; always on.
// CHECK_EQ/NE/...    -- binary comparisons that print both operands on failure.
// DCHECK(cond)       -- like CHECK in debug builds, compiled out in NDEBUG builds.
// JAVMM_UNREACHABLE  -- marks a path the program must never take.

#ifndef JAVMM_SRC_BASE_MACROS_H_
#define JAVMM_SRC_BASE_MACROS_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string_view>

namespace javmm {

// Internal helper that prints a failure message and aborts. Kept out-of-line so
// the fast path of a passing check stays small.
[[noreturn]] inline void CheckFailure(std::string_view file, int line, std::string_view expr,
                                      const std::string& detail) {
  std::cerr << "CHECK failed at " << file << ":" << line << ": " << expr;
  if (!detail.empty()) {
    std::cerr << " (" << detail << ")";
  }
  std::cerr << std::endl;
  std::abort();
}

}  // namespace javmm

#define CHECK(cond)                                             \
  do {                                                          \
    if (!(cond)) {                                              \
      ::javmm::CheckFailure(__FILE__, __LINE__, #cond, "");     \
    }                                                           \
  } while (0)

#define JAVMM_CHECK_OP_IMPL(lhs, rhs, op)                                        \
  do {                                                                           \
    auto&& javmm_lhs = (lhs);                                                    \
    auto&& javmm_rhs = (rhs);                                                    \
    if (!(javmm_lhs op javmm_rhs)) {                                             \
      std::ostringstream javmm_oss;                                              \
      javmm_oss << "lhs=" << javmm_lhs << " rhs=" << javmm_rhs;                  \
      ::javmm::CheckFailure(__FILE__, __LINE__, #lhs " " #op " " #rhs,           \
                            javmm_oss.str());                                    \
    }                                                                            \
  } while (0)

#define CHECK_EQ(a, b) JAVMM_CHECK_OP_IMPL(a, b, ==)
#define CHECK_NE(a, b) JAVMM_CHECK_OP_IMPL(a, b, !=)
#define CHECK_LT(a, b) JAVMM_CHECK_OP_IMPL(a, b, <)
#define CHECK_LE(a, b) JAVMM_CHECK_OP_IMPL(a, b, <=)
#define CHECK_GT(a, b) JAVMM_CHECK_OP_IMPL(a, b, >)
#define CHECK_GE(a, b) JAVMM_CHECK_OP_IMPL(a, b, >=)

#ifdef NDEBUG
#define DCHECK(cond) \
  do {               \
  } while (0)
#define DCHECK_EQ(a, b) DCHECK((a) == (b))
#define DCHECK_LT(a, b) DCHECK((a) < (b))
#define DCHECK_LE(a, b) DCHECK((a) <= (b))
#define DCHECK_GT(a, b) DCHECK((a) > (b))
#define DCHECK_GE(a, b) DCHECK((a) >= (b))
#else
#define DCHECK(cond) CHECK(cond)
#define DCHECK_EQ(a, b) CHECK_EQ(a, b)
#define DCHECK_LT(a, b) CHECK_LT(a, b)
#define DCHECK_LE(a, b) CHECK_LE(a, b)
#define DCHECK_GT(a, b) CHECK_GT(a, b)
#define DCHECK_GE(a, b) CHECK_GE(a, b)
#endif

#define JAVMM_UNREACHABLE(msg) ::javmm::CheckFailure(__FILE__, __LINE__, "unreachable", msg)

#endif  // JAVMM_SRC_BASE_MACROS_H_
