// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/base/units.h"

#include <cstdio>

namespace javmm {

std::string FormatBytes(int64_t bytes) {
  char buf[48];
  const double b = static_cast<double>(bytes);
  if (bytes >= kGiB || bytes <= -kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", b / static_cast<double>(kGiB));
  } else if (bytes >= kMiB || bytes <= -kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", b / static_cast<double>(kMiB));
  } else if (bytes >= kKiB || bytes <= -kKiB) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", b / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%ld B", static_cast<long>(bytes));
  }
  return buf;
}

std::string FormatRate(double bytes_per_second) {
  char buf[48];
  if (bytes_per_second >= static_cast<double>(kGiB)) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB/s", bytes_per_second / static_cast<double>(kGiB));
  } else if (bytes_per_second >= static_cast<double>(kMiB)) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB/s", bytes_per_second / static_cast<double>(kMiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f KiB/s", bytes_per_second / static_cast<double>(kKiB));
  }
  return buf;
}

}  // namespace javmm
