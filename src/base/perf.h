// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Deterministic performance counters for the simulation core (DESIGN.md §14).
//
// PerfCounters is a flat bag of int64 operation counters metered at a handful
// of instrumented sites in src/mem, src/trace, and src/migration: vector
// growth events on the hot harvest/trace paths, dirty-log word scans,
// per-page peeks, burst flushes, sharded pages. The counters measure *work
// performed by the simulator itself* (allocator churn, scan effort), not
// simulated quantities -- simulated time and wire bytes live in
// MigrationResult. Because every metered site is driven purely by scenario
// state, the counters are bit-identical across serial and parallel runs and
// across machines; bench/perf_gauntlet.cpp diffs them against a checked-in
// baseline in CI, with wall-clock reported alongside as the non-gating,
// machine-dependent half of the story.
//
// Counter semantics (all monotone within one engine run):
//   allocations      -- vector growth events on instrumented hot-path
//                       buffers: a push_back/emplace_back that found
//                       size() == capacity(), or a reserve() that had to
//                       grow a fresh buffer.
//   bytes_allocated  -- geometric estimate of heap bytes those growth
//                       events requested (capacity doubling, in elements
//                       of the instrumented vector's value type).
//   buffer_reuses    -- instrumented-site operations that ran entirely
//                       inside previously-acquired capacity.
//   harvests         -- DirtyLog::CollectAndClear calls.
//   pages_harvested  -- dirty PFNs those harvests returned.
//   bytes_harvested  -- pages_harvested * kPageSize.
//   dirty_word_scans -- 64-bit bitmap words examined by harvest sweeps and
//                       the batched pre-copy scan path.
//   page_peeks       -- single-page dirty-bit tests on the scan path.
//   trace_events     -- TraceEvent records appended while tracing is on.
//   bursts_flushed   -- transfer bursts handed to the channel set.
//   pages_sharded    -- pages placed onto channels by ChannelSet::Shard.
//   write_runs       -- GuestPhysicalMemory::WriteRun calls on the guest
//                       store path (a legacy per-page Write counts as a
//                       run of one).
//   pages_written    -- guest pages those runs covered; equals the delta
//                       of GuestPhysicalMemory::total_writes().
//   pte_lookups      -- page-table probes (Lookup/LookupRun) issued by the
//                       AddressSpace store path. The run fast path's whole
//                       point is pages_written / pte_lookups >> 1 on
//                       sweep-shaped workloads (DESIGN.md §15).
//
// The X-macro field table keeps Add/==/export/parse in lockstep: adding a
// counter is one line.

#ifndef JAVMM_SRC_BASE_PERF_H_
#define JAVMM_SRC_BASE_PERF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/macros.h"

namespace javmm {

// One line per counter: JAVMM_PERF_FIELD(name). Order is export order.
#define JAVMM_PERF_FIELDS(X) \
  X(allocations)             \
  X(bytes_allocated)         \
  X(buffer_reuses)           \
  X(harvests)                \
  X(pages_harvested)         \
  X(bytes_harvested)         \
  X(dirty_word_scans)        \
  X(page_peeks)              \
  X(trace_events)            \
  X(bursts_flushed)          \
  X(pages_sharded)           \
  X(write_runs)              \
  X(pages_written)           \
  X(pte_lookups)

struct PerfCounters {
#define JAVMM_PERF_DECLARE(name) int64_t name = 0;
  JAVMM_PERF_FIELDS(JAVMM_PERF_DECLARE)
#undef JAVMM_PERF_DECLARE

  // Field-wise accumulation (used by RunReport::TotalPerf and the gauntlet).
  void Add(const PerfCounters& other);

  // Flat JSON object, fields in declaration order:
  //   {"allocations":0,"bytes_allocated":0,...}
  std::string ToJson() const;

  // Parses the output of ToJson (whitespace-tolerant, order-insensitive,
  // unknown keys rejected). Returns false and fills *error on malformed
  // input. Missing keys default to 0 so baselines stay forward-compatible
  // when a counter is added.
  static bool FromJson(const std::string& json, PerfCounters* out, std::string* error);

  bool operator==(const PerfCounters& other) const = default;
};

// Names in declaration order, for table-driven consumers (gauntlet diffs).
std::vector<std::string> PerfCounterNames();

// Reads a counter by name; CHECK-fails on unknown names.
int64_t PerfCounterValue(const PerfCounters& c, const std::string& name);

// --- Instrumentation helpers -------------------------------------------------
//
// Metering is explicit and local: the hot sites call these around their own
// vector operations. All helpers accept a null PerfCounters and become
// no-ops, so library code stays usable without a perf sink attached.

// Meters one push_back/emplace_back about to happen on `v`: a growth event
// when the vector is full, a reuse when capacity already covers it. Call
// *before* the push.
template <typename T>
inline void NotePush(const std::vector<T>& v, PerfCounters* perf) {
  if (perf == nullptr) {
    return;
  }
  if (v.size() == v.capacity()) {
    perf->allocations += 1;
    const int64_t grown = v.capacity() == 0 ? 1 : static_cast<int64_t>(v.capacity()) * 2;
    perf->bytes_allocated += grown * static_cast<int64_t>(sizeof(T));
  } else {
    perf->buffer_reuses += 1;
  }
}

// Meters a reserve(n) about to happen on `v`: a growth event when the
// request exceeds current capacity, a reuse otherwise. Call *before* the
// reserve.
template <typename T>
inline void NoteReserve(const std::vector<T>& v, int64_t n, PerfCounters* perf) {
  if (perf == nullptr) {
    return;
  }
  if (n > static_cast<int64_t>(v.capacity())) {
    perf->allocations += 1;
    perf->bytes_allocated += n * static_cast<int64_t>(sizeof(T));
  } else {
    perf->buffer_reuses += 1;
  }
}

}  // namespace javmm

#endif  // JAVMM_SRC_BASE_PERF_H_
