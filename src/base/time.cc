// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/base/time.h"

#include <cmath>
#include <cstdio>

namespace javmm {

Duration Duration::SecondsF(double s) {
  return Duration(static_cast<int64_t>(std::llround(s * 1e9)));
}

Duration Duration::operator*(double k) const {
  return Duration(static_cast<int64_t>(std::llround(static_cast<double>(nanos_) * k)));
}

std::string Duration::ToString() const {
  char buf[48];
  const int64_t abs_ns = nanos_ < 0 ? -nanos_ : nanos_;
  if (abs_ns >= 1000000000) {
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(nanos_) / 1e9);
  } else if (abs_ns >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(nanos_) / 1e6);
  } else if (abs_ns >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(nanos_) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%ldns", static_cast<long>(nanos_));
  }
  return buf;
}

std::string TimePoint::ToString() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "t=%.3fs", static_cast<double>(nanos_) / 1e9);
  return buf;
}

std::ostream& operator<<(std::ostream& os, Duration d) { return os << d.ToString(); }
std::ostream& operator<<(std::ostream& os, TimePoint t) { return os << t.ToString(); }

}  // namespace javmm
