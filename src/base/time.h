// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Simulated-time primitives.
//
// All simulated time in this project is carried by two strong types backed by a
// signed 64-bit nanosecond tick count:
//
//   Duration  -- a span of simulated time (may be negative in arithmetic).
//   TimePoint -- an instant on the simulation clock (epoch = simulation start).
//
// They are deliberately *not* std::chrono types: the simulation clock has no
// relation to any wall clock, and a dedicated pair of types prevents simulated
// and host time from ever mixing.

#ifndef JAVMM_SRC_BASE_TIME_H_
#define JAVMM_SRC_BASE_TIME_H_

#include <cstdint>
#include <ostream>
#include <string>

namespace javmm {

class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration Nanos(int64_t n) { return Duration(n); }
  static constexpr Duration Micros(int64_t n) { return Duration(n * 1000); }
  static constexpr Duration Millis(int64_t n) { return Duration(n * 1000 * 1000); }
  static constexpr Duration Seconds(int64_t n) { return Duration(n * 1000 * 1000 * 1000); }
  static constexpr Duration Minutes(int64_t n) { return Seconds(n * 60); }
  // Builds a duration from a floating-point second count, rounding to the
  // nearest nanosecond. Handy when deriving transfer times from byte rates.
  static Duration SecondsF(double s);
  static constexpr Duration Max() { return Duration(INT64_MAX); }
  static constexpr Duration Zero() { return Duration(0); }

  constexpr int64_t nanos() const { return nanos_; }
  constexpr double ToSecondsF() const { return static_cast<double>(nanos_) / 1e9; }
  constexpr double ToMillisF() const { return static_cast<double>(nanos_) / 1e6; }

  constexpr bool IsZero() const { return nanos_ == 0; }

  constexpr Duration operator+(Duration other) const { return Duration(nanos_ + other.nanos_); }
  constexpr Duration operator-(Duration other) const { return Duration(nanos_ - other.nanos_); }
  constexpr Duration operator*(int64_t k) const { return Duration(nanos_ * k); }
  Duration operator*(double k) const;
  constexpr Duration operator/(int64_t k) const { return Duration(nanos_ / k); }
  constexpr double operator/(Duration other) const {
    return static_cast<double>(nanos_) / static_cast<double>(other.nanos_);
  }
  Duration& operator+=(Duration other) {
    nanos_ += other.nanos_;
    return *this;
  }
  Duration& operator-=(Duration other) {
    nanos_ -= other.nanos_;
    return *this;
  }

  constexpr auto operator<=>(const Duration&) const = default;

  // Renders e.g. "1.250s", "13.2ms", "250us", "40ns" -- unit chosen by size.
  std::string ToString() const;

 private:
  explicit constexpr Duration(int64_t nanos) : nanos_(nanos) {}
  int64_t nanos_ = 0;
};

class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint FromNanos(int64_t n) { return TimePoint(n); }
  static constexpr TimePoint Epoch() { return TimePoint(0); }
  static constexpr TimePoint Max() { return TimePoint(INT64_MAX); }

  constexpr int64_t nanos() const { return nanos_; }
  constexpr double ToSecondsF() const { return static_cast<double>(nanos_) / 1e9; }

  constexpr TimePoint operator+(Duration d) const { return TimePoint(nanos_ + d.nanos()); }
  constexpr TimePoint operator-(Duration d) const { return TimePoint(nanos_ - d.nanos()); }
  constexpr Duration operator-(TimePoint other) const {
    return Duration::Nanos(nanos_ - other.nanos_);
  }
  TimePoint& operator+=(Duration d) {
    nanos_ += d.nanos();
    return *this;
  }

  constexpr auto operator<=>(const TimePoint&) const = default;

  std::string ToString() const;

 private:
  explicit constexpr TimePoint(int64_t nanos) : nanos_(nanos) {}
  int64_t nanos_ = 0;
};

std::ostream& operator<<(std::ostream& os, Duration d);
std::ostream& operator<<(std::ostream& os, TimePoint t);

}  // namespace javmm

#endif  // JAVMM_SRC_BASE_TIME_H_
