// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/base/perf.h"

#include <cctype>
#include <sstream>

#include "src/base/units.h"

namespace javmm {
namespace {

// Minimal scanner for the flat {"name":int,...} objects ToJson emits. No
// nesting, no strings-with-escapes, no floats: anything else is malformed.
struct Scanner {
  const std::string& s;
  size_t i = 0;

  void SkipSpace() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) != 0) {
      ++i;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }

  bool ReadKey(std::string* out) {
    SkipSpace();
    if (i >= s.size() || s[i] != '"') {
      return false;
    }
    ++i;
    const size_t start = i;
    while (i < s.size() && s[i] != '"') {
      ++i;
    }
    if (i >= s.size()) {
      return false;
    }
    out->assign(s, start, i - start);
    ++i;
    return true;
  }

  bool ReadInt(int64_t* out) {
    SkipSpace();
    const size_t start = i;
    if (i < s.size() && s[i] == '-') {
      ++i;
    }
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])) != 0) {
      ++i;
    }
    if (i == start || (s[start] == '-' && i == start + 1)) {
      return false;
    }
    *out = std::stoll(s.substr(start, i - start));
    return true;
  }
};

}  // namespace

void PerfCounters::Add(const PerfCounters& other) {
#define JAVMM_PERF_ADD(name) name = CheckedAdd(name, other.name);
  JAVMM_PERF_FIELDS(JAVMM_PERF_ADD)
#undef JAVMM_PERF_ADD
}

std::string PerfCounters::ToJson() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
#define JAVMM_PERF_EMIT(field)                       \
  if (!first) {                                      \
    os << ',';                                       \
  }                                                  \
  first = false;                                     \
  os << '"' << #field << "\":" << (field);
  JAVMM_PERF_FIELDS(JAVMM_PERF_EMIT)
#undef JAVMM_PERF_EMIT
  os << '}';
  return os.str();
}

bool PerfCounters::FromJson(const std::string& json, PerfCounters* out, std::string* error) {
  *out = PerfCounters{};
  Scanner sc{json};
  if (!sc.Consume('{')) {
    *error = "expected '{'";
    return false;
  }
  sc.SkipSpace();
  if (sc.Consume('}')) {
    return true;
  }
  while (true) {
    std::string key;
    if (!sc.ReadKey(&key)) {
      *error = "expected string key";
      return false;
    }
    if (!sc.Consume(':')) {
      *error = "expected ':' after key \"" + key + "\"";
      return false;
    }
    int64_t value = 0;
    if (!sc.ReadInt(&value)) {
      *error = "expected integer value for key \"" + key + "\"";
      return false;
    }
    bool known = false;
#define JAVMM_PERF_ASSIGN(field) \
  if (key == #field) {           \
    out->field = value;          \
    known = true;                \
  }
    JAVMM_PERF_FIELDS(JAVMM_PERF_ASSIGN)
#undef JAVMM_PERF_ASSIGN
    if (!known) {
      *error = "unknown counter \"" + key + "\"";
      return false;
    }
    if (sc.Consume(',')) {
      continue;
    }
    if (sc.Consume('}')) {
      break;
    }
    *error = "expected ',' or '}'";
    return false;
  }
  sc.SkipSpace();
  if (sc.i != json.size()) {
    *error = "trailing characters after object";
    return false;
  }
  return true;
}

std::vector<std::string> PerfCounterNames() {
  std::vector<std::string> names;
#define JAVMM_PERF_NAME(field) names.push_back(#field);
  JAVMM_PERF_FIELDS(JAVMM_PERF_NAME)
#undef JAVMM_PERF_NAME
  return names;
}

int64_t PerfCounterValue(const PerfCounters& c, const std::string& name) {
#define JAVMM_PERF_GET(field) \
  if (name == #field) {       \
    return c.field;           \
  }
  JAVMM_PERF_FIELDS(JAVMM_PERF_GET)
#undef JAVMM_PERF_GET
  CheckFailure("PerfCounterValue", 0, "known counter name", name);
}

}  // namespace javmm
