// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/base/rng.h"

#include <cmath>

namespace javmm {
namespace {

// SplitMix64 step; used only for seeding.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  CHECK_GT(bound, 0u);
  // Lemire's multiply-shift rejection method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    const uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::UniformReal(double lo, double hi) {
  CHECK_LE(lo, hi);
  return lo + (hi - lo) * NextDouble();
}

double Rng::Exponential(double mean) {
  CHECK_GT(mean, 0.0);
  double u = NextDouble();
  if (u <= 0.0) {
    u = 0x1.0p-53;  // Avoid log(0).
  }
  return -mean * std::log(1.0 - u);
}

double Rng::LogNormal(double mean, double sigma) {
  CHECK_GT(mean, 0.0);
  // Box-Muller for the underlying normal.
  double u1 = NextDouble();
  const double u2 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  // Choose mu so that E[X] = mean for the given sigma.
  const double mu = std::log(mean) - 0.5 * sigma * sigma;
  return std::exp(mu + sigma * z);
}

double Rng::BoundedPareto(double lo, double hi, double alpha) {
  CHECK_GT(lo, 0.0);
  CHECK_GT(hi, lo);
  CHECK_GT(alpha, 0.0);
  const double u = NextDouble();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

bool Rng::Chance(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace javmm
