// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Byte-size helpers shared across the project.
//
// Sizes are plain int64 byte counts; the helpers here only make construction
// and printing readable (`2 * kGiB`, `FormatBytes(…) == "1.50 GiB"`).

#ifndef JAVMM_SRC_BASE_UNITS_H_
#define JAVMM_SRC_BASE_UNITS_H_

#include <cstdint>
#include <string>

namespace javmm {

inline constexpr int64_t kKiB = 1024;
inline constexpr int64_t kMiB = 1024 * kKiB;
inline constexpr int64_t kGiB = 1024 * kMiB;

// The guest page size. The whole system (dirty log, transfer bitmap, page
// tables) assumes this single size, as does the paper (4 KB pages, one transfer
// bit per page).
inline constexpr int64_t kPageSize = 4 * kKiB;

// Number of whole pages needed to hold `bytes` (rounds up).
constexpr int64_t PagesForBytes(int64_t bytes) { return (bytes + kPageSize - 1) / kPageSize; }

// Renders a byte count with a binary-unit suffix, e.g. "512.00 MiB".
std::string FormatBytes(int64_t bytes);

// Renders a byte rate, e.g. "118.9 MiB/s".
std::string FormatRate(double bytes_per_second);

}  // namespace javmm

#endif  // JAVMM_SRC_BASE_UNITS_H_
