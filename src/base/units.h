// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Byte-size helpers, unit-tagged integer aliases, and checked arithmetic
// shared across the project.
//
// Sizes are plain int64 byte counts; the helpers here make construction and
// printing readable (`2 * kGiB`, `FormatBytes(…) == "1.50 GiB"`), tag the
// three integer currencies the simulation trades in (nanoseconds, bytes,
// pages) so javmm-lint's unit dataflow pass can track them (DESIGN.md §13),
// and provide overflow-checked arithmetic for the wide products the
// bandwidth math produces (`bytes * ns / rate` overflows int64 long before
// rack-scale magnitudes).

#ifndef JAVMM_SRC_BASE_UNITS_H_
#define JAVMM_SRC_BASE_UNITS_H_

#include <cstdint>
#include <string>

#include "src/base/macros.h"

namespace javmm {

// Unit-tagged aliases. They are deliberately plain typedefs -- no wrapper
// type, no codegen cost -- but declaring a variable or member with one of
// them teaches javmm-lint's `unit-mix` / `overflow-mul` dataflow pass its
// unit, exactly like an `*_ns` / `*_bytes` / `*_pages` name suffix does.
// (`Pfn` in src/mem/types.h plays the same role for frame numbers.)
using Nanos = int64_t;      // A span or instant count in simulated ns.
using ByteCount = int64_t;  // Payload / wire / control bytes.
using PageCount = int64_t;  // Whole 4 KiB guest pages.

// Overflow-checked int64 arithmetic. CHECK-fails on overflow instead of
// wrapping: every caller in the simulation core treats a wrapped counter as
// silently corrupted results, so dying loudly is strictly better. The lint
// rule `overflow-mul` points raw `*` between unit-tagged wide operands here.
constexpr int64_t CheckedAdd(int64_t a, int64_t b) {
  int64_t out = 0;
  if (__builtin_add_overflow(a, b, &out)) {
    CheckFailure("CheckedAdd", 0, "a + b overflows int64", std::to_string(a) + " + " + std::to_string(b));
  }
  return out;
}

constexpr int64_t CheckedMul(int64_t a, int64_t b) {
  int64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out)) {
    CheckFailure("CheckedMul", 0, "a * b overflows int64", std::to_string(a) + " * " + std::to_string(b));
  }
  return out;
}

// value * num / den with a 128-bit intermediate, truncating toward zero like
// plain int64 division. This is the shape of all exact rate math in the
// project (`bytes * ns_per_sec / rate`, `wire_bytes * page_hi / pages`):
// the product routinely exceeds int64 while the quotient fits. CHECK-fails
// on den == 0 and on a quotient that does not fit in int64.
constexpr int64_t MulDiv(int64_t value, int64_t num, int64_t den) {
  if (den == 0) {
    CheckFailure("MulDiv", 0, "den != 0", "division by zero");
  }
  const __int128 product = static_cast<__int128>(value) * num;
  const __int128 quotient = product / den;
  if (quotient > INT64_MAX || quotient < INT64_MIN) {
    CheckFailure("MulDiv", 0, "quotient fits int64",
                 std::to_string(value) + " * " + std::to_string(num) + " / " + std::to_string(den));
  }
  return static_cast<int64_t>(quotient);
}

inline constexpr int64_t kKiB = 1024;
inline constexpr int64_t kMiB = 1024 * kKiB;
inline constexpr int64_t kGiB = 1024 * kMiB;

// The guest page size. The whole system (dirty log, transfer bitmap, page
// tables) assumes this single size, as does the paper (4 KB pages, one transfer
// bit per page).
inline constexpr int64_t kPageSize = 4 * kKiB;

// Number of whole pages needed to hold `bytes` (rounds up).
constexpr int64_t PagesForBytes(int64_t bytes) { return (bytes + kPageSize - 1) / kPageSize; }

// Renders a byte count with a binary-unit suffix, e.g. "512.00 MiB".
std::string FormatBytes(int64_t bytes);

// Renders a byte rate, e.g. "118.9 MiB/s".
std::string FormatRate(double bytes_per_second);

}  // namespace javmm

#endif  // JAVMM_SRC_BASE_UNITS_H_
