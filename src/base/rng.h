// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Deterministic pseudo-random number generation for the simulation.
//
// Every experiment run owns a single `Rng` seeded from the run's seed; all
// stochastic behaviour (object lifetimes, safepoint offsets, mutation targets)
// is drawn from it, so a (seed, configuration) pair fully determines a run.
//
// The generator is xoshiro256** seeded via SplitMix64 -- tiny, fast, and of
// far better quality than std::minstd; we avoid std::mt19937 because its
// state-size costs show up when thousands of short simulations run in tests.

#ifndef JAVMM_SRC_BASE_RNG_H_
#define JAVMM_SRC_BASE_RNG_H_

#include <cstdint>

#include "src/base/macros.h"

namespace javmm {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Raw 64 random bits.
  uint64_t Next();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform real in [lo, hi).
  double UniformReal(double lo, double hi);

  // Exponential with the given mean (> 0).
  double Exponential(double mean);

  // Log-normal parameterised by the *target* mean and sigma of the underlying
  // normal; used for object-lifetime sampling where a heavy right tail is
  // wanted (most objects die young, a few live long).
  double LogNormal(double mean, double sigma);

  // Bounded Pareto on [lo, hi] with tail index alpha; classic object-size /
  // lifetime model for allocation-heavy workloads.
  double BoundedPareto(double lo, double hi, double alpha);

  // Bernoulli draw.
  bool Chance(double p);

  // Derives an independent child generator; used to give each subsystem its
  // own stream so adding draws in one place does not perturb another.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace javmm

#endif  // JAVMM_SRC_BASE_RNG_H_
