// Copyright (c) 2026 The JAVMM Reproduction Authors.

#ifndef JAVMM_SRC_CORE_LIVENESS_H_
#define JAVMM_SRC_CORE_LIVENESS_H_

#include <vector>

#include "src/guest/guest_kernel.h"
#include "src/migration/destination.h"
#include "src/workload/g1_application.h"
#include "src/workload/java_application.h"

namespace javmm {

// Maps a Java application's live chunks at pause time to the PFNs whose
// contents must be intact at the destination. This feeds the verification
// audit only -- the migration itself never sees object-level information.
class JavaLivenessSource : public RequiredPfnSource {
 public:
  JavaLivenessSource(GuestKernel* kernel, const JavaApplication* app)
      : kernel_(kernel), app_(app) {}

  std::vector<Pfn> RequiredPfns(TimePoint pause_time) const override;

 private:
  GuestKernel* kernel_;
  const JavaApplication* app_;
};

// Live chunks of a G1-style regionized heap (src/workload/g1_application.h).
class G1LivenessSource : public RequiredPfnSource {
 public:
  G1LivenessSource(GuestKernel* kernel, const G1JavaApplication* app)
      : kernel_(kernel), app_(app) {}

  std::vector<Pfn> RequiredPfns(TimePoint pause_time) const override;

 private:
  GuestKernel* kernel_;
  const G1JavaApplication* app_;
};

// Declares a fixed VA range of a process as required (e.g. the guest OS's
// resident memory, or a cache application's retained entries).
class RangeLivenessSource : public RequiredPfnSource {
 public:
  RangeLivenessSource(GuestKernel* kernel, AppId pid) : kernel_(kernel), pid_(pid) {}

  void SetRanges(std::vector<VaRange> ranges) { ranges_ = std::move(ranges); }
  void AddRange(const VaRange& range) { ranges_.push_back(range); }

  std::vector<Pfn> RequiredPfns(TimePoint pause_time) const override;

 private:
  GuestKernel* kernel_;
  AppId pid_;
  std::vector<VaRange> ranges_;
};

// Shared helper: PFNs of all mapped pages overlapping `range` in `space`.
std::vector<Pfn> MappedPfnsInRange(AddressSpace& space, const VaRange& range);

}  // namespace javmm

#endif  // JAVMM_SRC_CORE_LIVENESS_H_
