// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/core/policy.h"

#include <cstdio>

namespace javmm {

PolicyDecision AdaptiveMigrationPolicy::Decide(const GenerationalHeap& heap,
                                               const LinkConfig& link) {
  PolicyDecision decision;
  const double goodput = link.GoodputBytesPerSec();
  const double young = static_cast<double>(heap.young_committed_bytes());
  const GcLog& log = heap.gc_log();

  if (log.minor.empty()) {
    decision.use_assisted = young >= static_cast<double>(256 * kMiB);
    decision.reason = "no GC history; defaulting on young-generation size";
    return decision;
  }

  // Expected survivors of the enforced GC ~ mean live bytes per minor GC.
  double mean_live = 0;
  double mean_used = 0;
  for (const auto& gc : log.minor) {
    mean_live += static_cast<double>(gc.live_bytes);
    mean_used += static_cast<double>(gc.young_used_before);
  }
  mean_live /= static_cast<double>(log.minor.size());
  mean_used /= static_cast<double>(log.minor.size());
  const double gc_secs = log.MeanMinorDuration().ToSecondsF();

  // JAVMM downtime ~ enforced GC + surviving data transfer (+ resumption,
  // common to both engines and omitted).
  decision.estimated_assisted_downtime_s = gc_secs + mean_live / goodput;
  // Plain pre-copy's last iteration carries roughly the data dirtied during
  // one final-iteration-sized window; bounded by the used young generation.
  decision.estimated_plain_downtime_s = mean_used / goodput;
  decision.estimated_skippable_bytes = mean_used - mean_live;

  const bool garbage_rich = mean_used > 0 && (mean_used - mean_live) / mean_used > 0.5;
  const bool downtime_pays =
      decision.estimated_assisted_downtime_s < decision.estimated_plain_downtime_s * 1.1;
  const bool worthwhile_volume =
      decision.estimated_skippable_bytes > static_cast<double>(64 * kMiB);

  decision.use_assisted = garbage_rich && downtime_pays && worthwhile_volume;

  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "garbage_frac=%.2f est_downtime(assisted=%.2fs plain=%.2fs) skippable=%.0fMiB",
                mean_used > 0 ? (mean_used - mean_live) / mean_used : 0.0,
                decision.estimated_assisted_downtime_s, decision.estimated_plain_downtime_s,
                decision.estimated_skippable_bytes / static_cast<double>(kMiB));
  decision.reason = buf;
  return decision;
}

}  // namespace javmm
