// Copyright (c) 2026 The JAVMM Reproduction Authors.
// MigrationLab: the library's top-level facade.
//
// One MigrationLab instance is one experiment: a guest VM of a given size
// running one Java workload (plus guest-OS background activity), with the
// framework LKM loaded, an external throughput analyser attached, and a
// migration engine in either vanilla-Xen or JAVMM mode. Typical use:
//
//   LabConfig config;
//   config.migration.application_assisted = true;
//   MigrationLab lab(Workloads::Get("derby"), config);
//   lab.Run(Duration::Seconds(300));             // Paper: migrate halfway.
//   MigrationResult result = lab.Migrate();
//   lab.Run(Duration::Seconds(300));             // Finish the workload.
//   CHECK(result.verification.ok);

#ifndef JAVMM_SRC_CORE_MIGRATION_LAB_H_
#define JAVMM_SRC_CORE_MIGRATION_LAB_H_

#include <memory>

#include "src/base/perf.h"
#include "src/core/liveness.h"
#include "src/guest/guest_kernel.h"
#include "src/guest/lkm.h"
#include "src/jvm/ti_agent.h"
#include "src/migration/engine.h"
#include "src/sim/clock.h"
#include "src/workload/java_application.h"
#include "src/workload/os_process.h"
#include "src/workload/spec.h"
#include "src/workload/throughput_analyzer.h"

namespace javmm {

struct LabConfig {
  int64_t vm_bytes = 2 * kGiB;  // The paper's 2 GB / 4 vCPU guest.
  uint64_t seed = 1;
  OsProcessConfig os;
  LkmConfig lkm;
  MigrationConfig migration;
  TiAgentConfig agent;
  bool load_lkm = true;

  // Route the throughput analyser's probe traffic through the migration
  // fault plan (channel 0's effective plan when the spec is per-channel):
  // probes landing in an outage window observe zero throughput. Off by
  // default -- existing faulted exports assume a lossless probe path.
  bool analyzer_probe_faults = false;

  // Keeps the heap inside the VM: the old generation's cap is reduced when
  // young_max + old_max + OS would not fit in vm_bytes (with this guard of
  // uncommitted headroom).
  int64_t memory_guard_bytes = 96 * kMiB;
};

class MigrationLab {
 public:
  MigrationLab(const WorkloadSpec& spec, const LabConfig& config);
  MigrationLab(const MigrationLab&) = delete;
  MigrationLab& operator=(const MigrationLab&) = delete;
  ~MigrationLab();

  // Runs the guest (workload + OS) for `dt` of simulated time.
  void Run(Duration dt);

  // Performs one live migration with the configured engine and returns its
  // result (including verification). The clock advances through it.
  MigrationResult Migrate();

  SimClock& clock() { return clock_; }
  GuestKernel& guest() { return *kernel_; }

  // Guest-side store-path counters (write_runs / pages_written / pte_lookups),
  // accumulated since construction: the memory's perf sink is attached before
  // any process populates, so boot writes are metered too. Runners fold this
  // into the scenario's engine counters after the cooldown phase.
  const PerfCounters& guest_perf() const { return guest_perf_; }
  JavaApplication& app() { return *app_; }
  const ThroughputAnalyzer& analyzer() const { return *analyzer_; }
  ThroughputAnalyzer& mutable_analyzer() { return *analyzer_; }
  const LabConfig& config() const { return config_; }
  const WorkloadSpec& spec() const { return spec_; }

 private:
  LabConfig config_;
  WorkloadSpec spec_;
  SimClock clock_;
  PerfCounters guest_perf_;
  std::unique_ptr<GuestPhysicalMemory> memory_;
  std::unique_ptr<GuestKernel> kernel_;
  std::unique_ptr<OsBackgroundProcess> os_;
  std::unique_ptr<JavaApplication> app_;
  std::unique_ptr<ThroughputAnalyzer> analyzer_;
  std::unique_ptr<JavaLivenessSource> java_liveness_;
  std::unique_ptr<RangeLivenessSource> os_liveness_;
};

}  // namespace javmm

#endif  // JAVMM_SRC_CORE_MIGRATION_LAB_H_
