// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Adaptive engine selection -- the §6 "make the framework intelligent"
// extension.
//
// §6 identifies the regimes where JAVMM should be used with care: long minor
// GCs, high object survival (scimark), and read-intensive workloads whose
// pre-copy already converges. The policy estimates both engines' downtime
// from live observables (GC log, heap sizes, link speed) and recommends
// plain pre-copy whenever assistance would not pay.

#ifndef JAVMM_SRC_CORE_POLICY_H_
#define JAVMM_SRC_CORE_POLICY_H_

#include <string>

#include "src/jvm/generational_heap.h"
#include "src/net/link.h"

namespace javmm {

struct PolicyDecision {
  bool use_assisted = false;
  // Model estimates backing the decision (seconds).
  double estimated_assisted_downtime_s = 0;
  double estimated_plain_downtime_s = 0;
  double estimated_skippable_bytes = 0;
  std::string reason;
};

class AdaptiveMigrationPolicy {
 public:
  // Decides from the heap's observed behaviour and the migration link.
  // Requires at least one logged minor GC; with no history it conservatively
  // recommends assistance only for a large committed young generation.
  static PolicyDecision Decide(const GenerationalHeap& heap, const LinkConfig& link);
};

}  // namespace javmm

#endif  // JAVMM_SRC_CORE_POLICY_H_
