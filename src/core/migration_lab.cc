// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/core/migration_lab.h"

#include <algorithm>

#include "src/base/macros.h"

namespace javmm {

MigrationLab::MigrationLab(const WorkloadSpec& spec, const LabConfig& config)
    : config_(config), spec_(spec) {
  // Fit the heap into the VM: the old generation takes what the young cap and
  // the OS leave over, as HotSpot does with -Xmx bounded by guest memory.
  const int64_t old_budget = config_.vm_bytes - spec_.heap.young_max_bytes -
                             config_.os.resident_bytes - config_.memory_guard_bytes;
  CHECK_GT(old_budget, spec_.old_baseline_bytes);
  spec_.heap.old_max_bytes = std::min(spec_.heap.old_max_bytes, old_budget);

  memory_ = std::make_unique<GuestPhysicalMemory>(config_.vm_bytes);
  memory_->set_perf(&guest_perf_);
  kernel_ = std::make_unique<GuestKernel>(memory_.get(), &clock_);
  if (config_.load_lkm) {
    kernel_->LoadLkm(config_.lkm);
  }
  Rng rng(config_.seed);
  os_ = std::make_unique<OsBackgroundProcess>(kernel_.get(), config_.os, rng.Fork());
  app_ = std::make_unique<JavaApplication>(kernel_.get(), spec_, rng.Fork(), config_.agent);
  // The engine's control-loss stream forks off AFTER the existing consumers,
  // so enabling fault injection cannot perturb the OS/app streams of a
  // fault-free run with the same lab seed.
  config_.migration.fault_seed = rng.Fork().Next();
  analyzer_ = std::make_unique<ThroughputAnalyzer>(&clock_, app_.get());

  java_liveness_ = std::make_unique<JavaLivenessSource>(kernel_.get(), app_.get());
  os_liveness_ = std::make_unique<RangeLivenessSource>(kernel_.get(), os_->pid());
  os_liveness_->AddRange(os_->resident_range());
}

MigrationLab::~MigrationLab() = default;

void MigrationLab::Run(Duration dt) { clock_.Advance(dt); }

MigrationResult MigrationLab::Migrate() {
  MigrationEngine engine(kernel_.get(), config_.migration);
  engine.AddRequiredPfnSource(java_liveness_.get());
  engine.AddRequiredPfnSource(os_liveness_.get());
  MigrationResult result = engine.Migrate();

  // Enrich the downtime breakdown with the JVM-side components the daemon
  // cannot see: the enforced GC's duration and the safepoint wait before it.
  if (result.assisted && !result.fell_back_unassisted) {
    const GcLog& log = app_->heap().gc_log();
    for (auto it = log.minor.rbegin(); it != log.minor.rend(); ++it) {
      if (it->enforced && it->at >= result.started_at) {
        result.downtime.enforced_gc = it->duration + it->full_gc_penalty;
        break;
      }
    }
    result.downtime.safepoint_wait = app_->last_safepoint_wait();
  }
  return result;
}

}  // namespace javmm
