// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/core/liveness.h"

namespace javmm {

std::vector<Pfn> MappedPfnsInRange(AddressSpace& space, const VaRange& range) {
  std::vector<Pfn> out;
  if (range.empty()) {
    return out;
  }
  const Vpn first = VpnOf(PageAlignDown(range.begin));
  const Vpn last = VpnOf(PageAlignUp(range.end));
  out.reserve(static_cast<size_t>(last - first));
  for (Vpn vpn = first; vpn < last; ++vpn) {
    const Pfn pfn = space.page_table().Lookup(vpn);
    if (pfn != kInvalidPfn) {
      out.push_back(pfn);
    }
  }
  return out;
}

std::vector<Pfn> JavaLivenessSource::RequiredPfns(TimePoint pause_time) const {
  AddressSpace& space = kernel_->address_space(app_->pid());
  std::vector<Pfn> out;
  for (const auto& chunk : app_->heap().LiveChunks(pause_time)) {
    const VaRange range{chunk.addr, chunk.addr + static_cast<uint64_t>(chunk.bytes)};
    for (Pfn pfn : MappedPfnsInRange(space, range)) {
      out.push_back(pfn);
    }
  }
  return out;
}

std::vector<Pfn> G1LivenessSource::RequiredPfns(TimePoint pause_time) const {
  AddressSpace& space = kernel_->address_space(app_->pid());
  std::vector<Pfn> out;
  for (const auto& chunk : app_->heap().LiveChunks(pause_time)) {
    const VaRange range{chunk.addr, chunk.addr + static_cast<uint64_t>(chunk.bytes)};
    for (Pfn pfn : MappedPfnsInRange(space, range)) {
      out.push_back(pfn);
    }
  }
  return out;
}

std::vector<Pfn> RangeLivenessSource::RequiredPfns(TimePoint pause_time) const {
  (void)pause_time;
  AddressSpace& space = kernel_->address_space(pid_);
  std::vector<Pfn> out;
  for (const VaRange& range : ranges_) {
    for (Pfn pfn : MappedPfnsInRange(space, range)) {
      out.push_back(pfn);
    }
  }
  return out;
}

}  // namespace javmm
