// Copyright (c) 2026 The JAVMM Reproduction Authors.

#ifndef JAVMM_SRC_NET_LINK_H_
#define JAVMM_SRC_NET_LINK_H_

#include <cstdint>

#include "src/base/time.h"
#include "src/base/units.h"
#include "src/faults/faults.h"

namespace javmm {

// Static description of the migration network path.
//
// The paper's testbed is a gigabit-Ethernet LAN where 950 MB of young-gen
// garbage "would take more than 7 seconds to be transferred" -- an effective
// goodput of ~125 MB/s raw, ~119 MiB/s after protocol efficiency. The default
// configuration reproduces that operating point; the bandwidth sweep ablation
// varies `bandwidth_bps`.
struct LinkConfig {
  double bandwidth_bps = 1e9;       // Raw line rate in bits/s.
  double efficiency = 0.95;         // Fraction of line rate usable as goodput.
  int64_t per_page_overhead = 78;   // Wire bytes added per migrated page
                                    // (Ethernet + IP + TCP headers and the
                                    // migration stream's PFN tag).
  Duration latency = Duration::Micros(200);  // One-way latency; charged once
                                             // per migration round trip, not
                                             // per page (stream is pipelined).

  // Application-payload goodput in bytes/second.
  double GoodputBytesPerSec() const { return bandwidth_bps * efficiency / 8.0; }
};

// Outcome of one fault-aware transfer attempt (NetworkLink::TryTransfer).
struct TransferAttempt {
  bool ok = false;
  // Simulated time the attempt consumed: the full transfer on success, the
  // time until the link dropped on failure.
  Duration duration = Duration::Zero();
  // Bytes that made it onto the wire before the drop (0 on success -- the
  // caller meters successful bytes itself). They bought nothing and are
  // metered into the retry-bytes bucket.
  int64_t wasted_bytes = 0;
  // Earliest instant a retry can possibly succeed (end of the outage that
  // killed this attempt); only meaningful when !ok.
  TimePoint blocked_until;
};

// Models the source->destination migration link: converts byte counts into
// simulated transfer durations and meters cumulative traffic.
class NetworkLink {
 public:
  explicit NetworkLink(const LinkConfig& config);

  const LinkConfig& config() const { return config_; }

  // Time to push `page_count` pages (payload + per-page overhead) through the
  // link. Pure function of the config; does not meter.
  Duration PageTransferTime(int64_t page_count) const;

  // Time for `bytes` of non-page control traffic.
  Duration TransferTime(int64_t bytes) const;

  // Fault-aware transfer of `bytes` starting at `start`: integrates the
  // goodput piecewise over the schedule's bandwidth windows and fails the
  // attempt if an outage begins before the last byte lands. With a null or
  // transfer-neutral schedule this is exactly TransferTime(bytes) -- the
  // fault-free path stays bit-identical. Pure; does not meter.
  TransferAttempt TryTransfer(int64_t bytes, TimePoint start,
                              const FaultSchedule* faults) const;

  // Wire bytes for `page_count` pages.
  int64_t PageWireBytes(int64_t page_count) const;

  // Metering: the engines record what they put on the wire.
  void RecordPages(int64_t page_count);
  // Page traffic whose wire size differs from PageWireBytes (compression,
  // delta retransmission): advances both the page and the byte meter.
  void RecordPageBytes(int64_t page_count, int64_t wire_bytes);
  void RecordControlBytes(int64_t bytes);
  // Wire bytes that bought no progress: failed transfer attempts cut short by
  // an outage and lost control rounds. Kept out of total_wire_bytes so the
  // auditor's useful-traffic identities survive; the sum of the two meters is
  // everything the link carried.
  void RecordRetryBytes(int64_t bytes);

  int64_t total_wire_bytes() const { return total_wire_bytes_; }
  int64_t total_pages_sent() const { return total_pages_sent_; }
  int64_t total_retry_bytes() const { return total_retry_bytes_; }

  void ResetMeters();

 private:
  LinkConfig config_;
  int64_t total_wire_bytes_ = 0;
  int64_t total_pages_sent_ = 0;
  int64_t total_retry_bytes_ = 0;
};

}  // namespace javmm

#endif  // JAVMM_SRC_NET_LINK_H_
