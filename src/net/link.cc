// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/net/link.h"

#include <cmath>

#include "src/base/macros.h"

namespace javmm {

NetworkLink::NetworkLink(const LinkConfig& config) : config_(config) {
  CHECK_GT(config.bandwidth_bps, 0.0);
  CHECK_GT(config.efficiency, 0.0);
  CHECK_LE(config.efficiency, 1.0);
  CHECK_GE(config.per_page_overhead, 0);
}

int64_t NetworkLink::PageWireBytes(int64_t page_count) const {
  return CheckedMul(page_count, kPageSize + config_.per_page_overhead);
}

Duration NetworkLink::PageTransferTime(int64_t page_count) const {
  CHECK_GE(page_count, 0);
  if (page_count == 0) {
    return Duration::Zero();
  }
  const double secs =
      static_cast<double>(PageWireBytes(page_count)) / config_.GoodputBytesPerSec();
  return Duration::SecondsF(secs);
}

Duration NetworkLink::TransferTime(int64_t bytes) const {
  CHECK_GE(bytes, 0);
  const double secs = static_cast<double>(bytes) / config_.GoodputBytesPerSec();
  return Duration::SecondsF(secs);
}

TransferAttempt NetworkLink::TryTransfer(int64_t bytes, TimePoint start,
                                         const FaultSchedule* faults) const {
  CHECK_GE(bytes, 0);
  TransferAttempt attempt;
  if (faults == nullptr || !faults->affects_transfers()) {
    // Fault-free fast path: one SecondsF conversion, exactly TransferTime, so
    // runs without transfer faults stay bit-identical to the pre-fault code.
    attempt.ok = true;
    attempt.duration = TransferTime(bytes);
    return attempt;
  }
  if (bytes == 0) {
    attempt.ok = !faults->InOutage(start);
    if (!attempt.ok) {
      attempt.blocked_until = faults->OutageEndAt(start);
    }
    return attempt;
  }
  // Integrate the piecewise-constant goodput from `start` until the last byte
  // lands or an outage begins. Boundaries are strictly increasing, so the
  // loop takes at most one step per window edge.
  double remaining = static_cast<double>(bytes);
  TimePoint now = start;
  while (true) {
    // Window-edge arithmetic can drive `remaining` to exactly 0 at a boundary
    // that is also an outage start; everything was delivered, so the outage
    // must not fail the attempt.
    if (remaining <= 0.0) {
      attempt.ok = true;
      attempt.duration = now - start;
      return attempt;
    }
    if (faults->InOutage(now)) {
      attempt.ok = false;
      attempt.duration = now - start;
      attempt.wasted_bytes = bytes - static_cast<int64_t>(std::llround(remaining));
      attempt.blocked_until = faults->OutageEndAt(now);
      return attempt;
    }
    const double rate = config_.GoodputBytesPerSec() * faults->BandwidthMultiplierAt(now);
    const TimePoint boundary = faults->NextTransferBoundaryAfter(now);
    const TimePoint finish = now + Duration::SecondsF(remaining / rate);
    if (boundary == TimePoint::Max() || finish <= boundary) {
      attempt.ok = true;
      attempt.duration = finish - start;
      return attempt;
    }
    const double sent = rate * (boundary - now).ToSecondsF();
    remaining = remaining > sent ? remaining - sent : 0.0;
    now = boundary;
  }
}

void NetworkLink::RecordPages(int64_t page_count) {
  total_pages_sent_ += page_count;
  total_wire_bytes_ += PageWireBytes(page_count);
}

void NetworkLink::RecordPageBytes(int64_t page_count, int64_t wire_bytes) {
  total_pages_sent_ += page_count;
  total_wire_bytes_ += wire_bytes;
}

void NetworkLink::RecordControlBytes(int64_t bytes) { total_wire_bytes_ += bytes; }

void NetworkLink::RecordRetryBytes(int64_t bytes) { total_retry_bytes_ += bytes; }

void NetworkLink::ResetMeters() {
  total_wire_bytes_ = 0;
  total_pages_sent_ = 0;
  total_retry_bytes_ = 0;
}

}  // namespace javmm
