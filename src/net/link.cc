// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/net/link.h"

#include "src/base/macros.h"

namespace javmm {

NetworkLink::NetworkLink(const LinkConfig& config) : config_(config) {
  CHECK_GT(config.bandwidth_bps, 0.0);
  CHECK_GT(config.efficiency, 0.0);
  CHECK_LE(config.efficiency, 1.0);
  CHECK_GE(config.per_page_overhead, 0);
}

int64_t NetworkLink::PageWireBytes(int64_t page_count) const {
  return page_count * (kPageSize + config_.per_page_overhead);
}

Duration NetworkLink::PageTransferTime(int64_t page_count) const {
  CHECK_GE(page_count, 0);
  if (page_count == 0) {
    return Duration::Zero();
  }
  const double secs =
      static_cast<double>(PageWireBytes(page_count)) / config_.GoodputBytesPerSec();
  return Duration::SecondsF(secs);
}

Duration NetworkLink::TransferTime(int64_t bytes) const {
  CHECK_GE(bytes, 0);
  const double secs = static_cast<double>(bytes) / config_.GoodputBytesPerSec();
  return Duration::SecondsF(secs);
}

void NetworkLink::RecordPages(int64_t page_count) {
  total_pages_sent_ += page_count;
  total_wire_bytes_ += PageWireBytes(page_count);
}

void NetworkLink::RecordPageBytes(int64_t page_count, int64_t wire_bytes) {
  total_pages_sent_ += page_count;
  total_wire_bytes_ += wire_bytes;
}

void NetworkLink::RecordControlBytes(int64_t bytes) { total_wire_bytes_ += bytes; }

void NetworkLink::ResetMeters() {
  total_wire_bytes_ = 0;
  total_pages_sent_ = 0;
}

}  // namespace javmm
