// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/net/channel_set.h"

#include "src/base/macros.h"
#include "src/base/units.h"

namespace javmm {

ChannelSet::ChannelSet(const LinkConfig& base, int count) {
  CHECK_GT(count, 0);
  LinkConfig per_channel = base;
  // Dividing by 1.0 is exact, so a one-channel set carries the base config
  // bit-for-bit.
  per_channel.bandwidth_bps = base.bandwidth_bps / static_cast<double>(count);
  links_.reserve(static_cast<size_t>(count));
  for (int c = 0; c < count; ++c) {
    links_.emplace_back(per_channel);
  }
  schedules_.resize(static_cast<size_t>(count));
}

void ChannelSet::Anchor(const FaultPlan& shared, const std::vector<FaultPlan>& per_channel,
                        TimePoint origin) {
  if (!per_channel.empty()) {
    CHECK_EQ(static_cast<int>(per_channel.size()), count());
  }
  for (int c = 0; c < count(); ++c) {
    const FaultPlan& plan =
        per_channel.empty() ? shared : per_channel[static_cast<size_t>(c)];
    if (plan.enabled()) {
      schedules_[static_cast<size_t>(c)].emplace(plan, origin);
    } else {
      schedules_[static_cast<size_t>(c)].reset();
    }
  }
}

void ChannelSet::ClearSchedules() {
  for (auto& schedule : schedules_) {
    schedule.reset();
  }
}

const FaultSchedule* ChannelSet::faults(int c) const {
  const auto& schedule = schedules_[static_cast<size_t>(c)];
  return schedule ? &*schedule : nullptr;
}

std::vector<ChannelShare> ChannelSet::Shard(int64_t pages, int64_t wire_bytes) const {
  CHECK_GE(pages, 0);
  CHECK_GE(wire_bytes, 0);
  const int64_t n = count();
  std::vector<ChannelShare> shares(static_cast<size_t>(n));
  for (int64_t c = 0; c < n; ++c) {
    ChannelShare& share = shares[static_cast<size_t>(c)];
    share.channel = static_cast<int>(c);
    if (pages > 0) {
      const int64_t page_lo = MulDiv(pages, c, n);
      const int64_t page_hi = MulDiv(pages, c + 1, n);
      share.pages = page_hi - page_lo;
      // wire_bytes * page_hi overflows int64 once memories reach ~2^32 pages
      // (javmm-lint overflow-mul); MulDiv runs the product through 128 bits
      // and truncates exactly like the old int64 division for in-range values.
      share.wire_bytes =
          MulDiv(wire_bytes, page_hi, pages) - MulDiv(wire_bytes, page_lo, pages);
    } else {
      share.pages = 0;
      share.wire_bytes = MulDiv(wire_bytes, c + 1, n) - MulDiv(wire_bytes, c, n);
    }
  }
  return shares;
}

StripedOutcome ChannelSet::TryStripedTransfer(
    int64_t pages, int64_t wire_bytes, TimePoint start, int max_retries,
    Duration backoff_base, Duration backoff_cap,
    const std::function<void(int, int, const TransferAttempt&, TimePoint)>& on_fault,
    const std::function<void(int, int, Duration, Duration, TimePoint)>& on_backoff) const {
  StripedOutcome outcome;
  outcome.shares = Shard(pages, wire_bytes);
  outcome.completes_at = start;
  for (ChannelShare& share : outcome.shares) {
    if (share.wire_bytes == 0 && share.pages == 0) {
      share.done = start;
      continue;
    }
    const NetworkLink& link = links_[static_cast<size_t>(share.channel)];
    const FaultSchedule* schedule = faults(share.channel);
    TimePoint vnow = start;
    int attempt = 0;
    while (true) {
      const TransferAttempt result = link.TryTransfer(share.wire_bytes, vnow, schedule);
      if (result.ok) {
        share.done = vnow + result.duration;
        if (share.done > outcome.completes_at) {
          outcome.completes_at = share.done;
        }
        break;
      }
      ++attempt;
      vnow = vnow + result.duration;
      on_fault(share.channel, attempt, result, vnow);
      if (max_retries >= 0 && attempt > max_retries) {
        // Retry budget exhausted: the whole burst is abandoned. No backoff
        // after the terminal fault, matching the engines' degrade paths.
        if (vnow > outcome.completes_at) {
          outcome.completes_at = vnow;
        }
        outcome.ok = false;
        return outcome;
      }
      const Duration nominal = NominalBackoff(backoff_base, backoff_cap, attempt);
      TimePoint target = vnow + nominal;
      if (result.blocked_until > target) {
        target = result.blocked_until;
      }
      on_backoff(share.channel, attempt, nominal, target - vnow, target);
      vnow = target;
    }
  }
  outcome.ok = true;
  return outcome;
}

int64_t ChannelSet::total_wire_bytes() const {
  int64_t total = 0;
  for (const NetworkLink& link : links_) {
    total += link.total_wire_bytes();
  }
  return total;
}

int64_t ChannelSet::total_pages_sent() const {
  int64_t total = 0;
  for (const NetworkLink& link : links_) {
    total += link.total_pages_sent();
  }
  return total;
}

int64_t ChannelSet::total_retry_bytes() const {
  int64_t total = 0;
  for (const NetworkLink& link : links_) {
    total += link.total_retry_bytes();
  }
  return total;
}

std::vector<int64_t> ChannelSet::WireBytesPerChannel() const {
  std::vector<int64_t> out;
  out.reserve(links_.size());
  for (const NetworkLink& link : links_) {
    out.push_back(link.total_wire_bytes());
  }
  return out;
}

std::vector<int64_t> ChannelSet::PagesSentPerChannel() const {
  std::vector<int64_t> out;
  out.reserve(links_.size());
  for (const NetworkLink& link : links_) {
    out.push_back(link.total_pages_sent());
  }
  return out;
}

std::vector<int64_t> ChannelSet::RetryBytesPerChannel() const {
  std::vector<int64_t> out;
  out.reserve(links_.size());
  for (const NetworkLink& link : links_) {
    out.push_back(link.total_retry_bytes());
  }
  return out;
}

void ChannelSet::ResetMeters() {
  for (NetworkLink& link : links_) {
    link.ResetMeters();
  }
}

}  // namespace javmm
