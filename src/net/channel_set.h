// Copyright (c) 2026 The JAVMM Reproduction Authors.
//
// Multi-channel migration data plane (DESIGN.md §11). A ChannelSet splits one
// migration link into N deterministic sub-links ("channels"), each carrying
// an equal share of the line rate, each with its own fault schedule and its
// own wire/page/retry meters. PMigrate-KVM does the same with ip_num parallel
// TCP connections; here the channels are simulated, so a fault pinned to one
// channel (a "ch1:" clause) degrades only the traffic sharded onto it.
//
// With count() == 1 every code path reduces exactly to the single-link
// arithmetic the engines used before: the bandwidth share is the full rate
// (divided by 1.0), the sharder produces one full-size share, and the striped
// retry loop visits one channel with the same attempt/backoff sequence --
// results stay bit-identical.

#ifndef JAVMM_SRC_NET_CHANNEL_SET_H_
#define JAVMM_SRC_NET_CHANNEL_SET_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/base/time.h"
#include "src/faults/faults.h"
#include "src/net/link.h"

namespace javmm {

// One channel's slice of a striped transfer.
struct ChannelShare {
  int channel = 0;
  int64_t pages = 0;
  int64_t wire_bytes = 0;
  // Instant this channel's slice finished (success only).
  TimePoint done;
};

// Outcome of one striped transfer across all channels.
struct StripedOutcome {
  bool ok = false;
  // Success: when the slowest channel finished. Failure: how far simulated
  // time progressed before the retry budget ran out (the caller advances the
  // clock by completes_at - start either way).
  TimePoint completes_at;
  std::vector<ChannelShare> shares;
};

class ChannelSet {
 public:
  // Splits `base` into `count` channels of bandwidth_bps / count each (same
  // efficiency, overhead, and latency).
  ChannelSet(const LinkConfig& base, int count);

  int count() const { return static_cast<int>(links_.size()); }
  NetworkLink& channel(int c) { return links_[static_cast<size_t>(c)]; }
  const NetworkLink& channel(int c) const { return links_[static_cast<size_t>(c)]; }

  // Anchors per-channel fault schedules at `origin`. Channel c follows
  // per_channel[c] when per_channel is non-empty (it must then have count()
  // entries), else the shared plan; a channel whose effective plan is not
  // enabled() gets no schedule at all, preserving the fault-free fast path.
  void Anchor(const FaultPlan& shared, const std::vector<FaultPlan>& per_channel,
              TimePoint origin);
  void ClearSchedules();

  // Channel c's schedule, or nullptr when faults do not apply to it.
  const FaultSchedule* faults(int c) const;

  // Deterministic sharder: splits a burst of `pages` pages / `wire_bytes`
  // wire bytes into count() contiguous slices with exact sums -- channel c
  // gets pages*(c+1)/N - pages*c/N pages and the byte range between the
  // page-proportional byte cuts. Page-less payloads (device state, control)
  // shard bytes evenly the same way. A share with zero pages has zero bytes
  // unless the whole burst is page-less.
  std::vector<ChannelShare> Shard(int64_t pages, int64_t wire_bytes) const;

  // Runs one burst striped across the channels: each channel retries its own
  // slice on its own virtual timeline starting at `start`, with the engines'
  // bounded exponential backoff (max_retries < 0 means unbounded, the
  // stop-and-copy contract). The caller observes faults and backoffs through
  // the callbacks -- it meters retry bytes, bumps counters, and records trace
  // events at the virtual instants passed in -- then advances the clock once
  // by completes_at - start. on_fault runs after a failed attempt with the
  // virtual time already past the partial transfer; on_backoff runs with the
  // nominal wait, the actual wait (outage-extended), and the retry instant.
  StripedOutcome TryStripedTransfer(
      int64_t pages, int64_t wire_bytes, TimePoint start, int max_retries,
      Duration backoff_base, Duration backoff_cap,
      const std::function<void(int channel, int attempt, const TransferAttempt&,
                               TimePoint vnow)>& on_fault,
      const std::function<void(int channel, int attempt, Duration nominal,
                               Duration waited, TimePoint vtarget)>& on_backoff) const;

  // Aggregate meters across all channels (the legacy single-link totals).
  int64_t total_wire_bytes() const;
  int64_t total_pages_sent() const;
  int64_t total_retry_bytes() const;
  std::vector<int64_t> WireBytesPerChannel() const;
  std::vector<int64_t> PagesSentPerChannel() const;
  std::vector<int64_t> RetryBytesPerChannel() const;
  void ResetMeters();

 private:
  std::vector<NetworkLink> links_;
  std::vector<std::optional<FaultSchedule>> schedules_;
};

}  // namespace javmm

#endif  // JAVMM_SRC_NET_CHANNEL_SET_H_
