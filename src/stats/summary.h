// Copyright (c) 2026 The JAVMM Reproduction Authors.

#ifndef JAVMM_SRC_STATS_SUMMARY_H_
#define JAVMM_SRC_STATS_SUMMARY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace javmm {

// Summary statistics over repeated experiment runs. The paper repeats each
// experiment >= 3 times and reports means with 90% confidence intervals
// (§5.1); `Ci90HalfWidth` uses the small-sample t-distribution.
class Summary {
 public:
  Summary() = default;

  void Add(double x);

  int64_t count() const { return static_cast<int64_t>(samples_.size()); }
  double Mean() const;
  double StdDev() const;  // Sample standard deviation (n-1).
  double Min() const;
  double Max() const;

  // Half-width of the two-sided 90% confidence interval for the mean.
  // Returns 0 for fewer than 2 samples.
  double Ci90HalfWidth() const;

  // "mean ± ci" with the given unit scale applied (e.g. 1e9 for ns->s).
  std::string ToString(double scale = 1.0, const char* unit = "") const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace javmm

#endif  // JAVMM_SRC_STATS_SUMMARY_H_
