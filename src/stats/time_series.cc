// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/stats/time_series.h"

#include <algorithm>

namespace javmm {

double TimeSeries::MeanInWindow(TimePoint from, TimePoint to) const {
  double sum = 0;
  int64_t n = 0;
  for (const Point& p : points_) {
    if (p.t >= from && p.t < to) {
      sum += p.value;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double TimeSeries::MinInWindow(TimePoint from, TimePoint to) const {
  double best = 0;
  bool seen = false;
  for (const Point& p : points_) {
    if (p.t >= from && p.t < to) {
      best = seen ? std::min(best, p.value) : p.value;
      seen = true;
    }
  }
  return seen ? best : 0.0;
}

Duration TimeSeries::LongestBelow(double threshold, TimePoint from, TimePoint to) const {
  Duration best = Duration::Zero();
  bool in_run = false;
  TimePoint run_start;
  TimePoint prev;
  Duration spacing = Duration::Seconds(1);
  for (size_t i = 0; i < points_.size(); ++i) {
    const Point& p = points_[i];
    if (p.t < from || p.t >= to) {
      continue;
    }
    if (i > 0 && points_[i - 1].t >= from) {
      spacing = p.t - points_[i - 1].t;
    }
    if (p.value < threshold) {
      if (!in_run) {
        in_run = true;
        run_start = p.t;
      }
      best = std::max(best, p.t - run_start + spacing);
    } else {
      in_run = false;
    }
    prev = p.t;
  }
  return best;
}

}  // namespace javmm
