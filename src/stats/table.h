// Copyright (c) 2026 The JAVMM Reproduction Authors.

#ifndef JAVMM_SRC_STATS_TABLE_H_
#define JAVMM_SRC_STATS_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace javmm {

// Minimal fixed-width ASCII table used by the bench binaries to print the
// rows/series of each paper figure and table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds a row; must match the header arity.
  void AddRow(std::vector<std::string> cells);

  // Convenience for mixed content.
  class RowBuilder {
   public:
    explicit RowBuilder(Table* table) : table_(table) {}
    RowBuilder& Cell(const std::string& s);
    RowBuilder& Cell(double v, int precision = 2);
    RowBuilder& Cell(int64_t v);
    ~RowBuilder();

   private:
    Table* table_;
    std::vector<std::string> cells_;
  };
  RowBuilder Row() { return RowBuilder(this); }

  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Renders a horizontal ASCII bar scaled so that `max_value` spans `width`
// characters; used for quick visual shape checks in bench output.
std::string AsciiBar(double value, double max_value, int width = 40);

}  // namespace javmm

#endif  // JAVMM_SRC_STATS_TABLE_H_
