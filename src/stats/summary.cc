// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/stats/summary.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/base/macros.h"

namespace javmm {
namespace {

// Two-sided 90% critical values of Student's t for df = 1..30; df > 30 uses
// the normal approximation 1.645.
constexpr double kT90[] = {6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860,
                           1.833, 1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746,
                           1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711,
                           1.708, 1.706, 1.703, 1.701, 1.699, 1.697};

double T90(int64_t df) {
  if (df <= 0) {
    return 0.0;
  }
  if (df <= 30) {
    return kT90[df - 1];
  }
  return 1.645;
}

}  // namespace

void Summary::Add(double x) { samples_.push_back(x); }

double Summary::Mean() const {
  CHECK_GT(count(), 0);
  double sum = 0;
  for (double x : samples_) {
    sum += x;
  }
  return sum / static_cast<double>(samples_.size());
}

double Summary::StdDev() const {
  if (count() < 2) {
    return 0.0;
  }
  const double m = Mean();
  double ss = 0;
  for (double x : samples_) {
    ss += (x - m) * (x - m);
  }
  return std::sqrt(ss / static_cast<double>(count() - 1));
}

double Summary::Min() const {
  CHECK_GT(count(), 0);
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::Max() const {
  CHECK_GT(count(), 0);
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::Ci90HalfWidth() const {
  if (count() < 2) {
    return 0.0;
  }
  return T90(count() - 1) * StdDev() / std::sqrt(static_cast<double>(count()));
}

std::string Summary::ToString(double scale, const char* unit) const {
  char buf[96];
  if (count() == 0) {
    return "n/a";
  }
  std::snprintf(buf, sizeof(buf), "%.2f ± %.2f%s", Mean() / scale, Ci90HalfWidth() / scale, unit);
  return buf;
}

}  // namespace javmm
