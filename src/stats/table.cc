// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/stats/table.h"

#include <algorithm>
#include <cstdio>

#include "src/base/macros.h"

namespace javmm {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  CHECK(!headers_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

Table::RowBuilder& Table::RowBuilder::Cell(const std::string& s) {
  cells_.push_back(s);
  return *this;
}

Table::RowBuilder& Table::RowBuilder::Cell(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  cells_.push_back(buf);
  return *this;
}

Table::RowBuilder& Table::RowBuilder::Cell(int64_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

Table::RowBuilder::~RowBuilder() { table_->AddRow(std::move(cells_)); }

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << "\n";
  };
  auto print_sep = [&]() {
    os << "+";
    for (size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << "+";
    }
    os << "\n";
  };
  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) {
    print_row(row);
  }
  print_sep();
}

std::string AsciiBar(double value, double max_value, int width) {
  if (max_value <= 0 || value < 0) {
    return "";
  }
  const int n = static_cast<int>(value / max_value * width + 0.5);
  return std::string(static_cast<size_t>(std::min(n, width)), '#');
}

}  // namespace javmm
