// Copyright (c) 2026 The JAVMM Reproduction Authors.

#ifndef JAVMM_SRC_STATS_TIME_SERIES_H_
#define JAVMM_SRC_STATS_TIME_SERIES_H_

#include <cstdint>
#include <vector>

#include "src/base/time.h"

namespace javmm {

// A (simulated-time, value) series, e.g. the per-second throughput reported by
// the paper's external analyser (Fig 11) or the dirtying-rate series of Fig 1.
class TimeSeries {
 public:
  struct Point {
    TimePoint t;
    double value = 0;
  };

  void Add(TimePoint t, double value) { points_.push_back({t, value}); }

  const std::vector<Point>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  size_t size() const { return points_.size(); }

  // Mean of values with t in [from, to).
  double MeanInWindow(TimePoint from, TimePoint to) const;

  // Minimum value with t in [from, to); 0 when the window is empty.
  double MinInWindow(TimePoint from, TimePoint to) const;

  // Longest run of consecutive points in [from, to) whose value is below
  // `threshold`, returned as (last.t - first.t) plus one sample interval per
  // the series' typical spacing; used to measure observed workload downtime.
  Duration LongestBelow(double threshold, TimePoint from, TimePoint to) const;

 private:
  std::vector<Point> points_;
};

}  // namespace javmm

#endif  // JAVMM_SRC_STATS_TIME_SERIES_H_
