// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/sim/event_queue.h"

#include <utility>
#include <vector>

#include "src/base/macros.h"

namespace javmm {

EventQueue::EventId EventQueue::Schedule(TimePoint when, Callback cb) {
  CHECK(cb != nullptr);
  const EventId id = next_id_++;
  events_.emplace(Key{when, id}, std::move(cb));
  return id;
}

void EventQueue::Cancel(EventId id) {
  for (auto it = events_.begin(); it != events_.end(); ++it) {
    if (it->first.id == id) {
      events_.erase(it);
      return;
    }
  }
}

std::optional<TimePoint> EventQueue::NextEventTime() const {
  if (events_.empty()) {
    return std::nullopt;
  }
  return events_.begin()->first.when;
}

void EventQueue::FireDueEvents(TimePoint now) {
  // Fire one at a time: a callback may schedule new events due at `now`.
  while (!events_.empty() && events_.begin()->first.when <= now) {
    auto node = events_.extract(events_.begin());
    node.mapped()();
  }
}

}  // namespace javmm
