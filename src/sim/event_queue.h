// Copyright (c) 2026 The JAVMM Reproduction Authors.

#ifndef JAVMM_SRC_SIM_EVENT_QUEUE_H_
#define JAVMM_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "src/base/time.h"

namespace javmm {

// Timer queue for the simulation: callbacks scheduled at absolute simulated
// instants. Used for periodic sampling (throughput analyser), LKM straggler
// timeouts, and delayed messages.
//
// Events with equal timestamps fire in scheduling order (FIFO), which keeps
// runs deterministic.
class EventQueue {
 public:
  using Callback = std::function<void()>;
  using EventId = uint64_t;

  // Schedules `cb` to fire at `when`. Returns an id usable with `Cancel`.
  EventId Schedule(TimePoint when, Callback cb);

  // Cancels a pending event; no-op if it already fired or was cancelled.
  void Cancel(EventId id);

  // Earliest pending event time, if any.
  std::optional<TimePoint> NextEventTime() const;

  // Fires (in order) every event with timestamp <= now. Callbacks may schedule
  // further events, including at `now` itself.
  void FireDueEvents(TimePoint now);

  size_t pending_count() const { return events_.size(); }

 private:
  struct Key {
    TimePoint when;
    EventId id;  // Tie-breaker: preserves FIFO order for equal timestamps.
    bool operator<(const Key& o) const {
      if (when != o.when) {
        return when < o.when;
      }
      return id < o.id;
    }
  };

  std::map<Key, Callback> events_;
  EventId next_id_ = 1;
};

}  // namespace javmm

#endif  // JAVMM_SRC_SIM_EVENT_QUEUE_H_
