// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/sim/clock.h"

#include <algorithm>

#include "src/base/macros.h"

namespace javmm {

void SimClock::AddProcess(Process* p) {
  CHECK(p != nullptr);
  CHECK(std::find(processes_.begin(), processes_.end(), p) == processes_.end());
  processes_.push_back(p);
}

void SimClock::RemoveProcess(Process* p) {
  auto it = std::find(processes_.begin(), processes_.end(), p);
  if (it != processes_.end()) {
    processes_.erase(it);
  }
}

void SimClock::Step(Duration dt) {
  const TimePoint start = now_;
  now_ += dt;
  for (Process* p : processes_) {
    p->RunFor(start, dt);
  }
}

void SimClock::Advance(Duration dt) {
  CHECK_GE(dt.nanos(), 0);
  CHECK(!advancing_);
  advancing_ = true;
  const TimePoint deadline = now_ + dt;
  // Fire anything already due (events scheduled at or before `now`).
  events_.FireDueEvents(now_);
  while (now_ < deadline) {
    TimePoint next = deadline;
    if (auto t = events_.NextEventTime(); t.has_value() && *t < next) {
      next = std::max(*t, now_);
    }
    if (next > now_) {
      Step(next - now_);
    }
    events_.FireDueEvents(now_);
  }
  advancing_ = false;
}

void SimClock::AdvanceTo(TimePoint deadline) {
  if (deadline > now_) {
    Advance(deadline - now_);
  }
}

}  // namespace javmm
