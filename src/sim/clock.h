// Copyright (c) 2026 The JAVMM Reproduction Authors.

#ifndef JAVMM_SRC_SIM_CLOCK_H_
#define JAVMM_SRC_SIM_CLOCK_H_

#include <vector>

#include "src/base/time.h"
#include "src/sim/event_queue.h"
#include "src/sim/process.h"

namespace javmm {

// The simulation clock.
//
// One driver advances the clock; every registered `Process` consumes the same
// interval, and timer events from the attached `EventQueue` fire at their due
// instants. `Advance` subdivides the requested interval at event boundaries so
// a timer callback observes a fully caught-up world.
//
// Re-entrancy rule: `Advance` must not be called from inside a `Process` or a
// timer callback (checked).
class SimClock {
 public:
  SimClock() = default;
  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  TimePoint now() const { return now_; }
  EventQueue& events() { return events_; }

  // Registers a process to receive time. Order of registration is the order
  // processes run within each sub-interval (deterministic).
  void AddProcess(Process* p);
  void RemoveProcess(Process* p);

  // Advances simulated time by `dt` (>= 0), running processes and firing due
  // timer events along the way.
  void Advance(Duration dt);

  // Advances until `deadline` (no-op if already past it).
  void AdvanceTo(TimePoint deadline);

 private:
  void Step(Duration dt);  // Single sub-interval: run processes, no events.

  TimePoint now_ = TimePoint::Epoch();
  EventQueue events_;
  std::vector<Process*> processes_;
  bool advancing_ = false;
};

}  // namespace javmm

#endif  // JAVMM_SRC_SIM_CLOCK_H_
