// Copyright (c) 2026 The JAVMM Reproduction Authors.

#ifndef JAVMM_SRC_SIM_PROCESS_H_
#define JAVMM_SRC_SIM_PROCESS_H_

#include "src/base/time.h"

namespace javmm {

// A component that consumes simulated time.
//
// The simulation is driver-based rather than coroutine-based: exactly one
// driver (the migration engine, or a top-level experiment loop) advances the
// `SimClock`, and every registered `Process` is then given the same interval to
// spend. A `Process` must not advance the clock from inside `RunFor` -- it only
// reacts to time passing (allocating objects, dirtying pages, running GCs,
// completing operations).
class Process {
 public:
  virtual ~Process() = default;

  // Consumes `dt` of simulated time beginning at `start`. Implementations may
  // subdivide the interval internally (e.g. to interleave allocation with a GC
  // pause) but must account for exactly `dt` in total.
  virtual void RunFor(TimePoint start, Duration dt) = 0;
};

}  // namespace javmm

#endif  // JAVMM_SRC_SIM_PROCESS_H_
