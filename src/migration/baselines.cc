// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/migration/baselines.h"

#include <algorithm>
#include <vector>

#include "src/base/macros.h"
#include "src/mem/bitmap.h"
#include "src/trace/auditor.h"

namespace javmm {

// ---- Stop-and-copy. ----

StopAndCopyEngine::StopAndCopyEngine(GuestKernel* guest, const MigrationConfig& config)
    : guest_(guest), config_(config), link_(config.link) {
  CHECK(guest != nullptr);
  CHECK_GT(config.batch_pages, 0);
}

void StopAndCopyEngine::WaitBackoff(int index, int attempt, TimePoint min_until,
                                    MigrationResult* result) {
  SimClock& clock = guest_->clock();
  const Duration nominal =
      NominalBackoff(config_.retry_backoff_base, config_.retry_backoff_cap, attempt);
  TimePoint target = clock.now() + nominal;
  if (min_until > target) {
    // The outage outlives the nominal backoff: retrying earlier would
    // deterministically fail again, so wait it out.
    target = min_until;
  }
  const Duration waited = target - clock.now();
  if (!waited.IsZero()) {
    clock.Advance(waited);
  }
  result->backoff_time += waited;
  trace_.Record(TraceEvent{TraceEventKind::kRetryBackoff, clock.now(), index, attempt,
                           nominal.nanos(), 0, 0, waited});
}

MigrationResult StopAndCopyEngine::Migrate() {
  SimClock& clock = guest_->clock();
  GuestPhysicalMemory& memory = guest_->memory();
  const int64_t frames = memory.frame_count();

  MigrationResult result;
  result.vm_bytes = memory.bytes();
  result.started_at = clock.now();
  link_.ResetMeters();
  trace_.set_enabled(config_.record_trace);
  trace_.Clear();
  trace_.Record(TraceEvent{TraceEventKind::kMigrationStart, clock.now(), 0, 0, frames, 0, 0,
                           Duration::Zero()});
  fault_schedule_.reset();
  if (config_.faults.enabled()) {
    fault_schedule_.emplace(config_.faults, result.started_at);
  }
  const FaultSchedule* faults = fault_schedule_.has_value() ? &*fault_schedule_ : nullptr;

  guest_->PauseVm();
  result.paused_at = clock.now();
  trace_.Record(
      TraceEvent{TraceEventKind::kPause, clock.now(), 0, 0, 0, 0, 0, Duration::Zero()});
  const std::vector<uint64_t> pause_versions = memory.versions();

  // Whole-memory copy inside the pause. With compression every page pays the
  // compression CPU and ships at the kNormal ratio (no hint source exists for
  // a paused, unassisted guest).
  const int64_t page_payload =
      config_.compress_pages
          ? static_cast<int64_t>(static_cast<double>(kPageSize) * config_.compression_ratio)
          : kPageSize;
  const Duration cpu_per_page =
      config_.cpu_per_page_sent +
      (config_.compress_pages ? config_.cpu_per_page_compressed : Duration::Zero());

  DestinationVm dest(frames);
  IterationRecord rec;
  rec.index = 1;
  trace_.Record(TraceEvent{TraceEventKind::kIterationBegin, clock.now(), rec.index, 0, 0, 0, 0,
                           Duration::Zero()});
  for (Pfn pfn = 0; pfn < frames; pfn += config_.batch_pages) {
    const int64_t burst = std::min(config_.batch_pages, frames - pfn);
    const int64_t wire = burst * (page_payload + config_.link.per_page_overhead);
    int attempt = 0;
    for (;;) {
      const TransferAttempt try_result = link_.TryTransfer(wire, clock.now(), faults);
      if (try_result.ok) {
        for (int64_t i = 0; i < burst; ++i) {
          dest.ReceivePage(pfn + i, memory.version(pfn + i));
        }
        link_.RecordPageBytes(burst, wire);
        rec.pages_sent += burst;
        rec.pages_scanned += burst;
        rec.wire_bytes += wire;
        clock.Advance(try_result.duration);
        trace_.Record(TraceEvent{TraceEventKind::kBurst, clock.now(), rec.index, 0, burst, wire,
                                 burst, cpu_per_page * burst});
        break;
      }
      // An outage cut the burst: the partial transfer burned time and wire
      // bytes but delivered nothing. The VM is paused and the destination
      // owns nothing yet, so there is no degrade path -- wait the fault out
      // and retry until the burst lands (downtime absorbs the cost).
      ++attempt;
      ++result.burst_faults;
      link_.RecordRetryBytes(try_result.wasted_bytes);
      result.retry_wire_bytes += try_result.wasted_bytes;
      if (!try_result.duration.IsZero()) {
        clock.Advance(try_result.duration);
      }
      trace_.Record(TraceEvent{TraceEventKind::kTransferFault, clock.now(), rec.index, attempt,
                               burst, try_result.wasted_bytes, 0, Duration::Zero()});
      WaitBackoff(rec.index, attempt, try_result.blocked_until, &result);
    }
  }
  rec.duration = clock.now() - result.paused_at;
  trace_.Record(TraceEvent{TraceEventKind::kIterationEnd, clock.now(), rec.index, 0,
                           rec.pages_sent, rec.wire_bytes, rec.pages_scanned, Duration::Zero()});
  result.downtime.last_iter_transfer = rec.duration;
  result.iterations.push_back(rec);
  result.pages_sent = rec.pages_sent;
  result.last_iter_pages_sent = rec.pages_sent;
  if (config_.compress_pages) {
    result.pages_compressed = rec.pages_sent;
  } else {
    result.pages_sent_raw = rec.pages_sent;
  }
  result.cpu_time = cpu_per_page * rec.pages_sent;

  clock.Advance(config_.resumption_time);
  result.downtime.resumption = config_.resumption_time;
  guest_->ResumeVm();
  result.resumed_at = clock.now();
  trace_.Record(
      TraceEvent{TraceEventKind::kResume, clock.now(), 0, 0, 0, 0, 0, Duration::Zero()});
  result.total_time = result.resumed_at - result.started_at;
  result.total_wire_bytes = link_.total_wire_bytes();
  result.completed = true;
  trace_.Record(
      TraceEvent{TraceEventKind::kComplete, clock.now(), 0, 0, 0, 0, 0, Duration::Zero()});

  VerificationReport& v = result.verification;
  for (Pfn pfn = 0; pfn < frames; ++pfn) {
    ++v.pages_checked;
    if (dest.version(pfn) != pause_versions[static_cast<size_t>(pfn)]) {
      ++v.version_mismatches;
    }
  }
  v.ok = v.version_mismatches == 0;
  if (config_.record_trace && config_.audit_trace) {
    AuditInputs inputs;
    inputs.link_wire_bytes = link_.total_wire_bytes();
    inputs.link_pages_sent = link_.total_pages_sent();
    inputs.link_retry_bytes = link_.total_retry_bytes();
    inputs.retry_backoff_base = config_.retry_backoff_base;
    inputs.retry_backoff_cap = config_.retry_backoff_cap;
    result.trace_audit = TraceAuditor::Audit(AuditMode::kStopAndCopy, trace_, result, inputs);
  }
  return result;
}

// ---- Post-copy. ----

// Marks pages resident and accounts demand faults as the (resumed) guest
// touches pages that have not arrived yet. Under a fault schedule each
// demand fetch simulates the actual express round trip on a virtual timeline
// starting at now() + the stall debt earlier faults already accrued: losses
// and outage cuts are retried with NominalBackoff while the vCPU stays
// stalled, so stall time -- not stream throughput -- absorbs the fault.
class PostcopyEngine::FaultTracker : public WriteObserver {
 public:
  FaultTracker(int64_t frames, Duration base_stall, const PostcopyEngine::Config& config,
               const FaultSchedule* schedule, Rng* rng, NetworkLink* link, SimClock* clock,
               TraceRecorder* trace, PostcopyResult* result)
      : resident_(frames), base_stall_(base_stall), config_(config), schedule_(schedule),
        rng_(rng), link_(link), clock_(clock), trace_(trace), result_(result) {}

  void OnGuestWrite(Pfn pfn) override {
    if (resident_.Test(pfn)) {
      return;
    }
    // Demand fault: fetch the page from the source. The guest vCPU stalls
    // for a round trip; the page itself rides the (pipelined) stream.
    resident_.Set(pfn);
    ++resident_count_;
    ++faults_;
    const Duration stall = FetchStall();
    stall_debt_ += stall;
    link_->RecordPages(1);
    trace_->Record(TraceEvent{TraceEventKind::kBurst, clock_->now(), 0, 1, 1,
                              link_->PageWireBytes(1), 0, stall});
  }

  // Background pre-paging: marks up to `max_pages` lowest non-resident pages
  // resident and returns them (the caller meters and pays for the transfer,
  // and may roll the batch back if it terminally fails).
  std::vector<Pfn> CollectPrepageBatch(int64_t max_pages) {
    std::vector<Pfn> batch;
    cursor_checkpoint_ = cursor_;
    while (static_cast<int64_t>(batch.size()) < max_pages && cursor_ < resident_.size()) {
      if (!resident_.Test(cursor_)) {
        resident_.Set(cursor_);
        ++resident_count_;
        batch.push_back(cursor_);
      }
      ++cursor_;
    }
    return batch;
  }

  // Undoes CollectPrepageBatch after a terminally failed burst: the pages
  // never arrived, so they must fault or be re-fetched later.
  void RollbackPrepageBatch(const std::vector<Pfn>& batch) {
    for (const Pfn pfn : batch) {
      resident_.Clear(pfn);
    }
    resident_count_ -= static_cast<int64_t>(batch.size());
    cursor_ = cursor_checkpoint_;
  }

  // Lowest non-resident page, marked resident for the caller to deliver;
  // -1 when everything is resident. Used by the post-degrade demand trickle.
  Pfn TakeNextNonResident() {
    while (cursor_ < resident_.size() && resident_.Test(cursor_)) {
      ++cursor_;
    }
    if (cursor_ >= resident_.size()) {
      return -1;
    }
    const Pfn pfn = cursor_;
    resident_.Set(pfn);
    ++resident_count_;
    ++cursor_;
    return pfn;
  }

  bool AllResident() const { return resident_count_ == resident_.size(); }
  int64_t faults() const { return faults_; }

  Duration TakeStallDebt() {
    const Duration debt = stall_debt_;
    stall_debt_ = Duration::Zero();
    return debt;
  }

 private:
  // Total vCPU stall for one demand fetch under the fault schedule.
  Duration FetchStall() {
    if (schedule_ == nullptr) {
      return base_stall_;
    }
    const MigrationConfig& base = config_.base;
    MigrationResult& common = result_->common;
    // Virtual timeline of the stalled vCPU: the fetch starts at now() plus
    // the stall debt earlier faults in this quantum already accrued.
    const TimePoint vstart = clock_->now() + stall_debt_;
    TimePoint vnow = vstart;
    int attempt = 0;
    bool stream_mode = false;
    for (;;) {
      if (!stream_mode) {
        bool lost = false;
        bool lost_to_outage = false;
        TimePoint outage_end;
        if (schedule_->InOutage(vnow)) {
          // A dead link loses the fetch deterministically -- no Rng draw, so
          // the draw sequence is a pure function of the fetches that reach
          // the Bernoulli stage.
          lost = true;
          lost_to_outage = true;
          outage_end = schedule_->OutageEndAt(vnow);
        } else if (schedule_->control_loss_p() > 0.0) {
          lost = rng_->Chance(schedule_->control_loss_p());
        }
        if (!lost) {
          // Express fetch: one round trip under the latency in effect, then
          // the page under the bandwidth in effect.
          const Duration round_trip =
              (base.link.latency + schedule_->ExtraLatencyAt(vnow)) * int64_t{2};
          const TransferAttempt page =
              link_->TryTransfer(link_->PageWireBytes(1), vnow + round_trip, schedule_);
          if (page.ok) {
            vnow += round_trip + page.duration + config_.extra_fault_latency;
            return vnow - vstart;
          }
          // The page was cut mid-flight: a transfer fault on the demand
          // channel, paid in stall time.
          ++attempt;
          ++common.burst_faults;
          link_->RecordRetryBytes(page.wasted_bytes);
          common.retry_wire_bytes += page.wasted_bytes;
          vnow += round_trip + page.duration;
          trace_->Record(TraceEvent{TraceEventKind::kTransferFault, clock_->now(), 0, attempt, 1,
                                    page.wasted_bytes, 0, Duration::Zero()});
          vnow = Backoff(attempt, page.blocked_until, vnow);
          continue;
        }
        // Lost request/reply: the destination only notices at the ack
        // timeout, then backs off before re-requesting.
        ++attempt;
        ++common.control_losses;
        link_->RecordRetryBytes(base.control_bytes_per_iteration);
        common.retry_wire_bytes += base.control_bytes_per_iteration;
        vnow += base.control_loss_timeout;
        trace_->Record(TraceEvent{TraceEventKind::kControlLost, clock_->now(), 0, attempt, 0,
                                  base.control_bytes_per_iteration, 0, Duration::Zero()});
        vnow = Backoff(attempt, lost_to_outage ? outage_end : TimePoint::Epoch(), vnow);
        if (attempt > base.max_control_retries) {
          // Express-channel budget exhausted. Post-copy cannot abandon the
          // fetch -- the vCPU is stalled on this page -- so it falls back to
          // the bulk stream, which waits outages out instead of racing the
          // loss process.
          stream_mode = true;
          ++result_->stream_fallback_fetches;
        }
        continue;
      }
      // Stream fallback: deterministic -- TryTransfer either lands the page
      // or reports the outage that cut it; retry once the outage ends.
      const TransferAttempt page = link_->TryTransfer(link_->PageWireBytes(1), vnow, schedule_);
      if (page.ok) {
        vnow += page.duration + config_.extra_fault_latency;
        return vnow - vstart;
      }
      ++attempt;
      ++common.burst_faults;
      link_->RecordRetryBytes(page.wasted_bytes);
      common.retry_wire_bytes += page.wasted_bytes;
      vnow += page.duration;
      trace_->Record(TraceEvent{TraceEventKind::kTransferFault, clock_->now(), 0, attempt, 1,
                                page.wasted_bytes, 0, Duration::Zero()});
      vnow = Backoff(attempt, page.blocked_until, vnow);
    }
  }

  // Stall-absorbed backoff on the virtual timeline; returns the new vnow.
  TimePoint Backoff(int attempt, TimePoint min_until, TimePoint vnow) {
    const Duration nominal = NominalBackoff(config_.base.retry_backoff_base,
                                            config_.base.retry_backoff_cap, attempt);
    TimePoint target = vnow + nominal;
    if (min_until > target) {
      target = min_until;
    }
    const Duration waited = target - vnow;
    result_->common.backoff_time += waited;
    trace_->Record(TraceEvent{TraceEventKind::kRetryBackoff, clock_->now(), 0, attempt,
                              nominal.nanos(), 0, 0, waited});
    return target;
  }

  PageBitmap resident_;
  int64_t resident_count_ = 0;
  Duration base_stall_;
  const PostcopyEngine::Config& config_;
  const FaultSchedule* schedule_;
  Rng* rng_;
  NetworkLink* link_;
  SimClock* clock_;
  TraceRecorder* trace_;
  PostcopyResult* result_;
  int64_t faults_ = 0;
  Duration stall_debt_ = Duration::Zero();
  Pfn cursor_ = 0;
  Pfn cursor_checkpoint_ = 0;
};

PostcopyEngine::PostcopyEngine(GuestKernel* guest, const Config& config)
    : guest_(guest), config_(config), link_(config.base.link) {
  CHECK(guest != nullptr);
  CHECK_GT(config.prepage_batch_pages, 0);
}

void PostcopyEngine::WaitBackoff(int attempt, TimePoint min_until, MigrationResult* common) {
  SimClock& clock = guest_->clock();
  const Duration nominal = NominalBackoff(config_.base.retry_backoff_base,
                                          config_.base.retry_backoff_cap, attempt);
  TimePoint target = clock.now() + nominal;
  if (min_until > target) {
    target = min_until;
  }
  const Duration waited = target - clock.now();
  if (!waited.IsZero()) {
    clock.Advance(waited);
  }
  common->backoff_time += waited;
  trace_.Record(TraceEvent{TraceEventKind::kRetryBackoff, clock.now(), 0, attempt,
                           nominal.nanos(), 0, 0, waited});
}

PostcopyResult PostcopyEngine::Migrate() {
  SimClock& clock = guest_->clock();
  GuestPhysicalMemory& memory = guest_->memory();

  PostcopyResult result;
  MigrationResult& common = result.common;
  common.vm_bytes = memory.bytes();
  common.started_at = clock.now();
  link_.ResetMeters();
  trace_.set_enabled(config_.base.record_trace);
  trace_.Clear();
  trace_.Record(TraceEvent{TraceEventKind::kMigrationStart, clock.now(), 0, 0,
                           memory.frame_count(), 0, 0, Duration::Zero()});
  fault_schedule_.reset();
  fault_rng_.reset();
  if (config_.base.faults.enabled()) {
    fault_schedule_.emplace(config_.base.faults, common.started_at);
    fault_rng_.emplace(config_.base.fault_seed);
  }
  const FaultSchedule* faults = fault_schedule_.has_value() ? &*fault_schedule_ : nullptr;

  // Stop-and-transfer of vCPU/device state only (a few MiB), then resume at
  // the destination immediately. An outage during the pause is waited out
  // with the usual backoff -- downtime grows, the flip still happens.
  guest_->PauseVm();
  common.paused_at = clock.now();
  trace_.Record(
      TraceEvent{TraceEventKind::kPause, clock.now(), 0, 0, 0, 0, 0, Duration::Zero()});
  constexpr int64_t kDeviceStateBytes = 4 * kMiB;
  {
    int attempt = 0;
    for (;;) {
      const TransferAttempt try_result =
          link_.TryTransfer(kDeviceStateBytes, clock.now(), faults);
      if (try_result.ok) {
        link_.RecordControlBytes(kDeviceStateBytes);
        trace_.Record(TraceEvent{TraceEventKind::kControlBytes, clock.now(), 0, 0, 0,
                                 kDeviceStateBytes, 0, Duration::Zero()});
        clock.Advance(try_result.duration);
        break;
      }
      ++attempt;
      ++common.burst_faults;
      link_.RecordRetryBytes(try_result.wasted_bytes);
      common.retry_wire_bytes += try_result.wasted_bytes;
      if (!try_result.duration.IsZero()) {
        clock.Advance(try_result.duration);
      }
      trace_.Record(TraceEvent{TraceEventKind::kTransferFault, clock.now(), 0, attempt, 0,
                               try_result.wasted_bytes, 0, Duration::Zero()});
      WaitBackoff(attempt, try_result.blocked_until, &common);
    }
  }
  common.downtime.last_iter_transfer = clock.now() - common.paused_at;
  clock.Advance(config_.base.resumption_time);
  common.downtime.resumption = config_.base.resumption_time;
  guest_->ResumeVm();
  common.resumed_at = clock.now();
  trace_.Record(
      TraceEvent{TraceEventKind::kResume, clock.now(), 0, 0, 0, 0, 0, Duration::Zero()});

  // Degradation window: the guest executes while pages stream in; writes to
  // non-resident pages fault and stall the guest. A fault's stall is applied
  // at the next quantum boundary (the guest "loses" that execution time).
  const Duration base_stall = config_.base.link.latency * int64_t{2} +
                              link_.PageTransferTime(1) + config_.extra_fault_latency;
  FaultTracker tracker(memory.frame_count(), base_stall, config_, faults,
                       fault_rng_.has_value() ? &*fault_rng_ : nullptr, &link_, &clock, &trace_,
                       &result);
  memory.AttachWriteObserver(&tracker);
  bool prepage_degraded = false;
  while (!tracker.AllResident()) {
    const Duration stall = tracker.TakeStallDebt();
    if (!stall.IsZero()) {
      result.fault_stall += stall;
      guest_->PauseVm();
      clock.Advance(stall);
      guest_->ResumeVm();
    }
    if (!prepage_degraded) {
      // Pipelined pre-paging burst: mark-then-transfer, with the same
      // outage-cut/wasted-bytes semantics as pre-copy's FlushBurst. A
      // terminally failed burst rolls back and drops pre-paging entirely.
      const std::vector<Pfn> batch =
          tracker.CollectPrepageBatch(config_.prepage_batch_pages);
      const int64_t fetched = static_cast<int64_t>(batch.size());
      if (fetched == 0) {
        continue;
      }
      int attempt = 0;
      for (;;) {
        const TransferAttempt try_result =
            link_.TryTransfer(link_.PageWireBytes(fetched), clock.now(), faults);
        if (try_result.ok) {
          link_.RecordPages(fetched);
          result.prepage_pages += fetched;
          trace_.Record(TraceEvent{TraceEventKind::kBurst, clock.now(), 0, 0, fetched,
                                   link_.PageWireBytes(fetched), 0, Duration::Zero()});
          clock.Advance(try_result.duration);
          break;
        }
        ++attempt;
        ++common.burst_faults;
        link_.RecordRetryBytes(try_result.wasted_bytes);
        common.retry_wire_bytes += try_result.wasted_bytes;
        if (!try_result.duration.IsZero()) {
          clock.Advance(try_result.duration);
        }
        trace_.Record(TraceEvent{TraceEventKind::kTransferFault, clock.now(), 0, attempt,
                                 fetched, try_result.wasted_bytes, 0, Duration::Zero()});
        if (attempt > config_.base.max_burst_retries) {
          // Budget exhausted: abandon pre-paging, not the migration -- the
          // destination is already authoritative, so aborting is impossible.
          // The remaining pages trickle in one demand round trip at a time
          // (the terminal fault is never retried, so no backoff here).
          tracker.RollbackPrepageBatch(batch);
          prepage_degraded = true;
          common.degraded = true;
          common.degrade_reason = DegradeReason::kBurstRetries;
          trace_.Record(TraceEvent{TraceEventKind::kDegrade, clock.now(), 0,
                                   static_cast<int32_t>(DegradeReason::kBurstRetries), 0, 0, 0,
                                   Duration::Zero()});
          break;
        }
        WaitBackoff(attempt, try_result.blocked_until, &common);
      }
      continue;
    }
    // Pure demand paging: one page per un-pipelined round trip, outages
    // waited out. Measurably slower than bursts, but always terminates.
    const Pfn pfn = tracker.TakeNextNonResident();
    if (pfn < 0) {
      continue;  // A demand fault beat us to the last page; re-check debt.
    }
    int attempt = 0;
    for (;;) {
      const TimePoint now = clock.now();
      const TransferAttempt try_result =
          link_.TryTransfer(link_.PageWireBytes(1), now, faults);
      if (try_result.ok) {
        const Duration round_trip =
            (config_.base.link.latency + faults->ExtraLatencyAt(now)) * int64_t{2};
        link_.RecordPages(1);
        ++result.prepage_pages;
        trace_.Record(TraceEvent{TraceEventKind::kBurst, clock.now(), 0, 0, 1,
                                 link_.PageWireBytes(1), 0, Duration::Zero()});
        clock.Advance(round_trip + try_result.duration);
        break;
      }
      ++attempt;
      ++common.burst_faults;
      link_.RecordRetryBytes(try_result.wasted_bytes);
      common.retry_wire_bytes += try_result.wasted_bytes;
      if (!try_result.duration.IsZero()) {
        clock.Advance(try_result.duration);
      }
      trace_.Record(TraceEvent{TraceEventKind::kTransferFault, clock.now(), 0, attempt, 1,
                               try_result.wasted_bytes, 0, Duration::Zero()});
      WaitBackoff(attempt, try_result.blocked_until, &common);
    }
  }
  // Flush any stall accrued by the very last batch.
  const Duration stall = tracker.TakeStallDebt();
  if (!stall.IsZero()) {
    result.fault_stall += stall;
    guest_->PauseVm();
    clock.Advance(stall);
    guest_->ResumeVm();
  }
  memory.DetachWriteObserver(&tracker);

  result.demand_faults = tracker.faults();
  result.degradation_window = clock.now() - common.resumed_at;
  common.total_time = clock.now() - common.started_at;
  common.total_wire_bytes = link_.total_wire_bytes();
  common.pages_sent = link_.total_pages_sent();
  common.completed = true;
  // Every page becomes resident exactly once; content correctness is by
  // construction (the destination is authoritative after the flip).
  common.verification.ok = true;
  common.verification.pages_checked = memory.frame_count();
  trace_.Record(
      TraceEvent{TraceEventKind::kComplete, clock.now(), 0, 0, 0, 0, 0, Duration::Zero()});
  if (config_.base.record_trace && config_.base.audit_trace) {
    AuditInputs inputs;
    inputs.link_wire_bytes = link_.total_wire_bytes();
    inputs.link_pages_sent = link_.total_pages_sent();
    inputs.link_retry_bytes = link_.total_retry_bytes();
    inputs.retry_backoff_base = config_.base.retry_backoff_base;
    inputs.retry_backoff_cap = config_.base.retry_backoff_cap;
    inputs.expected_demand_faults = result.demand_faults;
    inputs.expected_fault_stall_ns = result.fault_stall.nanos();
    common.trace_audit = TraceAuditor::Audit(AuditMode::kPostcopy, trace_, common, inputs);
  }
  return result;
}

}  // namespace javmm
