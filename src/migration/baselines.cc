// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/migration/baselines.h"

#include "src/base/macros.h"
#include "src/mem/bitmap.h"
#include "src/trace/auditor.h"

namespace javmm {

// ---- Stop-and-copy. ----

StopAndCopyEngine::StopAndCopyEngine(GuestKernel* guest, const MigrationConfig& config)
    : guest_(guest), config_(config), link_(config.link) {
  CHECK(guest != nullptr);
}

MigrationResult StopAndCopyEngine::Migrate() {
  SimClock& clock = guest_->clock();
  GuestPhysicalMemory& memory = guest_->memory();
  const int64_t frames = memory.frame_count();

  MigrationResult result;
  result.vm_bytes = memory.bytes();
  result.started_at = clock.now();
  link_.ResetMeters();
  trace_.set_enabled(config_.record_trace);
  trace_.Clear();
  trace_.Record(TraceEvent{TraceEventKind::kMigrationStart, clock.now(), 0, 0, frames, 0, 0,
                           Duration::Zero()});

  guest_->PauseVm();
  result.paused_at = clock.now();
  trace_.Record(
      TraceEvent{TraceEventKind::kPause, clock.now(), 0, 0, 0, 0, 0, Duration::Zero()});
  const std::vector<uint64_t> pause_versions = memory.versions();

  DestinationVm dest(frames);
  IterationRecord rec;
  rec.index = 1;
  trace_.Record(TraceEvent{TraceEventKind::kIterationBegin, clock.now(), rec.index, 0, 0, 0, 0,
                           Duration::Zero()});
  for (Pfn pfn = 0; pfn < frames; pfn += config_.batch_pages) {
    const int64_t burst = std::min(config_.batch_pages, frames - pfn);
    for (int64_t i = 0; i < burst; ++i) {
      dest.ReceivePage(pfn + i, memory.version(pfn + i));
    }
    link_.RecordPages(burst);
    rec.pages_sent += burst;
    rec.pages_scanned += burst;
    rec.wire_bytes += link_.PageWireBytes(burst);
    clock.Advance(link_.PageTransferTime(burst));
    trace_.Record(TraceEvent{TraceEventKind::kBurst, clock.now(), rec.index, 0, burst,
                             link_.PageWireBytes(burst), burst,
                             config_.cpu_per_page_sent * burst});
  }
  rec.duration = clock.now() - result.paused_at;
  trace_.Record(TraceEvent{TraceEventKind::kIterationEnd, clock.now(), rec.index, 0,
                           rec.pages_sent, rec.wire_bytes, rec.pages_scanned, Duration::Zero()});
  result.downtime.last_iter_transfer = rec.duration;
  result.iterations.push_back(rec);
  result.pages_sent = rec.pages_sent;
  result.last_iter_pages_sent = rec.pages_sent;
  result.cpu_time = config_.cpu_per_page_sent * rec.pages_sent;

  clock.Advance(config_.resumption_time);
  result.downtime.resumption = config_.resumption_time;
  guest_->ResumeVm();
  result.resumed_at = clock.now();
  trace_.Record(
      TraceEvent{TraceEventKind::kResume, clock.now(), 0, 0, 0, 0, 0, Duration::Zero()});
  result.total_time = result.resumed_at - result.started_at;
  result.total_wire_bytes = link_.total_wire_bytes();
  result.completed = true;
  trace_.Record(
      TraceEvent{TraceEventKind::kComplete, clock.now(), 0, 0, 0, 0, 0, Duration::Zero()});

  VerificationReport& v = result.verification;
  for (Pfn pfn = 0; pfn < frames; ++pfn) {
    ++v.pages_checked;
    if (dest.version(pfn) != pause_versions[static_cast<size_t>(pfn)]) {
      ++v.version_mismatches;
    }
  }
  v.ok = v.version_mismatches == 0;
  if (config_.record_trace && config_.audit_trace) {
    result.trace_audit = TraceAuditor::Audit(AuditMode::kStopAndCopy, trace_, result,
                                             link_.total_wire_bytes(), link_.total_pages_sent());
  }
  return result;
}

// ---- Post-copy. ----

// Marks pages resident and accounts demand faults as the (resumed) guest
// touches pages that have not arrived yet.
class PostcopyEngine::FaultTracker : public WriteObserver {
 public:
  FaultTracker(int64_t frames, Duration per_fault_stall, NetworkLink* link, SimClock* clock,
               TraceRecorder* trace)
      : resident_(frames), per_fault_stall_(per_fault_stall), link_(link), clock_(clock),
        trace_(trace) {}

  void OnGuestWrite(Pfn pfn) override {
    if (resident_.Test(pfn)) {
      return;
    }
    // Demand fault: fetch the page from the source. The guest vCPU stalls
    // for a round trip; the page itself rides the (pipelined) stream.
    resident_.Set(pfn);
    ++resident_count_;
    ++faults_;
    stall_debt_ += per_fault_stall_;
    link_->RecordPages(1);
    trace_->Record(TraceEvent{TraceEventKind::kBurst, clock_->now(), 0, 1, 1,
                              link_->PageWireBytes(1), 0, Duration::Zero()});
  }

  // Background pre-paging: makes up to `max_pages` lowest non-resident pages
  // resident; returns how many were fetched.
  int64_t PrepageBatch(int64_t max_pages) {
    int64_t fetched = 0;
    while (fetched < max_pages && cursor_ < resident_.size()) {
      if (!resident_.Test(cursor_)) {
        resident_.Set(cursor_);
        ++resident_count_;
        ++fetched;
      }
      ++cursor_;
    }
    link_->RecordPages(fetched);
    if (fetched > 0) {
      trace_->Record(TraceEvent{TraceEventKind::kBurst, clock_->now(), 0, 0, fetched,
                                link_->PageWireBytes(fetched), 0, Duration::Zero()});
    }
    return fetched;
  }

  bool AllResident() const { return resident_count_ == resident_.size(); }
  int64_t faults() const { return faults_; }

  Duration TakeStallDebt() {
    const Duration debt = stall_debt_;
    stall_debt_ = Duration::Zero();
    return debt;
  }

 private:
  PageBitmap resident_;
  int64_t resident_count_ = 0;
  Duration per_fault_stall_;
  NetworkLink* link_;
  SimClock* clock_;
  TraceRecorder* trace_;
  int64_t faults_ = 0;
  Duration stall_debt_ = Duration::Zero();
  Pfn cursor_ = 0;
};

PostcopyEngine::PostcopyEngine(GuestKernel* guest, const Config& config)
    : guest_(guest), config_(config), link_(config.base.link) {
  CHECK(guest != nullptr);
}

PostcopyResult PostcopyEngine::Migrate() {
  SimClock& clock = guest_->clock();
  GuestPhysicalMemory& memory = guest_->memory();

  PostcopyResult result;
  MigrationResult& common = result.common;
  common.vm_bytes = memory.bytes();
  common.started_at = clock.now();
  link_.ResetMeters();
  trace_.set_enabled(config_.base.record_trace);
  trace_.Clear();
  trace_.Record(TraceEvent{TraceEventKind::kMigrationStart, clock.now(), 0, 0,
                           memory.frame_count(), 0, 0, Duration::Zero()});

  // Stop-and-transfer of vCPU/device state only (a few MiB), then resume at
  // the destination immediately.
  guest_->PauseVm();
  common.paused_at = clock.now();
  trace_.Record(
      TraceEvent{TraceEventKind::kPause, clock.now(), 0, 0, 0, 0, 0, Duration::Zero()});
  constexpr int64_t kDeviceStateBytes = 4 * kMiB;
  link_.RecordControlBytes(kDeviceStateBytes);
  trace_.Record(TraceEvent{TraceEventKind::kControlBytes, clock.now(), 0, 0, 0,
                           kDeviceStateBytes, 0, Duration::Zero()});
  clock.Advance(link_.TransferTime(kDeviceStateBytes));
  common.downtime.last_iter_transfer = clock.now() - common.paused_at;
  clock.Advance(config_.base.resumption_time);
  common.downtime.resumption = config_.base.resumption_time;
  guest_->ResumeVm();
  common.resumed_at = clock.now();
  trace_.Record(
      TraceEvent{TraceEventKind::kResume, clock.now(), 0, 0, 0, 0, 0, Duration::Zero()});

  // Degradation window: the guest executes while pages stream in; writes to
  // non-resident pages fault and stall the guest. A fault's stall is applied
  // at the next quantum boundary (the guest "loses" that execution time).
  const Duration per_fault_stall = config_.base.link.latency * int64_t{2} +
                                   link_.PageTransferTime(1) + config_.extra_fault_latency;
  FaultTracker tracker(memory.frame_count(), per_fault_stall, &link_, &clock, &trace_);
  memory.AttachWriteObserver(&tracker);
  while (!tracker.AllResident()) {
    const Duration stall = tracker.TakeStallDebt();
    if (!stall.IsZero()) {
      result.fault_stall += stall;
      guest_->PauseVm();
      clock.Advance(stall);
      guest_->ResumeVm();
    }
    const int64_t fetched = tracker.PrepageBatch(config_.prepage_batch_pages);
    if (fetched > 0) {
      clock.Advance(link_.PageTransferTime(fetched));
    }
  }
  // Flush any stall accrued by the very last batch.
  const Duration stall = tracker.TakeStallDebt();
  if (!stall.IsZero()) {
    result.fault_stall += stall;
    guest_->PauseVm();
    clock.Advance(stall);
    guest_->ResumeVm();
  }
  memory.DetachWriteObserver(&tracker);

  result.demand_faults = tracker.faults();
  result.degradation_window = clock.now() - common.resumed_at;
  common.total_time = clock.now() - common.started_at;
  common.total_wire_bytes = link_.total_wire_bytes();
  common.pages_sent = link_.total_pages_sent();
  common.completed = true;
  // Every page becomes resident exactly once; content correctness is by
  // construction (the destination is authoritative after the flip).
  common.verification.ok = true;
  common.verification.pages_checked = memory.frame_count();
  trace_.Record(
      TraceEvent{TraceEventKind::kComplete, clock.now(), 0, 0, 0, 0, 0, Duration::Zero()});
  if (config_.base.record_trace && config_.base.audit_trace) {
    common.trace_audit = TraceAuditor::Audit(AuditMode::kPostcopy, trace_, common,
                                             link_.total_wire_bytes(), link_.total_pages_sent());
  }
  return result;
}

}  // namespace javmm
