// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/migration/baselines.h"

#include <algorithm>
#include <vector>

#include "src/base/macros.h"
#include "src/base/units.h"
#include "src/mem/bitmap.h"
#include "src/trace/auditor.h"

namespace javmm {

namespace {

// Anything in the shared plan or any channel overlay that can fire.
bool AnyFaultsEnabled(const MigrationConfig& config) {
  if (config.faults.enabled()) {
    return true;
  }
  for (const FaultPlan& plan : config.channel_faults) {
    if (plan.enabled()) {
      return true;
    }
  }
  return false;
}

void FillChannelMeters(const ChannelSet& channels, MigrationResult* result) {
  result->channels = channels.count();
  if (channels.count() > 1) {
    result->channel_wire_bytes = channels.WireBytesPerChannel();
    result->channel_pages_sent = channels.PagesSentPerChannel();
    result->channel_retry_bytes = channels.RetryBytesPerChannel();
  }
}

void FillChannelAuditInputs(const ChannelSet& channels, AuditInputs* inputs) {
  inputs->link_wire_bytes = channels.total_wire_bytes();
  inputs->link_pages_sent = channels.total_pages_sent();
  inputs->link_retry_bytes = channels.total_retry_bytes();
  if (channels.count() > 1) {
    inputs->channel_wire_bytes = channels.WireBytesPerChannel();
    inputs->channel_pages_sent = channels.PagesSentPerChannel();
    inputs->channel_retry_bytes = channels.RetryBytesPerChannel();
  }
}

}  // namespace

// ---- Stop-and-copy. ----

StopAndCopyEngine::StopAndCopyEngine(GuestKernel* guest, const MigrationConfig& config)
    : guest_(guest), config_(config), channels_(config.link, config.channels) {
  CHECK(guest != nullptr);
  CHECK_GT(config.batch_pages, 0);
  CHECK(config.channel_faults.empty() ||
        static_cast<int>(config.channel_faults.size()) == config.channels);
  trace_.set_perf(&perf_);
}

MigrationResult StopAndCopyEngine::Migrate() {
  SimClock& clock = guest_->clock();
  GuestPhysicalMemory& memory = guest_->memory();
  const int64_t frames = memory.frame_count();

  MigrationResult result;
  result.vm_bytes = memory.bytes();
  result.started_at = clock.now();
  perf_ = PerfCounters{};
  channels_.ResetMeters();
  trace_.set_enabled(config_.record_trace);
  trace_.Clear();
  trace_.Record(TraceEvent{TraceEventKind::kMigrationStart, clock.now(), 0, 0, frames, 0, 0,
                           Duration::Zero()});
  channels_.ClearSchedules();
  if (AnyFaultsEnabled(config_)) {
    channels_.Anchor(config_.faults, config_.channel_faults, result.started_at);
  }

  guest_->PauseVm();
  result.paused_at = clock.now();
  trace_.Record(
      TraceEvent{TraceEventKind::kPause, clock.now(), 0, 0, 0, 0, 0, Duration::Zero()});
  const std::vector<uint64_t> pause_versions = memory.versions();

  // Whole-memory copy inside the pause. With compression every page pays the
  // compression CPU and ships at the kNormal ratio (no hint source exists for
  // a paused, unassisted guest).
  const int64_t page_payload =
      config_.compress_pages
          ? static_cast<int64_t>(static_cast<double>(kPageSize) * config_.compression_ratio)
          : kPageSize;
  const Duration cpu_per_page =
      config_.cpu_per_page_sent +
      (config_.compress_pages ? config_.cpu_per_page_compressed : Duration::Zero());

  DestinationVm dest(frames);
  IterationRecord rec;
  rec.index = 1;
  trace_.Record(TraceEvent{TraceEventKind::kIterationBegin, clock.now(), rec.index, 0, 0, 0, 0,
                           Duration::Zero()});
  for (Pfn pfn = 0; pfn < frames; pfn += config_.batch_pages) {
    const int64_t burst = std::min(config_.batch_pages, frames - pfn);
    const int64_t wire = CheckedMul(burst, page_payload + config_.link.per_page_overhead);
    // An outage cuts a channel's slice: the partial transfer burned time and
    // wire bytes but delivered nothing. The VM is paused and the destination
    // owns nothing yet, so there is no degrade path -- each channel waits the
    // fault out and retries until its slice lands (downtime absorbs the
    // cost), hence the unbounded retry budget.
    const auto on_fault = [&](int channel, int attempt, const TransferAttempt& try_result,
                              TimePoint vnow) {
      ++result.burst_faults;
      channels_.channel(channel).RecordRetryBytes(try_result.wasted_bytes);
      result.retry_wire_bytes += try_result.wasted_bytes;
      trace_.Record(TraceEvent{TraceEventKind::kTransferFault, vnow, rec.index, attempt, burst,
                               try_result.wasted_bytes, 0, Duration::Zero()});
    };
    const auto on_backoff = [&](int channel, int attempt, Duration nominal, Duration waited,
                                TimePoint vtarget) {
      (void)channel;
      result.backoff_time += waited;
      trace_.Record(TraceEvent{TraceEventKind::kRetryBackoff, vtarget, rec.index, attempt,
                               nominal.nanos(), 0, 0, waited});
    };
    const TimePoint start = clock.now();
    const StripedOutcome outcome = channels_.TryStripedTransfer(
        burst, wire, start, /*max_retries=*/-1, config_.retry_backoff_base,
        config_.retry_backoff_cap, on_fault, on_backoff);
    CHECK(outcome.ok);
    for (int64_t i = 0; i < burst; ++i) {
      dest.ReceivePage(pfn + i, memory.version(pfn + i));
    }
    for (const ChannelShare& share : outcome.shares) {
      if (share.pages == 0) {
        continue;
      }
      perf_.pages_sharded += share.pages;
      channels_.channel(share.channel).RecordPageBytes(share.pages, share.wire_bytes);
      if (channels_.count() > 1) {
        trace_.Record(TraceEvent{TraceEventKind::kChannelTransfer, share.done, rec.index,
                                 share.channel, share.pages, share.wire_bytes, 0,
                                 Duration::Zero()});
      }
    }
    perf_.bursts_flushed += 1;
    rec.pages_sent += burst;
    rec.pages_scanned += burst;
    rec.wire_bytes += wire;
    const Duration elapsed = outcome.completes_at - start;
    if (!elapsed.IsZero()) {
      clock.Advance(elapsed);
    }
    trace_.Record(TraceEvent{TraceEventKind::kBurst, clock.now(), rec.index, 0, burst, wire,
                             burst, cpu_per_page * burst});
  }
  rec.duration = clock.now() - result.paused_at;
  trace_.Record(TraceEvent{TraceEventKind::kIterationEnd, clock.now(), rec.index, 0,
                           rec.pages_sent, rec.wire_bytes, rec.pages_scanned, Duration::Zero()});
  result.downtime.last_iter_transfer = rec.duration;
  result.iterations.push_back(rec);
  result.pages_sent = rec.pages_sent;
  result.last_iter_pages_sent = rec.pages_sent;
  if (config_.compress_pages) {
    result.pages_compressed = rec.pages_sent;
  } else {
    result.pages_sent_raw = rec.pages_sent;
  }
  result.cpu_time = cpu_per_page * rec.pages_sent;

  clock.Advance(config_.resumption_time);
  result.downtime.resumption = config_.resumption_time;
  guest_->ResumeVm();
  result.resumed_at = clock.now();
  trace_.Record(
      TraceEvent{TraceEventKind::kResume, clock.now(), 0, 0, 0, 0, 0, Duration::Zero()});
  result.total_time = result.resumed_at - result.started_at;
  result.total_wire_bytes = channels_.total_wire_bytes();
  result.completed = true;
  trace_.Record(
      TraceEvent{TraceEventKind::kComplete, clock.now(), 0, 0, 0, 0, 0, Duration::Zero()});

  VerificationReport& v = result.verification;
  for (Pfn pfn = 0; pfn < frames; ++pfn) {
    ++v.pages_checked;
    if (dest.version(pfn) != pause_versions[static_cast<size_t>(pfn)]) {
      ++v.version_mismatches;
    }
  }
  v.ok = v.version_mismatches == 0;
  FillChannelMeters(channels_, &result);
  if (config_.record_trace && config_.audit_trace) {
    AuditInputs inputs;
    FillChannelAuditInputs(channels_, &inputs);
    inputs.retry_backoff_base = config_.retry_backoff_base;
    inputs.retry_backoff_cap = config_.retry_backoff_cap;
    result.trace_audit = TraceAuditor::Audit(AuditMode::kStopAndCopy, trace_, result, inputs);
  }
  result.perf = perf_;
  return result;
}

// ---- Post-copy. ----

// Marks pages resident and accounts demand faults as the (resumed) guest
// touches pages that have not arrived yet. Under a fault schedule each
// demand fetch simulates the actual express round trip on a virtual timeline
// starting at now() + the stall debt its channel already accrued: losses and
// outage cuts are retried with NominalBackoff while the vCPU stays stalled,
// so stall time -- not stream throughput -- absorbs the fault.
//
// Fetches are striped round-robin over the channel set and each channel
// keeps its own stall-debt timeline. This is the serialization fix: before,
// one debt counter queued every fetch behind every other, so a latency spike
// on the link stalled the guest once per fetch, in series. Now concurrent
// fetches on different channels overlap; the guest only loses the slowest
// channel's debt (TakeStallDebt takes the max), and a fault pinned to one
// channel ("ch1:lat:...") taxes only the fetches sharded onto it.
class PostcopyEngine::FaultTracker : public WriteObserver {
 public:
  FaultTracker(int64_t frames, Duration base_stall, const PostcopyEngine::Config& config,
               ChannelSet* channels, Rng* rng, SimClock* clock, TraceRecorder* trace,
               PostcopyResult* result)
      : resident_(frames), base_stall_(base_stall), config_(config), channels_(channels),
        rng_(rng), clock_(clock), trace_(trace), result_(result),
        channel_debt_(static_cast<size_t>(channels->count()), Duration::Zero()) {}

  void OnGuestWrite(Pfn pfn) override {
    if (resident_.Test(pfn)) {
      return;
    }
    // Demand fault: fetch the page from the source. The guest vCPU stalls
    // for a round trip; the page itself rides the (pipelined) stream.
    resident_.Set(pfn);
    ++resident_count_;
    ++faults_;
    const int channel = next_channel_;
    next_channel_ = (next_channel_ + 1) % channels_->count();
    NetworkLink& link = channels_->channel(channel);
    const Duration stall = FetchStall(channel);
    channel_debt_[static_cast<size_t>(channel)] += stall;
    link.RecordPages(1);
    trace_->Record(TraceEvent{TraceEventKind::kBurst, clock_->now(), 0, 1, 1,
                              link.PageWireBytes(1), 0, stall});
    if (channels_->count() > 1) {
      trace_->Record(TraceEvent{TraceEventKind::kChannelTransfer, clock_->now(), 0, channel, 1,
                                link.PageWireBytes(1), 0, Duration::Zero()});
    }
  }

  // Background pre-paging: marks up to `max_pages` lowest non-resident pages
  // resident and returns them (the caller meters and pays for the transfer,
  // and may roll the batch back if it terminally fails).
  std::vector<Pfn> CollectPrepageBatch(int64_t max_pages) {
    std::vector<Pfn> batch;
    cursor_checkpoint_ = cursor_;
    while (static_cast<int64_t>(batch.size()) < max_pages && cursor_ < resident_.size()) {
      if (!resident_.Test(cursor_)) {
        resident_.Set(cursor_);
        ++resident_count_;
        batch.push_back(cursor_);
      }
      ++cursor_;
    }
    return batch;
  }

  // Undoes CollectPrepageBatch after a terminally failed burst: the pages
  // never arrived, so they must fault or be re-fetched later.
  void RollbackPrepageBatch(const std::vector<Pfn>& batch) {
    for (const Pfn pfn : batch) {
      resident_.Clear(pfn);
    }
    resident_count_ -= static_cast<int64_t>(batch.size());
    cursor_ = cursor_checkpoint_;
  }

  // Lowest non-resident page, marked resident for the caller to deliver;
  // -1 when everything is resident. Used by the post-degrade demand trickle.
  Pfn TakeNextNonResident() {
    while (cursor_ < resident_.size() && resident_.Test(cursor_)) {
      ++cursor_;
    }
    if (cursor_ >= resident_.size()) {
      return -1;
    }
    const Pfn pfn = cursor_;
    resident_.Set(pfn);
    ++resident_count_;
    ++cursor_;
    return pfn;
  }

  bool AllResident() const { return resident_count_ == resident_.size(); }
  int64_t faults() const { return faults_; }

  // Fetches queued on the same channel serialize; fetches on different
  // channels overlap. The guest therefore loses only the slowest channel's
  // accrued debt when the quantum boundary applies the stall.
  Duration TakeStallDebt() {
    Duration debt = Duration::Zero();
    for (Duration& d : channel_debt_) {
      if (debt < d) {
        debt = d;
      }
      d = Duration::Zero();
    }
    return debt;
  }

 private:
  // Total vCPU stall for one demand fetch riding `channel`.
  Duration FetchStall(int channel) {
    const FaultSchedule* schedule = channels_->faults(channel);
    if (schedule == nullptr) {
      return base_stall_;
    }
    NetworkLink& link = channels_->channel(channel);
    const MigrationConfig& base = config_.base;
    MigrationResult& common = result_->common;
    // Virtual timeline of the stalled vCPU: the fetch starts at now() plus
    // the stall debt earlier faults already queued on this channel.
    const TimePoint vstart = clock_->now() + channel_debt_[static_cast<size_t>(channel)];
    TimePoint vnow = vstart;
    int attempt = 0;
    bool stream_mode = false;
    for (;;) {
      if (!stream_mode) {
        bool lost = false;
        bool lost_to_outage = false;
        TimePoint outage_end;
        if (schedule->InOutage(vnow)) {
          // A dead link loses the fetch deterministically -- no Rng draw, so
          // the draw sequence is a pure function of the fetches that reach
          // the Bernoulli stage.
          lost = true;
          lost_to_outage = true;
          outage_end = schedule->OutageEndAt(vnow);
        } else if (schedule->control_loss_p() > 0.0) {
          lost = rng_->Chance(schedule->control_loss_p());
        }
        if (!lost) {
          // Express fetch: one round trip under the latency in effect, then
          // the page under the bandwidth in effect.
          const Duration round_trip =
              (base.link.latency + schedule->ExtraLatencyAt(vnow)) * int64_t{2};
          const TransferAttempt page =
              link.TryTransfer(link.PageWireBytes(1), vnow + round_trip, schedule);
          if (page.ok) {
            vnow += round_trip + page.duration + config_.extra_fault_latency;
            return vnow - vstart;
          }
          // The page was cut mid-flight: a transfer fault on the demand
          // channel, paid in stall time.
          ++attempt;
          ++common.burst_faults;
          link.RecordRetryBytes(page.wasted_bytes);
          common.retry_wire_bytes += page.wasted_bytes;
          vnow += round_trip + page.duration;
          trace_->Record(TraceEvent{TraceEventKind::kTransferFault, clock_->now(), 0, attempt, 1,
                                    page.wasted_bytes, 0, Duration::Zero()});
          vnow = Backoff(attempt, page.blocked_until, vnow);
          continue;
        }
        // Lost request/reply: the destination only notices at the ack
        // timeout, then backs off before re-requesting.
        ++attempt;
        ++common.control_losses;
        link.RecordRetryBytes(base.control_bytes_per_iteration);
        common.retry_wire_bytes += base.control_bytes_per_iteration;
        vnow += base.control_loss_timeout;
        trace_->Record(TraceEvent{TraceEventKind::kControlLost, clock_->now(), 0, attempt, 0,
                                  base.control_bytes_per_iteration, 0, Duration::Zero()});
        vnow = Backoff(attempt, lost_to_outage ? outage_end : TimePoint::Epoch(), vnow);
        if (attempt > base.max_control_retries) {
          // Express-channel budget exhausted. Post-copy cannot abandon the
          // fetch -- the vCPU is stalled on this page -- so it falls back to
          // the bulk stream, which waits outages out instead of racing the
          // loss process.
          stream_mode = true;
          ++result_->stream_fallback_fetches;
        }
        continue;
      }
      // Stream fallback: deterministic -- TryTransfer either lands the page
      // or reports the outage that cut it; retry once the outage ends.
      const TransferAttempt page = link.TryTransfer(link.PageWireBytes(1), vnow, schedule);
      if (page.ok) {
        vnow += page.duration + config_.extra_fault_latency;
        return vnow - vstart;
      }
      ++attempt;
      ++common.burst_faults;
      link.RecordRetryBytes(page.wasted_bytes);
      common.retry_wire_bytes += page.wasted_bytes;
      vnow += page.duration;
      trace_->Record(TraceEvent{TraceEventKind::kTransferFault, clock_->now(), 0, attempt, 1,
                                page.wasted_bytes, 0, Duration::Zero()});
      vnow = Backoff(attempt, page.blocked_until, vnow);
    }
  }

  // Stall-absorbed backoff on the virtual timeline; returns the new vnow.
  TimePoint Backoff(int attempt, TimePoint min_until, TimePoint vnow) {
    const Duration nominal = NominalBackoff(config_.base.retry_backoff_base,
                                            config_.base.retry_backoff_cap, attempt);
    TimePoint target = vnow + nominal;
    if (min_until > target) {
      target = min_until;
    }
    const Duration waited = target - vnow;
    result_->common.backoff_time += waited;
    trace_->Record(TraceEvent{TraceEventKind::kRetryBackoff, clock_->now(), 0, attempt,
                              nominal.nanos(), 0, 0, waited});
    return target;
  }

  PageBitmap resident_;
  int64_t resident_count_ = 0;
  Duration base_stall_;
  const PostcopyEngine::Config& config_;
  ChannelSet* channels_;
  Rng* rng_;
  SimClock* clock_;
  TraceRecorder* trace_;
  PostcopyResult* result_;
  int64_t faults_ = 0;
  // Per-channel queued stall; index = channel. Drained by TakeStallDebt.
  std::vector<Duration> channel_debt_;
  int next_channel_ = 0;
  Pfn cursor_ = 0;
  Pfn cursor_checkpoint_ = 0;
};

PostcopyEngine::PostcopyEngine(GuestKernel* guest, const Config& config)
    : guest_(guest), config_(config), channels_(config.base.link, config.base.channels) {
  CHECK(guest != nullptr);
  CHECK_GT(config.prepage_batch_pages, 0);
  CHECK(config.base.channel_faults.empty() ||
        static_cast<int>(config.base.channel_faults.size()) == config.base.channels);
  trace_.set_perf(&perf_);
}

void PostcopyEngine::WaitBackoff(int attempt, TimePoint min_until, MigrationResult* common) {
  SimClock& clock = guest_->clock();
  const Duration nominal = NominalBackoff(config_.base.retry_backoff_base,
                                          config_.base.retry_backoff_cap, attempt);
  TimePoint target = clock.now() + nominal;
  if (min_until > target) {
    target = min_until;
  }
  const Duration waited = target - clock.now();
  if (!waited.IsZero()) {
    clock.Advance(waited);
  }
  common->backoff_time += waited;
  trace_.Record(TraceEvent{TraceEventKind::kRetryBackoff, clock.now(), 0, attempt,
                           nominal.nanos(), 0, 0, waited});
}

PostcopyResult PostcopyEngine::Migrate() {
  SimClock& clock = guest_->clock();
  GuestPhysicalMemory& memory = guest_->memory();

  PostcopyResult result;
  MigrationResult& common = result.common;
  common.vm_bytes = memory.bytes();
  common.started_at = clock.now();
  perf_ = PerfCounters{};
  channels_.ResetMeters();
  trace_.set_enabled(config_.base.record_trace);
  trace_.Clear();
  trace_.Record(TraceEvent{TraceEventKind::kMigrationStart, clock.now(), 0, 0,
                           memory.frame_count(), 0, 0, Duration::Zero()});
  channels_.ClearSchedules();
  fault_rng_.reset();
  if (AnyFaultsEnabled(config_.base)) {
    channels_.Anchor(config_.base.faults, config_.base.channel_faults, common.started_at);
    fault_rng_.emplace(config_.base.fault_seed);
  }

  // Stop-and-transfer of vCPU/device state only (a few MiB), striped across
  // the channels, then resume at the destination immediately. An outage
  // during the pause is waited out with the usual backoff -- downtime grows,
  // the flip still happens -- so retries are unbounded.
  guest_->PauseVm();
  common.paused_at = clock.now();
  trace_.Record(
      TraceEvent{TraceEventKind::kPause, clock.now(), 0, 0, 0, 0, 0, Duration::Zero()});
  constexpr int64_t kDeviceStateBytes = 4 * kMiB;
  {
    const TimePoint start = clock.now();
    // Where the landing attempt began: after every backoff the retry starts
    // at the backoff target, and the kControlBytes event is stamped there
    // (the clock does not move until the whole stripe lands).
    TimePoint event_at = start;
    const auto on_fault = [&](int channel, int attempt, const TransferAttempt& try_result,
                              TimePoint vnow) {
      ++common.burst_faults;
      channels_.channel(channel).RecordRetryBytes(try_result.wasted_bytes);
      common.retry_wire_bytes += try_result.wasted_bytes;
      trace_.Record(TraceEvent{TraceEventKind::kTransferFault, vnow, 0, attempt, 0,
                               try_result.wasted_bytes, 0, Duration::Zero()});
    };
    const auto on_backoff = [&](int channel, int attempt, Duration nominal, Duration waited,
                                TimePoint vtarget) {
      (void)channel;
      common.backoff_time += waited;
      trace_.Record(TraceEvent{TraceEventKind::kRetryBackoff, vtarget, 0, attempt,
                               nominal.nanos(), 0, 0, waited});
      event_at = vtarget;
    };
    const StripedOutcome outcome = channels_.TryStripedTransfer(
        /*pages=*/0, kDeviceStateBytes, start, /*max_retries=*/-1,
        config_.base.retry_backoff_base, config_.base.retry_backoff_cap, on_fault, on_backoff);
    CHECK(outcome.ok);
    trace_.Record(TraceEvent{TraceEventKind::kControlBytes, event_at, 0, 0, 0,
                             kDeviceStateBytes, 0, Duration::Zero()});
    for (const ChannelShare& share : outcome.shares) {
      if (share.wire_bytes == 0) {
        continue;
      }
      channels_.channel(share.channel).RecordControlBytes(share.wire_bytes);
      if (channels_.count() > 1) {
        trace_.Record(TraceEvent{TraceEventKind::kChannelTransfer, share.done, 0, share.channel,
                                 0, share.wire_bytes, 0, Duration::Zero()});
      }
    }
    const Duration elapsed = outcome.completes_at - start;
    if (!elapsed.IsZero()) {
      clock.Advance(elapsed);
    }
  }
  common.downtime.last_iter_transfer = clock.now() - common.paused_at;
  clock.Advance(config_.base.resumption_time);
  common.downtime.resumption = config_.base.resumption_time;
  guest_->ResumeVm();
  common.resumed_at = clock.now();
  trace_.Record(
      TraceEvent{TraceEventKind::kResume, clock.now(), 0, 0, 0, 0, 0, Duration::Zero()});

  // Degradation window: the guest executes while pages stream in; writes to
  // non-resident pages fault and stall the guest. A fault's stall is applied
  // at the next quantum boundary (the guest "loses" that execution time).
  // A demand fetch rides one sub-link, so the page-transfer leg of the stall
  // is paid at the per-channel (1/N) bandwidth -- striping wins by
  // overlapping fetches, not by pretending each one sees the full pipe.
  const Duration base_stall = config_.base.link.latency * int64_t{2} +
                              channels_.channel(0).PageTransferTime(1) +
                              config_.extra_fault_latency;
  FaultTracker tracker(memory.frame_count(), base_stall, config_, &channels_,
                       fault_rng_.has_value() ? &*fault_rng_ : nullptr, &clock, &trace_,
                       &result);
  memory.AttachWriteObserver(&tracker);
  bool prepage_degraded = false;
  int trickle_channel = 0;
  while (!tracker.AllResident()) {
    const Duration stall = tracker.TakeStallDebt();
    if (!stall.IsZero()) {
      result.fault_stall += stall;
      guest_->PauseVm();
      clock.Advance(stall);
      guest_->ResumeVm();
    }
    if (!prepage_degraded) {
      // Pipelined pre-paging burst: mark-then-transfer, striped across the
      // channels with the same outage-cut/wasted-bytes semantics as
      // pre-copy's FlushBurst. A terminally failed burst rolls back and
      // drops pre-paging entirely.
      const std::vector<Pfn> batch =
          tracker.CollectPrepageBatch(config_.prepage_batch_pages);
      const int64_t fetched = static_cast<int64_t>(batch.size());
      if (fetched == 0) {
        continue;
      }
      const TimePoint start = clock.now();
      const int64_t wire = channels_.channel(0).PageWireBytes(fetched);
      // The burst event is stamped where the landing attempt began (after
      // the last backoff); the clock does not move until the stripe lands.
      TimePoint event_at = start;
      const auto on_fault = [&](int channel, int attempt, const TransferAttempt& try_result,
                                TimePoint vnow) {
        ++common.burst_faults;
        channels_.channel(channel).RecordRetryBytes(try_result.wasted_bytes);
        common.retry_wire_bytes += try_result.wasted_bytes;
        trace_.Record(TraceEvent{TraceEventKind::kTransferFault, vnow, 0, attempt, fetched,
                                 try_result.wasted_bytes, 0, Duration::Zero()});
      };
      const auto on_backoff = [&](int channel, int attempt, Duration nominal, Duration waited,
                                  TimePoint vtarget) {
        (void)channel;
        common.backoff_time += waited;
        trace_.Record(TraceEvent{TraceEventKind::kRetryBackoff, vtarget, 0, attempt,
                                 nominal.nanos(), 0, 0, waited});
        event_at = vtarget;
      };
      const StripedOutcome outcome = channels_.TryStripedTransfer(
          fetched, wire, start, config_.base.max_burst_retries,
          config_.base.retry_backoff_base, config_.base.retry_backoff_cap, on_fault,
          on_backoff);
      const Duration elapsed = outcome.completes_at - start;
      if (!outcome.ok) {
        // Budget exhausted: abandon pre-paging, not the migration -- the
        // destination is already authoritative, so aborting is impossible.
        // The remaining pages trickle in one demand round trip at a time
        // (the terminal fault is never retried, so no backoff here).
        if (!elapsed.IsZero()) {
          clock.Advance(elapsed);
        }
        tracker.RollbackPrepageBatch(batch);
        prepage_degraded = true;
        common.degraded = true;
        common.degrade_reason = DegradeReason::kBurstRetries;
        trace_.Record(TraceEvent{TraceEventKind::kDegrade, clock.now(), 0,
                                 static_cast<int32_t>(DegradeReason::kBurstRetries), 0, 0, 0,
                                 Duration::Zero()});
        continue;
      }
      result.prepage_pages += fetched;
      perf_.bursts_flushed += 1;
      trace_.Record(TraceEvent{TraceEventKind::kBurst, event_at, 0, 0, fetched, wire, 0,
                               Duration::Zero()});
      for (const ChannelShare& share : outcome.shares) {
        if (share.pages == 0) {
          continue;
        }
        perf_.pages_sharded += share.pages;
        channels_.channel(share.channel).RecordPageBytes(share.pages, share.wire_bytes);
        if (channels_.count() > 1) {
          trace_.Record(TraceEvent{TraceEventKind::kChannelTransfer, share.done, 0,
                                   share.channel, share.pages, share.wire_bytes, 0,
                                   Duration::Zero()});
        }
      }
      if (!elapsed.IsZero()) {
        clock.Advance(elapsed);
      }
      continue;
    }
    // Pure demand paging: one page per un-pipelined round trip, outages
    // waited out. Measurably slower than bursts, but always terminates.
    // Round-robin over the channels so a fault pinned to one sub-link only
    // taxes every count()-th trickle fetch.
    const Pfn pfn = tracker.TakeNextNonResident();
    if (pfn < 0) {
      continue;  // A demand fault beat us to the last page; re-check debt.
    }
    const int channel = trickle_channel;
    trickle_channel = (trickle_channel + 1) % channels_.count();
    NetworkLink& link = channels_.channel(channel);
    const FaultSchedule* sched = channels_.faults(channel);
    int attempt = 0;
    for (;;) {
      const TimePoint now = clock.now();
      const TransferAttempt try_result =
          link.TryTransfer(link.PageWireBytes(1), now, sched);
      if (try_result.ok) {
        const Duration extra =
            sched != nullptr ? sched->ExtraLatencyAt(now) : Duration::Zero();
        const Duration round_trip = (config_.base.link.latency + extra) * int64_t{2};
        link.RecordPages(1);
        ++result.prepage_pages;
        trace_.Record(TraceEvent{TraceEventKind::kBurst, clock.now(), 0, 0, 1,
                                 link.PageWireBytes(1), 0, Duration::Zero()});
        if (channels_.count() > 1) {
          trace_.Record(TraceEvent{TraceEventKind::kChannelTransfer, clock.now(), 0, channel, 1,
                                   link.PageWireBytes(1), 0, Duration::Zero()});
        }
        clock.Advance(round_trip + try_result.duration);
        break;
      }
      ++attempt;
      ++common.burst_faults;
      link.RecordRetryBytes(try_result.wasted_bytes);
      common.retry_wire_bytes += try_result.wasted_bytes;
      if (!try_result.duration.IsZero()) {
        clock.Advance(try_result.duration);
      }
      trace_.Record(TraceEvent{TraceEventKind::kTransferFault, clock.now(), 0, attempt, 1,
                               try_result.wasted_bytes, 0, Duration::Zero()});
      WaitBackoff(attempt, try_result.blocked_until, &common);
    }
  }
  // Flush any stall accrued by the very last batch.
  const Duration stall = tracker.TakeStallDebt();
  if (!stall.IsZero()) {
    result.fault_stall += stall;
    guest_->PauseVm();
    clock.Advance(stall);
    guest_->ResumeVm();
  }
  memory.DetachWriteObserver(&tracker);

  result.demand_faults = tracker.faults();
  result.degradation_window = clock.now() - common.resumed_at;
  common.total_time = clock.now() - common.started_at;
  common.total_wire_bytes = channels_.total_wire_bytes();
  common.pages_sent = channels_.total_pages_sent();
  common.completed = true;
  // Every page becomes resident exactly once; content correctness is by
  // construction (the destination is authoritative after the flip).
  common.verification.ok = true;
  common.verification.pages_checked = memory.frame_count();
  trace_.Record(
      TraceEvent{TraceEventKind::kComplete, clock.now(), 0, 0, 0, 0, 0, Duration::Zero()});
  FillChannelMeters(channels_, &common);
  if (config_.base.record_trace && config_.base.audit_trace) {
    AuditInputs inputs;
    FillChannelAuditInputs(channels_, &inputs);
    inputs.retry_backoff_base = config_.base.retry_backoff_base;
    inputs.retry_backoff_cap = config_.base.retry_backoff_cap;
    inputs.expected_demand_faults = result.demand_faults;
    inputs.expected_fault_stall_ns = result.fault_stall.nanos();
    common.trace_audit = TraceAuditor::Audit(AuditMode::kPostcopy, trace_, common, inputs);
  }
  common.perf = perf_;
  return result;
}

}  // namespace javmm
