// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/migration/engine.h"

#include <algorithm>
#include <optional>

#include "src/base/macros.h"
#include "src/guest/lkm.h"
#include "src/mem/dirty_log.h"
#include "src/trace/auditor.h"

namespace javmm {

MigrationEngine::MigrationEngine(GuestKernel* guest, const MigrationConfig& config)
    : guest_(guest), config_(config), link_(config.link) {
  CHECK(guest != nullptr);
  CHECK_GT(config.batch_pages, 0);
  CHECK_GE(config.max_iterations, 1);
}

void MigrationEngine::AddRequiredPfnSource(const RequiredPfnSource* source) {
  CHECK(source != nullptr);
  required_sources_.push_back(source);
}

void MigrationEngine::SendPage(Pfn pfn, DestinationVm* dest, Burst* burst,
                               MigrationResult* result) {
  int64_t payload = kPageSize;
  Duration cpu = config_.cpu_per_page_sent;
  if (config_.delta_compression && dest->received(pfn)) {
    // Retransmission: the destination holds an older copy; ship a delta.
    payload = static_cast<int64_t>(static_cast<double>(kPageSize) * config_.delta_ratio);
    cpu += config_.cpu_per_page_delta;
    ++result->pages_sent_delta;
  } else if (config_.compress_pages) {
    CompressionClass cls = CompressionClass::kNormal;
    if (config_.use_compression_classes && hint_source_ != nullptr) {
      cls = hint_source_->compression_class(pfn);
    }
    switch (cls) {
      case CompressionClass::kNormal:
        payload = static_cast<int64_t>(static_cast<double>(kPageSize) *
                                       config_.compression_ratio);
        cpu += config_.cpu_per_page_compressed;
        ++result->pages_compressed;
        break;
      case CompressionClass::kHighlyCompressible:
        payload = static_cast<int64_t>(static_cast<double>(kPageSize) *
                                       config_.compression_high_ratio);
        cpu += config_.cpu_per_page_high;
        ++result->pages_compressed;
        break;
      case CompressionClass::kIncompressible:
        // Hinted as not worth compressing: send raw, skip the trial.
        cpu += config_.cpu_per_page_incompressible;
        ++result->pages_sent_raw;
        break;
    }
  } else {
    ++result->pages_sent_raw;
  }
  dest->ReceivePage(pfn, guest_->memory().version(pfn));
  burst->wire_bytes += payload + config_.link.per_page_overhead;
  burst->send_cpu += cpu;
  ++burst->pages;
}

void MigrationEngine::FlushBurst(Burst* burst, IterationRecord* rec, MigrationResult* result) {
  Duration wire_time = Duration::Zero();
  if (burst->pages > 0) {
    wire_time = link_.TransferTime(burst->wire_bytes);
    // Page traffic advances both link meters. Compression and delta bursts
    // are smaller than PageWireBytes would predict, so record the actual
    // wire size rather than deriving it from the page count.
    link_.RecordPageBytes(burst->pages, burst->wire_bytes);
    rec->wire_bytes += burst->wire_bytes;
    rec->pages_sent += burst->pages;
    result->cpu_time += burst->send_cpu;
  }
  // Scanning the pending set (dirty-bitmap test, transfer-bitmap test) costs
  // daemon CPU even for pages that are skipped; it pipelines with the wire,
  // so the burst takes max(wire, scan) -- this is what keeps skip-heavy
  // iterations from completing in zero time.
  const Duration scan_time = config_.cpu_per_page_scanned * burst->scanned;
  result->cpu_time += scan_time;
  const Duration advance = std::max(wire_time, scan_time);
  if (!advance.IsZero()) {
    guest_->clock().Advance(advance);
  }
  if (burst->pages > 0 || burst->scanned > 0) {
    trace_.Record(TraceEvent{TraceEventKind::kBurst, guest_->clock().now(), rec->index, 0,
                             burst->pages, burst->wire_bytes, burst->scanned,
                             burst->send_cpu + scan_time});
  }
  *burst = Burst{};
}

IterationRecord MigrationEngine::RunIteration(int index, const std::vector<Pfn>& pending,
                                              DirtyLog* log, DestinationVm* dest,
                                              const PageBitmap* transfer_bitmap,
                                              PageBitmap* ever_skipped,
                                              MigrationResult* result) {
  IterationRecord rec;
  rec.index = index;
  const TimePoint iter_start = guest_->clock().now();
  trace_.Record(TraceEvent{TraceEventKind::kIterationBegin, iter_start, index, 0, 0, 0, 0,
                           Duration::Zero()});

  // Per-iteration control round trip (request dirty bitmap, sync with the
  // receiver); keeps even all-skip iterations from taking zero time.
  link_.RecordControlBytes(config_.control_bytes_per_iteration);
  trace_.Record(TraceEvent{TraceEventKind::kControlBytes, iter_start, index, 0, 0,
                           config_.control_bytes_per_iteration, 0, Duration::Zero()});
  guest_->clock().Advance(config_.link.latency * int64_t{2});

  size_t i = 0;
  Burst burst;
  while (i < pending.size()) {
    while (i < pending.size() && burst.pages < config_.batch_pages) {
      const Pfn pfn = pending[i++];
      ++rec.pages_scanned;
      ++burst.scanned;
      if (transfer_bitmap != nullptr && !transfer_bitmap->Test(pfn)) {
        // Cleared transfer bit: the application vouched the page need not be
        // migrated (§3.3.3). Remember it for the safety fallback.
        ++rec.pages_skipped_bitmap;
        ever_skipped->Set(pfn);
        continue;
      }
      if (log->Test(pfn)) {
        // Re-dirtied since the harvest: sending now would be redundant; the
        // next round will carry it (§5.2).
        ++rec.pages_skipped_dirty;
        continue;
      }
      SendPage(pfn, dest, &burst, result);
    }
    FlushBurst(&burst, &rec, result);
  }
  rec.duration = guest_->clock().now() - iter_start;
  trace_.Record(TraceEvent{TraceEventKind::kIterationEnd, guest_->clock().now(), index, 0,
                           rec.pages_sent, rec.wire_bytes, rec.pages_scanned, Duration::Zero()});
  return rec;
}

MigrationResult MigrationEngine::Migrate() {
  SimClock& clock = guest_->clock();
  GuestPhysicalMemory& memory = guest_->memory();
  const int64_t frames = memory.frame_count();

  MigrationResult result;
  result.assisted = config_.application_assisted;
  result.vm_bytes = memory.bytes();
  result.started_at = clock.now();
  link_.ResetMeters();
  trace_.set_enabled(config_.record_trace);
  trace_.Clear();
  trace_.Record(TraceEvent{TraceEventKind::kMigrationStart, clock.now(), 0, 0, frames, 0, 0,
                           Duration::Zero()});

  DirtyLog log(frames);
  memory.AttachDirtyLog(&log);

  DestinationVm dest(frames);
  PageBitmap ever_skipped(frames);

  Lkm* lkm = guest_->lkm();
  const PageBitmap* transfer_bitmap = nullptr;
  const bool assisted = config_.application_assisted && lkm != nullptr;
  // The daemon handler captures `this`; the scoped binding guarantees the
  // unbind on every exit path (complete, abort, fallback) so no dangling
  // callback survives the engine and no stale suspension-ready notification
  // leaks into a later back-to-back migration.
  std::optional<ScopedDaemonBinding> daemon_binding;
  struct LkmTraceGuard {
    Lkm* lkm = nullptr;
    ~LkmTraceGuard() {
      if (lkm != nullptr) {
        lkm->set_trace(nullptr);
      }
    }
  } lkm_trace_guard;
  if (assisted) {
    suspension_ready_ = false;
    daemon_binding.emplace(&guest_->event_channel(), [this](LkmToDaemon msg) {
      trace_.Record(TraceEvent{TraceEventKind::kLkmToDaemon, guest_->clock().now(), 0,
                               static_cast<int32_t>(msg), 0, 0, 0, Duration::Zero()});
      if (msg == LkmToDaemon::kSuspensionReady) {
        suspension_ready_ = true;
      }
    });
    if (config_.record_trace) {
      lkm->set_trace(&trace_);
      lkm_trace_guard.lkm = lkm;
    }
    // "Migration begins; notify LKM" -- triggers the first bitmap update.
    NotifyLkm(DaemonToLkm::kMigrationStarted);
    transfer_bitmap = &lkm->transfer_bitmap();
    hint_source_ = lkm;  // Per-page compression hints (§6).
  } else {
    hint_source_ = nullptr;
  }

  // ---- Live pre-copy iterations. ----
  // Iteration 1 sends every frame of the VM's pseudo-physical memory.
  std::vector<Pfn> pending;
  pending.reserve(static_cast<size_t>(frames));
  for (Pfn pfn = 0; pfn < frames; ++pfn) {
    pending.push_back(pfn);
  }

  int64_t total_sent = 0;
  int iter = 1;
  for (;;) {
    IterationRecord rec =
        RunIteration(iter, pending, &log, &dest, transfer_bitmap, &ever_skipped, &result);
    pending = log.CollectAndClear();
    rec.dirty_pages_after = static_cast<int64_t>(pending.size());
    total_sent += rec.pages_sent;
    result.pages_skipped_dirty += rec.pages_skipped_dirty;
    result.pages_skipped_bitmap += rec.pages_skipped_bitmap;
    result.iterations.push_back(rec);

    // Fault injection: the migration is cancelled (destination failure,
    // operator abort). The guest never pauses; the LKM resets; applications
    // are released and continue at the source.
    if (config_.abort_after_iterations >= 0 && iter >= config_.abort_after_iterations) {
      if (assisted) {
        NotifyLkm(DaemonToLkm::kMigrationAborted);
      }
      memory.DetachDirtyLog(&log);
      result.total_time = clock.now() - result.started_at;
      // The VM never paused: report an empty pause window at the abort
      // instant (rather than epoch-default timestamps) so downtime
      // arithmetic over the result stays well-defined.
      result.paused_at = clock.now();
      result.resumed_at = clock.now();
      result.downtime = DowntimeBreakdown{};
      result.last_iter_pages_sent = 0;
      result.last_iter_pages_skipped_bitmap = 0;
      result.pages_sent = total_sent;
      result.total_wire_bytes = link_.total_wire_bytes();
      result.completed = false;
      TracePhase(TraceEventKind::kAbort);
      hint_source_ = nullptr;
      RunAudit(&result);
      return result;
    }

    // xc_domain_save stop conditions.
    const bool few_left =
        static_cast<int64_t>(pending.size()) < config_.last_iter_threshold_pages;
    const bool max_iters = iter >= config_.max_iterations;
    const bool sent_too_much =
        static_cast<double>(total_sent) >
        config_.max_sent_factor * static_cast<double>(frames);
    if (few_left || max_iters || sent_too_much) {
      break;
    }
    ++iter;
  }

  // ---- Entering the last iteration. ----
  bool fallback = false;
  if (assisted) {
    NotifyLkm(DaemonToLkm::kEnteringLastIter);
    const TimePoint deadline = clock.now() + config_.lkm_response_timeout;
    while (!suspension_ready_ && clock.now() < deadline) {
      clock.Advance(config_.poll_quantum);
    }
    if (suspension_ready_) {
      result.downtime.final_bitmap_update = lkm->last_final_update_duration();
      clock.Advance(result.downtime.final_bitmap_update);
    } else {
      // Guest side unresponsive: fall back to unassisted behaviour. Safety
      // requires transferring every page we ever skipped on the apps' word,
      // since their contents were never guaranteed recoverable.
      fallback = true;
      result.fell_back_unassisted = true;
      transfer_bitmap = nullptr;
      // The guest's per-page compression hints are as stale as its bitmap:
      // drop them so stop-and-copy pays trial compression instead of
      // trusting classes from a guest just declared unresponsive.
      hint_source_ = nullptr;
      TracePhase(TraceEventKind::kFallback);
    }
  }

  // ---- Stop-and-copy. ----
  guest_->PauseVm();
  result.paused_at = clock.now();
  TracePhase(TraceEventKind::kPause);
  {
    // Merge everything still dirty (including pages dirtied by the enforced
    // GC's copying) with the carried-over pending set.
    PageBitmap final_set(frames);
    for (Pfn pfn : pending) {
      final_set.Set(pfn);
    }
    for (Pfn pfn : log.CollectAndClear()) {
      final_set.Set(pfn);
    }
    // Pages whose skip listing the LKM re-enabled *after* the fact (straggler
    // revocation, deferred final-update reconciliation) may have been dirtied
    // while skip-listed and then dropped from the dirty log; re-send them.
    // Pages that left an area via a timely shrink notice need no special
    // handling: frame reuse starts with the zeroing commit write, which the
    // dirty log catches, and frames still free at pause hold no observable
    // content. On fallback, re-send everything ever skipped.
    if (fallback) {
      std::vector<Pfn> skipped;
      ever_skipped.CollectSetBits(&skipped);
      for (Pfn pfn : skipped) {
        final_set.Set(pfn);
      }
    } else if (assisted) {
      for (Pfn pfn : lkm->revoked_pfns()) {
        final_set.Set(pfn);
      }
    }
    std::vector<Pfn> last_pending;
    final_set.CollectSetBits(&last_pending);

    IterationRecord rec;
    rec.index = iter + 1;
    const TimePoint last_start = clock.now();
    trace_.Record(TraceEvent{TraceEventKind::kIterationBegin, last_start, rec.index, 0, 0, 0, 0,
                             Duration::Zero()});
    Burst burst;
    for (Pfn pfn : last_pending) {
      ++rec.pages_scanned;
      ++burst.scanned;
      if (transfer_bitmap != nullptr && !transfer_bitmap->Test(pfn)) {
        // Final bitmap state: garbage the enforced GC reclaimed (plus any
        // deferred expansion) is skipped even in the last iteration.
        ++rec.pages_skipped_bitmap;
        ++result.last_iter_pages_skipped_bitmap;
        continue;
      }
      SendPage(pfn, &dest, &burst, &result);
      if (burst.pages == config_.batch_pages) {
        FlushBurst(&burst, &rec, &result);
      }
    }
    FlushBurst(&burst, &rec, &result);
    rec.duration = clock.now() - last_start;
    trace_.Record(TraceEvent{TraceEventKind::kIterationEnd, clock.now(), rec.index, 0,
                             rec.pages_sent, rec.wire_bytes, rec.pages_scanned,
                             Duration::Zero()});
    result.downtime.last_iter_transfer = rec.duration;
    result.last_iter_pages_sent = rec.pages_sent;
    result.pages_skipped_bitmap += rec.pages_skipped_bitmap;
    total_sent += rec.pages_sent;
    result.iterations.push_back(rec);
  }

  // Snapshot the pause-time state for verification before anything resumes.
  const std::vector<uint64_t> pause_versions = memory.versions();
  const std::vector<bool> allocated_at_pause = memory.allocation_map();
  const PageBitmap skip_allowed =
      (assisted && !fallback) ? *transfer_bitmap : PageBitmap(frames, /*initial=*/true);
  const TimePoint pause_time = result.paused_at;

  if (assisted) {
    result.lkm_bitmap_bytes = lkm->transfer_bitmap_bytes();
    result.lkm_pfn_cache_bytes = lkm->pfn_cache_bytes();
  }

  // ---- Resume at the destination. ----
  clock.Advance(config_.resumption_time);
  result.downtime.resumption = config_.resumption_time;
  guest_->ResumeVm();
  result.resumed_at = clock.now();
  TracePhase(TraceEventKind::kResume);
  if (assisted) {
    NotifyLkm(DaemonToLkm::kVmResumed);
  }

  memory.DetachDirtyLog(&log);

  result.total_time = result.resumed_at - result.started_at;
  result.pages_sent = total_sent;
  result.total_wire_bytes = link_.total_wire_bytes();
  result.completed = true;
  TracePhase(TraceEventKind::kComplete);
  result.verification =
      Verify(dest, pause_versions, allocated_at_pause, &skip_allowed, pause_time);
  hint_source_ = nullptr;
  RunAudit(&result);
  return result;
}

void MigrationEngine::TracePhase(TraceEventKind kind) {
  trace_.Record(
      TraceEvent{kind, guest_->clock().now(), 0, 0, 0, 0, 0, Duration::Zero()});
}

void MigrationEngine::NotifyLkm(DaemonToLkm msg) {
  trace_.Record(TraceEvent{TraceEventKind::kDaemonToLkm, guest_->clock().now(), 0,
                           static_cast<int32_t>(msg), 0, 0, 0, Duration::Zero()});
  guest_->event_channel().NotifyGuest(msg);
}

void MigrationEngine::RunAudit(MigrationResult* result) {
  if (!config_.record_trace || !config_.audit_trace) {
    return;
  }
  result->trace_audit =
      TraceAuditor::Audit(AuditMode::kPrecopy, trace_, *result, link_.total_wire_bytes(),
                          link_.total_pages_sent(), config_.control_bytes_per_iteration);
}

VerificationReport MigrationEngine::Verify(const DestinationVm& dest,
                                           const std::vector<uint64_t>& pause_versions,
                                           const std::vector<bool>& allocated_at_pause,
                                           const PageBitmap* skip_allowed,
                                           TimePoint pause_time) const {
  VerificationReport report;
  const int64_t frames = dest.frame_count();
  for (Pfn pfn = 0; pfn < frames; ++pfn) {
    if (!skip_allowed->Test(pfn)) {
      // Cleared final transfer bit: content legitimately absent.
      ++report.pages_skipped_garbage;
      continue;
    }
    if (!allocated_at_pause[static_cast<size_t>(pfn)]) {
      // Frame free at pause: its content is unobservable -- any future use
      // begins with the kernel's zeroing write.
      ++report.pages_free_unverified;
      continue;
    }
    ++report.pages_checked;
    if (dest.version(pfn) != pause_versions[static_cast<size_t>(pfn)]) {
      ++report.version_mismatches;
    }
  }
  // Application-level audit: pages of live data must be intact regardless of
  // what the transfer bitmap said.
  for (const RequiredPfnSource* source : required_sources_) {
    for (Pfn pfn : source->RequiredPfns(pause_time)) {
      ++report.required_pfns_checked;
      if (pfn < 0 || pfn >= frames ||
          dest.version(pfn) != pause_versions[static_cast<size_t>(pfn)]) {
        ++report.required_pfn_failures;
      }
    }
  }
  report.ok = report.version_mismatches == 0 && report.required_pfn_failures == 0;
  if (!report.ok) {
    report.detail = "version mismatches: " + std::to_string(report.version_mismatches) +
                    ", live-data failures: " + std::to_string(report.required_pfn_failures);
  }
  return report;
}

}  // namespace javmm
