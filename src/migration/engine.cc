// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/migration/engine.h"

#include <algorithm>
#include <optional>

#include "src/base/macros.h"
#include "src/base/units.h"
#include "src/guest/lkm.h"
#include "src/mem/dirty_log.h"
#include "src/trace/auditor.h"

namespace javmm {

namespace {

// Anything in the shared plan or any channel overlay that can fire.
bool AnyFaultsEnabled(const MigrationConfig& config) {
  if (config.faults.enabled()) {
    return true;
  }
  for (const FaultPlan& plan : config.channel_faults) {
    if (plan.enabled()) {
      return true;
    }
  }
  return false;
}

}  // namespace

MigrationEngine::MigrationEngine(GuestKernel* guest, const MigrationConfig& config)
    : guest_(guest), config_(config), channels_(config.link, config.channels) {
  CHECK(guest != nullptr);
  CHECK_GT(config.batch_pages, 0);
  CHECK_GE(config.max_iterations, 1);
  CHECK(config.channel_faults.empty() ||
        static_cast<int>(config.channel_faults.size()) == config.channels);
  if (config.hotness.enabled) {
    CHECK_GE(config.hotness.min_rate, 0);
    CHECK_GE(config.hotness.min_score, 1);
    CHECK_GE(config.hotness.decay, 1);
    CHECK(config.hotness.defer_budget > Duration::Zero());
  }
  trace_.set_perf(&perf_);
}

void MigrationEngine::AddRequiredPfnSource(const RequiredPfnSource* source) {
  CHECK(source != nullptr);
  required_sources_.push_back(source);
}

void MigrationEngine::SendPage(Pfn pfn, DestinationVm* dest, Burst* burst,
                               MigrationResult* result) {
  int64_t payload = kPageSize;
  Duration cpu = config_.cpu_per_page_sent;
  if (config_.delta_compression && dest->received(pfn)) {
    // Retransmission: the destination holds an older copy; ship a delta.
    payload = static_cast<int64_t>(static_cast<double>(kPageSize) * config_.delta_ratio);
    cpu += config_.cpu_per_page_delta;
    ++result->pages_sent_delta;
    ++burst->delta;
  } else if (config_.compress_pages) {
    CompressionClass cls = CompressionClass::kNormal;
    if (config_.use_compression_classes && hint_source_ != nullptr) {
      cls = hint_source_->compression_class(pfn);
    }
    switch (cls) {
      case CompressionClass::kNormal:
        payload = static_cast<int64_t>(static_cast<double>(kPageSize) *
                                       config_.compression_ratio);
        cpu += config_.cpu_per_page_compressed;
        ++result->pages_compressed;
        ++burst->compressed;
        break;
      case CompressionClass::kHighlyCompressible:
        payload = static_cast<int64_t>(static_cast<double>(kPageSize) *
                                       config_.compression_high_ratio);
        cpu += config_.cpu_per_page_high;
        ++result->pages_compressed;
        ++burst->compressed;
        break;
      case CompressionClass::kIncompressible:
        // Hinted as not worth compressing: send raw, skip the trial.
        cpu += config_.cpu_per_page_incompressible;
        ++result->pages_sent_raw;
        ++burst->raw;
        break;
    }
  } else {
    ++result->pages_sent_raw;
    ++burst->raw;
  }
  // Delivery is deferred to the successful flush (the version is captured
  // now; the clock does not advance while a burst accumulates).
  NotePush(burst->delivery_pfns, &perf_);
  burst->delivery_pfns.push_back(pfn);
  burst->delivery_versions.push_back(guest_->memory().version(pfn));
  burst->wire_bytes += payload + config_.link.per_page_overhead;
  burst->send_cpu += cpu;
  burst->compress_cpu += cpu - config_.cpu_per_page_sent;
  ++burst->pages;
}

void MigrationEngine::RequestDegrade(DegradeReason reason) {
  if (degrade_ == DegradeReason::kNone) {
    degrade_ = reason;
  }
}

void MigrationEngine::CarryOver(const std::vector<Pfn>& pending, size_t from) {
  for (size_t i = from; i < pending.size(); ++i) {
    NotePush(carryover_, &perf_);
    carryover_.push_back(pending[i]);
  }
}

void MigrationEngine::WaitBackoff(int index, int attempt, TimePoint min_until,
                                  MigrationResult* result) {
  SimClock& clock = guest_->clock();
  const Duration nominal =
      NominalBackoff(config_.retry_backoff_base, config_.retry_backoff_cap, attempt);
  TimePoint target = clock.now() + nominal;
  if (min_until > target) {
    // The outage that killed the attempt outlives the nominal backoff:
    // retrying earlier would deterministically fail again, so wait it out.
    target = min_until;
  }
  const Duration waited = target - clock.now();
  if (!waited.IsZero()) {
    clock.Advance(waited);
  }
  result->backoff_time += waited;
  trace_.Record(TraceEvent{TraceEventKind::kRetryBackoff, clock.now(), index, attempt,
                           nominal.nanos(), 0, 0, waited});
}

bool MigrationEngine::ControlRoundTrip(int index, MigrationResult* result) {
  SimClock& clock = guest_->clock();
  const int64_t bytes = config_.control_bytes_per_iteration;
  // Control traffic rides channel 0 (the protocol needs one ordered stream).
  const FaultSchedule* faults = channels_.faults(0);
  int attempt = 0;
  for (;;) {
    ++attempt;
    const TimePoint now = clock.now();
    bool lost = false;
    bool lost_to_outage = false;
    TimePoint outage_end;
    if (faults != nullptr) {
      if (faults->InOutage(now)) {
        // A dead link loses the round deterministically -- no Rng draw, so
        // the draw sequence is a pure function of the rounds that reach the
        // Bernoulli stage.
        lost = true;
        lost_to_outage = true;
        outage_end = faults->OutageEndAt(now);
      } else if (faults->control_loss_p() > 0.0) {
        lost = fault_rng_->Chance(faults->control_loss_p());
      }
    }
    if (!lost) {
      channels_.channel(0).RecordControlBytes(bytes);
      trace_.Record(
          TraceEvent{TraceEventKind::kControlBytes, now, index, 0, 0, bytes, 0, Duration::Zero()});
      if (channels_.count() > 1) {
        trace_.Record(TraceEvent{TraceEventKind::kChannelTransfer, now, index, 0, 0, bytes, 0,
                                 Duration::Zero()});
      }
      Duration extra = Duration::Zero();
      if (faults != nullptr) {
        extra = faults->ExtraLatencyAt(now);
      }
      clock.Advance((config_.link.latency + extra) * int64_t{2});
      ++result->control_rounds_ok;
      return true;
    }
    // Lost round: the request still burned wire bytes, and the daemon only
    // notices after its ack timeout.
    ++result->control_losses;
    channels_.channel(0).RecordRetryBytes(bytes);
    result->retry_wire_bytes += bytes;
    clock.Advance(config_.control_loss_timeout);
    trace_.Record(TraceEvent{TraceEventKind::kControlLost, clock.now(), index, attempt, 0, bytes,
                             0, Duration::Zero()});
    if (attempt > config_.max_control_retries) {
      RequestDegrade(DegradeReason::kControlRetries);
      return false;
    }
    WaitBackoff(index, attempt, lost_to_outage ? outage_end : TimePoint::Epoch(), result);
  }
}

bool MigrationEngine::FlushBurst(Burst* burst, DestinationVm* dest, IterationRecord* rec,
                                 MigrationResult* result) {
  // Scanning the pending set (dirty-bitmap test, transfer-bitmap test) costs
  // daemon CPU even for pages that are skipped; it pipelines with the wire,
  // so a fault-free burst takes max(wire, scan) -- this is what keeps
  // skip-heavy iterations from completing in zero time.
  const Duration scan_time = config_.cpu_per_page_scanned * burst->scanned;
  result->cpu_time += scan_time;
  Duration wire_time = Duration::Zero();
  bool clean = true;
  if (burst->pages > 0) {
    const TimePoint start = guest_->clock().now();
    // Each channel runs its slice's retry loop on its own virtual timeline;
    // the callbacks meter failed attempts and backoffs at the instants they
    // (will) happen, and the clock advances once below.
    const auto on_fault = [&](int channel, int attempt, const TransferAttempt& try_result,
                              TimePoint vnow) {
      // An outage cut the stream: the partial transfer still took simulated
      // time and wire bytes, but delivered nothing.
      (void)channel;
      clean = false;
      ++result->burst_faults;
      channels_.channel(channel).RecordRetryBytes(try_result.wasted_bytes);
      result->retry_wire_bytes += try_result.wasted_bytes;
      trace_.Record(TraceEvent{TraceEventKind::kTransferFault, vnow, rec->index, attempt,
                               burst->pages, try_result.wasted_bytes, 0, Duration::Zero()});
    };
    const auto on_backoff = [&](int channel, int attempt, Duration nominal, Duration waited,
                                TimePoint vtarget) {
      (void)channel;
      result->backoff_time += waited;
      trace_.Record(TraceEvent{TraceEventKind::kRetryBackoff, vtarget, rec->index, attempt,
                               nominal.nanos(), 0, 0, waited});
    };
    const int max_retries = in_stop_and_copy_ ? -1 : config_.max_burst_retries;
    const StripedOutcome outcome = channels_.TryStripedTransfer(
        burst->pages, burst->wire_bytes, start, max_retries, config_.retry_backoff_base,
        config_.retry_backoff_cap, on_fault, on_backoff);
    if (!outcome.ok) {
      // Budget exhausted mid-pre-copy: abandon the burst. Nothing was
      // delivered or metered as useful traffic; the pages return via
      // carryover_ and the per-class counters roll back so the
      // pages_sent == raw + compressed + delta identity stays exact. The
      // compression CPU was genuinely burned, so it stays charged.
      RequestDegrade(DegradeReason::kBurstRetries);
      result->cpu_time += burst->send_cpu;
      result->pages_sent_raw -= burst->raw;
      result->pages_compressed -= burst->compressed;
      result->pages_sent_delta -= burst->delta;
      for (const Pfn pfn : burst->delivery_pfns) {
        NotePush(carryover_, &perf_);
        carryover_.push_back(pfn);
      }
      const Duration spent = outcome.completes_at - start;
      if (!spent.IsZero()) {
        guest_->clock().Advance(spent);
      }
      // The scan genuinely happened even though nothing shipped: record a
      // scan-only burst (like an all-skipped one) so the per-iteration
      // "sum of burst scanned == pages_scanned" audit identity holds.
      trace_.Record(TraceEvent{TraceEventKind::kBurst, guest_->clock().now(), rec->index, 0, 0,
                               0, burst->scanned, burst->send_cpu + scan_time});
      burst->Reset();
      return false;
    }
    wire_time = outcome.completes_at - start;
    if (channels_.count() > 1 && !burst->compress_cpu.IsZero()) {
      // Producer/consumer pipeline occupancy: the compressor stage (workers
      // feeding the channels, PMigrate's slave_num) has a makespan; when it
      // exceeds the wire stage, the channels sit idle waiting on it.
      const int workers =
          config_.compression_workers > 0 ? config_.compression_workers : channels_.count();
      const Duration makespan = burst->compress_cpu / static_cast<int64_t>(workers);
      result->pipeline_compress_busy += makespan;
      result->pipeline_wire_busy += wire_time;
      if (makespan > wire_time) {
        result->pipeline_stall += makespan - wire_time;
        wire_time = makespan;
      }
    }
    // Page traffic advances each channel's meters. Compression and delta
    // bursts are smaller than PageWireBytes would predict, so record the
    // actual wire size rather than deriving it from the page count.
    for (const ChannelShare& share : outcome.shares) {
      if (share.pages == 0) {
        continue;
      }
      perf_.pages_sharded += share.pages;
      channels_.channel(share.channel).RecordPageBytes(share.pages, share.wire_bytes);
      if (channels_.count() > 1) {
        trace_.Record(TraceEvent{TraceEventKind::kChannelTransfer, share.done, rec->index,
                                 share.channel, share.pages, share.wire_bytes, 0,
                                 Duration::Zero()});
      }
    }
    rec->wire_bytes += burst->wire_bytes;
    rec->pages_sent += burst->pages;
    result->cpu_time += burst->send_cpu;
    for (size_t d = 0; d < burst->delivery_pfns.size(); ++d) {
      dest->ReceivePage(burst->delivery_pfns[d], burst->delivery_versions[d]);
    }
  }
  // With no failed attempt the scan overlapped the transfer; after failures
  // the scan already overlapped the first attempt, whose time is inside
  // wire_time along with the backoffs, so it advances the clock unstretched.
  const Duration advance = clean ? std::max(wire_time, scan_time) : wire_time;
  if (!advance.IsZero()) {
    guest_->clock().Advance(advance);
  }
  if (burst->pages > 0 || burst->scanned > 0) {
    perf_.bursts_flushed += 1;
    trace_.Record(TraceEvent{TraceEventKind::kBurst, guest_->clock().now(), rec->index, 0,
                             burst->pages, burst->wire_bytes, burst->scanned,
                             burst->send_cpu + scan_time});
  }
  burst->Reset();
  return true;
}

void MigrationEngine::ApplyHotnessPolicy(int index, std::vector<Pfn>* pending,
                                         MigrationResult* result) {
  if (!hotness_) {
    return;
  }
  // Fold the touches accumulated since the previous round into the decayed
  // scores. Iteration 1 runs before any touch window, so every score is zero
  // and the policy below leaves the full-sweep order untouched.
  hotness_->EndRound();

  // Pages parked in an earlier round re-enter via the dirty harvest every
  // time the guest re-dirties them; each drop here is one page send the
  // unordered engine would have re-issued.
  int64_t avoided = 0;
  kept_.clear();
  NoteReserve(kept_, static_cast<int64_t>(pending->size()), &perf_);
  kept_.reserve(pending->size());
  for (const Pfn pfn : *pending) {
    if (deferred_hot_->Test(pfn)) {
      ++avoided;
    } else {
      kept_.push_back(pfn);
    }
  }

  // Park newly-hot pages, hottest first (stable, so equal scores tie-break
  // ascending by PFN), bounded so the total ever parked fits the pause
  // budget's worth of wire time.
  int64_t parked = 0;
  const int64_t room = max_deferred_pages_ - result->pages_deferred_hot;
  if (room > 0) {
    hot_.clear();
    for (const Pfn pfn : kept_) {
      if (hotness_->IsHot(pfn)) {
        NotePush(hot_, &perf_);
        hot_.push_back(pfn);
      }
    }
    if (static_cast<int64_t>(hot_.size()) > room) {
      std::stable_sort(hot_.begin(), hot_.end(), [this](Pfn a, Pfn b) {
        return hotness_->score(a) > hotness_->score(b);
      });
      hot_.resize(static_cast<size_t>(room));
    }
    for (const Pfn pfn : hot_) {
      deferred_hot_->Set(pfn);
    }
    parked = static_cast<int64_t>(hot_.size());
    if (parked > 0) {
      kept_.erase(std::remove_if(kept_.begin(), kept_.end(),
                                 [this](Pfn pfn) { return deferred_hot_->Test(pfn); }),
                  kept_.end());
    }
  }

  // Coldest-first: pages most likely to stay clean ship early; the hottest
  // survivors ship late, where a mid-round re-dirty can still skip them.
  std::stable_sort(kept_.begin(), kept_.end(), [this](Pfn a, Pfn b) {
    return hotness_->score(a) < hotness_->score(b);
  });

  result->pages_deferred_hot += parked;
  result->resend_pages_avoided += avoided;
  if (parked > 0 || avoided > 0) {
    trace_.Record(TraceEvent{TraceEventKind::kHotnessDefer, guest_->clock().now(), index, 0,
                             parked, avoided, result->pages_deferred_hot, Duration::Zero()});
  }
  // Swap, not move: the round buffer and kept_ trade storage, so both
  // capacities stay live for the next round.
  pending->swap(kept_);
}

IterationRecord MigrationEngine::RunIteration(int index, std::vector<Pfn>* pending,
                                              DirtyLog* log, DestinationVm* dest,
                                              const PageBitmap* transfer_bitmap,
                                              PageBitmap* ever_skipped,
                                              MigrationResult* result) {
  IterationRecord rec;
  rec.index = index;
  const TimePoint iter_start = guest_->clock().now();
  trace_.Record(TraceEvent{TraceEventKind::kIterationBegin, iter_start, index, 0, 0, 0, 0,
                           Duration::Zero()});
  ApplyHotnessPolicy(index, pending, result);

  // Per-iteration control round trip (request dirty bitmap, sync with the
  // receiver); keeps even all-skip iterations from taking zero time. When the
  // retry budget for it runs out the whole pending set carries over: none of
  // these pages were examined, and none are in the dirty log.
  if (!ControlRoundTrip(index, result)) {
    CarryOver(*pending, 0);
    rec.duration = guest_->clock().now() - iter_start;
    trace_.Record(TraceEvent{TraceEventKind::kIterationEnd, guest_->clock().now(), index, 0,
                             rec.pages_sent, rec.wire_bytes, rec.pages_scanned,
                             Duration::Zero()});
    return rec;
  }

  size_t i = 0;
  burst_.Reset();
  while (i < pending->size()) {
    // Batched dirty peek: within one burst-accumulation pass the clock never
    // advances, so the guest cannot dirty pages and the log is frozen -- one
    // 64-bit word read covers up to 64 consecutive re-dirty tests. The cache
    // dies with the pass: FlushBurst/ControlRoundTrip advance the clock, so
    // each new pass starts cold.
    int64_t cached_wi = -1;
    uint64_t cached_word = 0;
    while (i < pending->size() && burst_.pages < config_.batch_pages) {
      const Pfn pfn = (*pending)[i++];
      ++rec.pages_scanned;
      ++burst_.scanned;
      if (transfer_bitmap != nullptr && !transfer_bitmap->Test(pfn)) {
        // Cleared transfer bit: the application vouched the page need not be
        // migrated (§3.3.3). Remember it for the safety fallback.
        ++rec.pages_skipped_bitmap;
        ever_skipped->Set(pfn);
        continue;
      }
      ++perf_.page_peeks;
      if ((pfn >> 6) != cached_wi) {
        cached_wi = pfn >> 6;
        cached_word = log->PeekWord(pfn);
        ++perf_.dirty_word_scans;
      }
      if (((cached_word >> (pfn & 63)) & 1) != 0) {
        // Re-dirtied since the harvest: sending now would be redundant; the
        // next round will carry it (§5.2).
        ++rec.pages_skipped_dirty;
        continue;
      }
      SendPage(pfn, dest, &burst_, result);
    }
    if (!FlushBurst(&burst_, dest, &rec, result)) {
      // Burst retry budget exhausted; its pages are already in carryover_.
      // The unexamined tail joins them.
      CarryOver(*pending, i);
      break;
    }
    if (degrade_ == DegradeReason::kNone && config_.round_timeout != Duration::Max() &&
        guest_->clock().now() - iter_start > config_.round_timeout && i < pending->size()) {
      // The round blew its wall-clock budget (a degraded link can stretch
      // one iteration indefinitely); hand the rest to the next round so the
      // dirty-log harvest stays fresh.
      ++result->round_timeouts;
      trace_.Record(TraceEvent{TraceEventKind::kRoundTimeout, guest_->clock().now(), index, 0,
                               static_cast<int64_t>(pending->size() - i), 0, 0,
                               Duration::Zero()});
      CarryOver(*pending, i);
      if (result->round_timeouts > config_.max_round_timeouts) {
        RequestDegrade(DegradeReason::kRoundTimeouts);
      }
      break;
    }
  }
  rec.duration = guest_->clock().now() - iter_start;
  trace_.Record(TraceEvent{TraceEventKind::kIterationEnd, guest_->clock().now(), index, 0,
                           rec.pages_sent, rec.wire_bytes, rec.pages_scanned, Duration::Zero()});
  return rec;
}

MigrationResult MigrationEngine::Migrate() {
  SimClock& clock = guest_->clock();
  GuestPhysicalMemory& memory = guest_->memory();
  const int64_t frames = memory.frame_count();

  MigrationResult result;
  result.assisted = config_.application_assisted;
  result.hotness = config_.hotness.enabled;
  result.vm_bytes = memory.bytes();
  result.started_at = clock.now();
  perf_ = PerfCounters{};
  channels_.ResetMeters();
  // Fault-recovery state is per-migration: anchor the plans' relative
  // windows at this start instant and reseed the private loss stream, so
  // back-to-back migrations of one engine see identical fault behaviour.
  degrade_ = DegradeReason::kNone;
  in_stop_and_copy_ = false;
  carryover_.clear();
  channels_.ClearSchedules();
  fault_rng_.reset();
  if (AnyFaultsEnabled(config_)) {
    channels_.Anchor(config_.faults, config_.channel_faults, result.started_at);
    fault_rng_.emplace(config_.fault_seed);
  }
  // Hotness state is per-migration too: fresh scores, an empty parked set,
  // and the deferral bound from this run's link (how many pages fit through
  // the nominal goodput in defer_budget -- parked pages land in the paused
  // final copy, so this caps their downtime contribution). The tracker and
  // parked bitmap keep their storage across back-to-back migrations of one
  // engine: Reset()/ClearAll() rewind the state without reallocating the
  // frames-sized arrays.
  max_deferred_pages_ = 0;
  if (config_.hotness.enabled) {
    if (hotness_ && hotness_->frames() == frames) {
      hotness_->Reset(config_.hotness);
      deferred_hot_->ClearAll();
    } else {
      hotness_.emplace(frames, config_.hotness);
      deferred_hot_.emplace(frames);
    }
    // budget_ns * goodput overflows int64 for multi-second budgets on fast
    // links; MulDiv keeps the product in 128 bits. Goodput is truncated to
    // whole bytes/sec, which moves the bound by at most one page.
    const int64_t goodput = static_cast<int64_t>(config_.link.GoodputBytesPerSec());
    const int64_t per_page = kPageSize + config_.link.per_page_overhead;
    max_deferred_pages_ =
        MulDiv(config_.hotness.defer_budget.nanos(), goodput, 1'000'000'000) / per_page;
  }
  trace_.set_enabled(config_.record_trace);
  trace_.Clear();
  trace_.Record(TraceEvent{TraceEventKind::kMigrationStart, clock.now(), 0, 0, frames, 0, 0,
                           Duration::Zero()});

  DirtyLog log(frames);
  log.set_perf(&perf_);
  memory.AttachDirtyLog(&log);

  // The tracker observes the same store choke point as the dirty log; the
  // guard guarantees the detach on every exit path (complete, abort) so no
  // dangling observer survives into a later back-to-back migration.
  struct HotnessObserverGuard {
    GuestPhysicalMemory* memory = nullptr;
    WriteObserver* observer = nullptr;
    ~HotnessObserverGuard() {
      if (memory != nullptr) {
        memory->DetachWriteObserver(observer);
      }
    }
  } hotness_guard;
  if (hotness_) {
    memory.AttachWriteObserver(&*hotness_);
    hotness_guard.memory = &memory;
    hotness_guard.observer = &*hotness_;
  }

  DestinationVm dest(frames);
  PageBitmap ever_skipped(frames);

  Lkm* lkm = guest_->lkm();
  const PageBitmap* transfer_bitmap = nullptr;
  const bool assisted = config_.application_assisted && lkm != nullptr;
  // The daemon handler captures `this`; the scoped binding guarantees the
  // unbind on every exit path (complete, abort, fallback) so no dangling
  // callback survives the engine and no stale suspension-ready notification
  // leaks into a later back-to-back migration.
  std::optional<ScopedDaemonBinding> daemon_binding;
  struct LkmTraceGuard {
    Lkm* lkm = nullptr;
    ~LkmTraceGuard() {
      if (lkm != nullptr) {
        lkm->set_trace(nullptr);
      }
    }
  } lkm_trace_guard;
  if (assisted) {
    suspension_ready_ = false;
    daemon_binding.emplace(&guest_->event_channel(), [this](LkmToDaemon msg) {
      trace_.Record(TraceEvent{TraceEventKind::kLkmToDaemon, guest_->clock().now(), 0,
                               static_cast<int32_t>(msg), 0, 0, 0, Duration::Zero()});
      if (msg == LkmToDaemon::kSuspensionReady) {
        suspension_ready_ = true;
      }
    });
    if (config_.record_trace) {
      lkm->set_trace(&trace_);
      lkm_trace_guard.lkm = lkm;
    }
    // "Migration begins; notify LKM" -- triggers the first bitmap update.
    NotifyLkm(DaemonToLkm::kMigrationStarted);
    transfer_bitmap = &lkm->transfer_bitmap();
    hint_source_ = lkm;  // Per-page compression hints (§6).
  } else {
    hint_source_ = nullptr;
  }

  // ---- Live pre-copy iterations. ----
  // Iteration 1 sends every frame of the VM's pseudo-physical memory.
  // pending_ is the reusable round buffer: the loop below refills it from
  // the harvest buffer each round by swap, so after the first migration the
  // whole rotation runs inside previously-acquired capacity.
  pending_.clear();
  NoteReserve(pending_, frames, &perf_);
  pending_.reserve(static_cast<size_t>(frames));
  for (Pfn pfn = 0; pfn < frames; ++pfn) {
    pending_.push_back(pfn);
  }

  int64_t total_sent = 0;
  int iter = 1;
  for (;;) {
    IterationRecord rec = RunIteration(iter, &pending_, &log, &dest, transfer_bitmap,
                                       &ever_skipped, &result);
    log.CollectAndClear(&harvest_);
    if (!carryover_.empty()) {
      // An early-terminated round left scanned-but-undelivered pages behind;
      // fold them into the next round's input, deduplicated against the
      // fresh dirty harvest (a carried page re-dirtied meanwhile is sent
      // once, with its newest content). Both inputs are sorted and unique --
      // the harvest collects set bits in PFN order, and carryover_ is filled
      // at most once per round from disjoint ascending slices of the round's
      // pending set -- so a two-way merge suffices; no frames-sized bitmap.
      // Hotness reorders the round's pending set, so restore PFN order first
      // (the invariant holds by construction only when hotness is off).
      if (hotness_) {
        std::sort(carryover_.begin(), carryover_.end());
      }
      DCHECK(std::is_sorted(harvest_.begin(), harvest_.end()));
      DCHECK(std::is_sorted(carryover_.begin(), carryover_.end()));
      merged_.clear();
      NoteReserve(merged_, static_cast<int64_t>(harvest_.size() + carryover_.size()), &perf_);
      merged_.reserve(harvest_.size() + carryover_.size());
      size_t a = 0;
      size_t b = 0;
      while (a < harvest_.size() || b < carryover_.size()) {
        Pfn next;
        if (b == carryover_.size() || (a < harvest_.size() && harvest_[a] <= carryover_[b])) {
          next = harvest_[a++];
        } else {
          next = carryover_[b++];
        }
        if (merged_.empty() || merged_.back() != next) {
          merged_.push_back(next);
        }
      }
      carryover_.clear();
      harvest_.swap(merged_);
    }
    pending_.swap(harvest_);
    // Pages owed to the next live round. Parked pages re-dirty every round
    // but transfer during the pause, so they must not keep the loop from
    // converging (or count as live dirt in the per-iteration records).
    int64_t live_left = static_cast<int64_t>(pending_.size());
    if (deferred_hot_) {
      for (const Pfn pfn : pending_) {
        if (deferred_hot_->Test(pfn)) {
          --live_left;
        }
      }
    }
    rec.dirty_pages_after = live_left;
    total_sent += rec.pages_sent;
    result.pages_skipped_dirty += rec.pages_skipped_dirty;
    result.pages_skipped_bitmap += rec.pages_skipped_bitmap;
    result.iterations.push_back(rec);

    // Fault injection: the migration is cancelled (destination failure,
    // operator abort, or an exhausted retry budget under degrade_mode =
    // kAbort). The guest never pauses; the LKM resets; applications are
    // released and continue at the source.
    const bool degrade_abort = degrade_ != DegradeReason::kNone &&
                               config_.degrade_mode == DegradeMode::kAbort;
    if ((config_.abort_after_iterations >= 0 && iter >= config_.abort_after_iterations) ||
        degrade_abort) {
      if (degrade_ != DegradeReason::kNone) {
        result.degraded = true;
        result.degrade_reason = degrade_;
        trace_.Record(TraceEvent{TraceEventKind::kDegrade, clock.now(), 0,
                                 static_cast<int32_t>(degrade_), 0, 0, 0, Duration::Zero()});
      }
      if (assisted) {
        NotifyLkm(DaemonToLkm::kMigrationAborted);
      }
      memory.DetachDirtyLog(&log);
      result.total_time = clock.now() - result.started_at;
      // The VM never paused: report an empty pause window at the abort
      // instant (rather than epoch-default timestamps) so downtime
      // arithmetic over the result stays well-defined.
      result.paused_at = clock.now();
      result.resumed_at = clock.now();
      result.downtime = DowntimeBreakdown{};
      result.last_iter_pages_sent = 0;
      result.last_iter_pages_skipped_bitmap = 0;
      result.pages_sent = total_sent;
      result.total_wire_bytes = channels_.total_wire_bytes();
      result.completed = false;
      TracePhase(TraceEventKind::kAbort);
      hint_source_ = nullptr;
      FillChannelMeters(&result);
      RunAudit(&result);
      result.perf = perf_;
      return result;
    }

    if (degrade_ != DegradeReason::kNone) {
      // Retry budget exhausted and degrade_mode is stop-and-copy: stop
      // trying to converge live and take the downtime hit now. The final
      // copy below waits outages out instead of giving up.
      result.degraded = true;
      result.degrade_reason = degrade_;
      trace_.Record(TraceEvent{TraceEventKind::kDegrade, clock.now(), 0,
                               static_cast<int32_t>(degrade_), 0, 0, 0, Duration::Zero()});
      break;
    }

    // xc_domain_save stop conditions.
    const bool few_left = live_left < config_.last_iter_threshold_pages;
    const bool max_iters = iter >= config_.max_iterations;
    const bool sent_too_much =
        static_cast<double>(total_sent) >
        config_.max_sent_factor * static_cast<double>(frames);
    if (few_left || max_iters || sent_too_much) {
      break;
    }
    ++iter;
  }

  // ---- Entering the last iteration. ----
  bool fallback = false;
  if (assisted) {
    NotifyLkm(DaemonToLkm::kEnteringLastIter);
    const TimePoint deadline = clock.now() + config_.lkm_response_timeout;
    while (!suspension_ready_ && clock.now() < deadline) {
      clock.Advance(config_.poll_quantum);
    }
    if (suspension_ready_) {
      result.downtime.final_bitmap_update = lkm->last_final_update_duration();
      clock.Advance(result.downtime.final_bitmap_update);
    } else {
      // Guest side unresponsive: fall back to unassisted behaviour. Safety
      // requires transferring every page we ever skipped on the apps' word,
      // since their contents were never guaranteed recoverable.
      fallback = true;
      result.fell_back_unassisted = true;
      transfer_bitmap = nullptr;
      // The guest's per-page compression hints are as stale as its bitmap:
      // drop them so stop-and-copy pays trial compression instead of
      // trusting classes from a guest just declared unresponsive.
      hint_source_ = nullptr;
      TracePhase(TraceEventKind::kFallback);
    }
  }

  // ---- Stop-and-copy. ----
  guest_->PauseVm();
  result.paused_at = clock.now();
  TracePhase(TraceEventKind::kPause);
  // From here on a burst never degrades: the VM is paused, so the engine
  // rides out any remaining outage rather than abandoning the migration.
  in_stop_and_copy_ = true;
  {
    // Merge everything still dirty (including pages dirtied by the enforced
    // GC's copying) with the carried-over pending set.
    PageBitmap final_set(frames);
    for (Pfn pfn : pending_) {
      final_set.Set(pfn);
    }
    log.CollectAndClear(&harvest_);
    for (Pfn pfn : harvest_) {
      final_set.Set(pfn);
    }
    // Defensive: fault carryover is normally folded into `pending` after
    // each round, but a page parked here must never be dropped.
    for (Pfn pfn : carryover_) {
      final_set.Set(pfn);
    }
    carryover_.clear();
    // Hot pages deferred out of the live rounds transfer exactly once: here,
    // while the guest is paused and cannot re-dirty them.
    if (deferred_hot_) {
      scratch_.clear();
      deferred_hot_->CollectSetBits(&scratch_);
      for (Pfn pfn : scratch_) {
        final_set.Set(pfn);
      }
    }
    // Pages whose skip listing the LKM re-enabled *after* the fact (straggler
    // revocation, deferred final-update reconciliation) may have been dirtied
    // while skip-listed and then dropped from the dirty log; re-send them.
    // Pages that left an area via a timely shrink notice need no special
    // handling: frame reuse starts with the zeroing commit write, which the
    // dirty log catches, and frames still free at pause hold no observable
    // content. On fallback, re-send everything ever skipped.
    if (fallback) {
      scratch_.clear();
      ever_skipped.CollectSetBits(&scratch_);
      for (Pfn pfn : scratch_) {
        final_set.Set(pfn);
      }
    } else if (assisted) {
      for (Pfn pfn : lkm->revoked_pfns()) {
        final_set.Set(pfn);
      }
    }
    last_pending_.clear();
    NoteReserve(last_pending_, final_set.Count(), &perf_);
    last_pending_.reserve(static_cast<size_t>(final_set.Count()));
    final_set.CollectSetBits(&last_pending_);

    IterationRecord rec;
    rec.index = iter + 1;
    const TimePoint last_start = clock.now();
    trace_.Record(TraceEvent{TraceEventKind::kIterationBegin, last_start, rec.index, 0, 0, 0, 0,
                             Duration::Zero()});
    burst_.Reset();
    for (Pfn pfn : last_pending_) {
      ++rec.pages_scanned;
      ++burst_.scanned;
      if (transfer_bitmap != nullptr && !transfer_bitmap->Test(pfn)) {
        // Final bitmap state: garbage the enforced GC reclaimed (plus any
        // deferred expansion) is skipped even in the last iteration.
        ++rec.pages_skipped_bitmap;
        ++result.last_iter_pages_skipped_bitmap;
        continue;
      }
      SendPage(pfn, &dest, &burst_, &result);
      if (burst_.pages == config_.batch_pages) {
        FlushBurst(&burst_, &dest, &rec, &result);
      }
    }
    FlushBurst(&burst_, &dest, &rec, &result);
    rec.duration = clock.now() - last_start;
    trace_.Record(TraceEvent{TraceEventKind::kIterationEnd, clock.now(), rec.index, 0,
                             rec.pages_sent, rec.wire_bytes, rec.pages_scanned,
                             Duration::Zero()});
    result.downtime.last_iter_transfer = rec.duration;
    result.last_iter_pages_sent = rec.pages_sent;
    result.pages_skipped_bitmap += rec.pages_skipped_bitmap;
    total_sent += rec.pages_sent;
    result.iterations.push_back(rec);
  }

  // Snapshot the pause-time state for verification before anything resumes.
  const std::vector<uint64_t> pause_versions = memory.versions();
  const std::vector<bool> allocated_at_pause = memory.allocation_map();
  const PageBitmap skip_allowed =
      (assisted && !fallback) ? *transfer_bitmap : PageBitmap(frames, /*initial=*/true);
  const TimePoint pause_time = result.paused_at;

  if (assisted) {
    result.lkm_bitmap_bytes = lkm->transfer_bitmap_bytes();
    result.lkm_pfn_cache_bytes = lkm->pfn_cache_bytes();
  }

  // ---- Resume at the destination. ----
  clock.Advance(config_.resumption_time);
  result.downtime.resumption = config_.resumption_time;
  guest_->ResumeVm();
  result.resumed_at = clock.now();
  TracePhase(TraceEventKind::kResume);
  if (assisted) {
    NotifyLkm(DaemonToLkm::kVmResumed);
  }

  memory.DetachDirtyLog(&log);

  result.total_time = result.resumed_at - result.started_at;
  result.pages_sent = total_sent;
  result.total_wire_bytes = channels_.total_wire_bytes();
  result.completed = true;
  TracePhase(TraceEventKind::kComplete);
  result.verification =
      Verify(dest, pause_versions, allocated_at_pause, &skip_allowed, pause_time);
  hint_source_ = nullptr;
  FillChannelMeters(&result);
  RunAudit(&result);
  result.perf = perf_;
  return result;
}

void MigrationEngine::TracePhase(TraceEventKind kind) {
  trace_.Record(
      TraceEvent{kind, guest_->clock().now(), 0, 0, 0, 0, 0, Duration::Zero()});
}

void MigrationEngine::NotifyLkm(DaemonToLkm msg) {
  trace_.Record(TraceEvent{TraceEventKind::kDaemonToLkm, guest_->clock().now(), 0,
                           static_cast<int32_t>(msg), 0, 0, 0, Duration::Zero()});
  guest_->event_channel().NotifyGuest(msg);
}

void MigrationEngine::FillChannelMeters(MigrationResult* result) const {
  result->channels = channels_.count();
  if (channels_.count() > 1) {
    result->channel_wire_bytes = channels_.WireBytesPerChannel();
    result->channel_pages_sent = channels_.PagesSentPerChannel();
    result->channel_retry_bytes = channels_.RetryBytesPerChannel();
  }
}

void MigrationEngine::RunAudit(MigrationResult* result) {
  if (!config_.record_trace || !config_.audit_trace) {
    return;
  }
  AuditInputs inputs;
  inputs.link_wire_bytes = channels_.total_wire_bytes();
  inputs.link_pages_sent = channels_.total_pages_sent();
  inputs.link_retry_bytes = channels_.total_retry_bytes();
  inputs.control_bytes_per_iteration = config_.control_bytes_per_iteration;
  inputs.retry_backoff_base = config_.retry_backoff_base;
  inputs.retry_backoff_cap = config_.retry_backoff_cap;
  inputs.hotness_enabled = config_.hotness.enabled;
  if (channels_.count() > 1) {
    inputs.channel_wire_bytes = channels_.WireBytesPerChannel();
    inputs.channel_pages_sent = channels_.PagesSentPerChannel();
    inputs.channel_retry_bytes = channels_.RetryBytesPerChannel();
  }
  result->trace_audit = TraceAuditor::Audit(AuditMode::kPrecopy, trace_, *result, inputs);
}

VerificationReport MigrationEngine::Verify(const DestinationVm& dest,
                                           const std::vector<uint64_t>& pause_versions,
                                           const std::vector<bool>& allocated_at_pause,
                                           const PageBitmap* skip_allowed,
                                           TimePoint pause_time) const {
  VerificationReport report;
  const int64_t frames = dest.frame_count();
  for (Pfn pfn = 0; pfn < frames; ++pfn) {
    if (!skip_allowed->Test(pfn)) {
      // Cleared final transfer bit: content legitimately absent.
      ++report.pages_skipped_garbage;
      continue;
    }
    if (!allocated_at_pause[static_cast<size_t>(pfn)]) {
      // Frame free at pause: its content is unobservable -- any future use
      // begins with the kernel's zeroing write.
      ++report.pages_free_unverified;
      continue;
    }
    ++report.pages_checked;
    if (dest.version(pfn) != pause_versions[static_cast<size_t>(pfn)]) {
      ++report.version_mismatches;
    }
  }
  // Application-level audit: pages of live data must be intact regardless of
  // what the transfer bitmap said.
  for (const RequiredPfnSource* source : required_sources_) {
    for (Pfn pfn : source->RequiredPfns(pause_time)) {
      ++report.required_pfns_checked;
      if (pfn < 0 || pfn >= frames ||
          dest.version(pfn) != pause_versions[static_cast<size_t>(pfn)]) {
        ++report.required_pfn_failures;
      }
    }
  }
  report.ok = report.version_mismatches == 0 && report.required_pfn_failures == 0;
  if (!report.ok) {
    report.detail = "version mismatches: " + std::to_string(report.version_mismatches) +
                    ", live-data failures: " + std::to_string(report.required_pfn_failures);
  }
  return report;
}

}  // namespace javmm
