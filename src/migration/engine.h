// Copyright (c) 2026 The JAVMM Reproduction Authors.
// The pre-copy migration daemon: vanilla Xen and JAVMM modes.
//
// The engine is the simulation's time driver while a migration runs: it
// ships pages in bursts, advancing the clock by each burst's wire time, so
// the guest keeps dirtying memory underneath it -- the race at the heart of
// the paper. The vanilla mode reproduces xc_domain_save's behaviour
// (iteration-1 full sweep, per-round dirty harvest, within-round re-dirty
// skip, three stop conditions); the assisted mode additionally consults the
// LKM's transfer bitmap and runs the Figure-4/7 workflow before pausing.

#ifndef JAVMM_SRC_MIGRATION_ENGINE_H_
#define JAVMM_SRC_MIGRATION_ENGINE_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/base/perf.h"
#include "src/base/rng.h"
#include "src/faults/faults.h"
#include "src/guest/guest_kernel.h"
#include "src/mem/hotness.h"
#include "src/migration/config.h"
#include "src/migration/destination.h"
#include "src/migration/stats.h"
#include "src/net/channel_set.h"
#include "src/net/link.h"
#include "src/trace/trace.h"

namespace javmm {

class Lkm;

class MigrationEngine {
 public:
  MigrationEngine(GuestKernel* guest, const MigrationConfig& config);

  // Registers a source of application-level liveness used only by the
  // post-migration verification audit (not by the migration itself).
  void AddRequiredPfnSource(const RequiredPfnSource* source);

  // Runs one complete live migration, driving the simulation clock, and
  // returns the full result including the verification report. May be called
  // repeatedly (e.g. migrate the VM back and forth).
  MigrationResult Migrate();

  // Structured trace of the most recent Migrate() (empty when
  // config.record_trace is false). Valid until the next Migrate().
  const TraceRecorder& trace() const { return trace_; }

 private:
  // Accumulates one send burst before the clock advances. Delivery to the
  // destination is deferred to the successful flush: a burst lost to a link
  // outage must leave the destination (and the per-class send counters)
  // untouched, so the pages can carry over and be re-sent exactly.
  struct Burst {
    int64_t pages = 0;
    int64_t scanned = 0;
    int64_t wire_bytes = 0;
    Duration send_cpu = Duration::Zero();
    // Compression-attributable share of send_cpu; feeds the multi-channel
    // pipeline-occupancy model (the compressor stage's work for this burst).
    Duration compress_cpu = Duration::Zero();
    // Per-class counts mirrored from the result so an abandoned burst can
    // roll them back (pages_sent == raw + compressed + delta must stay exact).
    int64_t raw = 0;
    int64_t compressed = 0;
    int64_t delta = 0;
    // Deliveries applied on successful flush, SoA: parallel arrays of PFN
    // and source version at send time. Split so the hot append touches two
    // flat int64 streams instead of pair nodes, and so Reset() can keep both
    // capacities -- the burst reaches its high-water batch size once per
    // engine and stages pages allocation-free thereafter.
    std::vector<Pfn> delivery_pfns;
    std::vector<uint64_t> delivery_versions;

    // Back to an empty burst without releasing storage.
    void Reset() {
      pages = 0;
      scanned = 0;
      wire_bytes = 0;
      send_cpu = Duration::Zero();
      compress_cpu = Duration::Zero();
      raw = 0;
      compressed = 0;
      delta = 0;
      delivery_pfns.clear();
      delivery_versions.clear();
    }
  };

  // Sends one pre-copy iteration over `*pending`; returns its record. The
  // pending set is the engine's reusable round buffer: with hotness enabled
  // the round's set is filtered (parked pages dropped) and reordered
  // coldest-first in place; its contents are consumed either way.
  IterationRecord RunIteration(int index, std::vector<Pfn>* pending, DirtyLog* log,
                               DestinationVm* dest, const PageBitmap* transfer_bitmap,
                               PageBitmap* ever_skipped, MigrationResult* result);

  // Hotness policy, start of each live round (no-op unless enabled): folds
  // the round's touch counts, drops pages already parked in deferred_hot_
  // (counted as avoided re-sends), parks newly-hot pages hottest-first up to
  // max_deferred_pages_, and stable-sorts the remainder coldest-first.
  void ApplyHotnessPolicy(int index, std::vector<Pfn>* pending, MigrationResult* result);

  // Stages one page into `burst` and accounts its wire/CPU cost (per-page
  // compression class, delta retransmission).
  void SendPage(Pfn pfn, DestinationVm* dest, Burst* burst, MigrationResult* result);

  // Pushes a finished burst striped over the channel set, each channel
  // retrying its slice with bounded exponential backoff when an outage cuts
  // the transfer, then delivers its pages and advances the clock once by the
  // slowest channel's completion (wire time pipelined with the bitmap-scan
  // CPU time of the pages examined). Returns false when any channel's retry
  // budget ran out: the whole burst is abandoned, its pages moved to
  // carryover_ and a degrade requested (never happens during stop-and-copy,
  // where the engine waits outages out instead).
  bool FlushBurst(Burst* burst, DestinationVm* dest, IterationRecord* rec,
                  MigrationResult* result);

  // One per-iteration control round trip (request the dirty bitmap, sync
  // with the receiver), retrying lost rounds with bounded exponential
  // backoff. Returns false when the retry budget ran out (degrade requested).
  bool ControlRoundTrip(int index, MigrationResult* result);

  // Backs off before retry `attempt` (1-based): waits
  // max(NominalBackoff(...), until an outage known to block retries ends).
  void WaitBackoff(int index, int attempt, TimePoint min_until, MigrationResult* result);

  // Records the first exhausted retry budget; the migration loop then
  // degrades to stop-and-copy or aborts per config.degrade_mode.
  void RequestDegrade(DegradeReason reason);

  // Moves the unprocessed tail of `pending` (from `from` on) plus any
  // undelivered burst pages into carryover_ for the next round.
  void CarryOver(const std::vector<Pfn>& pending, size_t from);

  VerificationReport Verify(const DestinationVm& dest,
                            const std::vector<uint64_t>& pause_versions,
                            const std::vector<bool>& allocated_at_pause,
                            const PageBitmap* skip_allowed, TimePoint pause_time) const;

  // Records a phase-transition event (pause, resume, fallback, ...).
  void TracePhase(TraceEventKind kind);
  // Records a daemon->LKM notification and delivers it.
  void NotifyLkm(DaemonToLkm msg);
  // Copies channel count and per-channel meter snapshots into the result
  // (per-channel vectors only when more than one channel exists).
  void FillChannelMeters(MigrationResult* result) const;
  // Runs the TraceAuditor over the finished run when configured.
  void RunAudit(MigrationResult* result);

  GuestKernel* guest_;
  MigrationConfig config_;
  ChannelSet channels_;
  TraceRecorder trace_;
  // Deterministic op counters for the run in progress (DESIGN.md §14); reset
  // at each Migrate() start, snapshotted into MigrationResult::perf on every
  // exit path. The trace recorder and dirty log meter into it directly.
  PerfCounters perf_;
  std::vector<const RequiredPfnSource*> required_sources_;
  bool suspension_ready_ = false;
  // Set during an assisted migration: per-page compression hints (§6).
  const Lkm* hint_source_ = nullptr;

  // ---- Per-Migrate() fault-recovery state (reset at migration start). ----
  // Per-channel fault schedules live inside channels_, anchored at each
  // migration's start; a healthy channel carries no schedule, so every fault
  // branch short-circuits and the engine stays bit-identical to its
  // pre-fault behaviour. The control path follows channel 0.
  // Private stream for the Bernoulli control-loss draws; drawn from only
  // when the plan has control_loss_p > 0 and the link is not in an outage.
  std::optional<Rng> fault_rng_;
  DegradeReason degrade_ = DegradeReason::kNone;
  // During the final stop-and-copy transfer the engine never abandons a
  // burst (aborting a paused VM would be worse than waiting the outage out).
  bool in_stop_and_copy_ = false;
  // Pages scanned-but-undelivered when an iteration ended early (lost burst,
  // control failure, round timeout); merged into the next round's pending
  // set or the stop-and-copy final set, deduplicated against the dirty log.
  std::vector<Pfn> carryover_;

  // ---- Hotness-scored transfer ordering (src/mem/hotness.h, §12). ----
  // Engaged only when config.hotness.enabled; all empty/zero otherwise so
  // the disabled path is byte-identical to the pre-hotness engine.
  std::optional<HotnessTracker> hotness_;   // WriteObserver while migrating.
  std::optional<PageBitmap> deferred_hot_;  // Pages parked for the final set.
  // Deferral bound derived from hotness.defer_budget and the link's nominal
  // goodput: parking more pages than this could blow the pause budget.
  int64_t max_deferred_pages_ = 0;

  // ---- Reusable hot-path buffers (capacity persists across rounds and ----
  // ---- across back-to-back Migrate() calls; contents are per-use).     ----
  // The live loop rotates pending_/harvest_/merged_ by swap so each round's
  // harvest and carryover merge run inside previously-acquired capacity
  // instead of materialising fresh vectors (the old per-round churn).
  std::vector<Pfn> pending_;
  std::vector<Pfn> harvest_;
  std::vector<Pfn> merged_;
  // ApplyHotnessPolicy working sets.
  std::vector<Pfn> kept_;
  std::vector<Pfn> hot_;
  // Stop-and-copy final send set and bitmap-collect scratch.
  std::vector<Pfn> last_pending_;
  std::vector<Pfn> scratch_;
  // The send burst, reused via Burst::Reset() (keeps delivery capacity).
  Burst burst_;
};

}  // namespace javmm

#endif  // JAVMM_SRC_MIGRATION_ENGINE_H_
