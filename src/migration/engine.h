// Copyright (c) 2026 The JAVMM Reproduction Authors.
// The pre-copy migration daemon: vanilla Xen and JAVMM modes.
//
// The engine is the simulation's time driver while a migration runs: it
// ships pages in bursts, advancing the clock by each burst's wire time, so
// the guest keeps dirtying memory underneath it -- the race at the heart of
// the paper. The vanilla mode reproduces xc_domain_save's behaviour
// (iteration-1 full sweep, per-round dirty harvest, within-round re-dirty
// skip, three stop conditions); the assisted mode additionally consults the
// LKM's transfer bitmap and runs the Figure-4/7 workflow before pausing.

#ifndef JAVMM_SRC_MIGRATION_ENGINE_H_
#define JAVMM_SRC_MIGRATION_ENGINE_H_

#include <vector>

#include "src/guest/guest_kernel.h"
#include "src/migration/config.h"
#include "src/migration/destination.h"
#include "src/migration/stats.h"
#include "src/net/link.h"
#include "src/trace/trace.h"

namespace javmm {

class Lkm;

class MigrationEngine {
 public:
  MigrationEngine(GuestKernel* guest, const MigrationConfig& config);

  // Registers a source of application-level liveness used only by the
  // post-migration verification audit (not by the migration itself).
  void AddRequiredPfnSource(const RequiredPfnSource* source);

  // Runs one complete live migration, driving the simulation clock, and
  // returns the full result including the verification report. May be called
  // repeatedly (e.g. migrate the VM back and forth).
  MigrationResult Migrate();

  // Structured trace of the most recent Migrate() (empty when
  // config.record_trace is false). Valid until the next Migrate().
  const TraceRecorder& trace() const { return trace_; }

 private:
  // Accumulates one send burst before the clock advances.
  struct Burst {
    int64_t pages = 0;
    int64_t scanned = 0;
    int64_t wire_bytes = 0;
    Duration send_cpu = Duration::Zero();
  };

  // Sends one pre-copy iteration over `pending`; returns its record.
  IterationRecord RunIteration(int index, const std::vector<Pfn>& pending, DirtyLog* log,
                               DestinationVm* dest, const PageBitmap* transfer_bitmap,
                               PageBitmap* ever_skipped, MigrationResult* result);

  // Delivers one page to the destination and accounts its wire/CPU cost into
  // `burst` (per-page compression class, delta retransmission).
  void SendPage(Pfn pfn, DestinationVm* dest, Burst* burst, MigrationResult* result);

  // Advances the clock for a finished burst: wire time pipelined with the
  // bitmap-scan CPU time of the pages examined.
  void FlushBurst(Burst* burst, IterationRecord* rec, MigrationResult* result);

  VerificationReport Verify(const DestinationVm& dest,
                            const std::vector<uint64_t>& pause_versions,
                            const std::vector<bool>& allocated_at_pause,
                            const PageBitmap* skip_allowed, TimePoint pause_time) const;

  // Records a phase-transition event (pause, resume, fallback, ...).
  void TracePhase(TraceEventKind kind);
  // Records a daemon->LKM notification and delivers it.
  void NotifyLkm(DaemonToLkm msg);
  // Runs the TraceAuditor over the finished run when configured.
  void RunAudit(MigrationResult* result);

  GuestKernel* guest_;
  MigrationConfig config_;
  NetworkLink link_;
  TraceRecorder trace_;
  std::vector<const RequiredPfnSource*> required_sources_;
  bool suspension_ready_ = false;
  // Set during an assisted migration: per-page compression hints (§6).
  const Lkm* hint_source_ = nullptr;
};

}  // namespace javmm

#endif  // JAVMM_SRC_MIGRATION_ENGINE_H_
