// Copyright (c) 2026 The JAVMM Reproduction Authors.

#ifndef JAVMM_SRC_MIGRATION_CONFIG_H_
#define JAVMM_SRC_MIGRATION_CONFIG_H_

#include <cstdint>
#include <vector>

#include "src/base/time.h"
#include "src/faults/faults.h"
#include "src/mem/hotness.h"
#include "src/net/link.h"

namespace javmm {

// What the daemon does when a fault-retry budget is exhausted mid-pre-copy.
enum class DegradeMode {
  // Stop iterating and take the stop-and-copy path immediately: longer
  // downtime, but the migration still lands (the recommended default).
  kStopAndCopy = 0,
  // Abort cleanly: the source VM keeps running, the LKM is reset.
  kAbort = 1,
};

// Pre-copy migration daemon configuration. Defaults mirror Xen 4.1's
// xc_domain_save: up to 30 live iterations, stop-and-copy once fewer than 50
// dirty pages remain, bail out of pre-copy after sending 3x the VM's memory.
struct MigrationConfig {
  // false = vanilla Xen (ignores the transfer bitmap);
  // true  = JAVMM / application-assisted (consults the LKM).
  bool application_assisted = false;

  int max_iterations = 30;
  int64_t last_iter_threshold_pages = 50;
  double max_sent_factor = 3.0;

  // Pages shipped per send burst; the clock advances after each burst so the
  // guest dirties memory while the stream is on the wire (~8 ms at 1 Gbps).
  int64_t batch_pages = 256;

  // Device reconnect + activation at the destination (§5.3: ~170 ms).
  Duration resumption_time = Duration::Millis(170);

  // How long the daemon waits for the LKM's suspension-ready notification
  // before falling back to unassisted behaviour (transferring everything it
  // ever skipped) -- the §6 protection against a hung guest side.
  Duration lkm_response_timeout = Duration::Seconds(15);
  Duration poll_quantum = Duration::Millis(5);

  LinkConfig link;

  // ---- Multi-channel data plane (src/net/channel_set.h, DESIGN.md §11). ----
  // Number of parallel sub-links the migration stream is striped over; each
  // gets bandwidth_bps / channels. 1 = the paper's single-stream testbed and
  // is bit-identical to the pre-channel engines.
  int channels = 1;
  // Per-channel effective fault plans from FaultPlan::ParseMulti. Empty =
  // every channel follows `faults`; otherwise must hold `channels` entries.
  std::vector<FaultPlan> channel_faults;
  // Compression pipeline workers feeding the channels (PMigrate's slave_num).
  // 0 = one worker per channel. Only engaged when channels > 1 -- the
  // single-channel compression model stays the legacy payload-ratio one.
  int compression_workers = 0;

  // ---- Hotness-scored transfer ordering (src/mem/hotness.h, DESIGN.md
  // §12). Pre-copy only: when enabled, each live round is sent coldest-first
  // and pages scoring hot are deferred into the stop-and-copy final set
  // (bounded by hotness.defer_budget). Disabled by default -- a disabled
  // config is byte-identical to the pre-hotness engine.
  HotnessConfig hotness;

  // Control traffic per live iteration (request the dirty bitmap, sync with
  // the receiver). The engine both meters this on the link and records it in
  // the control-bytes trace event, and passes it to the TraceAuditor so the
  // metered and audited values cannot drift apart.
  int64_t control_bytes_per_iteration = 512;

  // Structured trace recording (src/trace/): every burst, control round
  // trip, protocol message and phase transition is appended to the engine's
  // TraceRecorder. Cheap (one vector push per burst), so on by default.
  bool record_trace = true;

  // Run the TraceAuditor at the end of every Migrate() and store its report
  // in MigrationResult::trace_audit. Requires record_trace; the accounting
  // identities it checks are exact, so tests and benches treat a failed
  // audit as a bug in the engine's metering.
  bool audit_trace = true;

  // Fault injection: abort the migration after this many live iterations
  // (e.g. the destination died or the operator cancelled). The source VM
  // keeps running; the LKM is told to reset. Negative = disabled.
  int abort_after_iterations = -1;

  // ---- Link-fault injection & recovery (src/faults/, DESIGN.md §10). ----
  // The fault plan for this migration; empty = healthy link, in which case
  // the engine takes exactly the pre-fault code paths (no Rng draws, no
  // piecewise integration) so existing runs stay bit-identical.
  FaultPlan faults;
  // Seed for the engine's private fault Rng (Bernoulli control-loss draws).
  // MigrationLab forks it from the lab seed so (seed, config) still fully
  // determines a run.
  uint64_t fault_seed = 0;
  // Simulated time a lost control round costs before the daemon notices
  // (its protocol ack timeout).
  Duration control_loss_timeout = Duration::Millis(250);
  // Retry budgets: consecutive losses of one control round / consecutive
  // failed attempts of one burst before the daemon degrades.
  int max_control_retries = 5;
  int max_burst_retries = 5;
  // Bounded exponential backoff between retries:
  // min(retry_backoff_base * 2^(attempt-1), retry_backoff_cap).
  Duration retry_backoff_base = Duration::Millis(50);
  Duration retry_backoff_cap = Duration::Seconds(2);
  // Wall-clock budget for one live iteration; when exceeded the remaining
  // pages carry over to the next round. Duration::Max() = no budget.
  Duration round_timeout = Duration::Max();
  // Live iterations allowed to hit round_timeout before the daemon degrades.
  int max_round_timeouts = 3;
  DegradeMode degrade_mode = DegradeMode::kStopAndCopy;

  // ---- CPU accounting model (reported, never advances the clock). ----
  Duration cpu_per_page_sent = Duration::Micros(4);
  Duration cpu_per_page_scanned = Duration::Nanos(150);

  // ---- Compression extension (§6): compress pages that are transferred
  // (with JAVMM, that is exactly the non-skipped pages). ----
  bool compress_pages = false;
  double compression_ratio = 0.55;  // Wire bytes per payload byte (kNormal).
  Duration cpu_per_page_compressed = Duration::Micros(14);

  // Per-page compression classes (§6's multi-bit transfer map): in assisted
  // mode the daemon honours the LKM's per-page hints instead of paying trial
  // compression everywhere. Ignored for vanilla Xen (application-agnostic).
  bool use_compression_classes = true;
  double compression_high_ratio = 0.25;   // kHighlyCompressible.
  Duration cpu_per_page_high = Duration::Micros(10);
  Duration cpu_per_page_incompressible = Duration::Micros(2);  // Detect & skip.

  // Delta compression for retransmissions (Svard et al. [35]): a page the
  // destination already holds an older version of ships as a delta.
  bool delta_compression = false;
  double delta_ratio = 0.35;
  Duration cpu_per_page_delta = Duration::Micros(8);
};

}  // namespace javmm

#endif  // JAVMM_SRC_MIGRATION_CONFIG_H_
