// Copyright (c) 2026 The JAVMM Reproduction Authors.

#ifndef JAVMM_SRC_MIGRATION_STATS_H_
#define JAVMM_SRC_MIGRATION_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/perf.h"
#include "src/base/time.h"

namespace javmm {

// One pre-copy iteration, the unit of Figures 1, 8 and 9.
struct IterationRecord {
  int index = 0;
  Duration duration = Duration::Zero();
  int64_t pages_scanned = 0;
  int64_t pages_sent = 0;
  int64_t wire_bytes = 0;
  // Within-iteration skip: page re-dirtied after the harvest, will be caught
  // next round ("skipped (already dirtied)" in Fig 9).
  int64_t pages_skipped_dirty = 0;
  // Transfer-bitmap skip: page inside a skip-over area ("skipped (young
  // gen)" in Fig 9). Always 0 for vanilla Xen.
  int64_t pages_skipped_bitmap = 0;
  // Dirty pages harvested at the end of this iteration = next round's input;
  // proxies the guest's dirtying during the iteration (Fig 1's dirty series).
  int64_t dirty_pages_after = 0;

  double TransferRatePagesPerSec() const {
    const double secs = duration.ToSecondsF();
    return secs > 0 ? static_cast<double>(pages_sent) / secs : 0;
  }
  double DirtyRatePagesPerSec() const {
    const double secs = duration.ToSecondsF();
    return secs > 0 ? static_cast<double>(dirty_pages_after) / secs : 0;
  }
};

// Components of the stop-and-copy downtime (§5.3). For vanilla Xen only the
// last two are non-zero. `safepoint_wait` is informational: the workload
// still executes while running to the safepoint, so it is excluded from
// Total().
struct DowntimeBreakdown {
  Duration safepoint_wait = Duration::Zero();
  Duration enforced_gc = Duration::Zero();
  Duration final_bitmap_update = Duration::Zero();
  Duration last_iter_transfer = Duration::Zero();
  Duration resumption = Duration::Zero();

  Duration Total() const {
    return enforced_gc + final_bitmap_update + last_iter_transfer + resumption;
  }
};

// Outcome of the post-run trace audit (src/trace/auditor.h): accounting
// identities and protocol-state-machine checks over the structured trace.
// `ran` is false when trace recording or auditing was disabled. Defined here
// (not in src/trace/) so MigrationResult can carry it without a dependency
// cycle between the trace and migration layers.
struct TraceAuditReport {
  bool ran = false;
  bool ok = true;
  std::vector<std::string> violations;

  std::string ToString() const {
    std::string out;
    for (const std::string& v : violations) {
      if (!out.empty()) {
        out += "; ";
      }
      out += v;
    }
    return out.empty() ? "ok" : out;
  }
};

// Outcome of the post-migration correctness audit (DESIGN.md §5).
struct VerificationReport {
  bool ok = false;
  int64_t pages_checked = 0;
  int64_t pages_skipped_garbage = 0;  // Legitimately absent at destination.
  int64_t pages_free_unverified = 0;  // Frames free at pause: no observable
                                      // content (reuse starts with zeroing).
  int64_t version_mismatches = 0;
  int64_t required_pfns_checked = 0;  // App-level live-data pages.
  int64_t required_pfn_failures = 0;
  std::string detail;
};

// Why a migration left the live pre-copy loop early (fault-recovery budget
// exhausted). kNone when no degradation happened.
enum class DegradeReason {
  kNone = 0,
  kControlRetries = 1,  // One control round lost max_control_retries+1 times.
  kBurstRetries = 2,    // One burst failed max_burst_retries+1 times.
  kRoundTimeouts = 3,   // max_round_timeouts+1 iterations blew round_timeout.
};

inline const char* DegradeReasonName(DegradeReason reason) {
  switch (reason) {
    case DegradeReason::kNone:
      return "none";
    case DegradeReason::kControlRetries:
      return "control_retries";
    case DegradeReason::kBurstRetries:
      return "burst_retries";
    case DegradeReason::kRoundTimeouts:
      return "round_timeouts";
  }
  return "unknown";
}

struct MigrationResult {
  bool completed = false;
  bool assisted = false;
  bool fell_back_unassisted = false;  // LKM timeout triggered the safe path.

  TimePoint started_at;
  TimePoint paused_at;
  TimePoint resumed_at;
  Duration total_time = Duration::Zero();

  int64_t vm_bytes = 0;
  int64_t total_wire_bytes = 0;
  int64_t pages_sent = 0;
  int64_t pages_skipped_dirty = 0;
  int64_t pages_skipped_bitmap = 0;
  int64_t last_iter_pages_sent = 0;
  int64_t last_iter_pages_skipped_bitmap = 0;

  DowntimeBreakdown downtime;
  std::vector<IterationRecord> iterations;

  // Daemon-side CPU time (accounting model; does not advance the clock).
  Duration cpu_time = Duration::Zero();

  // Compression extension accounting.
  int64_t pages_compressed = 0;       // Full pages run through a compressor.
  int64_t pages_sent_delta = 0;       // Retransmissions shipped as deltas.
  int64_t pages_sent_raw = 0;         // Sent uncompressed (incompressible or
                                      // compression disabled).

  // ---- Fault-recovery accounting (src/faults/, DESIGN.md §10). ----
  int64_t control_losses = 0;     // Control round trips that were lost.
  int64_t control_rounds_ok = 0;  // Control round trips that succeeded.
  int64_t burst_faults = 0;       // Burst transfer attempts cut by an outage.
  int64_t round_timeouts = 0;     // Live iterations that blew round_timeout.
  int64_t retry_wire_bytes = 0;   // Wire bytes that bought no progress.
  Duration backoff_time = Duration::Zero();  // Total time spent backing off.
  bool degraded = false;          // A retry budget was exhausted.
  DegradeReason degrade_reason = DegradeReason::kNone;

  // ---- Multi-channel data plane (src/net/channel_set.h, DESIGN.md §11). ----
  int channels = 1;
  // Per-channel meter snapshots; empty when channels == 1 (the aggregate
  // fields above already tell the whole story). When filled, each vector has
  // `channels` entries and its sum equals the matching aggregate.
  std::vector<int64_t> channel_wire_bytes;
  std::vector<int64_t> channel_pages_sent;
  std::vector<int64_t> channel_retry_bytes;
  // Compression-pipeline occupancy (channels > 1 with compression): total
  // compressor-stage busy time, wire-stage busy time, and time the wire sat
  // idle waiting on the compressors.
  Duration pipeline_compress_busy = Duration::Zero();
  Duration pipeline_wire_busy = Duration::Zero();
  Duration pipeline_stall = Duration::Zero();

  // ---- Hotness-scored transfer ordering (src/mem/hotness.h, §12). ----
  bool hotness = false;  // Hotness ordering/deferral was enabled for the run.
  // Unique hot pages deferred out of live rounds into the final set.
  int64_t pages_deferred_hot = 0;
  // Re-dirty harvest entries dropped because the page was already parked --
  // each one is a page send the pre-hotness engine would have re-issued.
  int64_t resend_pages_avoided = 0;

  // Framework memory overhead at pause time (§5.3: "at most 1 MB").
  int64_t lkm_bitmap_bytes = 0;
  int64_t lkm_pfn_cache_bytes = 0;

  VerificationReport verification;
  TraceAuditReport trace_audit;

  // Deterministic simulator-effort counters for this run (DESIGN.md §14).
  // Deliberately absent from the runner's JSON-lines export: the pinned
  // golden exports must not change when a counter is added or a hot path is
  // re-instrumented. The perf gauntlet exports them separately.
  PerfCounters perf;

  int iteration_count() const { return static_cast<int>(iterations.size()); }
};

}  // namespace javmm

#endif  // JAVMM_SRC_MIGRATION_STATS_H_
