// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Related-work baseline migration strategies (§2), for the comparison
// ablation:
//
//   * StopAndCopyEngine -- non-live migration: pause, copy everything,
//     resume. Minimal total time and traffic; downtime = whole transfer.
//   * PostcopyEngine    -- Hines & Gopalan [18] / Hirofuchi et al. [19]:
//     skip the pre-copy stage entirely, flip execution to the destination
//     after shipping only device state, then fetch pages on demand (each
//     fault stalls the guest a network round trip) while a background
//     pre-paging stream pulls the rest. Tiny downtime, but a performance-
//     degradation window until the working set is resident.
//
// Both engines consume MigrationConfig::faults (DESIGN.md §10). Stop-and-copy
// recovery is throughput-critical and happens entirely inside the pause:
// outage-cut bursts are retried with bounded exponential backoff until they
// land (the VM is down either way, so downtime absorbs the fault).
// Post-copy recovery is latency-critical: a lost demand fetch stalls the
// destination vCPU, so losses/outages are paid in stall time while the
// pre-paging stream degrades to pure demand paging -- never an abort -- when
// its burst-retry budget runs out (the destination is already authoritative).

#ifndef JAVMM_SRC_MIGRATION_BASELINES_H_
#define JAVMM_SRC_MIGRATION_BASELINES_H_

#include <optional>

#include "src/base/rng.h"
#include "src/faults/faults.h"
#include "src/guest/guest_kernel.h"
#include "src/migration/config.h"
#include "src/migration/destination.h"
#include "src/migration/stats.h"
#include "src/net/channel_set.h"
#include "src/net/link.h"
#include "src/trace/trace.h"

namespace javmm {

// Outcome of a post-copy run; extends the common metrics with the
// degradation-window accounting pre-copy approaches do not have. The common
// fault counters (control_losses, burst_faults, retry_wire_bytes,
// backoff_time, degraded) live in `common`.
struct PostcopyResult {
  MigrationResult common;
  int64_t demand_faults = 0;          // Page faults served from the source.
  Duration fault_stall = Duration::Zero();  // Guest time lost to faults.
  Duration degradation_window = Duration::Zero();  // Resume -> all resident.
  // Pages delivered by the background stream (pre-paging bursts, plus the
  // one-page demand trickle after a pre-paging degrade).
  int64_t prepage_pages = 0;
  // Demand fetches that exhausted the express-channel retry budget and fell
  // back to the bulk stream.
  int64_t stream_fallback_fetches = 0;
};

class StopAndCopyEngine {
 public:
  StopAndCopyEngine(GuestKernel* guest, const MigrationConfig& config);

  MigrationResult Migrate();

  // Structured trace of the most recent Migrate().
  const TraceRecorder& trace() const { return trace_; }

 private:
  GuestKernel* guest_;
  MigrationConfig config_;
  ChannelSet channels_;
  TraceRecorder trace_;
  // Deterministic op counters for the run in progress; reset at Migrate()
  // start and snapshotted into MigrationResult::perf (DESIGN.md §14).
  PerfCounters perf_;
};

class PostcopyEngine {
 public:
  struct Config {
    MigrationConfig base;
    // Guest stall per demand fault: one round trip plus the page transfer.
    // (Pipelined pre-paging hides most of the bandwidth cost.)
    Duration extra_fault_latency = Duration::Micros(60);  // Handler overhead.
    int64_t prepage_batch_pages = 256;
  };

  PostcopyEngine(GuestKernel* guest, const Config& config);

  // Runs the full post-copy migration: stop-and-transfer of device state,
  // resume at destination, then drive the clock until every page is
  // resident, serving demand faults as the guest touches non-resident pages.
  PostcopyResult Migrate();

  // Structured trace of the most recent Migrate().
  const TraceRecorder& trace() const { return trace_; }

 private:
  class FaultTracker;

  // Clock-advancing backoff for the post-degrade demand trickle.
  void WaitBackoff(int attempt, TimePoint min_until, MigrationResult* common);

  GuestKernel* guest_;
  Config config_;
  ChannelSet channels_;
  TraceRecorder trace_;
  // Deterministic op counters for the run in progress; reset at Migrate()
  // start and snapshotted into MigrationResult::perf (DESIGN.md §14).
  PerfCounters perf_;
  // Present only while Migrate() runs with a non-empty fault plan; the Rng
  // drives the Bernoulli control-loss draws off base.fault_seed. Per-channel
  // schedules live inside channels_.
  std::optional<Rng> fault_rng_;
};

}  // namespace javmm

#endif  // JAVMM_SRC_MIGRATION_BASELINES_H_
