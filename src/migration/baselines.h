// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Related-work baseline migration strategies (§2), for the comparison
// ablation:
//
//   * StopAndCopyEngine -- non-live migration: pause, copy everything,
//     resume. Minimal total time and traffic; downtime = whole transfer.
//   * PostcopyEngine    -- Hines & Gopalan [18] / Hirofuchi et al. [19]:
//     skip the pre-copy stage entirely, flip execution to the destination
//     after shipping only device state, then fetch pages on demand (each
//     fault stalls the guest a network round trip) while a background
//     pre-paging stream pulls the rest. Tiny downtime, but a performance-
//     degradation window until the working set is resident.

#ifndef JAVMM_SRC_MIGRATION_BASELINES_H_
#define JAVMM_SRC_MIGRATION_BASELINES_H_

#include "src/guest/guest_kernel.h"
#include "src/migration/config.h"
#include "src/migration/destination.h"
#include "src/migration/stats.h"
#include "src/net/link.h"
#include "src/trace/trace.h"

namespace javmm {

// Outcome of a post-copy run; extends the common metrics with the
// degradation-window accounting pre-copy approaches do not have.
struct PostcopyResult {
  MigrationResult common;
  int64_t demand_faults = 0;          // Page faults served from the source.
  Duration fault_stall = Duration::Zero();  // Guest time lost to faults.
  Duration degradation_window = Duration::Zero();  // Resume -> all resident.
};

class StopAndCopyEngine {
 public:
  StopAndCopyEngine(GuestKernel* guest, const MigrationConfig& config);

  MigrationResult Migrate();

  // Structured trace of the most recent Migrate().
  const TraceRecorder& trace() const { return trace_; }

 private:
  GuestKernel* guest_;
  MigrationConfig config_;
  NetworkLink link_;
  TraceRecorder trace_;
};

class PostcopyEngine {
 public:
  struct Config {
    MigrationConfig base;
    // Guest stall per demand fault: one round trip plus the page transfer.
    // (Pipelined pre-paging hides most of the bandwidth cost.)
    Duration extra_fault_latency = Duration::Micros(60);  // Handler overhead.
    int64_t prepage_batch_pages = 256;
  };

  PostcopyEngine(GuestKernel* guest, const Config& config);

  // Runs the full post-copy migration: stop-and-transfer of device state,
  // resume at destination, then drive the clock until every page is
  // resident, serving demand faults as the guest touches non-resident pages.
  PostcopyResult Migrate();

  // Structured trace of the most recent Migrate().
  const TraceRecorder& trace() const { return trace_; }

 private:
  class FaultTracker;

  GuestKernel* guest_;
  Config config_;
  NetworkLink link_;
  TraceRecorder trace_;
};

}  // namespace javmm

#endif  // JAVMM_SRC_MIGRATION_BASELINES_H_
