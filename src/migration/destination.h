// Copyright (c) 2026 The JAVMM Reproduction Authors.

#ifndef JAVMM_SRC_MIGRATION_DESTINATION_H_
#define JAVMM_SRC_MIGRATION_DESTINATION_H_

#include <cstdint>
#include <vector>

#include "src/base/macros.h"
#include "src/base/time.h"
#include "src/mem/types.h"

namespace javmm {

// The destination host's view of the migrating VM: which page versions have
// arrived. Receiving a page overwrites any earlier copy, exactly as the
// migration stream does; post-migration verification compares this against
// the source's pause-time versions.
class DestinationVm {
 public:
  explicit DestinationVm(int64_t frame_count)
      : received_(static_cast<size_t>(frame_count), false),
        versions_(static_cast<size_t>(frame_count), 0) {}

  int64_t frame_count() const { return static_cast<int64_t>(received_.size()); }

  void ReceivePage(Pfn pfn, uint64_t version) {
    DCHECK_GE(pfn, 0);
    DCHECK_LT(pfn, frame_count());
    if (!received_[static_cast<size_t>(pfn)]) {
      received_[static_cast<size_t>(pfn)] = true;
      ++pages_received_distinct_;
    }
    versions_[static_cast<size_t>(pfn)] = version;
    ++pages_received_total_;
  }

  bool received(Pfn pfn) const { return received_[static_cast<size_t>(pfn)]; }
  uint64_t version(Pfn pfn) const { return versions_[static_cast<size_t>(pfn)]; }

  int64_t pages_received_total() const { return pages_received_total_; }
  int64_t pages_received_distinct() const { return pages_received_distinct_; }

 private:
  std::vector<bool> received_;
  std::vector<uint64_t> versions_;
  int64_t pages_received_total_ = 0;
  int64_t pages_received_distinct_ = 0;
};

// Supplier of application-level liveness for verification: PFNs whose
// pause-time contents are required for correct execution at the destination
// (pages of live Java objects, retained cache entries, ...).
class RequiredPfnSource {
 public:
  virtual ~RequiredPfnSource() = default;
  virtual std::vector<Pfn> RequiredPfns(TimePoint pause_time) const = 0;
};

}  // namespace javmm

#endif  // JAVMM_SRC_MIGRATION_DESTINATION_H_
