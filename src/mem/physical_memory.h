// Copyright (c) 2026 The JAVMM Reproduction Authors.

#ifndef JAVMM_SRC_MEM_PHYSICAL_MEMORY_H_
#define JAVMM_SRC_MEM_PHYSICAL_MEMORY_H_

#include <cstdint>
#include <vector>

#include "src/base/perf.h"
#include "src/base/units.h"
#include "src/mem/dirty_log.h"
#include "src/mem/types.h"

namespace javmm {

// Observer of guest stores, invoked synchronously from Write()/WriteRun().
// The dirty log is the canonical observer; the post-copy engine uses another
// to detect accesses to pages that have not been fetched yet.
//
// Run contract (DESIGN.md §15): a run callback OnGuestWriteRun(pfn, n) is
// semantically exactly n single-page callbacks OnGuestWrite(pfn), ...,
// OnGuestWrite(pfn + n - 1), in ascending order. The base implementation is
// that loop, so per-page observers stay correct unmodified; an observer
// overrides the run form only as an optimization and must preserve the
// per-page meaning bit for bit.
class WriteObserver {
 public:
  virtual ~WriteObserver() = default;
  virtual void OnGuestWrite(Pfn pfn) = 0;
  virtual void OnGuestWriteRun(Pfn first_pfn, int64_t pages) {
    for (int64_t i = 0; i < pages; ++i) {
      OnGuestWrite(first_pfn + i);
    }
  }
};

// The guest VM's pseudo-physical memory.
//
// We do not store page *contents*. Instead each frame carries a monotonically
// increasing version number, bumped on every write. A live-migration run is
// verified by comparing the destination's received versions against the
// source's pause-time versions -- the simulation analogue of "the bytes
// arrived intact" (see DESIGN.md §4).
//
// A simple free-list frame allocator models the guest kernel handing frames to
// processes; the migration daemon itself ignores allocation state and streams
// *all* frames in the first iteration, exactly as Xen does.
class GuestPhysicalMemory {
 public:
  explicit GuestPhysicalMemory(int64_t bytes);
  GuestPhysicalMemory(const GuestPhysicalMemory&) = delete;
  GuestPhysicalMemory& operator=(const GuestPhysicalMemory&) = delete;

  int64_t frame_count() const { return frame_count_; }
  int64_t bytes() const { return frame_count_ * kPageSize; }

  // Frame allocation (guest-kernel side).
  // Returns kInvalidPfn when physical memory is exhausted.
  Pfn AllocateFrame();
  void FreeFrame(Pfn pfn);
  int64_t allocated_frames() const { return allocated_frames_; }
  int64_t free_frames() const { return frame_count_ - allocated_frames_; }
  bool IsAllocated(Pfn pfn) const;

  // Write to a frame: bumps its version and marks attached dirty logs. This
  // (with WriteRun below) is the single choke point through which all guest
  // stores flow. Equivalent to WriteRun(pfn, 1).
  void Write(Pfn pfn);

  // Batched store over the contiguous PFN run [first_pfn, first_pfn+pages):
  // byte-identical dirty semantics to `pages` single-page Write calls in
  // ascending order -- each version bumps by one, total_writes advances by
  // `pages`, every attached dirty log marks the whole run (word-parallel),
  // and each write observer gets one OnGuestWriteRun -- but computed in
  // O(words) for the log marking instead of one virtual dispatch per page.
  void WriteRun(Pfn first_pfn, int64_t pages);

  uint64_t version(Pfn pfn) const;

  // Copy of all frame versions; taken at VM-pause time by the migration
  // engine so verification can compare against a stable reference.
  const std::vector<uint64_t>& versions() const { return versions_; }

  // Per-frame allocation state (guest-kernel view); snapshotted at pause
  // time by verification -- a frame that is free at pause holds no
  // observable content (reuse is preceded by the zeroing commit write).
  const std::vector<bool>& allocation_map() const { return allocated_; }

  // Log-dirty mode: at most a handful of logs (source migration daemon,
  // tests); every Write marks each attached log.
  void AttachDirtyLog(DirtyLog* log);
  void DetachDirtyLog(DirtyLog* log);

  // Generic write observation (post-copy fault detection, tracing).
  void AttachWriteObserver(WriteObserver* observer);
  void DetachWriteObserver(WriteObserver* observer);

  // Total writes ever issued; used to derive average dirtying rates.
  int64_t total_writes() const { return total_writes_; }

  // Optional sink for the guest-store pipeline counters (write_runs,
  // pages_written; AddressSpace meters pte_lookups through perf()). May be
  // null; the lab attaches its own sink before any process exists.
  void set_perf(PerfCounters* perf) { perf_ = perf; }
  PerfCounters* perf() const { return perf_; }

 private:
  bool InRange(Pfn pfn) const { return pfn >= 0 && pfn < frame_count_; }

  int64_t frame_count_;
  std::vector<uint64_t> versions_;
  std::vector<bool> allocated_;
  std::vector<Pfn> free_list_;  // LIFO; deterministic allocation order.
  int64_t allocated_frames_ = 0;
  int64_t total_writes_ = 0;
  std::vector<DirtyLog*> dirty_logs_;
  std::vector<WriteObserver*> write_observers_;
  PerfCounters* perf_ = nullptr;
};

}  // namespace javmm

#endif  // JAVMM_SRC_MEM_PHYSICAL_MEMORY_H_
