// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/mem/bitmap.h"

#include <bit>

namespace javmm {

PageBitmap::PageBitmap(int64_t size, bool initial) : size_(size) {
  CHECK_GE(size, 0);
  words_.resize(static_cast<size_t>((size + 63) / 64), initial ? ~uint64_t{0} : 0);
  if (initial && size % 64 != 0 && !words_.empty()) {
    // Keep bits past `size` clear so Count() stays exact.
    words_.back() &= (uint64_t{1} << (size % 64)) - 1;
  }
}

bool PageBitmap::TestAndSet(int64_t i) {
  const bool prev = Test(i);
  Set(i);
  return prev;
}

bool PageBitmap::TestAndClear(int64_t i) {
  const bool prev = Test(i);
  Clear(i);
  return prev;
}

void PageBitmap::SetRange(int64_t begin, int64_t end) {
  DCHECK_LE(begin, end);
  if (begin >= end) {
    return;
  }
  DCHECK(InRange(begin));
  DCHECK(InRange(end - 1));
  const size_t first_word = static_cast<size_t>(begin >> 6);
  const size_t last_word = static_cast<size_t>((end - 1) >> 6);
  // Mask of bits >= (begin & 63) in the first word, and <= ((end - 1) & 63)
  // in the last; a single-word range intersects both masks.
  const uint64_t head = ~uint64_t{0} << (begin & 63);
  const uint64_t tail = ~uint64_t{0} >> (63 - ((end - 1) & 63));
  if (first_word == last_word) {
    words_[first_word] |= head & tail;
    return;
  }
  words_[first_word] |= head;
  for (size_t wi = first_word + 1; wi < last_word; ++wi) {
    words_[wi] = ~uint64_t{0};
  }
  words_[last_word] |= tail;
}

void PageBitmap::SetAll() {
  for (auto& w : words_) {
    w = ~uint64_t{0};
  }
  if (size_ % 64 != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << (size_ % 64)) - 1;
  }
}

void PageBitmap::ClearAll() {
  for (auto& w : words_) {
    w = 0;
  }
}

int64_t PageBitmap::Count() const {
  int64_t n = 0;
  for (uint64_t w : words_) {
    n += std::popcount(w);
  }
  return n;
}

void PageBitmap::CollectSetBits(std::vector<int64_t>* out) const {
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t w = words_[wi];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      out->push_back(static_cast<int64_t>(wi * 64 + static_cast<size_t>(bit)));
      w &= w - 1;
    }
  }
}

void PageBitmap::CollectSetBitsAndClear(std::vector<int64_t>* out) {
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t w = words_[wi];
    if (w == 0) {
      continue;
    }
    words_[wi] = 0;
    while (w != 0) {
      const int bit = std::countr_zero(w);
      out->push_back(static_cast<int64_t>(wi * 64 + static_cast<size_t>(bit)));
      w &= w - 1;
    }
  }
}

}  // namespace javmm
