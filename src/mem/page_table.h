// Copyright (c) 2026 The JAVMM Reproduction Authors.

#ifndef JAVMM_SRC_MEM_PAGE_TABLE_H_
#define JAVMM_SRC_MEM_PAGE_TABLE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/mem/types.h"

namespace javmm {

// Per-process VA -> PFN mapping with 4 KiB pages.
//
// The LKM bridges the semantic gap by *walking* this table to translate the
// skip-over VA ranges applications report into the PFNs the migration daemon
// understands (§3.3.2). A walk over an unmapped page yields kInvalidPfn in the
// corresponding slot -- mirroring a real walk hitting a non-present PTE (e.g.
// a page freed by heap shrinkage, whose frame can no longer be found).
//
// Internally the table stores coalesced *extents* -- maximal [vpn, vpn+pages)
// spans whose PFNs ascend in lockstep with the VPNs -- rather than one entry
// per page. Committed ranges are ascending-PFN by construction (the frame
// allocator hands frames out in ascending order on a fresh memory), so a
// whole heap commit collapses to a single extent, and `LookupRun` resolves
// an entire contiguous-PFN run with one tree probe where the old
// per-page-hash-map shape needed one `Lookup` per page. Remaps, decommits,
// and recommits split and re-form extents, exactly tracking where PFN
// contiguity actually breaks.
class PageTable {
 public:
  PageTable() = default;

  void Map(Vpn vpn, Pfn pfn);
  void Unmap(Vpn vpn);
  bool IsMapped(Vpn vpn) const;

  // Returns kInvalidPfn when unmapped.
  Pfn Lookup(Vpn vpn) const;

  // Run lookup: resolves `vpn` and reports through `*run_pages` how many
  // pages starting at `vpn` (capped at `max_pages`) are mapped to
  // *contiguous ascending* PFNs -- i.e. `Lookup(vpn + i) == result + i` for
  // all i in [0, *run_pages). One probe regardless of the run's length; the
  // run-granular write pipeline is built on this. Returns kInvalidPfn (and
  // sets `*run_pages` to 0) when `vpn` is unmapped. `max_pages` must be > 0.
  Pfn LookupRun(Vpn vpn, int64_t max_pages, int64_t* run_pages) const;

  // Page-table walk over the *page-aligned interior* of `range` (the LKM's
  // alignment rule, §3.3.2): one entry per interior page, kInvalidPfn for
  // unmapped pages. Also the number of PTEs visited is returned through
  // `walk_cost` when non-null, to let callers model walk latency.
  std::vector<Pfn> WalkRange(const VaRange& range, int64_t* walk_cost = nullptr) const;

  size_t mapped_count() const { return static_cast<size_t>(mapped_); }

  // Number of coalesced extents currently backing the table; exposed so
  // tests can pin when contiguity breaks (remap, decommit-then-recommit).
  int64_t extent_count() const { return static_cast<int64_t>(extents_.size()); }

 private:
  // One maximal contiguous run: VPNs [start, start + pages) map to PFNs
  // [first_pfn, first_pfn + pages). Keyed by start VPN in `extents_`.
  struct Extent {
    Pfn first_pfn = kInvalidPfn;
    int64_t pages = 0;
  };

  using ExtentMap = std::map<Vpn, Extent>;

  // The extent containing `vpn`, or extents_.end(). Ordered-map probes only:
  // iteration order is the VPN order, never hash order, so results cannot
  // depend on pointer or hash state.
  ExtentMap::const_iterator FindExtent(Vpn vpn) const;

  ExtentMap extents_;
  int64_t mapped_ = 0;  // Total mapped pages across all extents.
};

}  // namespace javmm

#endif  // JAVMM_SRC_MEM_PAGE_TABLE_H_
