// Copyright (c) 2026 The JAVMM Reproduction Authors.

#ifndef JAVMM_SRC_MEM_PAGE_TABLE_H_
#define JAVMM_SRC_MEM_PAGE_TABLE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/mem/types.h"

namespace javmm {

// Per-process VA -> PFN mapping with 4 KiB pages.
//
// The LKM bridges the semantic gap by *walking* this table to translate the
// skip-over VA ranges applications report into the PFNs the migration daemon
// understands (§3.3.2). A walk over an unmapped page yields kInvalidPfn in the
// corresponding slot -- mirroring a real walk hitting a non-present PTE (e.g.
// a page freed by heap shrinkage, whose frame can no longer be found).
class PageTable {
 public:
  PageTable() = default;

  void Map(Vpn vpn, Pfn pfn);
  void Unmap(Vpn vpn);
  bool IsMapped(Vpn vpn) const { return table_.count(vpn) != 0; }

  // Returns kInvalidPfn when unmapped.
  Pfn Lookup(Vpn vpn) const;

  // Page-table walk over the *page-aligned interior* of `range` (the LKM's
  // alignment rule, §3.3.2): one entry per interior page, kInvalidPfn for
  // unmapped pages. Also the number of PTEs visited is returned through
  // `walk_cost` when non-null, to let callers model walk latency.
  std::vector<Pfn> WalkRange(const VaRange& range, int64_t* walk_cost = nullptr) const;

  size_t mapped_count() const { return table_.size(); }

 private:
  // Unordered is safe here: the table is only ever probed point-wise (Map /
  // Unmap / Lookup / WalkRange resolve individual VPNs) and never iterated,
  // so hash order cannot reach results or traces (javmm-lint would flag any
  // future iteration in this result-affecting directory).
  std::unordered_map<Vpn, Pfn> table_;
};

}  // namespace javmm

#endif  // JAVMM_SRC_MEM_PAGE_TABLE_H_
