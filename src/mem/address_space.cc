// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/mem/address_space.h"

#include <vector>

#include "src/base/macros.h"

namespace javmm {
namespace {

// Processes' VA spaces start well above zero, like a real Linux process image.
constexpr VirtAddr kVaBase = 0x4000'0000;  // 1 GiB.

}  // namespace

AddressSpace::AddressSpace(GuestPhysicalMemory* memory) : memory_(memory), next_va_(kVaBase) {
  CHECK(memory != nullptr);
}

AddressSpace::~AddressSpace() = default;

VaRange AddressSpace::ReserveVa(int64_t bytes) {
  CHECK_GT(bytes, 0);
  const int64_t rounded = PagesForBytes(bytes) * kPageSize;
  const VaRange range{next_va_, next_va_ + static_cast<uint64_t>(rounded)};
  // Leave an unmapped guard page between reservations so adjacent regions can
  // never be confused by off-by-one range arithmetic.
  next_va_ = range.end + static_cast<uint64_t>(kPageSize);
  return range;
}

bool AddressSpace::CommitRange(VirtAddr start, int64_t bytes) {
  CHECK_EQ(start % static_cast<uint64_t>(kPageSize), 0u);
  CHECK_GT(bytes, 0);
  CHECK_EQ(bytes % kPageSize, 0);
  const Vpn first = VpnOf(start);
  const Vpn count = static_cast<Vpn>(bytes / kPageSize);
  std::vector<Pfn> frames;
  frames.reserve(count);
  for (Vpn i = 0; i < count; ++i) {
    const Pfn pfn = memory_->AllocateFrame();
    if (pfn == kInvalidPfn) {
      // Roll back in reverse allocation order: the free list is LIFO, so
      // only a reverse walk re-stacks it exactly as it stood before the
      // attempt -- a failed commit must be state-neutral, handing later
      // allocations the same PFNs they would have gotten without it.
      for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
        memory_->FreeFrame(*it);
      }
      return false;
    }
    frames.push_back(pfn);
  }
  for (Vpn i = 0; i < count; ++i) {
    page_table_.Map(first + i, frames[static_cast<size_t>(i)]);
  }
  // The kernel zeroes pages before handing them to a process; this write is
  // what makes a recycled frame's stale content unobservable -- and it marks
  // the dirty log, so migration re-ships reused frames naturally. Frames are
  // ascending-PFN on a fresh memory, so the zeroing sweep usually collapses
  // to one WriteRun; after frees it chunks at each PFN discontinuity.
  size_t run_begin = 0;
  while (run_begin < frames.size()) {
    size_t run_end = run_begin + 1;
    while (run_end < frames.size() && frames[run_end] == frames[run_end - 1] + 1) {
      ++run_end;
    }
    memory_->WriteRun(frames[run_begin], static_cast<int64_t>(run_end - run_begin));
    run_begin = run_end;
  }
  return true;
}

void AddressSpace::DecommitRange(VirtAddr start, int64_t bytes) {
  CHECK_EQ(start % static_cast<uint64_t>(kPageSize), 0u);
  CHECK_GT(bytes, 0);
  CHECK_EQ(bytes % kPageSize, 0);
  const Vpn first = VpnOf(start);
  const Vpn count = static_cast<Vpn>(bytes / kPageSize);
  for (Vpn i = 0; i < count; ++i) {
    const Pfn pfn = page_table_.Lookup(first + i);
    CHECK_NE(pfn, kInvalidPfn);
    page_table_.Unmap(first + i);
    memory_->FreeFrame(pfn);
  }
}

bool AddressSpace::IsCommitted(VirtAddr va) const { return page_table_.IsMapped(VpnOf(va)); }

Pfn AddressSpace::RemapPage(VirtAddr va) {
  const Vpn vpn = VpnOf(va);
  const Pfn old_pfn = page_table_.Lookup(vpn);
  CHECK_NE(old_pfn, kInvalidPfn);
  const Pfn new_pfn = memory_->AllocateFrame();
  if (new_pfn == kInvalidPfn) {
    return kInvalidPfn;
  }
  page_table_.Unmap(vpn);
  page_table_.Map(vpn, new_pfn);
  memory_->Write(new_pfn);  // The copy dirties the new frame.
  memory_->FreeFrame(old_pfn);
  return new_pfn;
}

void AddressSpace::WriteRange(VirtAddr va, int64_t bytes) {
  DCHECK_GT(bytes, 0);
  const Vpn last = VpnOf(va + static_cast<uint64_t>(bytes) - 1);
  PerfCounters* perf = memory_->perf();
  Vpn vpn = VpnOf(va);
  while (vpn <= last) {
    int64_t run = 0;
    const Pfn pfn = page_table_.LookupRun(vpn, static_cast<int64_t>(last - vpn) + 1, &run);
    CHECK_NE(pfn, kInvalidPfn);
    if (perf != nullptr) {
      perf->pte_lookups += 1;
    }
    memory_->WriteRun(pfn, run);
    vpn += static_cast<Vpn>(run);
  }
}

}  // namespace javmm
