// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/mem/types.h"

#include <cstdio>

namespace javmm {

std::string VaRange::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[0x%llx, 0x%llx)", static_cast<unsigned long long>(begin),
                static_cast<unsigned long long>(end));
  return buf;
}

}  // namespace javmm
