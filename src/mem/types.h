// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Shared address/page types for the guest memory substrate.
//
// Terminology follows the paper:
//   PFN       -- Page Frame Number: index of a page in the VM's contiguous
//                *pseudo-physical* memory; the unit the migration daemon, dirty
//                bitmap, and transfer bitmap operate on.
//   VA / VPN  -- guest Virtual Address / Virtual Page Number; the unit
//                applications (the JVM) operate on. The LKM bridges VA -> PFN
//                by page-table walks.

#ifndef JAVMM_SRC_MEM_TYPES_H_
#define JAVMM_SRC_MEM_TYPES_H_

#include <cstdint>
#include <string>

#include "src/base/units.h"

namespace javmm {

using Pfn = int64_t;
inline constexpr Pfn kInvalidPfn = -1;

using VirtAddr = uint64_t;
using Vpn = uint64_t;

constexpr Vpn VpnOf(VirtAddr va) { return va / static_cast<uint64_t>(kPageSize); }
constexpr VirtAddr VaOfVpn(Vpn vpn) { return vpn * static_cast<uint64_t>(kPageSize); }

// Rounds `va` up / down to a page boundary.
constexpr VirtAddr PageAlignUp(VirtAddr va) {
  const auto ps = static_cast<uint64_t>(kPageSize);
  return (va + ps - 1) / ps * ps;
}
constexpr VirtAddr PageAlignDown(VirtAddr va) {
  const auto ps = static_cast<uint64_t>(kPageSize);
  return va / ps * ps;
}

// Half-open guest-virtual address range [begin, end).
struct VaRange {
  VirtAddr begin = 0;
  VirtAddr end = 0;

  constexpr int64_t bytes() const { return static_cast<int64_t>(end - begin); }
  constexpr bool empty() const { return end <= begin; }
  constexpr bool Contains(VirtAddr va) const { return va >= begin && va < end; }

  // The largest fully page-aligned sub-range, as the LKM computes it (§3.3.2):
  // start aligned *up*, end aligned *down*, so every page inside is skippable
  // in its entirety.
  constexpr VaRange PageAlignedInterior() const {
    const VirtAddr b = PageAlignUp(begin);
    const VirtAddr e = PageAlignDown(end);
    if (e <= b) {
      return VaRange{0, 0};
    }
    return VaRange{b, e};
  }

  constexpr bool operator==(const VaRange&) const = default;

  std::string ToString() const;
};

}  // namespace javmm

#endif  // JAVMM_SRC_MEM_TYPES_H_
