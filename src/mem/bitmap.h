// Copyright (c) 2026 The JAVMM Reproduction Authors.

#ifndef JAVMM_SRC_MEM_BITMAP_H_
#define JAVMM_SRC_MEM_BITMAP_H_

#include <cstdint>
#include <vector>

#include "src/base/macros.h"

namespace javmm {

// Dense fixed-size bitmap over PFNs. Shared implementation behind both the
// hypervisor dirty bitmap and the guest transfer bitmap (one bit per VM page,
// same page size -- §3.3.3).
class PageBitmap {
 public:
  // Creates a bitmap of `size` bits, all initialised to `initial`.
  explicit PageBitmap(int64_t size, bool initial = false);

  int64_t size() const { return size_; }

  bool Test(int64_t i) const {
    DCHECK(InRange(i));
    return (words_[static_cast<size_t>(i >> 6)] >> (i & 63)) & 1;
  }

  void Set(int64_t i) {
    DCHECK(InRange(i));
    words_[static_cast<size_t>(i >> 6)] |= (uint64_t{1} << (i & 63));
  }

  void Clear(int64_t i) {
    DCHECK(InRange(i));
    words_[static_cast<size_t>(i >> 6)] &= ~(uint64_t{1} << (i & 63));
  }

  void Assign(int64_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Clear(i);
    }
  }

  // Returns the previous value and sets/clears the bit.
  bool TestAndSet(int64_t i);
  bool TestAndClear(int64_t i);

  // Sets every bit in [begin, end): masked edge words, whole-word fills for
  // the interior, so a run of N bits costs O(N/64) word stores instead of N
  // single-bit RMWs. Equivalent to Set(i) for each i in the range.
  void SetRange(int64_t begin, int64_t end);

  void SetAll();
  void ClearAll();

  // Number of set bits.
  int64_t Count() const;

  // Appends the indices of all set bits in ascending order to `out`.
  void CollectSetBits(std::vector<int64_t>* out) const;

  // Single-pass harvest: appends the indices of all set bits in ascending
  // order to `out` and zeroes every word it visits, touching each word once
  // instead of the collect-then-ClearAll double sweep.
  void CollectSetBitsAndClear(std::vector<int64_t>* out);

  // Word-granular access for batched scans: `Word(wi)` returns the 64-bit
  // word covering bits [wi*64, wi*64+64); bits past size() are always zero.
  int64_t WordCount() const { return static_cast<int64_t>(words_.size()); }
  uint64_t Word(int64_t wi) const {
    DCHECK(wi >= 0 && wi < WordCount());
    return words_[static_cast<size_t>(wi)];
  }

  // Memory used by the bit store itself -- reported as framework overhead in
  // the paper (32 KiB per GiB of VM memory with 4 KiB pages).
  int64_t MemoryUsageBytes() const { return static_cast<int64_t>(words_.size() * 8); }

 private:
  bool InRange(int64_t i) const { return i >= 0 && i < size_; }

  int64_t size_;
  std::vector<uint64_t> words_;
};

}  // namespace javmm

#endif  // JAVMM_SRC_MEM_BITMAP_H_
