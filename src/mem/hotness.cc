// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/mem/hotness.h"

#include <algorithm>
#include <cstdlib>

#include "src/base/macros.h"

namespace javmm {
namespace {

// Parses a non-negative decimal integer covering all of [begin, end).
// Returns false on empty input, trailing junk, or overflow.
bool ParseInt(const char* begin, const char* end, int64_t* out) {
  if (begin == end) {
    return false;
  }
  char* parse_end = nullptr;
  const long long value = std::strtoll(begin, &parse_end, 10);
  if (parse_end != end || value < 0) {
    return false;
  }
  *out = static_cast<int64_t>(value);
  return true;
}

// "500ms" / "2s" / "750us" / "123456ns" -> Duration. Integer-only.
bool ParseBudget(const std::string& text, Duration* out) {
  size_t digits = 0;
  while (digits < text.size() && text[digits] >= '0' && text[digits] <= '9') {
    ++digits;
  }
  int64_t value = 0;
  if (!ParseInt(text.c_str(), text.c_str() + digits, &value)) {
    return false;
  }
  const std::string unit = text.substr(digits);
  if (unit == "ns") {
    *out = Duration::Nanos(value);
  } else if (unit == "us") {
    *out = Duration::Micros(value);
  } else if (unit == "ms") {
    *out = Duration::Millis(value);
  } else if (unit == "s") {
    *out = Duration::Seconds(value);
  } else {
    return false;
  }
  return true;
}

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}

}  // namespace

bool HotnessConfig::Parse(const std::string& spec, HotnessConfig* out, std::string* error) {
  HotnessConfig config;
  if (spec.empty() || spec == "off") {
    *out = config;  // Disabled; knobs stay at defaults.
    return true;
  }
  config.enabled = true;
  size_t pos = 0;
  while (pos <= spec.size()) {
    const size_t comma = spec.find(',', pos);
    const size_t end = comma == std::string::npos ? spec.size() : comma;
    const std::string clause = spec.substr(pos, end - pos);
    pos = end + 1;
    if (clause == "on") {
      continue;  // Defaults already enabled.
    }
    const size_t colon = clause.find(':');
    if (colon == std::string::npos) {
      return Fail(error, "hotness: bad clause '" + clause +
                             "' (want on, off, rate:N, score:N, decay:N, budget:Nms)");
    }
    const std::string key = clause.substr(0, colon);
    const std::string value = clause.substr(colon + 1);
    if (key == "budget") {
      if (!ParseBudget(value, &config.defer_budget)) {
        return Fail(error, "hotness: bad budget '" + value + "' (want e.g. 500ms, 2s)");
      }
      continue;
    }
    int64_t number = 0;
    if (!ParseInt(value.c_str(), value.c_str() + value.size(), &number)) {
      return Fail(error, "hotness: bad value '" + value + "' for " + key +
                             " (want a non-negative integer)");
    }
    if (key == "rate") {
      config.min_rate = number;
    } else if (key == "score") {
      config.min_score = number;
    } else if (key == "decay") {
      config.decay = number;
    } else {
      return Fail(error, "hotness: unknown key '" + key +
                             "' (want rate, score, decay, budget)");
    }
    if (comma == std::string::npos) {
      break;
    }
  }
  if (config.min_rate < 0) {
    return Fail(error, "hotness: min_rate must be >= 0");
  }
  if (config.min_score < 1) {
    return Fail(error, "hotness: min_score must be >= 1");
  }
  if (config.decay < 1) {
    return Fail(error, "hotness: decay must be >= 1");
  }
  if (!(config.defer_budget > Duration::Zero())) {
    return Fail(error, "hotness: budget must be > 0");
  }
  *out = config;
  return true;
}

HotnessTracker::HotnessTracker(int64_t frames, const HotnessConfig& config)
    : config_(config),
      scores_(static_cast<size_t>(frames), 0),
      touches_(static_cast<size_t>(frames), 0) {
  CHECK_GT(frames, 0);
  CHECK_GE(config_.min_rate, 0);
  CHECK_GE(config_.min_score, 1);
  CHECK_GE(config_.decay, 1);
}

void HotnessTracker::Reset(const HotnessConfig& config) {
  config_ = config;
  CHECK_GE(config_.min_rate, 0);
  CHECK_GE(config_.min_score, 1);
  CHECK_GE(config_.decay, 1);
  std::fill(scores_.begin(), scores_.end(), 0);
  std::fill(touches_.begin(), touches_.end(), 0);
  rounds_ = 0;
}

void HotnessTracker::OnGuestWrite(Pfn pfn) {
  DCHECK_GE(pfn, 0);
  DCHECK_LT(pfn, static_cast<Pfn>(touches_.size()));
  ++touches_[static_cast<size_t>(pfn)];
}

void HotnessTracker::OnGuestWriteRun(Pfn first_pfn, int64_t pages) {
  DCHECK_GE(first_pfn, 0);
  DCHECK_LE(first_pfn + pages, static_cast<Pfn>(touches_.size()));
  // A run carries exactly one store per page (runs are spans, not repeats),
  // so this is equivalent to the default per-page loop.
  for (int64_t i = 0; i < pages; ++i) {
    ++touches_[static_cast<size_t>(first_pfn + i)];
  }
}

void HotnessTracker::EndRound() {
  const int64_t shift = config_.decay < 63 ? config_.decay : 63;
  for (size_t i = 0; i < scores_.size(); ++i) {
    // Decay first, then boost: the steady-state score of a page accessed
    // every round is kAccessBoost * 2^decay / (2^decay - 1) truncated
    // (15 with decay=1), and one accessed round alone already reaches
    // kAccessBoost -- thresholds in [1, 15] are all meaningful.
    int64_t score = scores_[i] >> shift;
    if (touches_[i] >= config_.min_rate && touches_[i] > 0) {
      score += kAccessBoost;
      if (score > kScoreCap) {
        score = kScoreCap;
      }
    }
    scores_[i] = score;
    touches_[i] = 0;
  }
  ++rounds_;
}

}  // namespace javmm
