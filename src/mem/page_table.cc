// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/mem/page_table.h"

#include "src/base/macros.h"

namespace javmm {

void PageTable::Map(Vpn vpn, Pfn pfn) {
  CHECK_NE(pfn, kInvalidPfn);
  const bool inserted = table_.emplace(vpn, pfn).second;
  CHECK(inserted);  // Double-mapping a VPN is a guest-kernel bug.
}

void PageTable::Unmap(Vpn vpn) {
  const size_t erased = table_.erase(vpn);
  CHECK_EQ(erased, size_t{1});
}

Pfn PageTable::Lookup(Vpn vpn) const {
  auto it = table_.find(vpn);
  return it == table_.end() ? kInvalidPfn : it->second;
}

std::vector<Pfn> PageTable::WalkRange(const VaRange& range, int64_t* walk_cost) const {
  const VaRange aligned = range.PageAlignedInterior();
  std::vector<Pfn> pfns;
  if (aligned.empty()) {
    return pfns;
  }
  const Vpn first = VpnOf(aligned.begin);
  const Vpn last = VpnOf(aligned.end);  // One past the final page.
  pfns.reserve(static_cast<size_t>(last - first));
  for (Vpn vpn = first; vpn < last; ++vpn) {
    pfns.push_back(Lookup(vpn));
  }
  if (walk_cost != nullptr) {
    *walk_cost += static_cast<int64_t>(last - first);
  }
  return pfns;
}

}  // namespace javmm
