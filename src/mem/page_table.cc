// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/mem/page_table.h"

#include "src/base/macros.h"

namespace javmm {

PageTable::ExtentMap::const_iterator PageTable::FindExtent(Vpn vpn) const {
  auto it = extents_.upper_bound(vpn);
  if (it == extents_.begin()) {
    return extents_.end();
  }
  --it;
  if (vpn < it->first + static_cast<Vpn>(it->second.pages)) {
    return it;
  }
  return extents_.end();
}

void PageTable::Map(Vpn vpn, Pfn pfn) {
  CHECK_NE(pfn, kInvalidPfn);
  CHECK(FindExtent(vpn) == extents_.end());  // Double-mapping a VPN is a guest-kernel bug.
  // Try to grow the predecessor extent: it must end exactly at `vpn` with
  // its PFN run continuing into `pfn`.
  auto prev = extents_.upper_bound(vpn);
  bool merged_prev = false;
  if (prev != extents_.begin()) {
    --prev;
    if (prev->first + static_cast<Vpn>(prev->second.pages) == vpn &&
        prev->second.first_pfn + prev->second.pages == pfn) {
      prev->second.pages += 1;
      merged_prev = true;
    }
  }
  // Try to absorb the successor extent starting at vpn + 1 with pfn + 1.
  auto next = extents_.find(vpn + 1);
  if (next != extents_.end() && next->second.first_pfn == pfn + 1) {
    if (merged_prev) {
      prev->second.pages += next->second.pages;
      extents_.erase(next);
    } else {
      const Extent absorbed = next->second;
      extents_.erase(next);
      extents_.emplace(vpn, Extent{pfn, absorbed.pages + 1});
    }
  } else if (!merged_prev) {
    extents_.emplace(vpn, Extent{pfn, 1});
  }
  ++mapped_;
}

void PageTable::Unmap(Vpn vpn) {
  auto it = extents_.upper_bound(vpn);
  CHECK(it != extents_.begin());  // Unmapping a never-mapped VPN is a bug.
  --it;
  const Vpn start = it->first;
  const Extent ext = it->second;
  CHECK(vpn < start + static_cast<Vpn>(ext.pages));
  const int64_t offset = static_cast<int64_t>(vpn - start);
  extents_.erase(it);
  if (offset > 0) {
    // Head survives: [start, vpn).
    extents_.emplace(start, Extent{ext.first_pfn, offset});
  }
  if (offset + 1 < ext.pages) {
    // Tail survives: [vpn + 1, start + pages).
    extents_.emplace(vpn + 1, Extent{ext.first_pfn + offset + 1, ext.pages - offset - 1});
  }
  --mapped_;
}

bool PageTable::IsMapped(Vpn vpn) const { return FindExtent(vpn) != extents_.end(); }

Pfn PageTable::Lookup(Vpn vpn) const {
  const auto it = FindExtent(vpn);
  if (it == extents_.end()) {
    return kInvalidPfn;
  }
  return it->second.first_pfn + static_cast<int64_t>(vpn - it->first);
}

Pfn PageTable::LookupRun(Vpn vpn, int64_t max_pages, int64_t* run_pages) const {
  DCHECK_GT(max_pages, 0);
  const auto it = FindExtent(vpn);
  if (it == extents_.end()) {
    *run_pages = 0;
    return kInvalidPfn;
  }
  const int64_t offset = static_cast<int64_t>(vpn - it->first);
  const int64_t left = it->second.pages - offset;
  *run_pages = left < max_pages ? left : max_pages;
  return it->second.first_pfn + offset;
}

std::vector<Pfn> PageTable::WalkRange(const VaRange& range, int64_t* walk_cost) const {
  const VaRange aligned = range.PageAlignedInterior();
  std::vector<Pfn> pfns;
  if (aligned.empty()) {
    return pfns;
  }
  const Vpn first = VpnOf(aligned.begin);
  const Vpn last = VpnOf(aligned.end);  // One past the final page.
  pfns.reserve(static_cast<size_t>(last - first));
  for (Vpn vpn = first; vpn < last; ++vpn) {
    pfns.push_back(Lookup(vpn));
  }
  if (walk_cost != nullptr) {
    // The walk's modeled latency stays per-PTE: extents compress the *store*,
    // not the architectural cost of a real page-table walk.
    *walk_cost += static_cast<int64_t>(last - first);
  }
  return pfns;
}

}  // namespace javmm
