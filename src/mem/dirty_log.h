// Copyright (c) 2026 The JAVMM Reproduction Authors.

#ifndef JAVMM_SRC_MEM_DIRTY_LOG_H_
#define JAVMM_SRC_MEM_DIRTY_LOG_H_

#include <cstdint>
#include <vector>

#include "src/base/perf.h"
#include "src/mem/bitmap.h"
#include "src/mem/types.h"

namespace javmm {

// Hypervisor log-dirty facility, as Xen exposes it to the migration daemon.
//
// While attached to a `GuestPhysicalMemory`, every guest write marks the
// corresponding PFN. The migration daemon uses two access patterns:
//
//   CollectAndClear  -- "read and clear": harvest the set of pages dirtied
//                       since the last harvest; used at each iteration start
//                       to form the iteration's send set.
//   Test (peek)      -- non-destructive check whether a page has been dirtied
//                       *again* since the harvest; used mid-iteration to skip
//                       pages that would be retransmitted anyway ("skipped,
//                       already dirtied" in Fig 9).
class DirtyLog {
 public:
  explicit DirtyLog(int64_t frame_count) : bits_(frame_count) {}

  int64_t frame_count() const { return bits_.size(); }

  // Called by GuestPhysicalMemory on every write while logging is attached.
  void Mark(Pfn pfn) {
    bits_.Set(pfn);
    ++total_marks_;
  }

  // Run form: identical to `pages` Mark calls over [first_pfn,
  // first_pfn+pages) -- same bits, total_marks advances by `pages` whether
  // or not bits were already set -- but the bitmap fill is word-parallel
  // (whole-word stores for interior words) instead of one Set per page.
  void MarkRun(Pfn first_pfn, int64_t pages) {
    bits_.SetRange(first_pfn, first_pfn + pages);
    total_marks_ += pages;
  }

  // Peek: has `pfn` been dirtied since the last CollectAndClear?
  bool Test(Pfn pfn) const { return bits_.Test(pfn); }

  // Batched peek: the 64-bit log word covering `pfn` (bit `pfn & 63` is the
  // page's dirty bit). Scan loops walking ascending PFNs read one word per
  // 64 pages instead of 64 single-bit tests; the word is a snapshot and goes
  // stale as soon as the guest dirties more pages.
  uint64_t PeekWord(Pfn pfn) const { return bits_.Word(pfn >> 6); }

  int64_t CountDirty() const { return bits_.Count(); }

  // Harvests all currently-dirty PFNs into `*out` (ascending) and clears the
  // log. `*out` is cleared first and reused: steady-state harvests run
  // entirely inside the caller's previously-acquired capacity, which is the
  // point -- the old return-by-value shape allocated a fresh vector every
  // live round on the hottest engine path.
  void CollectAndClear(std::vector<Pfn>* out);

  void Clear() { bits_.ClearAll(); }

  // Optional sink for harvest/scan effort counters; may be null.
  void set_perf(PerfCounters* perf) { perf_ = perf; }

  // Total number of Mark calls since construction; proxies the guest's
  // memory-dirtying volume (used for the Fig 1 dirtying-rate series).
  int64_t total_marks() const { return total_marks_; }

 private:
  PageBitmap bits_;
  int64_t total_marks_ = 0;
  PerfCounters* perf_ = nullptr;
};

}  // namespace javmm

#endif  // JAVMM_SRC_MEM_DIRTY_LOG_H_
