// Copyright (c) 2026 The JAVMM Reproduction Authors.

#ifndef JAVMM_SRC_MEM_DIRTY_LOG_H_
#define JAVMM_SRC_MEM_DIRTY_LOG_H_

#include <cstdint>
#include <vector>

#include "src/mem/bitmap.h"
#include "src/mem/types.h"

namespace javmm {

// Hypervisor log-dirty facility, as Xen exposes it to the migration daemon.
//
// While attached to a `GuestPhysicalMemory`, every guest write marks the
// corresponding PFN. The migration daemon uses two access patterns:
//
//   CollectAndClear  -- "read and clear": harvest the set of pages dirtied
//                       since the last harvest; used at each iteration start
//                       to form the iteration's send set.
//   Test (peek)      -- non-destructive check whether a page has been dirtied
//                       *again* since the harvest; used mid-iteration to skip
//                       pages that would be retransmitted anyway ("skipped,
//                       already dirtied" in Fig 9).
class DirtyLog {
 public:
  explicit DirtyLog(int64_t frame_count) : bits_(frame_count) {}

  int64_t frame_count() const { return bits_.size(); }

  // Called by GuestPhysicalMemory on every write while logging is attached.
  void Mark(Pfn pfn) {
    bits_.Set(pfn);
    ++total_marks_;
  }

  // Peek: has `pfn` been dirtied since the last CollectAndClear?
  bool Test(Pfn pfn) const { return bits_.Test(pfn); }

  int64_t CountDirty() const { return bits_.Count(); }

  // Harvests all currently-dirty PFNs (ascending) and clears the log.
  std::vector<Pfn> CollectAndClear();

  void Clear() { bits_.ClearAll(); }

  // Total number of Mark calls since construction; proxies the guest's
  // memory-dirtying volume (used for the Fig 1 dirtying-rate series).
  int64_t total_marks() const { return total_marks_; }

 private:
  PageBitmap bits_;
  int64_t total_marks_ = 0;
};

}  // namespace javmm

#endif  // JAVMM_SRC_MEM_DIRTY_LOG_H_
