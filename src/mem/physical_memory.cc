// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/mem/physical_memory.h"

#include <algorithm>

#include "src/base/macros.h"

namespace javmm {

GuestPhysicalMemory::GuestPhysicalMemory(int64_t bytes) : frame_count_(PagesForBytes(bytes)) {
  CHECK_GT(frame_count_, 0);
  versions_.assign(static_cast<size_t>(frame_count_), 0);
  allocated_.assign(static_cast<size_t>(frame_count_), false);
  free_list_.reserve(static_cast<size_t>(frame_count_));
  // Push in reverse so frames are handed out in ascending PFN order, which
  // makes layouts reproducible and easy to reason about in tests.
  for (Pfn pfn = frame_count_ - 1; pfn >= 0; --pfn) {
    free_list_.push_back(pfn);
  }
}

Pfn GuestPhysicalMemory::AllocateFrame() {
  if (free_list_.empty()) {
    return kInvalidPfn;
  }
  const Pfn pfn = free_list_.back();
  free_list_.pop_back();
  allocated_[static_cast<size_t>(pfn)] = true;
  ++allocated_frames_;
  return pfn;
}

void GuestPhysicalMemory::FreeFrame(Pfn pfn) {
  CHECK(InRange(pfn));
  CHECK(allocated_[static_cast<size_t>(pfn)]);
  allocated_[static_cast<size_t>(pfn)] = false;
  --allocated_frames_;
  free_list_.push_back(pfn);
}

bool GuestPhysicalMemory::IsAllocated(Pfn pfn) const {
  CHECK(InRange(pfn));
  return allocated_[static_cast<size_t>(pfn)];
}

void GuestPhysicalMemory::Write(Pfn pfn) { WriteRun(pfn, 1); }

void GuestPhysicalMemory::WriteRun(Pfn first_pfn, int64_t pages) {
  DCHECK_GT(pages, 0);
  DCHECK(InRange(first_pfn));
  DCHECK(InRange(first_pfn + pages - 1));
  for (int64_t i = 0; i < pages; ++i) {
    ++versions_[static_cast<size_t>(first_pfn + i)];
  }
  total_writes_ += pages;
  if (perf_ != nullptr) {
    perf_->write_runs += 1;
    perf_->pages_written += pages;
  }
  for (DirtyLog* log : dirty_logs_) {
    log->MarkRun(first_pfn, pages);
  }
  for (WriteObserver* observer : write_observers_) {
    observer->OnGuestWriteRun(first_pfn, pages);
  }
}

uint64_t GuestPhysicalMemory::version(Pfn pfn) const {
  CHECK(InRange(pfn));
  return versions_[static_cast<size_t>(pfn)];
}

void GuestPhysicalMemory::AttachDirtyLog(DirtyLog* log) {
  CHECK(log != nullptr);
  CHECK_EQ(log->frame_count(), frame_count_);
  CHECK(std::find(dirty_logs_.begin(), dirty_logs_.end(), log) == dirty_logs_.end());
  dirty_logs_.push_back(log);
}

void GuestPhysicalMemory::DetachDirtyLog(DirtyLog* log) {
  auto it = std::find(dirty_logs_.begin(), dirty_logs_.end(), log);
  if (it != dirty_logs_.end()) {
    dirty_logs_.erase(it);
  }
}

void GuestPhysicalMemory::AttachWriteObserver(WriteObserver* observer) {
  CHECK(observer != nullptr);
  CHECK(std::find(write_observers_.begin(), write_observers_.end(), observer) ==
        write_observers_.end());
  write_observers_.push_back(observer);
}

void GuestPhysicalMemory::DetachWriteObserver(WriteObserver* observer) {
  auto it = std::find(write_observers_.begin(), write_observers_.end(), observer);
  if (it != write_observers_.end()) {
    write_observers_.erase(it);
  }
}

}  // namespace javmm
