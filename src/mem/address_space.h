// Copyright (c) 2026 The JAVMM Reproduction Authors.

#ifndef JAVMM_SRC_MEM_ADDRESS_SPACE_H_
#define JAVMM_SRC_MEM_ADDRESS_SPACE_H_

#include <cstdint>

#include "src/mem/page_table.h"
#include "src/mem/physical_memory.h"
#include "src/mem/types.h"

namespace javmm {

// One guest process's view of memory: a VA space backed by frames from the
// guest's physical memory via a page table.
//
// The JVM heap lives in one process's address space; Write() is the single
// path by which application stores reach physical frames (bumping versions and
// the hypervisor dirty log).
class AddressSpace {
 public:
  explicit AddressSpace(GuestPhysicalMemory* memory);
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;
  ~AddressSpace();

  // Reserves `bytes` of virtual address space (page-granular) without backing
  // frames; analogous to an mmap(PROT_NONE) region the heap grows into.
  VaRange ReserveVa(int64_t bytes);

  // Backs [start, start+bytes) with freshly allocated frames, zeroing them
  // (each committed page counts as one write, as the kernel's clear_page
  // does). The range must be page-aligned and not currently committed.
  // Returns false (committing nothing) if physical memory is exhausted.
  bool CommitRange(VirtAddr start, int64_t bytes);

  // Releases frames backing the page-aligned range [start, start+bytes);
  // every page must be committed. After this, walks over the range see
  // non-present PTEs -- the "PFNs reclaimed, no longer found in the page
  // tables" situation of §3.3.4.
  void DecommitRange(VirtAddr start, int64_t bytes);

  bool IsCommitted(VirtAddr va) const;

  // Moves the page containing `va` to a freshly allocated frame (content is
  // "copied": the new frame is written) and frees the old frame. Models
  // in-guest page migration/compaction/CoW breaks -- the PFN-remap events of
  // §3.3.4 case (2). Returns the new frame, or kInvalidPfn if memory is
  // exhausted (the page is then left untouched).
  Pfn RemapPage(VirtAddr va);

  // Stores `bytes` bytes starting at `va`: bumps the version of (and dirties)
  // every page the span touches. The range must be committed.
  //
  // Run fast path (DESIGN.md §15): the span is coalesced into maximal
  // contiguous-PFN runs via PageTable::LookupRun -- one table probe per run
  // instead of one per page -- and each run flows through
  // GuestPhysicalMemory::WriteRun. Dirty semantics are byte-identical to a
  // per-page loop in ascending VPN order.
  void WriteRange(VirtAddr va, int64_t bytes);
  void Write(VirtAddr va, int64_t bytes) { WriteRange(va, bytes); }

  // Single-page store, e.g. a field update.
  void Touch(VirtAddr va) { WriteRange(va, 1); }

  const PageTable& page_table() const { return page_table_; }
  PageTable& page_table() { return page_table_; }
  GuestPhysicalMemory& memory() { return *memory_; }

  int64_t committed_bytes() const {
    return static_cast<int64_t>(page_table_.mapped_count()) * kPageSize;
  }

 private:
  GuestPhysicalMemory* memory_;
  PageTable page_table_;
  VirtAddr next_va_;  // Bump allocator for ReserveVa.
};

}  // namespace javmm

#endif  // JAVMM_SRC_MEM_ADDRESS_SPACE_H_
