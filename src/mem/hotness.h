// Copyright (c) 2026 The JAVMM Reproduction Authors.
//
// Per-page hotness scoring for pre-copy transfer ordering (DESIGN.md §12).
//
// The tracker observes guest stores (it is a WriteObserver on the same
// choke point the dirty log uses) and maintains one integer score per PFN.
// Scores follow the xen-tokyo migration engine's register_page_access
// shape: a page counts as "accessed" in a round when it received at least
// `min_rate` stores, each accessed round adds a fixed boost, and every
// round the score decays exponentially by a right shift of `decay` bits.
// A page is *hot* when its score reaches `min_score`.
//
// Determinism contract: this file is integer-only end to end -- scores,
// decay, and the config parser never touch floating point. javmm-lint
// enforces this with a whole-file float-export scope on src/mem/hotness*
// (see src/lint/rules.cc); converting the decay to a float multiplier is
// a build error, not a review comment.

#ifndef JAVMM_SRC_MEM_HOTNESS_H_
#define JAVMM_SRC_MEM_HOTNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/time.h"
#include "src/mem/physical_memory.h"
#include "src/mem/types.h"

namespace javmm {

// Knobs for the hotness score and the hot-page deferral policy. Disabled by
// default: a default-constructed config leaves the engine byte-identical to
// the pre-hotness behaviour.
struct HotnessConfig {
  bool enabled = false;

  // A page must see at least this many stores in one round to count as
  // accessed that round (xen-tokyo min_rate). 0 = every touched page counts.
  int64_t min_rate = 2;

  // Score threshold at or above which a page is hot (xen-tokyo min_score).
  // Must be >= 1 so an untouched page (score 0) is never hot.
  int64_t min_score = 8;

  // Per-round exponential decay, applied as score >>= decay. Must be >= 1
  // so every score eventually cools back to zero.
  int64_t decay = 1;

  // Downtime budget for deferred pages: the engine parks at most as many
  // hot pages as fit through the link in this much time, so the deferral
  // can never blow the pause budget.
  Duration defer_budget = Duration::Millis(500);

  // Parses a compact spec into *out. Grammar (comma-separated clauses):
  //   "on"                          -- enable with defaults
  //   "off" / ""                    -- disabled
  //   "rate:N,score:N,decay:N"      -- enable and override knobs
  //   "budget:500ms"                -- defer budget (ns/us/ms/s suffix)
  // Returns false and sets *error on malformed input; out-of-range values
  // (negative rate, score < 1, decay < 1, budget <= 0) are parse errors so
  // every front end rejects them identically.
  static bool Parse(const std::string& spec, HotnessConfig* out, std::string* error);
};

// Integer per-PFN access-frequency tracker. Attach to GuestPhysicalMemory as
// a WriteObserver; call EndRound() once per pre-copy iteration to fold the
// round's touch counts into the decayed scores.
class HotnessTracker : public WriteObserver {
 public:
  HotnessTracker(int64_t frames, const HotnessConfig& config);

  // Rewinds the tracker to its freshly-constructed state (all scores and
  // touch counts zero, round counter reset) while keeping the SoA score
  // arrays' storage, so an engine reused for back-to-back migrations does
  // not reallocate two frames-sized vectors per run.
  void Reset(const HotnessConfig& config);

  int64_t frames() const { return static_cast<int64_t>(scores_.size()); }

  // WriteObserver: one guest store to pfn.
  void OnGuestWrite(Pfn pfn) override;

  // WriteObserver run form: same touch counts as `pages` OnGuestWrite calls
  // over [first_pfn, first_pfn+pages), without the per-page virtual dispatch.
  void OnGuestWriteRun(Pfn first_pfn, int64_t pages) override;

  // Folds this round's touch counts into the scores: every score decays by
  // score >>= decay, then accessed pages (touches >= min_rate, and at least
  // one store) gain kAccessBoost. Touch counts reset for the next round.
  void EndRound();

  int64_t score(Pfn pfn) const { return scores_[static_cast<size_t>(pfn)]; }
  bool IsHot(Pfn pfn) const { return score(pfn) >= config_.min_score; }
  int64_t rounds() const { return rounds_; }

  // Score added per accessed round, post-decay. One accessed round scores
  // kAccessBoost; a page accessed every round converges to 15 (decay=1),
  // and cools toward zero in ~log2(score) idle rounds.
  static constexpr int64_t kAccessBoost = 8;

  // Scores saturate here so a page hot for thousands of rounds still cools
  // in at most ~log2(kScoreCap) idle rounds.
  static constexpr int64_t kScoreCap = 1 << 20;

 private:
  HotnessConfig config_;
  std::vector<int64_t> scores_;   // Decayed accumulated score, per PFN.
  std::vector<int64_t> touches_;  // Stores seen this round, per PFN.
  int64_t rounds_ = 0;
};

}  // namespace javmm

#endif  // JAVMM_SRC_MEM_HOTNESS_H_
