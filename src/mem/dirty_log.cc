// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/mem/dirty_log.h"

namespace javmm {

std::vector<Pfn> DirtyLog::CollectAndClear() {
  std::vector<Pfn> out;
  bits_.CollectSetBits(&out);
  bits_.ClearAll();
  return out;
}

}  // namespace javmm
