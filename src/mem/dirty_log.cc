// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/mem/dirty_log.h"

#include "src/base/units.h"

namespace javmm {

void DirtyLog::CollectAndClear(std::vector<Pfn>* out) {
  out->clear();
  const int64_t dirty = bits_.Count();
  NoteReserve(*out, dirty, perf_);
  out->reserve(static_cast<size_t>(dirty));
  bits_.CollectSetBitsAndClear(out);
  if (perf_ != nullptr) {
    perf_->harvests += 1;
    perf_->pages_harvested += dirty;
    perf_->bytes_harvested += CheckedMul(dirty, kPageSize);
    // Two word sweeps per harvest: the Count() pre-pass (for the exact
    // reserve) and the collect-and-clear pass itself.
    perf_->dirty_word_scans += 2 * bits_.WordCount();
  }
}

}  // namespace javmm
