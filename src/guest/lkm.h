// Copyright (c) 2026 The JAVMM Reproduction Authors.
// The Loadable Kernel Module at the centre of the framework (§3.3).
//
// The LKM bridges the communication gap (event channel to the migration
// daemon, netlink multicast to applications) and the semantic gap (VA->PFN
// page-table walks), and owns the transfer bitmap that guides the daemon.
// It transitions through the states of Figure 4 and implements the update
// policy of §3.3.4:
//
//   * first update      -- on kMigrationStarted: query apps, clear transfer
//                          bits of the pages inside each skip-over area,
//                          populate the PFN cache.
//   * shrink (anytime)  -- immediate: set transfer bits of the pages leaving
//                          the area, using the PFN cache (page tables can no
//                          longer resolve reclaimed pages).
//   * expand (anytime)  -- deferred: nothing until the final update.
//   * final update      -- on suspension-ready: diff freshly-reported areas
//                          against remembered ranges; walk page tables for
//                          expanded space (clear bits), consult the cache for
//                          shrunk space (set bits), and set the bits of the
//                          must-transfer ranges (JAVMM: the occupied From
//                          space "leaving" the young generation).

#ifndef JAVMM_SRC_GUEST_LKM_H_
#define JAVMM_SRC_GUEST_LKM_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "src/base/time.h"
#include "src/guest/messages.h"
#include "src/guest/va_range_set.h"
#include "src/mem/bitmap.h"
#include "src/sim/event_queue.h"

namespace javmm {

class GuestKernel;
class TraceRecorder;

// How the LKM keeps the transfer bitmap consistent with skip-over areas that
// change during migration (§3.3.4).
enum class BitmapUpdateMode {
  // The paper's implemented design: applications notify shrinks immediately
  // (bits set via the PFN cache); expansions are deferred to the final
  // update, which diffs the freshly-reported ranges against the remembered
  // ones.
  kIncremental,
  // The paper's *alternative* approach (described but deferred): no shrink
  // notifications required; the final update re-walks the page tables of
  // every skip-over area and reconciles against the PFNs cached by the first
  // update. Fewer runtime obligations for applications, but the full re-walk
  // lands inside the suspension window, lengthening the final update. The
  // daemon must then treat every ever-skipped page whose bit is set again as
  // pending (our engine already does).
  kFinalRewalk,
};

// Per-page compression hint -- the §6 "transfer bitmap can use multiple bits
// per VM memory page to indicate the suitable compression methods" idea.
// Applications annotate their memory; the daemon picks a compressor (or none)
// per page instead of paying trial compression on incompressible data.
enum class CompressionClass : uint8_t {
  kNormal = 0,          // Unknown content: general-purpose compressor.
  kIncompressible = 1,  // Encrypted/compressed payloads: send raw.
  kHighlyCompressible = 2,  // Pointer-rich heap data, zero-heavy regions.
};

struct LkmConfig {
  BitmapUpdateMode update_mode = BitmapUpdateMode::kIncremental;

  // How long the LKM waits for all applications to report suspension-ready
  // before proceeding without the stragglers (§6 "enhance for security"). A
  // straggler's skip-over areas are revoked (bits re-set) so its memory is
  // migrated conventionally.
  // Sized above the slowest legitimate preparation (safepoint wait + enforced
  // GC + a possible piggybacked full GC).
  Duration straggler_timeout = Duration::Seconds(10);

  // Cost model for the final bitmap update, reported to the daemon as part of
  // downtime; the paper measures the final update at < 300 us.
  Duration per_pte_walk_cost = Duration::Nanos(50);
  Duration per_cache_op_cost = Duration::Nanos(20);

  // Parallel final update (§3.3.4: "exploring its acceleration by using
  // parallelism"): page-table walks and cache reconciliation partition
  // cleanly across threads, so the modelled duration divides by this.
  int final_update_threads = 1;
};

class Lkm {
 public:
  // LKM operating states (Figure 4). kResumed is transient: the LKM notifies
  // applications and immediately returns to kInitialized.
  enum class State {
    kInitialized,
    kMigrationStarted,
    kEnteringLastIter,
    kSuspensionReady,
  };

  Lkm(GuestKernel* kernel, const LkmConfig& config);
  Lkm(const Lkm&) = delete;
  Lkm& operator=(const Lkm&) = delete;

  // ---- Event-channel receive path (migration daemon -> LKM). ----
  void OnDaemonMessage(DaemonToLkm msg);

  // ---- Application-facing API (/proc writes + netlink unicasts). ----

  // Response to kQuerySkipOverAreas: the app's current skip-over areas.
  // Performs the app's share of the first transfer-bitmap update.
  void ReportSkipOverAreas(AppId pid, const std::vector<VaRange>& areas);

  // A skip-over area shrank: `left` is the VA range that left the area.
  // Applied immediately (correctness requires it, §3.3.4).
  void NotifyAreaShrunk(AppId pid, const VaRange& left);

  // Response to kPrepareForSuspension: the app finished its preparation (for
  // JAVMM: the enforced minor GC completed and threads are held at the
  // safepoint). Carries the areas' current ranges for the final update.
  void NotifySuspensionReady(AppId pid, const SuspensionReadyInfo& info);

  // Annotates the mapped interior pages of `range` with a compression class
  // (multi-bit transfer-map extension, §6). Valid any time; hints persist
  // across migrations until re-annotated.
  void AnnotateCompression(AppId pid, const VaRange& range, CompressionClass cls);

  // ---- Shared state read by the migration daemon. ----
  const PageBitmap& transfer_bitmap() const { return transfer_bitmap_; }
  const LkmConfig& config() const { return config_; }

  // PFNs whose skip listing was *revoked* this migration (straggler timeout,
  // §6): their contents were skipped on a promise the application never
  // honoured, so the daemon must re-transfer them at stop-and-copy. Distinct
  // from pages that legitimately left an area (whose reuse is covered by the
  // zeroing commit + dirty log).
  const std::vector<Pfn>& revoked_pfns() const { return revoked_pfns_; }
  CompressionClass compression_class(Pfn pfn) const {
    return static_cast<CompressionClass>(compression_classes_[static_cast<size_t>(pfn)]);
  }
  State state() const { return state_; }

  // Duration of the most recent final bitmap update (downtime component).
  Duration last_final_update_duration() const { return final_update_duration_; }

  // Attaches a migration trace: state transitions and protocol violations
  // are recorded while set. The migration daemon attaches its recorder for
  // the duration of each Migrate() and detaches on every exit path.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  // ---- Introspection / overhead accounting (§5.3). ----
  int64_t transfer_bitmap_bytes() const { return transfer_bitmap_.MemoryUsageBytes(); }
  int64_t pfn_cache_bytes() const;  // 4 bytes/entry, as in the paper.
  int64_t total_ptes_walked() const { return total_ptes_walked_; }
  int64_t stragglers_timed_out() const { return stragglers_timed_out_; }
  int64_t protocol_violations() const { return protocol_violations_; }

 private:
  struct AppRecord {
    VaRangeSet areas;  // Remembered (page-aligned) skip-over ranges.
    // PFN cache: pages whose transfer bits this app had cleared. Keyed by VPN
    // so shrink notices resolve without page-table walks (§3.3.4). An ordered
    // map, deliberately: straggler revocation and the final-rewalk
    // reconciliation iterate this cache and append to revoked_pfns_, which
    // the daemon consumes -- hash order here would leak host-dependent
    // ordering into a migration-visible vector (javmm-lint: unordered-iter).
    std::map<Vpn, Pfn> pfn_cache;
    bool ready = false;
    SuspensionReadyInfo ready_info;
  };

  void HandleMigrationStarted();
  void HandleEnteringLastIter();
  void HandleVmResumedOrAborted(bool resumed);
  void EnterState(State state);      // Transition + trace record.
  void NoteProtocolViolation(int32_t detail);
  void OnStragglerTimeout();
  void FinalizeBitmapAndNotifyDaemon();

  // kFinalRewalk final update for one app: re-walk every fresh skip-over
  // range and reconcile the transfer bitmap against the first update's PFNs.
  void RewalkAreasForApp(AppId pid, AppRecord& rec, const VaRangeSet& fresh,
                         int64_t* cache_ops);

  // Clears transfer bits for the mapped interior pages of `range` (walking
  // `pid`'s page table) and caches the PFNs found. Returns pages cleared.
  int64_t ClearBitsForRange(AppId pid, AppRecord& rec, const VaRange& range, int64_t* cache_ops);

  // Sets transfer bits for all cached pages of `rec` overlapping `range`
  // (outward-aligned) and drops them from the cache. Returns pages set.
  // When `revoked` is non-null, the re-enabled PFNs are appended to it: the
  // daemon must re-transfer them at stop-and-copy because their dirty-log
  // records may have been consumed while they were skip-listed.
  int64_t SetBitsForRange(AppRecord& rec, const VaRange& range, int64_t* cache_ops,
                          std::vector<Pfn>* revoked = nullptr);

  GuestKernel* kernel_;
  LkmConfig config_;
  TraceRecorder* trace_ = nullptr;
  State state_ = State::kInitialized;
  PageBitmap transfer_bitmap_;
  std::vector<uint8_t> compression_classes_;
  std::map<AppId, AppRecord> apps_;  // Ordered => deterministic finalisation.
  std::vector<AppId> awaiting_ready_;
  std::optional<EventQueue::EventId> straggler_timer_;
  Duration final_update_duration_ = Duration::Zero();
  std::vector<Pfn> revoked_pfns_;
  int64_t total_ptes_walked_ = 0;
  int64_t stragglers_timed_out_ = 0;
  int64_t protocol_violations_ = 0;
};

}  // namespace javmm

#endif  // JAVMM_SRC_GUEST_LKM_H_
