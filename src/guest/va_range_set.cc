// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/guest/va_range_set.h"

#include <algorithm>

#include "src/base/macros.h"

namespace javmm {

void VaRangeSet::Add(const VaRange& r) {
  if (r.empty()) {
    return;
  }
  VirtAddr begin = r.begin;
  VirtAddr end = r.end;
  // Find the first range that could overlap or touch [begin, end).
  auto it = ranges_.upper_bound(begin);
  if (it != ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= begin) {
      begin = prev->first;
      end = std::max(end, prev->second);
      it = ranges_.erase(prev);
    }
  }
  while (it != ranges_.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = ranges_.erase(it);
  }
  ranges_.emplace(begin, end);
}

void VaRangeSet::Subtract(const VaRange& r) {
  if (r.empty()) {
    return;
  }
  auto it = ranges_.upper_bound(r.begin);
  if (it != ranges_.begin()) {
    --it;
  }
  while (it != ranges_.end() && it->first < r.end) {
    const VirtAddr b = it->first;
    const VirtAddr e = it->second;
    if (e <= r.begin) {
      ++it;
      continue;
    }
    it = ranges_.erase(it);
    if (b < r.begin) {
      ranges_.emplace(b, r.begin);
    }
    if (e > r.end) {
      it = ranges_.emplace(r.end, e).first;
      ++it;
    }
  }
}

bool VaRangeSet::Contains(VirtAddr va) const {
  auto it = ranges_.upper_bound(va);
  if (it == ranges_.begin()) {
    return false;
  }
  --it;
  return va < it->second;
}

int64_t VaRangeSet::TotalBytes() const {
  int64_t total = 0;
  for (const auto& [b, e] : ranges_) {
    total += static_cast<int64_t>(e - b);
  }
  return total;
}

std::vector<VaRange> VaRangeSet::Ranges() const {
  std::vector<VaRange> out;
  out.reserve(ranges_.size());
  for (const auto& [b, e] : ranges_) {
    out.push_back(VaRange{b, e});
  }
  return out;
}

std::vector<VaRange> VaRangeSet::IntersectionWith(const VaRange& r) const {
  std::vector<VaRange> out;
  if (r.empty()) {
    return out;
  }
  auto it = ranges_.upper_bound(r.begin);
  if (it != ranges_.begin()) {
    --it;
  }
  for (; it != ranges_.end() && it->first < r.end; ++it) {
    const VirtAddr b = std::max(it->first, r.begin);
    const VirtAddr e = std::min(it->second, r.end);
    if (b < e) {
      out.push_back(VaRange{b, e});
    }
  }
  return out;
}

std::vector<VaRange> VaRangeSet::ComplementWithin(const VaRange& r) const {
  std::vector<VaRange> out;
  if (r.empty()) {
    return out;
  }
  VirtAddr cursor = r.begin;
  for (const VaRange& hit : IntersectionWith(r)) {
    if (hit.begin > cursor) {
      out.push_back(VaRange{cursor, hit.begin});
    }
    cursor = hit.end;
  }
  if (cursor < r.end) {
    out.push_back(VaRange{cursor, r.end});
  }
  return out;
}

std::vector<VaRange> VaRangeSet::Minus(const VaRangeSet& other) const {
  std::vector<VaRange> out;
  for (const auto& [b, e] : ranges_) {
    for (const VaRange& piece : other.ComplementWithin(VaRange{b, e})) {
      out.push_back(piece);
    }
  }
  return out;
}

}  // namespace javmm
