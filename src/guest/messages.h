// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Message vocabulary of the application-assisted migration framework (Fig 4).
//
// Three channels exist in the paper's prototype:
//   * Xen event channel: migration daemon <-> LKM (control notifications).
//   * netlink multicast: LKM -> all subscribed applications.
//   * /proc entry + netlink unicast: application -> LKM (skip-over areas,
//     shrink notices, suspension-ready notices).
//
// We keep the same topology; payloads are typed structs rather than byte
// buffers since nothing in the protocol depends on serialisation.

#ifndef JAVMM_SRC_GUEST_MESSAGES_H_
#define JAVMM_SRC_GUEST_MESSAGES_H_

#include <cstdint>
#include <vector>

#include "src/mem/types.h"

namespace javmm {

// Guest process identifier (the netlink peer).
using AppId = int64_t;
inline constexpr AppId kInvalidAppId = -1;

// Migration daemon -> LKM, over the event channel.
enum class DaemonToLkm {
  kMigrationStarted,   // Daemon connected; begin first bitmap update.
  kEnteringLastIter,   // Daemon wants to pause the VM; ask apps to prepare.
  kVmResumed,          // Last iteration done; VM active at the destination.
  kMigrationAborted,   // Migration failed/cancelled; revert to INITIALIZED.
};

// LKM -> migration daemon, over the event channel.
enum class LkmToDaemon {
  kSuspensionReady,  // Final bitmap update done; daemon may pause the VM.
};

// LKM -> applications, netlink multicast.
enum class NetlinkMessageType {
  kQuerySkipOverAreas,    // "skip-over areas?" -- reply via ReportSkipOverAreas.
  kPrepareForSuspension,  // "prep. for suspension!" -- also re-queries areas.
  kVmResumed,             // "VM resumed!" -- recover / consider areas empty.
};

struct NetlinkMessage {
  NetlinkMessageType type;
};

// Application -> LKM payload accompanying the suspension-ready notice.
//
// `skip_over_areas` are the areas' *current* VA ranges (needed by the final
// bitmap update, §3.3.4). `must_transfer` marks sub-ranges inside skip-over
// areas whose contents must nevertheless reach the destination -- for JAVMM
// this is the occupied From space holding the data that survived the enforced
// GC (§4.3.2); the LKM treats these pages as "leaving" the skip-over area.
struct SuspensionReadyInfo {
  std::vector<VaRange> skip_over_areas;
  std::vector<VaRange> must_transfer;
};

}  // namespace javmm

#endif  // JAVMM_SRC_GUEST_MESSAGES_H_
