// Copyright (c) 2026 The JAVMM Reproduction Authors.

#ifndef JAVMM_SRC_GUEST_NETLINK_BUS_H_
#define JAVMM_SRC_GUEST_NETLINK_BUS_H_

#include <map>

#include "src/guest/messages.h"

namespace javmm {

// Subscriber side of the LKM's netlink socket: an application that joined the
// multicast group (§3.3.1).
class NetlinkSubscriber {
 public:
  virtual ~NetlinkSubscriber() = default;

  // Delivery of a multicast message from the LKM. Applications respond by
  // calling back into the LKM (the /proc entry or a netlink unicast); a
  // non-cooperative application may simply ignore the message.
  virtual void OnNetlinkMessage(const NetlinkMessage& msg) = 0;
};

// The kernel-side netlink socket with one multicast group. The LKM multicasts
// a message and every subscriber receives it; subscriber iteration order is
// the subscription order, so runs are deterministic.
class NetlinkBus {
 public:
  // Subscribes `app` under process id `pid`. One subscription per pid.
  void Subscribe(AppId pid, NetlinkSubscriber* app);
  void Unsubscribe(AppId pid);

  // Multicasts `msg` to every subscriber. Subscribers may respond re-entrantly
  // (call LKM methods) during delivery, or later in simulated time.
  void Multicast(const NetlinkMessage& msg);

  size_t subscriber_count() const { return subscribers_.size(); }
  bool IsSubscribed(AppId pid) const { return subscribers_.count(pid) != 0; }

  // Snapshot of current subscriber pids (ascending).
  std::vector<AppId> SubscriberIds() const;

 private:
  std::map<AppId, NetlinkSubscriber*> subscribers_;  // Ordered => deterministic.
};

}  // namespace javmm

#endif  // JAVMM_SRC_GUEST_NETLINK_BUS_H_
