// Copyright (c) 2026 The JAVMM Reproduction Authors.

#ifndef JAVMM_SRC_GUEST_VA_RANGE_SET_H_
#define JAVMM_SRC_GUEST_VA_RANGE_SET_H_

#include <map>
#include <vector>

#include "src/mem/types.h"

namespace javmm {

// A set of guest-virtual addresses kept as sorted, coalesced, non-overlapping
// half-open ranges. The LKM uses one per application to remember the VA
// ranges of its skip-over areas (§3.3.4): shrink notices subtract from the
// set; the final bitmap update diffs the freshly-reported ranges against it
// to find expanded and shrunk space.
class VaRangeSet {
 public:
  VaRangeSet() = default;

  void Add(const VaRange& r);
  void Subtract(const VaRange& r);
  void Clear() { ranges_.clear(); }

  bool Contains(VirtAddr va) const;
  bool empty() const { return ranges_.empty(); }
  int64_t TotalBytes() const;

  // Current ranges in ascending order.
  std::vector<VaRange> Ranges() const;

  // Portions of `r` that are in / not in the set, in ascending order.
  std::vector<VaRange> IntersectionWith(const VaRange& r) const;
  std::vector<VaRange> ComplementWithin(const VaRange& r) const;

  // Set-difference against another set, returned as ranges: *this \ other.
  std::vector<VaRange> Minus(const VaRangeSet& other) const;

 private:
  // begin -> end; invariants: non-empty, non-overlapping, non-adjacent.
  std::map<VirtAddr, VirtAddr> ranges_;
};

}  // namespace javmm

#endif  // JAVMM_SRC_GUEST_VA_RANGE_SET_H_
