// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/guest/guest_kernel.h"

#include "src/base/macros.h"
#include "src/guest/lkm.h"

namespace javmm {

GuestKernel::GuestKernel(GuestPhysicalMemory* memory, SimClock* clock)
    : memory_(memory), clock_(clock) {
  CHECK(memory != nullptr);
  CHECK(clock != nullptr);
}

GuestKernel::~GuestKernel() = default;

AppId GuestKernel::CreateProcess(std::string name) {
  processes_.push_back(
      ProcessRecord{std::move(name), std::make_unique<AddressSpace>(memory_)});
  return static_cast<AppId>(processes_.size() - 1);
}

AddressSpace& GuestKernel::address_space(AppId pid) {
  CHECK_GE(pid, 0);
  CHECK_LT(pid, static_cast<AppId>(processes_.size()));
  return *processes_[static_cast<size_t>(pid)].space;
}

const std::string& GuestKernel::process_name(AppId pid) const {
  CHECK_GE(pid, 0);
  CHECK_LT(pid, static_cast<AppId>(processes_.size()));
  return processes_[static_cast<size_t>(pid)].name;
}

Lkm& GuestKernel::LoadLkm(const LkmConfig& config) {
  CHECK(lkm_ == nullptr);
  lkm_ = std::make_unique<Lkm>(this, config);
  return *lkm_;
}

}  // namespace javmm
