// Copyright (c) 2026 The JAVMM Reproduction Authors.

#ifndef JAVMM_SRC_GUEST_EVENT_CHANNEL_H_
#define JAVMM_SRC_GUEST_EVENT_CHANNEL_H_

#include <functional>

#include "src/guest/messages.h"

namespace javmm {

// The dedicated Xen event-channel port connecting the migration daemon (in
// domain 0) with the LKM (in the guest), created when the guest VM is created
// (§3.3.1). Delivery is an immediate upcall into the registered handler --
// event channels are interrupt-like notifications, not queues.
class EventChannel {
 public:
  using GuestHandler = std::function<void(DaemonToLkm)>;
  using DaemonHandler = std::function<void(LkmToDaemon)>;

  // Guest (LKM) side registers to receive daemon notifications.
  void BindGuestHandler(GuestHandler handler) { guest_handler_ = std::move(handler); }

  // Daemon side registers to receive LKM notifications.
  void BindDaemonHandler(DaemonHandler handler) { daemon_handler_ = std::move(handler); }
  void UnbindDaemonHandler() { daemon_handler_ = nullptr; }

  // Daemon -> LKM. Silently dropped if no LKM is bound (e.g. the guest never
  // loaded the module) -- the daemon must cope via timeouts, as in §6.
  void NotifyGuest(DaemonToLkm msg) {
    if (guest_handler_) {
      guest_handler_(msg);
    }
  }

  // LKM -> daemon.
  void NotifyDaemon(LkmToDaemon msg) {
    if (daemon_handler_) {
      daemon_handler_(msg);
    }
  }

  bool guest_bound() const { return static_cast<bool>(guest_handler_); }
  bool daemon_bound() const { return static_cast<bool>(daemon_handler_); }

 private:
  GuestHandler guest_handler_;
  DaemonHandler daemon_handler_;
};

// Binds a daemon handler for the duration of a scope. The migration daemon's
// handler typically captures `this` of a stack- or heap-allocated engine, so
// leaving it bound past the migration would dangle; this guarantees the
// unbind on every exit path (complete, abort, fallback, exception).
class ScopedDaemonBinding {
 public:
  ScopedDaemonBinding(EventChannel* channel, EventChannel::DaemonHandler handler)
      : channel_(channel) {
    channel_->BindDaemonHandler(std::move(handler));
  }
  ~ScopedDaemonBinding() { channel_->UnbindDaemonHandler(); }
  ScopedDaemonBinding(const ScopedDaemonBinding&) = delete;
  ScopedDaemonBinding& operator=(const ScopedDaemonBinding&) = delete;

 private:
  EventChannel* channel_;
};

}  // namespace javmm

#endif  // JAVMM_SRC_GUEST_EVENT_CHANNEL_H_
