// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/guest/lkm.h"

#include <algorithm>

#include "src/base/macros.h"
#include "src/guest/guest_kernel.h"
#include "src/trace/trace.h"

namespace javmm {

Lkm::Lkm(GuestKernel* kernel, const LkmConfig& config)
    : kernel_(kernel),
      config_(config),
      transfer_bitmap_(kernel->memory().frame_count(), /*initial=*/true),
      compression_classes_(static_cast<size_t>(kernel->memory().frame_count()),
                           static_cast<uint8_t>(CompressionClass::kNormal)) {
  // Initialised with all bits set: by default every dirty page is transferred
  // (§3.3.4). The event channel binding makes the LKM reachable by the daemon.
  kernel_->event_channel().BindGuestHandler([this](DaemonToLkm msg) { OnDaemonMessage(msg); });
}

void Lkm::OnDaemonMessage(DaemonToLkm msg) {
  switch (msg) {
    case DaemonToLkm::kMigrationStarted:
      HandleMigrationStarted();
      return;
    case DaemonToLkm::kEnteringLastIter:
      HandleEnteringLastIter();
      return;
    case DaemonToLkm::kVmResumed:
      HandleVmResumedOrAborted(/*resumed=*/true);
      return;
    case DaemonToLkm::kMigrationAborted:
      HandleVmResumedOrAborted(/*resumed=*/false);
      return;
  }
  JAVMM_UNREACHABLE("unknown daemon message");
}

void Lkm::EnterState(State state) {
  state_ = state;
  if (trace_ != nullptr) {
    trace_->Record(TraceEvent{TraceEventKind::kLkmState, kernel_->clock().now(), 0,
                              static_cast<int32_t>(state), 0, 0, 0, Duration::Zero()});
  }
}

void Lkm::NoteProtocolViolation(int32_t detail) {
  ++protocol_violations_;
  if (trace_ != nullptr) {
    trace_->Record(TraceEvent{TraceEventKind::kProtocolViolation, kernel_->clock().now(), 0,
                              detail, 0, 0, 0, Duration::Zero()});
  }
}

void Lkm::HandleMigrationStarted() {
  if (state_ != State::kInitialized) {
    // A second migration while one is in flight is a daemon bug; a restart
    // after abort goes through kInitialized.
    NoteProtocolViolation(static_cast<int32_t>(DaemonToLkm::kMigrationStarted));
    return;
  }
  apps_.clear();
  transfer_bitmap_.SetAll();
  final_update_duration_ = Duration::Zero();
  revoked_pfns_.clear();
  EnterState(State::kMigrationStarted);
  // First transfer-bitmap update: query running applications for skip-over
  // areas. Cooperative apps respond re-entrantly (or shortly after) through
  // ReportSkipOverAreas.
  kernel_->netlink().Multicast(NetlinkMessage{NetlinkMessageType::kQuerySkipOverAreas});
}

void Lkm::ReportSkipOverAreas(AppId pid, const std::vector<VaRange>& areas) {
  if (state_ != State::kMigrationStarted) {
    NoteProtocolViolation(-1);
    return;
  }
  AppRecord& rec = apps_[pid];
  int64_t cache_ops = 0;
  for (const VaRange& area : areas) {
    const VaRange aligned = area.PageAlignedInterior();
    if (aligned.empty()) {
      continue;
    }
    rec.areas.Add(aligned);
    ClearBitsForRange(pid, rec, aligned, &cache_ops);
  }
}

void Lkm::NotifyAreaShrunk(AppId pid, const VaRange& left) {
  if (config_.update_mode == BitmapUpdateMode::kFinalRewalk) {
    // The alternative approach performs no updates between the first and the
    // final one; shrink notices are not required and simply ignored.
    return;
  }
  if (state_ != State::kMigrationStarted) {
    // §3.3.4: areas must not shrink in the final-update window; a shrink
    // notice outside migration is meaningless. Count and ignore.
    NoteProtocolViolation(-2);
    return;
  }
  auto it = apps_.find(pid);
  if (it == apps_.end()) {
    NoteProtocolViolation(-2);
    return;
  }
  AppRecord& rec = it->second;
  int64_t cache_ops = 0;
  // Immediately set the transfer bits of the pages leaving the area so that
  // later dirtying of those pages is migrated (correctness, §3.3.4). The PFN
  // cache resolves pages whose frames were already reclaimed.
  SetBitsForRange(rec, left, &cache_ops);
  rec.areas.Subtract(left);
}

void Lkm::HandleEnteringLastIter() {
  if (state_ != State::kMigrationStarted) {
    NoteProtocolViolation(static_cast<int32_t>(DaemonToLkm::kEnteringLastIter));
    return;
  }
  EnterState(State::kEnteringLastIter);
  awaiting_ready_ = kernel_->netlink().SubscriberIds();
  if (awaiting_ready_.empty()) {
    // No assisting applications: nothing to prepare; proceed immediately.
    FinalizeBitmapAndNotifyDaemon();
    return;
  }
  straggler_timer_ = kernel_->clock().events().Schedule(
      kernel_->clock().now() + config_.straggler_timeout, [this] { OnStragglerTimeout(); });
  kernel_->netlink().Multicast(NetlinkMessage{NetlinkMessageType::kPrepareForSuspension});
}

void Lkm::NotifySuspensionReady(AppId pid, const SuspensionReadyInfo& info) {
  if (state_ != State::kEnteringLastIter) {
    NoteProtocolViolation(-3);
    return;
  }
  auto it = std::find(awaiting_ready_.begin(), awaiting_ready_.end(), pid);
  if (it == awaiting_ready_.end()) {
    NoteProtocolViolation(-3);
    return;
  }
  awaiting_ready_.erase(it);
  AppRecord& rec = apps_[pid];
  rec.ready = true;
  rec.ready_info = info;
  if (awaiting_ready_.empty()) {
    FinalizeBitmapAndNotifyDaemon();
  }
}

void Lkm::OnStragglerTimeout() {
  straggler_timer_.reset();
  CHECK_EQ(static_cast<int>(state_), static_cast<int>(State::kEnteringLastIter));
  // Revoke the skip-over areas of every application that failed to respond:
  // re-set the transfer bits of all pages it had cleared so its memory is
  // migrated conventionally. This bounds migration delay (§6).
  for (AppId pid : awaiting_ready_) {
    auto it = apps_.find(pid);
    if (it == apps_.end()) {
      continue;
    }
    AppRecord& rec = it->second;
    for (const auto& [vpn, pfn] : rec.pfn_cache) {
      transfer_bitmap_.Set(pfn);
      revoked_pfns_.push_back(pfn);
    }
    rec.pfn_cache.clear();
    rec.areas.Clear();
    ++stragglers_timed_out_;
  }
  awaiting_ready_.clear();
  FinalizeBitmapAndNotifyDaemon();
}

void Lkm::FinalizeBitmapAndNotifyDaemon() {
  if (straggler_timer_.has_value()) {
    kernel_->clock().events().Cancel(*straggler_timer_);
    straggler_timer_.reset();
  }
  // Final transfer-bitmap update (§3.3.4): reconcile each ready app's
  // freshly-reported ranges with the remembered ones.
  const int64_t walked_before = total_ptes_walked_;
  int64_t cache_ops = 0;
  for (auto& [pid, rec] : apps_) {
    if (!rec.ready) {
      continue;
    }
    VaRangeSet fresh;
    for (const VaRange& area : rec.ready_info.skip_over_areas) {
      fresh.Add(area.PageAlignedInterior());
    }
    if (config_.update_mode == BitmapUpdateMode::kFinalRewalk) {
      RewalkAreasForApp(pid, rec, fresh, &cache_ops);
    } else {
      // Expanded space: pages joined the area since the first update; clear
      // their (deferred) transfer bits now so the last iteration skips them.
      for (const VaRange& piece : fresh.Minus(rec.areas)) {
        ClearBitsForRange(pid, rec, piece, &cache_ops);
      }
      // Shrunk space: pages that left the area in the entering-last-iter
      // window (e.g. regions released by the enforced evacuation itself).
      // Their frames were deallocated, so content safety comes from the
      // zeroing commit on reuse / the free-at-pause exemption -- no
      // re-transfer needed, just re-enable the bits.
      for (const VaRange& piece : rec.areas.Minus(fresh)) {
        SetBitsForRange(rec, piece, &cache_ops);
      }
    }
    rec.areas = fresh;
    // Must-transfer ranges (JAVMM: the occupied From space) are treated as
    // leaving the skip-over area: set their bits so the last iteration sends
    // the live data. Outward page alignment keeps partial pages safe.
    for (const VaRange& range : rec.ready_info.must_transfer) {
      SetBitsForRange(rec, range, &cache_ops);
    }
  }
  final_update_duration_ =
      (config_.per_pte_walk_cost * (total_ptes_walked_ - walked_before) +
       config_.per_cache_op_cost * cache_ops) /
      static_cast<int64_t>(std::max(config_.final_update_threads, 1));
  EnterState(State::kSuspensionReady);
  kernel_->event_channel().NotifyDaemon(LkmToDaemon::kSuspensionReady);
}

void Lkm::HandleVmResumedOrAborted(bool resumed) {
  if (straggler_timer_.has_value()) {
    kernel_->clock().events().Cancel(*straggler_timer_);
    straggler_timer_.reset();
  }
  awaiting_ready_.clear();
  apps_.clear();
  transfer_bitmap_.SetAll();
  EnterState(State::kInitialized);
  // On resume, tell applications to recover / treat skip-over areas as empty.
  // On abort the VM keeps running at the source; applications still need the
  // release notification to leave their prepared-for-suspension hold.
  (void)resumed;
  kernel_->netlink().Multicast(NetlinkMessage{NetlinkMessageType::kVmResumed});
}

void Lkm::AnnotateCompression(AppId pid, const VaRange& range, CompressionClass cls) {
  int64_t walked = 0;
  const std::vector<Pfn> pfns =
      kernel_->address_space(pid).page_table().WalkRange(range, &walked);
  total_ptes_walked_ += walked;
  for (Pfn pfn : pfns) {
    if (pfn != kInvalidPfn) {
      compression_classes_[static_cast<size_t>(pfn)] = static_cast<uint8_t>(cls);
    }
  }
}

void Lkm::RewalkAreasForApp(AppId pid, AppRecord& rec, const VaRangeSet& fresh,
                            int64_t* cache_ops) {
  // §3.3.4 alternative approach: identify every page that joined or left the
  // skip-over areas by walking the page tables of the whole fresh area set
  // and comparing against the PFNs found in the first update. This also
  // handles VPN remapping (case (2) of §3.3.4: p_old -> p_new): the old
  // frame's bit is set, the new frame's bit is cleared.
  // Ordered like AppRecord::pfn_cache: the reconciliation below appends to
  // revoked_pfns_ while iterating, so the walk must be deterministic.
  std::map<Vpn, Pfn> new_cache;
  for (const VaRange& range : fresh.Ranges()) {
    int64_t walked = 0;
    const std::vector<Pfn> pfns =
        kernel_->address_space(pid).page_table().WalkRange(range, &walked);
    total_ptes_walked_ += walked;
    const Vpn base = VpnOf(range.PageAlignedInterior().begin);
    for (size_t i = 0; i < pfns.size(); ++i) {
      if (pfns[i] != kInvalidPfn) {
        new_cache[base + i] = pfns[i];
      }
    }
  }
  // Pages that left the areas (or had their frame remapped): re-enable.
  // Their re-enabling is deferred to this moment, so any interim dirtying
  // was consumed-and-dropped by the daemon; flag them for re-transfer.
  for (const auto& [vpn, old_pfn] : rec.pfn_cache) {
    ++*cache_ops;
    auto it = new_cache.find(vpn);
    if (it == new_cache.end() || it->second != old_pfn) {
      transfer_bitmap_.Set(old_pfn);
      revoked_pfns_.push_back(old_pfn);
    }
  }
  // Pages now inside the areas (including deferred expansion): skip them.
  for (const auto& [vpn, pfn] : new_cache) {
    ++*cache_ops;
    transfer_bitmap_.Clear(pfn);
  }
  rec.pfn_cache = std::move(new_cache);
}

int64_t Lkm::ClearBitsForRange(AppId pid, AppRecord& rec, const VaRange& range,
                               int64_t* cache_ops) {
  int64_t walked = 0;
  const std::vector<Pfn> pfns = kernel_->address_space(pid).page_table().WalkRange(range, &walked);
  total_ptes_walked_ += walked;
  const VaRange aligned = range.PageAlignedInterior();
  int64_t cleared = 0;
  for (size_t i = 0; i < pfns.size(); ++i) {
    const Pfn pfn = pfns[i];
    if (pfn == kInvalidPfn) {
      continue;  // Non-present PTE (uncommitted page inside the range).
    }
    transfer_bitmap_.Clear(pfn);
    rec.pfn_cache[VpnOf(aligned.begin) + i] = pfn;
    ++*cache_ops;
    ++cleared;
  }
  return cleared;
}

int64_t Lkm::SetBitsForRange(AppRecord& rec, const VaRange& range, int64_t* cache_ops,
                             std::vector<Pfn>* revoked) {
  if (range.empty()) {
    return 0;
  }
  // Outward alignment: any page overlapping the leaving range must have its
  // bit set so its contents are migrated.
  const Vpn first = VpnOf(PageAlignDown(range.begin));
  const Vpn last = VpnOf(PageAlignUp(range.end));  // One past the final page.
  int64_t set = 0;
  for (Vpn vpn = first; vpn < last; ++vpn) {
    auto it = rec.pfn_cache.find(vpn);
    ++*cache_ops;
    if (it == rec.pfn_cache.end()) {
      continue;  // Page was never skip-listed (e.g. boundary page).
    }
    transfer_bitmap_.Set(it->second);
    if (revoked != nullptr) {
      revoked->push_back(it->second);
    }
    rec.pfn_cache.erase(it);
    ++set;
  }
  return set;
}

int64_t Lkm::pfn_cache_bytes() const {
  int64_t entries = 0;
  for (const auto& [pid, rec] : apps_) {
    entries += static_cast<int64_t>(rec.pfn_cache.size());
  }
  return entries * 4;  // 4-byte entries, as sized in §3.3.4.
}

}  // namespace javmm
