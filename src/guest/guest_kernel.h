// Copyright (c) 2026 The JAVMM Reproduction Authors.

#ifndef JAVMM_SRC_GUEST_GUEST_KERNEL_H_
#define JAVMM_SRC_GUEST_GUEST_KERNEL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/guest/event_channel.h"
#include "src/guest/netlink_bus.h"
#include "src/mem/address_space.h"
#include "src/mem/physical_memory.h"
#include "src/sim/clock.h"

namespace javmm {

class Lkm;
struct LkmConfig;

// The guest operating system: process/address-space registry, the netlink
// facility, the event-channel endpoint, and the VM's run/pause state.
//
// `PauseVm`/`ResumeVm` model the hypervisor suspending the guest's vCPUs for
// the stop-and-copy phase: while paused, guest processes consume no CPU and
// dirty no memory (their `RunFor` must check `vm_paused()`).
class GuestKernel {
 public:
  GuestKernel(GuestPhysicalMemory* memory, SimClock* clock);
  GuestKernel(const GuestKernel&) = delete;
  GuestKernel& operator=(const GuestKernel&) = delete;
  ~GuestKernel();

  // Creates a guest process with its own address space; returns its pid.
  AppId CreateProcess(std::string name);
  AddressSpace& address_space(AppId pid);
  const std::string& process_name(AppId pid) const;

  NetlinkBus& netlink() { return netlink_; }
  EventChannel& event_channel() { return event_channel_; }
  GuestPhysicalMemory& memory() { return *memory_; }
  SimClock& clock() { return *clock_; }

  // Loads the migration-assist LKM (idempotent not supported: load once).
  Lkm& LoadLkm(const LkmConfig& config);
  Lkm* lkm() { return lkm_.get(); }

  void PauseVm() { vm_paused_ = true; }
  void ResumeVm() { vm_paused_ = false; }
  bool vm_paused() const { return vm_paused_; }

 private:
  struct ProcessRecord {
    std::string name;
    std::unique_ptr<AddressSpace> space;
  };

  GuestPhysicalMemory* memory_;
  SimClock* clock_;
  NetlinkBus netlink_;
  EventChannel event_channel_;
  std::vector<ProcessRecord> processes_;
  std::unique_ptr<Lkm> lkm_;
  bool vm_paused_ = false;
};

}  // namespace javmm

#endif  // JAVMM_SRC_GUEST_GUEST_KERNEL_H_
