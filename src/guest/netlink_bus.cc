// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/guest/netlink_bus.h"

#include <vector>

#include "src/base/macros.h"

namespace javmm {

void NetlinkBus::Subscribe(AppId pid, NetlinkSubscriber* app) {
  CHECK(app != nullptr);
  const bool inserted = subscribers_.emplace(pid, app).second;
  CHECK(inserted);
}

void NetlinkBus::Unsubscribe(AppId pid) { subscribers_.erase(pid); }

void NetlinkBus::Multicast(const NetlinkMessage& msg) {
  // Copy the targets first: a subscriber's handler may (un)subscribe others.
  std::vector<NetlinkSubscriber*> targets;
  targets.reserve(subscribers_.size());
  for (const auto& [pid, app] : subscribers_) {
    targets.push_back(app);
  }
  for (NetlinkSubscriber* app : targets) {
    app->OnNetlinkMessage(msg);
  }
}

std::vector<AppId> NetlinkBus::SubscriberIds() const {
  std::vector<AppId> ids;
  ids.reserve(subscribers_.size());
  for (const auto& [pid, app] : subscribers_) {
    ids.push_back(pid);
  }
  return ids;
}

}  // namespace javmm
