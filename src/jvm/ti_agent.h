// Copyright (c) 2026 The JAVMM Reproduction Authors.
// The JVM TI agent of JAVMM (§4.3.1-§4.3.2).
//
// The agent is the glue between the LKM and the JVM: it subscribes to the
// netlink multicast group when the Java application starts, answers skip-over
// queries with the young generation's VA range, relays young-gen shrink
// events, and -- on "prepare for suspension" -- enforces a minor GC, reports
// suspension-ready with the occupied From range, and keeps the Java threads
// at the safepoint until the VM resumes at the destination.

#ifndef JAVMM_SRC_JVM_TI_AGENT_H_
#define JAVMM_SRC_JVM_TI_AGENT_H_

#include "src/guest/guest_kernel.h"
#include "src/guest/lkm.h"
#include "src/guest/netlink_bus.h"
#include "src/jvm/generational_heap.h"

namespace javmm {

// The slice of JVM functionality the agent needs, provided partly by stock
// JVMTI and partly by the paper's small HotSpot modifications. Implemented by
// the Java application process (which owns heap timing).
class JvmMigrationHooks {
 public:
  virtual ~JvmMigrationHooks() = default;

  // Current committed VA range of the young generation (JVMTI extension).
  virtual VaRange YoungGenRange() const = 0;

  // Occupied prefix of the From space -- valid right after the enforced GC,
  // while threads are still paused at the safepoint.
  virtual VaRange OccupiedFromRange() const = 0;

  // Occupied old generation (compression-hint annotation, §6).
  virtual VaRange OldGenRange() const = 0;

  // Requests a minor GC that must not be silently ignored (§4.3.2). The JVM
  // brings threads to a safepoint and collects over *simulated time*; when
  // the collection finishes it invokes TiAgent::OnEnforcedGcComplete while
  // threads are still held.
  virtual void RequestEnforcedGc() = 0;

  // Releases Java threads from the safepoint (VM resumed at destination, or
  // migration aborted).
  virtual void ReleaseFromSafepoint() = 0;
};

struct TiAgentConfig {
  // A non-cooperative agent ignores prepare-for-suspension; used to exercise
  // the LKM's straggler timeout (§6).
  bool cooperative = true;
};

class TiAgent : public NetlinkSubscriber, public GenerationalHeap::ResizeListener {
 public:
  // Loads the agent into process `pid`: subscribes to the netlink group.
  TiAgent(GuestKernel* kernel, AppId pid, JvmMigrationHooks* hooks,
          const TiAgentConfig& config = {});
  ~TiAgent() override;

  TiAgent(const TiAgent&) = delete;
  TiAgent& operator=(const TiAgent&) = delete;

  // NetlinkSubscriber: messages multicast by the LKM.
  void OnNetlinkMessage(const NetlinkMessage& msg) override;

  // GenerationalHeap::ResizeListener: pages freed from the young generation
  // at GC end (the HotSpot modification of §4.3.2); relayed as a shrink
  // notice while a migration is in flight.
  void OnYoungGenShrunk(const VaRange& freed) override;

  // Callback from the JVM when the enforced GC finished (threads still at the
  // safepoint): report suspension-ready with the live From range and return
  // true, meaning the JVM must keep the threads held. Returns false when the
  // migration ended while the GC was running (e.g. the LKM's straggler
  // timeout revoked us, the daemon fell back, and the VM already resumed) --
  // the collection then counts as a normal GC and the threads are released.
  bool OnEnforcedGcComplete();

  bool migration_active() const { return migration_active_; }
  bool holding_safepoint() const { return holding_safepoint_; }

 private:
  Lkm& lkm();

  GuestKernel* kernel_;
  AppId pid_;
  JvmMigrationHooks* hooks_;
  TiAgentConfig config_;
  bool migration_active_ = false;
  bool holding_safepoint_ = false;
};

}  // namespace javmm

#endif  // JAVMM_SRC_JVM_TI_AGENT_H_
