// Copyright (c) 2026 The JAVMM Reproduction Authors.

#ifndef JAVMM_SRC_JVM_HEAP_CONFIG_H_
#define JAVMM_SRC_JVM_HEAP_CONFIG_H_

#include <cstdint>

#include "src/base/time.h"
#include "src/base/units.h"

namespace javmm {

// Configuration of the generational heap, mirroring the HotSpot knobs the
// paper varies (-Xmn young cap, survivor sizing, tenuring threshold) plus the
// GC cost model our simulation uses in place of real collector CPU time.
struct HeapConfig {
  // ---- Sizing. ----
  int64_t young_max_bytes = 1 * kGiB;      // Paper's default cap (§4.2).
  int64_t young_initial_bytes = 64 * kMiB;
  int64_t young_min_bytes = 32 * kMiB;
  // Each survivor space is this fraction of the young generation; eden gets
  // the remaining 1 - 2*fraction (HotSpot default SurvivorRatio=8 gives 0.1).
  double survivor_fraction = 0.1;
  int32_t tenure_threshold = 3;  // Minor GCs survived before promotion.
  int64_t old_max_bytes = 896 * kMiB;
  int64_t old_commit_step = 32 * kMiB;

  // ---- Minor GC duration model. ----
  // duration = fixed + live * per_live + used_young * per_used.
  // Scaling with *used* (not committed) young bytes makes an enforced GC that
  // lands shortly after a natural one cheap -- Fig 8 observes a 0.1 s enforced
  // GC for compiler -- while a full eden gives derby's ~0.9 s (Fig 5(c)).
  Duration minor_gc_fixed = Duration::Millis(20);
  Duration minor_gc_per_live_mib = Duration::Millis(4);
  Duration minor_gc_per_used_gib = Duration::Millis(1000);

  // ---- Full GC duration model (old-generation collection). ----
  // The paper observes ~4 s to reclaim only 93 MiB of old garbage; full GCs
  // are dominated by tracing/compacting the live old data.
  Duration full_gc_fixed = Duration::Millis(150);
  Duration full_gc_per_live_mib = Duration::Millis(8);

  // ---- Adaptive young sizing (GCAdaptiveSizePolicy stand-in). ----
  // Grows the young generation so eden refills roughly every
  // `target_fill_interval` (the ~3 s cadence of §4.2); capped by
  // young_max_bytes. Shrinks (freeing pages -- the TI shrink notification
  // path) when committed young exceeds the target by `shrink_headroom`.
  Duration target_fill_interval = Duration::Seconds(3);
  double grow_factor = 2.0;
  double shrink_headroom = 2.5;
  bool allow_shrink = true;
};

}  // namespace javmm

#endif  // JAVMM_SRC_JVM_HEAP_CONFIG_H_
