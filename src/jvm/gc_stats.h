// Copyright (c) 2026 The JAVMM Reproduction Authors.

#ifndef JAVMM_SRC_JVM_GC_STATS_H_
#define JAVMM_SRC_JVM_GC_STATS_H_

#include <cstdint>
#include <vector>

#include "src/base/time.h"

namespace javmm {

// Outcome of one minor (young-generation) collection; the unit behind
// Fig 5(b) (garbage vs live) and Fig 5(c) (duration).
struct MinorGcResult {
  TimePoint at;
  Duration duration = Duration::Zero();  // The minor collection itself.
  // Extra pause when promotion failure escalated into a full GC; the
  // application stalls for duration + full_gc_penalty in total.
  Duration full_gc_penalty = Duration::Zero();
  bool enforced = false;           // Requested by the TI agent for migration.
  int64_t young_used_before = 0;   // Eden + From occupancy entering the GC.
  int64_t live_bytes = 0;          // Survived (copied or promoted).
  int64_t garbage_bytes = 0;       // Reclaimed.
  int64_t promoted_bytes = 0;      // Moved to the old generation.
  int64_t copied_to_survivor = 0;  // Moved Eden/From -> To.
  int64_t young_committed_after = 0;
  bool young_resized = false;
  bool triggered_full_gc = false;  // Promotion failure escalated.
};

struct FullGcResult {
  TimePoint at;
  Duration duration = Duration::Zero();
  int64_t old_used_before = 0;
  int64_t old_live = 0;
  int64_t old_garbage = 0;
};

// Running aggregates over a heap's lifetime, cheap enough to keep always-on.
struct GcLog {
  std::vector<MinorGcResult> minor;
  std::vector<FullGcResult> full;

  int64_t minor_count() const { return static_cast<int64_t>(minor.size()); }

  double MeanMinorGarbageFraction() const {
    double sum = 0;
    int64_t n = 0;
    for (const auto& gc : minor) {
      if (gc.young_used_before > 0) {
        sum += static_cast<double>(gc.garbage_bytes) / static_cast<double>(gc.young_used_before);
        ++n;
      }
    }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
  }

  Duration MeanMinorDuration() const {
    if (minor.empty()) {
      return Duration::Zero();
    }
    Duration total = Duration::Zero();
    for (const auto& gc : minor) {
      total += gc.duration;
    }
    return total / static_cast<int64_t>(minor.size());
  }
};

}  // namespace javmm

#endif  // JAVMM_SRC_JVM_GC_STATS_H_
