// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/jvm/ti_agent.h"

#include "src/base/macros.h"

namespace javmm {

TiAgent::TiAgent(GuestKernel* kernel, AppId pid, JvmMigrationHooks* hooks,
                 const TiAgentConfig& config)
    : kernel_(kernel), pid_(pid), hooks_(hooks), config_(config) {
  CHECK(kernel != nullptr);
  CHECK(hooks != nullptr);
  // "As a Java application runs, our TI agent is loaded. It creates a netlink
  // socket to communicate with the LKM." (§4.3.2)
  kernel_->netlink().Subscribe(pid_, this);
}

TiAgent::~TiAgent() { kernel_->netlink().Unsubscribe(pid_); }

Lkm& TiAgent::lkm() {
  Lkm* lkm = kernel_->lkm();
  CHECK(lkm != nullptr);
  return *lkm;
}

void TiAgent::OnNetlinkMessage(const NetlinkMessage& msg) {
  switch (msg.type) {
    case NetlinkMessageType::kQuerySkipOverAreas:
      // Migration began: report the young generation as the skip-over area.
      migration_active_ = true;
      lkm().ReportSkipOverAreas(pid_, {hooks_->YoungGenRange()});
      // Compression hint (§6 multi-bit map): tenured heap data is
      // pointer/zero-rich and compresses very well.
      lkm().AnnotateCompression(pid_, hooks_->OldGenRange(),
                                CompressionClass::kHighlyCompressible);
      return;
    case NetlinkMessageType::kPrepareForSuspension:
      if (!config_.cooperative) {
        return;  // Straggler: never responds; the LKM's timeout handles us.
      }
      // Enforce a minor GC; the JVM calls OnEnforcedGcComplete when done.
      hooks_->RequestEnforcedGc();
      return;
    case NetlinkMessageType::kVmResumed:
      // Destination resumed (or migration aborted): release the Java threads
      // and return to normal operation. The skipped young-gen space is empty
      // post-GC, so the application simply continues.
      migration_active_ = false;
      if (holding_safepoint_) {
        holding_safepoint_ = false;
        hooks_->ReleaseFromSafepoint();
      }
      return;
  }
  JAVMM_UNREACHABLE("unknown netlink message");
}

void TiAgent::OnYoungGenShrunk(const VaRange& freed) {
  if (!migration_active_) {
    return;  // Shrink notices only matter while a migration is in flight.
  }
  if (holding_safepoint_) {
    // Should not happen: the heap cannot resize while threads are held.
    return;
  }
  lkm().NotifyAreaShrunk(pid_, freed);
}

bool TiAgent::OnEnforcedGcComplete() {
  if (!migration_active_) {
    // The migration finished (or fell back) while this GC ran; nothing to
    // report and no reason to hold the threads.
    return false;
  }
  // Threads are paused at the safepoint; keep them there ("without giving JVM
  // control to release the Java threads", §4.3.2) so Eden and To stay empty
  // through stop-and-copy.
  holding_safepoint_ = true;
  SuspensionReadyInfo info;
  info.skip_over_areas = {hooks_->YoungGenRange()};
  info.must_transfer = {hooks_->OccupiedFromRange()};
  lkm().NotifySuspensionReady(pid_, info);
  return true;
}

}  // namespace javmm
