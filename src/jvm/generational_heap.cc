// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/jvm/generational_heap.h"

#include <algorithm>
#include <utility>

namespace javmm {
namespace {

int64_t PageAlignDownBytes(int64_t bytes) { return bytes / kPageSize * kPageSize; }
int64_t PageAlignUpBytes(int64_t bytes) { return PagesForBytes(bytes) * kPageSize; }

}  // namespace

GenerationalHeap::GenerationalHeap(AddressSpace* space, const HeapConfig& config)
    : space_(space), config_(config) {
  CHECK(space != nullptr);
  CHECK_GE(config.young_min_bytes, 4 * kPageSize);
  CHECK_LE(config.young_min_bytes, config.young_initial_bytes);
  CHECK_LE(config.young_initial_bytes, config.young_max_bytes);
  CHECK_GT(config.survivor_fraction, 0.0);
  CHECK_LT(config.survivor_fraction, 0.5);
  young_reserved_ = space_->ReserveVa(config.young_max_bytes);
  old_reserved_ = space_->ReserveVa(config.old_max_bytes);
  const int64_t initial = PageAlignUpBytes(config.young_initial_bytes);
  CHECK(space_->CommitRange(young_reserved_.begin, initial));
  young_committed_bytes_ = initial;
  ComputeLayout(initial);
}

void GenerationalHeap::ComputeLayout(int64_t young) {
  survivor_size_ = std::max<int64_t>(
      kPageSize, PageAlignDownBytes(static_cast<int64_t>(static_cast<double>(young) *
                                                         config_.survivor_fraction)));
  eden_size_ = young - 2 * survivor_size_;
  CHECK_GT(eden_size_, 0);
  eden_base_ = young_reserved_.begin;
  survivor_base_[0] = eden_base_ + static_cast<uint64_t>(eden_size_);
  survivor_base_[1] = survivor_base_[0] + static_cast<uint64_t>(survivor_size_);
}

bool GenerationalHeap::TryAllocate(int64_t bytes, TimePoint death_time) {
  CHECK_GT(bytes, 0);
  CHECK_LE(bytes, eden_size_);
  if (eden_used_ + bytes > eden_size_) {
    return false;
  }
  const VirtAddr addr = eden_base_ + static_cast<uint64_t>(eden_used_);
  space_->Write(addr, bytes);
  eden_chunks_.push_back(Chunk{bytes, death_time, 0, addr});
  eden_used_ += bytes;
  allocated_since_gc_ += bytes;
  total_allocated_bytes_ += bytes;
  return true;
}

MinorGcResult GenerationalHeap::MinorGc(TimePoint now, bool enforced) {
  MinorGcResult result;
  result.at = now;
  result.enforced = enforced;
  result.young_used_before = young_used_bytes();

  const int to = 1 - from_index_;
  CHECK_EQ(survivor_used_[to], 0);
  const VirtAddr to_base = survivor_base_[to];
  int64_t to_used = 0;
  std::vector<Chunk> to_chunks;
  Duration full_gc_penalty = Duration::Zero();

  auto copy_to_to = [&](Chunk chunk) -> bool {
    if (to_used + chunk.bytes > survivor_size_) {
      return false;
    }
    chunk.addr = to_base + static_cast<uint64_t>(to_used);
    space_->Write(chunk.addr, chunk.bytes);
    to_used += chunk.bytes;
    result.copied_to_survivor += chunk.bytes;
    to_chunks.push_back(chunk);
    return true;
  };

  auto promote = [&](Chunk chunk) {
    result.promoted_bytes += chunk.bytes;
    if (!PromoteChunk(chunk, now, &result)) {
      JAVMM_UNREACHABLE("old generation exhausted even after full GC");
    }
    if (result.triggered_full_gc && full_gc_penalty.IsZero() && !gc_log_.full.empty()) {
      full_gc_penalty = gc_log_.full.back().duration;
    }
  };

  // Eden: copy live data to To, or promote on survivor overflow.
  for (Chunk& chunk : eden_chunks_) {
    if (chunk.death_time <= now) {
      continue;  // Garbage: reclaimed by doing nothing.
    }
    result.live_bytes += chunk.bytes;
    chunk.age = 1;
    if (!copy_to_to(chunk)) {
      promote(chunk);
    }
  }
  // From: promote tenured chunks, copy the rest to To.
  for (Chunk& chunk : survivor_chunks_) {
    if (chunk.death_time <= now) {
      continue;
    }
    result.live_bytes += chunk.bytes;
    chunk.age += 1;
    if (chunk.age >= config_.tenure_threshold) {
      promote(chunk);
    } else if (!copy_to_to(chunk)) {
      promote(chunk);
    }
  }

  // Eden and the old From space are now empty; To becomes the new From.
  eden_chunks_.clear();
  eden_used_ = 0;
  survivor_used_[from_index_] = 0;
  survivor_chunks_ = std::move(to_chunks);
  survivor_used_[to] = to_used;
  from_index_ = to;

  result.garbage_bytes = result.young_used_before - result.live_bytes;

  // Duration model (HeapConfig): fixed + live copy cost + used-young scan
  // cost, plus the full-GC pause if promotion failure escalated.
  result.duration =
      config_.minor_gc_fixed +
      config_.minor_gc_per_live_mib * (static_cast<double>(result.live_bytes) /
                                       static_cast<double>(kMiB)) +
      config_.minor_gc_per_used_gib * (static_cast<double>(result.young_used_before) /
                                       static_cast<double>(kGiB));
  result.full_gc_penalty = full_gc_penalty;

  // Adaptive young sizing, applied at GC end when only From holds data.
  // Enforced (migration-time) collections never resize: they sample the
  // allocation rate mid-cycle and would mis-shrink the heap right before
  // stop-and-copy -- and HotSpot's size policy skips explicit GCs too.
  const Duration since_last = now - last_gc_time_;
  if (!enforced && since_last > Duration::Zero() && allocated_since_gc_ > 0) {
    const double rate = static_cast<double>(allocated_since_gc_) / since_last.ToSecondsF();
    const double eden_fraction = 1.0 - 2.0 * config_.survivor_fraction;
    int64_t desired = static_cast<int64_t>(rate * config_.target_fill_interval.ToSecondsF() /
                                           eden_fraction);
    desired = std::clamp(desired, config_.young_min_bytes, config_.young_max_bytes);
    // Near-cap demand rounds up to the cap: high-allocation workloads "quickly
    // grow to the maximum size" (§4.2, Table 2 observes young == -Xmn).
    if (static_cast<double>(desired) >= 0.85 * static_cast<double>(config_.young_max_bytes)) {
      desired = config_.young_max_bytes;
    }
    desired = PageAlignUpBytes(desired);
    int64_t new_young = young_committed_bytes_;
    if (desired > young_committed_bytes_) {
      new_young = std::min<int64_t>(
          desired, static_cast<int64_t>(static_cast<double>(young_committed_bytes_) *
                                        config_.grow_factor));
      new_young = std::min(PageAlignUpBytes(new_young), config_.young_max_bytes);
    } else if (config_.allow_shrink &&
               static_cast<double>(desired) * config_.shrink_headroom <
                   static_cast<double>(young_committed_bytes_)) {
      new_young = std::max(desired, config_.young_min_bytes);
      // Never shrink below what the surviving data needs.
      const int64_t survivor_need = survivor_used_[from_index_];
      const int64_t fit = PageAlignUpBytes(static_cast<int64_t>(
          static_cast<double>(survivor_need) / config_.survivor_fraction + kPageSize));
      new_young = std::min(std::max(new_young, fit), young_committed_bytes_);
    }
    if (new_young != young_committed_bytes_) {
      ResizeYoung(new_young, now);
      result.young_resized = true;
    }
  }
  allocated_since_gc_ = 0;
  last_gc_time_ = now;

  result.young_committed_after = young_committed_bytes_;
  gc_log_.minor.push_back(result);
  return result;
}

void GenerationalHeap::ResizeYoung(int64_t new_young, TimePoint now) {
  (void)now;
  const int64_t old_young = young_committed_bytes_;
  CHECK_NE(new_young, old_young);
  CHECK_EQ(eden_used_, 0);  // Only legal at GC end.
  if (new_young > old_young) {
    CHECK(space_->CommitRange(young_reserved_.begin + static_cast<uint64_t>(old_young),
                              new_young - old_young));
  }
  // Recompute boundaries and relocate the surviving From data into the new
  // layout's Survivor0.
  const std::vector<Chunk> survivors = std::move(survivor_chunks_);
  const int64_t survivor_bytes = survivor_used_[from_index_];
  survivor_used_[0] = survivor_used_[1] = 0;
  survivor_chunks_.clear();
  ComputeLayout(new_young);
  CHECK_LE(survivor_bytes, survivor_size_);
  from_index_ = 0;
  int64_t top = 0;
  for (Chunk chunk : survivors) {
    chunk.addr = survivor_base_[0] + static_cast<uint64_t>(top);
    space_->Write(chunk.addr, chunk.bytes);
    top += chunk.bytes;
    survivor_chunks_.push_back(chunk);
  }
  CHECK_EQ(top, survivor_bytes);
  survivor_used_[0] = survivor_bytes;
  young_committed_bytes_ = new_young;
  if (new_young < old_young) {
    const VaRange freed{young_reserved_.begin + static_cast<uint64_t>(new_young),
                        young_reserved_.begin + static_cast<uint64_t>(old_young)};
    space_->DecommitRange(freed.begin, freed.bytes());
    if (resize_listener_ != nullptr) {
      resize_listener_->OnYoungGenShrunk(freed);
    }
  }
}

void GenerationalHeap::SetBalloonedYoungCap(int64_t bytes) {
  CHECK_GE(bytes, config_.young_min_bytes);
  config_.young_max_bytes = PagesForBytes(bytes) * kPageSize;
  // The adaptive policy clamps to the new cap at the next GC; nothing moves
  // here (a resize is only legal with an empty eden).
}

bool GenerationalHeap::AllocateOld(int64_t bytes, TimePoint death_time) {
  CHECK_GT(bytes, 0);
  if (old_top_ + bytes > config_.old_max_bytes) {
    return false;
  }
  EnsureOldCommitted(old_top_ + bytes);
  const VirtAddr addr = old_reserved_.begin + static_cast<uint64_t>(old_top_);
  space_->Write(addr, bytes);
  old_top_ += bytes;
  old_chunks_.push_back(Chunk{bytes, death_time, 0, addr});
  total_allocated_bytes_ += bytes;
  return true;
}

bool GenerationalHeap::PromoteChunk(Chunk chunk, TimePoint now, MinorGcResult* result) {
  if (old_top_ + chunk.bytes > config_.old_max_bytes) {
    FullGc(now);
    result->triggered_full_gc = true;
    if (old_top_ + chunk.bytes > config_.old_max_bytes) {
      return false;
    }
  }
  EnsureOldCommitted(old_top_ + chunk.bytes);
  chunk.addr = old_reserved_.begin + static_cast<uint64_t>(old_top_);
  space_->Write(chunk.addr, chunk.bytes);
  old_top_ += chunk.bytes;
  old_chunks_.push_back(chunk);
  return true;
}

void GenerationalHeap::EnsureOldCommitted(int64_t needed_bytes) {
  CHECK_LE(needed_bytes, config_.old_max_bytes);
  while (old_committed_bytes_ < needed_bytes) {
    const int64_t step =
        std::min(config_.old_commit_step, config_.old_max_bytes - old_committed_bytes_);
    CHECK(space_->CommitRange(old_reserved_.begin + static_cast<uint64_t>(old_committed_bytes_),
                              step));
    old_committed_bytes_ += step;
  }
}

FullGcResult GenerationalHeap::FullGc(TimePoint now) {
  FullGcResult result;
  result.at = now;
  result.old_used_before = old_top_;
  std::vector<Chunk> live;
  live.reserve(old_chunks_.size());
  int64_t top = 0;
  for (Chunk chunk : old_chunks_) {
    if (chunk.death_time <= now) {
      continue;
    }
    // Sliding compaction: objects already at their compacted position are
    // left untouched (long-lived baseline data near the base never moves and
    // is not re-dirtied); only objects that slide are rewritten.
    const VirtAddr dst = old_reserved_.begin + static_cast<uint64_t>(top);
    if (chunk.addr != dst) {
      chunk.addr = dst;
      space_->Write(chunk.addr, chunk.bytes);
    }
    top += chunk.bytes;
    live.push_back(chunk);
  }
  old_chunks_ = std::move(live);
  old_top_ = top;
  result.old_live = top;
  result.old_garbage = result.old_used_before - top;
  result.duration = config_.full_gc_fixed +
                    config_.full_gc_per_live_mib *
                        (static_cast<double>(result.old_live) / static_cast<double>(kMiB));
  gc_log_.full.push_back(result);
  return result;
}

std::vector<GenerationalHeap::ChunkInfo> GenerationalHeap::LiveChunks(TimePoint now) const {
  std::vector<ChunkInfo> out;
  out.reserve(eden_chunks_.size() + survivor_chunks_.size() + old_chunks_.size());
  for (const auto* chunks : {&eden_chunks_, &survivor_chunks_, &old_chunks_}) {
    for (const Chunk& chunk : *chunks) {
      if (chunk.death_time > now) {
        out.push_back(ChunkInfo{chunk.addr, chunk.bytes, chunk.death_time});
      }
    }
  }
  return out;
}

void GenerationalHeap::CheckInvariants() const {
  int64_t eden_sum = 0;
  for (const Chunk& chunk : eden_chunks_) {
    CHECK_GE(chunk.addr, eden_base_);
    CHECK_LE(chunk.addr + static_cast<uint64_t>(chunk.bytes),
             eden_base_ + static_cast<uint64_t>(eden_size_));
    eden_sum += chunk.bytes;
  }
  CHECK_EQ(eden_sum, eden_used_);
  const VaRange from = from_space_range();
  int64_t from_sum = 0;
  for (const Chunk& chunk : survivor_chunks_) {
    CHECK_GE(chunk.addr, from.begin);
    CHECK_LE(chunk.addr + static_cast<uint64_t>(chunk.bytes), from.end);
    from_sum += chunk.bytes;
  }
  CHECK_EQ(from_sum, survivor_used_[from_index_]);
  int64_t old_sum = 0;
  for (const Chunk& chunk : old_chunks_) {
    old_sum += chunk.bytes;
  }
  CHECK_EQ(old_sum, old_top_);
  CHECK_EQ(eden_size_ + 2 * survivor_size_, young_committed_bytes_);
}

}  // namespace javmm
