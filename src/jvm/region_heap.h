// Copyright (c) 2026 The JAVMM Reproduction Authors.
// A garbage-first-style regionized heap -- the §6 future-work target:
// "porting JAVMM to run with collectors that use non-contiguous VA ranges
// for the Young generation ... HotSpot's garbage-first garbage collector is
// one such example."
//
// The heap is a pool of fixed-size regions carved from one VA reservation.
// Each region is free, or plays the eden / survivor / old role; the *young
// generation is the current set of eden+survivor regions*, whose VA ranges
// are non-contiguous and change at every collection. An evacuation pause
// copies live young data into freshly claimed survivor (or old) regions and
// returns the evacuated regions to the free pool -- so the skip-over area an
// assisting agent reports is a vector of ranges that shrinks and grows
// continuously, exercising the framework's multi-range paths for real.

#ifndef JAVMM_SRC_JVM_REGION_HEAP_H_
#define JAVMM_SRC_JVM_REGION_HEAP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/base/time.h"
#include "src/jvm/gc_stats.h"
#include "src/mem/address_space.h"
#include "src/mem/types.h"

namespace javmm {

struct RegionHeapConfig {
  int64_t region_bytes = 4 * kMiB;
  int32_t total_regions = 384;       // Whole-heap reservation (1.5 GiB).
  int32_t max_young_regions = 256;   // -Xmn analogue (1 GiB).
  int32_t initial_young_regions = 16;
  int32_t min_young_regions = 8;
  int32_t tenure_threshold = 3;

  // Evacuation-pause duration model: fixed + live copy + per evacuated
  // region overhead (remembered-set scanning etc.).
  Duration gc_fixed = Duration::Millis(15);
  Duration gc_per_live_mib = Duration::Millis(4);
  Duration gc_per_region = Duration::Millis(3);

  // Adaptive young sizing, as for the contiguous heap.
  Duration target_fill_interval = Duration::Seconds(3);
};

class RegionizedHeap {
 public:
  enum class RegionRole : uint8_t { kFree, kEden, kSurvivor, kOld };

  // Called at the end of an evacuation with the VA ranges of the regions
  // that left the young generation (they returned to the free pool or were
  // retagged); the agent relays these as shrink notices.
  using YoungReleasedCallback = std::function<void(const std::vector<VaRange>&)>;

  // Called whenever a region joins the young generation (eden claims during
  // allocation, survivor claims during evacuation); the agent relays these
  // as incremental skip-over reports so a region-cycling collector keeps its
  // young set skip-listed between bitmap updates.
  using YoungClaimedCallback = std::function<void(const VaRange&)>;

  RegionizedHeap(AddressSpace* space, const RegionHeapConfig& config);
  RegionizedHeap(const RegionizedHeap&) = delete;
  RegionizedHeap& operator=(const RegionizedHeap&) = delete;

  // Allocates a chunk dying at `death_time` into the current eden region,
  // claiming further free regions as eden fills. Returns false when the
  // young generation has reached its region quota: evacuate first.
  bool TryAllocate(int64_t bytes, TimePoint death_time);

  // Evacuation pause: copies live young data into fresh survivor regions
  // (promoting tenured/overflowing chunks into old regions), releases all
  // evacuated young regions, and fires the young-released callback.
  MinorGcResult EvacuateYoung(TimePoint now, bool enforced = false);

  // Places long-lived baseline data directly into old regions.
  bool AllocateOld(int64_t bytes, TimePoint death_time);

  // ---- Queries for the assisting agent. ----
  // Current young generation as VA ranges (non-contiguous, adjacent regions
  // coalesced); this is the skip-over area set.
  std::vector<VaRange> YoungRanges() const;
  // Occupied prefixes of the survivor regions holding data that survived the
  // latest evacuation -- the must-transfer set after an enforced pause.
  std::vector<VaRange> OccupiedSurvivorRanges() const;
  // Occupied old-region prefixes (compression hints).
  std::vector<VaRange> OccupiedOldRanges() const;

  int64_t young_region_count() const { return young_regions_; }
  int64_t young_quota_regions() const { return young_quota_; }
  int64_t young_used_bytes() const;
  int64_t old_used_bytes() const;
  int64_t total_allocated_bytes() const { return total_allocated_; }
  const GcLog& gc_log() const { return gc_log_; }
  const RegionHeapConfig& config() const { return config_; }

  void set_young_released_callback(YoungReleasedCallback cb) {
    young_released_ = std::move(cb);
  }
  void set_young_claimed_callback(YoungClaimedCallback cb) {
    young_claimed_ = std::move(cb);
  }

  // Live chunks for migration verification.
  struct ChunkInfo {
    VirtAddr addr;
    int64_t bytes;
  };
  std::vector<ChunkInfo> LiveChunks(TimePoint now) const;

  void CheckInvariants() const;

 private:
  struct Chunk {
    int64_t bytes;
    TimePoint death_time;
    int32_t age;
    VirtAddr addr;
  };

  struct Region {
    VaRange range;
    RegionRole role = RegionRole::kFree;
    bool committed = false;
    int64_t used = 0;
    std::vector<Chunk> chunks;
  };

  // Claims a free region for `role`, committing it on first use. Returns
  // region index or -1 when the pool is exhausted.
  int32_t ClaimRegion(RegionRole role);
  void ReleaseRegion(int32_t index);

  // Appends a chunk to `region` (caller checked capacity).
  void PlaceChunk(Region& region, Chunk chunk);

  // Copies `chunk` into the current destination region of `role`, claiming a
  // new one on overflow. Returns false when the pool is exhausted.
  bool CopyInto(RegionRole role, Chunk chunk, int32_t* cursor);

  AddressSpace* space_;
  RegionHeapConfig config_;
  std::vector<Region> regions_;
  std::vector<int32_t> free_pool_;  // LIFO: recycled regions interleave, so
                                    // young ranges fragment over time.
  int32_t eden_cursor_ = -1;        // Region receiving allocations.
  int32_t old_cursor_ = -1;         // Old region receiving promotions.
  int64_t young_regions_ = 0;       // Eden + survivor regions.
  int64_t young_quota_ = 0;

  TimePoint last_gc_time_ = TimePoint::Epoch();
  int64_t allocated_since_gc_ = 0;
  int64_t total_allocated_ = 0;
  GcLog gc_log_;
  YoungReleasedCallback young_released_;
  YoungClaimedCallback young_claimed_;
};

}  // namespace javmm

#endif  // JAVMM_SRC_JVM_REGION_HEAP_H_
