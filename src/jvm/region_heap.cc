// Copyright (c) 2026 The JAVMM Reproduction Authors.

#include "src/jvm/region_heap.h"

#include <algorithm>

#include "src/base/macros.h"

namespace javmm {
namespace {

// Coalesces adjacent/overlapping ranges (regions are disjoint, so only
// adjacency matters).
std::vector<VaRange> Coalesce(std::vector<VaRange> ranges) {
  std::sort(ranges.begin(), ranges.end(),
            [](const VaRange& a, const VaRange& b) { return a.begin < b.begin; });
  std::vector<VaRange> out;
  for (const VaRange& r : ranges) {
    if (!out.empty() && out.back().end == r.begin) {
      out.back().end = r.end;
    } else {
      out.push_back(r);
    }
  }
  return out;
}

}  // namespace

RegionizedHeap::RegionizedHeap(AddressSpace* space, const RegionHeapConfig& config)
    : space_(space), config_(config) {
  CHECK(space != nullptr);
  CHECK_GT(config.region_bytes, 0);
  CHECK_EQ(config.region_bytes % kPageSize, 0);
  CHECK_GE(config.total_regions, config.max_young_regions);
  CHECK_GE(config.max_young_regions, config.initial_young_regions);
  CHECK_GE(config.initial_young_regions, config.min_young_regions);
  const VaRange reservation =
      space_->ReserveVa(config.region_bytes * config.total_regions);
  regions_.resize(static_cast<size_t>(config.total_regions));
  for (int32_t i = 0; i < config.total_regions; ++i) {
    regions_[static_cast<size_t>(i)].range =
        VaRange{reservation.begin + static_cast<uint64_t>(i) *
                                        static_cast<uint64_t>(config.region_bytes),
                reservation.begin + static_cast<uint64_t>(i + 1) *
                                        static_cast<uint64_t>(config.region_bytes)};
  }
  free_pool_.reserve(static_cast<size_t>(config.total_regions));
  for (int32_t i = config.total_regions - 1; i >= 0; --i) {
    free_pool_.push_back(i);
  }
  young_quota_ = config.initial_young_regions;
}

int32_t RegionizedHeap::ClaimRegion(RegionRole role) {
  CHECK(role != RegionRole::kFree);
  if (free_pool_.empty()) {
    return -1;
  }
  const int32_t index = free_pool_.back();
  free_pool_.pop_back();
  Region& region = regions_[static_cast<size_t>(index)];
  // Free regions are uncommitted (returned to the guest kernel, §3.3.4's
  // "area shrinks due to deallocations"); claiming recommits them, and the
  // kernel's zeroing write announces the reuse to the dirty log.
  CHECK(!region.committed);
  CHECK(space_->CommitRange(region.range.begin, region.range.bytes()));
  region.committed = true;
  region.role = role;
  region.used = 0;
  region.chunks.clear();
  if (role == RegionRole::kEden || role == RegionRole::kSurvivor) {
    ++young_regions_;
    if (young_claimed_) {
      young_claimed_(region.range);
    }
  }
  return index;
}

void RegionizedHeap::ReleaseRegion(int32_t index) {
  Region& region = regions_[static_cast<size_t>(index)];
  CHECK(region.role != RegionRole::kFree);
  if (region.role == RegionRole::kEden || region.role == RegionRole::kSurvivor) {
    --young_regions_;
  }
  region.role = RegionRole::kFree;
  region.used = 0;
  region.chunks.clear();
  space_->DecommitRange(region.range.begin, region.range.bytes());
  region.committed = false;
  free_pool_.push_back(index);
}

void RegionizedHeap::PlaceChunk(Region& region, Chunk chunk) {
  chunk.addr = region.range.begin + static_cast<uint64_t>(region.used);
  space_->Write(chunk.addr, chunk.bytes);
  region.used += chunk.bytes;
  region.chunks.push_back(chunk);
}

bool RegionizedHeap::TryAllocate(int64_t bytes, TimePoint death_time) {
  CHECK_GT(bytes, 0);
  CHECK_LE(bytes, config_.region_bytes);
  if (eden_cursor_ < 0 ||
      regions_[static_cast<size_t>(eden_cursor_)].used + bytes > config_.region_bytes) {
    if (young_regions_ >= young_quota_) {
      return false;  // Young quota reached: evacuate first.
    }
    const int32_t claimed = ClaimRegion(RegionRole::kEden);
    if (claimed < 0) {
      return false;  // Region pool exhausted: evacuate first.
    }
    eden_cursor_ = claimed;
  }
  PlaceChunk(regions_[static_cast<size_t>(eden_cursor_)],
             Chunk{bytes, death_time, 0, 0});
  allocated_since_gc_ += bytes;
  total_allocated_ += bytes;
  return true;
}

bool RegionizedHeap::CopyInto(RegionRole role, Chunk chunk, int32_t* cursor) {
  if (*cursor < 0 ||
      regions_[static_cast<size_t>(*cursor)].used + chunk.bytes > config_.region_bytes) {
    const int32_t claimed = ClaimRegion(role);
    if (claimed < 0) {
      return false;
    }
    *cursor = claimed;
  }
  PlaceChunk(regions_[static_cast<size_t>(*cursor)], chunk);
  return true;
}

bool RegionizedHeap::AllocateOld(int64_t bytes, TimePoint death_time) {
  CHECK_GT(bytes, 0);
  CHECK_LE(bytes, config_.region_bytes);
  return CopyInto(RegionRole::kOld, Chunk{bytes, death_time, config_.tenure_threshold, 0},
                  &old_cursor_);
}

MinorGcResult RegionizedHeap::EvacuateYoung(TimePoint now, bool enforced) {
  MinorGcResult result;
  result.at = now;
  result.enforced = enforced;

  // Snapshot the evacuation set before claiming destination regions.
  std::vector<int32_t> evacuated;
  for (int32_t i = 0; i < static_cast<int32_t>(regions_.size()); ++i) {
    const Region& region = regions_[static_cast<size_t>(i)];
    if (region.role == RegionRole::kEden || region.role == RegionRole::kSurvivor) {
      evacuated.push_back(i);
      result.young_used_before += region.used;
    }
  }

  int32_t survivor_cursor = -1;
  int32_t survivor_regions_claimed = 0;
  const int32_t survivor_cap =
      std::max<int32_t>(1, static_cast<int32_t>(young_quota_ / 8));

  for (const int32_t index : evacuated) {
    Region& region = regions_[static_cast<size_t>(index)];
    for (Chunk& chunk : region.chunks) {
      if (chunk.death_time <= now) {
        continue;  // Garbage: evaporates with the region.
      }
      result.live_bytes += chunk.bytes;
      chunk.age += 1;
      bool promoted = chunk.age >= config_.tenure_threshold ||
                      survivor_regions_claimed > survivor_cap;
      if (!promoted) {
        const int32_t before = survivor_cursor;
        if (CopyInto(RegionRole::kSurvivor, chunk, &survivor_cursor)) {
          result.copied_to_survivor += chunk.bytes;
          if (survivor_cursor != before) {
            ++survivor_regions_claimed;
          }
          continue;
        }
        promoted = true;  // Pool pressure: promote instead.
      }
      // Promotion into old regions; reclaim fully-dead old regions on
      // pressure (G1's mixed-collection stand-in).
      if (!CopyInto(RegionRole::kOld, chunk, &old_cursor_)) {
        for (int32_t i = 0; i < static_cast<int32_t>(regions_.size()); ++i) {
          Region& old_region = regions_[static_cast<size_t>(i)];
          if (old_region.role != RegionRole::kOld || i == old_cursor_) {
            continue;
          }
          const bool all_dead =
              std::all_of(old_region.chunks.begin(), old_region.chunks.end(),
                          [now](const Chunk& c) { return c.death_time <= now; });
          if (all_dead) {
            ReleaseRegion(i);
          }
        }
        CHECK(CopyInto(RegionRole::kOld, chunk, &old_cursor_));
      }
      result.promoted_bytes += chunk.bytes;
    }
  }

  // Release the evacuated regions and report their ranges.
  std::vector<VaRange> released;
  released.reserve(evacuated.size());
  for (const int32_t index : evacuated) {
    released.push_back(regions_[static_cast<size_t>(index)].range);
    ReleaseRegion(index);
  }
  released = Coalesce(std::move(released));
  eden_cursor_ = -1;

  result.garbage_bytes = result.young_used_before - result.live_bytes;
  result.duration =
      config_.gc_fixed +
      config_.gc_per_live_mib *
          (static_cast<double>(result.live_bytes) / static_cast<double>(kMiB)) +
      config_.gc_per_region * static_cast<int64_t>(evacuated.size());

  // Adaptive quota (enforced pauses never resize, as for the classic heap).
  const Duration since_last = now - last_gc_time_;
  if (!enforced && since_last > Duration::Zero() && allocated_since_gc_ > 0) {
    const double rate = static_cast<double>(allocated_since_gc_) / since_last.ToSecondsF();
    int64_t desired = static_cast<int64_t>(
        rate * config_.target_fill_interval.ToSecondsF() /
        (0.9 * static_cast<double>(config_.region_bytes)));
    desired = std::clamp<int64_t>(desired, config_.min_young_regions,
                                  config_.max_young_regions);
    if (static_cast<double>(desired) >= 0.85 * static_cast<double>(config_.max_young_regions)) {
      desired = config_.max_young_regions;
    }
    if (desired > young_quota_) {
      young_quota_ = std::min<int64_t>(desired, young_quota_ * 2);
    } else if (desired * 2 < young_quota_) {
      young_quota_ = std::max<int64_t>(desired, config_.min_young_regions);
    }
    allocated_since_gc_ = 0;
    last_gc_time_ = now;
  } else if (!enforced) {
    allocated_since_gc_ = 0;
    last_gc_time_ = now;
  }

  result.young_committed_after = young_regions_ * config_.region_bytes;
  gc_log_.minor.push_back(result);
  if (young_released_ && !released.empty()) {
    young_released_(released);
  }
  return result;
}

std::vector<VaRange> RegionizedHeap::YoungRanges() const {
  std::vector<VaRange> out;
  for (const Region& region : regions_) {
    if (region.role == RegionRole::kEden || region.role == RegionRole::kSurvivor) {
      out.push_back(region.range);
    }
  }
  return Coalesce(std::move(out));
}

std::vector<VaRange> RegionizedHeap::OccupiedSurvivorRanges() const {
  std::vector<VaRange> out;
  for (const Region& region : regions_) {
    if (region.role == RegionRole::kSurvivor && region.used > 0) {
      out.push_back(
          VaRange{region.range.begin, region.range.begin + static_cast<uint64_t>(region.used)});
    }
  }
  return out;
}

std::vector<VaRange> RegionizedHeap::OccupiedOldRanges() const {
  std::vector<VaRange> out;
  for (const Region& region : regions_) {
    if (region.role == RegionRole::kOld && region.used > 0) {
      out.push_back(
          VaRange{region.range.begin, region.range.begin + static_cast<uint64_t>(region.used)});
    }
  }
  return Coalesce(std::move(out));
}

int64_t RegionizedHeap::young_used_bytes() const {
  int64_t total = 0;
  for (const Region& region : regions_) {
    if (region.role == RegionRole::kEden || region.role == RegionRole::kSurvivor) {
      total += region.used;
    }
  }
  return total;
}

int64_t RegionizedHeap::old_used_bytes() const {
  int64_t total = 0;
  for (const Region& region : regions_) {
    if (region.role == RegionRole::kOld) {
      total += region.used;
    }
  }
  return total;
}

std::vector<RegionizedHeap::ChunkInfo> RegionizedHeap::LiveChunks(TimePoint now) const {
  std::vector<ChunkInfo> out;
  for (const Region& region : regions_) {
    for (const Chunk& chunk : region.chunks) {
      if (chunk.death_time > now) {
        out.push_back(ChunkInfo{chunk.addr, chunk.bytes});
      }
    }
  }
  return out;
}

void RegionizedHeap::CheckInvariants() const {
  int64_t young = 0;
  int64_t free_count = 0;
  for (const Region& region : regions_) {
    int64_t used = 0;
    for (const Chunk& chunk : region.chunks) {
      CHECK_GE(chunk.addr, region.range.begin);
      CHECK_LE(chunk.addr + static_cast<uint64_t>(chunk.bytes), region.range.end);
      used += chunk.bytes;
    }
    CHECK_EQ(used, region.used);
    if (region.role == RegionRole::kEden || region.role == RegionRole::kSurvivor) {
      ++young;
    }
    if (region.role == RegionRole::kFree) {
      ++free_count;
      CHECK_EQ(region.used, 0);
      CHECK(!region.committed);
    } else {
      CHECK(region.committed);
    }
  }
  CHECK_EQ(young, young_regions_);
  CHECK_EQ(free_count, static_cast<int64_t>(free_pool_.size()));
}

}  // namespace javmm
