// Copyright (c) 2026 The JAVMM Reproduction Authors.
// A HotSpot-like generational heap over simulated guest memory (§4.1).
//
// Layout within the reserved young-generation VA range:
//
//     [ Eden | Survivor0 | Survivor1 ]  -- committed prefix of the range
//
// One survivor space is "From" (may hold live data), the other "To" (empty
// between collections); the roles swap at each minor GC. Objects are modelled
// as *chunks*: cohorts of same-lifetime objects allocated together (see
// DESIGN.md §4). All stores flow through the owning AddressSpace, so the
// hypervisor dirty log observes exactly the write pattern the paper's
// workloads generate: eden continuously re-dirtied at the allocation rate,
// survivor/old pages dirtied by copying and promotion.

#ifndef JAVMM_SRC_JVM_GENERATIONAL_HEAP_H_
#define JAVMM_SRC_JVM_GENERATIONAL_HEAP_H_

#include <cstdint>
#include <vector>

#include "src/base/macros.h"
#include "src/base/time.h"
#include "src/jvm/gc_stats.h"
#include "src/jvm/heap_config.h"
#include "src/mem/address_space.h"
#include "src/mem/types.h"

namespace javmm {

class GenerationalHeap {
 public:
  // Observer for heap-region changes the TI agent must see (§4.3.2: "memory
  // pages may be freed from the Young generation at the end of a GC; we
  // slightly modify HotSpot to notify when this happens").
  class ResizeListener {
   public:
    virtual ~ResizeListener() = default;
    virtual void OnYoungGenShrunk(const VaRange& freed) = 0;
  };

  GenerationalHeap(AddressSpace* space, const HeapConfig& config);
  GenerationalHeap(const GenerationalHeap&) = delete;
  GenerationalHeap& operator=(const GenerationalHeap&) = delete;

  // Allocates a chunk of `bytes` whose objects die at `death_time`. Returns
  // false when eden cannot hold the chunk: the caller must run MinorGc first.
  bool TryAllocate(int64_t bytes, TimePoint death_time);

  // Runs a minor collection at simulated instant `now`. `enforced` marks the
  // migration-time GC requested through the TI agent (never ignored, §4.3.2).
  MinorGcResult MinorGc(TimePoint now, bool enforced = false);

  // Old-generation collection (compacting). Triggered on promotion failure.
  FullGcResult FullGc(TimePoint now);

  // Places long-lived startup data (database tables, caches, code metadata)
  // directly in the old generation -- the workloads' "baseline" old data that
  // exists before any promotion. Returns false if the old generation is full.
  bool AllocateOld(int64_t bytes, TimePoint death_time);

  // Application-Level Ballooning support (Salomie et al. [31], discussed in
  // §2): caps the young generation at `bytes` from now on. Takes effect at
  // the next minor GC (when survivor data can be relocated); pass the
  // original -Xmn back to re-inflate after migration.
  void SetBalloonedYoungCap(int64_t bytes);
  int64_t young_cap() const { return config_.young_max_bytes; }

  // Dirties `bytes` worth of pages spread across the occupied old generation;
  // models the workload's long-lived-data mutation. `page_picker` supplies
  // uniform [0,1) values used to pick target pages.
  template <typename UniformFn>
  void MutateOld(int64_t bytes, UniformFn&& page_picker) {
    if (old_top_ == 0 || bytes <= 0) {
      return;
    }
    const int64_t pages = PagesForBytes(bytes);
    const int64_t occupied_pages = PagesForBytes(old_top_);
    for (int64_t i = 0; i < pages; ++i) {
      const int64_t page = static_cast<int64_t>(page_picker() * static_cast<double>(occupied_pages));
      const VirtAddr va =
          old_reserved_.begin + static_cast<uint64_t>(std::min(page, occupied_pages - 1) * kPageSize);
      space_->Touch(va);
    }
  }

  // ---- Region queries (TI agent, tests, verification). ----
  VaRange young_reserved() const { return young_reserved_; }
  VaRange young_committed() const {
    return VaRange{young_reserved_.begin,
                   young_reserved_.begin + static_cast<uint64_t>(young_committed_bytes_)};
  }
  VaRange eden_range() const { return VaRange{eden_base_, eden_base_ + static_cast<uint64_t>(eden_size_)}; }
  VaRange from_space_range() const { return SurvivorRange(from_index_); }
  VaRange to_space_range() const { return SurvivorRange(1 - from_index_); }
  // Occupied prefix of From: the live data surviving the latest minor GC.
  VaRange occupied_from_range() const {
    const VaRange from = from_space_range();
    return VaRange{from.begin, from.begin + static_cast<uint64_t>(survivor_used_[from_index_])};
  }
  VaRange occupied_old_range() const {
    return VaRange{old_reserved_.begin, old_reserved_.begin + static_cast<uint64_t>(old_top_)};
  }

  int64_t young_committed_bytes() const { return young_committed_bytes_; }
  int64_t young_used_bytes() const { return eden_used_ + survivor_used_[from_index_]; }
  int64_t eden_free_bytes() const { return eden_size_ - eden_used_; }
  int64_t old_used_bytes() const { return old_top_; }
  int64_t old_committed_bytes() const { return old_committed_bytes_; }
  int64_t total_allocated_bytes() const { return total_allocated_bytes_; }

  const HeapConfig& config() const { return config_; }
  const GcLog& gc_log() const { return gc_log_; }
  void set_resize_listener(ResizeListener* listener) { resize_listener_ = listener; }

  // Live chunks at `now` across all spaces; used by migration verification to
  // assert every surviving object's pages reached the destination.
  struct ChunkInfo {
    VirtAddr addr;
    int64_t bytes;
    TimePoint death_time;
  };
  std::vector<ChunkInfo> LiveChunks(TimePoint now) const;

  // Sanity invariants (used by tests): chunk placement within space bounds,
  // top pointers consistent with chunk sums.
  void CheckInvariants() const;

 private:
  struct Chunk {
    int64_t bytes;
    TimePoint death_time;
    int32_t age;
    VirtAddr addr;
  };

  VaRange SurvivorRange(int index) const {
    const VirtAddr base = survivor_base_[index];
    return VaRange{base, base + static_cast<uint64_t>(survivor_size_)};
  }

  // Recomputes eden/survivor boundaries for a committed young size `young`.
  void ComputeLayout(int64_t young);

  // Grows/shrinks the committed young generation to `new_young` at GC end
  // (survivor data is relocated into the new layout). Returns bytes freed
  // (positive when shrinking).
  void ResizeYoung(int64_t new_young, TimePoint now);

  // Places a chunk in the old generation (growing the committed old region);
  // may trigger a full GC on exhaustion. Returns false if the old generation
  // cannot hold the chunk even after a full GC.
  bool PromoteChunk(Chunk chunk, TimePoint now, MinorGcResult* result);

  void EnsureOldCommitted(int64_t needed_bytes);

  AddressSpace* space_;
  HeapConfig config_;

  VaRange young_reserved_;
  VaRange old_reserved_;

  // Current layout (all byte counts page-aligned).
  int64_t young_committed_bytes_ = 0;
  int64_t eden_size_ = 0;
  int64_t survivor_size_ = 0;
  VirtAddr eden_base_ = 0;
  VirtAddr survivor_base_[2] = {0, 0};
  int from_index_ = 0;

  // Occupancy.
  int64_t eden_used_ = 0;
  int64_t survivor_used_[2] = {0, 0};
  int64_t old_top_ = 0;
  int64_t old_committed_bytes_ = 0;

  std::vector<Chunk> eden_chunks_;
  std::vector<Chunk> survivor_chunks_;  // Chunks in the From space.
  std::vector<Chunk> old_chunks_;

  // Allocation-rate tracking for the adaptive size policy.
  TimePoint last_gc_time_ = TimePoint::Epoch();
  int64_t allocated_since_gc_ = 0;
  int64_t total_allocated_bytes_ = 0;

  GcLog gc_log_;
  ResizeListener* resize_listener_ = nullptr;
};

}  // namespace javmm

#endif  // JAVMM_SRC_JVM_GENERATIONAL_HEAP_H_
