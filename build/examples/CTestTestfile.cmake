# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cache_migration "/root/repo/build/examples/cache_migration")
set_tests_properties(example_cache_migration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adaptive_policy "/root/repo/build/examples/adaptive_policy")
set_tests_properties(example_adaptive_policy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_app "/root/repo/build/examples/multi_app")
set_tests_properties(example_multi_app PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_g1_migration "/root/repo/build/examples/g1_migration")
set_tests_properties(example_g1_migration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_migrate_cli "/root/repo/build/examples/migrate_cli" "--workload=crypto" "--engine=auto")
set_tests_properties(example_migrate_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_migrate_cli_list "/root/repo/build/examples/migrate_cli" "--list")
set_tests_properties(example_migrate_cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
