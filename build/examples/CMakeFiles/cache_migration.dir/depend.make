# Empty dependencies file for cache_migration.
# This may be replaced when dependencies are built.
