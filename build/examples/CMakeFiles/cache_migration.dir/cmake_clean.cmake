file(REMOVE_RECURSE
  "CMakeFiles/cache_migration.dir/cache_migration.cpp.o"
  "CMakeFiles/cache_migration.dir/cache_migration.cpp.o.d"
  "cache_migration"
  "cache_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
