# Empty compiler generated dependencies file for migrate_cli.
# This may be replaced when dependencies are built.
