file(REMOVE_RECURSE
  "CMakeFiles/migrate_cli.dir/migrate_cli.cpp.o"
  "CMakeFiles/migrate_cli.dir/migrate_cli.cpp.o.d"
  "migrate_cli"
  "migrate_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migrate_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
