# Empty dependencies file for g1_migration.
# This may be replaced when dependencies are built.
