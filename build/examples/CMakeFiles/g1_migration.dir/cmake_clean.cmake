file(REMOVE_RECURSE
  "CMakeFiles/g1_migration.dir/g1_migration.cpp.o"
  "CMakeFiles/g1_migration.dir/g1_migration.cpp.o.d"
  "g1_migration"
  "g1_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g1_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
