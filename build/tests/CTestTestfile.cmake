# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/va_range_set_test[1]_include.cmake")
include("/root/repo/build/tests/lkm_test[1]_include.cmake")
include("/root/repo/build/tests/heap_test[1]_include.cmake")
include("/root/repo/build/tests/guest_test[1]_include.cmake")
include("/root/repo/build/tests/java_app_test[1]_include.cmake")
include("/root/repo/build/tests/migration_test[1]_include.cmake")
include("/root/repo/build/tests/javmm_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/compression_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/region_heap_test[1]_include.cmake")
include("/root/repo/build/tests/engine_param_test[1]_include.cmake")
include("/root/repo/build/tests/net_and_misc_test[1]_include.cmake")
