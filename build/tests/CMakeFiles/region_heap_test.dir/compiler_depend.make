# Empty compiler generated dependencies file for region_heap_test.
# This may be replaced when dependencies are built.
