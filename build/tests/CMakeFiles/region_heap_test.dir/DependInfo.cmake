
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/region_heap_test.cc" "tests/CMakeFiles/region_heap_test.dir/region_heap_test.cc.o" "gcc" "tests/CMakeFiles/region_heap_test.dir/region_heap_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/javmm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/javmm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/migration/CMakeFiles/javmm_migration.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/javmm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/javmm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/jvm/CMakeFiles/javmm_jvm.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/javmm_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/javmm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/javmm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/javmm_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
