file(REMOVE_RECURSE
  "CMakeFiles/region_heap_test.dir/region_heap_test.cc.o"
  "CMakeFiles/region_heap_test.dir/region_heap_test.cc.o.d"
  "region_heap_test"
  "region_heap_test.pdb"
  "region_heap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_heap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
