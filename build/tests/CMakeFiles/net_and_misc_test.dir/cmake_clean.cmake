file(REMOVE_RECURSE
  "CMakeFiles/net_and_misc_test.dir/net_and_misc_test.cc.o"
  "CMakeFiles/net_and_misc_test.dir/net_and_misc_test.cc.o.d"
  "net_and_misc_test"
  "net_and_misc_test.pdb"
  "net_and_misc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_and_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
