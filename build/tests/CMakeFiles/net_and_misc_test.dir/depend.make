# Empty dependencies file for net_and_misc_test.
# This may be replaced when dependencies are built.
