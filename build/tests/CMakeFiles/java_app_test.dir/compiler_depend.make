# Empty compiler generated dependencies file for java_app_test.
# This may be replaced when dependencies are built.
