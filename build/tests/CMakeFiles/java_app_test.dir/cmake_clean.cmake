file(REMOVE_RECURSE
  "CMakeFiles/java_app_test.dir/java_app_test.cc.o"
  "CMakeFiles/java_app_test.dir/java_app_test.cc.o.d"
  "java_app_test"
  "java_app_test.pdb"
  "java_app_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/java_app_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
