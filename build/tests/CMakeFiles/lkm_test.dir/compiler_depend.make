# Empty compiler generated dependencies file for lkm_test.
# This may be replaced when dependencies are built.
