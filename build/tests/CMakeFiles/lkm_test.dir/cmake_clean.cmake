file(REMOVE_RECURSE
  "CMakeFiles/lkm_test.dir/lkm_test.cc.o"
  "CMakeFiles/lkm_test.dir/lkm_test.cc.o.d"
  "lkm_test"
  "lkm_test.pdb"
  "lkm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lkm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
