file(REMOVE_RECURSE
  "CMakeFiles/javmm_test.dir/javmm_test.cc.o"
  "CMakeFiles/javmm_test.dir/javmm_test.cc.o.d"
  "javmm_test"
  "javmm_test.pdb"
  "javmm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javmm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
