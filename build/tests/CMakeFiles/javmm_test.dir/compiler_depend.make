# Empty compiler generated dependencies file for javmm_test.
# This may be replaced when dependencies are built.
