# Empty compiler generated dependencies file for va_range_set_test.
# This may be replaced when dependencies are built.
