file(REMOVE_RECURSE
  "CMakeFiles/va_range_set_test.dir/va_range_set_test.cc.o"
  "CMakeFiles/va_range_set_test.dir/va_range_set_test.cc.o.d"
  "va_range_set_test"
  "va_range_set_test.pdb"
  "va_range_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/va_range_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
