file(REMOVE_RECURSE
  "../bench/abl_baselines"
  "../bench/abl_baselines.pdb"
  "CMakeFiles/abl_baselines.dir/abl_baselines.cpp.o"
  "CMakeFiles/abl_baselines.dir/abl_baselines.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
