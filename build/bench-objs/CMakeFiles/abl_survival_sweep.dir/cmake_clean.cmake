file(REMOVE_RECURSE
  "../bench/abl_survival_sweep"
  "../bench/abl_survival_sweep.pdb"
  "CMakeFiles/abl_survival_sweep.dir/abl_survival_sweep.cpp.o"
  "CMakeFiles/abl_survival_sweep.dir/abl_survival_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_survival_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
