# Empty compiler generated dependencies file for abl_survival_sweep.
# This may be replaced when dependencies are built.
