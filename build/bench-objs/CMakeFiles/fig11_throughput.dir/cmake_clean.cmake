file(REMOVE_RECURSE
  "../bench/fig11_throughput"
  "../bench/fig11_throughput.pdb"
  "CMakeFiles/fig11_throughput.dir/fig11_throughput.cpp.o"
  "CMakeFiles/fig11_throughput.dir/fig11_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
