# Empty dependencies file for fig11_throughput.
# This may be replaced when dependencies are built.
