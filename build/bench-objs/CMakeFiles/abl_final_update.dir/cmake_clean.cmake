file(REMOVE_RECURSE
  "../bench/abl_final_update"
  "../bench/abl_final_update.pdb"
  "CMakeFiles/abl_final_update.dir/abl_final_update.cpp.o"
  "CMakeFiles/abl_final_update.dir/abl_final_update.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_final_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
