# Empty compiler generated dependencies file for abl_final_update.
# This may be replaced when dependencies are built.
