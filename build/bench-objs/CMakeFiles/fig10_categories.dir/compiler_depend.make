# Empty compiler generated dependencies file for fig10_categories.
# This may be replaced when dependencies are built.
