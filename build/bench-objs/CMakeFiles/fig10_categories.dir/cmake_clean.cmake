file(REMOVE_RECURSE
  "../bench/fig10_categories"
  "../bench/fig10_categories.pdb"
  "CMakeFiles/fig10_categories.dir/fig10_categories.cpp.o"
  "CMakeFiles/fig10_categories.dir/fig10_categories.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
