file(REMOVE_RECURSE
  "../bench/fig08_progress"
  "../bench/fig08_progress.pdb"
  "CMakeFiles/fig08_progress.dir/fig08_progress.cpp.o"
  "CMakeFiles/fig08_progress.dir/fig08_progress.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_progress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
