# Empty dependencies file for fig08_progress.
# This may be replaced when dependencies are built.
