# Empty dependencies file for fig12_young_size.
# This may be replaced when dependencies are built.
