file(REMOVE_RECURSE
  "../bench/fig12_young_size"
  "../bench/fig12_young_size.pdb"
  "CMakeFiles/fig12_young_size.dir/fig12_young_size.cpp.o"
  "CMakeFiles/fig12_young_size.dir/fig12_young_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_young_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
