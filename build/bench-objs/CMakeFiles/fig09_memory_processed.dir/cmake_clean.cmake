file(REMOVE_RECURSE
  "../bench/fig09_memory_processed"
  "../bench/fig09_memory_processed.pdb"
  "CMakeFiles/fig09_memory_processed.dir/fig09_memory_processed.cpp.o"
  "CMakeFiles/fig09_memory_processed.dir/fig09_memory_processed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_memory_processed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
