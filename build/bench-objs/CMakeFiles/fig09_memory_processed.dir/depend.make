# Empty dependencies file for fig09_memory_processed.
# This may be replaced when dependencies are built.
