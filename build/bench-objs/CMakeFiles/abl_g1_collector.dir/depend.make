# Empty dependencies file for abl_g1_collector.
# This may be replaced when dependencies are built.
