file(REMOVE_RECURSE
  "../bench/abl_g1_collector"
  "../bench/abl_g1_collector.pdb"
  "CMakeFiles/abl_g1_collector.dir/abl_g1_collector.cpp.o"
  "CMakeFiles/abl_g1_collector.dir/abl_g1_collector.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_g1_collector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
