file(REMOVE_RECURSE
  "../bench/fig01_xen_derby"
  "../bench/fig01_xen_derby.pdb"
  "CMakeFiles/fig01_xen_derby.dir/fig01_xen_derby.cpp.o"
  "CMakeFiles/fig01_xen_derby.dir/fig01_xen_derby.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_xen_derby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
