# Empty dependencies file for fig01_xen_derby.
# This may be replaced when dependencies are built.
