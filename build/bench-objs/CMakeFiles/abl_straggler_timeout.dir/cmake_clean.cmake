file(REMOVE_RECURSE
  "../bench/abl_straggler_timeout"
  "../bench/abl_straggler_timeout.pdb"
  "CMakeFiles/abl_straggler_timeout.dir/abl_straggler_timeout.cpp.o"
  "CMakeFiles/abl_straggler_timeout.dir/abl_straggler_timeout.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_straggler_timeout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
