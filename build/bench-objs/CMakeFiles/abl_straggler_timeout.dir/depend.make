# Empty dependencies file for abl_straggler_timeout.
# This may be replaced when dependencies are built.
