file(REMOVE_RECURSE
  "../bench/abl_compression"
  "../bench/abl_compression.pdb"
  "CMakeFiles/abl_compression.dir/abl_compression.cpp.o"
  "CMakeFiles/abl_compression.dir/abl_compression.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
