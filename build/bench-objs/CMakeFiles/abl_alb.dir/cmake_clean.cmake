file(REMOVE_RECURSE
  "../bench/abl_alb"
  "../bench/abl_alb.pdb"
  "CMakeFiles/abl_alb.dir/abl_alb.cpp.o"
  "CMakeFiles/abl_alb.dir/abl_alb.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_alb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
