# Empty dependencies file for abl_alb.
# This may be replaced when dependencies are built.
