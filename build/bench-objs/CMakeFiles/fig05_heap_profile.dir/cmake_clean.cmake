file(REMOVE_RECURSE
  "../bench/fig05_heap_profile"
  "../bench/fig05_heap_profile.pdb"
  "CMakeFiles/fig05_heap_profile.dir/fig05_heap_profile.cpp.o"
  "CMakeFiles/fig05_heap_profile.dir/fig05_heap_profile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_heap_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
