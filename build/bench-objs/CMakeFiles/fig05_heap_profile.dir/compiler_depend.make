# Empty compiler generated dependencies file for fig05_heap_profile.
# This may be replaced when dependencies are built.
