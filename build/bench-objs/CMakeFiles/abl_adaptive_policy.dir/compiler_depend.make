# Empty compiler generated dependencies file for abl_adaptive_policy.
# This may be replaced when dependencies are built.
