file(REMOVE_RECURSE
  "../bench/abl_adaptive_policy"
  "../bench/abl_adaptive_policy.pdb"
  "CMakeFiles/abl_adaptive_policy.dir/abl_adaptive_policy.cpp.o"
  "CMakeFiles/abl_adaptive_policy.dir/abl_adaptive_policy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_adaptive_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
