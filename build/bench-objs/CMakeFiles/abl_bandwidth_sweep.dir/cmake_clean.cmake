file(REMOVE_RECURSE
  "../bench/abl_bandwidth_sweep"
  "../bench/abl_bandwidth_sweep.pdb"
  "CMakeFiles/abl_bandwidth_sweep.dir/abl_bandwidth_sweep.cpp.o"
  "CMakeFiles/abl_bandwidth_sweep.dir/abl_bandwidth_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_bandwidth_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
