# Empty dependencies file for abl_bandwidth_sweep.
# This may be replaced when dependencies are built.
