# Empty dependencies file for javmm_stats.
# This may be replaced when dependencies are built.
