file(REMOVE_RECURSE
  "CMakeFiles/javmm_stats.dir/summary.cc.o"
  "CMakeFiles/javmm_stats.dir/summary.cc.o.d"
  "CMakeFiles/javmm_stats.dir/table.cc.o"
  "CMakeFiles/javmm_stats.dir/table.cc.o.d"
  "CMakeFiles/javmm_stats.dir/time_series.cc.o"
  "CMakeFiles/javmm_stats.dir/time_series.cc.o.d"
  "libjavmm_stats.a"
  "libjavmm_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javmm_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
