file(REMOVE_RECURSE
  "libjavmm_stats.a"
)
