file(REMOVE_RECURSE
  "libjavmm_mem.a"
)
