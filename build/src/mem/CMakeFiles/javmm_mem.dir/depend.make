# Empty dependencies file for javmm_mem.
# This may be replaced when dependencies are built.
