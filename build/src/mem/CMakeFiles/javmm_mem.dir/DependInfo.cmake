
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address_space.cc" "src/mem/CMakeFiles/javmm_mem.dir/address_space.cc.o" "gcc" "src/mem/CMakeFiles/javmm_mem.dir/address_space.cc.o.d"
  "/root/repo/src/mem/bitmap.cc" "src/mem/CMakeFiles/javmm_mem.dir/bitmap.cc.o" "gcc" "src/mem/CMakeFiles/javmm_mem.dir/bitmap.cc.o.d"
  "/root/repo/src/mem/dirty_log.cc" "src/mem/CMakeFiles/javmm_mem.dir/dirty_log.cc.o" "gcc" "src/mem/CMakeFiles/javmm_mem.dir/dirty_log.cc.o.d"
  "/root/repo/src/mem/page_table.cc" "src/mem/CMakeFiles/javmm_mem.dir/page_table.cc.o" "gcc" "src/mem/CMakeFiles/javmm_mem.dir/page_table.cc.o.d"
  "/root/repo/src/mem/physical_memory.cc" "src/mem/CMakeFiles/javmm_mem.dir/physical_memory.cc.o" "gcc" "src/mem/CMakeFiles/javmm_mem.dir/physical_memory.cc.o.d"
  "/root/repo/src/mem/types.cc" "src/mem/CMakeFiles/javmm_mem.dir/types.cc.o" "gcc" "src/mem/CMakeFiles/javmm_mem.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/javmm_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
