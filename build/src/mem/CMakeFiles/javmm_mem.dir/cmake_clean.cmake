file(REMOVE_RECURSE
  "CMakeFiles/javmm_mem.dir/address_space.cc.o"
  "CMakeFiles/javmm_mem.dir/address_space.cc.o.d"
  "CMakeFiles/javmm_mem.dir/bitmap.cc.o"
  "CMakeFiles/javmm_mem.dir/bitmap.cc.o.d"
  "CMakeFiles/javmm_mem.dir/dirty_log.cc.o"
  "CMakeFiles/javmm_mem.dir/dirty_log.cc.o.d"
  "CMakeFiles/javmm_mem.dir/page_table.cc.o"
  "CMakeFiles/javmm_mem.dir/page_table.cc.o.d"
  "CMakeFiles/javmm_mem.dir/physical_memory.cc.o"
  "CMakeFiles/javmm_mem.dir/physical_memory.cc.o.d"
  "CMakeFiles/javmm_mem.dir/types.cc.o"
  "CMakeFiles/javmm_mem.dir/types.cc.o.d"
  "libjavmm_mem.a"
  "libjavmm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javmm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
