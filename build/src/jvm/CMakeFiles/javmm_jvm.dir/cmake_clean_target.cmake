file(REMOVE_RECURSE
  "libjavmm_jvm.a"
)
