file(REMOVE_RECURSE
  "CMakeFiles/javmm_jvm.dir/generational_heap.cc.o"
  "CMakeFiles/javmm_jvm.dir/generational_heap.cc.o.d"
  "CMakeFiles/javmm_jvm.dir/region_heap.cc.o"
  "CMakeFiles/javmm_jvm.dir/region_heap.cc.o.d"
  "CMakeFiles/javmm_jvm.dir/ti_agent.cc.o"
  "CMakeFiles/javmm_jvm.dir/ti_agent.cc.o.d"
  "libjavmm_jvm.a"
  "libjavmm_jvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javmm_jvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
