# Empty compiler generated dependencies file for javmm_jvm.
# This may be replaced when dependencies are built.
