
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jvm/generational_heap.cc" "src/jvm/CMakeFiles/javmm_jvm.dir/generational_heap.cc.o" "gcc" "src/jvm/CMakeFiles/javmm_jvm.dir/generational_heap.cc.o.d"
  "/root/repo/src/jvm/region_heap.cc" "src/jvm/CMakeFiles/javmm_jvm.dir/region_heap.cc.o" "gcc" "src/jvm/CMakeFiles/javmm_jvm.dir/region_heap.cc.o.d"
  "/root/repo/src/jvm/ti_agent.cc" "src/jvm/CMakeFiles/javmm_jvm.dir/ti_agent.cc.o" "gcc" "src/jvm/CMakeFiles/javmm_jvm.dir/ti_agent.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/javmm_base.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/javmm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/javmm_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/javmm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
