file(REMOVE_RECURSE
  "CMakeFiles/javmm_net.dir/link.cc.o"
  "CMakeFiles/javmm_net.dir/link.cc.o.d"
  "libjavmm_net.a"
  "libjavmm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javmm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
