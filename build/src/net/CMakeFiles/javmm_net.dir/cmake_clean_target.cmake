file(REMOVE_RECURSE
  "libjavmm_net.a"
)
