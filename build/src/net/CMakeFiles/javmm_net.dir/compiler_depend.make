# Empty compiler generated dependencies file for javmm_net.
# This may be replaced when dependencies are built.
