# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("sim")
subdirs("mem")
subdirs("net")
subdirs("stats")
subdirs("guest")
subdirs("jvm")
subdirs("workload")
subdirs("migration")
subdirs("core")
