file(REMOVE_RECURSE
  "libjavmm_sim.a"
)
