file(REMOVE_RECURSE
  "CMakeFiles/javmm_sim.dir/clock.cc.o"
  "CMakeFiles/javmm_sim.dir/clock.cc.o.d"
  "CMakeFiles/javmm_sim.dir/event_queue.cc.o"
  "CMakeFiles/javmm_sim.dir/event_queue.cc.o.d"
  "libjavmm_sim.a"
  "libjavmm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javmm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
