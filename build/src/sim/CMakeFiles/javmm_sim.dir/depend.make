# Empty dependencies file for javmm_sim.
# This may be replaced when dependencies are built.
