file(REMOVE_RECURSE
  "CMakeFiles/javmm_migration.dir/baselines.cc.o"
  "CMakeFiles/javmm_migration.dir/baselines.cc.o.d"
  "CMakeFiles/javmm_migration.dir/engine.cc.o"
  "CMakeFiles/javmm_migration.dir/engine.cc.o.d"
  "libjavmm_migration.a"
  "libjavmm_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javmm_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
