# Empty compiler generated dependencies file for javmm_migration.
# This may be replaced when dependencies are built.
