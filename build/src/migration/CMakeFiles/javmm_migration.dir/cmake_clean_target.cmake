file(REMOVE_RECURSE
  "libjavmm_migration.a"
)
