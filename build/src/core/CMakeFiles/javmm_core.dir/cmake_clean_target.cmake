file(REMOVE_RECURSE
  "libjavmm_core.a"
)
