# Empty compiler generated dependencies file for javmm_core.
# This may be replaced when dependencies are built.
