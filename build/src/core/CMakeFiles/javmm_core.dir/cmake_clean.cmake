file(REMOVE_RECURSE
  "CMakeFiles/javmm_core.dir/liveness.cc.o"
  "CMakeFiles/javmm_core.dir/liveness.cc.o.d"
  "CMakeFiles/javmm_core.dir/migration_lab.cc.o"
  "CMakeFiles/javmm_core.dir/migration_lab.cc.o.d"
  "CMakeFiles/javmm_core.dir/policy.cc.o"
  "CMakeFiles/javmm_core.dir/policy.cc.o.d"
  "libjavmm_core.a"
  "libjavmm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javmm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
