file(REMOVE_RECURSE
  "libjavmm_guest.a"
)
