
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/guest/guest_kernel.cc" "src/guest/CMakeFiles/javmm_guest.dir/guest_kernel.cc.o" "gcc" "src/guest/CMakeFiles/javmm_guest.dir/guest_kernel.cc.o.d"
  "/root/repo/src/guest/lkm.cc" "src/guest/CMakeFiles/javmm_guest.dir/lkm.cc.o" "gcc" "src/guest/CMakeFiles/javmm_guest.dir/lkm.cc.o.d"
  "/root/repo/src/guest/netlink_bus.cc" "src/guest/CMakeFiles/javmm_guest.dir/netlink_bus.cc.o" "gcc" "src/guest/CMakeFiles/javmm_guest.dir/netlink_bus.cc.o.d"
  "/root/repo/src/guest/va_range_set.cc" "src/guest/CMakeFiles/javmm_guest.dir/va_range_set.cc.o" "gcc" "src/guest/CMakeFiles/javmm_guest.dir/va_range_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/javmm_base.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/javmm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/javmm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
