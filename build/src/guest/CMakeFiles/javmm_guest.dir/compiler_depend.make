# Empty compiler generated dependencies file for javmm_guest.
# This may be replaced when dependencies are built.
