file(REMOVE_RECURSE
  "CMakeFiles/javmm_guest.dir/guest_kernel.cc.o"
  "CMakeFiles/javmm_guest.dir/guest_kernel.cc.o.d"
  "CMakeFiles/javmm_guest.dir/lkm.cc.o"
  "CMakeFiles/javmm_guest.dir/lkm.cc.o.d"
  "CMakeFiles/javmm_guest.dir/netlink_bus.cc.o"
  "CMakeFiles/javmm_guest.dir/netlink_bus.cc.o.d"
  "CMakeFiles/javmm_guest.dir/va_range_set.cc.o"
  "CMakeFiles/javmm_guest.dir/va_range_set.cc.o.d"
  "libjavmm_guest.a"
  "libjavmm_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javmm_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
