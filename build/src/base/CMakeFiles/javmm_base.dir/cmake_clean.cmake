file(REMOVE_RECURSE
  "CMakeFiles/javmm_base.dir/rng.cc.o"
  "CMakeFiles/javmm_base.dir/rng.cc.o.d"
  "CMakeFiles/javmm_base.dir/time.cc.o"
  "CMakeFiles/javmm_base.dir/time.cc.o.d"
  "CMakeFiles/javmm_base.dir/units.cc.o"
  "CMakeFiles/javmm_base.dir/units.cc.o.d"
  "libjavmm_base.a"
  "libjavmm_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javmm_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
