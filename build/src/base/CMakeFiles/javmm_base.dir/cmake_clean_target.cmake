file(REMOVE_RECURSE
  "libjavmm_base.a"
)
