# Empty dependencies file for javmm_base.
# This may be replaced when dependencies are built.
