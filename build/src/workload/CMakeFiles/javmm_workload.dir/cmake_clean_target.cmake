file(REMOVE_RECURSE
  "libjavmm_workload.a"
)
