
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/cache_application.cc" "src/workload/CMakeFiles/javmm_workload.dir/cache_application.cc.o" "gcc" "src/workload/CMakeFiles/javmm_workload.dir/cache_application.cc.o.d"
  "/root/repo/src/workload/g1_application.cc" "src/workload/CMakeFiles/javmm_workload.dir/g1_application.cc.o" "gcc" "src/workload/CMakeFiles/javmm_workload.dir/g1_application.cc.o.d"
  "/root/repo/src/workload/java_application.cc" "src/workload/CMakeFiles/javmm_workload.dir/java_application.cc.o" "gcc" "src/workload/CMakeFiles/javmm_workload.dir/java_application.cc.o.d"
  "/root/repo/src/workload/os_process.cc" "src/workload/CMakeFiles/javmm_workload.dir/os_process.cc.o" "gcc" "src/workload/CMakeFiles/javmm_workload.dir/os_process.cc.o.d"
  "/root/repo/src/workload/spec.cc" "src/workload/CMakeFiles/javmm_workload.dir/spec.cc.o" "gcc" "src/workload/CMakeFiles/javmm_workload.dir/spec.cc.o.d"
  "/root/repo/src/workload/throughput_analyzer.cc" "src/workload/CMakeFiles/javmm_workload.dir/throughput_analyzer.cc.o" "gcc" "src/workload/CMakeFiles/javmm_workload.dir/throughput_analyzer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/javmm_base.dir/DependInfo.cmake"
  "/root/repo/build/src/jvm/CMakeFiles/javmm_jvm.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/javmm_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/javmm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/javmm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/javmm_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
