# Empty compiler generated dependencies file for javmm_workload.
# This may be replaced when dependencies are built.
