file(REMOVE_RECURSE
  "CMakeFiles/javmm_workload.dir/cache_application.cc.o"
  "CMakeFiles/javmm_workload.dir/cache_application.cc.o.d"
  "CMakeFiles/javmm_workload.dir/g1_application.cc.o"
  "CMakeFiles/javmm_workload.dir/g1_application.cc.o.d"
  "CMakeFiles/javmm_workload.dir/java_application.cc.o"
  "CMakeFiles/javmm_workload.dir/java_application.cc.o.d"
  "CMakeFiles/javmm_workload.dir/os_process.cc.o"
  "CMakeFiles/javmm_workload.dir/os_process.cc.o.d"
  "CMakeFiles/javmm_workload.dir/spec.cc.o"
  "CMakeFiles/javmm_workload.dir/spec.cc.o.d"
  "CMakeFiles/javmm_workload.dir/throughput_analyzer.cc.o"
  "CMakeFiles/javmm_workload.dir/throughput_analyzer.cc.o.d"
  "libjavmm_workload.a"
  "libjavmm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javmm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
