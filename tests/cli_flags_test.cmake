# Flag-validation contract for migrate_cli and javmm_lint, run as the
# migrate_cli_flag_validation ctest: every malformed or contradictory flag
# combination must be rejected with exit code 2 and a pointed stderr message,
# before any simulation or lint work starts.
# Invoke with: cmake -DCLI=<migrate_cli> [-DLINT=<javmm_lint>] -P cli_flags_test.cmake

if(NOT DEFINED CLI)
  message(FATAL_ERROR "pass -DCLI=<path to migrate_cli>")
endif()

# Runs ${BIN} with the given flags; fails unless it exits 2 and stderr
# matches `pattern` (a CMake regex).
function(expect_reject_bin bin pattern)
  execute_process(COMMAND ${bin} ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 2)
    message(FATAL_ERROR "${bin} ${ARGN}: expected exit code 2, got '${rc}'\nstderr: ${err}")
  endif()
  if(NOT err MATCHES "${pattern}")
    message(FATAL_ERROR "${bin} ${ARGN}: stderr does not match '${pattern}'\nstderr: ${err}")
  endif()
endfunction()

function(expect_reject pattern)
  expect_reject_bin(${CLI} "${pattern}" ${ARGN})
endfunction()

# Malformed --hotness specs surface the parser's message.
expect_reject("bad --hotness spec 'banana'.*bad clause" --workload=crypto --hotness=banana)
expect_reject("decay must be >= 1" --workload=crypto --hotness=decay:0)
expect_reject("min_score must be >= 1" --workload=crypto --hotness=score:0)
expect_reject("bad value '-1' for rate" --workload=crypto --hotness=rate:-1)
expect_reject("budget must be > 0" --workload=crypto --hotness=budget:0ms)

# Hotness orders pre-copy rounds; engines without live rounds reject it.
expect_reject("--hotness orders pre-copy rounds.*stopcopy has none"
              --workload=crypto --engine=stopcopy --hotness=on)
expect_reject("--hotness orders pre-copy rounds.*postcopy has none"
              --workload=crypto --engine=postcopy --hotness=on)

# The pre-existing --channels validation stays intact alongside.
expect_reject("--channels must be >= 1, got 0" --workload=crypto --channels=0)

# javmm_lint rule-name validation: a typo in --disable=/--only= must be a hard
# usage error, never a silently widened or narrowed rule set.
if(DEFINED LINT)
  expect_reject_bin(${LINT} "unknown rule 'unit-mux'.*--list-rules" --disable=unit-mux src)
  expect_reject_bin(${LINT} "unknown rule 'overflow-mull'.*--list-rules" --only=overflow-mull src)
  expect_reject_bin(${LINT} "unknown rule ''.*--list-rules" --only= src)
  expect_reject_bin(${LINT} "usage: javmm_lint" --only=unit-mix)  # No paths.
endif()

message(STATUS "cli flag validation: all rejections exit 2 with pointed messages")
