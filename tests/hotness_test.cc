// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Tests for hotness-scored pre-copy ordering (DESIGN.md §12): the integer
// per-PFN score tracker, the --hotness spec grammar and its front-end
// validation, the determinism contract (hotness-off bit-identical to the
// pre-hotness seed export, hotness-on serial == 4-worker pool), and the
// auditor's hotness-deferral identities against forged traces/counters.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/core/migration_lab.h"
#include "src/mem/hotness.h"
#include "src/migration/engine.h"
#include "src/runner/runner.h"
#include "src/trace/auditor.h"

namespace javmm {
namespace {

LabConfig SmallLab(uint64_t seed = 1) {
  LabConfig config;
  config.vm_bytes = 512 * kMiB;
  config.seed = seed;
  config.os.resident_bytes = 64 * kMiB;
  config.os.hot_bytes = 8 * kMiB;
  return config;
}

WorkloadSpec SmallDerby() {
  WorkloadSpec spec = Workloads::Get("derby");
  spec.alloc_rate_bytes_per_sec = 100 * kMiB;
  spec.old_baseline_bytes = 32 * kMiB;
  spec.heap.young_max_bytes = 256 * kMiB;
  spec.heap.old_max_bytes = 128 * kMiB;
  return spec;
}

Scenario FastScenario(EngineKind kind, const std::string& label) {
  Scenario scenario;
  scenario.label = label;
  scenario.spec = Workloads::Get("crypto");
  scenario.engine = kind;
  scenario.options.warmup = Duration::Seconds(10);
  scenario.options.cooldown = Duration::Seconds(5);
  return scenario;
}

bool HasViolation(const TraceAuditReport& report, const std::string& needle) {
  for (const std::string& v : report.violations) {
    if (v.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

HotnessConfig MustParse(const std::string& spec) {
  HotnessConfig config;
  std::string error;
  EXPECT_TRUE(HotnessConfig::Parse(spec, &config, &error)) << error;
  return config;
}

std::string ParseError(const std::string& spec) {
  HotnessConfig config;
  std::string error;
  EXPECT_FALSE(HotnessConfig::Parse(spec, &config, &error)) << "spec '" << spec
                                                            << "' unexpectedly parsed";
  return error;
}

// ---- HotnessTracker: the integer score itself. ----

TEST(HotnessTrackerTest, UntouchedPagesStayColdForever) {
  HotnessTracker tracker(8, MustParse("on"));
  for (int round = 0; round < 50; ++round) {
    tracker.EndRound();
  }
  for (Pfn pfn = 0; pfn < 8; ++pfn) {
    EXPECT_EQ(tracker.score(pfn), 0);
    EXPECT_FALSE(tracker.IsHot(pfn));
  }
  EXPECT_EQ(tracker.rounds(), 50);
}

TEST(HotnessTrackerTest, OneAccessedRoundReachesTheDefaultThreshold) {
  HotnessTracker tracker(4, MustParse("on"));  // min_rate=2, min_score=8.
  tracker.OnGuestWrite(1);
  tracker.OnGuestWrite(1);
  tracker.EndRound();
  EXPECT_EQ(tracker.score(1), HotnessTracker::kAccessBoost);
  EXPECT_TRUE(tracker.IsHot(1));
  EXPECT_FALSE(tracker.IsHot(0));
}

TEST(HotnessTrackerTest, TouchesBelowMinRateDoNotCount) {
  HotnessTracker tracker(4, MustParse("on,rate:3"));
  tracker.OnGuestWrite(2);
  tracker.OnGuestWrite(2);
  tracker.EndRound();
  EXPECT_EQ(tracker.score(2), 0);
}

TEST(HotnessTrackerTest, MinRateZeroCountsAnyTouchedPageButNotIdleOnes) {
  HotnessTracker tracker(4, MustParse("on,rate:0"));
  tracker.OnGuestWrite(3);
  tracker.EndRound();
  EXPECT_EQ(tracker.score(3), HotnessTracker::kAccessBoost);
  // An untouched page must not gain the boost even though 0 >= min_rate.
  EXPECT_EQ(tracker.score(0), 0);
}

TEST(HotnessTrackerTest, IdleRoundsDecayTheScoreExponentially) {
  HotnessTracker tracker(2, MustParse("on,rate:1"));
  tracker.OnGuestWrite(0);
  tracker.EndRound();
  ASSERT_EQ(tracker.score(0), 8);
  tracker.EndRound();  // 8 >> 1.
  EXPECT_EQ(tracker.score(0), 4);
  EXPECT_FALSE(tracker.IsHot(0));  // Cooled below min_score=8 after 1 idle round.
  tracker.EndRound();
  tracker.EndRound();
  EXPECT_EQ(tracker.score(0), 1);
  tracker.EndRound();
  EXPECT_EQ(tracker.score(0), 0);
}

TEST(HotnessTrackerTest, AlwaysAccessedPageConvergesToFixedPoint) {
  // decay=1: s -> (s >> 1) + 8 has fixed point 15, reached monotonically.
  HotnessTracker tracker(1, MustParse("on,rate:1"));
  for (int round = 0; round < 30; ++round) {
    tracker.OnGuestWrite(0);
    tracker.EndRound();
    EXPECT_LE(tracker.score(0), 15);
  }
  EXPECT_EQ(tracker.score(0), 15);
}

TEST(HotnessTrackerTest, HugeDecayClampsToAFullCooldown) {
  // decay >= 63 must not be UB: the shift clamps, so the score resets to
  // exactly the boost each accessed round and to zero each idle round.
  HotnessTracker tracker(1, MustParse("on,rate:1,decay:100"));
  tracker.OnGuestWrite(0);
  tracker.EndRound();
  EXPECT_EQ(tracker.score(0), HotnessTracker::kAccessBoost);
  tracker.EndRound();
  EXPECT_EQ(tracker.score(0), 0);
}

TEST(HotnessTrackerTest, BadKnobsDieEvenIfAFrontEndForgotToValidate) {
  HotnessConfig config = MustParse("on");
  config.decay = 0;
  EXPECT_DEATH_IF_SUPPORTED(HotnessTracker(4, config), "decay");
  config = MustParse("on");
  config.min_score = 0;
  EXPECT_DEATH_IF_SUPPORTED(HotnessTracker(4, config), "min_score");
}

// ---- The --hotness spec grammar. ----

TEST(HotnessParseTest, EmptyAndOffDisable) {
  EXPECT_FALSE(MustParse("").enabled);
  EXPECT_FALSE(MustParse("off").enabled);
}

TEST(HotnessParseTest, OnEnablesTheDocumentedDefaults) {
  const HotnessConfig config = MustParse("on");
  EXPECT_TRUE(config.enabled);
  EXPECT_EQ(config.min_rate, 2);
  EXPECT_EQ(config.min_score, 8);
  EXPECT_EQ(config.decay, 1);
  EXPECT_EQ(config.defer_budget.nanos(), Duration::Millis(500).nanos());
}

TEST(HotnessParseTest, KnobClausesEnableAndOverride) {
  const HotnessConfig config = MustParse("rate:3,score:16,decay:2,budget:2s");
  EXPECT_TRUE(config.enabled);
  EXPECT_EQ(config.min_rate, 3);
  EXPECT_EQ(config.min_score, 16);
  EXPECT_EQ(config.decay, 2);
  EXPECT_EQ(config.defer_budget.nanos(), Duration::Seconds(2).nanos());
}

TEST(HotnessParseTest, BudgetAcceptsAllFourUnits) {
  EXPECT_EQ(MustParse("budget:123456ns").defer_budget.nanos(), 123456);
  EXPECT_EQ(MustParse("budget:750us").defer_budget.nanos(), 750000);
  EXPECT_EQ(MustParse("budget:250ms").defer_budget.nanos(), 250000000);
  EXPECT_EQ(MustParse("budget:3s").defer_budget.nanos(), 3000000000);
}

TEST(HotnessParseTest, MalformedSpecsFailWithPointedErrors) {
  EXPECT_NE(ParseError("banana").find("bad clause"), std::string::npos);
  EXPECT_NE(ParseError("color:7").find("unknown key"), std::string::npos);
  EXPECT_NE(ParseError("rate:-1").find("bad value"), std::string::npos);
  EXPECT_NE(ParseError("rate:two").find("bad value"), std::string::npos);
  EXPECT_NE(ParseError("budget:5m").find("bad budget"), std::string::npos);
  EXPECT_NE(ParseError("budget:ms").find("bad budget"), std::string::npos);
}

TEST(HotnessParseTest, OutOfRangeKnobsAreParseErrors) {
  EXPECT_NE(ParseError("score:0").find("min_score must be >= 1"), std::string::npos);
  EXPECT_NE(ParseError("decay:0").find("decay must be >= 1"), std::string::npos);
  EXPECT_NE(ParseError("budget:0ms").find("budget must be > 0"), std::string::npos);
}

// ---- Front-end validation: the runner rejects what the CLI rejects. ----

TEST(HotnessScenarioTest, BadSpecThrowsWithTheParserMessage) {
  Scenario scenario = FastScenario(EngineKind::kXenPrecopy, "bad-spec");
  scenario.options.hotness_spec = "decay:0";
  try {
    RunScenario(scenario);
    FAIL() << "expected bad hotness spec to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad hotness spec 'decay:0'"), std::string::npos)
        << e.what();
  }
}

TEST(HotnessScenarioTest, NonIterativeEnginesRejectHotness) {
  for (const EngineKind kind : {EngineKind::kStopAndCopy, EngineKind::kPostcopy}) {
    Scenario scenario = FastScenario(kind, "hotness-on-baseline");
    scenario.options.hotness_spec = "on";
    try {
      RunScenario(scenario);
      FAIL() << "expected hotness + " << EngineKindName(kind) << " to throw";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("pre-copy only"), std::string::npos) << e.what();
    }
  }
}

// ---- Auditor: hotness-deferral identities. ----

// A pre-copy run (hotness on or off) whose trace/result pair we can corrupt
// in controlled ways, with the audit inputs reconstructed from the result.
struct AuditFixture {
  MigrationResult result;
  TraceRecorder trace;
  AuditInputs inputs;
};

AuditFixture RunPrecopyFixture(const std::string& hotness_spec) {
  LabConfig config = SmallLab();
  MigrationLab lab(SmallDerby(), config);
  lab.Run(Duration::Seconds(5));
  MigrationConfig mig = lab.config().migration;
  std::string error;
  EXPECT_TRUE(HotnessConfig::Parse(hotness_spec, &mig.hotness, &error)) << error;
  MigrationEngine engine(&lab.guest(), mig);
  AuditFixture fx;
  fx.result = engine.Migrate();
  fx.trace = engine.trace();
  fx.inputs.link_wire_bytes = fx.result.total_wire_bytes;
  fx.inputs.link_pages_sent = fx.result.pages_sent;
  fx.inputs.link_retry_bytes = fx.result.retry_wire_bytes;
  fx.inputs.control_bytes_per_iteration = mig.control_bytes_per_iteration;
  fx.inputs.retry_backoff_base = mig.retry_backoff_base;
  fx.inputs.retry_backoff_cap = mig.retry_backoff_cap;
  fx.inputs.hotness_enabled = mig.hotness.enabled;
  return fx;
}

TEST(HotnessAuditTest, ReconstructedInputsReproduceAPassingAudit) {
  const AuditFixture fx = RunPrecopyFixture("on,rate:1");
  ASSERT_TRUE(fx.result.trace_audit.ran);
  ASSERT_TRUE(fx.result.trace_audit.ok) << fx.result.trace_audit.ToString();
  EXPECT_TRUE(fx.result.hotness);
  EXPECT_GT(fx.result.pages_deferred_hot, 0);
  const TraceAuditReport report =
      TraceAuditor::Audit(AuditMode::kPrecopy, fx.trace, fx.result, fx.inputs);
  EXPECT_TRUE(report.ok) << report.ToString();
}

TEST(HotnessAuditTest, ForgedDeferEventInAHotnessOffTraceIsRejected) {
  AuditFixture fx = RunPrecopyFixture("off");
  ASSERT_TRUE(fx.result.trace_audit.ok) << fx.result.trace_audit.ToString();
  TraceEvent event;
  event.kind = TraceEventKind::kHotnessDefer;
  event.at = fx.trace.events().back().at;
  event.iteration = 1;
  event.pages = 1;
  event.scanned = 1;
  fx.trace.Record(event);
  const TraceAuditReport report =
      TraceAuditor::Audit(AuditMode::kPrecopy, fx.trace, fx.result, fx.inputs);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(HasViolation(report, "hotness was disabled")) << report.ToString();
}

TEST(HotnessAuditTest, ForgedCountersInAHotnessOffResultAreRejected) {
  AuditFixture fx = RunPrecopyFixture("off");
  fx.result.pages_deferred_hot = 5;
  const TraceAuditReport report =
      TraceAuditor::Audit(AuditMode::kPrecopy, fx.trace, fx.result, fx.inputs);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(HasViolation(report, "hotness-off run reports")) << report.ToString();
}

TEST(HotnessAuditTest, InflatedDeferredCounterBreaksTheEventSumIdentity) {
  AuditFixture fx = RunPrecopyFixture("on,rate:1");
  ASSERT_GT(fx.result.pages_deferred_hot, 0);
  ++fx.result.pages_deferred_hot;
  const TraceAuditReport report =
      TraceAuditor::Audit(AuditMode::kPrecopy, fx.trace, fx.result, fx.inputs);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(HasViolation(report, "parked pages")) << report.ToString();
}

TEST(HotnessAuditTest, InflatedAvoidedCounterBreaksTheEventSumIdentity) {
  AuditFixture fx = RunPrecopyFixture("on,rate:1");
  ASSERT_GT(fx.result.resend_pages_avoided, 0);
  ++fx.result.resend_pages_avoided;
  const TraceAuditReport report =
      TraceAuditor::Audit(AuditMode::kPrecopy, fx.trace, fx.result, fx.inputs);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(HasViolation(report, "avoided re-sends")) << report.ToString();
}

TEST(HotnessAuditTest, HotnessOnRunAuditedAsOffIsRejected) {
  AuditFixture fx = RunPrecopyFixture("on,rate:1");
  fx.inputs.hotness_enabled = false;
  const TraceAuditReport report =
      TraceAuditor::Audit(AuditMode::kPrecopy, fx.trace, fx.result, fx.inputs);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(HasViolation(report, "hotness was disabled")) << report.ToString();
}

// ---- Determinism: hotness-on, serial vs 4-worker pool. ----

TEST(HotnessRunnerTest, HotnessOnParallelMatchesSerial) {
  const EngineKind kEngines[] = {EngineKind::kXenPrecopy, EngineKind::kJavmm};
  const char* kSpecs[] = {"on", "rate:1,score:4,decay:2,budget:250ms"};
  std::vector<Scenario> scenarios;
  for (const char* spec : kSpecs) {
    for (const EngineKind kind : kEngines) {
      Scenario scenario = FastScenario(
          kind, std::string(EngineKindName(kind)) + "/hot[" + spec + "]");
      scenario.options.hotness_spec = spec;
      scenarios.push_back(std::move(scenario));
    }
  }
  const RunReport serial = ScenarioRunner(/*jobs=*/1).RunAll(scenarios);
  const RunReport parallel = ScenarioRunner(/*jobs=*/4).RunAll(scenarios);
  ASSERT_EQ(serial.runs.size(), scenarios.size());
  ASSERT_EQ(parallel.runs.size(), scenarios.size());
  bool any_deferred = false;
  for (size_t i = 0; i < scenarios.size(); ++i) {
    SCOPED_TRACE(scenarios[i].label);
    const RunRecord& s = serial.runs[i];
    const RunRecord& p = parallel.runs[i];
    ASSERT_TRUE(s.ran) << s.error;
    ASSERT_TRUE(p.ran) << p.error;
    const MigrationResult& r = s.output.result;
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.verification.ok);
    ASSERT_TRUE(r.trace_audit.ran);
    EXPECT_TRUE(r.trace_audit.ok) << r.trace_audit.ToString();
    EXPECT_TRUE(r.hotness);
    any_deferred = any_deferred || r.pages_deferred_hot > 0;
    // Byte identity between the execution modes.
    EXPECT_EQ(r.total_time.nanos(), p.output.result.total_time.nanos());
    EXPECT_EQ(r.downtime.Total().nanos(), p.output.result.downtime.Total().nanos());
    EXPECT_EQ(r.total_wire_bytes, p.output.result.total_wire_bytes);
    EXPECT_EQ(r.pages_sent, p.output.result.pages_sent);
    EXPECT_EQ(r.pages_deferred_hot, p.output.result.pages_deferred_hot);
    EXPECT_EQ(r.resend_pages_avoided, p.output.result.resend_pages_avoided);
    EXPECT_EQ(s.output.observed_downtime.nanos(), p.output.observed_downtime.nanos());
  }
  // The battery must actually exercise the deferral path, or the identity
  // checks above are vacuous.
  EXPECT_TRUE(any_deferred);
  std::ostringstream serial_json;
  std::ostringstream parallel_json;
  serial.ExportJsonLines(serial_json);
  parallel.ExportJsonLines(parallel_json);
  EXPECT_EQ(serial_json.str(), parallel_json.str());
}

// ---- Hotness off: bit-identity against the pre-hotness seed export. ----

// JSON-lines export of the 6-regime x 4-engine battery captured from the
// seed tree (before hotness scoring existed), crypto workload, warmup 10 s,
// cooldown 5 s, seed 1, default lab. Re-running the battery with an explicit
// --hotness=off must reproduce it byte for byte: same bytes on the wire,
// same timings, and no hotness keys in the export.
const char kGoldenSeedExport[] = R"gold({"label":"healthy/Xen","workload":"crypto","engine":"Xen","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":21,"total_time_ns":57885589784,"downtime_ns":1972921901,"wire_bytes":6852566216,"pages_sent":1641724,"pages_skipped_dirty":158458,"pages_skipped_bitmap":0,"cpu_ns":6836923300,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":2000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"healthy/JAVMM","workload":"crypto","engine":"JAVMM","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":5,"total_time_ns":15567336868,"downtime_ns":597796796,"wire_bytes":1755319312,"pages_sent":420536,"pages_skipped_dirty":463,"pages_skipped_bitmap":215444,"cpu_ns":1777610450,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":0,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"healthy/stop-and-copy","workload":"crypto","engine":"stop-and-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":1,"total_time_ns":18598446720,"downtime_ns":18598446720,"wire_bytes":2188378112,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":2097152000,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":18000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"healthy/post-copy","workload":"crypto","engine":"post-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":0,"total_time_ns":60523624133,"downtime_ns":205320455,"wire_bytes":2192572416,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":0,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":3000000000,"demand_faults":91065,"fault_stall_ns":45090743685,"degradation_window_ns":60318303678}
{"label":"bw-collapse/Xen","workload":"crypto","engine":"Xen","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":25,"total_time_ns":99470117713,"downtime_ns":1962798853,"wire_bytes":6803394370,"pages_sent":1629943,"pages_skipped_dirty":339431,"pages_skipped_bitmap":0,"cpu_ns":6815178100,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":1000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"bw-collapse/JAVMM","workload":"crypto","engine":"JAVMM","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":4,"total_time_ns":50162326816,"downtime_ns":222121502,"wire_bytes":1776664636,"pages_sent":425650,"pages_skipped_dirty":1237,"pages_skipped_bitmap":241156,"cpu_ns":1802806450,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":0,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"bw-collapse/stop-and-copy","workload":"crypto","engine":"stop-and-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":1,"total_time_ns":60598447520,"downtime_ns":60598447520,"wire_bytes":2188378112,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":2097152000,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":60000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"bw-collapse/post-copy","workload":"crypto","engine":"post-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":0,"total_time_ns":79038187045,"downtime_ns":287734849,"wire_bytes":2192572416,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":0,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":6000000000,"demand_faults":107596,"fault_stall_ns":61164514716,"degradation_window_ns":78750452196}
{"label":"lossy-ctl/Xen","workload":"crypto","engine":"Xen","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":16,"total_time_ns":62420853968,"downtime_ns":3375174963,"wire_bytes":7130113786,"pages_sent":1708219,"pages_skipped_dirty":181651,"pages_skipped_bitmap":0,"cpu_ns":7116356500,"control_losses":7,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":3584,"backoff_ns":450000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":3000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"lossy-ctl/JAVMM","workload":"crypto","engine":"JAVMM","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":7,"total_time_ns":16625647035,"downtime_ns":372904387,"wire_bytes":1756860542,"pages_sent":420905,"pages_skipped_dirty":582,"pages_skipped_bitmap":236004,"cpu_ns":1782243650,"control_losses":3,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":1536,"backoff_ns":150000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":0,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"lossy-ctl/stop-and-copy","workload":"crypto","engine":"stop-and-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":1,"total_time_ns":18598446720,"downtime_ns":18598446720,"wire_bytes":2188378112,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":2097152000,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":18000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"lossy-ctl/post-copy","workload":"crypto","engine":"post-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":0,"total_time_ns":21416435704847,"downtime_ns":205320455,"wire_bytes":2192572416,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":0,"control_losses":59288,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":30355456,"backoff_ns":6534750000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":19469000000000,"demand_faults":89553,"fault_stall_ns":21400949678397,"degradation_window_ns":21416230384392}
{"label":"outage/Xen","workload":"crypto","engine":"Xen","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":22,"total_time_ns":58082808479,"downtime_ns":1766067254,"wire_bytes":6757094826,"pages_sent":1618851,"pages_skipped_dirty":159938,"pages_skipped_bitmap":0,"cpu_ns":6742222350,"control_losses":0,"burst_faults":1,"round_timeouts":0,"retry_wire_bytes":94119,"backoff_ns":1000000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":1000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"outage/JAVMM","workload":"crypto","engine":"JAVMM","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":5,"total_time_ns":16982215811,"downtime_ns":415871838,"wire_bytes":1757406312,"pages_sent":421036,"pages_skipped_dirty":506,"pages_skipped_bitmap":234260,"cpu_ns":1782514300,"control_losses":0,"burst_faults":1,"round_timeouts":0,"retry_wire_bytes":94119,"backoff_ns":1000000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":0,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"outage/stop-and-copy","workload":"crypto","engine":"stop-and-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":1,"total_time_ns":19599639305,"downtime_ns":19599639305,"wire_bytes":2188378112,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":2097152000,"control_losses":0,"burst_faults":1,"round_timeouts":0,"retry_wire_bytes":141619,"backoff_ns":1000000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":19000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"outage/post-copy","workload":"crypto","engine":"post-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":0,"total_time_ns":61523571184,"downtime_ns":205320455,"wire_bytes":2192572416,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":0,"control_losses":1,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":512,"backoff_ns":749947051,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":3000000000,"demand_faults":91065,"fault_stall_ns":46090690736,"degradation_window_ns":61318250729}
{"label":"lat-spike/Xen","workload":"crypto","engine":"Xen","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":21,"total_time_ns":58594640298,"downtime_ns":1890426089,"wire_bytes":6831078464,"pages_sent":1636576,"pages_skipped_dirty":178180,"pages_skipped_bitmap":0,"cpu_ns":6818517400,"control_losses":2,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":1024,"backoff_ns":150000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":1000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"lat-spike/JAVMM","workload":"crypto","engine":"JAVMM","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":8,"total_time_ns":15548160588,"downtime_ns":205355381,"wire_bytes":1751130152,"pages_sent":419532,"pages_skipped_dirty":481,"pages_skipped_bitmap":214788,"cpu_ns":1773348150,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":0,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"lat-spike/stop-and-copy","workload":"crypto","engine":"stop-and-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":1,"total_time_ns":18598446720,"downtime_ns":18598446720,"wire_bytes":2188378112,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":2097152000,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":18000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"lat-spike/post-copy","workload":"crypto","engine":"post-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":0,"total_time_ns":7215085764847,"downtime_ns":205320455,"wire_bytes":2192572416,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":0,"control_losses":22570,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":11555840,"backoff_ns":1503200000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":6511000000000,"demand_faults":89554,"fault_stall_ns":7199599773546,"degradation_window_ns":7214880444392}
{"label":"combined/Xen","workload":"crypto","engine":"Xen","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":24,"total_time_ns":94181311713,"downtime_ns":2427545181,"wire_bytes":6934565982,"pages_sent":1661369,"pages_skipped_dirty":665839,"pages_skipped_bitmap":0,"cpu_ns":6994557200,"control_losses":18,"burst_faults":1,"round_timeouts":0,"retry_wire_bytes":943293,"backoff_ns":2950000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":2000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"combined/JAVMM","workload":"crypto","engine":"JAVMM","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":7,"total_time_ns":32685665303,"downtime_ns":435132962,"wire_bytes":1771686590,"pages_sent":424457,"pages_skipped_dirty":1164,"pages_skipped_bitmap":238756,"cpu_ns":1797484550,"control_losses":3,"burst_faults":1,"round_timeouts":0,"retry_wire_bytes":935613,"backoff_ns":1650000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":0,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"combined/stop-and-copy","workload":"crypto","engine":"stop-and-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":1,"total_time_ns":38537086283,"downtime_ns":38537086283,"wire_bytes":2188378112,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":2097152000,"control_losses":0,"burst_faults":1,"round_timeouts":0,"retry_wire_bytes":605078,"backoff_ns":1500000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":38000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"combined/post-copy","workload":"crypto","engine":"post-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":0,"total_time_ns":21467845450509,"downtime_ns":240640909,"wire_bytes":2192572416,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":0,"control_losses":59427,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":30426624,"backoff_ns":6551239771663,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":19525000000000,"demand_faults":89809,"fault_stall_ns":21452324103604,"degradation_window_ns":21467604809600}
)gold";

TEST(HotnessGoldenTest, HotnessOffBatteryMatchesSeedExport) {
  struct Regime {
    const char* name;
    const char* spec;
  };
  const Regime kRegimes[] = {
      {"healthy", ""},
      {"bw-collapse", "bw:0s-60s@0.3"},
      {"lossy-ctl", "loss:0.4"},
      {"outage", "out:1s-2s"},
      {"lat-spike", "lat:0s-30s+20ms;loss:0.2"},
      {"combined", "bw:0s-60s@0.5;loss:0.4;out:1s-2500ms"},
  };
  const EngineKind kEngines[] = {EngineKind::kXenPrecopy, EngineKind::kJavmm,
                                 EngineKind::kStopAndCopy, EngineKind::kPostcopy};
  std::vector<Scenario> scenarios;
  for (const Regime& regime : kRegimes) {
    for (const EngineKind kind : kEngines) {
      Scenario scenario =
          FastScenario(kind, std::string(regime.name) + "/" + EngineKindName(kind));
      scenario.options.fault_spec = regime.spec;
      scenario.options.hotness_spec = "off";  // Explicit off == default.
      scenarios.push_back(std::move(scenario));
    }
  }
  const RunReport report = ScenarioRunner(/*jobs=*/4).RunAll(scenarios);
  EXPECT_EQ(report.errors, 0);
  EXPECT_EQ(report.verification_failures, 0);
  EXPECT_EQ(report.audit_failures, 0);
  std::ostringstream os;
  report.ExportJsonLines(os);
  EXPECT_EQ(os.str(), std::string(kGoldenSeedExport));
}

}  // namespace
}  // namespace javmm
