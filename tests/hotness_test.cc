// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Tests for hotness-scored pre-copy ordering (DESIGN.md §12): the integer
// per-PFN score tracker, the --hotness spec grammar and its front-end
// validation, the determinism contract (hotness-off bit-identical to the
// pre-hotness seed export, hotness-on serial == 4-worker pool), and the
// auditor's hotness-deferral identities against forged traces/counters.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/core/migration_lab.h"
#include "src/mem/hotness.h"
#include "src/migration/engine.h"
#include "src/runner/runner.h"
#include "src/trace/auditor.h"
#include "tests/golden_seed_export.h"

namespace javmm {
namespace {

LabConfig SmallLab(uint64_t seed = 1) {
  LabConfig config;
  config.vm_bytes = 512 * kMiB;
  config.seed = seed;
  config.os.resident_bytes = 64 * kMiB;
  config.os.hot_bytes = 8 * kMiB;
  return config;
}

WorkloadSpec SmallDerby() {
  WorkloadSpec spec = Workloads::Get("derby");
  spec.alloc_rate_bytes_per_sec = 100 * kMiB;
  spec.old_baseline_bytes = 32 * kMiB;
  spec.heap.young_max_bytes = 256 * kMiB;
  spec.heap.old_max_bytes = 128 * kMiB;
  return spec;
}

Scenario FastScenario(EngineKind kind, const std::string& label) {
  Scenario scenario;
  scenario.label = label;
  scenario.spec = Workloads::Get("crypto");
  scenario.engine = kind;
  scenario.options.warmup = Duration::Seconds(10);
  scenario.options.cooldown = Duration::Seconds(5);
  return scenario;
}

bool HasViolation(const TraceAuditReport& report, const std::string& needle) {
  for (const std::string& v : report.violations) {
    if (v.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

HotnessConfig MustParse(const std::string& spec) {
  HotnessConfig config;
  std::string error;
  EXPECT_TRUE(HotnessConfig::Parse(spec, &config, &error)) << error;
  return config;
}

std::string ParseError(const std::string& spec) {
  HotnessConfig config;
  std::string error;
  EXPECT_FALSE(HotnessConfig::Parse(spec, &config, &error)) << "spec '" << spec
                                                            << "' unexpectedly parsed";
  return error;
}

// ---- HotnessTracker: the integer score itself. ----

TEST(HotnessTrackerTest, UntouchedPagesStayColdForever) {
  HotnessTracker tracker(8, MustParse("on"));
  for (int round = 0; round < 50; ++round) {
    tracker.EndRound();
  }
  for (Pfn pfn = 0; pfn < 8; ++pfn) {
    EXPECT_EQ(tracker.score(pfn), 0);
    EXPECT_FALSE(tracker.IsHot(pfn));
  }
  EXPECT_EQ(tracker.rounds(), 50);
}

TEST(HotnessTrackerTest, OneAccessedRoundReachesTheDefaultThreshold) {
  HotnessTracker tracker(4, MustParse("on"));  // min_rate=2, min_score=8.
  tracker.OnGuestWrite(1);
  tracker.OnGuestWrite(1);
  tracker.EndRound();
  EXPECT_EQ(tracker.score(1), HotnessTracker::kAccessBoost);
  EXPECT_TRUE(tracker.IsHot(1));
  EXPECT_FALSE(tracker.IsHot(0));
}

TEST(HotnessTrackerTest, TouchesBelowMinRateDoNotCount) {
  HotnessTracker tracker(4, MustParse("on,rate:3"));
  tracker.OnGuestWrite(2);
  tracker.OnGuestWrite(2);
  tracker.EndRound();
  EXPECT_EQ(tracker.score(2), 0);
}

TEST(HotnessTrackerTest, MinRateZeroCountsAnyTouchedPageButNotIdleOnes) {
  HotnessTracker tracker(4, MustParse("on,rate:0"));
  tracker.OnGuestWrite(3);
  tracker.EndRound();
  EXPECT_EQ(tracker.score(3), HotnessTracker::kAccessBoost);
  // An untouched page must not gain the boost even though 0 >= min_rate.
  EXPECT_EQ(tracker.score(0), 0);
}

TEST(HotnessTrackerTest, IdleRoundsDecayTheScoreExponentially) {
  HotnessTracker tracker(2, MustParse("on,rate:1"));
  tracker.OnGuestWrite(0);
  tracker.EndRound();
  ASSERT_EQ(tracker.score(0), 8);
  tracker.EndRound();  // 8 >> 1.
  EXPECT_EQ(tracker.score(0), 4);
  EXPECT_FALSE(tracker.IsHot(0));  // Cooled below min_score=8 after 1 idle round.
  tracker.EndRound();
  tracker.EndRound();
  EXPECT_EQ(tracker.score(0), 1);
  tracker.EndRound();
  EXPECT_EQ(tracker.score(0), 0);
}

TEST(HotnessTrackerTest, AlwaysAccessedPageConvergesToFixedPoint) {
  // decay=1: s -> (s >> 1) + 8 has fixed point 15, reached monotonically.
  HotnessTracker tracker(1, MustParse("on,rate:1"));
  for (int round = 0; round < 30; ++round) {
    tracker.OnGuestWrite(0);
    tracker.EndRound();
    EXPECT_LE(tracker.score(0), 15);
  }
  EXPECT_EQ(tracker.score(0), 15);
}

TEST(HotnessTrackerTest, HugeDecayClampsToAFullCooldown) {
  // decay >= 63 must not be UB: the shift clamps, so the score resets to
  // exactly the boost each accessed round and to zero each idle round.
  HotnessTracker tracker(1, MustParse("on,rate:1,decay:100"));
  tracker.OnGuestWrite(0);
  tracker.EndRound();
  EXPECT_EQ(tracker.score(0), HotnessTracker::kAccessBoost);
  tracker.EndRound();
  EXPECT_EQ(tracker.score(0), 0);
}

TEST(HotnessTrackerTest, BadKnobsDieEvenIfAFrontEndForgotToValidate) {
  HotnessConfig config = MustParse("on");
  config.decay = 0;
  EXPECT_DEATH_IF_SUPPORTED(HotnessTracker(4, config), "decay");
  config = MustParse("on");
  config.min_score = 0;
  EXPECT_DEATH_IF_SUPPORTED(HotnessTracker(4, config), "min_score");
}

// ---- The --hotness spec grammar. ----

TEST(HotnessParseTest, EmptyAndOffDisable) {
  EXPECT_FALSE(MustParse("").enabled);
  EXPECT_FALSE(MustParse("off").enabled);
}

TEST(HotnessParseTest, OnEnablesTheDocumentedDefaults) {
  const HotnessConfig config = MustParse("on");
  EXPECT_TRUE(config.enabled);
  EXPECT_EQ(config.min_rate, 2);
  EXPECT_EQ(config.min_score, 8);
  EXPECT_EQ(config.decay, 1);
  EXPECT_EQ(config.defer_budget.nanos(), Duration::Millis(500).nanos());
}

TEST(HotnessParseTest, KnobClausesEnableAndOverride) {
  const HotnessConfig config = MustParse("rate:3,score:16,decay:2,budget:2s");
  EXPECT_TRUE(config.enabled);
  EXPECT_EQ(config.min_rate, 3);
  EXPECT_EQ(config.min_score, 16);
  EXPECT_EQ(config.decay, 2);
  EXPECT_EQ(config.defer_budget.nanos(), Duration::Seconds(2).nanos());
}

TEST(HotnessParseTest, BudgetAcceptsAllFourUnits) {
  EXPECT_EQ(MustParse("budget:123456ns").defer_budget.nanos(), 123456);
  EXPECT_EQ(MustParse("budget:750us").defer_budget.nanos(), 750000);
  EXPECT_EQ(MustParse("budget:250ms").defer_budget.nanos(), 250000000);
  EXPECT_EQ(MustParse("budget:3s").defer_budget.nanos(), 3000000000);
}

TEST(HotnessParseTest, MalformedSpecsFailWithPointedErrors) {
  EXPECT_NE(ParseError("banana").find("bad clause"), std::string::npos);
  EXPECT_NE(ParseError("color:7").find("unknown key"), std::string::npos);
  EXPECT_NE(ParseError("rate:-1").find("bad value"), std::string::npos);
  EXPECT_NE(ParseError("rate:two").find("bad value"), std::string::npos);
  EXPECT_NE(ParseError("budget:5m").find("bad budget"), std::string::npos);
  EXPECT_NE(ParseError("budget:ms").find("bad budget"), std::string::npos);
}

TEST(HotnessParseTest, OutOfRangeKnobsAreParseErrors) {
  EXPECT_NE(ParseError("score:0").find("min_score must be >= 1"), std::string::npos);
  EXPECT_NE(ParseError("decay:0").find("decay must be >= 1"), std::string::npos);
  EXPECT_NE(ParseError("budget:0ms").find("budget must be > 0"), std::string::npos);
}

// ---- Front-end validation: the runner rejects what the CLI rejects. ----

TEST(HotnessScenarioTest, BadSpecThrowsWithTheParserMessage) {
  Scenario scenario = FastScenario(EngineKind::kXenPrecopy, "bad-spec");
  scenario.options.hotness_spec = "decay:0";
  try {
    RunScenario(scenario);
    FAIL() << "expected bad hotness spec to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad hotness spec 'decay:0'"), std::string::npos)
        << e.what();
  }
}

TEST(HotnessScenarioTest, NonIterativeEnginesRejectHotness) {
  for (const EngineKind kind : {EngineKind::kStopAndCopy, EngineKind::kPostcopy}) {
    Scenario scenario = FastScenario(kind, "hotness-on-baseline");
    scenario.options.hotness_spec = "on";
    try {
      RunScenario(scenario);
      FAIL() << "expected hotness + " << EngineKindName(kind) << " to throw";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("pre-copy only"), std::string::npos) << e.what();
    }
  }
}

// ---- Auditor: hotness-deferral identities. ----

// A pre-copy run (hotness on or off) whose trace/result pair we can corrupt
// in controlled ways, with the audit inputs reconstructed from the result.
struct AuditFixture {
  MigrationResult result;
  TraceRecorder trace;
  AuditInputs inputs;
};

AuditFixture RunPrecopyFixture(const std::string& hotness_spec) {
  LabConfig config = SmallLab();
  MigrationLab lab(SmallDerby(), config);
  lab.Run(Duration::Seconds(5));
  MigrationConfig mig = lab.config().migration;
  std::string error;
  EXPECT_TRUE(HotnessConfig::Parse(hotness_spec, &mig.hotness, &error)) << error;
  MigrationEngine engine(&lab.guest(), mig);
  AuditFixture fx;
  fx.result = engine.Migrate();
  fx.trace = engine.trace();
  fx.inputs.link_wire_bytes = fx.result.total_wire_bytes;
  fx.inputs.link_pages_sent = fx.result.pages_sent;
  fx.inputs.link_retry_bytes = fx.result.retry_wire_bytes;
  fx.inputs.control_bytes_per_iteration = mig.control_bytes_per_iteration;
  fx.inputs.retry_backoff_base = mig.retry_backoff_base;
  fx.inputs.retry_backoff_cap = mig.retry_backoff_cap;
  fx.inputs.hotness_enabled = mig.hotness.enabled;
  return fx;
}

TEST(HotnessAuditTest, ReconstructedInputsReproduceAPassingAudit) {
  const AuditFixture fx = RunPrecopyFixture("on,rate:1");
  ASSERT_TRUE(fx.result.trace_audit.ran);
  ASSERT_TRUE(fx.result.trace_audit.ok) << fx.result.trace_audit.ToString();
  EXPECT_TRUE(fx.result.hotness);
  EXPECT_GT(fx.result.pages_deferred_hot, 0);
  const TraceAuditReport report =
      TraceAuditor::Audit(AuditMode::kPrecopy, fx.trace, fx.result, fx.inputs);
  EXPECT_TRUE(report.ok) << report.ToString();
}

TEST(HotnessAuditTest, ForgedDeferEventInAHotnessOffTraceIsRejected) {
  AuditFixture fx = RunPrecopyFixture("off");
  ASSERT_TRUE(fx.result.trace_audit.ok) << fx.result.trace_audit.ToString();
  TraceEvent event;
  event.kind = TraceEventKind::kHotnessDefer;
  event.at = fx.trace.events().back().at;
  event.iteration = 1;
  event.pages = 1;
  event.scanned = 1;
  fx.trace.Record(event);
  const TraceAuditReport report =
      TraceAuditor::Audit(AuditMode::kPrecopy, fx.trace, fx.result, fx.inputs);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(HasViolation(report, "hotness was disabled")) << report.ToString();
}

TEST(HotnessAuditTest, ForgedCountersInAHotnessOffResultAreRejected) {
  AuditFixture fx = RunPrecopyFixture("off");
  fx.result.pages_deferred_hot = 5;
  const TraceAuditReport report =
      TraceAuditor::Audit(AuditMode::kPrecopy, fx.trace, fx.result, fx.inputs);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(HasViolation(report, "hotness-off run reports")) << report.ToString();
}

TEST(HotnessAuditTest, InflatedDeferredCounterBreaksTheEventSumIdentity) {
  AuditFixture fx = RunPrecopyFixture("on,rate:1");
  ASSERT_GT(fx.result.pages_deferred_hot, 0);
  ++fx.result.pages_deferred_hot;
  const TraceAuditReport report =
      TraceAuditor::Audit(AuditMode::kPrecopy, fx.trace, fx.result, fx.inputs);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(HasViolation(report, "parked pages")) << report.ToString();
}

TEST(HotnessAuditTest, InflatedAvoidedCounterBreaksTheEventSumIdentity) {
  AuditFixture fx = RunPrecopyFixture("on,rate:1");
  ASSERT_GT(fx.result.resend_pages_avoided, 0);
  ++fx.result.resend_pages_avoided;
  const TraceAuditReport report =
      TraceAuditor::Audit(AuditMode::kPrecopy, fx.trace, fx.result, fx.inputs);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(HasViolation(report, "avoided re-sends")) << report.ToString();
}

TEST(HotnessAuditTest, HotnessOnRunAuditedAsOffIsRejected) {
  AuditFixture fx = RunPrecopyFixture("on,rate:1");
  fx.inputs.hotness_enabled = false;
  const TraceAuditReport report =
      TraceAuditor::Audit(AuditMode::kPrecopy, fx.trace, fx.result, fx.inputs);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(HasViolation(report, "hotness was disabled")) << report.ToString();
}

// ---- Determinism: hotness-on, serial vs 4-worker pool. ----

TEST(HotnessRunnerTest, HotnessOnParallelMatchesSerial) {
  const EngineKind kEngines[] = {EngineKind::kXenPrecopy, EngineKind::kJavmm};
  const char* kSpecs[] = {"on", "rate:1,score:4,decay:2,budget:250ms"};
  std::vector<Scenario> scenarios;
  for (const char* spec : kSpecs) {
    for (const EngineKind kind : kEngines) {
      Scenario scenario = FastScenario(
          kind, std::string(EngineKindName(kind)) + "/hot[" + spec + "]");
      scenario.options.hotness_spec = spec;
      scenarios.push_back(std::move(scenario));
    }
  }
  const RunReport serial = ScenarioRunner(/*jobs=*/1).RunAll(scenarios);
  const RunReport parallel = ScenarioRunner(/*jobs=*/4).RunAll(scenarios);
  ASSERT_EQ(serial.runs.size(), scenarios.size());
  ASSERT_EQ(parallel.runs.size(), scenarios.size());
  bool any_deferred = false;
  for (size_t i = 0; i < scenarios.size(); ++i) {
    SCOPED_TRACE(scenarios[i].label);
    const RunRecord& s = serial.runs[i];
    const RunRecord& p = parallel.runs[i];
    ASSERT_TRUE(s.ran) << s.error;
    ASSERT_TRUE(p.ran) << p.error;
    const MigrationResult& r = s.output.result;
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.verification.ok);
    ASSERT_TRUE(r.trace_audit.ran);
    EXPECT_TRUE(r.trace_audit.ok) << r.trace_audit.ToString();
    EXPECT_TRUE(r.hotness);
    any_deferred = any_deferred || r.pages_deferred_hot > 0;
    // Byte identity between the execution modes.
    EXPECT_EQ(r.total_time.nanos(), p.output.result.total_time.nanos());
    EXPECT_EQ(r.downtime.Total().nanos(), p.output.result.downtime.Total().nanos());
    EXPECT_EQ(r.total_wire_bytes, p.output.result.total_wire_bytes);
    EXPECT_EQ(r.pages_sent, p.output.result.pages_sent);
    EXPECT_EQ(r.pages_deferred_hot, p.output.result.pages_deferred_hot);
    EXPECT_EQ(r.resend_pages_avoided, p.output.result.resend_pages_avoided);
    EXPECT_EQ(s.output.observed_downtime.nanos(), p.output.observed_downtime.nanos());
  }
  // The battery must actually exercise the deferral path, or the identity
  // checks above are vacuous.
  EXPECT_TRUE(any_deferred);
  std::ostringstream serial_json;
  std::ostringstream parallel_json;
  serial.ExportJsonLines(serial_json);
  parallel.ExportJsonLines(parallel_json);
  EXPECT_EQ(serial_json.str(), parallel_json.str());
}

// ---- Hotness off: bit-identity against the pre-hotness seed export. ----

// The shared seed battery (tests/golden_seed_export.h) re-run with an
// explicit --hotness=off must reproduce the pinned export byte for byte:
// same bytes on the wire, same timings, and no hotness keys in the export.
TEST(HotnessGoldenTest, HotnessOffBatteryMatchesSeedExport) {
  const RunReport report =
      ScenarioRunner(/*jobs=*/4).RunAll(golden::SeedBatteryScenarios(/*hotness_spec=*/"off"));
  EXPECT_EQ(report.errors, 0);
  EXPECT_EQ(report.verification_failures, 0);
  EXPECT_EQ(report.audit_failures, 0);
  std::ostringstream os;
  report.ExportJsonLines(os);
  EXPECT_EQ(os.str(), std::string(golden::kGoldenSeedExport));
}

}  // namespace
}  // namespace javmm
