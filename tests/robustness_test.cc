// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Robustness and fidelity tests: migration abort, determinism, the §3.3.4
// PFN-remap hazard (assumed absent by the incremental design, handled by the
// kFinalRewalk alternative), and final-update parallelism.

#include <gtest/gtest.h>

#include "src/core/migration_lab.h"

namespace javmm {
namespace {

LabConfig SmallLab(uint64_t seed = 1) {
  LabConfig config;
  config.vm_bytes = 512 * kMiB;
  config.seed = seed;
  config.os.resident_bytes = 64 * kMiB;
  config.os.hot_bytes = 8 * kMiB;
  return config;
}

WorkloadSpec SmallDerby() {
  WorkloadSpec spec = Workloads::Get("derby");
  spec.alloc_rate_bytes_per_sec = 100 * kMiB;
  spec.old_baseline_bytes = 32 * kMiB;
  spec.heap.young_max_bytes = 192 * kMiB;
  spec.heap.old_max_bytes = 128 * kMiB;
  return spec;
}

// ---- Abort. ----

TEST(AbortTest, AbortedMigrationLeavesGuestRunning) {
  LabConfig config = SmallLab(1);
  config.migration.application_assisted = true;
  config.migration.abort_after_iterations = 2;
  MigrationLab lab(SmallDerby(), config);
  lab.Run(Duration::Seconds(15));
  const MigrationResult result = lab.Migrate();
  EXPECT_FALSE(result.completed);
  EXPECT_FALSE(lab.guest().vm_paused());
  // The LKM reset to INITIALIZED and released any held applications.
  EXPECT_EQ(lab.guest().lkm()->state(), Lkm::State::kInitialized);
  EXPECT_EQ(lab.guest().lkm()->transfer_bitmap().Count(),
            lab.guest().memory().frame_count());
  EXPECT_FALSE(lab.app().held_at_safepoint());
  // The workload continues at the source.
  const double ops = lab.app().ops_completed();
  lab.Run(Duration::Seconds(5));
  EXPECT_GT(lab.app().ops_completed(), ops);
}

TEST(AbortTest, RetryAfterAbortSucceeds) {
  LabConfig config = SmallLab(2);
  config.migration.application_assisted = true;
  config.migration.abort_after_iterations = 1;
  MigrationLab lab(SmallDerby(), config);
  lab.Run(Duration::Seconds(15));
  const MigrationResult aborted = lab.Migrate();
  EXPECT_FALSE(aborted.completed);
  lab.Run(Duration::Seconds(5));
  // Retry with a fresh engine without the fault.
  LabConfig retry_config = config;
  retry_config.migration.abort_after_iterations = -1;
  MigrationEngine engine(&lab.guest(), retry_config.migration);
  const MigrationResult retried = engine.Migrate();
  EXPECT_TRUE(retried.completed);
  ASSERT_TRUE(retried.verification.ok) << retried.verification.detail;
  EXPECT_GT(retried.pages_skipped_bitmap, 0);  // Assistance worked again.
}

// ---- Determinism. ----

TEST(DeterminismTest, SameSeedSameResult) {
  MigrationResult a;
  MigrationResult b;
  for (MigrationResult* out : {&a, &b}) {
    LabConfig config = SmallLab(42);
    config.migration.application_assisted = true;
    MigrationLab lab(SmallDerby(), config);
    lab.Run(Duration::Seconds(20));
    *out = lab.Migrate();
  }
  EXPECT_EQ(a.total_time.nanos(), b.total_time.nanos());
  EXPECT_EQ(a.total_wire_bytes, b.total_wire_bytes);
  EXPECT_EQ(a.pages_sent, b.pages_sent);
  EXPECT_EQ(a.pages_skipped_bitmap, b.pages_skipped_bitmap);
  EXPECT_EQ(a.downtime.Total().nanos(), b.downtime.Total().nanos());
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_EQ(a.iterations[i].pages_sent, b.iterations[i].pages_sent) << "iter " << i;
    EXPECT_EQ(a.iterations[i].duration.nanos(), b.iterations[i].duration.nanos());
  }
}

TEST(DeterminismTest, DifferentSeedsDiffer) {
  MigrationResult a;
  MigrationResult b;
  uint64_t seed = 1;
  for (MigrationResult* out : {&a, &b}) {
    LabConfig config = SmallLab(seed++);
    MigrationLab lab(SmallDerby(), config);
    lab.Run(Duration::Seconds(20));
    *out = lab.Migrate();
  }
  EXPECT_NE(a.pages_sent, b.pages_sent);
}

// ---- §3.3.4 PFN remap (case 2): the documented hazard and its fix. ----

// A scriptable app whose skip-over region gets one page remapped to a new
// frame mid-migration; the freed frame is immediately reused by a victim
// process that writes precious data into it.
class RemapScenario {
 public:
  explicit RemapScenario(BitmapUpdateMode mode)
      : memory_(512 * kPageSize), kernel_(&memory_, &clock_) {
    LkmConfig lkm_config;
    lkm_config.update_mode = mode;
    lkm_ = &kernel_.LoadLkm(lkm_config);
  }

  // Runs the scenario and returns whether the victim's page survived.
  bool Run() {
    const AppId skipper = kernel_.CreateProcess("skipper");
    const AppId victim = kernel_.CreateProcess("victim");
    AddressSpace& skip_space = kernel_.address_space(skipper);
    const VaRange area = skip_space.ReserveVa(16 * kPageSize);
    CHECK(skip_space.CommitRange(area.begin, area.bytes()));

    // A cooperative app that reports `area` and answers prepare immediately.
    class App : public NetlinkSubscriber {
     public:
      App(Lkm* lkm, AppId pid, VaRange area) : lkm_(lkm), pid_(pid), area_(area) {}
      void OnNetlinkMessage(const NetlinkMessage& msg) override {
        if (msg.type == NetlinkMessageType::kQuerySkipOverAreas) {
          lkm_->ReportSkipOverAreas(pid_, {area_});
        } else if (msg.type == NetlinkMessageType::kPrepareForSuspension) {
          lkm_->NotifySuspensionReady(pid_, SuspensionReadyInfo{{area_}, {}});
        }
      }
      Lkm* lkm_;
      AppId pid_;
      VaRange area_;
    };
    App app(lkm_, skipper, area);
    kernel_.netlink().Subscribe(skipper, &app);

    MigrationConfig config;
    config.application_assisted = true;
    MigrationEngine engine(&kernel_, config);

    // The victim's page must be intact at the destination; register it as
    // required (it only exists after the mid-migration timer fires).
    struct VictimSource : RequiredPfnSource {
      std::vector<Pfn> RequiredPfns(TimePoint) const override {
        if (*va == 0) {
          return {};
        }
        return {space->page_table().Lookup(VpnOf(*va))};
      }
      AddressSpace* space;
      const VirtAddr* va;
    };
    VirtAddr victim_va = 0;
    VictimSource victim_source;
    victim_source.space = &kernel_.address_space(victim);
    victim_source.va = &victim_va;
    engine.AddRequiredPfnSource(&victim_source);

    // Drive the remap + victim reuse while iteration 1 is in flight, via a
    // timer: remap one page of the skip-over area; the freed frame goes back
    // on the free list and the victim's next allocation picks it up (LIFO).
    kernel_.clock().events().Schedule(
        kernel_.clock().now() + Duration::Millis(5), [&] {
          CHECK_NE(skip_space.RemapPage(area.begin), kInvalidPfn);
          AddressSpace& vspace = kernel_.address_space(victim);
          const VaRange vr = vspace.ReserveVa(kPageSize);
          CHECK(vspace.CommitRange(vr.begin, kPageSize));
          vspace.Write(vr.begin, kPageSize);  // Precious data.
          victim_va = vr.begin;
        });

    const MigrationResult result = engine.Migrate();
    kernel_.netlink().Unsubscribe(skipper);
    CHECK(victim_va != 0);
    return result.verification.ok;
  }

 private:
  SimClock clock_;
  GuestPhysicalMemory memory_;
  GuestKernel kernel_;
  Lkm* lkm_;
};

TEST(RemapHazardTest, IncrementalModeAssumesNoRemaps) {
  // §3.3.4: "for the events in (2) and (3), we currently assume their
  // absence in skip-over areas during migration." With a remap injected, the
  // old frame keeps its cleared bit and escapes the audit -- the documented
  // limitation of the implemented approach.
  RemapScenario scenario(BitmapUpdateMode::kIncremental);
  EXPECT_FALSE(scenario.Run());
}

TEST(RemapHazardTest, FinalRewalkModeHandlesRemaps) {
  // The alternative approach re-walks the area: it sees vpn -> p_new, sets
  // p_old's bit (so the victim's reused frame is transferred and audited)
  // and clears p_new's.
  RemapScenario scenario(BitmapUpdateMode::kFinalRewalk);
  EXPECT_TRUE(scenario.Run());
}

// ---- Final-update parallelism (§3.3.4 / §6). ----

TEST(FinalUpdateParallelismTest, ThreadsDivideRewalkCost) {
  Duration costs[2];
  int idx = 0;
  for (const int threads : {1, 4}) {
    LabConfig config = SmallLab(9);
    config.migration.application_assisted = true;
    config.lkm.update_mode = BitmapUpdateMode::kFinalRewalk;
    config.lkm.final_update_threads = threads;
    MigrationLab lab(SmallDerby(), config);
    lab.Run(Duration::Seconds(20));
    const MigrationResult result = lab.Migrate();
    ASSERT_TRUE(result.verification.ok);
    costs[idx++] = result.downtime.final_bitmap_update;
  }
  EXPECT_GT(costs[0].nanos(), costs[1].nanos() * 3);
}

}  // namespace
}  // namespace javmm
