// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Property sweep over the migration daemon's configuration space: migration
// must remain correct (verification passes) for every combination of batch
// size, stop thresholds, link speed and engine mode -- the knobs only move
// performance, never correctness.

#include <gtest/gtest.h>

#include "src/core/migration_lab.h"

namespace javmm {
namespace {

WorkloadSpec SweepWorkload() {
  WorkloadSpec spec = Workloads::Get("derby");
  spec.alloc_rate_bytes_per_sec = 80 * kMiB;
  spec.old_baseline_bytes = 24 * kMiB;
  spec.heap.young_max_bytes = 160 * kMiB;
  spec.heap.old_max_bytes = 96 * kMiB;
  return spec;
}

struct ParamCase {
  int64_t batch_pages;
  int max_iterations;
  int64_t threshold_pages;
  double bandwidth_gbps;
  bool assisted;
};

std::string CaseName(const ::testing::TestParamInfo<ParamCase>& info) {
  const ParamCase& p = info.param;
  return "b" + std::to_string(p.batch_pages) + "_i" + std::to_string(p.max_iterations) +
         "_t" + std::to_string(p.threshold_pages) + "_g" +
         std::to_string(static_cast<int>(p.bandwidth_gbps * 10)) +
         (p.assisted ? "_javmm" : "_xen");
}

class EngineParamTest : public ::testing::TestWithParam<ParamCase> {};

TEST_P(EngineParamTest, AlwaysVerifies) {
  const ParamCase& p = GetParam();
  LabConfig config;
  config.vm_bytes = 384 * kMiB;
  config.os.resident_bytes = 48 * kMiB;
  config.os.hot_bytes = 8 * kMiB;
  config.seed = 77;
  config.migration.application_assisted = p.assisted;
  config.migration.batch_pages = p.batch_pages;
  config.migration.max_iterations = p.max_iterations;
  config.migration.last_iter_threshold_pages = p.threshold_pages;
  config.migration.link.bandwidth_bps = p.bandwidth_gbps * 1e9;
  MigrationLab lab(SweepWorkload(), config);
  lab.Run(Duration::Seconds(15));
  const MigrationResult result = lab.Migrate();
  EXPECT_TRUE(result.completed);
  ASSERT_TRUE(result.verification.ok) << result.verification.detail;
  EXPECT_LE(result.iteration_count(), p.max_iterations + 1);
  // Guest alive afterwards.
  const double ops = lab.app().ops_completed();
  lab.Run(Duration::Seconds(3));
  EXPECT_GT(lab.app().ops_completed(), ops);
}

std::vector<ParamCase> Cases() {
  std::vector<ParamCase> cases;
  for (const int64_t batch : {1, 64, 1024}) {
    for (const bool assisted : {false, true}) {
      cases.push_back(ParamCase{batch, 30, 50, 1.0, assisted});
    }
  }
  for (const int max_iter : {1, 3, 60}) {
    for (const bool assisted : {false, true}) {
      cases.push_back(ParamCase{256, max_iter, 50, 1.0, assisted});
    }
  }
  for (const int64_t threshold : {0, 5000, 1000000}) {
    cases.push_back(ParamCase{256, 30, threshold, 1.0, true});
  }
  for (const double gbps : {0.1, 10.0}) {
    for (const bool assisted : {false, true}) {
      cases.push_back(ParamCase{256, 30, 50, gbps, assisted});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(ConfigSpace, EngineParamTest, ::testing::ValuesIn(Cases()), CaseName);

// Extreme-shape guests: tiny VM, page-sized VM.
TEST(EngineEdgeTest, TinyVmMigrates) {
  SimClock clock;
  GuestPhysicalMemory memory(8 * kPageSize);
  GuestKernel kernel(&memory, &clock);
  MigrationEngine engine(&kernel, MigrationConfig{});
  const MigrationResult result = engine.Migrate();
  EXPECT_TRUE(result.verification.ok);
  EXPECT_EQ(result.pages_sent, 8);
}

TEST(EngineEdgeTest, RepeatedMigrationsAlternatingModes) {
  LabConfig config;
  config.vm_bytes = 256 * kMiB;
  config.os.resident_bytes = 48 * kMiB;
  config.os.hot_bytes = 8 * kMiB;
  WorkloadSpec spec = SweepWorkload();
  spec.heap.young_max_bytes = 64 * kMiB;
  spec.heap.old_max_bytes = 64 * kMiB;
  spec.old_baseline_bytes = 16 * kMiB;
  MigrationLab lab(spec, config);
  lab.Run(Duration::Seconds(10));
  for (int round = 0; round < 4; ++round) {
    MigrationConfig mig = config.migration;
    mig.application_assisted = (round % 2 == 1);
    MigrationEngine engine(&lab.guest(), mig);
    const MigrationResult result = engine.Migrate();
    ASSERT_TRUE(result.verification.ok) << "round " << round;
    lab.Run(Duration::Seconds(3));
  }
  EXPECT_EQ(lab.guest().lkm()->protocol_violations(), 0);
}

}  // namespace
}  // namespace javmm
