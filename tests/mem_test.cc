// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Unit tests for the memory substrate: bitmap, dirty log, physical memory,
// page table, address space.

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/mem/address_space.h"
#include "src/mem/bitmap.h"
#include "src/mem/dirty_log.h"
#include "src/mem/page_table.h"
#include "src/mem/physical_memory.h"

namespace javmm {
namespace {

// ---- PageBitmap. ----

TEST(PageBitmapTest, InitialAllClear) {
  PageBitmap bm(100);
  EXPECT_EQ(bm.Count(), 0);
  EXPECT_FALSE(bm.Test(0));
  EXPECT_FALSE(bm.Test(99));
}

TEST(PageBitmapTest, InitialAllSetCountsExactly) {
  PageBitmap bm(100, /*initial=*/true);
  EXPECT_EQ(bm.Count(), 100);  // Tail bits beyond size must not count.
  EXPECT_TRUE(bm.Test(99));
}

TEST(PageBitmapTest, SetClearTest) {
  PageBitmap bm(128);
  bm.Set(63);
  bm.Set(64);
  EXPECT_TRUE(bm.Test(63));
  EXPECT_TRUE(bm.Test(64));
  EXPECT_EQ(bm.Count(), 2);
  bm.Clear(63);
  EXPECT_FALSE(bm.Test(63));
  EXPECT_EQ(bm.Count(), 1);
}

TEST(PageBitmapTest, TestAndSetClear) {
  PageBitmap bm(10);
  EXPECT_FALSE(bm.TestAndSet(3));
  EXPECT_TRUE(bm.TestAndSet(3));
  EXPECT_TRUE(bm.TestAndClear(3));
  EXPECT_FALSE(bm.TestAndClear(3));
}

TEST(PageBitmapTest, SetAllClearAll) {
  PageBitmap bm(70);
  bm.SetAll();
  EXPECT_EQ(bm.Count(), 70);
  bm.ClearAll();
  EXPECT_EQ(bm.Count(), 0);
}

TEST(PageBitmapTest, CollectSetBitsAscending) {
  PageBitmap bm(200);
  bm.Set(5);
  bm.Set(64);
  bm.Set(199);
  std::vector<int64_t> bits;
  bm.CollectSetBits(&bits);
  EXPECT_EQ(bits, (std::vector<int64_t>{5, 64, 199}));
}

TEST(PageBitmapTest, MemoryUsageMatchesPaperFigure) {
  // §3.3.3: one bit per 4 KiB page => 32 KiB of bitmap per GiB of memory.
  PageBitmap bm(PagesForBytes(kGiB));
  EXPECT_EQ(bm.MemoryUsageBytes(), 32 * kKiB);
}

class PageBitmapSizeTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(PageBitmapSizeTest, RandomOpsAgainstReferenceModel) {
  const int64_t size = GetParam();
  PageBitmap bm(size);
  std::vector<bool> ref(static_cast<size_t>(size), false);
  Rng rng(static_cast<uint64_t>(size) * 977 + 1);
  for (int op = 0; op < 2000; ++op) {
    const int64_t i = static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(size)));
    switch (rng.NextBounded(3)) {
      case 0:
        bm.Set(i);
        ref[static_cast<size_t>(i)] = true;
        break;
      case 1:
        bm.Clear(i);
        ref[static_cast<size_t>(i)] = false;
        break;
      default:
        ASSERT_EQ(bm.Test(i), ref[static_cast<size_t>(i)]);
    }
  }
  int64_t ref_count = 0;
  for (bool b : ref) {
    ref_count += b ? 1 : 0;
  }
  EXPECT_EQ(bm.Count(), ref_count);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PageBitmapSizeTest,
                         ::testing::Values<int64_t>(1, 63, 64, 65, 127, 128, 1000, 4096));

// ---- DirtyLog. ----

TEST(DirtyLogTest, MarkTestCollect) {
  DirtyLog log(100);
  log.Mark(3);
  log.Mark(7);
  log.Mark(3);  // Re-dirty: idempotent in the bitmap, counted in marks.
  EXPECT_TRUE(log.Test(3));
  EXPECT_FALSE(log.Test(4));
  EXPECT_EQ(log.CountDirty(), 2);
  EXPECT_EQ(log.total_marks(), 3);
  std::vector<Pfn> dirty;
  log.CollectAndClear(&dirty);
  EXPECT_EQ(dirty, (std::vector<Pfn>{3, 7}));
  EXPECT_EQ(log.CountDirty(), 0);
  EXPECT_FALSE(log.Test(3));
}

// ---- GuestPhysicalMemory. ----

TEST(PhysicalMemoryTest, FrameCountFromBytes) {
  GuestPhysicalMemory mem(2 * kGiB);
  EXPECT_EQ(mem.frame_count(), 524288);
  EXPECT_EQ(mem.bytes(), 2 * kGiB);
}

TEST(PhysicalMemoryTest, AllocateAscendingAndFree) {
  GuestPhysicalMemory mem(16 * kPageSize);
  const Pfn a = mem.AllocateFrame();
  const Pfn b = mem.AllocateFrame();
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_TRUE(mem.IsAllocated(a));
  EXPECT_EQ(mem.allocated_frames(), 2);
  mem.FreeFrame(a);
  EXPECT_FALSE(mem.IsAllocated(a));
  EXPECT_EQ(mem.AllocateFrame(), a);  // LIFO reuse.
}

TEST(PhysicalMemoryTest, ExhaustionReturnsInvalid) {
  GuestPhysicalMemory mem(2 * kPageSize);
  EXPECT_NE(mem.AllocateFrame(), kInvalidPfn);
  EXPECT_NE(mem.AllocateFrame(), kInvalidPfn);
  EXPECT_EQ(mem.AllocateFrame(), kInvalidPfn);
}

TEST(PhysicalMemoryTest, WriteBumpsVersionAndMarksLogs) {
  GuestPhysicalMemory mem(8 * kPageSize);
  DirtyLog log(mem.frame_count());
  mem.AttachDirtyLog(&log);
  EXPECT_EQ(mem.version(2), 0u);
  mem.Write(2);
  mem.Write(2);
  EXPECT_EQ(mem.version(2), 2u);
  EXPECT_TRUE(log.Test(2));
  mem.DetachDirtyLog(&log);
  mem.Write(3);
  EXPECT_FALSE(log.Test(3));  // Detached log no longer sees writes.
  EXPECT_EQ(mem.total_writes(), 3);
}

TEST(PhysicalMemoryTest, MultipleDirtyLogs) {
  GuestPhysicalMemory mem(8 * kPageSize);
  DirtyLog log1(mem.frame_count());
  DirtyLog log2(mem.frame_count());
  mem.AttachDirtyLog(&log1);
  mem.AttachDirtyLog(&log2);
  mem.Write(5);
  EXPECT_TRUE(log1.Test(5));
  EXPECT_TRUE(log2.Test(5));
}

// ---- PageTable. ----

TEST(PageTableTest, MapLookupUnmap) {
  PageTable pt;
  pt.Map(10, 42);
  EXPECT_EQ(pt.Lookup(10), 42);
  EXPECT_EQ(pt.Lookup(11), kInvalidPfn);
  EXPECT_TRUE(pt.IsMapped(10));
  pt.Unmap(10);
  EXPECT_EQ(pt.Lookup(10), kInvalidPfn);
}

TEST(PageTableTest, WalkRangeAlignsInterior) {
  PageTable pt;
  const auto ps = static_cast<uint64_t>(kPageSize);
  pt.Map(1, 100);
  pt.Map(2, 101);
  pt.Map(3, 102);
  // Range starts mid-page 1 and ends mid-page 3: only pages 2 is fully inside
  // ... wait: aligned interior of [1.5p, 3.5p) is [2p, 3p) = page 2 only.
  const VaRange range{ps + ps / 2, 3 * ps + ps / 2};
  int64_t cost = 0;
  const std::vector<Pfn> pfns = pt.WalkRange(range, &cost);
  ASSERT_EQ(pfns.size(), 1u);
  EXPECT_EQ(pfns[0], 101);
  EXPECT_EQ(cost, 1);
}

TEST(PageTableTest, WalkRangeReportsUnmappedAsInvalid) {
  PageTable pt;
  const auto ps = static_cast<uint64_t>(kPageSize);
  pt.Map(0, 100);
  pt.Map(2, 102);
  const std::vector<Pfn> pfns = pt.WalkRange(VaRange{0, 3 * ps});
  ASSERT_EQ(pfns.size(), 3u);
  EXPECT_EQ(pfns[0], 100);
  EXPECT_EQ(pfns[1], kInvalidPfn);
  EXPECT_EQ(pfns[2], 102);
}

TEST(PageTableTest, WalkEmptyAlignedInterior) {
  PageTable pt;
  // Sub-page range: no fully-contained page.
  const VaRange range{100, 200};
  EXPECT_TRUE(pt.WalkRange(range).empty());
}

// ---- VaRange alignment helpers. ----

TEST(VaRangeTest, PageAlignedInterior) {
  const auto ps = static_cast<uint64_t>(kPageSize);
  EXPECT_EQ((VaRange{0, 2 * ps}.PageAlignedInterior()), (VaRange{0, 2 * ps}));
  EXPECT_EQ((VaRange{1, 2 * ps}.PageAlignedInterior()), (VaRange{ps, 2 * ps}));
  EXPECT_EQ((VaRange{0, 2 * ps - 1}.PageAlignedInterior()), (VaRange{0, ps}));
  EXPECT_TRUE((VaRange{1, ps}.PageAlignedInterior()).empty());
}

// ---- AddressSpace. ----

TEST(AddressSpaceTest, ReserveCommitWrite) {
  GuestPhysicalMemory mem(64 * kPageSize);
  AddressSpace space(&mem);
  const VaRange r = space.ReserveVa(10 * kPageSize);
  EXPECT_EQ(r.bytes(), 10 * kPageSize);
  EXPECT_FALSE(space.IsCommitted(r.begin));
  ASSERT_TRUE(space.CommitRange(r.begin, r.bytes()));
  EXPECT_TRUE(space.IsCommitted(r.begin));
  EXPECT_EQ(mem.allocated_frames(), 10);
  // Committing zeroes each page: version 1. The app write makes it 2.
  const Pfn pfn0 = space.page_table().Lookup(VpnOf(r.begin));
  EXPECT_EQ(mem.version(pfn0), 1u);
  space.Write(r.begin, 2 * kPageSize);
  EXPECT_EQ(mem.version(pfn0), 2u);
}

TEST(AddressSpaceTest, WriteSpanningPageBoundary) {
  GuestPhysicalMemory mem(64 * kPageSize);
  AddressSpace space(&mem);
  const VaRange r = space.ReserveVa(4 * kPageSize);
  ASSERT_TRUE(space.CommitRange(r.begin, r.bytes()));
  // A 2-byte write straddling pages 0 and 1 dirties both (on top of the
  // zeroing write each page received at commit time).
  space.Write(r.begin + static_cast<uint64_t>(kPageSize) - 1, 2);
  EXPECT_EQ(mem.version(space.page_table().Lookup(VpnOf(r.begin))), 2u);
  EXPECT_EQ(mem.version(space.page_table().Lookup(VpnOf(r.begin) + 1)), 2u);
}

TEST(AddressSpaceTest, DecommitFreesFramesAndUnmaps) {
  GuestPhysicalMemory mem(64 * kPageSize);
  AddressSpace space(&mem);
  const VaRange r = space.ReserveVa(8 * kPageSize);
  ASSERT_TRUE(space.CommitRange(r.begin, r.bytes()));
  space.DecommitRange(r.begin + 4 * static_cast<uint64_t>(kPageSize), 4 * kPageSize);
  EXPECT_EQ(mem.allocated_frames(), 4);
  EXPECT_TRUE(space.IsCommitted(r.begin));
  EXPECT_FALSE(space.IsCommitted(r.begin + 5 * static_cast<uint64_t>(kPageSize)));
}

TEST(AddressSpaceTest, CommitFailsAtomicallyWhenExhausted) {
  GuestPhysicalMemory mem(4 * kPageSize);
  AddressSpace space(&mem);
  const VaRange r = space.ReserveVa(8 * kPageSize);
  EXPECT_FALSE(space.CommitRange(r.begin, 8 * kPageSize));
  // Nothing leaked: all 4 frames still available.
  EXPECT_EQ(mem.allocated_frames(), 0);
  EXPECT_TRUE(space.CommitRange(r.begin, 4 * kPageSize));
}

TEST(AddressSpaceTest, ReservationsDoNotOverlap) {
  GuestPhysicalMemory mem(64 * kPageSize);
  AddressSpace space(&mem);
  const VaRange a = space.ReserveVa(3 * kPageSize);
  const VaRange b = space.ReserveVa(3 * kPageSize);
  EXPECT_GE(b.begin, a.end);
}

}  // namespace
}  // namespace javmm
