// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Unit tests for the guest-kernel plumbing: netlink bus, event channel,
// process registry.

#include <gtest/gtest.h>

#include "src/guest/event_channel.h"
#include "src/guest/guest_kernel.h"
#include "src/guest/netlink_bus.h"
#include "src/mem/physical_memory.h"
#include "src/sim/clock.h"

namespace javmm {
namespace {

class CountingSubscriber : public NetlinkSubscriber {
 public:
  void OnNetlinkMessage(const NetlinkMessage& msg) override {
    ++received_;
    last_ = msg.type;
  }
  int received_ = 0;
  NetlinkMessageType last_ = NetlinkMessageType::kVmResumed;
};

TEST(NetlinkBusTest, MulticastReachesAllSubscribers) {
  NetlinkBus bus;
  CountingSubscriber a;
  CountingSubscriber b;
  bus.Subscribe(1, &a);
  bus.Subscribe(2, &b);
  bus.Multicast(NetlinkMessage{NetlinkMessageType::kQuerySkipOverAreas});
  EXPECT_EQ(a.received_, 1);
  EXPECT_EQ(b.received_, 1);
  EXPECT_EQ(a.last_, NetlinkMessageType::kQuerySkipOverAreas);
}

TEST(NetlinkBusTest, UnsubscribeStopsDelivery) {
  NetlinkBus bus;
  CountingSubscriber a;
  bus.Subscribe(1, &a);
  bus.Unsubscribe(1);
  bus.Multicast(NetlinkMessage{NetlinkMessageType::kVmResumed});
  EXPECT_EQ(a.received_, 0);
  EXPECT_FALSE(bus.IsSubscribed(1));
}

TEST(NetlinkBusTest, SubscriberIdsAscending) {
  NetlinkBus bus;
  CountingSubscriber a;
  CountingSubscriber b;
  bus.Subscribe(7, &a);
  bus.Subscribe(3, &b);
  EXPECT_EQ(bus.SubscriberIds(), (std::vector<AppId>{3, 7}));
}

// A subscriber that unsubscribes itself during delivery must not corrupt the
// multicast iteration.
class SelfRemovingSubscriber : public NetlinkSubscriber {
 public:
  SelfRemovingSubscriber(NetlinkBus* bus, AppId pid) : bus_(bus), pid_(pid) {}
  void OnNetlinkMessage(const NetlinkMessage&) override {
    ++received_;
    bus_->Unsubscribe(pid_);
  }
  NetlinkBus* bus_;
  AppId pid_;
  int received_ = 0;
};

TEST(NetlinkBusTest, ReentrantUnsubscribeDuringMulticast) {
  NetlinkBus bus;
  SelfRemovingSubscriber a(&bus, 1);
  CountingSubscriber b;
  bus.Subscribe(1, &a);
  bus.Subscribe(2, &b);
  bus.Multicast(NetlinkMessage{NetlinkMessageType::kVmResumed});
  EXPECT_EQ(a.received_, 1);
  EXPECT_EQ(b.received_, 1);
  EXPECT_EQ(bus.subscriber_count(), 1u);
}

TEST(EventChannelTest, BidirectionalNotification) {
  EventChannel channel;
  DaemonToLkm to_guest = DaemonToLkm::kVmResumed;
  LkmToDaemon to_daemon = LkmToDaemon::kSuspensionReady;
  int guest_count = 0;
  int daemon_count = 0;
  channel.BindGuestHandler([&](DaemonToLkm msg) {
    to_guest = msg;
    ++guest_count;
  });
  channel.BindDaemonHandler([&](LkmToDaemon msg) {
    to_daemon = msg;
    ++daemon_count;
  });
  channel.NotifyGuest(DaemonToLkm::kMigrationStarted);
  channel.NotifyDaemon(LkmToDaemon::kSuspensionReady);
  EXPECT_EQ(guest_count, 1);
  EXPECT_EQ(daemon_count, 1);
  EXPECT_EQ(to_guest, DaemonToLkm::kMigrationStarted);
  EXPECT_EQ(to_daemon, LkmToDaemon::kSuspensionReady);
}

TEST(EventChannelTest, UnboundDeliveryIsDropped) {
  EventChannel channel;
  channel.NotifyGuest(DaemonToLkm::kMigrationStarted);  // Must not crash.
  channel.NotifyDaemon(LkmToDaemon::kSuspensionReady);
  EXPECT_FALSE(channel.guest_bound());
}

TEST(GuestKernelTest, ProcessRegistry) {
  SimClock clock;
  GuestPhysicalMemory memory(16 * kMiB);
  GuestKernel kernel(&memory, &clock);
  const AppId a = kernel.CreateProcess("jvm");
  const AppId b = kernel.CreateProcess("cache");
  EXPECT_NE(a, b);
  EXPECT_EQ(kernel.process_name(a), "jvm");
  EXPECT_EQ(kernel.process_name(b), "cache");
  // Address spaces are independent: same VA in both maps to different frames.
  AddressSpace& sa = kernel.address_space(a);
  AddressSpace& sb = kernel.address_space(b);
  const VaRange ra = sa.ReserveVa(kPageSize);
  const VaRange rb = sb.ReserveVa(kPageSize);
  ASSERT_TRUE(sa.CommitRange(ra.begin, kPageSize));
  ASSERT_TRUE(sb.CommitRange(rb.begin, kPageSize));
  EXPECT_EQ(ra.begin, rb.begin);  // Same virtual address...
  EXPECT_NE(sa.page_table().Lookup(VpnOf(ra.begin)),
            sb.page_table().Lookup(VpnOf(rb.begin)));  // ...different frames.
}

TEST(GuestKernelTest, PauseResume) {
  SimClock clock;
  GuestPhysicalMemory memory(16 * kMiB);
  GuestKernel kernel(&memory, &clock);
  EXPECT_FALSE(kernel.vm_paused());
  kernel.PauseVm();
  EXPECT_TRUE(kernel.vm_paused());
  kernel.ResumeVm();
  EXPECT_FALSE(kernel.vm_paused());
}

}  // namespace
}  // namespace javmm
