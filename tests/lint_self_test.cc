// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Self-test for javmm-lint (src/lint/): every shipped rule is demonstrated
// by a known-bad fixture (tests/lint_fixtures/), its negative twin, and its
// suppression; plus baseline round-trip and the real-tree regression that
// keeps the whole repository lint-clean.

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/lint/lint.h"
#include "src/lint/rules.h"

namespace javmm {
namespace lint {
namespace {

// Supplied by tests/CMakeLists.txt.
#ifndef JAVMM_LINT_FIXTURE_DIR
#error "JAVMM_LINT_FIXTURE_DIR must be defined"
#endif
#ifndef JAVMM_SOURCE_DIR
#error "JAVMM_SOURCE_DIR must be defined"
#endif

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(is)) << "cannot read " << path;
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

std::string Fixture(const std::string& name) {
  return ReadFileOrDie(std::string(JAVMM_LINT_FIXTURE_DIR) + "/" + name);
}

// Lints fixture `content` as if it lived at `virtual_path`, so directory
// scoping is testable without touching the real tree. The registry is built
// from the fixture itself (plus any `extra` sources, for cross-file cases).
std::vector<Diagnostic> LintVirtual(const std::string& virtual_path, const std::string& content,
                                    const LintOptions& options = {},
                                    const std::vector<std::string>& extra = {}) {
  const TokenizedSource src = Tokenize(content);
  LintRegistry registry;
  CollectRegistry(src, &registry);
  for (const std::string& other : extra) {
    const TokenizedSource other_src = Tokenize(other);
    CollectRegistry(other_src, &registry);
  }
  return LintSource(virtual_path, src, registry, options);
}

int CountRule(const std::vector<Diagnostic>& diags, const std::string& rule) {
  int n = 0;
  for (const Diagnostic& d : diags) {
    n += d.rule == rule ? 1 : 0;
  }
  return n;
}

// ---- banned-call -----------------------------------------------------------

TEST(BannedCallRule, FiresOncePerConstructOutsideExemptDirs) {
  const std::vector<Diagnostic> diags =
      LintVirtual("src/core/fixture.cc", Fixture("banned_call_bad.cc"));
  EXPECT_EQ(CountRule(diags, "banned-call"), 6);  // include + 5 constructs.
}

TEST(BannedCallRule, ExemptInBaseAndRunner) {
  const std::string content = Fixture("banned_call_bad.cc");
  EXPECT_EQ(CountRule(LintVirtual("src/base/fixture.cc", content), "banned-call"), 0);
  EXPECT_EQ(CountRule(LintVirtual("src/runner/fixture.cc", content), "banned-call"), 0);
}

TEST(BannedCallRule, AppliesToBenchAndTests) {
  const std::string content = Fixture("banned_call_bad.cc");
  EXPECT_GT(CountRule(LintVirtual("bench/fixture.cc", content), "banned-call"), 0);
  EXPECT_GT(CountRule(LintVirtual("tests/fixture.cc", content), "banned-call"), 0);
}

TEST(BannedCallRule, SuppressionsSilenceEveryFinding) {
  const std::vector<Diagnostic> diags =
      LintVirtual("src/core/fixture.cc", Fixture("banned_call_suppressed.cc"));
  EXPECT_EQ(CountRule(diags, "banned-call"), 0);
  EXPECT_EQ(CountRule(diags, "suppression"), 0);  // All annotations well-formed.
}

TEST(BannedCallRule, DisablingTheRuleSilencesIt) {
  LintOptions options;
  options.disabled_rules.insert("banned-call");
  const std::vector<Diagnostic> diags =
      LintVirtual("src/core/fixture.cc", Fixture("banned_call_bad.cc"), options);
  EXPECT_EQ(CountRule(diags, "banned-call"), 0);
}

// ---- unordered-iter --------------------------------------------------------

TEST(UnorderedIterRule, FiresOnRangeForAndIteratorWalks) {
  const std::vector<Diagnostic> diags =
      LintVirtual("src/core/fixture.cc", Fixture("unordered_iter_bad.cc"));
  EXPECT_EQ(CountRule(diags, "unordered-iter"), 3);
}

TEST(UnorderedIterRule, SilentOutsideResultDirs) {
  const std::string content = Fixture("unordered_iter_bad.cc");
  EXPECT_EQ(CountRule(LintVirtual("src/workload/fixture.cc", content), "unordered-iter"), 0);
  EXPECT_EQ(CountRule(LintVirtual("tests/fixture.cc", content), "unordered-iter"), 0);
}

TEST(UnorderedIterRule, OrderedIterationAndPointLookupsAreClean) {
  const std::vector<Diagnostic> diags =
      LintVirtual("src/core/fixture.cc", Fixture("unordered_iter_ok.cc"));
  EXPECT_EQ(CountRule(diags, "unordered-iter"), 0);
}

TEST(UnorderedIterRule, AnnotatedLoopIsSuppressed) {
  const std::vector<Diagnostic> diags =
      LintVirtual("src/core/fixture.cc", Fixture("unordered_iter_suppressed.cc"));
  EXPECT_EQ(CountRule(diags, "unordered-iter"), 0);
}

TEST(UnorderedIterRule, CrossFileDeclarationIsRecognized) {
  // Container declared in a header (one source), iterated in another file:
  // the registry carries the name across files, mirroring lkm.h / lkm.cc.
  const std::string header =
      "struct Rec { std::unordered_map<int, int> pfn_cache; };\n";
  const std::string body =
      "int Sum(const Rec& rec) {\n"
      "  int s = 0;\n"
      "  for (const auto& [k, v] : rec.pfn_cache) { s += v; }\n"
      "  return s;\n"
      "}\n";
  const std::vector<Diagnostic> diags =
      LintVirtual("src/guest/fixture.cc", body, {}, {header});
  EXPECT_EQ(CountRule(diags, "unordered-iter"), 1);
  EXPECT_EQ(diags[0].line, 3);
}

TEST(UnorderedIterRule, DisablingTheRuleSilencesIt) {
  LintOptions options;
  options.disabled_rules.insert("unordered-iter");
  const std::vector<Diagnostic> diags =
      LintVirtual("src/core/fixture.cc", Fixture("unordered_iter_bad.cc"), options);
  EXPECT_EQ(CountRule(diags, "unordered-iter"), 0);
}

// ---- uninit-member ---------------------------------------------------------

TEST(UninitMemberRule, FiresOnScalarAndEnumMembers) {
  const std::vector<Diagnostic> diags =
      LintVirtual("src/migration/uninit_member_bad.h", Fixture("uninit_member_bad.h"));
  EXPECT_EQ(CountRule(diags, "uninit-member"), 4);
  std::set<std::string> named;
  for (const Diagnostic& d : diags) {
    if (d.rule == "uninit-member") {
      // Member name is quoted first in the message: "scalar member 'x' ...".
      const size_t a = d.message.find('\'');
      const size_t b = d.message.find('\'', a + 1);
      named.insert(d.message.substr(a + 1, b - a - 1));
    }
  }
  EXPECT_EQ(named, (std::set<std::string>{"flux", "ratio", "kind", "ready"}));
}

TEST(UninitMemberRule, InitializedAndClassMembersAreClean) {
  const std::vector<Diagnostic> diags =
      LintVirtual("src/migration/uninit_member_ok.h", Fixture("uninit_member_ok.h"));
  EXPECT_EQ(CountRule(diags, "uninit-member"), 0);
}

TEST(UninitMemberRule, SilentOutsideTargetDirs) {
  const std::vector<Diagnostic> diags =
      LintVirtual("src/jvm/uninit_member_bad.h", Fixture("uninit_member_bad.h"));
  EXPECT_EQ(CountRule(diags, "uninit-member"), 0);
}

TEST(UninitMemberRule, DisablingTheRuleSilencesIt) {
  LintOptions options;
  options.disabled_rules.insert("uninit-member");
  const std::vector<Diagnostic> diags =
      LintVirtual("src/migration/uninit_member_bad.h", Fixture("uninit_member_bad.h"), options);
  EXPECT_EQ(CountRule(diags, "uninit-member"), 0);
}

// ---- dcheck-side-effect ----------------------------------------------------

TEST(DcheckSideEffectRule, FiresOnMutationsInsideDcheck) {
  const std::vector<Diagnostic> diags =
      LintVirtual("src/mem/fixture.cc", Fixture("dcheck_side_effect_bad.cc"));
  EXPECT_EQ(CountRule(diags, "dcheck-side-effect"), 3);
}

TEST(DcheckSideEffectRule, PurePredicatesAndCheckAreClean) {
  const std::vector<Diagnostic> diags =
      LintVirtual("src/mem/fixture.cc", Fixture("dcheck_side_effect_ok.cc"));
  EXPECT_EQ(CountRule(diags, "dcheck-side-effect"), 0);
}

TEST(DcheckSideEffectRule, DisablingTheRuleSilencesIt) {
  LintOptions options;
  options.disabled_rules.insert("dcheck-side-effect");
  const std::vector<Diagnostic> diags =
      LintVirtual("src/mem/fixture.cc", Fixture("dcheck_side_effect_bad.cc"), options);
  EXPECT_EQ(CountRule(diags, "dcheck-side-effect"), 0);
}

// ---- include-guard ---------------------------------------------------------

TEST(IncludeGuardRule, FiresOnMissingGuard) {
  const std::vector<Diagnostic> diags =
      LintVirtual("src/mem/include_guard_missing.h", Fixture("include_guard_missing.h"));
  EXPECT_EQ(CountRule(diags, "include-guard"), 1);
}

TEST(IncludeGuardRule, FiresOnNonConventionGuardName) {
  const std::vector<Diagnostic> diags =
      LintVirtual("src/mem/include_guard_mismatch.h", Fixture("include_guard_mismatch.h"));
  ASSERT_EQ(CountRule(diags, "include-guard"), 1);
  EXPECT_NE(diags[0].message.find("JAVMM_SRC_MEM_INCLUDE_GUARD_MISMATCH_H_"),
            std::string::npos);
}

TEST(IncludeGuardRule, ProperGuardIsCleanAndSourcesAreExempt) {
  EXPECT_EQ(CountRule(LintVirtual("src/migration/uninit_member_ok.h",
                                  Fixture("uninit_member_ok.h")),
                      "include-guard"),
            0);
  // .cc files need no guard.
  EXPECT_EQ(CountRule(LintVirtual("src/mem/fixture.cc", Fixture("include_guard_missing.h")),
                      "include-guard"),
            0);
}

TEST(IncludeGuardRule, DisablingTheRuleSilencesIt) {
  LintOptions options;
  options.disabled_rules.insert("include-guard");
  const std::vector<Diagnostic> diags = LintVirtual(
      "src/mem/include_guard_missing.h", Fixture("include_guard_missing.h"), options);
  EXPECT_EQ(CountRule(diags, "include-guard"), 0);
}

// ---- float-export ----------------------------------------------------------

TEST(FloatExportRule, FiresOnFloatsInJsonEmitStatements) {
  const std::vector<Diagnostic> diags =
      LintVirtual("src/runner/fixture.cc", Fixture("float_export_bad.cc"));
  EXPECT_EQ(CountRule(diags, "float-export"), 3);
}

TEST(FloatExportRule, IntegerOnlyExportIsClean) {
  const std::vector<Diagnostic> diags =
      LintVirtual("src/runner/fixture.cc", Fixture("float_export_ok.cc"));
  EXPECT_EQ(CountRule(diags, "float-export"), 0);
}

TEST(FloatExportRule, OnlyExportPathsAreInScope) {
  // The same float-into-JSON code is out of scope for e.g. src/stats (tables
  // are human-facing); only src/runner/ and bench/common.h are export paths.
  const std::vector<Diagnostic> diags =
      LintVirtual("src/stats/fixture.cc", Fixture("float_export_bad.cc"));
  EXPECT_EQ(CountRule(diags, "float-export"), 0);
}

TEST(FloatExportRule, HotnessScopeIsWholeFile) {
  // src/mem/hotness* is integer-only end to end (DESIGN.md §12): floats fire
  // anywhere in the file, not just inside JSON emit statements.
  const std::vector<Diagnostic> diags =
      LintVirtual("src/mem/hotness_fixture.cc", Fixture("hotness_float_bad.cc"));
  EXPECT_EQ(CountRule(diags, "float-export"), 6);
}

TEST(FloatExportRule, IntegerOnlyHotnessIsClean) {
  const std::vector<Diagnostic> diags =
      LintVirtual("src/mem/hotness_fixture.cc", Fixture("hotness_float_ok.cc"));
  EXPECT_EQ(CountRule(diags, "float-export"), 0);
}

TEST(FloatExportRule, HotnessScopeDoesNotCoverTheRestOfMem) {
  // The same float-laden code under a different src/mem file is out of scope:
  // only the hotness score path carries the whole-file contract.
  const std::vector<Diagnostic> diags =
      LintVirtual("src/mem/fixture.cc", Fixture("hotness_float_bad.cc"));
  EXPECT_EQ(CountRule(diags, "float-export"), 0);
}

TEST(FloatExportRule, DisablingTheRuleSilencesIt) {
  LintOptions options;
  options.disabled_rules.insert("float-export");
  const std::vector<Diagnostic> diags =
      LintVirtual("src/runner/fixture.cc", Fixture("float_export_bad.cc"), options);
  EXPECT_EQ(CountRule(diags, "float-export"), 0);
}

// ---- unit dataflow: shared machinery ---------------------------------------

TEST(UnitDataflow, UnitFromNameSuffixes) {
  EXPECT_EQ(UnitFromName("elapsed_ns"), Unit::kNs);
  EXPECT_EQ(UnitFromName("pause_nanos"), Unit::kNs);
  EXPECT_EQ(UnitFromName("wire_bytes_"), Unit::kBytes);  // Member underscore.
  EXPECT_EQ(UnitFromName("bytes"), Unit::kBytes);
  EXPECT_EQ(UnitFromName("dirty_pages"), Unit::kPages);
  EXPECT_EQ(UnitFromName("pfn"), Unit::kPfn);
  EXPECT_EQ(UnitFromName("pfn_cursor"), Unit::kPfn);
  EXPECT_EQ(UnitFromName("first_pfn"), Unit::kPfn);
  EXPECT_EQ(UnitFromName("rate"), Unit::kNone);
  EXPECT_EQ(UnitFromName("bynsome"), Unit::kNone);  // Suffix, not substring.
}

TEST(UnitDataflow, TaggedAliasMemberCarriesAcrossFiles) {
  const std::string header = "struct Meter { ByteCount total_wire = 0; };";
  const std::string body =
      "int64_t F(int64_t elapsed_ns, Meter m) { return m.total_wire + elapsed_ns; }";
  const std::vector<Diagnostic> diags =
      LintVirtual("src/net/meter.cc", body, {}, {header});
  EXPECT_EQ(CountRule(diags, "unit-mix"), 1);
}

TEST(UnitDataflow, ShortNamesNeverEnterTheRegistry) {
  // A test-local `Pfn b` must not tag every `b` in the tree (the exact false
  // positive the <3-char registry guard exists for).
  const std::string other = "inline void G() { const Pfn b = 7; (void)b; }";
  const std::string body =
      "int64_t H(int64_t elapsed_ns) { const int64_t b = elapsed_ns; return b; }";
  const std::vector<Diagnostic> diags =
      LintVirtual("src/base/helper.cc", body, {}, {other});
  EXPECT_EQ(CountRule(diags, "unit-assign"), 0);
}

TEST(UnitDataflow, OnlyFilterRunsJustTheNamedRules) {
  LintOptions options;
  options.only_rules.insert("overflow-mul");
  const std::vector<Diagnostic> all =
      LintVirtual("src/net/fixture.cc", Fixture("overflow_mul_bad.cc"), options);
  EXPECT_EQ(CountRule(all, "overflow-mul"), 2);
  for (const Diagnostic& diag : all) {
    EXPECT_EQ(diag.rule, "overflow-mul") << diag.ToString();
  }
  // --only combined with --disable subtracts.
  options.disabled_rules.insert("overflow-mul");
  EXPECT_TRUE(
      LintVirtual("src/net/fixture.cc", Fixture("overflow_mul_bad.cc"), options).empty());
}

TEST(UnitDataflow, AllFiveRulesAreSuppressible) {
  const std::vector<Diagnostic> diags =
      LintVirtual("src/migration/fixture.cc", Fixture("unit_rules_suppressed.cc"));
  EXPECT_TRUE(diags.empty()) << diags.front().ToString();
}

// ---- unit-mix --------------------------------------------------------------

TEST(UnitMixRule, FiresOnCrossUnitAdditiveAndComparison) {
  const std::vector<Diagnostic> diags =
      LintVirtual("src/migration/fixture.cc", Fixture("unit_mix_bad.cc"));
  EXPECT_EQ(CountRule(diags, "unit-mix"), 3);
}

TEST(UnitMixRule, CompatibleAndConvertingArithmeticIsClean) {
  const std::vector<Diagnostic> diags =
      LintVirtual("src/migration/fixture.cc", Fixture("unit_mix_ok.cc"));
  EXPECT_EQ(CountRule(diags, "unit-mix"), 0);
}

TEST(UnitMixRule, SilentOutsideTheSimulationCore) {
  const std::vector<Diagnostic> diags =
      LintVirtual("bench/fixture.cc", Fixture("unit_mix_bad.cc"));
  EXPECT_EQ(CountRule(diags, "unit-mix"), 0);
}

TEST(UnitMixRule, DisablingTheRuleSilencesIt) {
  LintOptions options;
  options.disabled_rules.insert("unit-mix");
  const std::vector<Diagnostic> diags =
      LintVirtual("src/migration/fixture.cc", Fixture("unit_mix_bad.cc"), options);
  EXPECT_EQ(CountRule(diags, "unit-mix"), 0);
}

// ---- unit-assign -----------------------------------------------------------

TEST(UnitAssignRule, FiresOnCrossUnitStores) {
  const std::vector<Diagnostic> diags =
      LintVirtual("src/migration/fixture.cc", Fixture("unit_assign_bad.cc"));
  EXPECT_EQ(CountRule(diags, "unit-assign"), 3);
}

TEST(UnitAssignRule, ConvertingArithmeticAndConflictCollapseAreClean) {
  const std::vector<Diagnostic> diags =
      LintVirtual("src/migration/fixture.cc", Fixture("unit_assign_ok.cc"));
  EXPECT_EQ(CountRule(diags, "unit-assign"), 0);
}

TEST(UnitAssignRule, SilentOutsideTheSimulationCore) {
  const std::vector<Diagnostic> diags =
      LintVirtual("tests/fixture.cc", Fixture("unit_assign_bad.cc"));
  EXPECT_EQ(CountRule(diags, "unit-assign"), 0);
}

TEST(UnitAssignRule, DisablingTheRuleSilencesIt) {
  LintOptions options;
  options.disabled_rules.insert("unit-assign");
  const std::vector<Diagnostic> diags =
      LintVirtual("src/migration/fixture.cc", Fixture("unit_assign_bad.cc"), options);
  EXPECT_EQ(CountRule(diags, "unit-assign"), 0);
}

TEST(UnitAssignRule, ConverterCallResultIsPagesAndArgumentDoesNotLeak) {
  // PagesForBytes is the bytes->pages conversion idiom: storing its result
  // into a pages-tagged name is clean even though its argument is bytes.
  const std::string ok =
      "void F(int64_t hot_bytes) { const PageCount n = PagesForBytes(hot_bytes); (void)n; }";
  EXPECT_EQ(CountRule(LintVirtual("src/workload/fixture.cc", ok), "unit-assign"), 0);
  // ...and the call's fixed result unit still participates: storing pages
  // into a bytes-tagged name is the usual cross-unit error.
  const std::string bad =
      "void G(int64_t hot_bytes) { const ByteCount b = PagesForBytes(hot_bytes); (void)b; }";
  EXPECT_EQ(CountRule(LintVirtual("src/workload/fixture.cc", bad), "unit-assign"), 1);
}

TEST(UnitAssignRule, WorkloadDirectoryIsInScope) {
  const std::vector<Diagnostic> diags =
      LintVirtual("src/workload/fixture.cc", Fixture("unit_assign_bad.cc"));
  EXPECT_EQ(CountRule(diags, "unit-assign"), 3);
}

// ---- overflow-mul ----------------------------------------------------------

TEST(OverflowMulRule, FiresOnRawProductsOfTaggedOperands) {
  const std::vector<Diagnostic> diags =
      LintVirtual("src/net/fixture.cc", Fixture("overflow_mul_bad.cc"));
  EXPECT_EQ(CountRule(diags, "overflow-mul"), 2);
}

TEST(OverflowMulRule, CheckedHelpersAndUntaggedFactorsAreClean) {
  const std::vector<Diagnostic> diags =
      LintVirtual("src/net/fixture.cc", Fixture("overflow_mul_ok.cc"));
  EXPECT_EQ(CountRule(diags, "overflow-mul"), 0);
}

TEST(OverflowMulRule, SilentOutsideTheSimulationCore) {
  const std::vector<Diagnostic> diags =
      LintVirtual("bench/fixture.cc", Fixture("overflow_mul_bad.cc"));
  EXPECT_EQ(CountRule(diags, "overflow-mul"), 0);
}

TEST(OverflowMulRule, DisablingTheRuleSilencesIt) {
  LintOptions options;
  options.disabled_rules.insert("overflow-mul");
  const std::vector<Diagnostic> diags =
      LintVirtual("src/net/fixture.cc", Fixture("overflow_mul_bad.cc"), options);
  EXPECT_EQ(CountRule(diags, "overflow-mul"), 0);
}

// ---- narrowing-cast --------------------------------------------------------

TEST(NarrowingCastRule, FiresOnTaggedValuesCastNarrow) {
  const std::vector<Diagnostic> diags =
      LintVirtual("src/mem/fixture.cc", Fixture("narrowing_cast_bad.cc"));
  EXPECT_EQ(CountRule(diags, "narrowing-cast"), 3);
}

TEST(NarrowingCastRule, WideAndUntaggedCastsAreClean) {
  const std::vector<Diagnostic> diags =
      LintVirtual("src/mem/fixture.cc", Fixture("narrowing_cast_ok.cc"));
  EXPECT_EQ(CountRule(diags, "narrowing-cast"), 0);
}

TEST(NarrowingCastRule, SilentOutsideTheSimulationCore) {
  const std::vector<Diagnostic> diags =
      LintVirtual("bench/fixture.cc", Fixture("narrowing_cast_bad.cc"));
  EXPECT_EQ(CountRule(diags, "narrowing-cast"), 0);
}

TEST(NarrowingCastRule, DisablingTheRuleSilencesIt) {
  LintOptions options;
  options.disabled_rules.insert("narrowing-cast");
  const std::vector<Diagnostic> diags =
      LintVirtual("src/mem/fixture.cc", Fixture("narrowing_cast_bad.cc"), options);
  EXPECT_EQ(CountRule(diags, "narrowing-cast"), 0);
}

// ---- div-before-mul --------------------------------------------------------

TEST(DivBeforeMulRule, FiresOnTruncatingDivideThenMultiply) {
  const std::vector<Diagnostic> diags =
      LintVirtual("src/faults/fixture.cc", Fixture("div_before_mul_bad.cc"));
  EXPECT_EQ(CountRule(diags, "div-before-mul"), 2);
}

TEST(DivBeforeMulRule, MulDivAndMulFirstOrderingAreClean) {
  const std::vector<Diagnostic> diags =
      LintVirtual("src/faults/fixture.cc", Fixture("div_before_mul_ok.cc"));
  EXPECT_EQ(CountRule(diags, "div-before-mul"), 0);
}

TEST(DivBeforeMulRule, SilentOutsideTheSimulationCore) {
  const std::vector<Diagnostic> diags =
      LintVirtual("bench/fixture.cc", Fixture("div_before_mul_bad.cc"));
  EXPECT_EQ(CountRule(diags, "div-before-mul"), 0);
}

TEST(DivBeforeMulRule, DisablingTheRuleSilencesIt) {
  LintOptions options;
  options.disabled_rules.insert("div-before-mul");
  const std::vector<Diagnostic> diags =
      LintVirtual("src/faults/fixture.cc", Fixture("div_before_mul_bad.cc"), options);
  EXPECT_EQ(CountRule(diags, "div-before-mul"), 0);
}

// ---- suppression hygiene ---------------------------------------------------

TEST(SuppressionRule, MalformedAnnotationsAreReportedAndDoNotSuppress) {
  const std::vector<Diagnostic> diags =
      LintVirtual("src/core/fixture.cc", Fixture("suppression_bad.cc"));
  EXPECT_EQ(CountRule(diags, "suppression"), 3);
  // The malformed annotations must not have silenced the real findings.
  EXPECT_EQ(CountRule(diags, "unordered-iter"), 2);
}

// ---- diagnostics & baseline ------------------------------------------------

TEST(Diagnostics, TextAndJsonForms) {
  const Diagnostic diag{"src/mem/x.h", 12, "include-guard", "a \"quoted\" message"};
  EXPECT_EQ(diag.ToString(), "src/mem/x.h:12: include-guard: a \"quoted\" message");
  EXPECT_EQ(diag.ToJson(),
            "{\"file\":\"src/mem/x.h\",\"line\":12,\"rule\":\"include-guard\","
            "\"message\":\"a \\\"quoted\\\" message\"}");
}

TEST(BaselineTest, RoundTripCoversExactlyTheSerializedFindings) {
  const std::vector<Diagnostic> diags =
      LintVirtual("src/core/fixture.cc", Fixture("banned_call_bad.cc"));
  ASSERT_FALSE(diags.empty());
  const std::string serialized = Baseline::Serialize(diags);
  const Baseline baseline = Baseline::Parse(serialized);
  EXPECT_EQ(baseline.size(), diags.size());  // All distinct (file, rule, msg).
  for (const Diagnostic& diag : diags) {
    EXPECT_TRUE(baseline.Covers(diag)) << diag.ToString();
  }
  const Diagnostic other{"src/core/other.cc", 1, "banned-call", "not grandfathered"};
  EXPECT_FALSE(baseline.Covers(other));
}

TEST(BaselineTest, IgnoresCommentsAndBlankLines) {
  const Baseline baseline = Baseline::Parse("# comment\n\nsrc/a.cc\tbanned-call\tmsg\n");
  EXPECT_EQ(baseline.size(), 1u);
  EXPECT_TRUE(baseline.Covers(Diagnostic{"src/a.cc", 7, "banned-call", "msg"}));
}

TEST(BaselineTest, CheckedInBaselineIsEmpty) {
  // The acceptance bar for this repo: no grandfathered findings at all.
  const std::string content =
      ReadFileOrDie(std::string(JAVMM_SOURCE_DIR) + "/tools/lint_baseline.txt");
  EXPECT_EQ(Baseline::Parse(content).size(), 0u);
}

// ---- whole-tree regression -------------------------------------------------

TEST(TreeRegression, RepositoryIsLintClean) {
  const std::string root(JAVMM_SOURCE_DIR);
  std::string error;
  const std::vector<std::string> files =
      CollectSourceFiles({root + "/src", root + "/bench", root + "/tests"}, &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_GT(files.size(), 100u);  // The walk found the real tree.

  LintRegistry registry;
  std::vector<TokenizedSource> sources;
  sources.reserve(files.size());
  for (const std::string& file : files) {
    sources.push_back(Tokenize(ReadFileOrDie(file)));
    CollectRegistry(sources.back(), &registry);
  }
  std::vector<std::string> findings;
  for (size_t i = 0; i < files.size(); ++i) {
    for (const Diagnostic& diag : LintSource(files[i], sources[i], registry, {})) {
      findings.push_back(diag.ToString());
    }
  }
  EXPECT_TRUE(findings.empty()) << findings.size() << " finding(s), first: " << findings[0];
}

TEST(TreeRegression, FixtureCorpusIsSkippedByDirectoryWalks) {
  const std::string root(JAVMM_SOURCE_DIR);
  std::string error;
  const std::vector<std::string> files = CollectSourceFiles({root + "/tests"}, &error);
  ASSERT_TRUE(error.empty()) << error;
  for (const std::string& file : files) {
    EXPECT_EQ(file.find("lint_fixtures"), std::string::npos) << file;
  }
  // Passing a fixture file directly still lints it.
  const std::vector<std::string> direct =
      CollectSourceFiles({root + "/tests/lint_fixtures/banned_call_bad.cc"}, &error);
  EXPECT_EQ(direct.size(), 1u);
}

}  // namespace
}  // namespace lint
}  // namespace javmm
