// Copyright (c) 2026 The JAVMM Reproduction Authors.
//
// PerfCounters substrate tests (src/base/perf.h, DESIGN.md §14): JSON
// round-trip and parse errors, field-wise accumulation, the NotePush /
// NoteReserve growth-vs-reuse classification, dirty-log harvest metering
// with a reused caller buffer, counter determinism across the worker pool
// (including fault/retry paths), and the proof that instrumentation changed
// nothing observable: the shared seed battery still reproduces its pinned
// export byte for byte.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/base/perf.h"
#include "src/base/units.h"
#include "src/mem/dirty_log.h"
#include "src/runner/runner.h"
#include "tests/golden_seed_export.h"

namespace javmm {
namespace {

PerfCounters Distinct() {
  PerfCounters c;
  int64_t v = 1;
#define JAVMM_PERF_SET(name) c.name = v++;
  JAVMM_PERF_FIELDS(JAVMM_PERF_SET)
#undef JAVMM_PERF_SET
  return c;
}

TEST(PerfJsonTest, RoundTripPreservesEveryField) {
  const PerfCounters c = Distinct();
  PerfCounters parsed;
  std::string error;
  ASSERT_TRUE(PerfCounters::FromJson(c.ToJson(), &parsed, &error)) << error;
  EXPECT_EQ(parsed, c);
}

TEST(PerfJsonTest, MissingKeysDefaultToZero) {
  PerfCounters parsed;
  std::string error;
  ASSERT_TRUE(PerfCounters::FromJson("{\"harvests\":7}", &parsed, &error)) << error;
  EXPECT_EQ(parsed.harvests, 7);
  EXPECT_EQ(parsed.allocations, 0);
  EXPECT_EQ(parsed.trace_events, 0);
}

TEST(PerfJsonTest, UnknownKeyIsRejected) {
  PerfCounters parsed;
  std::string error;
  EXPECT_FALSE(PerfCounters::FromJson("{\"bogus_counter\":1}", &parsed, &error));
  EXPECT_NE(error.find("bogus_counter"), std::string::npos);
}

TEST(PerfJsonTest, MalformedInputIsRejected) {
  PerfCounters parsed;
  std::string error;
  EXPECT_FALSE(PerfCounters::FromJson("{\"harvests\":}", &parsed, &error));
  EXPECT_FALSE(PerfCounters::FromJson("not json", &parsed, &error));
  EXPECT_FALSE(PerfCounters::FromJson("{\"harvests\":1", &parsed, &error));
}

TEST(PerfAddTest, AccumulatesFieldWise) {
  PerfCounters total = Distinct();
  const PerfCounters other = Distinct();
  total.Add(other);
  const PerfCounters one = Distinct();
#define JAVMM_PERF_CHECK(name) EXPECT_EQ(total.name, 2 * one.name);
  JAVMM_PERF_FIELDS(JAVMM_PERF_CHECK)
#undef JAVMM_PERF_CHECK
}

TEST(PerfNamesTest, NamesCoverEveryFieldInOrder) {
  const std::vector<std::string> names = PerfCounterNames();
  const PerfCounters c = Distinct();
  // Distinct() numbers the fields 1..N in declaration order, so the named
  // accessor must read back exactly 1..N.
  ASSERT_FALSE(names.empty());
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(PerfCounterValue(c, names[i]), static_cast<int64_t>(i + 1)) << names[i];
  }
}

TEST(PerfNoteTest, PushClassifiesGrowthVersusReuse) {
  PerfCounters perf;
  std::vector<int64_t> v;
  v.reserve(4);
  for (int i = 0; i < 4; ++i) {
    NotePush(v, &perf);
    v.push_back(i);
  }
  EXPECT_EQ(perf.allocations, 0);
  EXPECT_EQ(perf.buffer_reuses, 4);
  NotePush(v, &perf);  // size == capacity: the next push grows.
  v.push_back(4);
  EXPECT_EQ(perf.allocations, 1);
  EXPECT_GT(perf.bytes_allocated, 0);
  // Null sink is a no-op, not a crash.
  NotePush(v, static_cast<PerfCounters*>(nullptr));
}

TEST(PerfNoteTest, ReserveClassifiesGrowthVersusReuse) {
  PerfCounters perf;
  std::vector<int64_t> v;
  NoteReserve(v, 100, &perf);
  v.reserve(100);
  EXPECT_EQ(perf.allocations, 1);
  NoteReserve(v, 50, &perf);  // Within capacity: a reuse.
  v.reserve(50);
  EXPECT_EQ(perf.allocations, 1);
  EXPECT_EQ(perf.buffer_reuses, 1);
}

TEST(DirtyLogPerfTest, RepeatHarvestIntoTheSameBufferReusesItsCapacity) {
  DirtyLog log(4096);
  PerfCounters perf;
  log.set_perf(&perf);
  std::vector<Pfn> harvest;

  for (Pfn pfn = 0; pfn < 600; ++pfn) {
    log.Mark(pfn * 3 % 4096);
  }
  log.CollectAndClear(&harvest);
  const int64_t first_pages = static_cast<int64_t>(harvest.size());
  EXPECT_EQ(perf.harvests, 1);
  EXPECT_EQ(perf.pages_harvested, first_pages);
  EXPECT_EQ(perf.bytes_harvested, first_pages * kPageSize);
  EXPECT_GT(perf.dirty_word_scans, 0);
  const int64_t allocations_after_first = perf.allocations;
  EXPECT_GE(allocations_after_first, 1);  // Fresh buffer had to grow once.

  // Same marks, same buffer: the second harvest must run entirely inside
  // the capacity the first one acquired.
  for (Pfn pfn = 0; pfn < 600; ++pfn) {
    log.Mark(pfn * 3 % 4096);
  }
  log.CollectAndClear(&harvest);
  EXPECT_EQ(perf.harvests, 2);
  EXPECT_EQ(perf.pages_harvested, 2 * first_pages);
  EXPECT_EQ(perf.allocations, allocations_after_first);
  EXPECT_GT(perf.buffer_reuses, 0);
}

// ---- Determinism across the worker pool, fault paths included. ----

std::vector<Scenario> SmallBattery() {
  // Two engines x healthy + the combined fault regime: covers the harvest
  // loop, burst retry/backoff, and the stop-and-copy finale.
  std::vector<Scenario> scenarios;
  for (const EngineKind kind : {EngineKind::kXenPrecopy, EngineKind::kJavmm}) {
    for (const char* spec : {"", "bw:0s-60s@0.5;loss:0.4;out:1s-2500ms"}) {
      Scenario scenario;
      scenario.label = std::string(EngineKindName(kind)) + (spec[0] == '\0' ? "" : "/faulted");
      scenario.spec = Workloads::Get("crypto");
      scenario.engine = kind;
      scenario.options.warmup = Duration::Seconds(10);
      scenario.options.cooldown = Duration::Seconds(5);
      scenario.options.fault_spec = spec;
      scenarios.push_back(std::move(scenario));
    }
  }
  return scenarios;
}

TEST(PerfRunnerTest, SerialAndParallelCountersAreIdentical) {
  const std::vector<Scenario> scenarios = SmallBattery();
  const RunReport serial = ScenarioRunner(/*jobs=*/1).RunAll(scenarios);
  const RunReport parallel = ScenarioRunner(/*jobs=*/4).RunAll(scenarios);
  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  for (size_t i = 0; i < serial.runs.size(); ++i) {
    EXPECT_EQ(serial.runs[i].output.result.perf, parallel.runs[i].output.result.perf)
        << scenarios[i].label;
  }
  EXPECT_EQ(serial.TotalPerf(), parallel.TotalPerf());
  EXPECT_EQ(serial.TotalPerf().ToJson(), parallel.TotalPerf().ToJson());
}

TEST(PerfRunnerTest, FaultedRunsStillMeterEveryHotPath) {
  const RunReport report = ScenarioRunner(/*jobs=*/2).RunAll(SmallBattery());
  ASSERT_EQ(report.errors, 0);
  for (const RunRecord& rec : report.runs) {
    const PerfCounters& perf = rec.output.result.perf;
    // Counters are monotone within a run, so every field must come out
    // non-negative even on the fault/retry/backoff paths.
#define JAVMM_PERF_NONNEG(name) EXPECT_GE(perf.name, 0) << rec.scenario.label;
    JAVMM_PERF_FIELDS(JAVMM_PERF_NONNEG)
#undef JAVMM_PERF_NONNEG
    // Pre-copy engines drive every instrumented site.
    EXPECT_GT(perf.harvests, 0) << rec.scenario.label;
    EXPECT_GT(perf.pages_harvested, 0) << rec.scenario.label;
    EXPECT_GT(perf.trace_events, 0) << rec.scenario.label;
    EXPECT_GT(perf.bursts_flushed, 0) << rec.scenario.label;
    EXPECT_GT(perf.buffer_reuses, 0) << rec.scenario.label;
    EXPECT_EQ(perf.bytes_harvested, perf.pages_harvested * kPageSize) << rec.scenario.label;
  }
}

// ---- Instrumentation must not move a single exported byte. ----

TEST(PerfGoldenTest, InstrumentedBatteryMatchesSeedExport) {
  const RunReport report = ScenarioRunner(/*jobs=*/4).RunAll(golden::SeedBatteryScenarios());
  EXPECT_EQ(report.errors, 0);
  EXPECT_EQ(report.verification_failures, 0);
  EXPECT_EQ(report.audit_failures, 0);
  std::ostringstream os;
  report.ExportJsonLines(os);
  EXPECT_EQ(os.str(), std::string(golden::kGoldenSeedExport));
  // And the counters behind that unchanged export are busy: the refactor
  // kept the bytes while replacing the allocator churn underneath.
  const PerfCounters total = report.TotalPerf();
  EXPECT_GT(total.harvests, 0);
  EXPECT_GT(total.page_peeks, 0);
  EXPECT_GE(total.buffer_reuses, 3 * total.allocations);
}

}  // namespace
}  // namespace javmm
