// Negative twin of div_before_mul_bad.cc: MulDiv is the fix and stays
// silent, as do a plain ratio with no trailing multiply, multiply-first
// ordering, and a call in divisor position (its closing paren ends
// elsewhere, so the pattern cannot apply).
#include <cstdint>

#include "src/base/units.h"

namespace javmm {

int64_t Rate();

int64_t Fine(int64_t wire_bytes, int64_t rate, int64_t share) {
  const int64_t exact = MulDiv(wire_bytes, share, rate);
  const int64_t ratio = wire_bytes / rate;
  const int64_t scaled = wire_bytes * share / rate;
  const int64_t timed = wire_bytes / Rate();
  (void)exact;
  (void)ratio;
  (void)scaled;
  (void)timed;
  return 0;
}

}  // namespace javmm
