// Known-bad fixture: a header with no include guard at all. Expected to fire
// include-guard once.

#include <cstdint>

namespace javmm_fixture {

inline int64_t Twice(int64_t x) { return 2 * x; }

}  // namespace javmm_fixture
