// Negative fixture for float-export: the integer-only export contract as
// src/runner/runner.cc implements it. Expected: zero findings under
// src/runner/.
#include <ostream>

#include "src/base/time.h"

namespace javmm_fixture {

void ExportOk(std::ostream& os, javmm::Duration d, int64_t bytes, int64_t pages) {
  os << "{\"time_ns\":" << d.nanos() << ",\"bytes\":" << bytes << ",\"pages\":" << pages
     << "}\n";
  // Floats outside a JSON-emit statement are fine (tables are humans-only).
  const double mib = static_cast<double>(bytes) / 1048576.0;
  (void)mib;
}

}  // namespace javmm_fixture
