// Negative twin of narrowing_cast_bad.cc: casts to 64-bit or floating
// targets, casts of untagged values, and templates naming a wide type
// (unsigned long) must all stay silent.
#include <cstdint>

namespace javmm {

int64_t Fine(int64_t wire_bytes, int count) {
  const int64_t w = static_cast<int64_t>(wire_bytes);
  const double f = static_cast<double>(wire_bytes);
  const int n = static_cast<int>(count);
  const size_t z = static_cast<size_t>(wire_bytes);
  const unsigned long ul = static_cast<unsigned long>(wire_bytes);
  (void)f;
  (void)n;
  (void)ul;
  return w + static_cast<int64_t>(z);
}

}  // namespace javmm
