// Negative fixture: deterministic iteration and order-free point lookups.
// Expected: zero unordered-iter findings even in a result-affecting
// directory.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

int64_t SumOrdered(const std::map<int64_t, int64_t>& ordered,
                   const std::unordered_map<int64_t, int64_t>& probe_only,
                   const std::vector<int64_t>& keys) {
  int64_t sum = 0;
  for (const auto& [key, value] : ordered) {  // std::map: deterministic order
    sum += key + value;
  }
  for (const int64_t key : keys) {  // point lookups never expose hash order
    auto it = probe_only.find(key);
    if (it != probe_only.end()) {
      sum += it->second;
    }
    sum += static_cast<int64_t>(probe_only.count(key));
  }
  return sum;
}
