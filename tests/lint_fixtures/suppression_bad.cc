// Known-bad fixture: malformed suppression annotations. Expected to fire
// suppression 3 times (missing reason, empty reason, unknown rule) -- and
// the malformed annotations must NOT suppress the underlying finding.
#include <cstdint>
#include <unordered_map>

int64_t Sum(const std::unordered_map<int64_t, int64_t>& cache) {
  int64_t sum = 0;
  // lint: unordered-iter-ok
  for (const auto& [k, v] : cache) {  // still fires: suppression has no reason
    sum += k + v;
  }
  // lint: unordered-iter-ok ( )
  for (const auto& [k, v] : cache) {  // still fires: empty reason
    sum -= k - v;
  }
  // lint: no-such-rule-ok (reason text)
  return sum;
}
