// Every unit-dataflow rule fired once and silenced by a reasoned
// suppression; the self-test pins that all five annotations are honoured.
#include <cstdint>

namespace javmm {

int64_t Suppressed(int64_t wire_bytes, int64_t dirty_pages, int64_t elapsed_ns, int64_t rate) {
  const int64_t mix = elapsed_ns + wire_bytes;  // lint: unit-mix-ok (fixture demonstration)
  int64_t stall_ns = 0;
  stall_ns = wire_bytes;  // lint: unit-assign-ok (fixture demonstration)
  const int64_t product = wire_bytes * dirty_pages;  // lint: overflow-mul-ok (fixture demonstration)
  const int clipped = static_cast<int>(wire_bytes);  // lint: narrowing-cast-ok (fixture demonstration)
  const int64_t lossy = wire_bytes / rate * 8;  // lint: div-before-mul-ok (fixture demonstration)
  (void)mix;
  (void)stall_ns;
  (void)product;
  (void)clipped;
  (void)lossy;
  return 0;
}

}  // namespace javmm
