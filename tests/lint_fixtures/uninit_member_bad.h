// Known-bad fixture: scalar struct members without default initializers.
// Expected to fire uninit-member 4 times (flux, ratio, kind, ready) when
// linted under src/migration, src/stats or src/trace, and zero times
// elsewhere. Linted under the virtual path src/migration/uninit_member_bad.h.

#ifndef JAVMM_SRC_MIGRATION_UNINIT_MEMBER_BAD_H_
#define JAVMM_SRC_MIGRATION_UNINIT_MEMBER_BAD_H_

#include <cstdint>
#include <string>
#include <vector>

namespace javmm_fixture {

enum class FixtureKind { kAlpha, kBeta };

struct BadRecord {
  int64_t flux;       // uninit-member: builtin scalar, no initializer
  double ratio;       // uninit-member: builtin scalar, no initializer
  FixtureKind kind;   // uninit-member: enum counts as scalar via the registry
  bool ready;         // uninit-member: builtin scalar, no initializer

  int64_t ok_init = 0;            // initialized: not flagged
  double ok_braces{0.5};          // brace-initialized: not flagged
  std::string name;               // class type: out of scope
  std::vector<int64_t> samples;   // class type: out of scope
  const char* label = nullptr;    // pointer (and initialized): not flagged

  int64_t Total() const { return flux + ok_init; }  // member function: skipped
};

}  // namespace javmm_fixture

#endif  // JAVMM_SRC_MIGRATION_UNINIT_MEMBER_BAD_H_
