// Known-bad fixture: floating-point values flowing into a JSON-lines export
// statement. Expected to fire float-export at least 3 times (ToSecondsF,
// static_cast<double>, float literal) when linted under src/runner/.
#include <cstdio>
#include <ostream>

#include "src/base/time.h"

namespace javmm_fixture {

void ExportBad(std::ostream& os, javmm::Duration d, int64_t bytes) {
  os << "{\"time_s\":" << d.ToSecondsF()                       // float-export
     << ",\"gib\":" << static_cast<double>(bytes) / 1073741824.0  // float-export (x2)
     << "}\n";
  std::fprintf(stderr, "not an export path: %f\n", d.ToSecondsF());  // no ":\" key: clean
}

}  // namespace javmm_fixture
