// Fixture: unordered iteration carrying the documented suppression syntax.
// Expected: zero unordered-iter findings.
#include <cstdint>
#include <unordered_map>

int64_t SumSuppressed(const std::unordered_map<int64_t, int64_t>& cache) {
  int64_t sum = 0;
  // lint: unordered-iter-ok (sum is commutative; order cannot reach the result)
  for (const auto& [key, value] : cache) {
    sum += key + value;
  }
  return sum;
}
