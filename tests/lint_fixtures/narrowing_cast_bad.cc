// Known-bad fixture: narrowing-cast must fire on every static_cast of a
// unit-tagged value into a type narrower than 64 bits.
#include <cstdint>

namespace javmm {

int Narrow(int64_t wire_bytes, int64_t elapsed_ns, int64_t dirty_pages) {
  const int a = static_cast<int>(wire_bytes);
  const unsigned b = static_cast<unsigned>(elapsed_ns);
  const short c = static_cast<short>(dirty_pages);
  (void)a;
  (void)b;
  (void)c;
  return 0;
}

}  // namespace javmm
