// Negative twin of unit_mix_bad.cc: same-unit arithmetic, the idiomatic
// pfn-vs-pages comparison, untagged operands, and the multiplicative-neighbor
// exemption (a factor may legitimately convert the unit) must all stay
// silent.
#include <cstdint>

namespace javmm {

int64_t NoMix(int64_t elapsed_ns, int64_t stall_ns, int64_t dirty_pages, int64_t pfn) {
  int64_t total_ns = elapsed_ns + stall_ns;
  if (pfn < dirty_pages) {
    total_ns += 1;
  }
  const int64_t per_page_cost = 7;
  if (stall_ns > dirty_pages * per_page_cost) {
    return total_ns;
  }
  const int64_t copy_time = dirty_pages * per_page_cost + stall_ns;
  return total_ns + copy_time;
}

}  // namespace javmm
