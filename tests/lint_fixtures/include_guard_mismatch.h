// Known-bad fixture: guard present but its name does not follow the project
// convention (JAVMM_<PATH>_H_). Expected to fire include-guard once under
// the virtual path src/mem/include_guard_mismatch.h.

#ifndef SOME_RANDOM_GUARD_H
#define SOME_RANDOM_GUARD_H

#include <cstdint>

namespace javmm_fixture {

inline int64_t Thrice(int64_t x) { return 3 * x; }

}  // namespace javmm_fixture

#endif  // SOME_RANDOM_GUARD_H
