// Known-bad fixture: unit-mix must fire on every cross-unit additive or
// comparison operator below (ns + bytes, ns < pages, bytes == pages).
#include <cstdint>

namespace javmm {

int64_t Mix(int64_t elapsed_ns, int64_t wire_bytes, int64_t dirty_pages) {
  const int64_t total = elapsed_ns + wire_bytes;
  if (elapsed_ns < dirty_pages) {
    return total;
  }
  const bool eq = wire_bytes == dirty_pages;
  return eq ? total : 0;
}

}  // namespace javmm
