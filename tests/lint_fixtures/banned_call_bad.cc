// Known-bad fixture: every banned nondeterminism source, expected to fire
// banned-call once per construct (6 total) when linted under a non-exempt
// directory, and zero times under src/base/ or src/runner/.
#include <random>

int Entropy() {
  std::random_device rd;              // banned-call: random_device
  srand(42);                          // banned-call: srand
  const int r = rand();               // banned-call: rand
  const long now = time(nullptr);     // banned-call: time(
  const char* home = getenv("HOME");  // banned-call: getenv
  (void)home;
  return static_cast<int>(rd()) + r + static_cast<int>(now);
}

// Not flagged: banned names inside comments (steady_clock) or strings, and
// member access spelled obj.time() -- only the global wall-clock read counts.
const char* kDoc = "system_clock is banned";
