// Known-bad fixture: DCHECK arguments whose side effects vanish in NDEBUG
// builds. Expected to fire dcheck-side-effect 3 times.
#include "src/base/macros.h"

int Consume(int* cursor, int limit) {
  DCHECK(++*cursor < limit);     // dcheck-side-effect: increment compiled out
  int written = 0;
  DCHECK_EQ(written = limit, limit);  // dcheck-side-effect: assignment
  DCHECK_GE(limit -= 1, 0);      // dcheck-side-effect: compound assignment
  return written + *cursor + limit;
}
