// Known-bad fixture: iteration over unordered containers. Expected to fire
// unordered-iter 3 times when linted under a result-affecting directory
// (range-for over a local, range-for over a member, iterator walk), and zero
// times under a non-result directory.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

struct Holder {
  std::unordered_set<int64_t> members;
};

int64_t SumAll(const Holder& holder) {
  std::unordered_map<int64_t, int64_t> local;
  int64_t sum = 0;
  for (const auto& [key, value] : local) {  // unordered-iter: range-for local
    sum += key + value;
  }
  for (const int64_t m : holder.members) {  // unordered-iter: range-for member
    sum += m;
  }
  for (auto it = local.begin(); it != local.end(); ++it) {  // unordered-iter: iterator walk
    sum += it->second;
  }
  return sum;
}
