// Known-bad fixture: unit-assign must fire on every cross-unit store below
// -- a plain assignment, a tagged-alias declaration, and a store whose rvalue
// unit arrived via initializer dataflow.
#include <cstdint>

namespace javmm {

int64_t Store(int64_t wire_bytes, int64_t deadline_ns) {
  int64_t downtime_ns = 0;
  downtime_ns = wire_bytes;
  const ByteCount total = deadline_ns;
  const int64_t budget = deadline_ns / 2;
  int64_t parked_pages = 0;
  parked_pages = budget;
  (void)total;
  (void)parked_pages;
  return downtime_ns;
}

}  // namespace javmm
