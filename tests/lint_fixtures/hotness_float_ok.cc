// Known-good fixture: the hotness score path written the integer-only way.
// Exponential decay is a right shift and the budget stays in nanoseconds, so
// the whole-file float-export scope for src/mem/hotness* reports nothing.
#include <cstdint>

#include "src/base/time.h"

namespace javmm_fixture {

int64_t DecayedScore(int64_t score, bool accessed) {
  int64_t next = score >> 1;
  if (accessed) {
    next += 8;
  }
  return next;
}

int64_t BudgetNanos(javmm::Duration budget) { return budget.nanos(); }

}  // namespace javmm_fixture
