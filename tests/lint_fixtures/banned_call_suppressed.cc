// Fixture: the same banned constructs as banned_call_bad.cc, each carrying a
// valid suppression. Expected: zero banned-call findings.
// lint: banned-call-ok (fixture exercising the suppression channel)
#include <random>

int Entropy() {
  // lint: banned-call-ok (fixture exercising the suppression channel)
  std::random_device rd;
  srand(42);  // lint: banned-call-ok (trailing-comment form)
  // lint: banned-call-ok (fixture exercising the suppression channel)
  const long now = time(nullptr);
  return static_cast<int>(rd()) + static_cast<int>(now);
}
