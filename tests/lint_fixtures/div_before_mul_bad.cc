// Known-bad fixture: div-before-mul must fire whenever a unit-tagged
// dividend is divided and then multiplied -- the integer division truncates
// first and the precision is gone for good.
#include <cstdint>

namespace javmm {

int64_t Lossy(int64_t wire_bytes, int64_t elapsed_ns, int64_t rate, int64_t n) {
  const int64_t throughput = wire_bytes / rate * 1000000000;
  const int64_t slice = elapsed_ns / n * rate;
  (void)throughput;
  (void)slice;
  return 0;
}

}  // namespace javmm
