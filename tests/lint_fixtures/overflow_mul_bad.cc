// Known-bad fixture: overflow-mul must fire on every raw `*` between two
// unit-tagged wide operands -- the PR 6 TryTransfer bug shape, and the exact
// shape javmm-lint caught live in ChannelSet::Shard (wire_bytes * page_hi).
#include <cstdint>

namespace javmm {

int64_t Products(int64_t wire_bytes, int64_t dirty_pages, int64_t elapsed_ns) {
  const int64_t area = wire_bytes * dirty_pages;
  const int64_t work = elapsed_ns * wire_bytes;
  (void)area;
  (void)work;
  return 0;
}

}  // namespace javmm
