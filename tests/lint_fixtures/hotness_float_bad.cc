// Known-bad fixture: floating-point arithmetic in the hotness score path.
// The hotness scope is whole-file, so these fire even though nothing here is
// a JSON export statement. Expected float-export findings: three `double`
// idents, two float literals, one ToSecondsF call (6 total).
#include <cstdint>

#include "src/base/time.h"

namespace javmm_fixture {

// A tempting-but-wrong rewrite of the integer decay: multiplying by 0.5
// instead of shifting right makes score order depend on rounding.
int64_t DecayedScore(int64_t score, bool accessed) {
  const double factor = 0.5;                          // float-export (double, 0.5)
  double next = static_cast<double>(score) * factor;  // float-export (double x2)
  if (accessed) {
    next += 8.0;  // float-export (literal)
  }
  return static_cast<int64_t>(next);
}

int64_t BudgetRounds(javmm::Duration budget) {
  return static_cast<int64_t>(budget.ToSecondsF());  // float-export (call)
}

}  // namespace javmm_fixture
