// Negative fixture for uninit-member: every scalar member carries a default
// initializer (the project contract for result/trace carriers). Expected:
// zero findings under the virtual path src/migration/uninit_member_ok.h.

#ifndef JAVMM_SRC_MIGRATION_UNINIT_MEMBER_OK_H_
#define JAVMM_SRC_MIGRATION_UNINIT_MEMBER_OK_H_

#include <cstdint>
#include <string>

namespace javmm_fixture {

enum class OkKind { kOne, kTwo };

struct OkRecord {
  int64_t flux = 0;
  double ratio = 1.0;
  OkKind kind = OkKind::kOne;
  bool ready = false;
  uint32_t mask{0};
  std::string name;  // class type: default constructor is well-defined

  double Rate() const { return ratio; }
};

class OkClass {  // classes are out of scope for the struct-member rule
 public:
  explicit OkClass(int64_t v) : ctor_set_(v) {}

 private:
  int64_t ctor_set_;  // initialized by every constructor
};

}  // namespace javmm_fixture

#endif  // JAVMM_SRC_MIGRATION_UNINIT_MEMBER_OK_H_
