// Negative fixture for dcheck-side-effect: pure predicates only (comparisons
// and const calls), plus side effects in always-on CHECKs, which survive
// NDEBUG. Expected: zero findings.
#include <vector>

#include "src/base/macros.h"

int Inspect(const std::vector<int>& values, int* cursor, int limit) {
  DCHECK(static_cast<int>(values.size()) <= limit);
  DCHECK_EQ(values.empty(), values.size() == 0);
  DCHECK_GE(limit, 0);
  CHECK(++*cursor < limit);  // CHECK is always compiled in: effects are safe
  return *cursor;
}
