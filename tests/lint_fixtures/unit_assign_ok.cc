// Negative twin of unit_assign_bad.cc: converting arithmetic blocks the
// strict inference (storing pages * per_page into bytes is the legitimate
// conversion shape), same-unit stores are fine, and a name seen with
// conflicting units collapses to untrusted so stale tags cannot cross
// functions.
#include <cstdint>

namespace javmm {

int64_t Convert(int64_t dirty_pages, int64_t header_bytes) {
  const int64_t per_page = 4096;
  int64_t wire_bytes = 0;
  wire_bytes = dirty_pages * per_page;
  wire_bytes = header_bytes;
  return wire_bytes;
}

int64_t First(int64_t dirty_pages) {
  const int64_t scratch = dirty_pages;
  return scratch;
}

int64_t Second(int64_t elapsed_ns, int64_t header_bytes) {
  int64_t scratch = elapsed_ns;
  scratch = header_bytes;
  return scratch;
}

}  // namespace javmm
