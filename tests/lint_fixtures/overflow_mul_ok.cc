// Negative twin of overflow_mul_bad.cc: the checked-helper call shapes
// (CheckedMul, MulDiv) and products with an untagged factor must stay
// silent.
#include <cstdint>

#include "src/base/units.h"

namespace javmm {

int64_t Fine(int64_t wire_bytes, int64_t dirty_pages) {
  const int64_t scaled = CheckedMul(wire_bytes, 2);
  const int64_t share = MulDiv(wire_bytes, dirty_pages, dirty_pages);
  const int64_t padded = wire_bytes * 2;
  const int64_t area = 3 * dirty_pages;
  (void)share;
  (void)area;
  return scaled + padded;
}

}  // namespace javmm
