// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Tests for the deterministic fault-injection subsystem (src/faults/) and the
// MigrationEngine's recovery path: FaultPlan parsing/validation, the
// FaultSchedule point queries, NetworkLink::TryTransfer's piecewise goodput
// integration, and the engine-level retry / backoff / carryover / degrade
// behaviour with its exact accounting.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/base/units.h"
#include "src/faults/faults.h"
#include "src/migration/engine.h"
#include "src/net/link.h"

namespace javmm {
namespace {

// ---- FaultPlan parsing & validation. ----

TEST(FaultPlanTest, ParsesFullSpec) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse("bw:2s-30s@0.1;lat:1s-2s+30ms;out:7s-8s;loss:0.05", &plan, &error))
      << error;
  ASSERT_EQ(plan.bandwidth.size(), 1u);
  EXPECT_EQ(plan.bandwidth[0].start.nanos(), Duration::Seconds(2).nanos());
  EXPECT_EQ(plan.bandwidth[0].end.nanos(), Duration::Seconds(30).nanos());
  EXPECT_DOUBLE_EQ(plan.bandwidth[0].multiplier, 0.1);
  ASSERT_EQ(plan.latency.size(), 1u);
  EXPECT_EQ(plan.latency[0].extra.nanos(), Duration::Millis(30).nanos());
  ASSERT_EQ(plan.outages.size(), 1u);
  EXPECT_EQ(plan.outages[0].start.nanos(), Duration::Seconds(7).nanos());
  EXPECT_DOUBLE_EQ(plan.control_loss_p, 0.05);
  EXPECT_TRUE(plan.enabled());
  EXPECT_TRUE(plan.affects_transfers());
}

TEST(FaultPlanTest, EmptySpecIsHealthyLink) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse("", &plan, &error)) << error;
  EXPECT_FALSE(plan.enabled());
  EXPECT_FALSE(plan.affects_transfers());
}

TEST(FaultPlanTest, LossOnlyPlanDoesNotAffectTransfers) {
  const FaultPlan plan = FaultPlan::MustParse("loss:0.2");
  EXPECT_TRUE(plan.enabled());
  EXPECT_FALSE(plan.affects_transfers());
}

TEST(FaultPlanTest, RejectsMalformedSpecsAndLeavesPlanUntouched) {
  const char* bad_specs[] = {
      "bw:2s-1s@0.5",            // Inverted window.
      "bw:1s-1s@0.5",            // Empty window.
      "bw:1s-2s@0",              // Multiplier must be > 0 (use an outage).
      "bw:1s-2s@1.5",            // Multiplier must be <= 1.
      "bw:1s-2s",                // Missing @MULT.
      "bw:1s-2s@0.5;bw:1.5s-3s@0.5",  // Overlapping windows.
      "bw:2s-3s@0.5;bw:1s-1.5s@0.5",  // Out of order.
      "lat:1s-2s",               // Missing +EXTRA.
      "out:1s",                  // Missing span end.
      "out:2x-3x",               // Unknown duration unit.
      "loss:1.5",                // Probability above 1.
      "loss:-0.1",               // Negative probability.
      "loss:abc",                // Not a number.
      "frob:1s-2s",              // Unknown clause kind.
      "noclausecolon",           // No ':' separator.
  };
  for (const char* spec : bad_specs) {
    SCOPED_TRACE(spec);
    FaultPlan plan = FaultPlan::MustParse("loss:0.5");
    std::string error;
    EXPECT_FALSE(FaultPlan::Parse(spec, &plan, &error));
    EXPECT_FALSE(error.empty());
    // A failed parse must not leak partial state into the caller's plan.
    EXPECT_DOUBLE_EQ(plan.control_loss_p, 0.5);
    EXPECT_TRUE(plan.bandwidth.empty());
  }
}

TEST(FaultPlanTest, AdjacentWindowsAreAllowed) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse("out:1s-2s;out:2s-3s", &plan, &error)) << error;
  ASSERT_EQ(plan.outages.size(), 2u);
}

TEST(FaultPlanTest, NominalBackoffDoublesUpToCap) {
  const Duration base = Duration::Millis(50);
  const Duration cap = Duration::Seconds(2);
  EXPECT_EQ(NominalBackoff(base, cap, 1).nanos(), Duration::Millis(50).nanos());
  EXPECT_EQ(NominalBackoff(base, cap, 2).nanos(), Duration::Millis(100).nanos());
  EXPECT_EQ(NominalBackoff(base, cap, 3).nanos(), Duration::Millis(200).nanos());
  EXPECT_EQ(NominalBackoff(base, cap, 6).nanos(), Duration::Millis(1600).nanos());
  EXPECT_EQ(NominalBackoff(base, cap, 7).nanos(), Duration::Seconds(2).nanos());
  EXPECT_EQ(NominalBackoff(base, cap, 20).nanos(), Duration::Seconds(2).nanos());
  // A base at or above the cap saturates immediately.
  EXPECT_EQ(NominalBackoff(Duration::Seconds(3), cap, 1).nanos(), Duration::Seconds(2).nanos());
}

// ---- FaultSchedule point queries (anchored windows, half-open semantics). ----

TEST(FaultScheduleTest, PointQueriesRespectAnchorAndHalfOpenWindows) {
  const TimePoint origin = TimePoint::Epoch() + Duration::Seconds(100);
  const FaultSchedule sched(FaultPlan::MustParse("bw:1s-2s@0.5;lat:0s-1s+10ms;out:4s-5s"),
                            origin);

  EXPECT_DOUBLE_EQ(sched.BandwidthMultiplierAt(origin), 1.0);
  EXPECT_DOUBLE_EQ(sched.BandwidthMultiplierAt(origin + Duration::Seconds(1)), 0.5);
  EXPECT_DOUBLE_EQ(
      sched.BandwidthMultiplierAt(origin + Duration::Seconds(2) - Duration::Nanos(1)), 0.5);
  // End is exclusive.
  EXPECT_DOUBLE_EQ(sched.BandwidthMultiplierAt(origin + Duration::Seconds(2)), 1.0);
  // Relative times anchor at the origin, not the epoch.
  EXPECT_DOUBLE_EQ(sched.BandwidthMultiplierAt(TimePoint::Epoch() + Duration::Seconds(1)), 1.0);

  EXPECT_EQ(sched.ExtraLatencyAt(origin).nanos(), Duration::Millis(10).nanos());
  EXPECT_EQ(sched.ExtraLatencyAt(origin + Duration::Seconds(1)).nanos(), 0);

  EXPECT_FALSE(sched.InOutage(origin));
  EXPECT_TRUE(sched.InOutage(origin + Duration::Seconds(4)));
  EXPECT_TRUE(sched.InOutage(origin + Duration::Millis(4500)));
  EXPECT_FALSE(sched.InOutage(origin + Duration::Seconds(5)));
  EXPECT_EQ(sched.OutageEndAt(origin + Duration::Millis(4500)).nanos(),
            (origin + Duration::Seconds(5)).nanos());
}

TEST(FaultScheduleTest, NextTransferBoundaryIsStrictlyAfter) {
  const TimePoint origin = TimePoint::Epoch() + Duration::Seconds(100);
  const FaultSchedule sched(FaultPlan::MustParse("bw:1s-2s@0.5;out:4s-5s"), origin);
  EXPECT_EQ(sched.NextTransferBoundaryAfter(origin).nanos(),
            (origin + Duration::Seconds(1)).nanos());
  // Strictly after: standing on a boundary yields the next one.
  EXPECT_EQ(sched.NextTransferBoundaryAfter(origin + Duration::Seconds(1)).nanos(),
            (origin + Duration::Seconds(2)).nanos());
  // An outage start is a rate boundary the integration must stop at.
  EXPECT_EQ(sched.NextTransferBoundaryAfter(origin + Duration::Seconds(2)).nanos(),
            (origin + Duration::Seconds(4)).nanos());
  // Past the last boundary the rate is constant forever.
  EXPECT_EQ(sched.NextTransferBoundaryAfter(origin + Duration::Seconds(4)).nanos(),
            TimePoint::Max().nanos());
}

// ---- NetworkLink::TryTransfer piecewise integration. ----
// 8 Mbit/s at efficiency 1.0 = exactly 1e6 payload bytes per second, so every
// expected duration below is an exact integer nanosecond count.

LinkConfig MegabyteLink() {
  LinkConfig config;
  config.bandwidth_bps = 8e6;
  config.efficiency = 1.0;
  config.per_page_overhead = 0;
  return config;
}

TEST(TryTransferTest, NullOrTransferNeutralScheduleEqualsTransferTime) {
  const NetworkLink link(MegabyteLink());
  const TimePoint start = TimePoint::Epoch() + Duration::Seconds(100);
  const TransferAttempt bare = link.TryTransfer(123456, start, nullptr);
  EXPECT_TRUE(bare.ok);
  EXPECT_EQ(bare.duration.nanos(), link.TransferTime(123456).nanos());
  EXPECT_EQ(bare.wasted_bytes, 0);

  // Control loss does not touch the data path: same fast path.
  const FaultSchedule loss_only(FaultPlan::MustParse("loss:0.5"), start);
  const TransferAttempt neutral = link.TryTransfer(123456, start, &loss_only);
  EXPECT_TRUE(neutral.ok);
  EXPECT_EQ(neutral.duration.nanos(), link.TransferTime(123456).nanos());
}

TEST(TryTransferTest, IntegratesAcrossHalfRateWindow) {
  const NetworkLink link(MegabyteLink());
  const TimePoint start = TimePoint::Epoch() + Duration::Seconds(100);
  const FaultSchedule sched(FaultPlan::MustParse("bw:1s-2s@0.5"), start);
  // 1.5e6 bytes: the first second moves 1e6 at full rate, the remaining 5e5
  // take a full second at half rate -- exactly 2 s end to end.
  const TransferAttempt attempt = link.TryTransfer(1500000, start, &sched);
  EXPECT_TRUE(attempt.ok);
  EXPECT_EQ(attempt.duration.nanos(), Duration::Seconds(2).nanos());
}

TEST(TryTransferTest, TransferFinishingAtOutageStartSucceeds) {
  const NetworkLink link(MegabyteLink());
  const TimePoint start = TimePoint::Epoch() + Duration::Seconds(100);
  const FaultSchedule sched(FaultPlan::MustParse("out:1s-2s"), start);
  const TransferAttempt attempt = link.TryTransfer(1000000, start, &sched);
  EXPECT_TRUE(attempt.ok);
  EXPECT_EQ(attempt.duration.nanos(), Duration::Seconds(1).nanos());
}

TEST(TryTransferTest, OutageCutsTransferAndReportsWasteExactly) {
  const NetworkLink link(MegabyteLink());
  const TimePoint start = TimePoint::Epoch() + Duration::Seconds(100);
  const FaultSchedule sched(FaultPlan::MustParse("out:1s-2s"), start);
  // 2e6 bytes: 1e6 reach the wire in the first second, then the link dies.
  const TransferAttempt attempt = link.TryTransfer(2000000, start, &sched);
  EXPECT_FALSE(attempt.ok);
  EXPECT_EQ(attempt.duration.nanos(), Duration::Seconds(1).nanos());
  EXPECT_EQ(attempt.wasted_bytes, 1000000);
  EXPECT_EQ(attempt.blocked_until.nanos(), (start + Duration::Seconds(2)).nanos());
}

TEST(TryTransferTest, StartInsideOutageFailsImmediately) {
  const NetworkLink link(MegabyteLink());
  const TimePoint origin = TimePoint::Epoch() + Duration::Seconds(100);
  const FaultSchedule sched(FaultPlan::MustParse("out:1s-2s"), origin);
  const TransferAttempt attempt =
      link.TryTransfer(2000000, origin + Duration::Millis(1500), &sched);
  EXPECT_FALSE(attempt.ok);
  EXPECT_EQ(attempt.duration.nanos(), 0);
  EXPECT_EQ(attempt.wasted_bytes, 0);
  EXPECT_EQ(attempt.blocked_until.nanos(), (origin + Duration::Seconds(2)).nanos());
}

TEST(TryTransferTest, ZeroByteTransferOnlyFailsInOutage) {
  const NetworkLink link(MegabyteLink());
  const TimePoint origin = TimePoint::Epoch() + Duration::Seconds(100);
  const FaultSchedule sched(FaultPlan::MustParse("out:1s-2s"), origin);
  EXPECT_TRUE(link.TryTransfer(0, origin, &sched).ok);
  const TransferAttempt blocked = link.TryTransfer(0, origin + Duration::Millis(1500), &sched);
  EXPECT_FALSE(blocked.ok);
  EXPECT_EQ(blocked.blocked_until.nanos(), (origin + Duration::Seconds(2)).nanos());
}

// ---- Engine-level recovery behaviour (bare kernel, no workload). ----
// Nothing dirties memory in these tests, so page accounting is exact: every
// frame must be sent exactly once no matter how the faults reorder the work,
// and a fault-free baseline run gives the reference totals.

class FaultEngineTest : public ::testing::Test {
 protected:
  FaultEngineTest() : memory_(64 * kMiB), kernel_(&memory_, &clock_) {}

  MigrationResult Run(const MigrationConfig& config) {
    MigrationEngine engine(&kernel_, config);
    return engine.Migrate();
  }

  SimClock clock_;
  GuestPhysicalMemory memory_;
  GuestKernel kernel_;
};

TEST_F(FaultEngineTest, TotalControlLossDegradesToStopAndCopy) {
  const MigrationResult baseline = Run(MigrationConfig{});
  ASSERT_TRUE(baseline.completed);

  MigrationConfig config;
  config.faults = FaultPlan::MustParse("loss:1.0");
  config.fault_seed = 7;
  const MigrationResult result = Run(config);

  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.degrade_reason, DegradeReason::kControlRetries);
  EXPECT_EQ(result.control_losses, config.max_control_retries + 1);
  EXPECT_EQ(result.control_rounds_ok, 0);
  EXPECT_EQ(result.retry_wire_bytes,
            result.control_losses * config.control_bytes_per_iteration);
  EXPECT_GT(result.backoff_time, Duration::Zero());
  // Stop-and-copy still lands every frame exactly once (the failed live round
  // carried its whole pending set over).
  EXPECT_EQ(result.pages_sent, baseline.pages_sent);
  EXPECT_TRUE(result.verification.ok) << result.verification.detail;
  ASSERT_TRUE(result.trace_audit.ran);
  EXPECT_TRUE(result.trace_audit.ok) << result.trace_audit.ToString();
}

TEST_F(FaultEngineTest, TotalControlLossAbortsCleanlyInAbortMode) {
  MigrationConfig config;
  config.faults = FaultPlan::MustParse("loss:1.0");
  config.fault_seed = 7;
  config.degrade_mode = DegradeMode::kAbort;
  const MigrationResult result = Run(config);

  EXPECT_FALSE(result.completed);
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.degrade_reason, DegradeReason::kControlRetries);
  EXPECT_EQ(result.iteration_count(), 1);
  EXPECT_EQ(result.pages_sent, 0);
  // Abort leaves a well-defined empty pause window.
  EXPECT_EQ(result.paused_at.nanos(), result.resumed_at.nanos());
  ASSERT_TRUE(result.trace_audit.ran);
  EXPECT_TRUE(result.trace_audit.ok) << result.trace_audit.ToString();
}

TEST_F(FaultEngineTest, OutageKilledBurstRetriesAndCompletes) {
  const MigrationResult baseline = Run(MigrationConfig{});
  ASSERT_TRUE(baseline.completed);

  MigrationConfig config;
  config.faults = FaultPlan::MustParse("out:5ms-20ms");
  MigrationEngine engine(&kernel_, config);
  const MigrationResult result = engine.Migrate();

  EXPECT_TRUE(result.completed);
  EXPECT_FALSE(result.degraded);
  EXPECT_GE(result.burst_faults, 1);
  EXPECT_GT(result.retry_wire_bytes, 0);
  EXPECT_GT(result.backoff_time, Duration::Zero());
  // Already-sent pages are not re-sent: the lost burst's pages carried over
  // and went out exactly once, so the useful page count matches the baseline.
  EXPECT_EQ(result.pages_sent, baseline.pages_sent);
  EXPECT_TRUE(result.verification.ok) << result.verification.detail;
  ASSERT_TRUE(result.trace_audit.ran);
  EXPECT_TRUE(result.trace_audit.ok) << result.trace_audit.ToString();

  // Every fault and recovery action is visible in the trace.
  EXPECT_EQ(engine.trace().CountOf(TraceEventKind::kTransferFault), result.burst_faults);
  EXPECT_EQ(engine.trace().CountOf(TraceEventKind::kRetryBackoff),
            result.burst_faults + result.control_losses);
  std::ostringstream os;
  engine.trace().ExportJsonLines(os);
  EXPECT_NE(os.str().find("\"event\":\"transfer_fault\""), std::string::npos);
  EXPECT_NE(os.str().find("\"event\":\"retry_backoff\""), std::string::npos);
}

TEST_F(FaultEngineTest, RepeatedOutagesExhaustBurstBudgetThenStopAndCopyWaitsThemOut) {
  const MigrationResult baseline = Run(MigrationConfig{});
  ASSERT_TRUE(baseline.completed);

  MigrationConfig config;
  // Outage gaps shorter than one burst's wire time (~9 ms at the default
  // link): every retry runs into the next outage until the budget is gone.
  config.faults = FaultPlan::MustParse(
      "out:5ms-6ms;out:10ms-11ms;out:15ms-16ms;out:20ms-21ms;out:25ms-26ms;out:30ms-31ms");
  config.retry_backoff_base = Duration::Millis(1);
  config.retry_backoff_cap = Duration::Millis(4);
  MigrationEngine engine(&kernel_, config);
  const MigrationResult result = engine.Migrate();

  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.degrade_reason, DegradeReason::kBurstRetries);
  EXPECT_GE(result.burst_faults, config.max_burst_retries + 1);
  // The abandoned burst rolled back and carried over; nothing is double-sent
  // and nothing is lost.
  EXPECT_EQ(result.pages_sent, baseline.pages_sent);
  EXPECT_EQ(result.pages_sent,
            result.pages_sent_raw + result.pages_compressed + result.pages_sent_delta);
  EXPECT_TRUE(result.verification.ok) << result.verification.detail;
  ASSERT_TRUE(result.trace_audit.ran);
  EXPECT_TRUE(result.trace_audit.ok) << result.trace_audit.ToString();
  EXPECT_EQ(engine.trace().CountOf(TraceEventKind::kDegrade), 1);
}

TEST_F(FaultEngineTest, RoundTimeoutsCarryOverThenDegrade) {
  const MigrationResult baseline = Run(MigrationConfig{});
  ASSERT_TRUE(baseline.completed);

  MigrationConfig config;
  config.round_timeout = Duration::Millis(4);  // One ~9 ms burst blows it.
  config.max_round_timeouts = 2;
  MigrationEngine engine(&kernel_, config);
  const MigrationResult result = engine.Migrate();

  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.degrade_reason, DegradeReason::kRoundTimeouts);
  EXPECT_EQ(result.round_timeouts, 3);
  // Three truncated live rounds plus the final stop-and-copy record.
  ASSERT_EQ(result.iteration_count(), 4);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(result.iterations[static_cast<size_t>(i)].pages_sent, config.batch_pages);
  }
  EXPECT_EQ(engine.trace().CountOf(TraceEventKind::kRoundTimeout), 3);
  // Carryover never re-sends: one burst per truncated round plus the final
  // stop-and-copy remainder still covers every frame exactly once.
  EXPECT_EQ(result.pages_sent, baseline.pages_sent);
  EXPECT_TRUE(result.verification.ok) << result.verification.detail;
  ASSERT_TRUE(result.trace_audit.ran);
  EXPECT_TRUE(result.trace_audit.ok) << result.trace_audit.ToString();
}

TEST_F(FaultEngineTest, SameSeedSameFaultPlanIsDeterministic) {
  MigrationConfig config;
  config.faults = FaultPlan::MustParse("bw:0s-50ms@0.5;out:5ms-20ms;loss:0.25");
  config.fault_seed = 99;

  MigrationEngine first_engine(&kernel_, config);
  const MigrationResult first = first_engine.Migrate();
  const int64_t first_events = static_cast<int64_t>(first_engine.trace().events().size());
  MigrationEngine second_engine(&kernel_, config);
  const MigrationResult second = second_engine.Migrate();

  EXPECT_EQ(first.completed, second.completed);
  EXPECT_EQ(first.degraded, second.degraded);
  EXPECT_EQ(first.degrade_reason, second.degrade_reason);
  EXPECT_EQ(first.total_time.nanos(), second.total_time.nanos());
  EXPECT_EQ(first.pages_sent, second.pages_sent);
  EXPECT_EQ(first.total_wire_bytes, second.total_wire_bytes);
  EXPECT_EQ(first.retry_wire_bytes, second.retry_wire_bytes);
  EXPECT_EQ(first.control_losses, second.control_losses);
  EXPECT_EQ(first.control_rounds_ok, second.control_rounds_ok);
  EXPECT_EQ(first.burst_faults, second.burst_faults);
  EXPECT_EQ(first.backoff_time.nanos(), second.backoff_time.nanos());
  EXPECT_EQ(first.iteration_count(), second.iteration_count());
  EXPECT_EQ(first_events, static_cast<int64_t>(second_engine.trace().events().size()));
  ASSERT_TRUE(first.trace_audit.ran);
  EXPECT_TRUE(first.trace_audit.ok) << first.trace_audit.ToString();
  ASSERT_TRUE(second.trace_audit.ran);
  EXPECT_TRUE(second.trace_audit.ok) << second.trace_audit.ToString();
}

// The ISSUE acceptance scenario: a bandwidth collapse plus 5% control loss
// must complete via retry/backoff (or degrade to stop-and-copy) with the
// trace audit green.
TEST_F(FaultEngineTest, BandwidthCollapseWithControlLossStillLands) {
  const MigrationResult baseline = Run(MigrationConfig{});
  ASSERT_TRUE(baseline.completed);

  MigrationConfig config;
  config.faults = FaultPlan::MustParse("bw:0s-60s@0.1;loss:0.05");
  config.fault_seed = 3;
  const MigrationResult result = Run(config);

  EXPECT_TRUE(result.completed);
  EXPECT_GT(result.total_time.nanos(), baseline.total_time.nanos());
  EXPECT_EQ(result.pages_sent, baseline.pages_sent);
  EXPECT_TRUE(result.verification.ok) << result.verification.detail;
  ASSERT_TRUE(result.trace_audit.ran);
  EXPECT_TRUE(result.trace_audit.ok) << result.trace_audit.ToString();
}

}  // namespace
}  // namespace javmm
