// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Unit + property tests for VaRangeSet, the LKM's skip-over-area bookkeeping.

#include <gtest/gtest.h>

#include <set>

#include "src/base/rng.h"
#include "src/guest/va_range_set.h"

namespace javmm {
namespace {

TEST(VaRangeSetTest, AddAndContains) {
  VaRangeSet s;
  s.Add({100, 200});
  EXPECT_TRUE(s.Contains(100));
  EXPECT_TRUE(s.Contains(199));
  EXPECT_FALSE(s.Contains(200));
  EXPECT_FALSE(s.Contains(99));
  EXPECT_EQ(s.TotalBytes(), 100);
}

TEST(VaRangeSetTest, AddEmptyIsNoop) {
  VaRangeSet s;
  s.Add({100, 100});
  EXPECT_TRUE(s.empty());
}

TEST(VaRangeSetTest, CoalescesOverlapping) {
  VaRangeSet s;
  s.Add({100, 200});
  s.Add({150, 300});
  EXPECT_EQ(s.Ranges().size(), 1u);
  EXPECT_EQ(s.Ranges()[0], (VaRange{100, 300}));
}

TEST(VaRangeSetTest, CoalescesAdjacent) {
  VaRangeSet s;
  s.Add({100, 200});
  s.Add({200, 300});
  EXPECT_EQ(s.Ranges().size(), 1u);
  EXPECT_EQ(s.TotalBytes(), 200);
}

TEST(VaRangeSetTest, KeepsDisjointSeparate) {
  VaRangeSet s;
  s.Add({100, 200});
  s.Add({300, 400});
  EXPECT_EQ(s.Ranges().size(), 2u);
}

TEST(VaRangeSetTest, AddBridgesMultiple) {
  VaRangeSet s;
  s.Add({100, 200});
  s.Add({300, 400});
  s.Add({500, 600});
  s.Add({150, 550});
  EXPECT_EQ(s.Ranges().size(), 1u);
  EXPECT_EQ(s.Ranges()[0], (VaRange{100, 600}));
}

TEST(VaRangeSetTest, SubtractMiddleSplits) {
  VaRangeSet s;
  s.Add({100, 400});
  s.Subtract({200, 300});
  const auto ranges = s.Ranges();
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0], (VaRange{100, 200}));
  EXPECT_EQ(ranges[1], (VaRange{300, 400}));
}

TEST(VaRangeSetTest, SubtractEnds) {
  VaRangeSet s;
  s.Add({100, 400});
  s.Subtract({100, 150});  // Trim left.
  s.Subtract({350, 400});  // Trim right.
  ASSERT_EQ(s.Ranges().size(), 1u);
  EXPECT_EQ(s.Ranges()[0], (VaRange{150, 350}));
}

TEST(VaRangeSetTest, SubtractSpanningMultiple) {
  VaRangeSet s;
  s.Add({100, 200});
  s.Add({300, 400});
  s.Subtract({150, 350});
  const auto ranges = s.Ranges();
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0], (VaRange{100, 150}));
  EXPECT_EQ(ranges[1], (VaRange{350, 400}));
}

TEST(VaRangeSetTest, SubtractDisjointIsNoop) {
  VaRangeSet s;
  s.Add({100, 200});
  s.Subtract({300, 400});
  EXPECT_EQ(s.TotalBytes(), 100);
}

TEST(VaRangeSetTest, IntersectionWith) {
  VaRangeSet s;
  s.Add({100, 200});
  s.Add({300, 400});
  const auto hits = s.IntersectionWith({150, 350});
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], (VaRange{150, 200}));
  EXPECT_EQ(hits[1], (VaRange{300, 350}));
}

TEST(VaRangeSetTest, ComplementWithin) {
  VaRangeSet s;
  s.Add({100, 200});
  s.Add({300, 400});
  const auto gaps = s.ComplementWithin({50, 450});
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0], (VaRange{50, 100}));
  EXPECT_EQ(gaps[1], (VaRange{200, 300}));
  EXPECT_EQ(gaps[2], (VaRange{400, 450}));
}

TEST(VaRangeSetTest, MinusIsSetDifference) {
  VaRangeSet a;
  a.Add({100, 400});
  VaRangeSet b;
  b.Add({200, 300});
  const auto diff = a.Minus(b);
  ASSERT_EQ(diff.size(), 2u);
  EXPECT_EQ(diff[0], (VaRange{100, 200}));
  EXPECT_EQ(diff[1], (VaRange{300, 400}));
  // b \ a is empty.
  EXPECT_TRUE(b.Minus(a).empty());
}

// Property test: random Add/Subtract sequences must agree with a naive
// per-byte reference model (scaled down: each unit = one "byte").
class VaRangeSetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VaRangeSetPropertyTest, MatchesNaiveModel) {
  Rng rng(GetParam());
  VaRangeSet s;
  std::set<VirtAddr> model;
  constexpr VirtAddr kUniverse = 512;
  for (int op = 0; op < 300; ++op) {
    const VirtAddr b = rng.NextBounded(kUniverse);
    const VirtAddr e = b + rng.NextBounded(64);
    const VaRange r{b, std::min(e, kUniverse)};
    if (rng.Chance(0.5)) {
      s.Add(r);
      for (VirtAddr v = r.begin; v < r.end; ++v) {
        model.insert(v);
      }
    } else {
      s.Subtract(r);
      for (VirtAddr v = r.begin; v < r.end; ++v) {
        model.erase(v);
      }
    }
  }
  EXPECT_EQ(s.TotalBytes(), static_cast<int64_t>(model.size()));
  for (VirtAddr v = 0; v < kUniverse; ++v) {
    ASSERT_EQ(s.Contains(v), model.count(v) != 0) << "at " << v;
  }
  // Invariant: ranges are sorted, non-empty, non-overlapping, non-adjacent.
  const auto ranges = s.Ranges();
  for (size_t i = 0; i < ranges.size(); ++i) {
    ASSERT_LT(ranges[i].begin, ranges[i].end);
    if (i > 0) {
      ASSERT_GT(ranges[i].begin, ranges[i - 1].end);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VaRangeSetPropertyTest,
                         ::testing::Values<uint64_t>(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace javmm
