// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Unit + property tests for the generational heap (§4.1).

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/jvm/generational_heap.h"
#include "src/mem/address_space.h"
#include "src/mem/physical_memory.h"

namespace javmm {
namespace {

HeapConfig SmallHeap() {
  HeapConfig config;
  config.young_max_bytes = 16 * kMiB;
  config.young_initial_bytes = 8 * kMiB;
  config.young_min_bytes = 2 * kMiB;
  config.old_max_bytes = 32 * kMiB;
  config.old_commit_step = 4 * kMiB;
  config.survivor_fraction = 0.125;
  config.tenure_threshold = 2;
  return config;
}

class HeapTest : public ::testing::Test {
 protected:
  HeapTest() : memory_(256 * kMiB), space_(&memory_) {}

  GuestPhysicalMemory memory_;
  AddressSpace space_;
};

TEST_F(HeapTest, InitialLayout) {
  GenerationalHeap heap(&space_, SmallHeap());
  EXPECT_EQ(heap.young_committed_bytes(), 8 * kMiB);
  EXPECT_EQ(heap.young_committed().bytes(), 8 * kMiB);
  EXPECT_EQ(heap.young_used_bytes(), 0);
  EXPECT_EQ(heap.old_used_bytes(), 0);
  // Eden + 2 survivors partition the committed young generation.
  EXPECT_EQ(heap.eden_range().bytes() + 2 * heap.from_space_range().bytes(),
            heap.young_committed_bytes());
  heap.CheckInvariants();
}

TEST_F(HeapTest, AllocationDirtiesEdenPages) {
  GenerationalHeap heap(&space_, SmallHeap());
  const int64_t writes_before = memory_.total_writes();
  ASSERT_TRUE(heap.TryAllocate(64 * kKiB, TimePoint::Max()));
  EXPECT_EQ(heap.young_used_bytes(), 64 * kKiB);
  EXPECT_GT(memory_.total_writes(), writes_before);
  // The bump pointer starts at eden's base.
  const Pfn pfn = space_.page_table().Lookup(VpnOf(heap.eden_range().begin));
  EXPECT_GT(memory_.version(pfn), 0u);
}

TEST_F(HeapTest, AllocationFailsWhenEdenFull) {
  GenerationalHeap heap(&space_, SmallHeap());
  const int64_t chunk = 64 * kKiB;
  while (heap.TryAllocate(chunk, TimePoint::Max())) {
  }
  EXPECT_LT(heap.eden_free_bytes(), chunk);
}

TEST_F(HeapTest, MinorGcReclaimsGarbageAndEmptiesEden) {
  GenerationalHeap heap(&space_, SmallHeap());
  const TimePoint now = TimePoint::Epoch() + Duration::Seconds(10);
  // All chunks dead by `now`.
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(heap.TryAllocate(64 * kKiB, TimePoint::Epoch() + Duration::Seconds(1)));
  }
  const MinorGcResult gc = heap.MinorGc(now);
  EXPECT_EQ(gc.young_used_before, 16 * 64 * kKiB);
  EXPECT_EQ(gc.garbage_bytes, 16 * 64 * kKiB);
  EXPECT_EQ(gc.live_bytes, 0);
  EXPECT_EQ(heap.young_used_bytes(), 0);
  EXPECT_TRUE(heap.occupied_from_range().empty());
  heap.CheckInvariants();
}

TEST_F(HeapTest, MinorGcCopiesLiveDataToSurvivor) {
  GenerationalHeap heap(&space_, SmallHeap());
  ASSERT_TRUE(heap.TryAllocate(64 * kKiB, TimePoint::Max()));                     // Live.
  ASSERT_TRUE(heap.TryAllocate(64 * kKiB, TimePoint::Epoch() + Duration::Nanos(1)));  // Dies.
  const MinorGcResult gc = heap.MinorGc(TimePoint::Epoch() + Duration::Seconds(1));
  EXPECT_EQ(gc.live_bytes, 64 * kKiB);
  EXPECT_EQ(gc.copied_to_survivor, 64 * kKiB);
  EXPECT_EQ(gc.promoted_bytes, 0);
  EXPECT_EQ(heap.occupied_from_range().bytes(), 64 * kKiB);
  // The survivor lives inside the From space.
  const VaRange from = heap.from_space_range();
  EXPECT_TRUE(from.Contains(heap.occupied_from_range().begin));
  heap.CheckInvariants();
}

TEST_F(HeapTest, SurvivorSpacesSwapRoles) {
  GenerationalHeap heap(&space_, SmallHeap());
  const VaRange from_before = heap.from_space_range();
  ASSERT_TRUE(heap.TryAllocate(64 * kKiB, TimePoint::Max()));
  heap.MinorGc(TimePoint::Epoch() + Duration::Seconds(1));
  const VaRange from_after = heap.from_space_range();
  EXPECT_NE(from_before.begin, from_after.begin);  // To became From.
}

TEST_F(HeapTest, TenuredChunksPromoteToOld) {
  HeapConfig config = SmallHeap();
  config.tenure_threshold = 2;
  config.allow_shrink = false;
  GenerationalHeap heap(&space_, config);
  ASSERT_TRUE(heap.TryAllocate(64 * kKiB, TimePoint::Max()));
  // GC 1: eden -> To (age 1). GC 2: From, age 2 >= threshold -> promoted.
  heap.MinorGc(TimePoint::Epoch() + Duration::Seconds(1));
  EXPECT_EQ(heap.old_used_bytes(), 0);
  const MinorGcResult gc2 = heap.MinorGc(TimePoint::Epoch() + Duration::Seconds(2));
  EXPECT_EQ(gc2.promoted_bytes, 64 * kKiB);
  EXPECT_EQ(heap.old_used_bytes(), 64 * kKiB);
  EXPECT_TRUE(heap.occupied_from_range().empty());
  heap.CheckInvariants();
}

TEST_F(HeapTest, SurvivorOverflowPromotesDirectly) {
  HeapConfig config = SmallHeap();
  config.allow_shrink = false;
  GenerationalHeap heap(&space_, config);
  // Live data larger than one survivor space (1 MiB at 8 MiB young).
  const int64_t survivor = heap.from_space_range().bytes();
  int64_t allocated = 0;
  while (allocated <= 2 * survivor) {
    ASSERT_TRUE(heap.TryAllocate(64 * kKiB, TimePoint::Max()));
    allocated += 64 * kKiB;
  }
  const MinorGcResult gc = heap.MinorGc(TimePoint::Epoch() + Duration::Seconds(1));
  EXPECT_GT(gc.promoted_bytes, 0);
  EXPECT_LE(heap.occupied_from_range().bytes(), survivor);
  EXPECT_EQ(gc.live_bytes, gc.copied_to_survivor + gc.promoted_bytes);
  heap.CheckInvariants();
}

TEST_F(HeapTest, AllocateOldPlacesBaselineData) {
  GenerationalHeap heap(&space_, SmallHeap());
  ASSERT_TRUE(heap.AllocateOld(4 * kMiB, TimePoint::Max()));
  EXPECT_EQ(heap.old_used_bytes(), 4 * kMiB);
  EXPECT_GE(heap.old_committed_bytes(), 4 * kMiB);
  EXPECT_FALSE(heap.AllocateOld(100 * kMiB, TimePoint::Max()));  // Over cap.
}

TEST_F(HeapTest, FullGcCompactsOldGeneration) {
  GenerationalHeap heap(&space_, SmallHeap());
  ASSERT_TRUE(heap.AllocateOld(2 * kMiB, TimePoint::Epoch() + Duration::Seconds(1)));  // Dies.
  ASSERT_TRUE(heap.AllocateOld(3 * kMiB, TimePoint::Max()));                            // Lives.
  const FullGcResult gc = heap.FullGc(TimePoint::Epoch() + Duration::Seconds(2));
  EXPECT_EQ(gc.old_used_before, 5 * kMiB);
  EXPECT_EQ(gc.old_live, 3 * kMiB);
  EXPECT_EQ(gc.old_garbage, 2 * kMiB);
  EXPECT_EQ(heap.old_used_bytes(), 3 * kMiB);
  heap.CheckInvariants();
}

TEST_F(HeapTest, PromotionFailureTriggersFullGc) {
  HeapConfig config = SmallHeap();
  config.old_max_bytes = 4 * kMiB;
  config.tenure_threshold = 1;  // Promote immediately.
  config.allow_shrink = false;
  GenerationalHeap heap(&space_, config);
  // Fill old with dying data, then force promotions: 4 MiB of live young data
  // overflows the 1 MiB survivor space, promoting ~3 MiB into the 1 MiB of
  // old headroom left.
  ASSERT_TRUE(heap.AllocateOld(3 * kMiB, TimePoint::Epoch() + Duration::Seconds(1)));
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(heap.TryAllocate(64 * kKiB, TimePoint::Max()));
  }
  const MinorGcResult gc = heap.MinorGc(TimePoint::Epoch() + Duration::Seconds(2));
  EXPECT_TRUE(gc.triggered_full_gc);
  EXPECT_EQ(heap.gc_log().full.size(), 1u);
  heap.CheckInvariants();
}

TEST_F(HeapTest, AdaptivePolicyGrowsYoungTowardCap) {
  HeapConfig config = SmallHeap();
  config.target_fill_interval = Duration::Seconds(3);
  GenerationalHeap heap(&space_, config);
  // Simulate a high allocation rate: fill eden in well under the target
  // interval repeatedly; the committed young size should reach the cap.
  TimePoint now = TimePoint::Epoch();
  for (int round = 0; round < 8; ++round) {
    while (heap.TryAllocate(64 * kKiB, now + Duration::Millis(1))) {
    }
    now += Duration::Millis(200);  // Eden filled in 0.2 s => demand is high.
    heap.MinorGc(now);
  }
  EXPECT_EQ(heap.young_committed_bytes(), config.young_max_bytes);
}

class ShrinkListener : public GenerationalHeap::ResizeListener {
 public:
  void OnYoungGenShrunk(const VaRange& freed) override { freed_.push_back(freed); }
  std::vector<VaRange> freed_;
};

TEST_F(HeapTest, AdaptivePolicyShrinksAndNotifies) {
  HeapConfig config = SmallHeap();
  config.young_initial_bytes = 16 * kMiB;  // Start big.
  config.target_fill_interval = Duration::Seconds(3);
  config.shrink_headroom = 1.5;
  GenerationalHeap heap(&space_, config);
  ShrinkListener listener;
  heap.set_resize_listener(&listener);
  // Tiny allocation over a long interval => demand far below committed.
  TimePoint now = TimePoint::Epoch();
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(heap.TryAllocate(64 * kKiB, now + Duration::Millis(1)));
    now += Duration::Seconds(30);
    heap.MinorGc(now);
  }
  EXPECT_LT(heap.young_committed_bytes(), 16 * kMiB);
  ASSERT_FALSE(listener.freed_.empty());
  // Freed ranges are the decommitted tail of the young region and must no
  // longer be mapped.
  for (const VaRange& freed : listener.freed_) {
    EXPECT_FALSE(space_.IsCommitted(freed.begin));
  }
  heap.CheckInvariants();
}

TEST_F(HeapTest, LiveChunksReflectsDeaths) {
  GenerationalHeap heap(&space_, SmallHeap());
  ASSERT_TRUE(heap.TryAllocate(64 * kKiB, TimePoint::Epoch() + Duration::Seconds(5)));
  ASSERT_TRUE(heap.TryAllocate(64 * kKiB, TimePoint::Epoch() + Duration::Seconds(15)));
  ASSERT_TRUE(heap.AllocateOld(kMiB, TimePoint::Max()));
  EXPECT_EQ(heap.LiveChunks(TimePoint::Epoch() + Duration::Seconds(1)).size(), 3u);
  EXPECT_EQ(heap.LiveChunks(TimePoint::Epoch() + Duration::Seconds(10)).size(), 2u);
  EXPECT_EQ(heap.LiveChunks(TimePoint::Epoch() + Duration::Seconds(20)).size(), 1u);
}

TEST_F(HeapTest, GcDurationScalesWithUsedYoung) {
  HeapConfig config;
  config.young_max_bytes = 64 * kMiB;
  config.young_initial_bytes = 64 * kMiB;
  config.young_min_bytes = 2 * kMiB;
  config.old_max_bytes = 32 * kMiB;
  config.allow_shrink = false;
  GenerationalHeap heap(&space_, config);
  // Nearly empty young: duration ~ fixed cost.
  const MinorGcResult small = heap.MinorGc(TimePoint::Epoch() + Duration::Seconds(1));
  // Full eden: duration includes the scan term.
  while (heap.TryAllocate(kMiB, TimePoint::Epoch() + Duration::Seconds(1))) {
  }
  const MinorGcResult big = heap.MinorGc(TimePoint::Epoch() + Duration::Seconds(2));
  EXPECT_GT(big.duration.nanos(), small.duration.nanos() * 2);
}

// Property test: arbitrary allocate/GC interleavings keep invariants and
// never lose live data.
class HeapPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HeapPropertyTest, RandomOpsKeepInvariants) {
  GuestPhysicalMemory memory(256 * kMiB);
  AddressSpace space(&memory);
  HeapConfig config = SmallHeap();
  GenerationalHeap heap(&space, config);
  Rng rng(GetParam());
  TimePoint now = TimePoint::Epoch();
  int64_t expected_live = 0;
  std::vector<std::pair<TimePoint, int64_t>> live_ledger;  // (death, bytes)
  for (int op = 0; op < 500; ++op) {
    now += Duration::Millis(static_cast<int64_t>(rng.NextBounded(50)));
    const int64_t bytes = static_cast<int64_t>(16 + rng.NextBounded(96)) * kKiB;
    const TimePoint death =
        now + Duration::Millis(static_cast<int64_t>(rng.NextBounded(2000)));
    if (!heap.TryAllocate(bytes, death)) {
      heap.MinorGc(now);
      ASSERT_TRUE(heap.TryAllocate(bytes, death));
    }
    live_ledger.push_back({death, bytes});
    if (rng.Chance(0.05)) {
      heap.MinorGc(now);
    }
    heap.CheckInvariants();
  }
  // Every chunk still alive per the ledger must be found by LiveChunks.
  for (const auto& [death, bytes] : live_ledger) {
    if (death > now) {
      expected_live += bytes;
    }
  }
  int64_t reported_live = 0;
  for (const auto& chunk : heap.LiveChunks(now)) {
    reported_live += chunk.bytes;
  }
  EXPECT_EQ(reported_live, expected_live);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapPropertyTest, ::testing::Values<uint64_t>(11, 22, 33, 44, 55));

}  // namespace
}  // namespace javmm
