// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Coverage for the smaller substrates: the network link model, the guest-OS
// background dirtier, and the throughput analyser's sampling behaviour.

#include <gtest/gtest.h>

#include "src/net/link.h"
#include "src/sim/clock.h"
#include "src/workload/os_process.h"
#include "src/workload/throughput_analyzer.h"

namespace javmm {
namespace {

// ---- NetworkLink. ----

TEST(LinkTest, GoodputMatchesPaperOperatingPoint) {
  // 1 Gbps at 95% efficiency ~ 118.75 MB/s -- "950 MB ... more than
  // 7 seconds" (§4.2) pins the paper's testbed to about this.
  const LinkConfig config;
  EXPECT_NEAR(config.GoodputBytesPerSec(), 118.75e6, 1e4);
  NetworkLink link(config);
  const double secs = link.TransferTime(950 * 1000 * 1000).ToSecondsF();
  EXPECT_GT(secs, 7.0);
  EXPECT_LT(secs, 9.0);
}

TEST(LinkTest, PageTransferIncludesOverhead) {
  NetworkLink link(LinkConfig{});
  EXPECT_EQ(link.PageWireBytes(1), kPageSize + LinkConfig{}.per_page_overhead);
  EXPECT_EQ(link.PageWireBytes(100), 100 * (kPageSize + LinkConfig{}.per_page_overhead));
  // Transfer time scales linearly in pages.
  const double t1 = link.PageTransferTime(1).ToSecondsF();
  const double t100 = link.PageTransferTime(100).ToSecondsF();
  EXPECT_NEAR(t100, 100 * t1, t100 * 0.01);
  EXPECT_TRUE(link.PageTransferTime(0).IsZero());
}

TEST(LinkTest, MetersAccumulateAndReset) {
  NetworkLink link(LinkConfig{});
  link.RecordPages(10);
  link.RecordControlBytes(512);
  EXPECT_EQ(link.total_pages_sent(), 10);
  EXPECT_EQ(link.total_wire_bytes(), link.PageWireBytes(10) + 512);
  link.ResetMeters();
  EXPECT_EQ(link.total_pages_sent(), 0);
  EXPECT_EQ(link.total_wire_bytes(), 0);
}

TEST(LinkTest, FasterLinkShorterTime) {
  LinkConfig fast;
  fast.bandwidth_bps = 10e9;
  EXPECT_LT(NetworkLink(fast).PageTransferTime(1000).nanos(),
            NetworkLink(LinkConfig{}).PageTransferTime(1000).nanos());
}

// ---- OsBackgroundProcess. ----

TEST(OsProcessTest, DirtiesAtConfiguredRate) {
  SimClock clock;
  GuestPhysicalMemory memory(256 * kMiB);
  GuestKernel kernel(&memory, &clock);
  OsProcessConfig config;
  config.resident_bytes = 64 * kMiB;
  config.hot_bytes = 8 * kMiB;
  config.dirty_rate_bytes_per_sec = 4 * kMiB;
  OsBackgroundProcess os(&kernel, config, Rng(1));
  DirtyLog log(memory.frame_count());
  memory.AttachDirtyLog(&log);
  clock.Advance(Duration::Seconds(10));
  // 4 MiB/s for 10 s = 40 MiB = 10240 page touches.
  EXPECT_NEAR(static_cast<double>(log.total_marks()), 10240.0, 16.0);
  memory.DetachDirtyLog(&log);
}

TEST(OsProcessTest, HotSetBoundsDirtyFootprint) {
  SimClock clock;
  GuestPhysicalMemory memory(256 * kMiB);
  GuestKernel kernel(&memory, &clock);
  OsProcessConfig config;
  config.resident_bytes = 64 * kMiB;
  config.hot_bytes = 4 * kMiB;  // 1024 pages.
  config.dirty_rate_bytes_per_sec = 16 * kMiB;
  OsBackgroundProcess os(&kernel, config, Rng(2));
  DirtyLog log(memory.frame_count());
  memory.AttachDirtyLog(&log);
  clock.Advance(Duration::Seconds(5));
  EXPECT_LE(log.CountDirty(), PagesForBytes(config.hot_bytes));
  memory.DetachDirtyLog(&log);
}

TEST(OsProcessTest, RespectsVmPause) {
  SimClock clock;
  GuestPhysicalMemory memory(512 * kMiB);
  GuestKernel kernel(&memory, &clock);
  OsBackgroundProcess os(&kernel, OsProcessConfig{}, Rng(3));
  const int64_t writes = memory.total_writes();
  kernel.PauseVm();
  clock.Advance(Duration::Seconds(5));
  EXPECT_EQ(memory.total_writes(), writes);
}

// ---- ThroughputAnalyzer sampling. ----

TEST(AnalyzerTest, SamplesOncePerInterval) {
  SimClock clock;
  GuestPhysicalMemory memory(512 * kMiB);
  GuestKernel kernel(&memory, &clock);
  kernel.LoadLkm(LkmConfig{});
  WorkloadSpec spec = Workloads::Get("crypto");
  spec.alloc_rate_bytes_per_sec = 16 * kMiB;
  spec.heap.young_max_bytes = 64 * kMiB;
  spec.heap.old_max_bytes = 64 * kMiB;
  spec.old_baseline_bytes = 8 * kMiB;
  JavaApplication app(&kernel, spec, Rng(4));
  ThroughputAnalyzer analyzer(&clock, &app);
  clock.Advance(Duration::Seconds(30));
  EXPECT_EQ(analyzer.series().size(), 30u);
  // Mean observed rate ~ ops_per_sec minus GC overhead.
  const double mean = analyzer.series().MeanInWindow(
      TimePoint::Epoch() + Duration::Seconds(5), clock.now());
  EXPECT_NEAR(mean, spec.ops_per_sec, spec.ops_per_sec * 0.15);
}

TEST(AnalyzerTest, SeesPauseAsZeroThroughput) {
  SimClock clock;
  GuestPhysicalMemory memory(512 * kMiB);
  GuestKernel kernel(&memory, &clock);
  kernel.LoadLkm(LkmConfig{});
  WorkloadSpec spec = Workloads::Get("crypto");
  spec.alloc_rate_bytes_per_sec = 16 * kMiB;
  spec.heap.young_max_bytes = 64 * kMiB;
  spec.heap.old_max_bytes = 64 * kMiB;
  spec.old_baseline_bytes = 8 * kMiB;
  JavaApplication app(&kernel, spec, Rng(5));
  ThroughputAnalyzer analyzer(&clock, &app);
  clock.Advance(Duration::Seconds(10));
  kernel.PauseVm();
  clock.Advance(Duration::Seconds(5));
  kernel.ResumeVm();
  clock.Advance(Duration::Seconds(10));
  const Duration observed = analyzer.ObservedDowntime(
      TimePoint::Epoch() + Duration::Seconds(8), clock.now());
  EXPECT_GE(observed.ToSecondsF(), 4.0);
  EXPECT_LE(observed.ToSecondsF(), 7.0);
}

}  // namespace
}  // namespace javmm
