// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Unit tests for the stats module: summaries, time series, tables; plus the
// workload-spec registry.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "src/stats/summary.h"
#include "src/stats/table.h"
#include "src/stats/time_series.h"
#include "src/workload/spec.h"

namespace javmm {
namespace {

TEST(SummaryTest, MeanStdDevMinMax) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_NEAR(s.StdDev(), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  EXPECT_EQ(s.count(), 8);
}

TEST(SummaryTest, Ci90UsesStudentT) {
  Summary s;
  s.Add(10.0);
  s.Add(12.0);
  s.Add(14.0);
  // n=3, mean 12, sd 2, t_{0.90, df=2} = 2.920 => CI = 2.920 * 2 / sqrt(3).
  EXPECT_NEAR(s.Ci90HalfWidth(), 2.920 * 2.0 / std::sqrt(3.0), 1e-9);
}

TEST(SummaryTest, SingleSampleHasZeroCi) {
  Summary s;
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.Ci90HalfWidth(), 0.0);
  EXPECT_DOUBLE_EQ(s.StdDev(), 0.0);
}

TEST(TimeSeriesTest, MeanAndMinInWindow) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) {
    ts.Add(TimePoint::Epoch() + Duration::Seconds(i), i < 5 ? 10.0 : 2.0);
  }
  EXPECT_DOUBLE_EQ(
      ts.MeanInWindow(TimePoint::Epoch(), TimePoint::Epoch() + Duration::Seconds(5)), 10.0);
  EXPECT_DOUBLE_EQ(ts.MinInWindow(TimePoint::Epoch() + Duration::Seconds(3),
                                  TimePoint::Epoch() + Duration::Seconds(8)),
                   2.0);
  EXPECT_DOUBLE_EQ(ts.MeanInWindow(TimePoint::Epoch() + Duration::Seconds(100),
                                   TimePoint::Epoch() + Duration::Seconds(200)),
                   0.0);
}

TEST(TimeSeriesTest, LongestBelowFindsStall) {
  TimeSeries ts;
  // 1 Hz samples: normal, then a 3-sample stall, then normal.
  const double values[] = {5, 5, 5, 0, 0, 0, 5, 5};
  for (int i = 0; i < 8; ++i) {
    ts.Add(TimePoint::Epoch() + Duration::Seconds(i), values[i]);
  }
  const Duration stall =
      ts.LongestBelow(0.5, TimePoint::Epoch(), TimePoint::Epoch() + Duration::Seconds(8));
  EXPECT_EQ(stall.nanos(), Duration::Seconds(3).nanos());
}

TEST(TimeSeriesTest, LongestBelowNoStall) {
  TimeSeries ts;
  for (int i = 0; i < 5; ++i) {
    ts.Add(TimePoint::Epoch() + Duration::Seconds(i), 5.0);
  }
  EXPECT_TRUE(ts.LongestBelow(0.5, TimePoint::Epoch(),
                              TimePoint::Epoch() + Duration::Seconds(5))
                  .IsZero());
}

TEST(TableTest, PrintsAlignedRows) {
  Table table({"name", "value"});
  table.Row().Cell("alpha").Cell(int64_t{42});
  table.Row().Cell("b").Cell(3.14159, 2);
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| alpha | 42    |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 3.14  |"), std::string::npos);
}

TEST(AsciiBarTest, ScalesToWidth) {
  EXPECT_EQ(AsciiBar(10, 10, 20).size(), 20u);
  EXPECT_EQ(AsciiBar(5, 10, 20).size(), 10u);
  EXPECT_EQ(AsciiBar(0, 10, 20).size(), 0u);
  EXPECT_EQ(AsciiBar(100, 10, 20).size(), 20u);  // Clamped.
}

// ---- Workload registry (Table 1). ----

TEST(WorkloadSpecTest, AllNineWorkloadsPresent) {
  const auto all = Workloads::All();
  ASSERT_EQ(all.size(), 9u);
  for (const char* name :
       {"derby", "compiler", "xml", "sunflow", "serial", "crypto", "scimark", "mpeg",
        "compress"}) {
    EXPECT_EQ(Workloads::Get(name).name, name);
  }
}

TEST(WorkloadSpecTest, CategoriesMatchSection53) {
  EXPECT_EQ(Workloads::Get("derby").category, 1);
  EXPECT_EQ(Workloads::Get("compiler").category, 1);
  EXPECT_EQ(Workloads::Get("xml").category, 1);
  EXPECT_EQ(Workloads::Get("sunflow").category, 1);
  EXPECT_EQ(Workloads::Get("serial").category, 2);
  EXPECT_EQ(Workloads::Get("crypto").category, 2);
  EXPECT_EQ(Workloads::Get("mpeg").category, 2);
  EXPECT_EQ(Workloads::Get("compress").category, 2);
  EXPECT_EQ(Workloads::Get("scimark").category, 3);
}

TEST(WorkloadSpecTest, SpecsAreSane) {
  for (const WorkloadSpec& spec : Workloads::All()) {
    EXPECT_GT(spec.alloc_rate_bytes_per_sec, 0) << spec.name;
    EXPECT_GE(spec.long_lived_fraction, 0.0) << spec.name;
    EXPECT_LE(spec.long_lived_fraction, 1.0) << spec.name;
    EXPECT_GT(spec.ops_per_sec, 0.0) << spec.name;
    EXPECT_GT(spec.heap.young_max_bytes, 0) << spec.name;
    EXPECT_FALSE(spec.description.empty()) << spec.name;
  }
}

TEST(WorkloadSpecTest, CategoryRepresentatives) {
  const auto reps = Workloads::CategoryRepresentatives();
  ASSERT_EQ(reps.size(), 3u);
  EXPECT_EQ(reps[0].name, "derby");
  EXPECT_EQ(reps[1].name, "crypto");
  EXPECT_EQ(reps[2].name, "scimark");
}

TEST(WorkloadSpecTest, WithYoungCapAppliesTable3) {
  const WorkloadSpec xml = Workloads::WithYoungCap(Workloads::Get("xml"), 1536 * kMiB);
  EXPECT_EQ(xml.heap.young_max_bytes, 1536 * kMiB);
  const WorkloadSpec compiler =
      Workloads::WithYoungCap(Workloads::Get("compiler"), 512 * kMiB);
  EXPECT_EQ(compiler.heap.young_max_bytes, 512 * kMiB);
  EXPECT_LE(compiler.heap.young_initial_bytes, 512 * kMiB);
}

}  // namespace
}  // namespace javmm
