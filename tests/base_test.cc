// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Unit tests for src/base: time, units, RNG.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <type_traits>

#include "src/base/rng.h"
#include "src/base/time.h"
#include "src/base/units.h"

namespace javmm {
namespace {

TEST(DurationTest, ConstructorsAndAccessors) {
  EXPECT_EQ(Duration::Nanos(5).nanos(), 5);
  EXPECT_EQ(Duration::Micros(3).nanos(), 3000);
  EXPECT_EQ(Duration::Millis(2).nanos(), 2000000);
  EXPECT_EQ(Duration::Seconds(1).nanos(), 1000000000);
  EXPECT_EQ(Duration::Minutes(1).nanos(), 60ll * 1000000000);
  EXPECT_DOUBLE_EQ(Duration::Seconds(2).ToSecondsF(), 2.0);
  EXPECT_DOUBLE_EQ(Duration::Millis(1500).ToMillisF(), 1500.0);
}

TEST(DurationTest, SecondsFRoundsToNearestNanosecond) {
  EXPECT_EQ(Duration::SecondsF(1e-9).nanos(), 1);
  EXPECT_EQ(Duration::SecondsF(0.5).nanos(), 500000000);
  EXPECT_EQ(Duration::SecondsF(1.25e-9).nanos(), 1);
}

TEST(DurationTest, Arithmetic) {
  const Duration a = Duration::Seconds(3);
  const Duration b = Duration::Seconds(1);
  EXPECT_EQ((a + b).nanos(), Duration::Seconds(4).nanos());
  EXPECT_EQ((a - b).nanos(), Duration::Seconds(2).nanos());
  EXPECT_EQ((b * int64_t{3}).nanos(), a.nanos());
  EXPECT_EQ((a / int64_t{3}).nanos(), b.nanos());
  EXPECT_DOUBLE_EQ(a / b, 3.0);
  EXPECT_EQ((b * 2.5).nanos(), 2500000000ll);
}

TEST(DurationTest, Comparison) {
  EXPECT_LT(Duration::Millis(1), Duration::Millis(2));
  EXPECT_EQ(Duration::Millis(1), Duration::Micros(1000));
  EXPECT_TRUE(Duration::Zero().IsZero());
}

TEST(DurationTest, ToStringPicksUnit) {
  EXPECT_EQ(Duration::Seconds(2).ToString(), "2.000s");
  EXPECT_EQ(Duration::Millis(13).ToString(), "13.00ms");
  EXPECT_EQ(Duration::Micros(250).ToString(), "250.0us");
  EXPECT_EQ(Duration::Nanos(40).ToString(), "40ns");
}

TEST(TimePointTest, Arithmetic) {
  const TimePoint t = TimePoint::Epoch() + Duration::Seconds(10);
  EXPECT_EQ(t.nanos(), 10ll * 1000000000);
  EXPECT_EQ((t - TimePoint::Epoch()).nanos(), Duration::Seconds(10).nanos());
  EXPECT_EQ((t - Duration::Seconds(4)).nanos(), Duration::Seconds(6).nanos());
  EXPECT_LT(TimePoint::Epoch(), t);
}

TEST(UnitsTest, PagesForBytes) {
  EXPECT_EQ(PagesForBytes(0), 0);
  EXPECT_EQ(PagesForBytes(1), 1);
  EXPECT_EQ(PagesForBytes(kPageSize), 1);
  EXPECT_EQ(PagesForBytes(kPageSize + 1), 2);
  EXPECT_EQ(PagesForBytes(kGiB), 262144);
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2 * kKiB), "2.00 KiB");
  EXPECT_EQ(FormatBytes(3 * kMiB), "3.00 MiB");
  EXPECT_EQ(FormatBytes(kGiB + kGiB / 2), "1.50 GiB");
}

TEST(CheckedArithmeticTest, CheckedAddInRange) {
  EXPECT_EQ(CheckedAdd(0, 0), 0);
  EXPECT_EQ(CheckedAdd(3, 4), 7);
  EXPECT_EQ(CheckedAdd(-5, 2), -3);
  EXPECT_EQ(CheckedAdd(INT64_MAX - 1, 1), INT64_MAX);
  EXPECT_EQ(CheckedAdd(INT64_MIN + 1, -1), INT64_MIN);
}

TEST(CheckedArithmeticTest, CheckedAddOverflowDies) {
  EXPECT_DEATH_IF_SUPPORTED(CheckedAdd(INT64_MAX, 1), "CheckedAdd");
  EXPECT_DEATH_IF_SUPPORTED(CheckedAdd(INT64_MIN, -1), "CheckedAdd");
}

TEST(CheckedArithmeticTest, CheckedMulInRange) {
  EXPECT_EQ(CheckedMul(0, INT64_MAX), 0);
  EXPECT_EQ(CheckedMul(6, 7), 42);
  EXPECT_EQ(CheckedMul(-6, 7), -42);
  EXPECT_EQ(CheckedMul(int64_t{1} << 31, int64_t{1} << 31), int64_t{1} << 62);
}

TEST(CheckedArithmeticTest, CheckedMulOverflowDies) {
  EXPECT_DEATH_IF_SUPPORTED(CheckedMul(int64_t{1} << 32, int64_t{1} << 32), "CheckedMul");
  EXPECT_DEATH_IF_SUPPORTED(CheckedMul(INT64_MAX, 2), "CheckedMul");
}

TEST(MulDivTest, WideIntermediateSurvives) {
  // The product exceeds int64 while the quotient fits -- the whole point.
  const int64_t wire = (int64_t{1} << 32) * 4174;
  const int64_t pages = int64_t{1} << 32;
  EXPECT_EQ(MulDiv(wire, pages / 2, pages), wire / 2);
  EXPECT_EQ(MulDiv(INT64_MAX, INT64_MAX, INT64_MAX), INT64_MAX);
}

TEST(MulDivTest, TruncatesTowardZeroLikeInt64Division) {
  // For in-range products MulDiv(a, b, c) must equal a * b / c bit-for-bit;
  // the Shard() migration relies on this for golden byte-identity.
  EXPECT_EQ(MulDiv(7, 3, 2), 7 * 3 / 2);
  EXPECT_EQ(MulDiv(-7, 3, 2), -7 * 3 / 2);  // -10, not -11.
  EXPECT_EQ(MulDiv(7, -3, 2), -10);
  EXPECT_EQ(MulDiv(1003, 417, 4), 1003 * 417 / 4);
}

TEST(MulDivTest, ZeroDenominatorAndOverflowDie) {
  EXPECT_DEATH_IF_SUPPORTED(MulDiv(1, 1, 0), "MulDiv");
  EXPECT_DEATH_IF_SUPPORTED(MulDiv(INT64_MAX, 2, 1), "MulDiv");
}

TEST(UnitAliasTest, AliasesAreInt64) {
  static_assert(std::is_same_v<Nanos, int64_t>);
  static_assert(std::is_same_v<ByteCount, int64_t>);
  static_assert(std::is_same_v<PageCount, int64_t>);
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(7), 7u);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t x = rng.UniformInt(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    saw_lo |= (x == -2);
    saw_hi |= (x == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(6);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(3.0);
  }
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, LogNormalMean) {
  Rng rng(7);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.LogNormal(5.0, 0.8);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(RngTest, BoundedParetoWithinBounds) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.BoundedPareto(1.0, 100.0, 1.2);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 100.0);
  }
}

TEST(RngTest, ChanceFrequency) {
  Rng rng(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Chance(0.25)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(RngTest, ForkIndependence) {
  Rng parent(10);
  Rng child = parent.Fork();
  // Child stream differs from the parent's continued stream.
  EXPECT_NE(parent.Next(), child.Next());
}

}  // namespace
}  // namespace javmm
