// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Run-write equivalence suite (DESIGN.md §15): the batched store pipeline
// (AddressSpace::WriteRange -> PageTable::LookupRun -> GuestPhysicalMemory::
// WriteRun -> DirtyLog::MarkRun / WriteObserver::OnGuestWriteRun) must carry
// byte-identical dirty semantics to the legacy per-page Touch loop. The twin
// harness drives two identically-seeded substrates -- one through WriteRange,
// one through per-page Touch -- across fragmented layouts (decommit/recommit,
// RemapPage) and asserts every observable is equal: frame versions, the
// allocation map, total_writes, dirty bits and total_marks, hotness scores.

#include <gtest/gtest.h>

#include <vector>

#include "src/base/perf.h"
#include "src/base/rng.h"
#include "src/guest/guest_kernel.h"
#include "src/mem/address_space.h"
#include "src/mem/bitmap.h"
#include "src/mem/dirty_log.h"
#include "src/mem/hotness.h"
#include "src/mem/page_table.h"
#include "src/mem/physical_memory.h"
#include "src/sim/clock.h"
#include "src/workload/os_process.h"

namespace javmm {
namespace {

// ---- PageBitmap::SetRange. ----

TEST(SetRangeTest, MatchesPerBitLoopAcrossWordBoundaries) {
  // Every (begin, length) shape around the 64-bit word seams.
  for (int64_t begin : {0, 1, 62, 63, 64, 65, 127, 128, 190}) {
    for (int64_t len : {1, 2, 63, 64, 65, 128, 130}) {
      const int64_t size = 320;
      if (begin + len > size) {
        continue;
      }
      PageBitmap batched(size);
      PageBitmap looped(size);
      batched.SetRange(begin, begin + len);
      for (int64_t i = begin; i < begin + len; ++i) {
        looped.Set(i);
      }
      std::vector<int64_t> got;
      std::vector<int64_t> want;
      batched.CollectSetBits(&got);
      looped.CollectSetBits(&want);
      EXPECT_EQ(got, want) << "begin=" << begin << " len=" << len;
    }
  }
}

TEST(SetRangeTest, EmptyRangeIsANoOp) {
  PageBitmap bm(64);
  bm.SetRange(10, 10);
  EXPECT_EQ(bm.Count(), 0);
}

TEST(SetRangeTest, OrsIntoExistingBits) {
  PageBitmap bm(200);
  bm.Set(5);
  bm.Set(199);
  bm.SetRange(60, 70);
  EXPECT_EQ(bm.Count(), 12);
  EXPECT_TRUE(bm.Test(5));
  EXPECT_TRUE(bm.Test(60));
  EXPECT_TRUE(bm.Test(69));
  EXPECT_FALSE(bm.Test(70));
}

// ---- PageTable::LookupRun. ----

TEST(LookupRunTest, ContiguousMappingsCoalesceToOneExtent) {
  PageTable pt;
  for (Vpn v = 100; v < 116; ++v) {
    pt.Map(v, static_cast<Pfn>(v - 100 + 40));
  }
  EXPECT_EQ(pt.extent_count(), 1);
  int64_t run = 0;
  EXPECT_EQ(pt.LookupRun(100, 1000, &run), 40);
  EXPECT_EQ(run, 16);
  // Mid-extent probe: the run is the extent's tail from that offset.
  EXPECT_EQ(pt.LookupRun(110, 1000, &run), 50);
  EXPECT_EQ(run, 6);
}

TEST(LookupRunTest, MaxPagesClampsTheRun) {
  PageTable pt;
  for (Vpn v = 0; v < 32; ++v) {
    pt.Map(v, static_cast<Pfn>(v));
  }
  int64_t run = 0;
  EXPECT_EQ(pt.LookupRun(4, 8, &run), 4);
  EXPECT_EQ(run, 8);
}

TEST(LookupRunTest, UnmappedVpnReturnsInvalidAndZeroRun) {
  PageTable pt;
  pt.Map(5, 9);
  int64_t run = 7;
  EXPECT_EQ(pt.LookupRun(6, 4, &run), kInvalidPfn);
  EXPECT_EQ(run, 0);
  EXPECT_EQ(pt.LookupRun(0, 4, &run), kInvalidPfn);
  EXPECT_EQ(run, 0);
}

TEST(LookupRunTest, UnmapSplitsAnExtent) {
  PageTable pt;
  for (Vpn v = 0; v < 10; ++v) {
    pt.Map(v, static_cast<Pfn>(v + 20));
  }
  pt.Unmap(4);
  EXPECT_EQ(pt.extent_count(), 2);
  int64_t run = 0;
  EXPECT_EQ(pt.LookupRun(0, 100, &run), 20);
  EXPECT_EQ(run, 4);  // Stops at the hole.
  EXPECT_EQ(pt.LookupRun(5, 100, &run), 25);
  EXPECT_EQ(run, 5);
  EXPECT_EQ(pt.LookupRun(4, 100, &run), kInvalidPfn);
}

TEST(LookupRunTest, DiscontiguousPfnsDoNotCoalesce) {
  PageTable pt;
  pt.Map(0, 10);
  pt.Map(1, 12);  // PFN gap: adjacent VPNs, non-adjacent frames.
  EXPECT_EQ(pt.extent_count(), 2);
  int64_t run = 0;
  EXPECT_EQ(pt.LookupRun(0, 100, &run), 10);
  EXPECT_EQ(run, 1);
}

TEST(LookupRunTest, LookupAndWalkAgreeWithRunView) {
  PageTable pt;
  Rng rng(7);
  for (Vpn v = 0; v < 200; ++v) {
    if (rng.NextDouble() < 0.7) {
      pt.Map(v, static_cast<Pfn>(rng.NextBounded(500)));
    }
  }
  for (Vpn v = 0; v < 200; ++v) {
    int64_t run = 0;
    const Pfn first = pt.LookupRun(v, 200, &run);
    EXPECT_EQ(first, pt.Lookup(v));
    for (int64_t i = 0; i < run; ++i) {
      EXPECT_EQ(pt.Lookup(v + static_cast<Vpn>(i)), first + i);
    }
  }
}

// ---- Twin-substrate equivalence harness. ----

// One guest memory with the full observer complement attached. The hotness
// tracker uses min_rate=1 so every touched page scores, making the score
// vector a sensitive detector of any lost or duplicated per-page callback.
struct Substrate {
  GuestPhysicalMemory memory;
  AddressSpace space;
  DirtyLog log;
  HotnessTracker hotness;
  VaRange heap{};

  explicit Substrate(int64_t heap_pages)
      : memory(64 * kMiB),
        space(&memory),
        log(memory.frame_count()),
        hotness(memory.frame_count(), HotCfg()) {
    memory.AttachDirtyLog(&log);
    memory.AttachWriteObserver(&hotness);
    heap = space.ReserveVa(heap_pages * kPageSize);
    CHECK(space.CommitRange(heap.begin, heap.bytes()));
  }

  static HotnessConfig HotCfg() {
    HotnessConfig config;
    config.enabled = true;
    config.min_rate = 1;
    return config;
  }

  VirtAddr PageVa(int64_t page) const {
    return heap.begin + static_cast<uint64_t>(page) * static_cast<uint64_t>(kPageSize);
  }

  // Breaks VPN->PFN contiguity the same deterministic way on both twins:
  // decommit-and-recommit a middle stripe (recycled frames arrive in a
  // different order) and remap scattered single pages.
  void Fragment(int64_t heap_pages) {
    const int64_t stripe = heap_pages / 4;
    space.DecommitRange(PageVa(stripe), stripe * kPageSize);
    CHECK(space.CommitRange(PageVa(stripe), stripe * kPageSize));
    for (int64_t page = 2; page < heap_pages; page += 17) {
      CHECK_NE(space.RemapPage(PageVa(page)), kInvalidPfn);
    }
  }
};

void ExpectSubstratesIdentical(Substrate& a, Substrate& b) {
  EXPECT_EQ(a.memory.versions(), b.memory.versions());
  EXPECT_EQ(a.memory.allocation_map(), b.memory.allocation_map());
  EXPECT_EQ(a.memory.total_writes(), b.memory.total_writes());
  EXPECT_EQ(a.log.total_marks(), b.log.total_marks());
  std::vector<Pfn> dirty_a;
  std::vector<Pfn> dirty_b;
  a.log.CollectAndClear(&dirty_a);
  b.log.CollectAndClear(&dirty_b);
  EXPECT_EQ(dirty_a, dirty_b);
  a.hotness.EndRound();
  b.hotness.EndRound();
  for (Pfn pfn = 0; pfn < a.memory.frame_count(); ++pfn) {
    ASSERT_EQ(a.hotness.score(pfn), b.hotness.score(pfn)) << "pfn=" << pfn;
  }
}

TEST(RunWriteEquivalenceTest, ContiguousSpanMatchesPerPageLoop) {
  constexpr int64_t kHeapPages = 512;
  Substrate run(kHeapPages);
  Substrate loop(kHeapPages);
  run.space.WriteRange(run.PageVa(3), 100 * kPageSize);
  for (int64_t page = 3; page < 103; ++page) {
    loop.space.Touch(loop.PageVa(page));
  }
  ExpectSubstratesIdentical(run, loop);
}

TEST(RunWriteEquivalenceTest, UnalignedSpanCoversEveryTouchedPage) {
  constexpr int64_t kHeapPages = 64;
  Substrate run(kHeapPages);
  Substrate loop(kHeapPages);
  // Starts mid-page, ends mid-page: pages 5..9 inclusive.
  run.space.WriteRange(run.PageVa(5) + 100, 4 * kPageSize + 5);
  for (int64_t page = 5; page <= 9; ++page) {
    loop.space.Touch(loop.PageVa(page));
  }
  ExpectSubstratesIdentical(run, loop);
}

TEST(RunWriteEquivalenceTest, FragmentedLayoutMatchesPerPageLoop) {
  constexpr int64_t kHeapPages = 512;
  Substrate run(kHeapPages);
  Substrate loop(kHeapPages);
  run.Fragment(kHeapPages);
  loop.Fragment(kHeapPages);
  // Spans deliberately cross the recommitted stripe's edges and the remap
  // scars, where PFN contiguity is broken and runs must chunk.
  run.space.WriteRange(run.PageVa(0), kHeapPages * kPageSize);
  for (int64_t page = 0; page < kHeapPages; ++page) {
    loop.space.Touch(loop.PageVa(page));
  }
  ExpectSubstratesIdentical(run, loop);
}

TEST(RunWriteEquivalenceTest, RandomizedSpansOverFragmentedLayout) {
  constexpr int64_t kHeapPages = 256;
  Substrate run(kHeapPages);
  Substrate loop(kHeapPages);
  run.Fragment(kHeapPages);
  loop.Fragment(kHeapPages);
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const int64_t first = static_cast<int64_t>(rng.NextBounded(kHeapPages));
    const int64_t pages = 1 + static_cast<int64_t>(rng.NextBounded(
                                  static_cast<uint64_t>(kHeapPages - first)));
    const int64_t offset = static_cast<int64_t>(rng.NextBounded(kPageSize));
    const int64_t bytes =
        std::max<int64_t>(1, pages * kPageSize - offset - static_cast<int64_t>(
                                                              rng.NextBounded(kPageSize)));
    run.space.WriteRange(run.PageVa(first) + static_cast<uint64_t>(offset), bytes);
    const int64_t last_page = first + (offset + bytes - 1) / kPageSize;
    for (int64_t page = first; page <= last_page; ++page) {
      loop.space.Touch(loop.PageVa(page));
    }
  }
  ExpectSubstratesIdentical(run, loop);
}

TEST(RunWriteEquivalenceTest, WriteRunObserverOrderIsAscendingPerPage) {
  // The run contract promises ascending per-page callbacks; an observer that
  // records the exact sequence must see 1:1 what single-page writes produce.
  struct Recorder : WriteObserver {
    std::vector<Pfn> seen;
    void OnGuestWrite(Pfn pfn) override { seen.push_back(pfn); }
  };
  GuestPhysicalMemory memory(kPageSize * 64);
  Recorder recorder;
  memory.AttachWriteObserver(&recorder);
  memory.WriteRun(10, 5);
  memory.Write(3);
  const std::vector<Pfn> want = {10, 11, 12, 13, 14, 3};
  EXPECT_EQ(recorder.seen, want);
}

// ---- Store-path counters. ----

TEST(StorePerfTest, RunWriteMetersOneLookupPerRun) {
  GuestPhysicalMemory memory(16 * kMiB);
  PerfCounters perf;
  memory.set_perf(&perf);
  AddressSpace space(&memory);
  const VaRange heap = space.ReserveVa(100 * kPageSize);
  CHECK(space.CommitRange(heap.begin, heap.bytes()));
  // Fresh commit: ascending frames coalesce, so the zeroing sweep is one run
  // of 100 pages and zero store-path table probes.
  EXPECT_EQ(perf.write_runs, 1);
  EXPECT_EQ(perf.pages_written, 100);
  EXPECT_EQ(perf.pte_lookups, 0);

  const PerfCounters after_commit = perf;
  space.WriteRange(heap.begin, 64 * kPageSize);
  EXPECT_EQ(perf.pte_lookups - after_commit.pte_lookups, 1);
  EXPECT_EQ(perf.write_runs - after_commit.write_runs, 1);
  EXPECT_EQ(perf.pages_written - after_commit.pages_written, 64);
  EXPECT_EQ(perf.pages_written + after_commit.pages_written > 0, true);

  const PerfCounters after_range = perf;
  space.Touch(heap.begin);
  EXPECT_EQ(perf.pte_lookups - after_range.pte_lookups, 1);
  EXPECT_EQ(perf.write_runs - after_range.write_runs, 1);
  EXPECT_EQ(perf.pages_written - after_range.pages_written, 1);
}

TEST(StorePerfTest, PagesWrittenTracksTotalWrites) {
  GuestPhysicalMemory memory(16 * kMiB);
  PerfCounters perf;
  memory.set_perf(&perf);
  AddressSpace space(&memory);
  const VaRange heap = space.ReserveVa(64 * kPageSize);
  CHECK(space.CommitRange(heap.begin, heap.bytes()));
  space.WriteRange(heap.begin, heap.bytes());
  space.Touch(heap.begin + 5 * kPageSize);
  EXPECT_EQ(perf.pages_written, memory.total_writes());
}

TEST(StorePerfTest, NullSinkIsSupported) {
  GuestPhysicalMemory memory(kPageSize * 8);
  AddressSpace space(&memory);
  const VaRange heap = space.ReserveVa(4 * kPageSize);
  CHECK(space.CommitRange(heap.begin, heap.bytes()));
  space.WriteRange(heap.begin, heap.bytes());  // Must not crash.
  EXPECT_EQ(memory.total_writes(), 8);         // 4 zeroing + 4 range.
}

// ---- CommitRange exhaustion rollback (state-neutrality). ----

TEST(CommitRollbackTest, FailedCommitLeavesAllocationOrderUntouched) {
  constexpr int64_t kFrames = 32;
  GuestPhysicalMemory attempted(kFrames * kPageSize);
  GuestPhysicalMemory pristine(kFrames * kPageSize);

  AddressSpace space_a(&attempted);
  AddressSpace space_p(&pristine);
  // Same prefix on both: commit, decommit a slice to shuffle the free list.
  for (AddressSpace* space : {&space_a, &space_p}) {
    const VaRange r = space->ReserveVa(16 * kPageSize);
    CHECK(space->CommitRange(r.begin, r.bytes()));
    space->DecommitRange(r.begin + 4 * kPageSize, 8 * kPageSize);
  }

  // Only the first substrate suffers a failed oversized commit.
  const VaRange big = space_a.ReserveVa(kFrames * kPageSize);
  EXPECT_FALSE(space_a.CommitRange(big.begin, big.bytes()));

  // From here on, both must hand out the exact same PFN sequence: the failed
  // attempt popped the whole free list and must have re-stacked it exactly.
  for (;;) {
    const Pfn a = attempted.AllocateFrame();
    const Pfn p = pristine.AllocateFrame();
    ASSERT_EQ(a, p);
    if (a == kInvalidPfn) {
      break;
    }
  }
}

// ---- OsBackgroundProcess hot_bytes == 0 regression. ----

TEST(OsProcessTest, ZeroHotBytesRunsWithoutDirtying) {
  SimClock clock;
  GuestPhysicalMemory memory(256 * kMiB);
  GuestKernel kernel(&memory, &clock);
  OsProcessConfig config;
  config.resident_bytes = 64 * kMiB;
  config.hot_bytes = 0;  // Previously fed Rng::NextBounded(0) and died.
  config.dirty_rate_bytes_per_sec = 4 * kMiB;
  OsBackgroundProcess os(&kernel, config, Rng(1));
  const int64_t writes_after_boot = memory.total_writes();
  clock.Advance(Duration::Seconds(10));
  EXPECT_EQ(memory.total_writes(), writes_after_boot);
}

}  // namespace
}  // namespace javmm
