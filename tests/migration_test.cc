// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Tests for the pre-copy migration engine in vanilla-Xen mode: convergence,
// stop conditions, within-iteration skip, correctness of destination state.

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/guest/guest_kernel.h"
#include "src/migration/engine.h"
#include "src/sim/clock.h"

namespace javmm {
namespace {

// A guest process that dirties `rate` bytes/s over a committed region, with a
// choice of access pattern.
class SyntheticDirtier : public Process {
 public:
  enum class Pattern { kUniform, kSequential };

  SyntheticDirtier(GuestKernel* kernel, int64_t region_bytes, int64_t rate_bytes_per_sec,
                   Pattern pattern, Rng rng)
      : kernel_(kernel),
        rate_(rate_bytes_per_sec),
        pattern_(pattern),
        rng_(rng),
        pid_(kernel->CreateProcess("dirtier")) {
    AddressSpace& space = kernel_->address_space(pid_);
    region_ = space.ReserveVa(region_bytes);
    CHECK(space.CommitRange(region_.begin, region_.bytes()));
    space.Write(region_.begin, region_.bytes());
    kernel_->clock().AddProcess(this);
  }
  ~SyntheticDirtier() override { kernel_->clock().RemoveProcess(this); }

  void RunFor(TimePoint start, Duration dt) override {
    (void)start;
    if (kernel_->vm_paused()) {
      return;
    }
    carry_ += static_cast<double>(rate_) * dt.ToSecondsF();
    AddressSpace& space = kernel_->address_space(pid_);
    const int64_t pages = PagesForBytes(region_.bytes());
    while (carry_ >= static_cast<double>(kPageSize)) {
      int64_t page;
      if (pattern_ == Pattern::kUniform) {
        page = static_cast<int64_t>(rng_.NextBounded(static_cast<uint64_t>(pages)));
      } else {
        page = cursor_++ % pages;
      }
      space.Touch(region_.begin + static_cast<uint64_t>(page * kPageSize));
      carry_ -= static_cast<double>(kPageSize);
    }
  }

  VaRange region() const { return region_; }
  AppId pid() const { return pid_; }

 private:
  GuestKernel* kernel_;
  int64_t rate_;
  Pattern pattern_;
  Rng rng_;
  AppId pid_;
  VaRange region_;
  double carry_ = 0;
  int64_t cursor_ = 0;
};

class MigrationTest : public ::testing::Test {
 protected:
  static constexpr int64_t kVmBytes = 64 * kMiB;

  MigrationTest() : memory_(kVmBytes), kernel_(&memory_, &clock_) {}

  MigrationConfig FastLink() {
    MigrationConfig config;
    config.link.bandwidth_bps = 1e9;
    return config;
  }

  SimClock clock_;
  GuestPhysicalMemory memory_;
  GuestKernel kernel_;
};

TEST_F(MigrationTest, IdleVmMigratesInOneishIterations) {
  MigrationEngine engine(&kernel_, FastLink());
  const MigrationResult result = engine.Migrate();
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.verification.ok);
  // Nothing dirties memory: iteration 1 sends everything, then stop-and-copy
  // with (almost) nothing.
  EXPECT_LE(result.iteration_count(), 2 + 1);
  EXPECT_EQ(result.pages_sent, memory_.frame_count());
  // Every frame is either audited or exempt because it is free at pause.
  EXPECT_EQ(result.verification.pages_checked + result.verification.pages_free_unverified,
            memory_.frame_count());
  EXPECT_EQ(result.verification.version_mismatches, 0);
}

TEST_F(MigrationTest, SlowDirtierConverges) {
  // 1 MiB/s against a ~119 MiB/s link: converges quickly to < 50 pages.
  SyntheticDirtier dirtier(&kernel_, 16 * kMiB, 1 * kMiB,
                           SyntheticDirtier::Pattern::kUniform, Rng(1));
  MigrationEngine engine(&kernel_, FastLink());
  const MigrationResult result = engine.Migrate();
  EXPECT_TRUE(result.verification.ok);
  EXPECT_LT(result.iteration_count(), 8);
  // Short downtime: the last iteration carried only a handful of pages.
  EXPECT_LT(result.downtime.Total().nanos(), Duration::Millis(400).nanos());
}

TEST_F(MigrationTest, FastDirtierHitsIterationOrVolumeCap) {
  // Dirty faster than the link: pre-copy cannot converge.
  MigrationConfig config = FastLink();
  config.link.bandwidth_bps = 1e8;  // ~12 MiB/s goodput.
  SyntheticDirtier dirtier(&kernel_, 32 * kMiB, 64 * kMiB,
                           SyntheticDirtier::Pattern::kSequential, Rng(2));
  MigrationEngine engine(&kernel_, config);
  const MigrationResult result = engine.Migrate();
  EXPECT_TRUE(result.verification.ok);
  // Stopped by max-iterations or the 3x volume cap, not by convergence.
  const bool by_iters = result.iteration_count() >= config.max_iterations;
  const bool by_volume = result.pages_sent >
                         static_cast<int64_t>(config.max_sent_factor *
                                              static_cast<double>(memory_.frame_count()));
  EXPECT_TRUE(by_iters || by_volume);
  // And the forced last iteration carried a substantial payload => downtime.
  EXPECT_GT(result.downtime.last_iter_transfer.nanos(), Duration::Millis(100).nanos());
}

TEST_F(MigrationTest, WithinIterationRedirtySkip) {
  // A sequential dirtier re-touches pages during the long first iteration;
  // those must be counted as skipped-already-dirtied, not resent.
  SyntheticDirtier dirtier(&kernel_, 32 * kMiB, 24 * kMiB,
                           SyntheticDirtier::Pattern::kSequential, Rng(3));
  MigrationConfig config = FastLink();
  config.link.bandwidth_bps = 2e8;  // Slow link stretches iteration 1.
  MigrationEngine engine(&kernel_, config);
  const MigrationResult result = engine.Migrate();
  EXPECT_TRUE(result.verification.ok);
  EXPECT_GT(result.pages_skipped_dirty, 0);
  // Vanilla mode never uses the transfer bitmap.
  EXPECT_EQ(result.pages_skipped_bitmap, 0);
}

TEST_F(MigrationTest, DestinationMatchesPauseState) {
  SyntheticDirtier dirtier(&kernel_, 16 * kMiB, 8 * kMiB,
                           SyntheticDirtier::Pattern::kUniform, Rng(4));
  MigrationEngine engine(&kernel_, FastLink());
  const MigrationResult result = engine.Migrate();
  ASSERT_TRUE(result.verification.ok);
  EXPECT_EQ(result.verification.pages_checked + result.verification.pages_free_unverified,
            memory_.frame_count());
  EXPECT_EQ(result.verification.pages_skipped_garbage, 0);
}

TEST_F(MigrationTest, TrafficAccountingIsConsistent) {
  SyntheticDirtier dirtier(&kernel_, 16 * kMiB, 4 * kMiB,
                           SyntheticDirtier::Pattern::kUniform, Rng(5));
  MigrationEngine engine(&kernel_, FastLink());
  const MigrationResult result = engine.Migrate();
  int64_t sent_from_iters = 0;
  int64_t wire_from_iters = 0;
  for (const auto& it : result.iterations) {
    sent_from_iters += it.pages_sent;
    wire_from_iters += it.wire_bytes;
  }
  EXPECT_EQ(sent_from_iters, result.pages_sent);
  // Total wire bytes = page payloads + per-iteration control bytes.
  EXPECT_GE(result.total_wire_bytes, wire_from_iters);
  EXPECT_LE(result.total_wire_bytes, wire_from_iters + 1024 * result.iteration_count());
  // At gigabit goodput, transfer of N pages takes N*pagewire/goodput seconds.
  EXPECT_GT(result.total_time.nanos(), 0);
}

TEST_F(MigrationTest, IterationDurationsMatchWireTime) {
  MigrationConfig config = FastLink();
  MigrationEngine engine(&kernel_, config);
  const MigrationResult result = engine.Migrate();
  const auto& first = result.iterations.front();
  const double goodput = config.link.GoodputBytesPerSec();
  const double expected_secs = static_cast<double>(first.wire_bytes) / goodput;
  EXPECT_NEAR(first.duration.ToSecondsF(), expected_secs, expected_secs * 0.05 + 0.001);
}

TEST_F(MigrationTest, DowntimeIncludesResumption) {
  MigrationEngine engine(&kernel_, FastLink());
  const MigrationResult result = engine.Migrate();
  EXPECT_EQ(result.downtime.resumption.nanos(), Duration::Millis(170).nanos());
  EXPECT_GE(result.downtime.Total().nanos(), result.downtime.resumption.nanos());
}

TEST_F(MigrationTest, VmPausedDuringStopAndCopyOnly) {
  MigrationEngine engine(&kernel_, FastLink());
  EXPECT_FALSE(kernel_.vm_paused());
  const MigrationResult result = engine.Migrate();
  EXPECT_FALSE(kernel_.vm_paused());  // Resumed at the end.
  EXPECT_GT(result.paused_at.nanos(), result.started_at.nanos());
  EXPECT_GT(result.resumed_at.nanos(), result.paused_at.nanos());
}

TEST_F(MigrationTest, CompressionReducesWireBytes) {
  SyntheticDirtier dirtier(&kernel_, 16 * kMiB, 8 * kMiB,
                           SyntheticDirtier::Pattern::kUniform, Rng(6));
  MigrationConfig plain = FastLink();
  MigrationConfig compressed = FastLink();
  compressed.compress_pages = true;
  compressed.compression_ratio = 0.5;
  const MigrationResult r1 = MigrationEngine(&kernel_, plain).Migrate();
  const MigrationResult r2 = MigrationEngine(&kernel_, compressed).Migrate();
  ASSERT_TRUE(r1.verification.ok);
  ASSERT_TRUE(r2.verification.ok);
  EXPECT_LT(r2.total_wire_bytes, r1.total_wire_bytes);
  EXPECT_GT(r2.cpu_time.nanos(), r1.cpu_time.nanos());  // CPU-for-bandwidth.
}

TEST_F(MigrationTest, BackToBackMigrations) {
  SyntheticDirtier dirtier(&kernel_, 8 * kMiB, 2 * kMiB,
                           SyntheticDirtier::Pattern::kUniform, Rng(7));
  MigrationEngine engine(&kernel_, FastLink());
  for (int round = 0; round < 3; ++round) {
    const MigrationResult result = engine.Migrate();
    EXPECT_TRUE(result.verification.ok) << "round " << round;
    clock_.Advance(Duration::Seconds(1));
  }
}

}  // namespace
}  // namespace javmm
