// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Tests for the §6 compression extensions: per-page compression classes (the
// multi-bit transfer map), delta retransmission, and engine accounting.

#include <gtest/gtest.h>

#include "src/core/migration_lab.h"
#include "src/workload/cache_application.h"

namespace javmm {
namespace {

LabConfig SmallLab(uint64_t seed = 1) {
  LabConfig config;
  config.vm_bytes = 512 * kMiB;
  config.seed = seed;
  config.os.resident_bytes = 64 * kMiB;
  config.os.hot_bytes = 8 * kMiB;
  return config;
}

WorkloadSpec SmallDerby() {
  WorkloadSpec spec = Workloads::Get("derby");
  spec.alloc_rate_bytes_per_sec = 100 * kMiB;
  spec.old_baseline_bytes = 48 * kMiB;
  spec.heap.young_max_bytes = 192 * kMiB;
  spec.heap.old_max_bytes = 128 * kMiB;
  return spec;
}

TEST(CompressionClassTest, LkmAnnotationStoresPerPfnClasses) {
  SimClock clock;
  GuestPhysicalMemory memory(256 * kPageSize);
  GuestKernel kernel(&memory, &clock);
  Lkm& lkm = kernel.LoadLkm(LkmConfig{});
  const AppId pid = kernel.CreateProcess("app");
  AddressSpace& space = kernel.address_space(pid);
  const VaRange region = space.ReserveVa(8 * kPageSize);
  ASSERT_TRUE(space.CommitRange(region.begin, region.bytes()));

  const Pfn first = space.page_table().Lookup(VpnOf(region.begin));
  EXPECT_EQ(lkm.compression_class(first), CompressionClass::kNormal);  // Default.

  lkm.AnnotateCompression(pid, region, CompressionClass::kHighlyCompressible);
  EXPECT_EQ(lkm.compression_class(first), CompressionClass::kHighlyCompressible);

  // Partial re-annotation only touches the interior pages of the range.
  const VaRange tail{region.begin + 4 * static_cast<uint64_t>(kPageSize), region.end};
  lkm.AnnotateCompression(pid, tail, CompressionClass::kIncompressible);
  EXPECT_EQ(lkm.compression_class(first), CompressionClass::kHighlyCompressible);
  const Pfn fifth = space.page_table().Lookup(VpnOf(tail.begin));
  EXPECT_EQ(lkm.compression_class(fifth), CompressionClass::kIncompressible);
}

TEST(CompressionClassTest, UnmappedPagesIgnoredByAnnotation) {
  SimClock clock;
  GuestPhysicalMemory memory(256 * kPageSize);
  GuestKernel kernel(&memory, &clock);
  Lkm& lkm = kernel.LoadLkm(LkmConfig{});
  const AppId pid = kernel.CreateProcess("app");
  AddressSpace& space = kernel.address_space(pid);
  const VaRange reserved = space.ReserveVa(4 * kPageSize);
  // Nothing committed: annotation must be a harmless no-op.
  lkm.AnnotateCompression(pid, reserved, CompressionClass::kIncompressible);
  EXPECT_EQ(lkm.protocol_violations(), 0);
}

TEST(CompressionTest, UniformCompressionShrinksTrafficAddsCpu) {
  MigrationResult plain;
  MigrationResult compressed;
  for (const bool compress : {false, true}) {
    LabConfig config = SmallLab(3);
    config.migration.application_assisted = true;
    config.migration.compress_pages = compress;
    MigrationLab lab(SmallDerby(), config);
    lab.Run(Duration::Seconds(20));
    (compress ? compressed : plain) = lab.Migrate();
  }
  ASSERT_TRUE(plain.verification.ok);
  ASSERT_TRUE(compressed.verification.ok);
  EXPECT_LT(compressed.total_wire_bytes, plain.total_wire_bytes);
  EXPECT_GT(compressed.cpu_time.nanos(), plain.cpu_time.nanos());
  EXPECT_GT(compressed.pages_compressed, 0);
  EXPECT_EQ(plain.pages_compressed, 0);
  EXPECT_GT(plain.pages_sent_raw, 0);
}

TEST(CompressionTest, ClassHintsChangeAccounting) {
  // The JVM agent annotates the old generation as highly compressible; with
  // class-aware compression the assisted run should compress those pages at
  // the better ratio, shrinking traffic versus uniform compression.
  MigrationResult uniform;
  MigrationResult classed;
  for (const bool classes : {false, true}) {
    LabConfig config = SmallLab(4);
    config.migration.application_assisted = true;
    config.migration.compress_pages = true;
    config.migration.use_compression_classes = classes;
    MigrationLab lab(SmallDerby(), config);
    lab.Run(Duration::Seconds(20));
    (classes ? classed : uniform) = lab.Migrate();
  }
  ASSERT_TRUE(uniform.verification.ok);
  ASSERT_TRUE(classed.verification.ok);
  EXPECT_LT(classed.total_wire_bytes, uniform.total_wire_bytes);
}

TEST(CompressionTest, VanillaEngineIgnoresGuestHints) {
  // Application-agnostic by design: vanilla Xen never reads the LKM, so
  // class-aware and uniform compression behave identically.
  MigrationResult uniform;
  MigrationResult classed;
  for (const bool classes : {false, true}) {
    LabConfig config = SmallLab(5);
    config.migration.application_assisted = false;
    config.migration.compress_pages = true;
    config.migration.use_compression_classes = classes;
    MigrationLab lab(SmallDerby(), config);
    lab.Run(Duration::Seconds(20));
    (classes ? classed : uniform) = lab.Migrate();
  }
  EXPECT_EQ(classed.total_wire_bytes, uniform.total_wire_bytes);
  EXPECT_EQ(classed.pages_compressed, uniform.pages_compressed);
}

TEST(CompressionTest, DeltaAppliesOnlyToRetransmissions) {
  LabConfig config = SmallLab(6);
  config.migration.application_assisted = false;
  config.migration.delta_compression = true;
  MigrationLab lab(SmallDerby(), config);
  lab.Run(Duration::Seconds(20));
  const MigrationResult result = lab.Migrate();
  ASSERT_TRUE(result.verification.ok);
  EXPECT_GT(result.pages_sent_delta, 0);
  // First-touch pages went raw; iteration 1 alone is all first-touch.
  EXPECT_GE(result.pages_sent_raw, lab.guest().memory().frame_count());
  EXPECT_EQ(result.pages_sent_delta + result.pages_sent_raw + result.pages_compressed,
            result.pages_sent);
}

TEST(CompressionTest, DeltaReducesVanillaTraffic) {
  MigrationResult plain;
  MigrationResult delta;
  for (const bool use_delta : {false, true}) {
    LabConfig config = SmallLab(7);
    config.migration.delta_compression = use_delta;
    MigrationLab lab(SmallDerby(), config);
    lab.Run(Duration::Seconds(20));
    (use_delta ? delta : plain) = lab.Migrate();
  }
  ASSERT_TRUE(delta.verification.ok);
  EXPECT_LT(delta.total_wire_bytes, plain.total_wire_bytes);
}

TEST(CompressionTest, CacheAnnotationAvoidsWastedCompression) {
  // A cache app marks its retained entries incompressible; with class-aware
  // compression those pages ship raw (counted in pages_sent_raw).
  SimClock clock;
  GuestPhysicalMemory memory(256 * kMiB);
  GuestKernel kernel(&memory, &clock);
  kernel.LoadLkm(LkmConfig{});
  CacheAppConfig cache_config;
  cache_config.cache_bytes = 64 * kMiB;
  CacheApplication cache(&kernel, cache_config, Rng(8));
  clock.Advance(Duration::Seconds(5));

  MigrationConfig mig;
  mig.application_assisted = true;
  mig.compress_pages = true;
  mig.use_compression_classes = true;
  MigrationEngine engine(&kernel, mig);
  const MigrationResult result = engine.Migrate();
  ASSERT_TRUE(result.verification.ok);
  // At least the retained half of the cache (32 MiB) went raw.
  EXPECT_GT(result.pages_sent_raw, PagesForBytes(24 * kMiB));
}

}  // namespace
}  // namespace javmm
