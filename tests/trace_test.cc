// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Tests for the migration trace + invariant-audit subsystem (src/trace/):
// the TraceAuditor's accounting identities across every engine and outcome,
// regression coverage for the link-meter / daemon-binding / fallback-hint
// fixes, and the JSON-lines exporter.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/core/migration_lab.h"
#include "src/faults/faults.h"
#include "src/migration/baselines.h"
#include "src/migration/engine.h"
#include "src/trace/auditor.h"
#include "src/workload/cache_application.h"

namespace javmm {
namespace {

LabConfig SmallLab(bool assisted, uint64_t seed = 1) {
  LabConfig config;
  config.vm_bytes = 512 * kMiB;
  config.seed = seed;
  config.os.resident_bytes = 64 * kMiB;
  config.os.hot_bytes = 8 * kMiB;
  config.migration.application_assisted = assisted;
  return config;
}

WorkloadSpec SmallDerby() {
  WorkloadSpec spec = Workloads::Get("derby");
  spec.alloc_rate_bytes_per_sec = 120 * kMiB;
  spec.old_baseline_bytes = 32 * kMiB;
  spec.heap.young_max_bytes = 256 * kMiB;
  spec.heap.young_initial_bytes = 32 * kMiB;
  spec.heap.old_max_bytes = 128 * kMiB;
  return spec;
}

int64_t SumBurstPages(const TraceRecorder& trace) {
  int64_t pages = 0;
  for (const TraceEvent& event : trace.events()) {
    if (event.kind == TraceEventKind::kBurst) {
      pages += event.pages;
    }
  }
  return pages;
}

// ---- Direct-engine tests (bare kernel, no workload). ----

class TraceEngineTest : public ::testing::Test {
 protected:
  TraceEngineTest() : memory_(64 * kMiB), kernel_(&memory_, &clock_) {}

  SimClock clock_;
  GuestPhysicalMemory memory_;
  GuestKernel kernel_;
};

// Regression for the FlushBurst metering bug: page bursts used to be recorded
// via RecordControlBytes, so the link's page meter stayed at zero and the
// burst events could never reconcile against it.
TEST_F(TraceEngineTest, LinkPageMeterMatchesBurstEvents) {
  MigrationEngine engine(&kernel_, MigrationConfig{});
  const MigrationResult result = engine.Migrate();
  ASSERT_TRUE(result.completed);
  ASSERT_TRUE(result.trace_audit.ran);
  EXPECT_TRUE(result.trace_audit.ok) << result.trace_audit.ToString();
  EXPECT_GT(result.pages_sent, 0);
  EXPECT_EQ(SumBurstPages(engine.trace()), result.pages_sent);
}

TEST_F(TraceEngineTest, RepeatedMigrateOnOneEngineAuditsCleanly) {
  MigrationEngine engine(&kernel_, MigrationConfig{});
  const MigrationResult first = engine.Migrate();
  ASSERT_TRUE(first.trace_audit.ran);
  EXPECT_TRUE(first.trace_audit.ok) << first.trace_audit.ToString();
  const MigrationResult second = engine.Migrate();
  ASSERT_TRUE(second.trace_audit.ran);
  EXPECT_TRUE(second.trace_audit.ok) << second.trace_audit.ToString();
  // The trace is per-run: exactly one start marker survives from run two.
  EXPECT_EQ(engine.trace().CountOf(TraceEventKind::kMigrationStart), 1);
  EXPECT_EQ(engine.trace().CountOf(TraceEventKind::kComplete), 1);
}

TEST_F(TraceEngineTest, RecordTraceOffSkipsRecordingAndAudit) {
  MigrationConfig config;
  config.record_trace = false;
  MigrationEngine engine(&kernel_, config);
  const MigrationResult result = engine.Migrate();
  EXPECT_TRUE(result.completed);
  EXPECT_FALSE(result.trace_audit.ran);
  EXPECT_TRUE(engine.trace().events().empty());
}

TEST_F(TraceEngineTest, JsonExportWritesOneLinePerEvent) {
  MigrationEngine engine(&kernel_, MigrationConfig{});
  engine.Migrate();
  std::ostringstream os;
  engine.trace().ExportJsonLines(os);
  const std::string out = os.str();
  int64_t lines = 0;
  for (char c : out) {
    if (c == '\n') {
      ++lines;
    }
  }
  EXPECT_EQ(lines, static_cast<int64_t>(engine.trace().events().size()));
  EXPECT_NE(out.find("\"event\":\"migration_start\""), std::string::npos);
  EXPECT_NE(out.find("\"event\":\"burst\""), std::string::npos);
  EXPECT_NE(out.find("\"event\":\"complete\""), std::string::npos);
}

// ---- Auditor unit tests: deliberately corrupted traces must be flagged. ----

class TraceAuditorTest : public TraceEngineTest {
 protected:
  // Runs a clean migration and returns (trace copy, result).
  void RunClean() {
    MigrationEngine engine(&kernel_, MigrationConfig{});
    result_ = engine.Migrate();
    trace_ = engine.trace();
    ASSERT_TRUE(result_.trace_audit.ok) << result_.trace_audit.ToString();
  }

  TraceAuditReport Reaudit(const TraceRecorder& trace) {
    // The engine's meters equal the result aggregates on a clean run, so the
    // result can stand in for the link meters here.
    return TraceAuditor::Audit(AuditMode::kPrecopy, trace, result_,
                               result_.total_wire_bytes, result_.pages_sent);
  }

  TraceRecorder trace_;
  MigrationResult result_;
};

TEST_F(TraceAuditorTest, CleanTraceReauditsOk) {
  RunClean();
  const TraceAuditReport report = Reaudit(trace_);
  EXPECT_TRUE(report.ok) << report.ToString();
}

TEST_F(TraceAuditorTest, DetectsTamperedBurstPages) {
  RunClean();
  TraceRecorder corrupted;
  bool tampered = false;
  for (TraceEvent event : trace_.events()) {
    if (!tampered && event.kind == TraceEventKind::kBurst && event.pages > 0) {
      ++event.pages;  // One page sent but never metered.
      tampered = true;
    }
    corrupted.Record(event);
  }
  ASSERT_TRUE(tampered);
  const TraceAuditReport report = Reaudit(corrupted);
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.violations.empty());
}

TEST_F(TraceAuditorTest, DetectsMissingCompleteEvent) {
  RunClean();
  TraceRecorder corrupted;
  for (const TraceEvent& event : trace_.events()) {
    if (event.kind != TraceEventKind::kComplete) {
      corrupted.Record(event);
    }
  }
  const TraceAuditReport report = Reaudit(corrupted);
  EXPECT_FALSE(report.ok);
}

TEST_F(TraceAuditorTest, DetectsUnmatchedIterationEnd) {
  RunClean();
  TraceRecorder corrupted;
  for (const TraceEvent& event : trace_.events()) {
    if (event.kind != TraceEventKind::kIterationBegin) {
      corrupted.Record(event);
    }
  }
  const TraceAuditReport report = Reaudit(corrupted);
  EXPECT_FALSE(report.ok);
}

TEST_F(TraceAuditorTest, DetectsForgedProtocolTraffic) {
  RunClean();  // Vanilla run: any daemon<->LKM message is a violation.
  TraceRecorder corrupted = trace_;
  corrupted.Record(TraceEvent{TraceEventKind::kLkmToDaemon, result_.resumed_at, 0, 0, 0, 0, 0,
                              Duration::Zero()});
  const TraceAuditReport report = Reaudit(corrupted);
  EXPECT_FALSE(report.ok);
}

// ---- Fault-recovery audit: corrupted retry traces must be rejected. ----

class FaultAuditorTest : public TraceEngineTest {
 protected:
  // Runs a migration under `spec` and keeps the trace, result and config for
  // re-auditing with the full fault-aware inputs.
  void RunFaulty(const std::string& spec) {
    config_ = MigrationConfig{};
    config_.faults = FaultPlan::MustParse(spec);
    config_.fault_seed = 17;
    MigrationEngine engine(&kernel_, config_);
    result_ = engine.Migrate();
    trace_ = engine.trace();
    ASSERT_TRUE(result_.trace_audit.ran);
    ASSERT_TRUE(result_.trace_audit.ok) << result_.trace_audit.ToString();
  }

  TraceAuditReport Reaudit(const TraceRecorder& trace) {
    // On a clean run the result aggregates equal the link meters, so they
    // stand in here -- including the separate retry-bytes meter.
    AuditInputs inputs;
    inputs.link_wire_bytes = result_.total_wire_bytes;
    inputs.link_pages_sent = result_.pages_sent;
    inputs.link_retry_bytes = result_.retry_wire_bytes;
    inputs.control_bytes_per_iteration = config_.control_bytes_per_iteration;
    inputs.retry_backoff_base = config_.retry_backoff_base;
    inputs.retry_backoff_cap = config_.retry_backoff_cap;
    return TraceAuditor::Audit(AuditMode::kPrecopy, trace, result_, inputs);
  }

  // Copies the trace with the first event of `kind` rewritten by `tamper`.
  TraceRecorder TamperFirst(TraceEventKind kind, void (*tamper)(TraceEvent*)) {
    TraceRecorder corrupted;
    bool tampered = false;
    for (TraceEvent event : trace_.events()) {
      if (!tampered && event.kind == kind) {
        tamper(&event);
        tampered = true;
      }
      corrupted.Record(event);
    }
    EXPECT_TRUE(tampered);
    return corrupted;
  }

  MigrationConfig config_;
  TraceRecorder trace_;
  MigrationResult result_;
};

TEST_F(FaultAuditorTest, FaultyTraceReauditsOk) {
  RunFaulty("out:5ms-20ms");
  ASSERT_GE(result_.burst_faults, 1);
  const TraceAuditReport report = Reaudit(trace_);
  EXPECT_TRUE(report.ok) << report.ToString();
}

TEST_F(FaultAuditorTest, DetectsTamperedBackoffNominal) {
  RunFaulty("out:5ms-20ms");
  const TraceRecorder corrupted = TamperFirst(
      TraceEventKind::kRetryBackoff, [](TraceEvent* event) { ++event->pages; });
  const TraceAuditReport report = Reaudit(corrupted);
  EXPECT_FALSE(report.ok);  // Nominal wait no longer matches NominalBackoff.
}

TEST_F(FaultAuditorTest, DetectsTamperedBackoffAttempt) {
  RunFaulty("out:5ms-20ms");
  const TraceRecorder corrupted = TamperFirst(
      TraceEventKind::kRetryBackoff, [](TraceEvent* event) { event->detail = 0; });
  const TraceAuditReport report = Reaudit(corrupted);
  EXPECT_FALSE(report.ok);  // Attempts are 1-based.
}

TEST_F(FaultAuditorTest, DetectsTamperedTransferFaultWaste) {
  RunFaulty("out:5ms-20ms");
  const TraceRecorder corrupted = TamperFirst(
      TraceEventKind::kTransferFault, [](TraceEvent* event) { ++event->wire_bytes; });
  const TraceAuditReport report = Reaudit(corrupted);
  EXPECT_FALSE(report.ok);  // Retry-byte sum no longer matches the meter.
}

TEST_F(FaultAuditorTest, DetectsForgedDegradeEvent) {
  RunFaulty("out:5ms-20ms");
  ASSERT_FALSE(result_.degraded);
  TraceRecorder corrupted = trace_;
  corrupted.Record(TraceEvent{TraceEventKind::kDegrade, result_.resumed_at, 0,
                              static_cast<int32_t>(DegradeReason::kBurstRetries), 0, 0, 0,
                              Duration::Zero()});
  const TraceAuditReport report = Reaudit(corrupted);
  EXPECT_FALSE(report.ok);
}

TEST_F(FaultAuditorTest, DetectsDroppedControlLossEvents) {
  RunFaulty("loss:1.0");  // Degrades: 6 losses, 5 backoffs, one kDegrade.
  ASSERT_TRUE(result_.degraded);
  ASSERT_GT(result_.control_losses, 0);
  TraceRecorder corrupted;
  bool dropped = false;
  for (const TraceEvent& event : trace_.events()) {
    if (!dropped && event.kind == TraceEventKind::kControlLost) {
      dropped = true;
      continue;
    }
    corrupted.Record(event);
  }
  ASSERT_TRUE(dropped);
  const TraceAuditReport report = Reaudit(corrupted);
  EXPECT_FALSE(report.ok);
}

TEST_F(FaultAuditorTest, DetectsDroppedDegradeEvent) {
  RunFaulty("loss:1.0");
  ASSERT_TRUE(result_.degraded);
  TraceRecorder corrupted;
  for (const TraceEvent& event : trace_.events()) {
    if (event.kind != TraceEventKind::kDegrade) {
      corrupted.Record(event);
    }
  }
  const TraceAuditReport report = Reaudit(corrupted);
  EXPECT_FALSE(report.ok);
}

// ---- Baseline fault-audit: the post-copy / stop-and-copy identities. ----

struct PostcopyRun {
  PostcopyResult result;
  TraceRecorder trace;
  MigrationConfig config;
};

// Runs a faulted post-copy migration on a small lab and keeps everything
// needed to re-audit the trace with the full fault-aware inputs.
PostcopyRun RunFaultyPostcopy(const std::string& spec) {
  LabConfig lab_config = SmallLab(/*assisted=*/false, 31);
  lab_config.migration.faults = FaultPlan::MustParse(spec);
  MigrationLab lab(SmallDerby(), lab_config);
  lab.Run(Duration::Seconds(10));
  PostcopyEngine::Config config;
  config.base = lab.config().migration;
  PostcopyEngine engine(&lab.guest(), config);
  PostcopyRun run;
  run.result = engine.Migrate();
  run.trace = engine.trace();
  run.config = config.base;
  return run;
}

TraceAuditReport ReauditPostcopy(const PostcopyRun& run, const TraceRecorder& trace) {
  // Clean-run aggregates stand in for the link meters, as in FaultAuditorTest.
  AuditInputs inputs;
  inputs.link_wire_bytes = run.result.common.total_wire_bytes;
  inputs.link_pages_sent = run.result.common.pages_sent;
  inputs.link_retry_bytes = run.result.common.retry_wire_bytes;
  inputs.control_bytes_per_iteration = run.config.control_bytes_per_iteration;
  inputs.retry_backoff_base = run.config.retry_backoff_base;
  inputs.retry_backoff_cap = run.config.retry_backoff_cap;
  inputs.expected_demand_faults = run.result.demand_faults;
  inputs.expected_fault_stall_ns = run.result.fault_stall.nanos();
  return TraceAuditor::Audit(AuditMode::kPostcopy, trace, run.result.common, inputs);
}

constexpr char kPostcopyFaultSpec[] = "lat:0s-30s+2ms;loss:0.1;out:1s-1200ms";

TEST(PostcopyAuditTest, FaultyTraceReauditsOk) {
  const PostcopyRun run = RunFaultyPostcopy(kPostcopyFaultSpec);
  ASSERT_TRUE(run.result.common.trace_audit.ok) << run.result.common.trace_audit.ToString();
  ASSERT_GT(run.result.demand_faults, 0);
  ASSERT_GT(run.result.common.control_losses, 0);
  const TraceAuditReport report = ReauditPostcopy(run, run.trace);
  EXPECT_TRUE(report.ok) << report.ToString();
}

TEST(PostcopyAuditTest, DetectsTamperedDemandFaultStall) {
  const PostcopyRun run = RunFaultyPostcopy(kPostcopyFaultSpec);
  // Inflate the stall recorded on the first demand-fault burst (detail == 1);
  // the per-event stall sum no longer matches the result's fault_stall.
  TraceRecorder corrupted;
  bool tampered = false;
  for (TraceEvent event : run.trace.events()) {
    if (!tampered && event.kind == TraceEventKind::kBurst && event.detail == 1) {
      event.cpu = event.cpu + Duration::Nanos(1);
      tampered = true;
    }
    corrupted.Record(event);
  }
  ASSERT_TRUE(tampered);
  const TraceAuditReport report = ReauditPostcopy(run, corrupted);
  EXPECT_FALSE(report.ok);
}

TEST(PostcopyAuditTest, DetectsDroppedDemandFaultBurst) {
  const PostcopyRun run = RunFaultyPostcopy(kPostcopyFaultSpec);
  TraceRecorder corrupted;
  bool dropped = false;
  for (const TraceEvent& event : run.trace.events()) {
    if (!dropped && event.kind == TraceEventKind::kBurst && event.detail == 1) {
      dropped = true;
      continue;
    }
    corrupted.Record(event);
  }
  ASSERT_TRUE(dropped);
  const TraceAuditReport report = ReauditPostcopy(run, corrupted);
  EXPECT_FALSE(report.ok);  // Demand-burst count != result.demand_faults.
}

TEST(StopAndCopyAuditTest, ForgedControlLossRejected) {
  // Stop-and-copy has no control channel: a kControlLost event in its trace
  // can only be a forgery and the mode-specific identity must flag it.
  LabConfig lab_config = SmallLab(/*assisted=*/false, 31);
  lab_config.migration.faults = FaultPlan::MustParse("out:1s-2s");
  MigrationLab lab(SmallDerby(), lab_config);
  lab.Run(Duration::Seconds(10));
  StopAndCopyEngine engine(&lab.guest(), lab.config().migration);
  const MigrationResult result = engine.Migrate();
  ASSERT_TRUE(result.trace_audit.ok) << result.trace_audit.ToString();
  ASSERT_GE(result.burst_faults, 1);

  AuditInputs inputs;
  inputs.link_wire_bytes = result.total_wire_bytes;
  inputs.link_pages_sent = result.pages_sent;
  inputs.link_retry_bytes = result.retry_wire_bytes;
  inputs.control_bytes_per_iteration = lab.config().migration.control_bytes_per_iteration;
  inputs.retry_backoff_base = lab.config().migration.retry_backoff_base;
  inputs.retry_backoff_cap = lab.config().migration.retry_backoff_cap;
  const TraceAuditReport clean =
      TraceAuditor::Audit(AuditMode::kStopAndCopy, engine.trace(), result, inputs);
  EXPECT_TRUE(clean.ok) << clean.ToString();

  TraceRecorder corrupted = engine.trace();
  corrupted.Record(TraceEvent{TraceEventKind::kControlLost, result.resumed_at, 0, 1, 0, 0, 0,
                              Duration::Zero()});
  const TraceAuditReport report =
      TraceAuditor::Audit(AuditMode::kStopAndCopy, corrupted, result, inputs);
  EXPECT_FALSE(report.ok);
}

// ---- Daemon-handler binding regression (scoped unbind on every exit). ----

TEST(TraceBindingTest, DaemonHandlerUnboundAfterCompletedMigrate) {
  MigrationLab lab(SmallDerby(), SmallLab(/*assisted=*/true, 21));
  lab.Run(Duration::Seconds(20));
  const MigrationResult result = lab.Migrate();
  ASSERT_TRUE(result.completed);
  EXPECT_FALSE(lab.guest().event_channel().daemon_bound());
  EXPECT_TRUE(result.trace_audit.ok) << result.trace_audit.ToString();
}

TEST(TraceBindingTest, DaemonHandlerUnboundAfterAbortAndRemigrateSucceeds) {
  LabConfig config = SmallLab(/*assisted=*/true, 22);
  config.migration.abort_after_iterations = 1;
  MigrationLab lab(SmallDerby(), config);
  lab.Run(Duration::Seconds(15));
  const MigrationResult aborted = lab.Migrate();
  EXPECT_FALSE(aborted.completed);
  // The abort exit path must unbind the handler; a stale binding would make
  // the next binding (or a stray LKM notification) fire into a dead engine.
  EXPECT_FALSE(lab.guest().event_channel().daemon_bound());
  ASSERT_TRUE(aborted.trace_audit.ran);
  EXPECT_TRUE(aborted.trace_audit.ok) << aborted.trace_audit.ToString();
  // Abort reports a well-defined (empty) pause window, not default epochs.
  EXPECT_EQ(aborted.paused_at.nanos(), aborted.resumed_at.nanos());
  EXPECT_TRUE(aborted.downtime.Total().IsZero());
  EXPECT_EQ(aborted.last_iter_pages_sent, 0);
  EXPECT_EQ(aborted.total_time.nanos(), (aborted.resumed_at - aborted.started_at).nanos());
}

TEST(TraceBindingTest, FallbackUnbindsHandlerToo) {
  LabConfig config = SmallLab(/*assisted=*/true, 23);
  config.agent.cooperative = false;
  config.lkm.straggler_timeout = Duration::Seconds(60);
  config.migration.lkm_response_timeout = Duration::Seconds(2);
  MigrationLab lab(SmallDerby(), config);
  lab.Run(Duration::Seconds(15));
  const MigrationResult result = lab.Migrate();
  EXPECT_TRUE(result.fell_back_unassisted);
  EXPECT_FALSE(lab.guest().event_channel().daemon_bound());
  ASSERT_TRUE(result.trace_audit.ran);
  EXPECT_TRUE(result.trace_audit.ok) << result.trace_audit.ToString();
}

// ---- Fallback compression-hint regression. ----

// On LKM-timeout fallback the engine must drop the guest's per-page
// compression hints along with the transfer bitmap: the skip-listed pages it
// re-sends at stop-and-copy are trial-compressed like any other page instead
// of trusting classes reported by a guest just declared unresponsive.
TEST(TraceFallbackTest, FallbackDropsStaleCompressionHints) {
  SimClock clock;
  GuestPhysicalMemory memory(256 * kMiB);
  GuestKernel kernel(&memory, &clock);
  Lkm& lkm = kernel.LoadLkm(LkmConfig{});

  CacheAppConfig cache_config;
  cache_config.cache_bytes = 64 * kMiB;
  cache_config.purge_fraction = 0.5;
  cache_config.write_rate_bytes_per_sec = 0;  // Keep accounting exact.
  cache_config.ops_per_sec = 0;
  cache_config.cooperative = false;  // Straggler: forces the daemon fallback.
  CacheApplication cache(&kernel, cache_config, Rng(5));
  clock.Advance(Duration::Seconds(2));

  MigrationConfig mig;
  mig.application_assisted = true;
  mig.compress_pages = true;
  mig.use_compression_classes = true;
  mig.lkm_response_timeout = Duration::Seconds(2);
  MigrationEngine engine(&kernel, mig);

  // Mark the cold (skip-over) suffix incompressible. While assisted, those
  // pages are skipped entirely; after the fallback they are re-sent, and the
  // stale hint must NOT exempt them from trial compression.
  lkm.AnnotateCompression(cache.pid(), cache.skip_range(), CompressionClass::kIncompressible);

  const MigrationResult result = engine.Migrate();
  ASSERT_TRUE(result.fell_back_unassisted);
  ASSERT_TRUE(result.verification.ok) << result.verification.detail;
  ASSERT_TRUE(result.trace_audit.ran);
  EXPECT_TRUE(result.trace_audit.ok) << result.trace_audit.ToString();
  // Nothing dirties memory, so the accounting is exact: the only raw pages
  // are the retained (hot) half the app itself marked incompressible and
  // that were sent while the hints were still trusted. The cold suffix
  // (32 MiB) re-sent after the fallback lands in pages_compressed.
  EXPECT_EQ(result.pages_sent_raw, PagesForBytes(32 * kMiB));
  EXPECT_EQ(result.pages_compressed, result.pages_sent - result.pages_sent_raw);
  EXPECT_GE(result.pages_compressed, PagesForBytes(32 * kMiB));
}

// ---- Scenario audit matrix: every outcome must reconcile. ----

struct AuditScenario {
  const char* name;
  bool assisted = false;
  bool compress = false;
  bool delta = false;
  bool abort = false;
  bool fallback = false;
};

class TraceScenarioTest : public ::testing::TestWithParam<AuditScenario> {};

TEST_P(TraceScenarioTest, AuditPasses) {
  const AuditScenario& sc = GetParam();
  LabConfig config = SmallLab(sc.assisted, 31);
  config.migration.compress_pages = sc.compress;
  config.migration.delta_compression = sc.delta;
  if (sc.abort) {
    config.migration.abort_after_iterations = 2;
  }
  if (sc.fallback) {
    config.agent.cooperative = false;
    config.lkm.straggler_timeout = Duration::Seconds(60);
    config.migration.lkm_response_timeout = Duration::Seconds(2);
  }
  MigrationLab lab(SmallDerby(), config);
  lab.Run(Duration::Seconds(20));
  const MigrationResult result = lab.Migrate();
  EXPECT_EQ(result.completed, !sc.abort);
  EXPECT_EQ(result.fell_back_unassisted, sc.fallback);
  ASSERT_TRUE(result.trace_audit.ran);
  EXPECT_TRUE(result.trace_audit.ok) << sc.name << ": " << result.trace_audit.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    AllOutcomes, TraceScenarioTest,
    ::testing::Values(AuditScenario{"vanilla"},
                      AuditScenario{"assisted", /*assisted=*/true},
                      AuditScenario{"compression", /*assisted=*/true, /*compress=*/true},
                      AuditScenario{"delta", false, false, /*delta=*/true},
                      AuditScenario{"assisted_delta", true, false, /*delta=*/true},
                      AuditScenario{"abort_vanilla", false, false, false, /*abort=*/true},
                      AuditScenario{"abort_assisted", true, false, false, /*abort=*/true},
                      AuditScenario{"fallback", true, false, false, false, /*fallback=*/true},
                      AuditScenario{"fallback_compressed", true, /*compress=*/true, false, false,
                                    /*fallback=*/true}),
    [](const ::testing::TestParamInfo<AuditScenario>& param_info) {
      return param_info.param.name;
    });

// ---- Baseline engines. ----

TEST(TraceBaselineTest, StopAndCopyAuditPasses) {
  MigrationLab lab(SmallDerby(), SmallLab(false, 41));
  lab.Run(Duration::Seconds(10));
  StopAndCopyEngine engine(&lab.guest(), lab.config().migration);
  const MigrationResult result = engine.Migrate();
  ASSERT_TRUE(result.completed);
  ASSERT_TRUE(result.trace_audit.ran);
  EXPECT_TRUE(result.trace_audit.ok) << result.trace_audit.ToString();
  EXPECT_EQ(SumBurstPages(engine.trace()), result.pages_sent);
}

TEST(TraceBaselineTest, PostcopyAuditPasses) {
  MigrationLab lab(SmallDerby(), SmallLab(false, 42));
  lab.Run(Duration::Seconds(10));
  PostcopyEngine::Config config;
  config.base = lab.config().migration;
  PostcopyEngine engine(&lab.guest(), config);
  const PostcopyResult result = engine.Migrate();
  ASSERT_TRUE(result.common.completed);
  ASSERT_TRUE(result.common.trace_audit.ran);
  EXPECT_TRUE(result.common.trace_audit.ok) << result.common.trace_audit.ToString();
  EXPECT_EQ(SumBurstPages(engine.trace()), result.common.pages_sent);
}

}  // namespace
}  // namespace javmm
