// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Tests for the multi-channel migration data plane (DESIGN.md §11): the
// deterministic sharder, the per-channel fault grammar (chK: clauses), the
// striped-transfer determinism contract (serial == parallel, channels == 1
// bit-identical to the single-link seed export), the auditor's per-channel
// decomposition identities, and the TryTransfer outage-boundary regression
// that motivated the striped retry loop's virtual timelines.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/base/units.h"
#include "src/core/migration_lab.h"
#include "src/migration/baselines.h"
#include "src/net/channel_set.h"
#include "src/runner/runner.h"
#include "src/trace/auditor.h"

namespace javmm {
namespace {

LabConfig SmallLab(uint64_t seed = 1) {
  LabConfig config;
  config.vm_bytes = 512 * kMiB;
  config.seed = seed;
  config.os.resident_bytes = 64 * kMiB;
  config.os.hot_bytes = 8 * kMiB;
  return config;
}

WorkloadSpec SmallDerby() {
  WorkloadSpec spec = Workloads::Get("derby");
  spec.alloc_rate_bytes_per_sec = 100 * kMiB;
  spec.old_baseline_bytes = 32 * kMiB;
  spec.heap.young_max_bytes = 256 * kMiB;
  spec.heap.old_max_bytes = 128 * kMiB;
  return spec;
}

Scenario FastScenario(EngineKind kind, const std::string& label) {
  Scenario scenario;
  scenario.label = label;
  scenario.spec = Workloads::Get("crypto");
  scenario.engine = kind;
  scenario.options.warmup = Duration::Seconds(10);
  scenario.options.cooldown = Duration::Seconds(5);
  return scenario;
}

bool HasViolation(const TraceAuditReport& report, const std::string& needle) {
  for (const std::string& v : report.violations) {
    if (v.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

// ---- NetworkLink::TryTransfer outage-boundary regression. ----

// At 1/3 byte per second, 3002400 bytes nominally take 9007200 s -- about
// 9.0072e15 ns, past 2^53 where a double no longer resolves single
// nanoseconds. The bandwidth window below ends 1 ns before the computed
// finish, so the first-window finish estimate overshoots the edge while the
// payload integrated up to the edge rounds to the full burst: `remaining`
// clamps to exactly 0 at a boundary that is also an outage start. The old
// code classified that attempt as outage-cut -- the whole burst "wasted",
// the retry pushed past a 5 s outage -- although every byte had landed. The
// fix completes it on the spot.
TEST(TryTransferEdgeTest, VanishingRemainderAtOutageBoundaryCompletes) {
  LinkConfig cfg;
  cfg.bandwidth_bps = 8.0;  // GoodputBytesPerSec() == 1.0.
  cfg.efficiency = 1.0;
  cfg.per_page_overhead = 0;
  const int64_t kBytes = 3002400;
  const int64_t kBoundaryNs = 9007199999999999;

  FaultPlan plan;
  plan.bandwidth.push_back({Duration::Zero(), Duration::Nanos(kBoundaryNs), 1.0 / 3.0});
  plan.outages.push_back(
      {Duration::Nanos(kBoundaryNs), Duration::Nanos(kBoundaryNs) + Duration::Seconds(5)});
  ASSERT_EQ(plan.Validate(), "");

  ChannelSet channels(cfg, 1);
  channels.Anchor(plan, {}, TimePoint::Epoch());
  const FaultSchedule* schedule = channels.faults(0);
  ASSERT_NE(schedule, nullptr);

  const TransferAttempt attempt =
      channels.channel(0).TryTransfer(kBytes, TimePoint::Epoch(), schedule);
  EXPECT_TRUE(attempt.ok);
  EXPECT_EQ(attempt.duration.nanos(), kBoundaryNs);
  EXPECT_EQ(attempt.wasted_bytes, 0);
}

// The pinned constants above, re-derived in exact integer arithmetic: at an
// effective 1/3 byte per second, the payload whose nominal finish lands 1 ns
// past the window edge is MulDiv(edge + 1, 1, 3e9). Asserting the equality
// keeps the two magic numbers honest against each other, and places the edge
// past 2^53 where the regression's double math lost nanosecond resolution.
TEST(TryTransferEdgeTest, BoundaryConstantsRederiveThroughMulDiv) {
  const int64_t kBoundaryNs = 9007199999999999;
  EXPECT_EQ(MulDiv(kBoundaryNs + 1, 1, 3'000'000'000), 3002400);
  EXPECT_GT(kBoundaryNs, int64_t{1} << 53);
}

// Generalizes the regression into a seeded sweep across magnitudes where
// double time math is exact (2^31 ns), at the resolution cliff (2^53 ns), and
// far past it (near INT64_MAX ns). Each trial rebuilds the clamp-path shape
// -- a bandwidth window whose edge doubles as an outage start -- with the
// edge jittered by the seeded Rng. Payloads are derived through MulDiv with
// margins of at least 10 bytes and 2 ms on either side of the edge, wide
// enough that double rounding (ulp ~ 2 us at INT64_MAX nanoseconds) cannot
// flip an outcome: finishing before the edge must complete with nothing
// wasted; finishing after it must be outage-cut at the edge with consistent
// delivered-byte accounting.
TEST(TryTransferEdgeTest, SeededBoundarySweepAcrossMagnitudes) {
  struct Magnitude {
    int64_t boundary_ns;
    double bandwidth_bps;  // GoodputBytesPerSec() == bandwidth_bps / 8.
    int64_t goodput;       // The same goodput as an exact integer.
  };
  const Magnitude kMagnitudes[] = {
      {int64_t{1} << 31, 8e9, 1'000'000'000},
      {int64_t{1} << 53, 8.0, 1},
      {INT64_MAX - (int64_t{1} << 40), 8.0, 1},
  };
  Rng rng(0x5eedb0a7d);
  for (const Magnitude& m : kMagnitudes) {
    for (int trial = 0; trial < 4; ++trial) {
      const int64_t edge_ns =
          m.boundary_ns - static_cast<int64_t>(rng.NextBounded(1'000'000));
      // Bytes delivered by the edge at 1/3 of goodput, and a margin covering
      // both a 2 ms head start and the 1-byte granularity of slow links.
      const int64_t at_edge = MulDiv(edge_ns, m.goodput, 3'000'000'000);
      const int64_t delta =
          std::max<int64_t>(10, MulDiv(2'000'000, m.goodput, 3'000'000'000));
      ASSERT_GT(at_edge, delta);

      LinkConfig cfg;
      cfg.bandwidth_bps = m.bandwidth_bps;
      cfg.efficiency = 1.0;
      cfg.per_page_overhead = 0;
      FaultPlan plan;
      plan.bandwidth.push_back({Duration::Zero(), Duration::Nanos(edge_ns), 1.0 / 3.0});
      plan.outages.push_back(
          {Duration::Nanos(edge_ns), Duration::Nanos(edge_ns) + Duration::Seconds(5)});
      ASSERT_EQ(plan.Validate(), "");
      ChannelSet channels(cfg, 1);
      channels.Anchor(plan, {}, TimePoint::Epoch());
      const FaultSchedule* schedule = channels.faults(0);
      ASSERT_NE(schedule, nullptr);

      const TransferAttempt under =
          channels.channel(0).TryTransfer(at_edge - delta, TimePoint::Epoch(), schedule);
      EXPECT_TRUE(under.ok) << "edge_ns=" << edge_ns;
      EXPECT_EQ(under.wasted_bytes, 0);
      EXPECT_GT(under.duration.nanos(), 0);
      EXPECT_LT(under.duration.nanos(), edge_ns);
      const int64_t nominal_ns = MulDiv(at_edge - delta, 3'000'000'000, m.goodput);
      EXPECT_LT(std::abs(under.duration.nanos() - nominal_ns), 1'000'000)
          << "edge_ns=" << edge_ns;

      const TransferAttempt over =
          channels.channel(0).TryTransfer(at_edge + delta, TimePoint::Epoch(), schedule);
      EXPECT_FALSE(over.ok) << "edge_ns=" << edge_ns;
      EXPECT_EQ(over.duration.nanos(), edge_ns);
      EXPECT_EQ(over.blocked_until.nanos(), edge_ns + 5'000'000'000);
      // Everything that crossed the wire before the cut is wasted (it will be
      // re-sent); that is the at-edge delivery, give or take llround.
      EXPECT_GE(over.wasted_bytes, 0);
      EXPECT_LE(over.wasted_bytes, at_edge + delta);
      EXPECT_LT(std::abs(over.wasted_bytes - at_edge), 8) << "edge_ns=" << edge_ns;
    }
  }
}

// ---- Deterministic sharder. ----

TEST(ChannelSetTest, ShardPartitionsPagesAndBytesExactly) {
  ChannelSet channels(LinkConfig{}, 4);
  const int64_t pages = 1003;                  // Not a multiple of 4.
  const int64_t wire = pages * 4174 + 57;      // Nor byte-aligned to pages.
  const std::vector<ChannelShare> shares = channels.Shard(pages, wire);
  ASSERT_EQ(shares.size(), 4u);
  int64_t page_sum = 0;
  int64_t wire_sum = 0;
  for (const ChannelShare& share : shares) {
    page_sum += share.pages;
    wire_sum += share.wire_bytes;
    EXPECT_GE(share.pages, pages / 4);
    EXPECT_LE(share.pages, pages / 4 + 1);
  }
  EXPECT_EQ(page_sum, pages);
  EXPECT_EQ(wire_sum, wire);
}

TEST(ChannelSetTest, ShardSplitsPagelessPayloadEvenly) {
  ChannelSet channels(LinkConfig{}, 3);
  const std::vector<ChannelShare> shares = channels.Shard(0, 1000);
  ASSERT_EQ(shares.size(), 3u);
  int64_t wire_sum = 0;
  for (const ChannelShare& share : shares) {
    EXPECT_EQ(share.pages, 0);
    EXPECT_GE(share.wire_bytes, 333);
    EXPECT_LE(share.wire_bytes, 334);
    wire_sum += share.wire_bytes;
  }
  EXPECT_EQ(wire_sum, 1000);
}

TEST(ChannelSetTest, SingleChannelShardIsIdentity) {
  ChannelSet channels(LinkConfig{}, 1);
  const std::vector<ChannelShare> shares = channels.Shard(77, 321987);
  ASSERT_EQ(shares.size(), 1u);
  EXPECT_EQ(shares[0].channel, 0);
  EXPECT_EQ(shares[0].pages, 77);
  EXPECT_EQ(shares[0].wire_bytes, 321987);
}

// Regression for the overflow javmm-lint's overflow-mul rule caught in
// Shard(): `wire_bytes * page_hi` wraps int64 once a guest reaches ~2^32
// pages with full wire payloads (a 16 TiB memory), handing channels negative
// byte shares. The MulDiv rewrite keeps the product in 128 bits, so the
// partition must stay exact, non-negative, and near-even at that scale.
TEST(ChannelSetTest, ShardSurvivesHugeMemoryWithoutOverflow) {
  ChannelSet channels(LinkConfig{}, 7);
  const int64_t pages = int64_t{1} << 32;
  const int64_t wire = CheckedMul(pages, kPageSize + 78);
  const std::vector<ChannelShare> shares = channels.Shard(pages, wire);
  ASSERT_EQ(shares.size(), 7u);
  int64_t page_sum = 0;
  int64_t wire_sum = 0;
  for (const ChannelShare& share : shares) {
    EXPECT_GE(share.pages, 0);
    EXPECT_GE(share.wire_bytes, 0);
    EXPECT_LE(share.wire_bytes, wire / 7 + (kPageSize + 78));
    page_sum += share.pages;
    wire_sum += share.wire_bytes;
  }
  EXPECT_EQ(page_sum, pages);
  EXPECT_EQ(wire_sum, wire);
}

// ---- Per-channel fault grammar. ----

TEST(ParseMultiTest, SharedOnlySpecLeavesPerChannelEmpty) {
  FaultPlan shared;
  std::vector<FaultPlan> per_channel;
  std::string error;
  ASSERT_TRUE(FaultPlan::ParseMulti("lat:0s-2s+5ms;loss:0.1", 4, &shared, &per_channel, &error))
      << error;
  EXPECT_TRUE(per_channel.empty());
  EXPECT_EQ(shared.latency.size(), 1u);
  EXPECT_DOUBLE_EQ(shared.control_loss_p, 0.1);
}

TEST(ParseMultiTest, ChannelClauseOverlaysSharedPlan) {
  FaultPlan shared;
  std::vector<FaultPlan> per_channel;
  std::string error;
  ASSERT_TRUE(FaultPlan::ParseMulti("lat:0s-2s+5ms;ch1:out:7s-8s", 2, &shared, &per_channel,
                                    &error))
      << error;
  ASSERT_EQ(per_channel.size(), 2u);
  // Every channel inherits the shared latency spike; only channel 1 gets the
  // outage overlay.
  EXPECT_EQ(per_channel[0].latency.size(), 1u);
  EXPECT_EQ(per_channel[1].latency.size(), 1u);
  EXPECT_TRUE(per_channel[0].outages.empty());
  ASSERT_EQ(per_channel[1].outages.size(), 1u);
  EXPECT_EQ(per_channel[1].outages[0].start.nanos(), Duration::Seconds(7).nanos());
}

TEST(ParseMultiTest, ChannelIndexOutOfRangeFails) {
  FaultPlan shared;
  std::vector<FaultPlan> per_channel;
  std::string error;
  EXPECT_FALSE(FaultPlan::ParseMulti("ch5:out:1s-2s", 2, &shared, &per_channel, &error));
  EXPECT_NE(error.find("names channel 5"), std::string::npos) << error;
}

TEST(ParseMultiTest, SingleLinkParseRejectsChannelPrefix) {
  FaultPlan plan;
  std::string error;
  EXPECT_FALSE(FaultPlan::Parse("ch1:out:1s-2s", &plan, &error));
  EXPECT_FALSE(error.empty());
}

// ---- Auditor: per-channel decomposition identities. ----

// A healthy 2-channel stop-and-copy run whose trace/result pair we can
// corrupt in controlled ways. The inputs reconstructed from the result's
// per-channel mirrors must reproduce the engine's own passing audit.
struct AuditFixture {
  MigrationResult result;
  TraceRecorder trace;
  AuditInputs inputs;
};

AuditFixture RunStopCopyFixture(int channel_count) {
  LabConfig config = SmallLab();
  config.migration.channels = channel_count;
  MigrationLab lab(SmallDerby(), config);
  lab.Run(Duration::Seconds(5));
  StopAndCopyEngine engine(&lab.guest(), lab.config().migration);
  AuditFixture fx;
  fx.result = engine.Migrate();
  fx.trace = engine.trace();
  fx.inputs.link_wire_bytes = fx.result.total_wire_bytes;
  fx.inputs.link_pages_sent = fx.result.pages_sent;
  fx.inputs.link_retry_bytes = fx.result.retry_wire_bytes;
  fx.inputs.channel_wire_bytes = fx.result.channel_wire_bytes;
  fx.inputs.channel_pages_sent = fx.result.channel_pages_sent;
  fx.inputs.channel_retry_bytes = fx.result.channel_retry_bytes;
  return fx;
}

TEST(ChannelAuditTest, ReconstructedInputsReproduceAPassingAudit) {
  const AuditFixture fx = RunStopCopyFixture(2);
  ASSERT_TRUE(fx.result.trace_audit.ran);
  ASSERT_TRUE(fx.result.trace_audit.ok) << fx.result.trace_audit.ToString();
  ASSERT_EQ(fx.inputs.channel_wire_bytes.size(), 2u);
  const TraceAuditReport report =
      TraceAuditor::Audit(AuditMode::kStopAndCopy, fx.trace, fx.result, fx.inputs);
  EXPECT_TRUE(report.ok) << report.ToString();
}

TEST(ChannelAuditTest, ForgedPerChannelMetersAreRejected) {
  AuditFixture fx = RunStopCopyFixture(2);
  // Shift wire bytes between the channels: the aggregate sum still matches,
  // so only the per-channel identities can catch the forgery.
  fx.inputs.channel_wire_bytes[0] += 512;
  fx.inputs.channel_wire_bytes[1] -= 512;
  const TraceAuditReport report =
      TraceAuditor::Audit(AuditMode::kStopAndCopy, fx.trace, fx.result, fx.inputs);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(HasViolation(report, "event wire sum")) << report.ToString();
}

TEST(ChannelAuditTest, ChannelEventNamingDeadChannelIsRejected) {
  AuditFixture fx = RunStopCopyFixture(2);
  TraceEvent event;
  event.kind = TraceEventKind::kChannelTransfer;
  event.at = fx.trace.events().back().at;
  event.detail = 7;  // Only channels 0 and 1 exist.
  fx.trace.Record(event);
  const TraceAuditReport report =
      TraceAuditor::Audit(AuditMode::kStopAndCopy, fx.trace, fx.result, fx.inputs);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(HasViolation(report, "names channel 7")) << report.ToString();
}

TEST(ChannelAuditTest, ChannelEventInSingleChannelTraceIsRejected) {
  AuditFixture fx = RunStopCopyFixture(1);
  ASSERT_TRUE(fx.inputs.channel_wire_bytes.empty());
  ASSERT_TRUE(fx.result.trace_audit.ok) << fx.result.trace_audit.ToString();
  TraceEvent event;
  event.kind = TraceEventKind::kChannelTransfer;
  event.at = fx.trace.events().back().at;
  event.detail = 0;
  fx.trace.Record(event);
  const TraceAuditReport report =
      TraceAuditor::Audit(AuditMode::kStopAndCopy, fx.trace, fx.result, fx.inputs);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(HasViolation(report, "single channel")) << report.ToString();
}

// ---- Determinism: striped runs, serial vs 4-worker pool. ----

TEST(ChannelRunnerTest, StripedFaultyParallelMatchesSerial) {
  const EngineKind kEngines[] = {EngineKind::kXenPrecopy, EngineKind::kJavmm,
                                 EngineKind::kStopAndCopy, EngineKind::kPostcopy};
  std::vector<Scenario> scenarios;
  for (const int channels : {2, 4}) {
    for (const EngineKind kind : kEngines) {
      Scenario scenario = FastScenario(
          kind, std::string(EngineKindName(kind)) + "/" + std::to_string(channels) + "ch");
      scenario.options.channels = channels;
      scenario.options.fault_spec = "lat:0s-10s+2ms;ch1:out:1s-2200ms;loss:0.1";
      scenarios.push_back(std::move(scenario));
    }
  }
  const RunReport serial = ScenarioRunner(/*jobs=*/1).RunAll(scenarios);
  const RunReport parallel = ScenarioRunner(/*jobs=*/4).RunAll(scenarios);
  ASSERT_EQ(serial.runs.size(), scenarios.size());
  ASSERT_EQ(parallel.runs.size(), scenarios.size());
  for (size_t i = 0; i < scenarios.size(); ++i) {
    SCOPED_TRACE(scenarios[i].label);
    const RunRecord& s = serial.runs[i];
    const RunRecord& p = parallel.runs[i];
    ASSERT_TRUE(s.ran) << s.error;
    ASSERT_TRUE(p.ran) << p.error;
    const MigrationResult& r = s.output.result;
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.verification.ok);
    ASSERT_TRUE(r.trace_audit.ran);
    EXPECT_TRUE(r.trace_audit.ok) << r.trace_audit.ToString();
    // The per-channel meters are exported and partition the aggregates.
    ASSERT_EQ(r.channel_wire_bytes.size(), static_cast<size_t>(r.channels));
    int64_t wire_sum = 0;
    int64_t page_sum = 0;
    for (int c = 0; c < r.channels; ++c) {
      wire_sum += r.channel_wire_bytes[static_cast<size_t>(c)];
      page_sum += r.channel_pages_sent[static_cast<size_t>(c)];
    }
    EXPECT_EQ(wire_sum, r.total_wire_bytes);
    EXPECT_EQ(page_sum, r.pages_sent);
    // Byte identity between the execution modes.
    EXPECT_EQ(r.total_time.nanos(), p.output.result.total_time.nanos());
    EXPECT_EQ(r.total_wire_bytes, p.output.result.total_wire_bytes);
    EXPECT_EQ(r.retry_wire_bytes, p.output.result.retry_wire_bytes);
    EXPECT_EQ(r.channel_wire_bytes, p.output.result.channel_wire_bytes);
    EXPECT_EQ(r.channel_pages_sent, p.output.result.channel_pages_sent);
    EXPECT_EQ(r.channel_retry_bytes, p.output.result.channel_retry_bytes);
    EXPECT_EQ(s.output.fault_stall.nanos(), p.output.fault_stall.nanos());
    EXPECT_EQ(s.output.observed_downtime.nanos(), p.output.observed_downtime.nanos());
  }
  std::ostringstream serial_json;
  std::ostringstream parallel_json;
  serial.ExportJsonLines(serial_json);
  parallel.ExportJsonLines(parallel_json);
  EXPECT_EQ(serial_json.str(), parallel_json.str());
}

// ---- The headline bugfix: striping shortens the post-copy stall. ----

// At one channel every demand fetch queues behind the same spiked link; with
// the spike pinned to sub-link 1 of four, only the fetches sharded onto it
// pay the extra latency and the rest overlap.
TEST(ChannelRunnerTest, StripingReducesPostcopyStallUnderPinnedSpike) {
  Scenario single = FastScenario(EngineKind::kPostcopy, "postcopy/1ch");
  single.options.fault_spec = "lat:0s-30s+20ms";
  Scenario striped = FastScenario(EngineKind::kPostcopy, "postcopy/4ch");
  striped.options.channels = 4;
  striped.options.fault_spec = "ch1:lat:0s-30s+20ms";

  const RunRecord one = ScenarioRunner::RunOne(single);
  const RunRecord four = ScenarioRunner::RunOne(striped);
  ASSERT_TRUE(one.ran) << one.error;
  ASSERT_TRUE(four.ran) << four.error;
  EXPECT_TRUE(one.output.result.verification.ok);
  EXPECT_TRUE(four.output.result.verification.ok);
  EXPECT_TRUE(one.output.result.trace_audit.ok) << one.output.result.trace_audit.ToString();
  EXPECT_TRUE(four.output.result.trace_audit.ok) << four.output.result.trace_audit.ToString();
  EXPECT_GT(one.output.fault_stall.nanos(), 0);
  EXPECT_LT(four.output.fault_stall.nanos(), one.output.fault_stall.nanos());
  EXPECT_LT(four.output.result.total_time.nanos(), one.output.result.total_time.nanos());
}

// ---- Analyzer probe faults (LabConfig::analyzer_probe_faults). ----

TEST(AnalyzerProbeFaultsTest, ProbesInOutageObserveZeroThroughput) {
  MigrationLab lab(SmallDerby(), SmallLab());
  lab.Run(Duration::Seconds(20));
  const TimePoint origin = lab.clock().now();
  lab.mutable_analyzer().AttachProbeFaults(FaultPlan::MustParse("out:2s-7s"), origin);
  lab.Run(Duration::Seconds(15));
  // No migration ran: the app never stopped, so everything the analyser
  // "observes" is probe loss inside the 5 s outage.
  const Duration observed = lab.analyzer().ObservedDowntime(origin, lab.clock().now());
  EXPECT_GE(observed.ToSecondsF(), 4.0);
  EXPECT_LE(observed.ToSecondsF(), 7.0);
}

TEST(AnalyzerProbeFaultsTest, ScenarioFlagRoutesChannelZeroPlanToProbes) {
  Scenario off = FastScenario(EngineKind::kXenPrecopy, "probe/off");
  off.options.warmup = Duration::Seconds(20);
  off.options.channels = 2;
  off.options.fault_spec = "ch0:out:1s-6s";
  Scenario on = off;
  on.label = "probe/on";
  on.options.lab.analyzer_probe_faults = true;

  const RunRecord r_off = ScenarioRunner::RunOne(off);
  const RunRecord r_on = ScenarioRunner::RunOne(on);
  ASSERT_TRUE(r_off.ran) << r_off.error;
  ASSERT_TRUE(r_on.ran) << r_on.error;
  // The probe path never feeds back into the engines: the migration itself
  // is byte-identical with the flag on.
  EXPECT_EQ(r_on.output.result.total_time.nanos(), r_off.output.result.total_time.nanos());
  EXPECT_EQ(r_on.output.result.total_wire_bytes, r_off.output.result.total_wire_bytes);
  EXPECT_EQ(r_on.output.result.channel_wire_bytes, r_off.output.result.channel_wire_bytes);
  // But the analyser now loses its probes inside channel 0's outage, so the
  // observed (external) downtime grows past the real one.
  EXPECT_GE(r_on.output.observed_downtime.ToSecondsF(), 4.0);
  EXPECT_GT(r_on.output.observed_downtime.nanos(), r_off.output.observed_downtime.nanos());
}

// ---- channels == 1 bit-identity against the single-link seed export. ----

// JSON-lines export of the 6-regime x 4-engine battery captured from the
// seed tree (before the multi-channel data plane existed), crypto workload,
// warmup 10 s, cooldown 5 s, seed 1, default lab. Re-running the battery
// through the striped code at channels == 1 must reproduce it byte for byte.
const char kGoldenSeedExport[] = R"gold({"label":"healthy/Xen","workload":"crypto","engine":"Xen","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":21,"total_time_ns":57885589784,"downtime_ns":1972921901,"wire_bytes":6852566216,"pages_sent":1641724,"pages_skipped_dirty":158458,"pages_skipped_bitmap":0,"cpu_ns":6836923300,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":2000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"healthy/JAVMM","workload":"crypto","engine":"JAVMM","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":5,"total_time_ns":15567336868,"downtime_ns":597796796,"wire_bytes":1755319312,"pages_sent":420536,"pages_skipped_dirty":463,"pages_skipped_bitmap":215444,"cpu_ns":1777610450,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":0,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"healthy/stop-and-copy","workload":"crypto","engine":"stop-and-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":1,"total_time_ns":18598446720,"downtime_ns":18598446720,"wire_bytes":2188378112,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":2097152000,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":18000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"healthy/post-copy","workload":"crypto","engine":"post-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":0,"total_time_ns":60523624133,"downtime_ns":205320455,"wire_bytes":2192572416,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":0,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":3000000000,"demand_faults":91065,"fault_stall_ns":45090743685,"degradation_window_ns":60318303678}
{"label":"bw-collapse/Xen","workload":"crypto","engine":"Xen","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":25,"total_time_ns":99470117713,"downtime_ns":1962798853,"wire_bytes":6803394370,"pages_sent":1629943,"pages_skipped_dirty":339431,"pages_skipped_bitmap":0,"cpu_ns":6815178100,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":1000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"bw-collapse/JAVMM","workload":"crypto","engine":"JAVMM","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":4,"total_time_ns":50162326816,"downtime_ns":222121502,"wire_bytes":1776664636,"pages_sent":425650,"pages_skipped_dirty":1237,"pages_skipped_bitmap":241156,"cpu_ns":1802806450,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":0,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"bw-collapse/stop-and-copy","workload":"crypto","engine":"stop-and-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":1,"total_time_ns":60598447520,"downtime_ns":60598447520,"wire_bytes":2188378112,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":2097152000,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":60000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"bw-collapse/post-copy","workload":"crypto","engine":"post-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":0,"total_time_ns":79038187045,"downtime_ns":287734849,"wire_bytes":2192572416,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":0,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":6000000000,"demand_faults":107596,"fault_stall_ns":61164514716,"degradation_window_ns":78750452196}
{"label":"lossy-ctl/Xen","workload":"crypto","engine":"Xen","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":16,"total_time_ns":62420853968,"downtime_ns":3375174963,"wire_bytes":7130113786,"pages_sent":1708219,"pages_skipped_dirty":181651,"pages_skipped_bitmap":0,"cpu_ns":7116356500,"control_losses":7,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":3584,"backoff_ns":450000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":3000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"lossy-ctl/JAVMM","workload":"crypto","engine":"JAVMM","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":7,"total_time_ns":16625647035,"downtime_ns":372904387,"wire_bytes":1756860542,"pages_sent":420905,"pages_skipped_dirty":582,"pages_skipped_bitmap":236004,"cpu_ns":1782243650,"control_losses":3,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":1536,"backoff_ns":150000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":0,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"lossy-ctl/stop-and-copy","workload":"crypto","engine":"stop-and-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":1,"total_time_ns":18598446720,"downtime_ns":18598446720,"wire_bytes":2188378112,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":2097152000,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":18000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"lossy-ctl/post-copy","workload":"crypto","engine":"post-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":0,"total_time_ns":21416435704847,"downtime_ns":205320455,"wire_bytes":2192572416,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":0,"control_losses":59288,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":30355456,"backoff_ns":6534750000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":19469000000000,"demand_faults":89553,"fault_stall_ns":21400949678397,"degradation_window_ns":21416230384392}
{"label":"outage/Xen","workload":"crypto","engine":"Xen","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":22,"total_time_ns":58082808479,"downtime_ns":1766067254,"wire_bytes":6757094826,"pages_sent":1618851,"pages_skipped_dirty":159938,"pages_skipped_bitmap":0,"cpu_ns":6742222350,"control_losses":0,"burst_faults":1,"round_timeouts":0,"retry_wire_bytes":94119,"backoff_ns":1000000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":1000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"outage/JAVMM","workload":"crypto","engine":"JAVMM","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":5,"total_time_ns":16982215811,"downtime_ns":415871838,"wire_bytes":1757406312,"pages_sent":421036,"pages_skipped_dirty":506,"pages_skipped_bitmap":234260,"cpu_ns":1782514300,"control_losses":0,"burst_faults":1,"round_timeouts":0,"retry_wire_bytes":94119,"backoff_ns":1000000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":0,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"outage/stop-and-copy","workload":"crypto","engine":"stop-and-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":1,"total_time_ns":19599639305,"downtime_ns":19599639305,"wire_bytes":2188378112,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":2097152000,"control_losses":0,"burst_faults":1,"round_timeouts":0,"retry_wire_bytes":141619,"backoff_ns":1000000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":19000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"outage/post-copy","workload":"crypto","engine":"post-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":0,"total_time_ns":61523571184,"downtime_ns":205320455,"wire_bytes":2192572416,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":0,"control_losses":1,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":512,"backoff_ns":749947051,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":3000000000,"demand_faults":91065,"fault_stall_ns":46090690736,"degradation_window_ns":61318250729}
{"label":"lat-spike/Xen","workload":"crypto","engine":"Xen","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":21,"total_time_ns":58594640298,"downtime_ns":1890426089,"wire_bytes":6831078464,"pages_sent":1636576,"pages_skipped_dirty":178180,"pages_skipped_bitmap":0,"cpu_ns":6818517400,"control_losses":2,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":1024,"backoff_ns":150000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":1000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"lat-spike/JAVMM","workload":"crypto","engine":"JAVMM","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":8,"total_time_ns":15548160588,"downtime_ns":205355381,"wire_bytes":1751130152,"pages_sent":419532,"pages_skipped_dirty":481,"pages_skipped_bitmap":214788,"cpu_ns":1773348150,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":0,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"lat-spike/stop-and-copy","workload":"crypto","engine":"stop-and-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":1,"total_time_ns":18598446720,"downtime_ns":18598446720,"wire_bytes":2188378112,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":2097152000,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":18000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"lat-spike/post-copy","workload":"crypto","engine":"post-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":0,"total_time_ns":7215085764847,"downtime_ns":205320455,"wire_bytes":2192572416,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":0,"control_losses":22570,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":11555840,"backoff_ns":1503200000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":6511000000000,"demand_faults":89554,"fault_stall_ns":7199599773546,"degradation_window_ns":7214880444392}
{"label":"combined/Xen","workload":"crypto","engine":"Xen","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":24,"total_time_ns":94181311713,"downtime_ns":2427545181,"wire_bytes":6934565982,"pages_sent":1661369,"pages_skipped_dirty":665839,"pages_skipped_bitmap":0,"cpu_ns":6994557200,"control_losses":18,"burst_faults":1,"round_timeouts":0,"retry_wire_bytes":943293,"backoff_ns":2950000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":2000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"combined/JAVMM","workload":"crypto","engine":"JAVMM","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":7,"total_time_ns":32685665303,"downtime_ns":435132962,"wire_bytes":1771686590,"pages_sent":424457,"pages_skipped_dirty":1164,"pages_skipped_bitmap":238756,"cpu_ns":1797484550,"control_losses":3,"burst_faults":1,"round_timeouts":0,"retry_wire_bytes":935613,"backoff_ns":1650000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":0,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"combined/stop-and-copy","workload":"crypto","engine":"stop-and-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":1,"total_time_ns":38537086283,"downtime_ns":38537086283,"wire_bytes":2188378112,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":2097152000,"control_losses":0,"burst_faults":1,"round_timeouts":0,"retry_wire_bytes":605078,"backoff_ns":1500000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":38000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"combined/post-copy","workload":"crypto","engine":"post-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":0,"total_time_ns":21467845450509,"downtime_ns":240640909,"wire_bytes":2192572416,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":0,"control_losses":59427,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":30426624,"backoff_ns":6551239771663,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":19525000000000,"demand_faults":89809,"fault_stall_ns":21452324103604,"degradation_window_ns":21467604809600}
)gold";

TEST(ChannelGoldenTest, SingleChannelBatteryMatchesSeedExport) {
  struct Regime {
    const char* name;
    const char* spec;
  };
  const Regime kRegimes[] = {
      {"healthy", ""},
      {"bw-collapse", "bw:0s-60s@0.3"},
      {"lossy-ctl", "loss:0.4"},
      {"outage", "out:1s-2s"},
      {"lat-spike", "lat:0s-30s+20ms;loss:0.2"},
      {"combined", "bw:0s-60s@0.5;loss:0.4;out:1s-2500ms"},
  };
  const EngineKind kEngines[] = {EngineKind::kXenPrecopy, EngineKind::kJavmm,
                                 EngineKind::kStopAndCopy, EngineKind::kPostcopy};
  std::vector<Scenario> scenarios;
  for (const Regime& regime : kRegimes) {
    for (const EngineKind kind : kEngines) {
      Scenario scenario =
          FastScenario(kind, std::string(regime.name) + "/" + EngineKindName(kind));
      scenario.options.fault_spec = regime.spec;
      scenarios.push_back(std::move(scenario));
    }
  }
  const RunReport report = ScenarioRunner(/*jobs=*/4).RunAll(scenarios);
  EXPECT_EQ(report.errors, 0);
  EXPECT_EQ(report.verification_failures, 0);
  EXPECT_EQ(report.audit_failures, 0);
  std::ostringstream os;
  report.ExportJsonLines(os);
  EXPECT_EQ(os.str(), std::string(kGoldenSeedExport));
}

}  // namespace
}  // namespace javmm
