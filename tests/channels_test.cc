// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Tests for the multi-channel migration data plane (DESIGN.md §11): the
// deterministic sharder, the per-channel fault grammar (chK: clauses), the
// striped-transfer determinism contract (serial == parallel, channels == 1
// bit-identical to the single-link seed export), the auditor's per-channel
// decomposition identities, and the TryTransfer outage-boundary regression
// that motivated the striped retry loop's virtual timelines.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/base/units.h"
#include "src/core/migration_lab.h"
#include "src/migration/baselines.h"
#include "src/net/channel_set.h"
#include "src/runner/runner.h"
#include "src/trace/auditor.h"
#include "tests/golden_seed_export.h"

namespace javmm {
namespace {

LabConfig SmallLab(uint64_t seed = 1) {
  LabConfig config;
  config.vm_bytes = 512 * kMiB;
  config.seed = seed;
  config.os.resident_bytes = 64 * kMiB;
  config.os.hot_bytes = 8 * kMiB;
  return config;
}

WorkloadSpec SmallDerby() {
  WorkloadSpec spec = Workloads::Get("derby");
  spec.alloc_rate_bytes_per_sec = 100 * kMiB;
  spec.old_baseline_bytes = 32 * kMiB;
  spec.heap.young_max_bytes = 256 * kMiB;
  spec.heap.old_max_bytes = 128 * kMiB;
  return spec;
}

Scenario FastScenario(EngineKind kind, const std::string& label) {
  Scenario scenario;
  scenario.label = label;
  scenario.spec = Workloads::Get("crypto");
  scenario.engine = kind;
  scenario.options.warmup = Duration::Seconds(10);
  scenario.options.cooldown = Duration::Seconds(5);
  return scenario;
}

bool HasViolation(const TraceAuditReport& report, const std::string& needle) {
  for (const std::string& v : report.violations) {
    if (v.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

// ---- NetworkLink::TryTransfer outage-boundary regression. ----

// At 1/3 byte per second, 3002400 bytes nominally take 9007200 s -- about
// 9.0072e15 ns, past 2^53 where a double no longer resolves single
// nanoseconds. The bandwidth window below ends 1 ns before the computed
// finish, so the first-window finish estimate overshoots the edge while the
// payload integrated up to the edge rounds to the full burst: `remaining`
// clamps to exactly 0 at a boundary that is also an outage start. The old
// code classified that attempt as outage-cut -- the whole burst "wasted",
// the retry pushed past a 5 s outage -- although every byte had landed. The
// fix completes it on the spot.
TEST(TryTransferEdgeTest, VanishingRemainderAtOutageBoundaryCompletes) {
  LinkConfig cfg;
  cfg.bandwidth_bps = 8.0;  // GoodputBytesPerSec() == 1.0.
  cfg.efficiency = 1.0;
  cfg.per_page_overhead = 0;
  const int64_t kBytes = 3002400;
  const int64_t kBoundaryNs = 9007199999999999;

  FaultPlan plan;
  plan.bandwidth.push_back({Duration::Zero(), Duration::Nanos(kBoundaryNs), 1.0 / 3.0});
  plan.outages.push_back(
      {Duration::Nanos(kBoundaryNs), Duration::Nanos(kBoundaryNs) + Duration::Seconds(5)});
  ASSERT_EQ(plan.Validate(), "");

  ChannelSet channels(cfg, 1);
  channels.Anchor(plan, {}, TimePoint::Epoch());
  const FaultSchedule* schedule = channels.faults(0);
  ASSERT_NE(schedule, nullptr);

  const TransferAttempt attempt =
      channels.channel(0).TryTransfer(kBytes, TimePoint::Epoch(), schedule);
  EXPECT_TRUE(attempt.ok);
  EXPECT_EQ(attempt.duration.nanos(), kBoundaryNs);
  EXPECT_EQ(attempt.wasted_bytes, 0);
}

// The pinned constants above, re-derived in exact integer arithmetic: at an
// effective 1/3 byte per second, the payload whose nominal finish lands 1 ns
// past the window edge is MulDiv(edge + 1, 1, 3e9). Asserting the equality
// keeps the two magic numbers honest against each other, and places the edge
// past 2^53 where the regression's double math lost nanosecond resolution.
TEST(TryTransferEdgeTest, BoundaryConstantsRederiveThroughMulDiv) {
  const int64_t kBoundaryNs = 9007199999999999;
  EXPECT_EQ(MulDiv(kBoundaryNs + 1, 1, 3'000'000'000), 3002400);
  EXPECT_GT(kBoundaryNs, int64_t{1} << 53);
}

// Generalizes the regression into a seeded sweep across magnitudes where
// double time math is exact (2^31 ns), at the resolution cliff (2^53 ns), and
// far past it (near INT64_MAX ns). Each trial rebuilds the clamp-path shape
// -- a bandwidth window whose edge doubles as an outage start -- with the
// edge jittered by the seeded Rng. Payloads are derived through MulDiv with
// margins of at least 10 bytes and 2 ms on either side of the edge, wide
// enough that double rounding (ulp ~ 2 us at INT64_MAX nanoseconds) cannot
// flip an outcome: finishing before the edge must complete with nothing
// wasted; finishing after it must be outage-cut at the edge with consistent
// delivered-byte accounting.
TEST(TryTransferEdgeTest, SeededBoundarySweepAcrossMagnitudes) {
  struct Magnitude {
    int64_t boundary_ns;
    double bandwidth_bps;  // GoodputBytesPerSec() == bandwidth_bps / 8.
    int64_t goodput;       // The same goodput as an exact integer.
  };
  const Magnitude kMagnitudes[] = {
      {int64_t{1} << 31, 8e9, 1'000'000'000},
      {int64_t{1} << 53, 8.0, 1},
      {INT64_MAX - (int64_t{1} << 40), 8.0, 1},
  };
  Rng rng(0x5eedb0a7d);
  for (const Magnitude& m : kMagnitudes) {
    for (int trial = 0; trial < 4; ++trial) {
      const int64_t edge_ns =
          m.boundary_ns - static_cast<int64_t>(rng.NextBounded(1'000'000));
      // Bytes delivered by the edge at 1/3 of goodput, and a margin covering
      // both a 2 ms head start and the 1-byte granularity of slow links.
      const int64_t at_edge = MulDiv(edge_ns, m.goodput, 3'000'000'000);
      const int64_t delta =
          std::max<int64_t>(10, MulDiv(2'000'000, m.goodput, 3'000'000'000));
      ASSERT_GT(at_edge, delta);

      LinkConfig cfg;
      cfg.bandwidth_bps = m.bandwidth_bps;
      cfg.efficiency = 1.0;
      cfg.per_page_overhead = 0;
      FaultPlan plan;
      plan.bandwidth.push_back({Duration::Zero(), Duration::Nanos(edge_ns), 1.0 / 3.0});
      plan.outages.push_back(
          {Duration::Nanos(edge_ns), Duration::Nanos(edge_ns) + Duration::Seconds(5)});
      ASSERT_EQ(plan.Validate(), "");
      ChannelSet channels(cfg, 1);
      channels.Anchor(plan, {}, TimePoint::Epoch());
      const FaultSchedule* schedule = channels.faults(0);
      ASSERT_NE(schedule, nullptr);

      const TransferAttempt under =
          channels.channel(0).TryTransfer(at_edge - delta, TimePoint::Epoch(), schedule);
      EXPECT_TRUE(under.ok) << "edge_ns=" << edge_ns;
      EXPECT_EQ(under.wasted_bytes, 0);
      EXPECT_GT(under.duration.nanos(), 0);
      EXPECT_LT(under.duration.nanos(), edge_ns);
      const int64_t nominal_ns = MulDiv(at_edge - delta, 3'000'000'000, m.goodput);
      EXPECT_LT(std::abs(under.duration.nanos() - nominal_ns), 1'000'000)
          << "edge_ns=" << edge_ns;

      const TransferAttempt over =
          channels.channel(0).TryTransfer(at_edge + delta, TimePoint::Epoch(), schedule);
      EXPECT_FALSE(over.ok) << "edge_ns=" << edge_ns;
      EXPECT_EQ(over.duration.nanos(), edge_ns);
      EXPECT_EQ(over.blocked_until.nanos(), edge_ns + 5'000'000'000);
      // Everything that crossed the wire before the cut is wasted (it will be
      // re-sent); that is the at-edge delivery, give or take llround.
      EXPECT_GE(over.wasted_bytes, 0);
      EXPECT_LE(over.wasted_bytes, at_edge + delta);
      EXPECT_LT(std::abs(over.wasted_bytes - at_edge), 8) << "edge_ns=" << edge_ns;
    }
  }
}

// ---- Deterministic sharder. ----

TEST(ChannelSetTest, ShardPartitionsPagesAndBytesExactly) {
  ChannelSet channels(LinkConfig{}, 4);
  const int64_t pages = 1003;                  // Not a multiple of 4.
  const int64_t wire = pages * 4174 + 57;      // Nor byte-aligned to pages.
  const std::vector<ChannelShare> shares = channels.Shard(pages, wire);
  ASSERT_EQ(shares.size(), 4u);
  int64_t page_sum = 0;
  int64_t wire_sum = 0;
  for (const ChannelShare& share : shares) {
    page_sum += share.pages;
    wire_sum += share.wire_bytes;
    EXPECT_GE(share.pages, pages / 4);
    EXPECT_LE(share.pages, pages / 4 + 1);
  }
  EXPECT_EQ(page_sum, pages);
  EXPECT_EQ(wire_sum, wire);
}

TEST(ChannelSetTest, ShardSplitsPagelessPayloadEvenly) {
  ChannelSet channels(LinkConfig{}, 3);
  const std::vector<ChannelShare> shares = channels.Shard(0, 1000);
  ASSERT_EQ(shares.size(), 3u);
  int64_t wire_sum = 0;
  for (const ChannelShare& share : shares) {
    EXPECT_EQ(share.pages, 0);
    EXPECT_GE(share.wire_bytes, 333);
    EXPECT_LE(share.wire_bytes, 334);
    wire_sum += share.wire_bytes;
  }
  EXPECT_EQ(wire_sum, 1000);
}

TEST(ChannelSetTest, SingleChannelShardIsIdentity) {
  ChannelSet channels(LinkConfig{}, 1);
  const std::vector<ChannelShare> shares = channels.Shard(77, 321987);
  ASSERT_EQ(shares.size(), 1u);
  EXPECT_EQ(shares[0].channel, 0);
  EXPECT_EQ(shares[0].pages, 77);
  EXPECT_EQ(shares[0].wire_bytes, 321987);
}

// Regression for the overflow javmm-lint's overflow-mul rule caught in
// Shard(): `wire_bytes * page_hi` wraps int64 once a guest reaches ~2^32
// pages with full wire payloads (a 16 TiB memory), handing channels negative
// byte shares. The MulDiv rewrite keeps the product in 128 bits, so the
// partition must stay exact, non-negative, and near-even at that scale.
TEST(ChannelSetTest, ShardSurvivesHugeMemoryWithoutOverflow) {
  ChannelSet channels(LinkConfig{}, 7);
  const int64_t pages = int64_t{1} << 32;
  const int64_t wire = CheckedMul(pages, kPageSize + 78);
  const std::vector<ChannelShare> shares = channels.Shard(pages, wire);
  ASSERT_EQ(shares.size(), 7u);
  int64_t page_sum = 0;
  int64_t wire_sum = 0;
  for (const ChannelShare& share : shares) {
    EXPECT_GE(share.pages, 0);
    EXPECT_GE(share.wire_bytes, 0);
    EXPECT_LE(share.wire_bytes, wire / 7 + (kPageSize + 78));
    page_sum += share.pages;
    wire_sum += share.wire_bytes;
  }
  EXPECT_EQ(page_sum, pages);
  EXPECT_EQ(wire_sum, wire);
}

// ---- Per-channel fault grammar. ----

TEST(ParseMultiTest, SharedOnlySpecLeavesPerChannelEmpty) {
  FaultPlan shared;
  std::vector<FaultPlan> per_channel;
  std::string error;
  ASSERT_TRUE(FaultPlan::ParseMulti("lat:0s-2s+5ms;loss:0.1", 4, &shared, &per_channel, &error))
      << error;
  EXPECT_TRUE(per_channel.empty());
  EXPECT_EQ(shared.latency.size(), 1u);
  EXPECT_DOUBLE_EQ(shared.control_loss_p, 0.1);
}

TEST(ParseMultiTest, ChannelClauseOverlaysSharedPlan) {
  FaultPlan shared;
  std::vector<FaultPlan> per_channel;
  std::string error;
  ASSERT_TRUE(FaultPlan::ParseMulti("lat:0s-2s+5ms;ch1:out:7s-8s", 2, &shared, &per_channel,
                                    &error))
      << error;
  ASSERT_EQ(per_channel.size(), 2u);
  // Every channel inherits the shared latency spike; only channel 1 gets the
  // outage overlay.
  EXPECT_EQ(per_channel[0].latency.size(), 1u);
  EXPECT_EQ(per_channel[1].latency.size(), 1u);
  EXPECT_TRUE(per_channel[0].outages.empty());
  ASSERT_EQ(per_channel[1].outages.size(), 1u);
  EXPECT_EQ(per_channel[1].outages[0].start.nanos(), Duration::Seconds(7).nanos());
}

TEST(ParseMultiTest, ChannelIndexOutOfRangeFails) {
  FaultPlan shared;
  std::vector<FaultPlan> per_channel;
  std::string error;
  EXPECT_FALSE(FaultPlan::ParseMulti("ch5:out:1s-2s", 2, &shared, &per_channel, &error));
  EXPECT_NE(error.find("names channel 5"), std::string::npos) << error;
}

TEST(ParseMultiTest, SingleLinkParseRejectsChannelPrefix) {
  FaultPlan plan;
  std::string error;
  EXPECT_FALSE(FaultPlan::Parse("ch1:out:1s-2s", &plan, &error));
  EXPECT_FALSE(error.empty());
}

// ---- Auditor: per-channel decomposition identities. ----

// A healthy 2-channel stop-and-copy run whose trace/result pair we can
// corrupt in controlled ways. The inputs reconstructed from the result's
// per-channel mirrors must reproduce the engine's own passing audit.
struct AuditFixture {
  MigrationResult result;
  TraceRecorder trace;
  AuditInputs inputs;
};

AuditFixture RunStopCopyFixture(int channel_count) {
  LabConfig config = SmallLab();
  config.migration.channels = channel_count;
  MigrationLab lab(SmallDerby(), config);
  lab.Run(Duration::Seconds(5));
  StopAndCopyEngine engine(&lab.guest(), lab.config().migration);
  AuditFixture fx;
  fx.result = engine.Migrate();
  fx.trace = engine.trace();
  fx.inputs.link_wire_bytes = fx.result.total_wire_bytes;
  fx.inputs.link_pages_sent = fx.result.pages_sent;
  fx.inputs.link_retry_bytes = fx.result.retry_wire_bytes;
  fx.inputs.channel_wire_bytes = fx.result.channel_wire_bytes;
  fx.inputs.channel_pages_sent = fx.result.channel_pages_sent;
  fx.inputs.channel_retry_bytes = fx.result.channel_retry_bytes;
  return fx;
}

TEST(ChannelAuditTest, ReconstructedInputsReproduceAPassingAudit) {
  const AuditFixture fx = RunStopCopyFixture(2);
  ASSERT_TRUE(fx.result.trace_audit.ran);
  ASSERT_TRUE(fx.result.trace_audit.ok) << fx.result.trace_audit.ToString();
  ASSERT_EQ(fx.inputs.channel_wire_bytes.size(), 2u);
  const TraceAuditReport report =
      TraceAuditor::Audit(AuditMode::kStopAndCopy, fx.trace, fx.result, fx.inputs);
  EXPECT_TRUE(report.ok) << report.ToString();
}

TEST(ChannelAuditTest, ForgedPerChannelMetersAreRejected) {
  AuditFixture fx = RunStopCopyFixture(2);
  // Shift wire bytes between the channels: the aggregate sum still matches,
  // so only the per-channel identities can catch the forgery.
  fx.inputs.channel_wire_bytes[0] += 512;
  fx.inputs.channel_wire_bytes[1] -= 512;
  const TraceAuditReport report =
      TraceAuditor::Audit(AuditMode::kStopAndCopy, fx.trace, fx.result, fx.inputs);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(HasViolation(report, "event wire sum")) << report.ToString();
}

TEST(ChannelAuditTest, ChannelEventNamingDeadChannelIsRejected) {
  AuditFixture fx = RunStopCopyFixture(2);
  TraceEvent event;
  event.kind = TraceEventKind::kChannelTransfer;
  event.at = fx.trace.events().back().at;
  event.detail = 7;  // Only channels 0 and 1 exist.
  fx.trace.Record(event);
  const TraceAuditReport report =
      TraceAuditor::Audit(AuditMode::kStopAndCopy, fx.trace, fx.result, fx.inputs);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(HasViolation(report, "names channel 7")) << report.ToString();
}

TEST(ChannelAuditTest, ChannelEventInSingleChannelTraceIsRejected) {
  AuditFixture fx = RunStopCopyFixture(1);
  ASSERT_TRUE(fx.inputs.channel_wire_bytes.empty());
  ASSERT_TRUE(fx.result.trace_audit.ok) << fx.result.trace_audit.ToString();
  TraceEvent event;
  event.kind = TraceEventKind::kChannelTransfer;
  event.at = fx.trace.events().back().at;
  event.detail = 0;
  fx.trace.Record(event);
  const TraceAuditReport report =
      TraceAuditor::Audit(AuditMode::kStopAndCopy, fx.trace, fx.result, fx.inputs);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(HasViolation(report, "single channel")) << report.ToString();
}

// ---- Determinism: striped runs, serial vs 4-worker pool. ----

TEST(ChannelRunnerTest, StripedFaultyParallelMatchesSerial) {
  const EngineKind kEngines[] = {EngineKind::kXenPrecopy, EngineKind::kJavmm,
                                 EngineKind::kStopAndCopy, EngineKind::kPostcopy};
  std::vector<Scenario> scenarios;
  for (const int channels : {2, 4}) {
    for (const EngineKind kind : kEngines) {
      Scenario scenario = FastScenario(
          kind, std::string(EngineKindName(kind)) + "/" + std::to_string(channels) + "ch");
      scenario.options.channels = channels;
      scenario.options.fault_spec = "lat:0s-10s+2ms;ch1:out:1s-2200ms;loss:0.1";
      scenarios.push_back(std::move(scenario));
    }
  }
  const RunReport serial = ScenarioRunner(/*jobs=*/1).RunAll(scenarios);
  const RunReport parallel = ScenarioRunner(/*jobs=*/4).RunAll(scenarios);
  ASSERT_EQ(serial.runs.size(), scenarios.size());
  ASSERT_EQ(parallel.runs.size(), scenarios.size());
  for (size_t i = 0; i < scenarios.size(); ++i) {
    SCOPED_TRACE(scenarios[i].label);
    const RunRecord& s = serial.runs[i];
    const RunRecord& p = parallel.runs[i];
    ASSERT_TRUE(s.ran) << s.error;
    ASSERT_TRUE(p.ran) << p.error;
    const MigrationResult& r = s.output.result;
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.verification.ok);
    ASSERT_TRUE(r.trace_audit.ran);
    EXPECT_TRUE(r.trace_audit.ok) << r.trace_audit.ToString();
    // The per-channel meters are exported and partition the aggregates.
    ASSERT_EQ(r.channel_wire_bytes.size(), static_cast<size_t>(r.channels));
    int64_t wire_sum = 0;
    int64_t page_sum = 0;
    for (int c = 0; c < r.channels; ++c) {
      wire_sum += r.channel_wire_bytes[static_cast<size_t>(c)];
      page_sum += r.channel_pages_sent[static_cast<size_t>(c)];
    }
    EXPECT_EQ(wire_sum, r.total_wire_bytes);
    EXPECT_EQ(page_sum, r.pages_sent);
    // Byte identity between the execution modes.
    EXPECT_EQ(r.total_time.nanos(), p.output.result.total_time.nanos());
    EXPECT_EQ(r.total_wire_bytes, p.output.result.total_wire_bytes);
    EXPECT_EQ(r.retry_wire_bytes, p.output.result.retry_wire_bytes);
    EXPECT_EQ(r.channel_wire_bytes, p.output.result.channel_wire_bytes);
    EXPECT_EQ(r.channel_pages_sent, p.output.result.channel_pages_sent);
    EXPECT_EQ(r.channel_retry_bytes, p.output.result.channel_retry_bytes);
    EXPECT_EQ(s.output.fault_stall.nanos(), p.output.fault_stall.nanos());
    EXPECT_EQ(s.output.observed_downtime.nanos(), p.output.observed_downtime.nanos());
  }
  std::ostringstream serial_json;
  std::ostringstream parallel_json;
  serial.ExportJsonLines(serial_json);
  parallel.ExportJsonLines(parallel_json);
  EXPECT_EQ(serial_json.str(), parallel_json.str());
}

// ---- The headline bugfix: striping shortens the post-copy stall. ----

// At one channel every demand fetch queues behind the same spiked link; with
// the spike pinned to sub-link 1 of four, only the fetches sharded onto it
// pay the extra latency and the rest overlap.
TEST(ChannelRunnerTest, StripingReducesPostcopyStallUnderPinnedSpike) {
  Scenario single = FastScenario(EngineKind::kPostcopy, "postcopy/1ch");
  single.options.fault_spec = "lat:0s-30s+20ms";
  Scenario striped = FastScenario(EngineKind::kPostcopy, "postcopy/4ch");
  striped.options.channels = 4;
  striped.options.fault_spec = "ch1:lat:0s-30s+20ms";

  const RunRecord one = ScenarioRunner::RunOne(single);
  const RunRecord four = ScenarioRunner::RunOne(striped);
  ASSERT_TRUE(one.ran) << one.error;
  ASSERT_TRUE(four.ran) << four.error;
  EXPECT_TRUE(one.output.result.verification.ok);
  EXPECT_TRUE(four.output.result.verification.ok);
  EXPECT_TRUE(one.output.result.trace_audit.ok) << one.output.result.trace_audit.ToString();
  EXPECT_TRUE(four.output.result.trace_audit.ok) << four.output.result.trace_audit.ToString();
  EXPECT_GT(one.output.fault_stall.nanos(), 0);
  EXPECT_LT(four.output.fault_stall.nanos(), one.output.fault_stall.nanos());
  EXPECT_LT(four.output.result.total_time.nanos(), one.output.result.total_time.nanos());
}

// ---- Analyzer probe faults (LabConfig::analyzer_probe_faults). ----

TEST(AnalyzerProbeFaultsTest, ProbesInOutageObserveZeroThroughput) {
  MigrationLab lab(SmallDerby(), SmallLab());
  lab.Run(Duration::Seconds(20));
  const TimePoint origin = lab.clock().now();
  lab.mutable_analyzer().AttachProbeFaults(FaultPlan::MustParse("out:2s-7s"), origin);
  lab.Run(Duration::Seconds(15));
  // No migration ran: the app never stopped, so everything the analyser
  // "observes" is probe loss inside the 5 s outage.
  const Duration observed = lab.analyzer().ObservedDowntime(origin, lab.clock().now());
  EXPECT_GE(observed.ToSecondsF(), 4.0);
  EXPECT_LE(observed.ToSecondsF(), 7.0);
}

TEST(AnalyzerProbeFaultsTest, ScenarioFlagRoutesChannelZeroPlanToProbes) {
  Scenario off = FastScenario(EngineKind::kXenPrecopy, "probe/off");
  off.options.warmup = Duration::Seconds(20);
  off.options.channels = 2;
  off.options.fault_spec = "ch0:out:1s-6s";
  Scenario on = off;
  on.label = "probe/on";
  on.options.lab.analyzer_probe_faults = true;

  const RunRecord r_off = ScenarioRunner::RunOne(off);
  const RunRecord r_on = ScenarioRunner::RunOne(on);
  ASSERT_TRUE(r_off.ran) << r_off.error;
  ASSERT_TRUE(r_on.ran) << r_on.error;
  // The probe path never feeds back into the engines: the migration itself
  // is byte-identical with the flag on.
  EXPECT_EQ(r_on.output.result.total_time.nanos(), r_off.output.result.total_time.nanos());
  EXPECT_EQ(r_on.output.result.total_wire_bytes, r_off.output.result.total_wire_bytes);
  EXPECT_EQ(r_on.output.result.channel_wire_bytes, r_off.output.result.channel_wire_bytes);
  // But the analyser now loses its probes inside channel 0's outage, so the
  // observed (external) downtime grows past the real one.
  EXPECT_GE(r_on.output.observed_downtime.ToSecondsF(), 4.0);
  EXPECT_GT(r_on.output.observed_downtime.nanos(), r_off.output.observed_downtime.nanos());
}

// ---- channels == 1 bit-identity against the single-link seed export. ----

// The shared seed battery (tests/golden_seed_export.h) re-run through the
// striped code at channels == 1 must reproduce the pinned export byte for
// byte.
TEST(ChannelGoldenTest, SingleChannelBatteryMatchesSeedExport) {
  const RunReport report = ScenarioRunner(/*jobs=*/4).RunAll(golden::SeedBatteryScenarios());
  EXPECT_EQ(report.errors, 0);
  EXPECT_EQ(report.verification_failures, 0);
  EXPECT_EQ(report.audit_failures, 0);
  std::ostringstream os;
  report.ExportJsonLines(os);
  EXPECT_EQ(os.str(), std::string(golden::kGoldenSeedExport));
}

}  // namespace
}  // namespace javmm
