// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Tests for the G1-style regionized heap and the JAVMM port to it (§6
// future work: non-contiguous young generation).

#include <gtest/gtest.h>

#include "src/core/liveness.h"
#include "src/jvm/region_heap.h"
#include "src/migration/engine.h"
#include "src/workload/g1_application.h"
#include "src/workload/os_process.h"

namespace javmm {
namespace {

RegionHeapConfig SmallRegionConfig() {
  RegionHeapConfig config;
  config.region_bytes = kMiB;
  config.total_regions = 96;
  config.max_young_regions = 48;
  config.initial_young_regions = 8;
  config.min_young_regions = 4;
  return config;
}

class RegionHeapTest : public ::testing::Test {
 protected:
  RegionHeapTest() : memory_(256 * kMiB), space_(&memory_) {}
  GuestPhysicalMemory memory_;
  AddressSpace space_;
};

TEST_F(RegionHeapTest, AllocationSpillsAcrossRegions) {
  RegionizedHeap heap(&space_, SmallRegionConfig());
  // 3 chunks of 0.5 MiB fit in 2 one-MiB regions.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(heap.TryAllocate(kMiB / 2, TimePoint::Max()));
  }
  EXPECT_EQ(heap.young_region_count(), 2);
  EXPECT_EQ(heap.young_used_bytes(), 3 * kMiB / 2);
  heap.CheckInvariants();
}

TEST_F(RegionHeapTest, AllocationFailsAtQuota) {
  RegionizedHeap heap(&space_, SmallRegionConfig());
  int64_t allocated = 0;
  while (heap.TryAllocate(kMiB / 2, TimePoint::Max())) {
    allocated += kMiB / 2;
  }
  EXPECT_EQ(heap.young_region_count(), 8);  // initial_young_regions.
  heap.CheckInvariants();
}

TEST_F(RegionHeapTest, EvacuationEmptiesYoungAndReleasesRegions) {
  RegionizedHeap heap(&space_, SmallRegionConfig());
  while (heap.TryAllocate(kMiB / 4, TimePoint::Epoch() + Duration::Seconds(1))) {
  }
  std::vector<VaRange> released;
  heap.set_young_released_callback(
      [&](const std::vector<VaRange>& ranges) { released = ranges; });
  const MinorGcResult gc = heap.EvacuateYoung(TimePoint::Epoch() + Duration::Seconds(10));
  EXPECT_EQ(gc.live_bytes, 0);
  EXPECT_EQ(gc.garbage_bytes, gc.young_used_before);
  EXPECT_EQ(heap.young_used_bytes(), 0);
  EXPECT_EQ(heap.young_region_count(), 0);
  ASSERT_FALSE(released.empty());
  int64_t released_bytes = 0;
  for (const VaRange& r : released) {
    released_bytes += r.bytes();
  }
  EXPECT_EQ(released_bytes, 8 * kMiB);  // All 8 young regions left.
  heap.CheckInvariants();
}

TEST_F(RegionHeapTest, SurvivorsLandInSurvivorRegions) {
  RegionizedHeap heap(&space_, SmallRegionConfig());
  ASSERT_TRUE(heap.TryAllocate(kMiB / 2, TimePoint::Max()));  // Lives.
  ASSERT_TRUE(heap.TryAllocate(kMiB / 2, TimePoint::Epoch() + Duration::Nanos(1)));
  const MinorGcResult gc = heap.EvacuateYoung(TimePoint::Epoch() + Duration::Seconds(1));
  EXPECT_EQ(gc.copied_to_survivor, kMiB / 2);
  const auto survivors = heap.OccupiedSurvivorRanges();
  ASSERT_EQ(survivors.size(), 1u);
  EXPECT_EQ(survivors[0].bytes(), kMiB / 2);
  heap.CheckInvariants();
}

TEST_F(RegionHeapTest, TenuredChunksPromoteToOldRegions) {
  RegionHeapConfig config = SmallRegionConfig();
  config.tenure_threshold = 2;
  RegionizedHeap heap(&space_, config);
  ASSERT_TRUE(heap.TryAllocate(kMiB / 2, TimePoint::Max()));
  heap.EvacuateYoung(TimePoint::Epoch() + Duration::Seconds(1));  // Age 1.
  EXPECT_EQ(heap.old_used_bytes(), 0);
  heap.EvacuateYoung(TimePoint::Epoch() + Duration::Seconds(2));  // Age 2 -> old.
  EXPECT_EQ(heap.old_used_bytes(), kMiB / 2);
  heap.CheckInvariants();
}

TEST_F(RegionHeapTest, YoungRangesBecomeNonContiguous) {
  RegionHeapConfig config = SmallRegionConfig();
  config.tenure_threshold = 1;  // Promote survivors immediately.
  RegionizedHeap heap(&space_, config);
  // Interleave young allocation with promotions over several cycles: old
  // regions get claimed between young regions, fragmenting the young set.
  TimePoint now = TimePoint::Epoch();
  for (int cycle = 0; cycle < 6; ++cycle) {
    // Alternate medium-lived batches (promoted, die two cycles later, their
    // old regions reclaimed) with immediately-dead batches.
    while (heap.TryAllocate(kMiB / 4,
                            now + (cycle % 2 == 0 ? Duration::SecondsF(2.2)
                                                  : Duration::Millis(1)))) {
    }
    now += Duration::Seconds(1);
    heap.EvacuateYoung(now);
  }
  while (heap.TryAllocate(kMiB / 4, now + Duration::Minutes(10))) {
  }
  EXPECT_GT(heap.YoungRanges().size(), 1u);  // Non-contiguous young set.
  heap.CheckInvariants();
}

TEST_F(RegionHeapTest, DeadOldRegionsReclaimedUnderPressure) {
  RegionHeapConfig config = SmallRegionConfig();
  config.total_regions = 24;
  config.max_young_regions = 8;
  config.initial_young_regions = 8;
  config.tenure_threshold = 1;
  RegionizedHeap heap(&space_, config);
  // Fill most of the pool with old data that dies at t=5s.
  for (int i = 0; i < 14; ++i) {
    ASSERT_TRUE(heap.AllocateOld(kMiB, TimePoint::Epoch() + Duration::Seconds(5)));
  }
  // After death, promotions must reclaim the dead old regions rather than
  // aborting on pool exhaustion. Promoted batches die 1.5 s later, so each
  // cycle's pressure is relieved by reclaiming the previous cycles' regions.
  TimePoint now = TimePoint::Epoch() + Duration::Seconds(10);
  for (int cycle = 0; cycle < 3; ++cycle) {
    while (heap.TryAllocate(kMiB / 2, now + Duration::SecondsF(1.5))) {
    }
    now += Duration::Seconds(1);
    heap.EvacuateYoung(now);
    heap.CheckInvariants();
  }
  EXPECT_GT(heap.old_used_bytes(), 0);
}

TEST_F(RegionHeapTest, QuotaGrowsWithAllocationRate) {
  RegionizedHeap heap(&space_, SmallRegionConfig());
  TimePoint now = TimePoint::Epoch();
  for (int cycle = 0; cycle < 8; ++cycle) {
    while (heap.TryAllocate(kMiB / 4, now + Duration::Millis(1))) {
    }
    now += Duration::Millis(100);  // Filled fast => demand high.
    heap.EvacuateYoung(now);
  }
  EXPECT_EQ(heap.young_quota_regions(), SmallRegionConfig().max_young_regions);
}

// ---- End-to-end: JAVMM migrating a G1 guest. ----

class G1MigrationTest : public ::testing::Test {
 protected:
  G1MigrationTest() : memory_(512 * kMiB), kernel_(&memory_, &clock_) {
    kernel_.LoadLkm(LkmConfig{});
  }
  SimClock clock_;
  GuestPhysicalMemory memory_;
  GuestKernel kernel_;
};

WorkloadSpec G1Spec() {
  WorkloadSpec spec = Workloads::Get("derby");
  spec.alloc_rate_bytes_per_sec = 80 * kMiB;
  spec.old_baseline_bytes = 24 * kMiB;
  return spec;
}

RegionHeapConfig G1HeapConfig() {
  RegionHeapConfig config;
  config.region_bytes = 2 * kMiB;
  config.total_regions = 144;  // 288 MiB heap.
  config.max_young_regions = 96;
  config.initial_young_regions = 16;
  return config;
}

TEST_F(G1MigrationTest, AssistedMigrationVerifies) {
  G1JavaApplication app(&kernel_, G1Spec(), G1HeapConfig(), Rng(1));
  OsBackgroundProcess os(&kernel_, OsProcessConfig{64 * kMiB, 8 * kMiB, kMiB}, Rng(2));
  clock_.Advance(Duration::Seconds(30));

  MigrationConfig mig;
  mig.application_assisted = true;
  MigrationEngine engine(&kernel_, mig);
  G1LivenessSource live(&kernel_, &app);
  RangeLivenessSource os_live(&kernel_, os.pid());
  os_live.AddRange(os.resident_range());
  engine.AddRequiredPfnSource(&live);
  engine.AddRequiredPfnSource(&os_live);

  const MigrationResult result = engine.Migrate();
  ASSERT_TRUE(result.verification.ok) << result.verification.detail;
  EXPECT_GT(result.pages_skipped_bitmap, 0);
  EXPECT_GT(result.verification.pages_skipped_garbage, 0);
  EXPECT_FALSE(app.held_at_safepoint());
  EXPECT_EQ(kernel_.lkm()->protocol_violations(), 0);
  // Guest continues at the destination.
  const double ops = app.ops_completed();
  clock_.Advance(Duration::Seconds(5));
  EXPECT_GT(app.ops_completed(), ops);
}

TEST_F(G1MigrationTest, AssistedBeatsVanillaForG1Guest) {
  MigrationResult results[2];
  for (const bool assisted : {false, true}) {
    SimClock clock;
    GuestPhysicalMemory memory(512 * kMiB);
    GuestKernel kernel(&memory, &clock);
    kernel.LoadLkm(LkmConfig{});
    G1JavaApplication app(&kernel, G1Spec(), G1HeapConfig(), Rng(3));
    clock.Advance(Duration::Seconds(30));
    MigrationConfig mig;
    mig.application_assisted = assisted;
    MigrationEngine engine(&kernel, mig);
    G1LivenessSource live(&kernel, &app);
    engine.AddRequiredPfnSource(&live);
    results[assisted ? 1 : 0] = engine.Migrate();
    ASSERT_TRUE(results[assisted ? 1 : 0].verification.ok);
  }
  EXPECT_LT(results[1].total_wire_bytes, results[0].total_wire_bytes);
  // This small guest converges quickly either way, so JAVMM's prepare phase
  // (safepoint + enforced evacuation) may cost a little wall-clock; it must
  // never cost much, and the traffic win must be real.
  EXPECT_LE(results[1].total_time.nanos(),
            static_cast<int64_t>(static_cast<double>(results[0].total_time.nanos()) * 1.25));
}

TEST_F(G1MigrationTest, ShrinkAndRereportKeepBitmapCurrent) {
  // During a long migration the G1 young set cycles several times; the
  // shrink + re-report protocol must keep skipping effective throughout
  // (i.e. young pages are still being skipped in *later* iterations).
  G1JavaApplication app(&kernel_, G1Spec(), G1HeapConfig(), Rng(4));
  clock_.Advance(Duration::Seconds(30));
  MigrationConfig mig;
  mig.application_assisted = true;
  mig.link.bandwidth_bps = 4e8;  // Slow link => many GC cycles mid-migration.
  MigrationEngine engine(&kernel_, mig);
  G1LivenessSource live(&kernel_, &app);
  engine.AddRequiredPfnSource(&live);
  const MigrationResult result = engine.Migrate();
  ASSERT_TRUE(result.verification.ok) << result.verification.detail;
  ASSERT_GE(result.iterations.size(), 3u);
  // Bitmap skipping still active after the first iteration.
  int64_t later_skips = 0;
  for (size_t i = 1; i + 1 < result.iterations.size(); ++i) {
    later_skips += result.iterations[i].pages_skipped_bitmap;
  }
  EXPECT_GT(later_skips, 0);
}

}  // namespace
}  // namespace javmm
