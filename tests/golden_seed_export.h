// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Shared golden battery: the 6-regime x 4-engine crypto export pinned from
// the seed tree (single link, no hotness). Three suites re-run this battery
// through later features at their neutral settings -- channels == 1
// (channels_test), hotness off (hotness_test), and the instrumented perf
// substrate (perf_test) -- and each must reproduce the export byte for
// byte. Keeping one copy of the string and one scenario builder here makes
// "neutral settings change nothing" a single shared contract instead of
// three drifting copies.

#ifndef JAVMM_TESTS_GOLDEN_SEED_EXPORT_H_
#define JAVMM_TESTS_GOLDEN_SEED_EXPORT_H_

#include <string>
#include <vector>

#include "src/runner/scenario.h"

namespace javmm {
namespace golden {

// The 24 scenarios behind the export, in export order: crypto workload,
// warmup 10 s, cooldown 5 s, seed 1, default lab, every fault regime x
// every engine. `hotness_spec` is threaded through so the hotness suite can
// pin its explicit "off"; channels stays at the default 1.
inline std::vector<Scenario> SeedBatteryScenarios(const std::string& hotness_spec = "") {
  struct Regime {
    const char* name;
    const char* spec;
  };
  const Regime kRegimes[] = {
      {"healthy", ""},
      {"bw-collapse", "bw:0s-60s@0.3"},
      {"lossy-ctl", "loss:0.4"},
      {"outage", "out:1s-2s"},
      {"lat-spike", "lat:0s-30s+20ms;loss:0.2"},
      {"combined", "bw:0s-60s@0.5;loss:0.4;out:1s-2500ms"},
  };
  const EngineKind kEngines[] = {EngineKind::kXenPrecopy, EngineKind::kJavmm,
                                 EngineKind::kStopAndCopy, EngineKind::kPostcopy};
  std::vector<Scenario> scenarios;
  for (const Regime& regime : kRegimes) {
    for (const EngineKind kind : kEngines) {
      Scenario scenario;
      scenario.label = std::string(regime.name) + "/" + EngineKindName(kind);
      scenario.spec = Workloads::Get("crypto");
      scenario.engine = kind;
      scenario.options.warmup = Duration::Seconds(10);
      scenario.options.cooldown = Duration::Seconds(5);
      scenario.options.fault_spec = regime.spec;
      scenario.options.hotness_spec = hotness_spec;
      scenarios.push_back(std::move(scenario));
    }
  }
  return scenarios;
}

// JSON-lines export of that battery captured from the seed tree, before the
// multi-channel data plane, hotness ordering, or perf instrumentation
// existed. Byte-identity against this string is the proof that those
// features at neutral settings -- and any raw-speed refactor underneath --
// changed nothing observable.
inline const char kGoldenSeedExport[] = R"gold({"label":"healthy/Xen","workload":"crypto","engine":"Xen","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":21,"total_time_ns":57885589784,"downtime_ns":1972921901,"wire_bytes":6852566216,"pages_sent":1641724,"pages_skipped_dirty":158458,"pages_skipped_bitmap":0,"cpu_ns":6836923300,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":2000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"healthy/JAVMM","workload":"crypto","engine":"JAVMM","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":5,"total_time_ns":15567336868,"downtime_ns":597796796,"wire_bytes":1755319312,"pages_sent":420536,"pages_skipped_dirty":463,"pages_skipped_bitmap":215444,"cpu_ns":1777610450,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":0,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"healthy/stop-and-copy","workload":"crypto","engine":"stop-and-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":1,"total_time_ns":18598446720,"downtime_ns":18598446720,"wire_bytes":2188378112,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":2097152000,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":18000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"healthy/post-copy","workload":"crypto","engine":"post-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":0,"total_time_ns":60523624133,"downtime_ns":205320455,"wire_bytes":2192572416,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":0,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":3000000000,"demand_faults":91065,"fault_stall_ns":45090743685,"degradation_window_ns":60318303678}
{"label":"bw-collapse/Xen","workload":"crypto","engine":"Xen","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":25,"total_time_ns":99470117713,"downtime_ns":1962798853,"wire_bytes":6803394370,"pages_sent":1629943,"pages_skipped_dirty":339431,"pages_skipped_bitmap":0,"cpu_ns":6815178100,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":1000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"bw-collapse/JAVMM","workload":"crypto","engine":"JAVMM","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":4,"total_time_ns":50162326816,"downtime_ns":222121502,"wire_bytes":1776664636,"pages_sent":425650,"pages_skipped_dirty":1237,"pages_skipped_bitmap":241156,"cpu_ns":1802806450,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":0,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"bw-collapse/stop-and-copy","workload":"crypto","engine":"stop-and-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":1,"total_time_ns":60598447520,"downtime_ns":60598447520,"wire_bytes":2188378112,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":2097152000,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":60000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"bw-collapse/post-copy","workload":"crypto","engine":"post-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":0,"total_time_ns":79038187045,"downtime_ns":287734849,"wire_bytes":2192572416,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":0,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":6000000000,"demand_faults":107596,"fault_stall_ns":61164514716,"degradation_window_ns":78750452196}
{"label":"lossy-ctl/Xen","workload":"crypto","engine":"Xen","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":16,"total_time_ns":62420853968,"downtime_ns":3375174963,"wire_bytes":7130113786,"pages_sent":1708219,"pages_skipped_dirty":181651,"pages_skipped_bitmap":0,"cpu_ns":7116356500,"control_losses":7,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":3584,"backoff_ns":450000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":3000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"lossy-ctl/JAVMM","workload":"crypto","engine":"JAVMM","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":7,"total_time_ns":16625647035,"downtime_ns":372904387,"wire_bytes":1756860542,"pages_sent":420905,"pages_skipped_dirty":582,"pages_skipped_bitmap":236004,"cpu_ns":1782243650,"control_losses":3,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":1536,"backoff_ns":150000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":0,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"lossy-ctl/stop-and-copy","workload":"crypto","engine":"stop-and-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":1,"total_time_ns":18598446720,"downtime_ns":18598446720,"wire_bytes":2188378112,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":2097152000,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":18000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"lossy-ctl/post-copy","workload":"crypto","engine":"post-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":0,"total_time_ns":21416435704847,"downtime_ns":205320455,"wire_bytes":2192572416,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":0,"control_losses":59288,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":30355456,"backoff_ns":6534750000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":19469000000000,"demand_faults":89553,"fault_stall_ns":21400949678397,"degradation_window_ns":21416230384392}
{"label":"outage/Xen","workload":"crypto","engine":"Xen","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":22,"total_time_ns":58082808479,"downtime_ns":1766067254,"wire_bytes":6757094826,"pages_sent":1618851,"pages_skipped_dirty":159938,"pages_skipped_bitmap":0,"cpu_ns":6742222350,"control_losses":0,"burst_faults":1,"round_timeouts":0,"retry_wire_bytes":94119,"backoff_ns":1000000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":1000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"outage/JAVMM","workload":"crypto","engine":"JAVMM","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":5,"total_time_ns":16982215811,"downtime_ns":415871838,"wire_bytes":1757406312,"pages_sent":421036,"pages_skipped_dirty":506,"pages_skipped_bitmap":234260,"cpu_ns":1782514300,"control_losses":0,"burst_faults":1,"round_timeouts":0,"retry_wire_bytes":94119,"backoff_ns":1000000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":0,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"outage/stop-and-copy","workload":"crypto","engine":"stop-and-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":1,"total_time_ns":19599639305,"downtime_ns":19599639305,"wire_bytes":2188378112,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":2097152000,"control_losses":0,"burst_faults":1,"round_timeouts":0,"retry_wire_bytes":141619,"backoff_ns":1000000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":19000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"outage/post-copy","workload":"crypto","engine":"post-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":0,"total_time_ns":61523571184,"downtime_ns":205320455,"wire_bytes":2192572416,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":0,"control_losses":1,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":512,"backoff_ns":749947051,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":3000000000,"demand_faults":91065,"fault_stall_ns":46090690736,"degradation_window_ns":61318250729}
{"label":"lat-spike/Xen","workload":"crypto","engine":"Xen","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":21,"total_time_ns":58594640298,"downtime_ns":1890426089,"wire_bytes":6831078464,"pages_sent":1636576,"pages_skipped_dirty":178180,"pages_skipped_bitmap":0,"cpu_ns":6818517400,"control_losses":2,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":1024,"backoff_ns":150000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":1000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"lat-spike/JAVMM","workload":"crypto","engine":"JAVMM","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":8,"total_time_ns":15548160588,"downtime_ns":205355381,"wire_bytes":1751130152,"pages_sent":419532,"pages_skipped_dirty":481,"pages_skipped_bitmap":214788,"cpu_ns":1773348150,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":0,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"lat-spike/stop-and-copy","workload":"crypto","engine":"stop-and-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":1,"total_time_ns":18598446720,"downtime_ns":18598446720,"wire_bytes":2188378112,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":2097152000,"control_losses":0,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":0,"backoff_ns":0,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":18000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"lat-spike/post-copy","workload":"crypto","engine":"post-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":0,"total_time_ns":7215085764847,"downtime_ns":205320455,"wire_bytes":2192572416,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":0,"control_losses":22570,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":11555840,"backoff_ns":1503200000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":6511000000000,"demand_faults":89554,"fault_stall_ns":7199599773546,"degradation_window_ns":7214880444392}
{"label":"combined/Xen","workload":"crypto","engine":"Xen","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":24,"total_time_ns":94181311713,"downtime_ns":2427545181,"wire_bytes":6934565982,"pages_sent":1661369,"pages_skipped_dirty":665839,"pages_skipped_bitmap":0,"cpu_ns":6994557200,"control_losses":18,"burst_faults":1,"round_timeouts":0,"retry_wire_bytes":943293,"backoff_ns":2950000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":2000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"combined/JAVMM","workload":"crypto","engine":"JAVMM","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":7,"total_time_ns":32685665303,"downtime_ns":435132962,"wire_bytes":1771686590,"pages_sent":424457,"pages_skipped_dirty":1164,"pages_skipped_bitmap":238756,"cpu_ns":1797484550,"control_losses":3,"burst_faults":1,"round_timeouts":0,"retry_wire_bytes":935613,"backoff_ns":1650000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":0,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"combined/stop-and-copy","workload":"crypto","engine":"stop-and-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":1,"total_time_ns":38537086283,"downtime_ns":38537086283,"wire_bytes":2188378112,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":2097152000,"control_losses":0,"burst_faults":1,"round_timeouts":0,"retry_wire_bytes":605078,"backoff_ns":1500000000,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":38000000000,"demand_faults":0,"fault_stall_ns":0,"degradation_window_ns":0}
{"label":"combined/post-copy","workload":"crypto","engine":"post-copy","seed":1,"ran":true,"completed":true,"fell_back":false,"verified":true,"audit_ran":true,"audit_ok":true,"iterations":0,"total_time_ns":21467845450509,"downtime_ns":240640909,"wire_bytes":2192572416,"pages_sent":524288,"pages_skipped_dirty":0,"pages_skipped_bitmap":0,"cpu_ns":0,"control_losses":59427,"burst_faults":0,"round_timeouts":0,"retry_wire_bytes":30426624,"backoff_ns":6551239771663,"degraded":false,"young_at_migration_bytes":453132288,"old_at_migration_bytes":13041664,"observed_downtime_ns":19525000000000,"demand_faults":89809,"fault_stall_ns":21452324103604,"degradation_window_ns":21467604809600}
)gold";

}  // namespace golden
}  // namespace javmm

#endif  // JAVMM_TESTS_GOLDEN_SEED_EXPORT_H_
