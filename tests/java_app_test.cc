// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Tests for the Java application process + TI agent choreography (§4.3.2).

#include <gtest/gtest.h>

#include "src/guest/lkm.h"
#include "src/mem/physical_memory.h"
#include "src/sim/clock.h"
#include "src/workload/java_application.h"
#include "src/workload/spec.h"

namespace javmm {
namespace {

WorkloadSpec TestSpec() {
  WorkloadSpec spec;
  spec.name = "test";
  spec.category = 1;
  spec.alloc_rate_bytes_per_sec = 32 * kMiB;
  spec.chunk_bytes = 64 * kKiB;
  spec.long_lived_fraction = 0.01;
  spec.short_lifetime_mean = Duration::Millis(50);
  spec.long_lifetime_mean = Duration::Seconds(20);
  spec.old_baseline_bytes = 4 * kMiB;
  spec.old_mutation_bytes_per_sec = kMiB / 4;
  spec.ops_per_sec = 10;
  spec.safepoint_interval = Duration::Millis(400);
  spec.heap.young_max_bytes = 64 * kMiB;
  spec.heap.young_initial_bytes = 16 * kMiB;
  spec.heap.young_min_bytes = 8 * kMiB;
  spec.heap.old_max_bytes = 64 * kMiB;
  return spec;
}

class JavaAppTest : public ::testing::Test {
 protected:
  JavaAppTest() : memory_(512 * kMiB), kernel_(&memory_, &clock_) {
    lkm_ = &kernel_.LoadLkm(LkmConfig{});
    kernel_.event_channel().BindDaemonHandler([this](LkmToDaemon msg) {
      if (msg == LkmToDaemon::kSuspensionReady) {
        suspension_ready_ = true;
      }
    });
  }

  SimClock clock_;
  GuestPhysicalMemory memory_;
  GuestKernel kernel_;
  Lkm* lkm_;
  bool suspension_ready_ = false;
};

TEST_F(JavaAppTest, AllocatesAtConfiguredRate) {
  JavaApplication app(&kernel_, TestSpec(), Rng(1));
  clock_.Advance(Duration::Seconds(10));
  // 32 MiB/s over 10 s minus GC pauses: within 25% of 320 MiB.
  const double allocated = static_cast<double>(app.heap().total_allocated_bytes()) -
                           static_cast<double>(TestSpec().old_baseline_bytes);
  EXPECT_NEAR(allocated / static_cast<double>(320 * kMiB), 1.0, 0.25);
}

TEST_F(JavaAppTest, MinorGcsHappenAtFillCadence) {
  JavaApplication app(&kernel_, TestSpec(), Rng(2));
  clock_.Advance(Duration::Seconds(20));
  const GcLog& log = app.heap().gc_log();
  EXPECT_GT(log.minor_count(), 5);
  // Mostly garbage: short-lived objects dominate.
  EXPECT_GT(log.MeanMinorGarbageFraction(), 0.85);
}

TEST_F(JavaAppTest, OpsAccrueMinusGcPauses) {
  JavaApplication app(&kernel_, TestSpec(), Rng(3));
  clock_.Advance(Duration::Seconds(10));
  const double expected =
      (Duration::Seconds(10) - app.total_gc_pause()).ToSecondsF() * TestSpec().ops_per_sec;
  EXPECT_NEAR(app.ops_completed(), expected, expected * 0.02);
}

TEST_F(JavaAppTest, NoProgressWhileVmPaused) {
  JavaApplication app(&kernel_, TestSpec(), Rng(4));
  clock_.Advance(Duration::Seconds(2));
  const double ops_before = app.ops_completed();
  const int64_t writes_before = memory_.total_writes();
  kernel_.PauseVm();
  clock_.Advance(Duration::Seconds(5));
  EXPECT_EQ(app.ops_completed(), ops_before);
  EXPECT_EQ(memory_.total_writes(), writes_before);
  kernel_.ResumeVm();
  clock_.Advance(Duration::Seconds(1));
  EXPECT_GT(app.ops_completed(), ops_before);
}

TEST_F(JavaAppTest, AgentReportsYoungGenOnQuery) {
  JavaApplication app(&kernel_, TestSpec(), Rng(5));
  clock_.Advance(Duration::Seconds(5));
  const VaRange young = app.heap().young_committed();
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kMigrationStarted);
  // All committed young pages had their transfer bits cleared.
  const int64_t cleared = lkm_->transfer_bitmap().size() - lkm_->transfer_bitmap().Count();
  EXPECT_EQ(cleared, PagesForBytes(young.bytes()));
  EXPECT_TRUE(app.agent().migration_active());
}

TEST_F(JavaAppTest, EnforcedGcRunsAndHoldsThreads) {
  JavaApplication app(&kernel_, TestSpec(), Rng(6));
  clock_.Advance(Duration::Seconds(5));
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kMigrationStarted);
  const int64_t gcs_before = app.heap().gc_log().minor_count();
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kEnteringLastIter);
  EXPECT_FALSE(suspension_ready_);  // Needs simulated time for TTS + GC.
  clock_.Advance(Duration::Seconds(3));
  EXPECT_TRUE(suspension_ready_);
  EXPECT_TRUE(app.held_at_safepoint());
  // Exactly one more GC ran, flagged enforced, leaving eden empty.
  const GcLog& log = app.heap().gc_log();
  ASSERT_GE(log.minor_count(), gcs_before + 1);
  EXPECT_TRUE(log.minor.back().enforced);
  EXPECT_EQ(app.heap().eden_free_bytes(),
            app.heap().eden_range().bytes());

  // While held: no ops, no dirtying, even though the VM is not paused.
  const double ops_before = app.ops_completed();
  clock_.Advance(Duration::Seconds(2));
  EXPECT_EQ(app.ops_completed(), ops_before);

  // Resume releases the threads.
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kVmResumed);
  EXPECT_FALSE(app.held_at_safepoint());
  clock_.Advance(Duration::Seconds(1));
  EXPECT_GT(app.ops_completed(), ops_before);
}

TEST_F(JavaAppTest, SuspensionReadyCarriesOccupiedFrom) {
  JavaApplication app(&kernel_, TestSpec(), Rng(7));
  clock_.Advance(Duration::Seconds(5));
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kMigrationStarted);
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kEnteringLastIter);
  clock_.Advance(Duration::Seconds(3));
  ASSERT_TRUE(suspension_ready_);
  // Survivors of the enforced GC sit in From; their transfer bits must be
  // set (treated as leaving the young generation).
  const VaRange from = app.heap().occupied_from_range();
  if (!from.empty()) {
    AddressSpace& space = kernel_.address_space(app.pid());
    const Pfn pfn = space.page_table().Lookup(VpnOf(from.begin));
    ASSERT_NE(pfn, kInvalidPfn);
    EXPECT_TRUE(lkm_->transfer_bitmap().Test(pfn));
  }
}

TEST_F(JavaAppTest, NonCooperativeAgentIgnoresPrepare) {
  TiAgentConfig agent_config;
  agent_config.cooperative = false;
  JavaApplication app(&kernel_, TestSpec(), Rng(8), agent_config);
  clock_.Advance(Duration::Seconds(3));
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kMigrationStarted);
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kEnteringLastIter);
  clock_.Advance(Duration::Seconds(2));
  EXPECT_FALSE(suspension_ready_);
  EXPECT_FALSE(app.held_at_safepoint());
  // The LKM's straggler timeout eventually proceeds without it.
  clock_.Advance(LkmConfig{}.straggler_timeout);
  EXPECT_TRUE(suspension_ready_);
  EXPECT_EQ(lkm_->stragglers_timed_out(), 1);
}

TEST_F(JavaAppTest, YoungShrinkNotifiesLkmDuringMigration) {
  WorkloadSpec spec = TestSpec();
  spec.heap.young_initial_bytes = 64 * kMiB;  // Oversized for the alloc rate.
  spec.heap.shrink_headroom = 1.3;
  spec.alloc_rate_bytes_per_sec = 2 * kMiB;
  JavaApplication app(&kernel_, spec, Rng(9));
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kMigrationStarted);
  const int64_t cleared_at_start =
      lkm_->transfer_bitmap().size() - lkm_->transfer_bitmap().Count();
  // Run long enough for several GCs; the adaptive policy shrinks the young
  // generation and the agent relays the shrink to the LKM.
  clock_.Advance(Duration::Seconds(120));
  const int64_t cleared_now = lkm_->transfer_bitmap().size() - lkm_->transfer_bitmap().Count();
  EXPECT_LT(cleared_now, cleared_at_start);
  EXPECT_LT(app.heap().young_committed_bytes(), 64 * kMiB);
  EXPECT_EQ(lkm_->protocol_violations(), 0);
}

}  // namespace
}  // namespace javmm
